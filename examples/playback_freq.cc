// Recording, playback and the frequency domain (Sections 3.1, 3.3).
//
// Phase 1 records a software phase-locked loop tracking a reference tone
// (the paper's control-algorithm use case [9]).  Phase 2 replays the
// recording into a fresh scope.  Phase 3 switches the scope to the
// frequency domain and verifies the tone shows up at the right bin.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "gscope.h"

namespace {

// A minimal software PLL: tracks the phase of a reference sine.
class PhaseLockLoop {
 public:
  explicit PhaseLockLoop(double loop_gain) : gain_(loop_gain) {}

  void Step(double reference, double dt_s) {
    double local = std::sin(phase_);
    error_ = reference * std::cos(phase_);  // phase detector (mixer + LPF)
    freq_ += gain_ * error_ * dt_s;
    phase_ += 2.0 * std::numbers::pi * freq_ * dt_s + gain_ * error_ * dt_s;
    output_ = local;
  }

  double output() const { return output_; }
  double error() const { return error_; }
  double frequency() const { return freq_; }

 private:
  double gain_;
  double phase_ = 0.0;
  double freq_ = 8.0;  // initial guess, Hz (true tone is 10 Hz)
  double error_ = 0.0;
  double output_ = 0.0;
};

}  // namespace

int main() {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  const char* recording = "pll_recording.dat";

  // ---- Phase 1: record the PLL run at a 10 ms polling period (100 Hz). ----
  {
    gscope::Scope scope(&loop, {.name = "pll-live", .width = 256});
    PhaseLockLoop pll(40.0);
    double reference = 0.0;
    double t = 0.0;

    gscope::SignalId ref_sig = scope.AddSignal(
        {.name = "reference", .source = &reference, .min = -1.5, .max = 1.5});
    scope.AddSignal({.name = "pll_out",
                     .source = gscope::MakeFunc([&pll]() { return pll.output(); }),
                     .min = -1.5,
                     .max = 1.5});
    scope.AddSignal({.name = "pll_freq",
                     .source = gscope::MakeFunc([&pll]() { return pll.frequency(); }),
                     .min = 0,
                     .max = 20});
    (void)ref_sig;

    scope.SetPollingMode(10);
    if (!scope.StartRecording(recording)) {
      std::fprintf(stderr, "cannot open %s\n", recording);
      return 1;
    }
    scope.StartPolling();

    loop.AddTimeoutMs(10, [&]() {
      t += 0.01;
      reference = std::sin(2.0 * std::numbers::pi * 10.0 * t);  // 10 Hz tone
      pll.Step(reference, 0.01);
      return true;
    });
    loop.RunForMs(4000);
    scope.StopRecording();
    scope.StopPolling();
    std::printf("phase 1: recorded 4 s of PLL signals; pll_freq=%.2f Hz (target 10)\n",
                pll.frequency());
    std::fputs(gscope::RenderAscii(scope, {.columns = 64, .rows = 10}).c_str(), stdout);
  }

  // ---- Phase 2: replay the recording into a fresh scope. ----
  {
    gscope::Scope scope(&loop, {.name = "pll-replay", .width = 256});
    if (!scope.SetPlaybackMode(recording, 10)) {
      std::fprintf(stderr, "cannot replay %s\n", recording);
      return 1;
    }
    scope.StartPolling();
    loop.RunForMs(10'000);
    std::printf("phase 2: replayed %lld tuples into %zu signals (playback done: %s)\n",
                static_cast<long long>(scope.counters().buffered_routed),
                scope.signal_count(), scope.counters().playback_done ? "yes" : "no");
    gscope::SignalId freq_sig = scope.FindSignal("pll_freq");
    if (freq_sig != 0) {
      scope.SetRange(freq_sig, 0, 20);
      std::printf("         replayed pll_freq = %.2f Hz\n",
                  scope.LatestValue(freq_sig).value_or(-1));
    }

    // ---- Phase 3: frequency-domain view of the replayed reference. ----
    gscope::SignalId ref_sig = scope.FindSignal("reference");
    if (ref_sig != 0) {
      const gscope::Trace* trace = scope.TraceFor(ref_sig);
      gscope::Spectrum spectrum =
          gscope::ComputeSpectrum(trace->Values(), /*sample_rate_hz=*/100.0);
      std::printf("phase 3: spectrum peak at %.2f Hz (expected 10.0, bin %.3f Hz)\n",
                  spectrum.PeakHz(), spectrum.bin_hz);
      scope.SetDomain(gscope::DisplayDomain::kFrequency);
      gscope::ScopeView view(&scope);
      if (view.RenderToPpm("pll_spectrum.ppm", 400, 240)) {
        std::printf("wrote pll_spectrum.ppm\n");
      }
    }
  }
  return 0;
}
