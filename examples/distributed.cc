// Distributed visualization (Section 4.4): two "remote" clients stream
// tuples to a gscope server that displays them with a delay on one scope.
//
// Everything runs single-threaded and I/O driven on one main loop, exactly
// the structure the paper describes, over real loopback sockets.
#include <cstdio>

#include "gscope.h"

int main() {
  gscope::MainLoop loop;  // real clock: real sockets need real readiness

  gscope::Scope scope(&loop, {.name = "mxtraf-monitor", .width = 200, .height = 140});
  scope.SetPollingMode(20);
  scope.SetDelayMs(100);  // user-specified display delay for buffered data

  gscope::StreamServer server(&loop, &scope);
  if (!server.Listen(0)) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u, display delay %lld ms\n", server.port(),
              static_cast<long long>(scope.delay_ms()));

  // Two clients, as if running on the traffic generator hosts: one reports
  // connections/sec, the other reports network latency.
  gscope::StreamClient client_a(&loop);
  gscope::StreamClient client_b(&loop);
  if (!client_a.Connect(server.port()) || !client_b.Connect(server.port())) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  scope.StartPolling();

  int tick_a = 0;
  loop.AddTimeoutMs(25, [&]() {
    ++tick_a;
    double conns_per_sec = 40.0 + 30.0 * ((tick_a / 20) % 2);  // square wave
    client_a.SendTuple({scope.NowMs(), conns_per_sec, "conns_per_sec"});
    return true;
  });
  int tick_b = 0;
  loop.AddTimeoutMs(40, [&]() {
    ++tick_b;
    double latency_ms = 20.0 + (tick_b % 25);  // sawtooth
    client_b.SendTuple({scope.NowMs(), latency_ms, "latency_ms"});
    return true;
  });

  // A deliberately late sample to demonstrate the drop policy.
  loop.AddTimeoutMs(900, [&]() {
    client_a.SendTuple({scope.NowMs() - 5000, 999.0, "conns_per_sec"});
    return false;
  });

  loop.AddTimeoutMs(500, [&]() {
    std::fputs(gscope::RenderAscii(scope, {.columns = 64, .rows = 10}).c_str(), stdout);
    return true;
  });

  loop.AddTimeoutMs(2500, [&loop]() {
    loop.Quit();
    return false;
  });
  loop.Run();

  const auto& stats = server.stats();
  std::printf("server: %lld tuples from %lld connections, %lld dropped late, "
              "%lld parse errors\n",
              static_cast<long long>(stats.tuples), static_cast<long long>(stats.connections),
              static_cast<long long>(stats.dropped_late),
              static_cast<long long>(stats.parse_errors));
  std::printf("clients: sent %lld + %lld tuples\n",
              static_cast<long long>(client_a.stats().tuples_sent),
              static_cast<long long>(client_b.stats().tuples_sent));

  gscope::ScopeView view(&scope);
  if (view.RenderToPpm("distributed.ppm", 360, 240)) {
    std::printf("wrote distributed.ppm\n");
  }
  return 0;
}
