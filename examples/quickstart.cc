// Quickstart: the Figure 6 sample program, line for line.
//
// The paper's fragment:
//
//     scope = gtk_scope_new(name, width, height);
//     gtk_scope_signal_new(scope, elephants_sig);
//     gtk_scope_set_polling_mode(scope, 50);     /* 50 ms */
//     gtk_scope_start_polling(scope);
//     g_io_add_watch(..., G_IO_IN, read_program, fd);
//     gtk_main();
//
// Here the "control connection" is a pipe we feed from a timer (so the demo
// is self-contained), the elephants variable is an INTEGER signal, and a FUNC
// signal shows the paper's get_cwnd-style accessor.  The scope renders ASCII
// frames to stdout and writes a final PPM screenshot.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "gscope.h"

namespace {

int g_elephants = 8;  // the polled word of memory (INTEGER signal)

// The paper's FUNC example: a function of (arg1, arg2) returning the sample.
double GetCwnd(void* arg1, void* arg2) {
  (void)arg2;
  int fd = *static_cast<int*>(arg1);
  // Stand-in for reading TCP_INFO off a socket: a sawtooth keyed by time.
  static double cwnd = 1.0;
  cwnd = cwnd >= 32.0 ? 1.0 : cwnd * 1.3 + 0.2;
  return cwnd + (fd % 3);
}

}  // namespace

int main() {
  gscope::MainLoop loop;  // gtk_main()'s event loop

  // scope = gtk_scope_new(name, width, height);
  gscope::Scope scope(&loop, {.name = "quickstart", .width = 200, .height = 120});

  // gtk_scope_signal_new(scope, elephants_sig);  -- INTEGER signal
  gscope::SignalId elephants_sig = scope.AddSignal({
      .name = "elephants",
      .source = &g_elephants,
      .min = 0,
      .max = 40,
  });

  // The CWND FUNC signal from Section 3.1.
  static int fd_for_cwnd = 7;
  gscope::SignalId cwnd_sig = scope.AddSignal({
      .name = "Cwnd",
      .source = gscope::MakeFunc(&GetCwnd, &fd_for_cwnd, nullptr),
      .min = 0,
      .max = 40,
  });

  // gtk_scope_set_polling_mode(scope, 50);  /* sampling period is 50 ms */
  scope.SetPollingMode(50);
  // gtk_scope_start_polling(scope);
  scope.StartPolling();

  // g_io_add_watch(..., G_IO_IN, read_program, fd): the I/O-driven control
  // channel.  A pipe stands in for the client connection; a timer writes
  // control updates into it.
  int control_pipe[2];
  if (pipe(control_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  loop.AddIoWatch(control_pipe[0], gscope::IoCondition::kIn,
                  [](int fd, gscope::IoCondition) {
                    // read_program(): non-blocking read, update the signal
                    // variable when control data arrives.
                    int value = 0;
                    if (read(fd, &value, sizeof(value)) == sizeof(value) &&
                        value != g_elephants) {
                      std::printf("control: elephants %d -> %d\n", g_elephants, value);
                      g_elephants = value;
                    }
                    return true;
                  });

  // The "client": every 400 ms send a new elephants count.
  int step = 0;
  loop.AddTimeoutMs(400, [&step, &control_pipe]() {
    int value = (step % 2 == 0) ? 16 : 8;
    ++step;
    ssize_t rc = write(control_pipe[1], &value, sizeof(value));
    (void)rc;
    return true;
  });

  // Print a live ASCII frame twice a second, quit after 3 seconds.
  loop.AddTimeoutMs(500, [&scope]() {
    std::fputs(gscope::RenderAscii(scope, {.columns = 64, .rows = 12}).c_str(), stdout);
    return true;
  });
  loop.AddTimeoutMs(3000, [&loop]() {
    loop.Quit();
    return false;
  });

  loop.Run();  // gtk_main();

  // Programmatic "screenshot" of the widget (Figure 1 analogue).
  gscope::ScopeView view(&scope);
  const char* out = "quickstart.ppm";
  if (view.RenderToPpm(out, 320, 220)) {
    std::printf("wrote %s\n", out);
  }
  std::printf("ticks=%lld samples=%lld elephants=%0.0f cwnd=%.2f\n",
              static_cast<long long>(scope.counters().ticks),
              static_cast<long long>(scope.counters().samples),
              scope.LatestValue(elephants_sig).value_or(-1),
              scope.LatestValue(cwnd_sig).value_or(-1));
  close(control_pipe[0]);
  close(control_pipe[1]);
  return 0;
}
