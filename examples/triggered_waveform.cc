// Section 6 future work in action: triggers that stabilize a repeating
// waveform, envelope generation across sweeps, and printable exports.
//
// A jittery square-ish wave (think: a periodic thread's execution time)
// scrolls uselessly on a free-running scope; with a rising-edge trigger the
// sweeps align, and the envelope band makes the jitter visible and
// measurable.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "gscope.h"

int main() {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::Scope scope(&loop, {.name = "triggered", .width = 1024});

  // The signal: a 2 Hz waveform sampled at 100 Hz with deterministic phase
  // jitter and noise.
  double t = 0.0;
  uint64_t rng = 0xfeedfaceull;
  auto noise = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(rng >> 40) / static_cast<double>(1 << 24) - 0.5;
  };
  double jitter = 0.0;
  gscope::SignalId sig = scope.AddSignal({
      .name = "exec_time",
      .source = gscope::MakeFunc([&]() {
        double phase = 2.0 * std::numbers::pi * 2.0 * t + jitter;
        double wave = 50.0 + 35.0 * std::tanh(3.0 * std::sin(phase));  // squarish
        return wave + 2.0 * noise();
      }),
  });

  scope.SetPollingMode(10);  // 100 Hz
  scope.StartPolling();
  loop.AddTimeoutMs(10, [&]() {
    t += 0.01;
    if (std::fmod(t, 0.5) < 0.011) {
      jitter = 0.25 * noise();  // per-cycle phase jitter
    }
    return true;
  });
  loop.RunForMs(10'240);  // fill the 1024-column trace

  const gscope::Trace* trace = scope.TraceFor(sig);
  std::vector<double> samples = trace->Values();
  std::printf("captured %zu samples of a 2 Hz wave at 100 Hz\n", samples.size());

  // Without a trigger the wave sits at an arbitrary phase; with one, every
  // sweep starts at the rising crossing of 50.
  gscope::TriggerConfig config{
      .edge = gscope::TriggerEdge::kRising,
      .level = 50.0,
      .hysteresis = 5.0,
      .holdoff = 10,
      .mode = gscope::TriggerMode::kNormal,
  };
  auto sweeps = gscope::ExtractSweeps(samples, /*width=*/50, config);
  std::printf("trigger fired %zu phase-aligned sweeps (period 50 samples)\n", sweeps.size());
  if (sweeps.size() >= 2) {
    double drift = 0.0;
    for (size_t k = 0; k < sweeps[0].samples.size(); ++k) {
      drift = std::max(drift, std::fabs(sweeps[0].samples[k] - sweeps[1].samples[k]));
    }
    std::printf("max sample difference between consecutive sweeps: %.2f "
                "(stable display; jitter shows as the envelope)\n", drift);
  }

  // Envelope generation: the min/max band across all sweeps.
  gscope::Envelope envelope(50);
  envelope.AddSweeps(samples, config);
  std::printf("envelope over %lld sweeps: max band width %.2f ruler units\n",
              static_cast<long long>(envelope.sweeps()), envelope.MaxSpread());
  std::printf("\n  column:   0     10    20    30    40\n  low:   ");
  for (size_t c = 0; c < 50; c += 10) {
    std::printf("%6.1f", envelope.LowAt(c));
  }
  std::printf("\n  high:  ");
  for (size_t c = 0; c < 50; c += 10) {
    std::printf("%6.1f", envelope.HighAt(c));
  }
  std::printf("\n\n");

  // Printing of recorded data (the third Section 6 item).
  std::printf("%s\n", gscope::ExportTextReport(scope).c_str());
  if (gscope::WriteStringToFile("triggered_waveform.csv", gscope::ExportCsv(scope))) {
    std::printf("wrote triggered_waveform.csv\n");
  }
  if (gscope::WriteStringToFile("triggered_waveform.gp", gscope::ExportGnuplot(scope))) {
    std::printf("wrote triggered_waveform.gp (feed to gnuplot -p)\n");
  }
  gscope::ScopeView view(&scope);
  if (view.RenderToPpm("triggered_waveform.ppm", 600, 300)) {
    std::printf("wrote triggered_waveform.ppm\n");
  }
  return 0;
}
