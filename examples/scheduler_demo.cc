// The proportion-period scheduler demo (Section 1 / Section 4.2).
//
// One gscope signal per running process shows its CPU proportion; the number
// of signals changes as processes come and go, and a control parameter
// (Figure 3 style) steers the demand of one process while the scope runs.
#include <cstdio>
#include <string>
#include <vector>

#include "gscope.h"
#include "sched/proportion.h"

int main() {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::ScopeSet app(&loop);
  gscope::Scope* scope =
      app.CreateScope({.name = "proportion-period", .width = 240, .height = 160});

  gscope::ProportionScheduler sched;

  struct Proc {
    int pid = 0;
    gscope::SignalId sig = 0;
    std::string name;
  };
  std::vector<Proc> procs;

  auto spawn = [&](const std::string& name, double demand, double amplitude,
                   double period_ms) {
    int pid = sched.AddProcess({.name = name,
                                .period_ms = 50,
                                .base_demand = demand,
                                .demand_amplitude = amplitude,
                                .demand_period_ms = period_ms});
    gscope::SignalSpec spec;
    spec.name = name;
    // Proportions are 0..1; the y ruler is 0..100.
    spec.source = gscope::MakeFunc([&sched, pid]() { return sched.ProportionOf(pid) * 100.0; });
    spec.filter_alpha = 0.2;  // light smoothing, as a demo of the alpha knob
    gscope::SignalId sig = scope->AddSignal(spec);
    procs.push_back({pid, sig, name});
    std::printf("spawn %-8s pid=%d signal=%d\n", name.c_str(), pid, sig);
  };

  // Control parameter: the mpeg player's base demand (Figure 3 analogue).
  double mpeg_demand = 0.4;
  app.params().Add({.name = "mpeg_demand", .storage = &mpeg_demand, .min = 0.0, .max = 0.8});

  spawn("mpeg", mpeg_demand, 0.15, 3000);
  spawn("audio", 0.15, 0.05, 1500);

  // The scope polls at the process period (Section 4.2: "we set the scope
  // polling period to be same as the process period").
  scope->SetPollingMode(50);
  scope->StartPolling();

  // Drive the scheduler from the same loop the scope polls on.
  loop.AddTimeoutMs(50, [&sched, &mpeg_demand, &procs]() {
    // Publish the control parameter into the scheduler (the application
    // reads its own parameter storage each epoch).
    (void)procs;
    sched.Step(50);
    (void)mpeg_demand;
    return true;
  });

  // Timeline of dynamic events.
  int phase = 0;
  loop.AddTimeoutMs(2000, [&]() {
    ++phase;
    if (phase == 1) {
      spawn("render", 0.35, 0.1, 2500);
    } else if (phase == 2) {
      std::printf("control: mpeg_demand -> 0.7 (via parameter window)\n");
      app.params().Set("mpeg_demand", 0.7);
      // Apply to the scheduler by respawning the process spec (the real
      // system would read the parameter each period; keep the sim simple).
      sched.RemoveProcess(procs[0].pid);
      int pid = sched.AddProcess({.name = "mpeg",
                                  .period_ms = 50,
                                  .base_demand = mpeg_demand,
                                  .demand_amplitude = 0.15,
                                  .demand_period_ms = 3000});
      procs[0].pid = pid;
      gscope::SignalId sig = procs[0].sig;
      gscope::ProportionScheduler* s = &sched;
      scope->RemoveSignal(sig);
      gscope::SignalSpec spec;
      spec.name = "mpeg";
      spec.source = gscope::MakeFunc([s, pid]() { return s->ProportionOf(pid) * 100.0; });
      procs[0].sig = scope->AddSignal(spec);
    } else if (phase == 3) {
      std::printf("exit %s\n", procs[1].name.c_str());
      sched.RemoveProcess(procs[1].pid);
      scope->RemoveSignal(procs[1].sig);
    }
    return phase < 4;
  });

  loop.AddTimeoutMs(1000, [&]() {
    std::fputs(gscope::RenderAscii(*scope, {.columns = 64, .rows = 12}).c_str(), stdout);
    std::printf("  total allocated: %.0f%%\n\n", sched.TotalAllocated() * 100.0);
    return true;
  });

  loop.RunForMs(10'000);

  gscope::ScopeView view(scope);
  if (view.RenderToPpm("scheduler_demo.ppm", 400, 260)) {
    std::printf("wrote scheduler_demo.ppm\n");
  }
  std::printf("%s", view.SignalParamsTable().c_str());
  std::printf("%s", gscope::ScopeView::ControlParamsTable(app.params()).c_str());
  return 0;
}
