// Remote scope control channel (docs/protocol.md): display targets attach
// to a running gscope server over the wire, subscribe to signal subsets by
// glob, pick their own display delay, and receive the matched tuples back
// down the same connection - no process-local AddScope call anywhere.
//
// One process, one loop, real loopback sockets: a server with a local
// display scope, two remote viewers with disjoint subscriptions, and a
// producer streaming two signals.  Exits non-zero if the echo streams are
// missing or not disjoint, so scripts/check.sh can use it as a smoke test.
#include <cstdio>
#include <string>
#include <vector>

#include "gscope.h"

int main() {
  gscope::MainLoop loop;  // real clock: real sockets need real readiness

  gscope::Scope display(&loop, {.name = "server-display", .width = 200, .height = 140});
  display.SetPollingMode(10);

  gscope::StreamServer server(&loop, &display);
  if (!server.Listen(0)) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }
  display.StartPolling();
  std::printf("server listening on 127.0.0.1:%u\n", server.port());

  // Two remote display targets: one watches TCP state with a snappy 20 ms
  // delay, the other watches latency with a deliberate 150 ms delay.
  gscope::ControlClient tcp_viewer(&loop);
  gscope::ControlClient lat_viewer(&loop);
  std::vector<std::pair<std::string, double>> tcp_seen, lat_seen;
  tcp_viewer.SetTupleCallback([&](const gscope::TupleView& t) {
    tcp_seen.emplace_back(std::string(t.name), t.value);
  });
  lat_viewer.SetTupleCallback([&](const gscope::TupleView& t) {
    lat_seen.emplace_back(std::string(t.name), t.value);
  });
  tcp_viewer.SetReplyCallback([](std::string_view line) {
    std::printf("  tcp_viewer <- %.*s\n", static_cast<int>(line.size()), line.data());
  });
  if (!tcp_viewer.Connect(server.port()) || !lat_viewer.Connect(server.port())) {
    std::fprintf(stderr, "viewer connect failed\n");
    return 1;
  }

  loop.AddTimeoutMs(30, [&]() {
    if (tcp_viewer.connected() && tcp_viewer.stats().commands_sent == 0) {
      tcp_viewer.Subscribe("tcp_*");
      tcp_viewer.SetDelay(20);
      tcp_viewer.RequestList();
    }
    if (lat_viewer.connected() && lat_viewer.stats().commands_sent == 0) {
      lat_viewer.Subscribe("latency_ms");
      lat_viewer.SetDelay(150);
    }
    return tcp_viewer.stats().commands_sent == 0 || lat_viewer.stats().commands_sent == 0;
  });

  // The producer: an instrumented application streaming two signals.
  gscope::StreamClient producer(&loop);
  if (!producer.Connect(server.port())) {
    std::fprintf(stderr, "producer connect failed\n");
    return 1;
  }
  int tick = 0;
  loop.AddTimeoutMs(15, [&]() {
    ++tick;
    producer.Send(display.NowMs(), 32.0 + (tick % 16), "tcp_cwnd");
    producer.Send(display.NowMs(), 20.0 + (tick % 25), "latency_ms");
    return true;
  });

  loop.AddTimeoutMs(1500, [&loop]() {
    loop.Quit();
    return false;
  });
  loop.Run();

  const auto& stats = server.stats();
  std::printf("server: %lld tuples in, %lld echoed to %zu sessions, %lld parse errors\n",
              static_cast<long long>(stats.tuples), static_cast<long long>(stats.tuples_echoed),
              server.control_session_count(), static_cast<long long>(stats.parse_errors));
  std::printf("tcp_viewer: %zu tuples; lat_viewer: %zu tuples\n", tcp_seen.size(),
              lat_seen.size());
  std::printf("router: %zu routes, %zu filter-excluded slots\n", server.router().route_count(),
              server.router().excluded_route_slots());

  // Smoke assertions: both subscriptions delivered, strictly disjoint.
  bool ok = !tcp_seen.empty() && !lat_seen.empty() && stats.parse_errors == 0;
  for (const auto& [name, value] : tcp_seen) {
    ok = ok && name.rfind("tcp_", 0) == 0;
  }
  for (const auto& [name, value] : lat_seen) {
    ok = ok && name == "latency_ms";
  }
  // Filtering happened at route-build time: each signal's route must carry
  // an excluded slot for the non-matching session.
  ok = ok && server.router().excluded_route_slots() >= 2;
  if (!ok) {
    std::fprintf(stderr, "SMOKE FAILED: echo streams missing or not disjoint\n");
    return 1;
  }
  std::printf("ok: disjoint delayed echo streams verified\n");
  return 0;
}
