// The Section 2 experiment, end to end: mxtraf elephants through an emulated
// WAN router, TCP vs ECN, visualized on a gscope scope (Figures 4 and 5).
//
// Runs both variants back to back, prints live ASCII scope frames, and
// writes fig4_tcp.ppm / fig5_ecn.ppm screenshots plus a timeout summary.
#include <cstdio>
#include <string>

#include "gscope.h"
#include "netsim/mxtraf.h"

namespace {

struct VariantResult {
  int64_t timeouts = 0;
  int64_t ecn_reductions = 0;
  int64_t drops = 0;
  int64_t marks = 0;
  double min_cwnd = 1e9;
};

VariantResult RunVariant(bool ecn, const std::string& ppm_path) {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::Scope scope(&loop, {.name = ecn ? "ECN" : "TCP", .width = 420, .height = 220});

  gscope::Simulator sim;
  gscope::MxtrafConfig config;
  if (ecn) {
    config.EnableEcnRed();
  }
  gscope::Mxtraf traf(&sim, config);

  int elephants = 8;
  traf.SetElephants(elephants);

  // The two signals of Figures 4/5: the elephants count and the congestion
  // window of one (arbitrarily chosen) long-lived flow.
  gscope::SignalId ele_sig = scope.AddSignal({
      .name = "elephants",
      .source = gscope::MakeFunc([&traf]() { return static_cast<double>(traf.elephants()); }),
      .min = 0,
      .max = 40,
  });
  gscope::SignalId cwnd_sig = scope.AddSignal({
      .name = "CWND",
      .source = gscope::MakeFunc([&traf]() { return traf.CwndSegments(0); }),
      .min = 0,
      .max = 40,
  });
  scope.SetPollingMode(50);

  VariantResult result;
  constexpr int kTicks = 400;  // 20 s of experiment at 50 ms/pixel
  for (int i = 0; i < kTicks; ++i) {
    if (i == kTicks / 2) {
      // "This number is changed from 8 to 16 roughly half way through."
      elephants = 16;
      traf.SetElephants(elephants);
    }
    sim.RunForMs(50);
    clock.AdvanceMs(50);
    scope.TickOnce();
    double cwnd = scope.LatestValue(cwnd_sig).value_or(0.0);
    if (cwnd > 0 && cwnd < result.min_cwnd) {
      result.min_cwnd = cwnd;
    }
    if (i % 100 == 99) {
      std::printf("%s t=%4.1fs elephants=%2.0f cwnd=%5.2f queue=%d\n",
                  scope.name().c_str(), i * 0.05,
                  scope.LatestValue(ele_sig).value_or(0), cwnd, traf.bottleneck_depth());
    }
  }

  std::fputs(gscope::RenderAscii(scope, {.columns = 72, .rows = 14}).c_str(), stdout);

  gscope::ScopeView view(&scope);
  if (view.RenderToPpm(ppm_path, 500, 300)) {
    std::printf("wrote %s\n", ppm_path.c_str());
  }

  result.timeouts = traf.TotalTimeouts();
  result.ecn_reductions = traf.TotalEcnReductions();
  result.drops = traf.bottleneck_stats().dropped_tail + traf.bottleneck_stats().dropped_red;
  result.marks = traf.bottleneck_stats().marked_ecn;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Figure 4: standard TCP through a droptail router ===\n");
  VariantResult tcp = RunVariant(false, "fig4_tcp.ppm");

  std::printf("\n=== Figure 5: ECN flows through a RED/ECN router ===\n");
  VariantResult ecn = RunVariant(true, "fig5_ecn.ppm");

  std::printf("\n%-28s %10s %10s\n", "", "TCP", "ECN");
  std::printf("%-28s %10lld %10lld\n", "retransmission timeouts",
              static_cast<long long>(tcp.timeouts), static_cast<long long>(ecn.timeouts));
  std::printf("%-28s %10lld %10lld\n", "ECN window reductions",
              static_cast<long long>(tcp.ecn_reductions),
              static_cast<long long>(ecn.ecn_reductions));
  std::printf("%-28s %10lld %10lld\n", "router drops",
              static_cast<long long>(tcp.drops), static_cast<long long>(ecn.drops));
  std::printf("%-28s %10lld %10lld\n", "router ECN marks",
              static_cast<long long>(tcp.marks), static_cast<long long>(ecn.marks));
  std::printf("%-28s %10.2f %10.2f\n", "min CWND seen (segments)", tcp.min_cwnd, ecn.min_cwnd);
  std::printf("\npaper's observation: TCP hits CWND=1 (timeouts) several times; ECN does not.\n");
  return 0;
}
