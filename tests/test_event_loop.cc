#include "runtime/event_loop.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <thread>

#include "runtime/clock.h"

namespace gscope {
namespace {

TEST(EventLoopTest, TimeoutFiresAtPeriod) {
  SimClock clock;
  MainLoop loop(&clock);
  int fired = 0;
  loop.AddTimeoutMs(10, [&fired](const TimeoutTick&) {
    ++fired;
    return true;
  });
  loop.RunForMs(100);
  // Sentinel and the timer race at the final boundary; allow either count.
  EXPECT_GE(fired, 9);
  EXPECT_LE(fired, 10);
}

TEST(EventLoopTest, TimeoutReturnFalseRemoves) {
  SimClock clock;
  MainLoop loop(&clock);
  int fired = 0;
  loop.AddTimeoutMs(10, [&fired](const TimeoutTick&) {
    ++fired;
    return false;
  });
  loop.RunForMs(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.source_count(), 0u);
}

TEST(EventLoopTest, InvalidTimeoutRejected) {
  SimClock clock;
  MainLoop loop(&clock);
  EXPECT_EQ(loop.AddTimeoutNs(0, [](const TimeoutTick&) { return true; }), 0);
  EXPECT_EQ(loop.AddTimeoutNs(-5, [](const TimeoutTick&) { return true; }), 0);
  EXPECT_EQ(loop.AddTimeoutMs(10, MainLoop::TimeoutFn{}), 0);
}

TEST(EventLoopTest, RemoveStopsDispatch) {
  SimClock clock;
  MainLoop loop(&clock);
  int fired = 0;
  SourceId id = loop.AddTimeoutMs(10, [&fired](const TimeoutTick&) {
    ++fired;
    return true;
  });
  loop.RunForMs(25);
  EXPECT_TRUE(loop.Remove(id));
  int before = fired;
  loop.RunForMs(50);
  EXPECT_EQ(fired, before);
  EXPECT_FALSE(loop.Remove(id));
}

TEST(EventLoopTest, RemoveSelfInsideCallback) {
  SimClock clock;
  MainLoop loop(&clock);
  int fired = 0;
  SourceId id = 0;
  id = loop.AddTimeoutMs(10, [&](const TimeoutTick&) {
    ++fired;
    loop.Remove(id);
    return true;  // removal must win over the keep return
  });
  loop.RunForMs(50);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, CallbackCanAddSources) {
  SimClock clock;
  MainLoop loop(&clock);
  int inner_fired = 0;
  loop.AddTimeoutMs(10, [&](const TimeoutTick&) {
    loop.AddTimeoutMs(5, [&inner_fired](const TimeoutTick&) {
      ++inner_fired;
      return false;
    });
    return false;
  });
  loop.RunForMs(50);
  EXPECT_EQ(inner_fired, 1);
}

TEST(EventLoopTest, LostTimeoutAccountingWithSimClock) {
  // Simulate a stalled dispatcher: advance the clock far past several
  // deadlines, then iterate.  Section 4.5: the tick must report the missed
  // periods and stats must accumulate them.
  SimClock clock;
  MainLoop loop(&clock);
  int64_t last_lost = -1;
  int fired = 0;
  SourceId id = loop.AddTimeoutMs(10, [&](const TimeoutTick& tick) {
    ++fired;
    last_lost = tick.lost;
    return true;
  });
  // First deadline at 10ms; jump to 45ms: 3 whole extra periods missed...
  clock.AdvanceMs(45);
  loop.Iterate(false);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(last_lost, 3);
  const TimerStats* stats = loop.StatsFor(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->fired, 1);
  EXPECT_EQ(stats->lost, 3);
  EXPECT_GT(stats->max_latency_ns, 0);
}

TEST(EventLoopTest, LostTimeoutRealignsDeadline) {
  SimClock clock;
  MainLoop loop(&clock);
  std::vector<int64_t> losses;
  loop.AddTimeoutMs(10, [&](const TimeoutTick& tick) {
    losses.push_back(tick.lost);
    return true;
  });
  clock.AdvanceMs(35);  // deadline 10, now 35 -> lost 2, next deadline 40
  loop.Iterate(false);
  clock.AdvanceMs(5);  // now 40 -> on time
  loop.Iterate(false);
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_EQ(losses[0], 2);
  EXPECT_EQ(losses[1], 0);
}

TEST(EventLoopTest, SetTimeoutPeriodPreservesStats) {
  SimClock clock;
  MainLoop loop(&clock);
  SourceId id = loop.AddTimeoutMs(10, [](const TimeoutTick&) { return true; });
  loop.RunForMs(30);
  const TimerStats* stats = loop.StatsFor(id);
  ASSERT_NE(stats, nullptr);
  int64_t fired_before = stats->fired;
  EXPECT_GT(fired_before, 0);
  EXPECT_TRUE(loop.SetTimeoutPeriodNs(id, MillisToNanos(20)));
  loop.RunForMs(40);
  EXPECT_GE(loop.StatsFor(id)->fired, fired_before + 1);
}

TEST(EventLoopTest, SetTimeoutPeriodRejectsBadArgs) {
  SimClock clock;
  MainLoop loop(&clock);
  SourceId id = loop.AddTimeoutMs(10, [](const TimeoutTick&) { return true; });
  EXPECT_FALSE(loop.SetTimeoutPeriodNs(id, 0));
  EXPECT_FALSE(loop.SetTimeoutPeriodNs(9999, MillisToNanos(5)));
}

TEST(EventLoopTest, IdleRunsWhenNothingElsePending) {
  SimClock clock;
  MainLoop loop(&clock);
  int idles = 0;
  loop.AddIdle([&idles]() {
    ++idles;
    return idles < 3;
  });
  loop.Iterate(false);
  loop.Iterate(false);
  loop.Iterate(false);
  loop.Iterate(false);
  EXPECT_EQ(idles, 3);
  EXPECT_EQ(loop.source_count(), 0u);
}

TEST(EventLoopTest, TimersPreemptIdles) {
  SimClock clock;
  MainLoop loop(&clock);
  std::vector<int> order;
  loop.AddIdle([&order]() {
    order.push_back(2);
    return false;
  });
  loop.AddTimeoutMs(10, [&order](const TimeoutTick&) {
    order.push_back(1);
    return false;
  });
  clock.AdvanceMs(10);
  loop.Iterate(false);  // timer is due: idles must not run
  loop.Iterate(false);  // now the idle runs
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EventLoopTest, IoWatchReadable) {
  SimClock clock;
  MainLoop loop(&clock);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string received;
  loop.AddIoWatch(fds[0], IoCondition::kIn, [&](int fd, IoCondition cond) {
    EXPECT_TRUE(Has(cond, IoCondition::kIn));
    char buf[16];
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      received.append(buf, static_cast<size_t>(n));
    }
    return true;
  });
  ASSERT_EQ(write(fds[1], "hi", 2), 2);
  loop.Iterate(false);
  EXPECT_EQ(received, "hi");
  close(fds[0]);
  close(fds[1]);
}

TEST(EventLoopTest, IoWatchRemovedOnFalse) {
  SimClock clock;
  MainLoop loop(&clock);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  int calls = 0;
  loop.AddIoWatch(fds[0], IoCondition::kIn, [&](int fd, IoCondition) {
    ++calls;
    char buf[16];
    (void)!read(fd, buf, sizeof(buf));
    return false;
  });
  ASSERT_EQ(write(fds[1], "x", 1), 1);
  loop.Iterate(false);
  ASSERT_EQ(write(fds[1], "y", 1), 1);
  loop.Iterate(false);
  EXPECT_EQ(calls, 1);
  close(fds[0]);
  close(fds[1]);
}

TEST(EventLoopTest, InvokeFromOtherThread) {
  MainLoop loop;  // real clock: exercises the wakeup pipe
  int value = 0;
  std::thread t([&loop, &value]() {
    loop.Invoke([&value, &loop]() {
      value = 42;
      loop.Quit();
    });
  });
  loop.Run();
  t.join();
  EXPECT_EQ(value, 42);
}

TEST(EventLoopTest, QuitStopsRun) {
  SimClock clock;
  MainLoop loop(&clock);
  int fired = 0;
  loop.AddTimeoutMs(10, [&](const TimeoutTick&) {
    if (++fired == 3) {
      loop.Quit();
    }
    return true;
  });
  loop.Run();
  EXPECT_EQ(fired, 3);
}

TEST(EventLoopTest, RunForAdvancesSimTimeExactly) {
  SimClock clock;
  MainLoop loop(&clock);
  loop.RunForMs(250);
  EXPECT_EQ(clock.NowNs(), MillisToNanos(250));
}

TEST(EventLoopTest, MultipleTimersInterleave) {
  SimClock clock;
  MainLoop loop(&clock);
  int fast = 0;
  int slow = 0;
  loop.AddTimeoutMs(10, [&fast](const TimeoutTick&) {
    ++fast;
    return true;
  });
  loop.AddTimeoutMs(30, [&slow](const TimeoutTick&) {
    ++slow;
    return true;
  });
  loop.RunForMs(90);
  EXPECT_GE(fast, 8);
  EXPECT_GE(slow, 2);
  EXPECT_GT(fast, slow);
}

TEST(EventLoopTest, SourceCountTracksAll) {
  SimClock clock;
  MainLoop loop(&clock);
  EXPECT_EQ(loop.source_count(), 0u);
  SourceId t = loop.AddTimeoutMs(10, [](const TimeoutTick&) { return true; });
  SourceId i = loop.AddIdle([]() { return true; });
  EXPECT_EQ(loop.source_count(), 2u);
  loop.Remove(t);
  loop.Remove(i);
  EXPECT_EQ(loop.source_count(), 0u);
}

TEST(EventLoopTest, RealClockTimeoutActuallyWaits) {
  MainLoop loop;  // steady clock
  SteadyClock clock;
  Nanos start = clock.NowNs();
  loop.RunForMs(30);
  Nanos elapsed = clock.NowNs() - start;
  EXPECT_GE(elapsed, MillisToNanos(25));
}

// Property: for any period p and stall s, the number of lost ticks reported
// is floor((s - p) / p) when s > p.
class LostTickProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LostTickProperty, LostMatchesStall) {
  auto [period_ms, stall_ms] = GetParam();
  SimClock clock;
  MainLoop loop(&clock);
  int64_t lost = -1;
  loop.AddTimeoutMs(period_ms, [&lost](const TimeoutTick& tick) {
    lost = tick.lost;
    return false;
  });
  clock.AdvanceMs(stall_ms);
  loop.Iterate(false);
  if (stall_ms >= period_ms) {
    EXPECT_EQ(lost, (stall_ms - period_ms) / period_ms);
  } else {
    EXPECT_EQ(lost, -1);  // never fired
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LostTickProperty,
                         ::testing::Combine(::testing::Values(1, 5, 10, 50),
                                            ::testing::Values(5, 10, 37, 100, 1000)));

}  // namespace
}  // namespace gscope
