#include "render/export.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "runtime/clock.h"

namespace gscope {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  ExportTest() : loop_(&clock_), scope_(&loop_, {.name = "exp", .width = 32}) {}

  void FillTwoSignals(int ticks) {
    a_ = 0;
    b_ = 0;
    scope_.AddSignal({.name = "alpha", .source = &a_});
    scope_.AddSignal({.name = "beta", .source = &b_});
    scope_.SetPollingMode(10);
    for (int i = 0; i < ticks; ++i) {
      a_ = i;
      b_ = 100 - i;
      scope_.TickOnce();
    }
  }

  SimClock clock_;
  MainLoop loop_;
  Scope scope_;
  int32_t a_ = 0;
  int32_t b_ = 0;
};

TEST_F(ExportTest, TraceStatsBasics) {
  Trace trace(8);
  trace.Push(1.0);
  trace.Push(3.0);
  trace.Push(5.0);
  TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.points, 3u);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(8.0 / 3.0), 1e-12);
}

TEST_F(ExportTest, TraceStatsEmpty) {
  Trace trace(4);
  TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.points, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST_F(ExportTest, CsvHasHeaderAndRows) {
  FillTwoSignals(5);
  std::string csv = ExportCsv(scope_);
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_ms,alpha,beta");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 5);
}

TEST_F(ExportTest, CsvNewestRowIsTimeZero) {
  FillTwoSignals(4);
  std::string csv = ExportCsv(scope_);
  // Last data row starts with offset 0 and carries the latest values.
  size_t last_newline = csv.find_last_of('\n', csv.size() - 2);
  std::string last_row = csv.substr(last_newline + 1);
  EXPECT_EQ(last_row.rfind("0,", 0), 0u);
  EXPECT_NE(last_row.find("3"), std::string::npos);   // a = 3 on the last tick
  EXPECT_NE(last_row.find("97"), std::string::npos);  // b = 97
}

TEST_F(ExportTest, CsvTimeStepMatchesPeriod) {
  FillTwoSignals(3);
  std::string csv = ExportCsv(scope_);
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line.rfind("-20,", 0), 0u);  // oldest of 3 rows at 10 ms period
  std::getline(in, line);
  EXPECT_EQ(line.rfind("-10,", 0), 0u);
}

TEST_F(ExportTest, CsvEmptyScope) {
  std::string csv = ExportCsv(scope_);
  EXPECT_EQ(csv, "time_ms\n");
}

TEST_F(ExportTest, GnuplotContainsScriptAndData) {
  FillTwoSignals(4);
  std::string script = ExportGnuplot(scope_);
  EXPECT_NE(script.find("$data << EOD"), std::string::npos);
  EXPECT_NE(script.find("EOD"), std::string::npos);
  EXPECT_NE(script.find("plot"), std::string::npos);
  EXPECT_NE(script.find("title 'alpha'"), std::string::npos);
  EXPECT_NE(script.find("title 'beta'"), std::string::npos);
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
}

TEST_F(ExportTest, TextReportListsSignalsAndStats) {
  FillTwoSignals(10);
  std::string report = ExportTextReport(scope_);
  EXPECT_NE(report.find("gscope report: exp"), std::string::npos);
  EXPECT_NE(report.find("period=10ms"), std::string::npos);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  // alpha ranges 0..9.
  EXPECT_NE(report.find("9"), std::string::npos);
}

TEST_F(ExportTest, WriteStringToFileRoundTrip) {
  std::string path = ::testing::TempDir() + "export_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST_F(ExportTest, WriteStringToFileBadPath) {
  EXPECT_FALSE(WriteStringToFile("/nonexistent/dir/file.txt", "x"));
}

TEST_F(ExportTest, ShorterTraceRightAligned) {
  // A signal added late has fewer columns; its values must align to the
  // newest rows, not the oldest.
  int32_t late = 0;
  scope_.AddSignal({.name = "early", .source = &a_});
  scope_.SetPollingMode(10);
  a_ = 1;
  scope_.TickOnce();
  scope_.TickOnce();
  scope_.AddSignal({.name = "late", .source = &late});
  late = 42;
  scope_.TickOnce();
  std::string csv = ExportCsv(scope_);
  std::istringstream in(csv);
  std::string header;
  std::string row1;
  std::string row2;
  std::string row3;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  std::getline(in, row3);
  EXPECT_EQ(row1.substr(row1.find_last_of(',')), ",");   // late empty on oldest row
  EXPECT_EQ(row3.substr(row3.find_last_of(',')), ",42");  // present on newest
}

}  // namespace
}  // namespace gscope
