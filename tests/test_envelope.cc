#include "core/envelope.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace gscope {
namespace {

TEST(EnvelopeTest, EmptyEnvelope) {
  Envelope env(8);
  EXPECT_EQ(env.width(), 8u);
  EXPECT_EQ(env.sweeps(), 0);
  EXPECT_EQ(env.CoverageAt(0), 0);
  EXPECT_DOUBLE_EQ(env.MaxSpread(), 0.0);
}

TEST(EnvelopeTest, SingleSweepBoundsEqualSamples) {
  Envelope env(4);
  env.AddSweep({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(env.sweeps(), 1);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(env.LowAt(i), static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(env.HighAt(i), static_cast<double>(i + 1));
    EXPECT_EQ(env.CoverageAt(i), 1);
  }
  EXPECT_DOUBLE_EQ(env.MaxSpread(), 0.0);
}

TEST(EnvelopeTest, BoundsGrowAcrossSweeps) {
  Envelope env(3);
  env.AddSweep({1.0, 5.0, 3.0});
  env.AddSweep({2.0, 4.0, 9.0});
  env.AddSweep({0.0, 6.0, 3.0});
  EXPECT_DOUBLE_EQ(env.LowAt(0), 0.0);
  EXPECT_DOUBLE_EQ(env.HighAt(0), 2.0);
  EXPECT_DOUBLE_EQ(env.LowAt(1), 4.0);
  EXPECT_DOUBLE_EQ(env.HighAt(1), 6.0);
  EXPECT_DOUBLE_EQ(env.LowAt(2), 3.0);
  EXPECT_DOUBLE_EQ(env.HighAt(2), 9.0);
  EXPECT_DOUBLE_EQ(env.MaxSpread(), 6.0);  // column 2: 9 - 3
}

TEST(EnvelopeTest, ShortSweepCoversPrefixOnly) {
  Envelope env(4);
  env.AddSweep({1.0, 2.0});
  EXPECT_EQ(env.CoverageAt(0), 1);
  EXPECT_EQ(env.CoverageAt(1), 1);
  EXPECT_EQ(env.CoverageAt(2), 0);
}

TEST(EnvelopeTest, LongSweepTruncated) {
  Envelope env(2);
  env.AddSweep({1.0, 2.0, 99.0});
  EXPECT_EQ(env.CoverageAt(1), 1);
  EXPECT_DOUBLE_EQ(env.HighAt(1), 2.0);
}

TEST(EnvelopeTest, EmptySweepIgnored) {
  Envelope env(4);
  env.AddSweep({});
  EXPECT_EQ(env.sweeps(), 0);
}

TEST(EnvelopeTest, ResetClears) {
  Envelope env(2);
  env.AddSweep({5.0, 5.0});
  env.Reset();
  EXPECT_EQ(env.sweeps(), 0);
  EXPECT_EQ(env.CoverageAt(0), 0);
}

TEST(EnvelopeTest, ZeroWidthClamped) {
  Envelope env(0);
  EXPECT_EQ(env.width(), 1u);
}

TEST(EnvelopeTest, JitteryWaveBandWidthReflectsJitter) {
  // A sine with phase jitter produces a wide envelope; a clean sine a thin
  // one.  The jitter band is exactly what envelope mode exists to show.
  auto make_wave = [](double jitter) {
    std::vector<double> wave;
    uint64_t rng = 99;
    auto next = [&rng]() {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<double>(rng >> 40) / static_cast<double>(1 << 24) - 0.5;
    };
    for (int cycle = 0; cycle < 30; ++cycle) {
      double phase = jitter * next();
      for (int i = 0; i < 50; ++i) {
        wave.push_back(50.0 +
                       40.0 * std::sin(2.0 * std::numbers::pi * i / 50.0 + phase));
      }
    }
    return wave;
  };

  TriggerConfig config{.edge = TriggerEdge::kRising, .level = 50.0, .hysteresis = 4.0,
                       .mode = TriggerMode::kNormal};

  Envelope clean(40);
  clean.AddSweeps(make_wave(0.0), config);
  Envelope jittery(40);
  jittery.AddSweeps(make_wave(0.6), config);

  ASSERT_GT(clean.sweeps(), 5);
  ASSERT_GT(jittery.sweeps(), 5);
  EXPECT_LT(clean.MaxSpread(), 1.0);
  EXPECT_GT(jittery.MaxSpread(), clean.MaxSpread() * 3);
}

TEST(EnvelopeTest, AddSweepsUsesOnlyTriggeredSweeps) {
  std::vector<double> flat(200, 10.0);
  Envelope env(20);
  env.AddSweeps(flat, TriggerConfig{.level = 50.0, .mode = TriggerMode::kAuto});
  // Auto free-run sweeps are not triggered; the envelope stays empty.
  EXPECT_EQ(env.sweeps(), 0);
}

// Property: bounds always bracket every contributing sample.
class EnvelopeBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnvelopeBoundProperty, LowLeHigh) {
  int sweeps = GetParam();
  Envelope env(16);
  uint64_t rng = static_cast<uint64_t>(sweeps) * 2654435761u + 1;
  for (int s = 0; s < sweeps; ++s) {
    std::vector<double> sweep(16);
    for (auto& v : sweep) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      v = static_cast<double>(static_cast<int64_t>(rng >> 33)) / (1ll << 24);
    }
    env.AddSweep(sweep);
  }
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_LE(env.LowAt(i), env.HighAt(i));
    EXPECT_EQ(env.CoverageAt(i), sweeps);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, EnvelopeBoundProperty, ::testing::Values(1, 2, 5, 20, 100));

}  // namespace
}  // namespace gscope
