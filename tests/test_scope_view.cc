#include "render/scope_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "render/color.h"
#include "runtime/clock.h"

namespace gscope {
namespace {

class ScopeViewTest : public ::testing::Test {
 protected:
  ScopeViewTest() : loop_(&clock_), scope_(&loop_, {.name = "view", .width = 128}) {}

  SimClock clock_;
  MainLoop loop_;
  Scope scope_;
};

TEST_F(ScopeViewTest, RenderPaintsSignalInItsColor) {
  int32_t x = 50;
  SignalId id = scope_.AddSignal({.name = "sig", .source = &x, .color = Rgb{9, 9, 9}});
  for (int i = 0; i < 30; ++i) {
    scope_.TickOnce();
  }
  (void)id;
  Canvas canvas(200, 160);
  ScopeView view(&scope_);
  view.Render(&canvas);
  EXPECT_GT(canvas.CountPixels(Rgb{9, 9, 9}), 10);
}

TEST_F(ScopeViewTest, HiddenSignalNotPainted) {
  int32_t x = 50;
  SignalId id = scope_.AddSignal({.name = "sig", .source = &x, .color = Rgb{9, 9, 9}});
  for (int i = 0; i < 10; ++i) {
    scope_.TickOnce();
  }
  scope_.SetHidden(id, true);
  Canvas canvas(200, 160);
  ScopeView view(&scope_, {.draw_legend = false});
  view.Render(&canvas);
  EXPECT_EQ(canvas.CountPixels(Rgb{9, 9, 9}), 0);
}

TEST_F(ScopeViewTest, HigherValueDrawsHigherOnCanvas) {
  int32_t x = 10;
  scope_.AddSignal({.name = "sig", .source = &x, .color = Rgb{9, 9, 9}});
  for (int i = 0; i < 20; ++i) {
    scope_.TickOnce();
  }
  Canvas low(200, 160);
  ScopeView view(&scope_, {.draw_legend = false});
  view.Render(&low);

  x = 90;
  for (int i = 0; i < 20; ++i) {
    scope_.TickOnce();
  }
  Canvas high(200, 160);
  view.Render(&high);

  auto mean_y = [](const Canvas& canvas, Rgb color) {
    int64_t sum = 0;
    int64_t count = 0;
    for (int y = 0; y < canvas.height(); ++y) {
      for (int xx = 0; xx < canvas.width(); ++xx) {
        if (canvas.GetPixel(xx, y) == color) {
          sum += y;
          ++count;
        }
      }
    }
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  };
  // y grows downward: the higher-valued trace has smaller mean y.
  EXPECT_LT(mean_y(high, Rgb{9, 9, 9}), mean_y(low, Rgb{9, 9, 9}));
}

TEST_F(ScopeViewTest, StepsAndPointsModesRender) {
  int32_t x = 30;
  SignalId id = scope_.AddSignal({.name = "sig", .source = &x, .color = Rgb{9, 9, 9}});
  for (int i = 0; i < 20; ++i) {
    x = (i % 2) ? 20 : 70;
    scope_.TickOnce();
  }
  Canvas line(200, 160);
  ScopeView view(&scope_, {.draw_legend = false});
  view.Render(&line);
  scope_.SetLineMode(id, LineMode::kPoints);
  Canvas points(200, 160);
  view.Render(&points);
  scope_.SetLineMode(id, LineMode::kSteps);
  Canvas steps(200, 160);
  view.Render(&steps);
  int64_t n_line = line.CountPixels(Rgb{9, 9, 9});
  int64_t n_points = points.CountPixels(Rgb{9, 9, 9});
  int64_t n_steps = steps.CountPixels(Rgb{9, 9, 9});
  EXPECT_GT(n_points, 0);
  EXPECT_GT(n_line, n_points);  // connecting lines add pixels
  EXPECT_GT(n_steps, n_points);
}

TEST_F(ScopeViewTest, FrequencyDomainRendersSpectrum) {
  double v = 0.0;
  scope_.AddSignal({.name = "tone", .source = &v, .min = -2, .max = 2, .color = Rgb{9, 9, 9}});
  scope_.SetPollingMode(10);  // 100 Hz sampling
  for (int i = 0; i < 128; ++i) {
    v = std::sin(2 * 3.14159265358979 * 10.0 * i * 0.01);  // 10 Hz tone
    scope_.TickOnce();
  }
  scope_.SetDomain(DisplayDomain::kFrequency);
  Canvas canvas(256, 160);
  ScopeView view(&scope_, {.draw_legend = false});
  view.Render(&canvas);
  EXPECT_GT(canvas.CountPixels(Rgb{9, 9, 9}), 20);
}

TEST_F(ScopeViewTest, RenderToPpmWritesFile) {
  std::string path = ::testing::TempDir() + "scope_view_test.ppm";
  int32_t x = 40;
  scope_.AddSignal({.name = "sig", .source = &x});
  scope_.TickOnce();
  ScopeView view(&scope_);
  EXPECT_TRUE(view.RenderToPpm(path, 200, 160));
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  fclose(f);
  std::remove(path.c_str());
}

TEST_F(ScopeViewTest, SignalParamsTableListsEverySignal) {
  int32_t x = 3;
  scope_.AddSignal({.name = "alpha", .source = &x, .min = 0, .max = 40});
  scope_.AddSignal({.name = "beta", .source = MakeFunc([]() { return 1.0; }),
                    .filter_alpha = 0.5});
  scope_.TickOnce();
  ScopeView view(&scope_);
  std::string table = view.SignalParamsTable();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("INTEGER"), std::string::npos);
  EXPECT_NE(table.find("FUNC"), std::string::npos);
  EXPECT_NE(table.find("0.5"), std::string::npos);
}

TEST_F(ScopeViewTest, ControlParamsTable) {
  ParamRegistry params;
  int32_t elephants = 8;
  double rate = 1.5;
  params.Add({.name = "elephants", .storage = &elephants, .min = 0, .max = 40});
  params.Add({.name = "rate", .storage = &rate});
  std::string table = ScopeView::ControlParamsTable(params);
  EXPECT_NE(table.find("elephants"), std::string::npos);
  EXPECT_NE(table.find("8.00"), std::string::npos);
  EXPECT_NE(table.find("[0.00, 40.00]"), std::string::npos);
  EXPECT_NE(table.find("(unbounded)"), std::string::npos);
}

TEST_F(ScopeViewTest, TitleShowsWidgetState) {
  // The Figure 1 widgets: period, delay, zoom, bias all appear in the title.
  scope_.SetPollingMode(25);
  scope_.SetDelayMs(75);
  scope_.SetZoom(2.0);
  scope_.SetBias(5.0);
  Canvas canvas(400, 200);
  ScopeView view(&scope_);
  view.Render(&canvas);  // smoke: text rendering of all states must not crash
  EXPECT_GT(canvas.CountPixels(kWhite), 0);
}


TEST_F(ScopeViewTest, TriggeredViewIsPhaseStable) {
  // The point of triggers (Section 6): frames taken at different times show
  // the repeating waveform at the same position.  Without the trigger the
  // wave scrolls, so plain renders differ.
  double v = 0.0;
  int tick = 0;
  SignalId id = scope_.AddSignal({.name = "wave",
                                  .source = MakeFunc([&]() {
                                    ++tick;
                                    return 50.0 + 40.0 * std::sin(2 * 3.14159265358979 *
                                                                  (tick + 0.37) / 25.0);
                                  }),
                                  .color = Rgb{9, 9, 9}});
  (void)v;
  for (int i = 0; i < 100; ++i) {
    scope_.TickOnce();
  }
  TriggerConfig trigger{.edge = TriggerEdge::kRising, .level = 50.0, .hysteresis = 5.0,
                        .mode = TriggerMode::kNormal};
  Canvas frame1(220, 160);
  ScopeView view(&scope_, {.draw_legend = false});
  ASSERT_TRUE(view.RenderTriggered(&frame1, id, trigger));

  // Advance by a non-multiple of the 25-sample period and re-render.
  for (int i = 0; i < 13; ++i) {
    scope_.TickOnce();
  }
  Canvas frame2(220, 160);
  ASSERT_TRUE(view.RenderTriggered(&frame2, id, trigger));
  Canvas plain2(220, 160);
  view.Render(&plain2);

  // Compare only the signal-coloured pixels.
  auto signal_pixels = [](const Canvas& canvas) {
    std::vector<std::pair<int, int>> pixels;
    for (int y = 0; y < canvas.height(); ++y) {
      for (int x = 0; x < canvas.width(); ++x) {
        if (canvas.GetPixel(x, y) == Rgb{9, 9, 9}) {
          pixels.emplace_back(x, y);
        }
      }
    }
    return pixels;
  };
  auto p1 = signal_pixels(frame1);
  auto p2 = signal_pixels(frame2);
  ASSERT_FALSE(p1.empty());
  // Triggered frames match almost exactly (tiny edge effects allowed).
  size_t common = 0;
  for (const auto& px : p1) {
    if (std::find(p2.begin(), p2.end(), px) != p2.end()) {
      ++common;
    }
  }
  EXPECT_GT(static_cast<double>(common) / static_cast<double>(p1.size()), 0.9);
}

TEST_F(ScopeViewTest, TriggeredViewFailsWithoutTrigger) {
  int32_t flat = 10;
  SignalId id = scope_.AddSignal({.name = "flat", .source = &flat});
  for (int i = 0; i < 50; ++i) {
    scope_.TickOnce();
  }
  TriggerConfig trigger{.edge = TriggerEdge::kRising, .level = 90.0,
                        .mode = TriggerMode::kNormal};
  Canvas canvas(220, 160);
  ScopeView view(&scope_);
  EXPECT_FALSE(view.RenderTriggered(&canvas, id, trigger));
  EXPECT_FALSE(view.RenderTriggered(&canvas, 999, trigger));
}

TEST_F(ScopeViewTest, TriggeredViewDrawsEnvelopeBand) {
  // A jittery wave leaves a visible dim band behind the sweep.
  int tick = 0;
  uint64_t rng = 7;
  SignalId id = scope_.AddSignal({.name = "jit",
                                  .source = MakeFunc([&]() {
                                    ++tick;
                                    rng = rng * 6364136223846793005ull + 1;
                                    double noise =
                                        static_cast<double>(rng >> 40) / (1 << 24) - 0.5;
                                    return 50.0 +
                                           35.0 * std::sin(2 * 3.14159265358979 * tick / 20.0) +
                                           8.0 * noise;
                                  }),
                                  .color = Rgb{9, 9, 9}});
  for (int i = 0; i < 120; ++i) {
    scope_.TickOnce();
  }
  TriggerConfig trigger{.edge = TriggerEdge::kRising, .level = 50.0, .hysteresis = 5.0,
                        .mode = TriggerMode::kNormal};
  Canvas canvas(220, 160);
  ScopeView view(&scope_, {.draw_legend = false});
  ASSERT_TRUE(view.RenderTriggered(&canvas, id, trigger));
  EXPECT_GT(canvas.CountPixels(kDimGray), 100);  // envelope band + grid dots
}

}  // namespace
}  // namespace gscope
