// Unit tests for the control-channel building blocks: glob matching, the
// subscription filter's epoch discipline, line framing boundaries, and the
// framed writer's whole-frame backlog policy.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "core/signal_filter.h"
#include "net/line_framer.h"
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"

namespace gscope {
namespace {

TEST(GlobMatch, Literals) {
  EXPECT_TRUE(GlobMatch("cwnd", "cwnd"));
  EXPECT_FALSE(GlobMatch("cwnd", "cwnd2"));
  EXPECT_FALSE(GlobMatch("cwnd2", "cwnd"));
  EXPECT_TRUE(GlobMatch("", ""));
  EXPECT_FALSE(GlobMatch("", "x"));
}

TEST(GlobMatch, Star) {
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("tcp_*", "tcp_cwnd"));
  EXPECT_FALSE(GlobMatch("tcp_*", "udp_cwnd"));
  EXPECT_TRUE(GlobMatch("*_cwnd", "tcp_cwnd"));
  EXPECT_TRUE(GlobMatch("a*b*c", "a_x_b_y_c"));
  EXPECT_FALSE(GlobMatch("a*b*c", "a_x_c_y_b"));
  EXPECT_TRUE(GlobMatch("**", "x"));
  // Backtracking: the first '*' must be able to re-expand.
  EXPECT_TRUE(GlobMatch("*abc", "ababc"));
}

TEST(GlobMatch, QuestionMark) {
  EXPECT_TRUE(GlobMatch("h?st", "host"));
  EXPECT_FALSE(GlobMatch("h?st", "hst"));
  EXPECT_TRUE(GlobMatch("conn_?", "conn_1"));
  EXPECT_FALSE(GlobMatch("conn_?", "conn_12"));
  EXPECT_TRUE(GlobMatch("?*", "x"));
  EXPECT_FALSE(GlobMatch("?*", ""));
}

TEST(SignalFilter, EmptyMatchesNothing) {
  SignalFilter filter;
  EXPECT_FALSE(filter.Matches("anything"));
  EXPECT_TRUE(filter.empty());
}

TEST(SignalFilter, AddRemoveBumpEpoch) {
  SignalFilter filter;
  uint64_t e0 = filter.epoch();
  EXPECT_TRUE(filter.Add("tcp_*"));
  EXPECT_GT(filter.epoch(), e0);
  EXPECT_TRUE(filter.Matches("tcp_cwnd"));
  EXPECT_FALSE(filter.Matches("udp_cwnd"));

  // Duplicates and empty patterns change nothing.
  uint64_t e1 = filter.epoch();
  EXPECT_FALSE(filter.Add("tcp_*"));
  EXPECT_FALSE(filter.Add(""));
  EXPECT_EQ(filter.epoch(), e1);

  EXPECT_TRUE(filter.Add("latency"));
  EXPECT_TRUE(filter.Matches("latency"));
  EXPECT_EQ(filter.pattern_count(), 2u);

  EXPECT_TRUE(filter.Remove("tcp_*"));
  EXPECT_FALSE(filter.Matches("tcp_cwnd"));
  EXPECT_TRUE(filter.Matches("latency"));
  EXPECT_FALSE(filter.Remove("tcp_*"));  // already gone
}

// -- LineFramer boundaries ---------------------------------------------------

std::vector<std::string> Feed(LineFramer& framer, const std::vector<std::string>& chunks,
                              int64_t* overlong) {
  std::vector<std::string> lines;
  for (const std::string& chunk : chunks) {
    framer.Consume(chunk.data(), chunk.size(), overlong,
                   [&](std::string_view line) { lines.emplace_back(line); });
  }
  return lines;
}

TEST(LineFramer, ExactMaxLineSplitAcrossReadsParses) {
  // A line of exactly max_line_bytes must parse as ONE line no matter how it
  // is split across reads.
  const size_t kMax = 16;
  std::string line(kMax, 'x');
  for (size_t split = 1; split < kMax; ++split) {
    LineFramer framer(kMax);
    int64_t overlong = 0;
    auto lines = Feed(framer, {line.substr(0, split), line.substr(split) + "\n"}, &overlong);
    ASSERT_EQ(lines.size(), 1u) << "split at " << split;
    EXPECT_EQ(lines[0], line);
    EXPECT_EQ(overlong, 0) << "split at " << split;
  }
}

TEST(LineFramer, MaxPlusOneCountsExactlyOneErrorAndResyncs) {
  const size_t kMax = 16;
  std::string line(kMax + 1, 'y');
  for (size_t split = 1; split <= kMax; ++split) {
    LineFramer framer(kMax);
    int64_t overlong = 0;
    auto lines =
        Feed(framer, {line.substr(0, split), line.substr(split) + "\nok\n"}, &overlong);
    EXPECT_EQ(overlong, 1) << "split at " << split;
    ASSERT_EQ(lines.size(), 1u) << "split at " << split;
    EXPECT_EQ(lines[0], "ok");  // resynchronized at the next newline
  }
}

TEST(LineFramer, CrlfAtExactBoundary) {
  // The '\r' counts toward the line length (the parser strips it as
  // whitespace): content of max-1 plus '\r' is exactly at the cap.
  const size_t kMax = 8;
  LineFramer framer(kMax);
  int64_t overlong = 0;
  std::string at_cap = std::string(kMax - 1, 'a') + "\r\n";
  std::string over_cap = std::string(kMax, 'b') + "\r\n";
  auto lines = Feed(framer, {at_cap, over_cap, "ok\r\n"}, &overlong);
  EXPECT_EQ(overlong, 1);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], std::string(kMax - 1, 'a') + "\r");
  EXPECT_EQ(lines[1], "ok\r");
}

TEST(LineFramer, FlushTailDeliversUnterminatedLine) {
  LineFramer framer(64);
  int64_t overlong = 0;
  std::string chunk = "done\nhalf";
  std::vector<std::string> lines;
  framer.Consume(chunk.data(), chunk.size(), &overlong,
                 [&](std::string_view line) { lines.emplace_back(line); });
  framer.FlushTail([&](std::string_view line) { lines.emplace_back(line); });
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "done");
  EXPECT_EQ(lines[1], "half");
}

TEST(LineFramer, FlushTailSkipsDiscardedLine) {
  LineFramer framer(4);
  int64_t overlong = 0;
  std::string chunk = "toolongline";  // over cap, no newline yet
  framer.Consume(chunk.data(), chunk.size(), &overlong, [&](std::string_view) { FAIL(); });
  EXPECT_EQ(overlong, 1);
  framer.FlushTail([&](std::string_view) { FAIL(); });
}

// -- FramedWriter ------------------------------------------------------------

TEST(FramedWriter, WholeFrameRollbackOnOverflow) {
  MainLoop loop;
  FramedWriter writer(&loop, 10);
  writer.BeginFrame().append("12345\n");
  EXPECT_TRUE(writer.CommitFrame());
  // This frame would push the backlog to 12 > 10: rolled back whole.
  writer.BeginFrame().append("67890\n");
  EXPECT_FALSE(writer.CommitFrame());
  EXPECT_EQ(writer.pending_bytes(), 6u);
  EXPECT_EQ(writer.stats().frames_committed, 1);
  EXPECT_EQ(writer.stats().frames_dropped, 1);
  // A smaller frame still fits afterwards.
  writer.BeginFrame().append("abc\n");
  EXPECT_TRUE(writer.CommitFrame());
  EXPECT_EQ(writer.pending_bytes(), 10u);
}

TEST(FramedWriter, DrainsThroughPipeAndPreservesFrames) {
  MainLoop loop;
  int fds[2];
  ASSERT_EQ(pipe2(fds, O_NONBLOCK), 0);
  FramedWriter writer(&loop, 1 << 16);
  // Buffer frames before attaching: pre-connect queuing.
  for (int i = 0; i < 100; ++i) {
    writer.BeginFrame().append("frame-" + std::to_string(i) + "\n");
    ASSERT_TRUE(writer.CommitFrame());
  }
  writer.Attach(fds[1]);
  std::string received;
  char buf[4096];
  for (int iter = 0; iter < 200 && writer.pending_bytes() > 0; ++iter) {
    loop.Iterate(false);
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
      received.append(buf, static_cast<size_t>(n));
    }
  }
  EXPECT_EQ(writer.pending_bytes(), 0u);
  // Every committed frame arrived intact and in order.
  size_t pos = 0;
  for (int i = 0; i < 100; ++i) {
    std::string expect = "frame-" + std::to_string(i) + "\n";
    ASSERT_EQ(received.compare(pos, expect.size(), expect), 0) << "frame " << i;
    pos += expect.size();
  }
  EXPECT_EQ(pos, received.size());
  writer.Detach();
  close(fds[0]);
  close(fds[1]);
}

}  // namespace
}  // namespace gscope
