#include "core/file_probe.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/scope.h"
#include "runtime/clock.h"

namespace gscope {
namespace {

class FileProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "probe_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }

  std::string path_;
};

TEST_F(FileProbeTest, ReadsFirstNumber) {
  WriteFile("3.14 other stuff\n");
  FileProbe probe(path_);
  EXPECT_DOUBLE_EQ(probe.Read(), 3.14);
  EXPECT_EQ(probe.errors(), 0);
}

TEST_F(FileProbeTest, FieldSelection) {
  WriteFile("0.52 0.44 0.41 3/189 12021\n");  // /proc/loadavg shape
  FileProbe probe(path_, {.field = 2});
  EXPECT_DOUBLE_EQ(probe.Read(), 0.41);
}

TEST_F(FileProbeTest, SkipLines) {
  WriteFile("header line\nvalue: 42\n");
  FileProbe probe(path_, {.skip_lines = 1, .field = 1});
  EXPECT_DOUBLE_EQ(probe.Read(), 42.0);
}

TEST_F(FileProbeTest, NumericPrefixAccepted) {
  WriteFile("85% used\n");
  FileProbe probe(path_);
  EXPECT_DOUBLE_EQ(probe.Read(), 85.0);
}

TEST_F(FileProbeTest, RereadsChangingFile) {
  WriteFile("1\n");
  FileProbe probe(path_);
  EXPECT_DOUBLE_EQ(probe.Read(), 1.0);
  WriteFile("2\n");
  EXPECT_DOUBLE_EQ(probe.Read(), 2.0);
  EXPECT_EQ(probe.reads(), 2);
}

TEST_F(FileProbeTest, MissingFileUsesFallback) {
  FileProbe probe("/nonexistent/never", {.fallback = -1.0});
  EXPECT_DOUBLE_EQ(probe.Read(), -1.0);
  EXPECT_EQ(probe.errors(), 1);
}

TEST_F(FileProbeTest, HoldOnErrorKeepsLastGoodValue) {
  WriteFile("7.5\n");
  FileProbe probe(path_);
  EXPECT_DOUBLE_EQ(probe.Read(), 7.5);
  std::remove(path_.c_str());
  EXPECT_DOUBLE_EQ(probe.Read(), 7.5);  // held
  EXPECT_EQ(probe.errors(), 1);
}

TEST_F(FileProbeTest, NoHoldReturnsFallback) {
  WriteFile("7.5\n");
  FileProbe probe(path_, {.fallback = 0.0, .hold_on_error = false});
  probe.Read();
  std::remove(path_.c_str());
  EXPECT_DOUBLE_EQ(probe.Read(), 0.0);
}

TEST_F(FileProbeTest, NonNumericFieldIsError) {
  WriteFile("abc def\n");
  FileProbe probe(path_, {.fallback = 9.0, .hold_on_error = false});
  EXPECT_DOUBLE_EQ(probe.Read(), 9.0);
  EXPECT_EQ(probe.errors(), 1);
}

TEST_F(FileProbeTest, FieldBeyondLineIsError) {
  WriteFile("1 2\n");
  FileProbe probe(path_, {.field = 5, .fallback = -2.0, .hold_on_error = false});
  EXPECT_DOUBLE_EQ(probe.Read(), -2.0);
}

TEST_F(FileProbeTest, AsScopeSignal) {
  // The gstripchart use case end to end: a scope polls the file.
  WriteFile("10\n");
  SimClock clock;
  MainLoop loop(&clock);
  Scope scope(&loop, {.name = "probe", .width = 32});
  SignalId id = scope.AddSignal({.name = "loadavg", .source = MakeFileProbeSource(path_)});
  scope.SetPollingMode(10);
  scope.StartPolling();
  loop.RunForMs(50);
  EXPECT_DOUBLE_EQ(scope.LatestValue(id).value_or(-1), 10.0);
  WriteFile("20\n");
  loop.RunForMs(50);
  EXPECT_DOUBLE_EQ(scope.LatestValue(id).value_or(-1), 20.0);
}

}  // namespace
}  // namespace gscope
