// End-to-end tests of the Section 4.4 client/server library, running client,
// server and scope on one real-clock main loop (single-threaded, I/O driven,
// exactly the paper's structure).
#include <gtest/gtest.h>

#include "core/scope.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  StreamTest() : scope_(&loop_, {.name = "remote", .width = 64}) {
    scope_.SetPollingMode(5);
  }

  // Runs the loop until `pred` holds or the budget expires.
  bool RunUntil(const std::function<bool()>& pred, int max_ms = 2000) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop_.RunForMs(1);
    }
    return pred();
  }

  MainLoop loop_;  // real clock: sockets need real readiness
  Scope scope_;
};

TEST_F(StreamTest, ListenOnEphemeralPort) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  EXPECT_GT(server.port(), 0);
}

TEST_F(StreamTest, ClientConnectsAndServerAccepts) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  EXPECT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  EXPECT_EQ(server.stats().connections, 1);
}

TEST_F(StreamTest, TuplesFlowIntoScopeSignal) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));

  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // Stamp with the scope's own clock (the paper assumes correlatable time).
  client.SendTuple({scope_.NowMs(), 42.0, "remote_cwnd"});
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));

  // Auto-created BUFFER signal carries the value after a poll.
  ASSERT_TRUE(RunUntil([&]() { return scope_.FindSignal("remote_cwnd") != 0; }));
  SignalId id = scope_.FindSignal("remote_cwnd");
  ASSERT_TRUE(RunUntil([&]() { return scope_.LatestValue(id).has_value(); }));
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(id), 42.0);
}

TEST_F(StreamTest, MultipleClientsOneScope) {
  // "The server receives data from one or more clients asynchronously."
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient a(&loop_);
  StreamClient b(&loop_);
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(b.Connect(server.port()));
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 2; }));

  a.SendTuple({scope_.NowMs(), 1.0, "client_a"});
  b.SendTuple({scope_.NowMs(), 2.0, "client_b"});
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 2; }));
  ASSERT_TRUE(RunUntil([&]() {
    SignalId ia = scope_.FindSignal("client_a");
    SignalId ib = scope_.FindSignal("client_b");
    return ia != 0 && ib != 0 && scope_.LatestValue(ia).has_value() &&
           scope_.LatestValue(ib).has_value();
  }));
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(scope_.FindSignal("client_a")), 1.0);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(scope_.FindSignal("client_b")), 2.0);
}

TEST_F(StreamTest, LateTuplesDroppedByDelayPolicy) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  scope_.SetDelayMs(10);
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  loop_.RunForMs(100);

  // A tuple stamped far in the past misses its display deadline.
  client.SendTuple({scope_.NowMs() - 500, 9.0, "late"});
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_TRUE(RunUntil([&]() { return server.stats().dropped_late >= 1; }));
}

TEST_F(StreamTest, MalformedLinesCounted) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  const std::string junk = "this is not a tuple\n12 ok_missing_value\n";
  raw.Write(junk.data(), junk.size());
  EXPECT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 2; }));
  EXPECT_EQ(server.stats().tuples, 0);
}

TEST_F(StreamTest, ClientDisconnectHandled) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  {
    StreamClient client(&loop_);
    ASSERT_TRUE(client.Connect(server.port()));
    ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
    client.SendTuple({0, 1.0, "x"});
    RunUntil([&]() { return server.stats().tuples >= 1; });
  }  // client closes
  EXPECT_TRUE(RunUntil([&]() { return server.client_count() == 0; }));
  EXPECT_EQ(server.stats().disconnections, 1);
}

TEST_F(StreamTest, PartialLinesReassembled) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  // Send one tuple split across three writes.
  std::string part1 = "12";
  std::string part2 = "3 7.5 spl";
  std::string part3 = "it\n";
  raw.Write(part1.data(), part1.size());
  loop_.RunForMs(5);
  raw.Write(part2.data(), part2.size());
  loop_.RunForMs(5);
  raw.Write(part3.data(), part3.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_NE(scope_.FindSignal("split"), 0);
}

TEST_F(StreamTest, ClientStatsTrackSends) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(client.SendTuple({i, static_cast<double>(i), "s"}));
  }
  EXPECT_EQ(client.stats().tuples_sent, 10);
  EXPECT_TRUE(RunUntil([&]() { return server.stats().tuples >= 10; }));
  EXPECT_GT(client.stats().bytes_sent, 0);
  EXPECT_EQ(client.pending_bytes(), 0u);
}

TEST_F(StreamTest, SendWithoutConnectFails) {
  StreamClient client(&loop_);
  EXPECT_FALSE(client.SendTuple({0, 1.0, "x"}));
  EXPECT_EQ(client.stats().tuples_dropped, 1);
}

TEST_F(StreamTest, ServerCloseStopsAccepting) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  uint16_t port = server.port();
  server.Close();
  StreamClient client(&loop_);
  client.Connect(port);
  loop_.RunForMs(50);
  EXPECT_EQ(server.client_count(), 0u);
}


TEST_F(StreamTest, CrlfFramedLinesParse) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  const std::string wire = "10 1.5 crlf\r\n20 2.5 crlf\r\n";
  raw.Write(wire.data(), wire.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 2; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_NE(scope_.FindSignal("crlf"), 0);
}

TEST_F(StreamTest, OverlongLineCappedAndResynchronized) {
  // A client streaming garbage with no newline must not grow the line
  // buffer without bound: the line is dropped as one parse error and
  // framing resynchronizes at the next newline.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // Feed 3 x 4 KiB of newline-free junk (crosses the 4 KiB cap mid-stream).
  const std::string junk(4096, 'x');
  for (int i = 0; i < 3; ++i) {
    raw.Write(junk.data(), junk.size());
    loop_.RunForMs(5);
  }
  ASSERT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 1; }));
  EXPECT_EQ(server.stats().parse_errors, 1);  // one error for the whole line
  EXPECT_EQ(server.stats().tuples, 0);

  // Terminate the junk line; the next well-formed line must parse again.
  const std::string recovery = "\n42 7.0 recovered\n";
  raw.Write(recovery.data(), recovery.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_NE(scope_.FindSignal("recovered"), 0);
  EXPECT_EQ(server.stats().parse_errors, 1);
}

TEST_F(StreamTest, OverlongLineWithinOneChunkCounted) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  // One write holding an over-long line *and* its newline, then a valid
  // tuple: the long line is one parse error, the tuple still parses.
  std::string wire(5000, 'y');
  wire += "\n1 2.0 ok\n";
  raw.Write(wire.data(), wire.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_EQ(server.stats().parse_errors, 1);
}

TEST_F(StreamTest, FanOutToMultipleScopes) {
  // "It then displays these BUFFER signals to one or more scopes."
  Scope second(&loop_, {.name = "second", .width = 64});
  second.SetPollingMode(5);
  StreamServer server(&loop_, &scope_);
  EXPECT_TRUE(server.AddScope(&second));
  EXPECT_FALSE(server.AddScope(&second));  // duplicate
  EXPECT_FALSE(server.AddScope(nullptr));
  EXPECT_EQ(server.scope_count(), 2u);

  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  scope_.StartPolling();
  second.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  client.SendTuple({scope_.NowMs(), 7.0, "shared"});
  ASSERT_TRUE(RunUntil([&]() {
    SignalId a = scope_.FindSignal("shared");
    SignalId b = second.FindSignal("shared");
    return a != 0 && b != 0 && scope_.LatestValue(a).has_value() &&
           second.LatestValue(b).has_value();
  }));
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(scope_.FindSignal("shared")), 7.0);
  EXPECT_DOUBLE_EQ(*second.LatestValue(second.FindSignal("shared")), 7.0);

  EXPECT_TRUE(server.RemoveScope(&second));
  EXPECT_FALSE(server.RemoveScope(&second));
  EXPECT_EQ(server.scope_count(), 1u);
}

TEST_F(StreamTest, ScopeAddedMidStreamReceivesSubsequentTuples) {
  // Dynamic topology under load: the routing table must re-snapshot when a
  // display target attaches mid-stream.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  client.SendTuple({scope_.NowMs(), 1.0, "live"});
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));

  Scope late_scope(&loop_, {.name = "late", .width = 64});
  late_scope.SetPollingMode(5);
  late_scope.StartPolling();
  ASSERT_TRUE(server.AddScope(&late_scope));

  client.SendTuple({scope_.NowMs(), 2.0, "live"});
  ASSERT_TRUE(RunUntil([&]() {
    SignalId id = late_scope.FindSignal("live");
    return id != 0 && late_scope.LatestValue(id).has_value();
  }));
  EXPECT_DOUBLE_EQ(*late_scope.LatestValue(late_scope.FindSignal("live")), 2.0);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(scope_.FindSignal("live")), 2.0);

  // ... and detaches mid-stream without disturbing the remaining target.
  ASSERT_TRUE(server.RemoveScope(&late_scope));
  client.SendTuple({scope_.NowMs(), 3.0, "live"});
  ASSERT_TRUE(RunUntil([&]() {
    auto v = scope_.LatestValue(scope_.FindSignal("live"));
    return v.has_value() && *v == 3.0;
  }));
  EXPECT_NE(late_scope.LatestValue(late_scope.FindSignal("live")).value_or(-1), 3.0);
}

TEST_F(StreamTest, RemovedSignalRecreatedOnNextTuple) {
  // Epoch invalidation end-to-end: removing a signal mid-stream must not
  // leave a stale route delivering to a dead id; with auto-create on, the
  // next tuple recreates the signal.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  client.SendTuple({scope_.NowMs(), 1.0, "flaky"});
  ASSERT_TRUE(RunUntil([&]() { return scope_.FindSignal("flaky") != 0; }));
  SignalId first = scope_.FindSignal("flaky");
  ASSERT_TRUE(RunUntil([&]() { return scope_.LatestValue(first).has_value(); }));
  ASSERT_TRUE(scope_.RemoveSignal(first));

  client.SendTuple({scope_.NowMs(), 2.0, "flaky"});
  ASSERT_TRUE(RunUntil([&]() { return scope_.FindSignal("flaky") != 0; }));
  SignalId second = scope_.FindSignal("flaky");
  EXPECT_NE(second, first);
  ASSERT_TRUE(RunUntil([&]() { return scope_.LatestValue(second).has_value(); }));
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(second), 2.0);
}

}  // namespace
}  // namespace gscope
