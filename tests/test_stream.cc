// End-to-end tests of the Section 4.4 client/server library, running client,
// server and scope on one real-clock main loop (single-threaded, I/O driven,
// exactly the paper's structure).
#include <gtest/gtest.h>

#include <cerrno>

#include "core/scope.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  StreamTest() : scope_(&loop_, {.name = "remote", .width = 64}) {
    scope_.SetPollingMode(5);
  }

  // Runs the loop until `pred` holds or the budget expires.
  bool RunUntil(const std::function<bool()>& pred, int max_ms = 2000) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop_.RunForMs(1);
    }
    return pred();
  }

  MainLoop loop_;  // real clock: sockets need real readiness
  Scope scope_;
};

TEST_F(StreamTest, ListenOnEphemeralPort) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  EXPECT_GT(server.port(), 0);
}

TEST_F(StreamTest, ClientConnectsAndServerAccepts) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  EXPECT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  EXPECT_EQ(server.stats().connections, 1);
}

TEST_F(StreamTest, TuplesFlowIntoScopeSignal) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));

  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // Stamp with the scope's own clock (the paper assumes correlatable time).
  // Resent with a fresh stamp each wait turn: a one-shot send can be
  // late-dropped (delay 0) when scheduling jitter lands between stamping
  // and routing.  The auto-created BUFFER signal carries the value after a
  // poll.
  ASSERT_TRUE(RunUntil([&]() {
    client.SendTuple({scope_.NowMs(), 42.0, "remote_cwnd"});
    loop_.RunForMs(2);
    SignalId id = scope_.FindSignal("remote_cwnd");
    return id != 0 && scope_.LatestValue(id) == 42.0;
  }));
  EXPECT_GE(server.stats().tuples, 1);
}

TEST_F(StreamTest, MultipleClientsOneScope) {
  // "The server receives data from one or more clients asynchronously."
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient a(&loop_);
  StreamClient b(&loop_);
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(b.Connect(server.port()));
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 2; }));

  a.SendTuple({scope_.NowMs(), 1.0, "client_a"});
  b.SendTuple({scope_.NowMs(), 2.0, "client_b"});
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 2; }));
  ASSERT_TRUE(RunUntil([&]() {
    SignalId ia = scope_.FindSignal("client_a");
    SignalId ib = scope_.FindSignal("client_b");
    return ia != 0 && ib != 0 && scope_.LatestValue(ia).has_value() &&
           scope_.LatestValue(ib).has_value();
  }));
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(scope_.FindSignal("client_a")), 1.0);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(scope_.FindSignal("client_b")), 2.0);
}

TEST_F(StreamTest, LateTuplesDroppedByDelayPolicy) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  scope_.SetDelayMs(10);
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  // Observe the scope clock off zero (not a blind wait): the stale stamp
  // below must be unambiguously behind NowMs() - delay.
  ASSERT_TRUE(RunUntil([&]() { return scope_.NowMs() >= 20; }));

  // A tuple stamped far in the past misses its display deadline.
  client.SendTuple({scope_.NowMs() - 500, 9.0, "late"});
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_TRUE(RunUntil([&]() { return server.stats().dropped_late >= 1; }));
}

TEST_F(StreamTest, MalformedLinesCounted) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  const std::string junk = "this is not a tuple\n12 ok_missing_value\n";
  raw.Write(junk.data(), junk.size());
  EXPECT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 2; }));
  EXPECT_EQ(server.stats().tuples, 0);
}

TEST_F(StreamTest, ClientDisconnectHandled) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  {
    StreamClient client(&loop_);
    ASSERT_TRUE(client.Connect(server.port()));
    ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
    client.SendTuple({0, 1.0, "x"});
    RunUntil([&]() { return server.stats().tuples >= 1; });
  }  // client closes
  EXPECT_TRUE(RunUntil([&]() { return server.client_count() == 0; }));
  EXPECT_EQ(server.stats().disconnections, 1);
}

TEST_F(StreamTest, PartialLinesReassembled) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  // Send one tuple split across three writes.
  std::string part1 = "12";
  std::string part2 = "3 7.5 spl";
  std::string part3 = "it\n";
  // Wait until the server has CONSUMED each fragment before sending the
  // next, so the split genuinely lands across separate reads.
  raw.Write(part1.data(), part1.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().bytes >= 2; }));
  raw.Write(part2.data(), part2.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().bytes >= 11; }));
  raw.Write(part3.data(), part3.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_NE(scope_.FindSignal("split"), 0);
}

TEST_F(StreamTest, ClientStatsTrackSends) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(client.SendTuple({i, static_cast<double>(i), "s"}));
  }
  EXPECT_EQ(client.stats().tuples_sent, 10);
  EXPECT_TRUE(RunUntil([&]() { return server.stats().tuples >= 10; }));
  EXPECT_GT(client.stats().bytes_sent, 0);
  EXPECT_EQ(client.pending_bytes(), 0u);
}

TEST_F(StreamTest, SendWithoutConnectFails) {
  StreamClient client(&loop_);
  EXPECT_FALSE(client.SendTuple({0, 1.0, "x"}));
  EXPECT_EQ(client.stats().tuples_dropped, 1);
}

TEST_F(StreamTest, RefusedConnectSurfacedNotSilentlyConnected) {
  // Find a port with no listener: bind-then-close leaves it free.
  uint16_t dead_port = 0;
  { Socket probe = Socket::Listen(0, &dead_port); }

  StreamClient client(&loop_);
  bool resolved = false, ok = true;
  int error = 0;
  client.SetConnectCallback([&](bool success, int err) {
    resolved = true;
    ok = success;
    error = err;
  });
  if (!client.Connect(dead_port)) {
    // The kernel refused synchronously: still surfaced, never "connected".
    EXPECT_EQ(client.state(), ConnectState::kFailed);
    EXPECT_FALSE(client.connected());
    return;
  }
  // connected() must not report true while the handshake is unresolved.
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.state(), ConnectState::kConnecting);

  // Tuples sent while connecting are queued, not counted as sent.
  EXPECT_TRUE(client.SendTuple({0, 1.0, "x"}));
  EXPECT_EQ(client.stats().tuples_sent, 0);

  ASSERT_TRUE(RunUntil([&]() { return resolved; }));
  EXPECT_FALSE(ok);
  EXPECT_EQ(error, ECONNREFUSED);
  EXPECT_EQ(client.state(), ConnectState::kFailed);
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.last_error(), ECONNREFUSED);
  EXPECT_EQ(client.stats().connect_failures, 1);
  // The queued tuple resolved to dropped, never to sent - and not
  // double-booked as abandoned (delivered == sent - evicted - abandoned
  // must stay meaningful across failed connects).
  EXPECT_EQ(client.stats().tuples_sent, 0);
  EXPECT_EQ(client.stats().tuples_dropped, 1);
  EXPECT_EQ(client.stats().tuples_abandoned, 0);
  EXPECT_EQ(client.stats().tuples_evicted, 0);
  // Further sends fail immediately.
  EXPECT_FALSE(client.SendTuple({0, 2.0, "x"}));
}

TEST_F(StreamTest, SuccessfulConnectReportedAndPreconnectTuplesCounted) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  bool resolved = false, ok = false;
  client.SetConnectCallback([&](bool success, int) {
    resolved = true;
    ok = success;
  });
  ASSERT_TRUE(client.Connect(server.port()));
  // Queue before the handshake resolves.
  EXPECT_TRUE(client.SendTuple({1, 1.0, "pre"}));
  EXPECT_TRUE(client.SendTuple({2, 2.0, "pre"}));
  EXPECT_EQ(client.stats().tuples_sent, 0);

  ASSERT_TRUE(RunUntil([&]() { return resolved && server.stats().tuples >= 2; }));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.stats().tuples_sent, 2);
  EXPECT_EQ(client.stats().tuples_dropped, 0);
}

TEST_F(StreamTest, BacklogOverflowDropsWholeTuplesOnly) {
  // Fill a tiny backlog far past its cap while the loop is not running,
  // then drain under load: whatever subset of tuples survives the drops,
  // the server must see zero parse errors (no torn lines) and exactly the
  // tuples the client counted as sent.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_, /*max_buffer=*/256);
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return client.connected(); }));

  // Interleave bursts (overflowing the 256-byte cap) with partial drains so
  // drop decisions happen while the write offset sits mid-backlog.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      client.Send(round * 1000 + i, 1234.5678 + i, "overflow_signal_name");
    }
    loop_.RunForMs(1);
  }
  EXPECT_GT(client.stats().tuples_dropped, 0);  // the cap actually bit
  ASSERT_TRUE(RunUntil([&]() { return client.pending_bytes() == 0; }));
  ASSERT_TRUE(
      RunUntil([&]() { return server.stats().tuples >= client.stats().tuples_sent; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_EQ(server.stats().tuples, client.stats().tuples_sent);
  // Drop accounting balances byte-for-byte: every byte ever committed is on
  // the wire, and every dropped tuple's bytes are counted.
  EXPECT_GT(client.stats().bytes_dropped, 0);
  EXPECT_EQ(client.stats().bytes_sent, server.stats().bytes);
  EXPECT_GT(client.stats().backlog_high_water, 0);
  EXPECT_LE(client.stats().backlog_high_water, 256);
  EXPECT_EQ(client.stats().tuples_evicted, 0);  // default policy never evicts
}

TEST_F(StreamTest, DropOldestPolicyKeepsNewestTuples) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_, StreamClient::Options{
                                  .max_buffer = 256,
                                  .overflow_policy = OverflowPolicy::kDropOldest,
                              });
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return client.connected(); }));

  // Flood without running the loop: the cap evicts from the head, every
  // send is accepted, and the newest tuples survive.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(client.Send(i, 1000.0 + i, "evict_me"));
  }
  EXPECT_EQ(client.stats().tuples_sent, 200);
  EXPECT_EQ(client.stats().tuples_dropped, 0);
  EXPECT_GT(client.stats().tuples_evicted, 0);
  EXPECT_LE(client.pending_bytes(), 256u);

  double newest = -1.0;
  scope_.SetBufferedTap([&](std::string_view, int64_t, double value) {
    newest = std::max(newest, value);
  });
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return client.pending_bytes() == 0; }));
  ASSERT_TRUE(RunUntil([&]() { return newest == 1199.0; }));  // last send survived
  EXPECT_EQ(server.stats().parse_errors, 0);
  // Eviction accounting: what reached the wire is exactly sent - evicted.
  EXPECT_EQ(server.stats().tuples, client.stats().tuples_sent - client.stats().tuples_evicted);
}

TEST_F(StreamTest, BlockWithDeadlinePolicyDrainsInsteadOfDropping) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  // A cap far too small for the burst below: drop-newest would shed most of
  // it, but blocking commits drain through the live connection instead.
  StreamClient client(&loop_, StreamClient::Options{
                                  .max_buffer = 512,
                                  .overflow_policy = OverflowPolicy::kBlockWithDeadline,
                                  .block_deadline_ms = 50,
                              });
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return client.connected(); }));

  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(client.Send(i, static_cast<double>(i), "blocking_signal"));
  }
  EXPECT_EQ(client.stats().tuples_sent, 500);
  EXPECT_EQ(client.stats().tuples_dropped, 0);
  ASSERT_TRUE(RunUntil([&]() { return client.pending_bytes() == 0; }));
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 500; }));
  EXPECT_EQ(server.stats().tuples, 500);
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_LE(client.stats().backlog_high_water, 512);
}

TEST_F(StreamTest, ServerCloseStopsAccepting) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  uint16_t port = server.port();
  server.Close();
  StreamClient client(&loop_);
  client.Connect(port);
  // The refused connect is the positive marker; no blind settling wait.
  ASSERT_TRUE(RunUntil([&]() { return client.state() == ConnectState::kFailed; }));
  EXPECT_GE(client.stats().connect_failures, 1);
  EXPECT_EQ(server.client_count(), 0u);
}


TEST_F(StreamTest, CrlfFramedLinesParse) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  const std::string wire = "10 1.5 crlf\r\n20 2.5 crlf\r\n";
  raw.Write(wire.data(), wire.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 2; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_NE(scope_.FindSignal("crlf"), 0);
}

TEST_F(StreamTest, OverlongLineCappedAndResynchronized) {
  // A client streaming garbage with no newline must not grow the line
  // buffer without bound: the line is dropped as one parse error and
  // framing resynchronizes at the next newline.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // Feed 3 x 4 KiB of newline-free junk (crosses the 4 KiB cap mid-stream).
  const std::string junk(4096, 'x');
  for (int i = 0; i < 3; ++i) {
    raw.Write(junk.data(), junk.size());
    // Observe the server draining this chunk so the cap is crossed across
    // distinct reads, not in one buffered gulp.
    ASSERT_TRUE(RunUntil(
        [&]() { return server.stats().bytes >= (i + 1) * 4096; }));
  }
  ASSERT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 1; }));
  EXPECT_EQ(server.stats().parse_errors, 1);  // one error for the whole line
  EXPECT_EQ(server.stats().tuples, 0);

  // Terminate the junk line; the next well-formed line must parse again.
  const std::string recovery = "\n42 7.0 recovered\n";
  raw.Write(recovery.data(), recovery.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_NE(scope_.FindSignal("recovered"), 0);
  EXPECT_EQ(server.stats().parse_errors, 1);
}

TEST_F(StreamTest, OverlongLineWithinOneChunkCounted) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  // One write holding an over-long line *and* its newline, then a valid
  // tuple: the long line is one parse error, the tuple still parses.
  std::string wire(5000, 'y');
  wire += "\n1 2.0 ok\n";
  raw.Write(wire.data(), wire.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_EQ(server.stats().parse_errors, 1);
}

TEST_F(StreamTest, ExactMaxLineBytesSplitAcrossReadsParses) {
  // A tuple line of exactly max_line_bytes, split across two reads, must
  // reassemble and parse as ONE tuple; max_line_bytes + 1 must count exactly
  // one parse error and resynchronize at the next newline.  Covered for
  // plain LF and CRLF framing ('\r' counts toward the line length).
  StreamServer server(&loop_, &scope_, {.max_line_bytes = 64});
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // Build "1 2 <name>" padded to exactly 64 bytes (newline excluded).
  std::string line = "1 2 ";
  line.append(64 - line.size(), 'a');
  ASSERT_EQ(line.size(), 64u);
  std::string padded_name = line.substr(4);
  line.push_back('\n');

  // Split mid-name across two writes; observe the first fragment consumed
  // so the server provably sees two reads.
  raw.Write(line.data(), 40);
  ASSERT_TRUE(RunUntil([&]() { return server.stats().bytes >= 40; }));
  raw.Write(line.data() + 40, line.size() - 40);
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_NE(scope_.FindSignal(padded_name), 0);

  // CRLF variant: content + '\r' is exactly 64 bytes.
  std::string crlf = "3 4 ";
  crlf.append(64 - crlf.size() - 1, 'b');
  crlf += "\r\n";
  ASSERT_EQ(crlf.size(), 65u);  // 64 framed bytes + '\n'
  std::string crlf_name = crlf.substr(4, crlf.size() - 6);
  const int64_t seen = server.stats().bytes;
  raw.Write(crlf.data(), 30);
  ASSERT_TRUE(RunUntil([&]() { return server.stats().bytes >= seen + 30; }));
  raw.Write(crlf.data() + 30, crlf.size() - 30);
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 2; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_NE(scope_.FindSignal(crlf_name), 0);
}

TEST_F(StreamTest, MaxLineBytesPlusOneIsExactlyOneErrorAndResyncs) {
  StreamServer server(&loop_, &scope_, {.max_line_bytes = 64});
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // 65 framed bytes, split across reads: exactly one parse error.
  std::string line = "1 2 ";
  line.append(65 - line.size(), 'c');
  line.push_back('\n');
  raw.Write(line.data(), 40);
  ASSERT_TRUE(RunUntil([&]() { return server.stats().bytes >= 40; }));
  raw.Write(line.data() + 40, line.size() - 40);
  ASSERT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 1; }));
  EXPECT_EQ(server.stats().parse_errors, 1);
  EXPECT_EQ(server.stats().tuples, 0);

  // Framing resynchronized at that newline: the next tuple parses.
  const std::string ok = "5 6 recovered_after_cap\n";
  raw.Write(ok.data(), ok.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_EQ(server.stats().parse_errors, 1);

  // CRLF variant of the over-cap line: 64 content bytes + '\r' = 65.
  std::string crlf = "7 8 ";
  crlf.append(64 - crlf.size(), 'd');
  crlf += "\r\n";
  const int64_t seen = server.stats().bytes;
  raw.Write(crlf.data(), 30);
  ASSERT_TRUE(RunUntil([&]() { return server.stats().bytes >= seen + 30; }));
  raw.Write(crlf.data() + 30, crlf.size() - 30);
  ASSERT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 2; }));
  EXPECT_EQ(server.stats().parse_errors, 2);
  EXPECT_EQ(server.stats().tuples, 1);
}

TEST_F(StreamTest, FanOutToMultipleScopes) {
  // "It then displays these BUFFER signals to one or more scopes."
  Scope second(&loop_, {.name = "second", .width = 64});
  second.SetPollingMode(5);
  StreamServer server(&loop_, &scope_);
  EXPECT_TRUE(server.AddScope(&second));
  EXPECT_FALSE(server.AddScope(&second));  // duplicate
  EXPECT_FALSE(server.AddScope(nullptr));
  EXPECT_EQ(server.scope_count(), 2u);

  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  scope_.StartPolling();
  second.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // Fresh stamps each wait turn (late-drop vs scheduling jitter, as above).
  ASSERT_TRUE(RunUntil([&]() {
    client.SendTuple({scope_.NowMs(), 7.0, "shared"});
    loop_.RunForMs(2);
    SignalId a = scope_.FindSignal("shared");
    SignalId b = second.FindSignal("shared");
    return a != 0 && b != 0 && scope_.LatestValue(a) == 7.0 && second.LatestValue(b) == 7.0;
  }));

  EXPECT_TRUE(server.RemoveScope(&second));
  EXPECT_FALSE(server.RemoveScope(&second));
  EXPECT_EQ(server.scope_count(), 1u);
}

TEST_F(StreamTest, ScopeAddedMidStreamReceivesSubsequentTuples) {
  // Dynamic topology under load: the routing table must re-snapshot when a
  // display target attaches mid-stream.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  client.SendTuple({scope_.NowMs(), 1.0, "live"});
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));

  Scope late_scope(&loop_, {.name = "late", .width = 64});
  late_scope.SetPollingMode(5);
  late_scope.StartPolling();
  ASSERT_TRUE(server.AddScope(&late_scope));

  // Fresh stamps each turn (see below): a one-shot send can be late-dropped
  // under parallel-test scheduling jitter.
  ASSERT_TRUE(RunUntil([&]() {
    client.SendTuple({scope_.NowMs(), 2.0, "live"});
    loop_.RunForMs(2);
    SignalId id = late_scope.FindSignal("live");
    return id != 0 && late_scope.LatestValue(id) == 2.0 &&
           scope_.LatestValue(scope_.FindSignal("live")) == 2.0;
  }));

  // ... and detaches mid-stream without disturbing the remaining target.
  ASSERT_TRUE(server.RemoveScope(&late_scope));
  // Resend with a fresh stamp each turn: a single send stamped exactly at a
  // poll-tick boundary can be judged late (delay 0) and dropped for good.
  ASSERT_TRUE(RunUntil([&]() {
    client.SendTuple({scope_.NowMs(), 3.0, "live"});
    loop_.RunForMs(2);
    auto v = scope_.LatestValue(scope_.FindSignal("live"));
    return v.has_value() && *v == 3.0;
  }));
  EXPECT_NE(late_scope.LatestValue(late_scope.FindSignal("live")).value_or(-1), 3.0);
}

TEST_F(StreamTest, RemovedSignalRecreatedOnNextTuple) {
  // Epoch invalidation end-to-end: removing a signal mid-stream must not
  // leave a stale route delivering to a dead id; with auto-create on, the
  // next tuple recreates the signal.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  scope_.StartPolling();
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // Resend with fresh stamps inside the wait: a send stamped exactly at a
  // poll-tick boundary can be late-dropped (delay 0), and a one-shot send
  // would then never arrive.
  ASSERT_TRUE(RunUntil([&]() {
    client.SendTuple({scope_.NowMs(), 1.0, "flaky"});
    loop_.RunForMs(2);
    SignalId id = scope_.FindSignal("flaky");
    return id != 0 && scope_.LatestValue(id) == 1.0;
  }));
  SignalId first = scope_.FindSignal("flaky");
  ASSERT_TRUE(scope_.RemoveSignal(first));

  ASSERT_TRUE(RunUntil([&]() {
    client.SendTuple({scope_.NowMs(), 2.0, "flaky"});
    loop_.RunForMs(2);
    SignalId id = scope_.FindSignal("flaky");
    return id != 0 && scope_.LatestValue(id) == 2.0;
  }));
  SignalId second = scope_.FindSignal("flaky");
  EXPECT_NE(second, first);
}

}  // namespace
}  // namespace gscope
