#include "core/trace.h"

#include <gtest/gtest.h>

namespace gscope {
namespace {

TEST(TraceTest, EmptyAtStart) {
  Trace trace(8);
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.capacity(), 8u);
  EXPECT_FALSE(trace.At(0).valid);
}

TEST(TraceTest, PushNewestFirstAccess) {
  Trace trace(8);
  trace.Push(1.0);
  trace.Push(2.0);
  trace.Push(3.0);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.At(0).value, 3.0);
  EXPECT_DOUBLE_EQ(trace.At(1).value, 2.0);
  EXPECT_DOUBLE_EQ(trace.At(2).value, 1.0);
  EXPECT_FALSE(trace.At(3).valid);
}

TEST(TraceTest, WrapsAtCapacity) {
  Trace trace(4);
  for (int i = 1; i <= 6; ++i) {
    trace.Push(i);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_DOUBLE_EQ(trace.At(0).value, 6.0);
  EXPECT_DOUBLE_EQ(trace.At(3).value, 3.0);
}

TEST(TraceTest, LatestValue) {
  Trace trace(4);
  EXPECT_DOUBLE_EQ(trace.latest(), 0.0);
  trace.Push(9.0);
  EXPECT_DOUBLE_EQ(trace.latest(), 9.0);
}

TEST(TraceTest, PushWithLossInsertsHoldColumns) {
  // Section 4.5: lost timeouts advance the refresh; missing columns repeat
  // the previous value and are flagged synthesized.
  Trace trace(8);
  trace.Push(10.0);
  trace.PushWithLoss(20.0, 2);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_DOUBLE_EQ(trace.At(0).value, 20.0);
  EXPECT_FALSE(trace.At(0).synthesized);
  EXPECT_DOUBLE_EQ(trace.At(1).value, 10.0);
  EXPECT_TRUE(trace.At(1).synthesized);
  EXPECT_DOUBLE_EQ(trace.At(2).value, 10.0);
  EXPECT_TRUE(trace.At(2).synthesized);
  EXPECT_DOUBLE_EQ(trace.At(3).value, 10.0);
  EXPECT_FALSE(trace.At(3).synthesized);
}

TEST(TraceTest, PushWithLossOnEmptyHoldsNewValue) {
  Trace trace(8);
  trace.PushWithLoss(5.0, 3);
  EXPECT_EQ(trace.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(trace.At(i).value, 5.0);
  }
}

TEST(TraceTest, LossLargerThanCapacityIsCapped) {
  Trace trace(4);
  trace.Push(1.0);
  trace.PushWithLoss(2.0, 1000);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_DOUBLE_EQ(trace.At(0).value, 2.0);
  EXPECT_TRUE(trace.At(1).synthesized);
}

TEST(TraceTest, SynthesizedCountTracksLoss) {
  Trace trace(16);
  trace.Push(1.0);
  trace.PushWithLoss(2.0, 3);
  trace.PushWithLoss(3.0, 2);
  EXPECT_EQ(trace.synthesized_count(), 5);
  EXPECT_EQ(trace.total_pushed(), 8);  // 1 + (3 hold + 1) + (2 hold + 1)
}

TEST(TraceTest, ResetClears) {
  Trace trace(4);
  trace.Push(1.0);
  trace.Push(2.0);
  trace.Reset();
  EXPECT_TRUE(trace.empty());
  EXPECT_FALSE(trace.At(0).valid);
}

TEST(TraceTest, SnapshotOldestToNewest) {
  Trace trace(4);
  trace.Push(1.0);
  trace.Push(2.0);
  trace.Push(3.0);
  auto snapshot = trace.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 1.0);
  EXPECT_DOUBLE_EQ(snapshot[2].value, 3.0);
}

TEST(TraceTest, ValuesSkipsNothingWhenAllValid) {
  Trace trace(4);
  trace.Push(1.0);
  trace.Push(2.0);
  auto values = trace.Values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
}

TEST(TraceTest, ZeroCapacityClampedToOne) {
  Trace trace(0);
  EXPECT_EQ(trace.capacity(), 1u);
  trace.Push(5.0);
  EXPECT_DOUBLE_EQ(trace.latest(), 5.0);
}

// Property: after any sequence of pushes, size() <= capacity and At(0) is
// always the most recently pushed value.
class TraceRingProperty : public ::testing::TestWithParam<int> {};

TEST_P(TraceRingProperty, InvariantsHold) {
  int capacity = GetParam();
  Trace trace(static_cast<size_t>(capacity));
  for (int i = 0; i < capacity * 3 + 7; ++i) {
    double v = i * 1.5;
    if (i % 5 == 4) {
      trace.PushWithLoss(v, i % 3);
    } else {
      trace.Push(v);
    }
    EXPECT_LE(trace.size(), trace.capacity());
    EXPECT_DOUBLE_EQ(trace.At(0).value, v);
    EXPECT_FALSE(trace.At(0).synthesized);
    EXPECT_DOUBLE_EQ(trace.latest(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, TraceRingProperty, ::testing::Values(1, 2, 3, 8, 64, 512));

}  // namespace
}  // namespace gscope
