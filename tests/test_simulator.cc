#include "netsim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace gscope {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now_us(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(300, [&order]() { order.push_back(3); });
  sim.ScheduleAt(100, [&order]() { order.push_back(1); });
  sim.ScheduleAt(200, [&order]() { order.push_back(2); });
  sim.RunUntilIdle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now_us(), 300);
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(100, [&order, i]() { order.push_back(i); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterRelative) {
  Simulator sim;
  sim.ScheduleAt(50, []() {});
  sim.Step();
  EXPECT_EQ(sim.now_us(), 50);
  SimTime fired_at = -1;
  sim.ScheduleAfter(25, [&]() { fired_at = sim.now_us(); });
  sim.Step();
  EXPECT_EQ(fired_at, 75);
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator sim;
  sim.ScheduleAt(100, []() {});
  sim.Step();
  SimTime fired_at = -1;
  sim.ScheduleAt(10, [&]() { fired_at = sim.now_us(); });
  sim.Step();
  EXPECT_EQ(fired_at, 100);  // not in the past
}

TEST(SimulatorTest, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(100, [&fired]() { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.Cancel(id));  // second cancel fails
}

TEST(SimulatorTest, CancelAfterFireFails) {
  Simulator sim;
  EventId id = sim.ScheduleAt(10, []() {});
  sim.RunUntilIdle();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(100, [&fired]() { ++fired; });
  sim.ScheduleAt(200, [&fired]() { ++fired; });
  sim.ScheduleAt(300, [&fired]() { ++fired; });
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now_us(), 200);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithNoEvents) {
  Simulator sim;
  sim.RunUntil(5000);
  EXPECT_EQ(sim.now_us(), 5000);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  std::function<void()> chain = [&]() {
    times.push_back(sim.now_us());
    if (times.size() < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_EQ(times.back(), 40);
}

TEST(SimulatorTest, RunForMsConverts) {
  Simulator sim;
  sim.RunForMs(3);
  EXPECT_EQ(sim.now_us(), 3000);
}

TEST(SimulatorTest, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(i, []() {});
  }
  sim.RunUntilIdle();
  EXPECT_EQ(sim.events_processed(), 10);
}

TEST(SimulatorTest, RunUntilIdleRespectsBudget) {
  Simulator sim;
  std::function<void()> forever = [&]() { sim.ScheduleAfter(1, forever); };
  sim.ScheduleAt(0, forever);
  sim.RunUntilIdle(/*max_events=*/100);
  EXPECT_EQ(sim.events_processed(), 100);
}

TEST(SimulatorTest, NullHandlerRejected) {
  Simulator sim;
  EXPECT_EQ(sim.ScheduleAt(10, Simulator::EventFn{}), 0);
}

}  // namespace
}  // namespace gscope
