#include "sched/proportion.h"

#include <gtest/gtest.h>

namespace gscope {
namespace {

TEST(SchedTest, AddRemoveProcesses) {
  ProportionScheduler sched;
  int a = sched.AddProcess({.name = "mpeg"});
  int b = sched.AddProcess({.name = "audio"});
  EXPECT_NE(a, 0);
  EXPECT_NE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(sched.process_count(), 2u);
  EXPECT_TRUE(sched.RemoveProcess(a));
  EXPECT_FALSE(sched.RemoveProcess(a));
  EXPECT_EQ(sched.process_count(), 1u);
}

TEST(SchedTest, ProportionConvergesToConstantDemand) {
  ProportionScheduler sched;
  int id = sched.AddProcess(
      {.name = "p", .period_ms = 50, .base_demand = 0.3, .demand_amplitude = 0.0});
  for (int i = 0; i < 100; ++i) {
    sched.Step(50);
  }
  EXPECT_NEAR(sched.ProportionOf(id), 0.3, 0.05);
}

TEST(SchedTest, ProportionTracksVaryingDemand) {
  ProportionScheduler sched;
  int id = sched.AddProcess({.name = "p",
                             .period_ms = 20,
                             .base_demand = 0.4,
                             .demand_amplitude = 0.2,
                             .demand_period_ms = 2000});
  // After settling, the proportion should swing with the demand.
  double min_prop = 1.0;
  double max_prop = 0.0;
  for (int i = 0; i < 400; ++i) {
    sched.Step(20);
    if (i > 100) {
      min_prop = std::min(min_prop, sched.ProportionOf(id));
      max_prop = std::max(max_prop, sched.ProportionOf(id));
    }
  }
  EXPECT_LT(min_prop, 0.35);
  EXPECT_GT(max_prop, 0.45);
}

TEST(SchedTest, SaturationNormalizesTotals) {
  ProportionScheduler sched;
  for (int i = 0; i < 5; ++i) {
    sched.AddProcess({.name = "hog" + std::to_string(i),
                      .period_ms = 20,
                      .base_demand = 0.5,
                      .demand_amplitude = 0.0});
  }
  for (int i = 0; i < 200; ++i) {
    sched.Step(20);
  }
  EXPECT_LE(sched.TotalAllocated(), ProportionScheduler::kSaturation + 1e-9);
  // Everyone still gets something.
  for (int id : sched.ProcessIds()) {
    EXPECT_GT(sched.ProportionOf(id), 0.05);
  }
}

TEST(SchedTest, ProportionsHeldBetweenPeriods) {
  // Section 4.2: proportions are assigned at process-period granularity and
  // held in between - sub-period steps must not change the assignment.
  ProportionScheduler sched;
  int id = sched.AddProcess(
      {.name = "p", .period_ms = 100, .base_demand = 0.3, .demand_amplitude = 0.1});
  sched.Step(100);  // crosses the first period boundary
  double assigned = sched.ProportionOf(id);
  sched.Step(10);
  sched.Step(10);
  sched.Step(10);
  EXPECT_DOUBLE_EQ(sched.ProportionOf(id), assigned);
  sched.Step(70);  // crosses the next boundary
  // (may or may not change value, but the boundary was processed)
  EXPECT_GE(sched.now_ms(), 200.0);
}

TEST(SchedTest, UnknownIdsReturnZero) {
  ProportionScheduler sched;
  EXPECT_DOUBLE_EQ(sched.ProportionOf(42), 0.0);
  EXPECT_DOUBLE_EQ(sched.DemandOf(42), 0.0);
  EXPECT_DOUBLE_EQ(sched.ErrorOf(42), 0.0);
  EXPECT_EQ(sched.SpecFor(42), nullptr);
}

TEST(SchedTest, DemandWaveformDeterministic) {
  ProportionScheduler a;
  ProportionScheduler b;
  ProcessSpec spec{.name = "p", .period_ms = 20, .base_demand = 0.4, .demand_amplitude = 0.2};
  int ida = a.AddProcess(spec);
  int idb = b.AddProcess(spec);
  for (int i = 0; i < 100; ++i) {
    a.Step(20);
    b.Step(20);
    EXPECT_DOUBLE_EQ(a.ProportionOf(ida), b.ProportionOf(idb));
  }
}

TEST(SchedTest, DynamicAddChangesAllocation) {
  ProportionScheduler sched;
  int first = sched.AddProcess(
      {.name = "a", .period_ms = 20, .base_demand = 0.6, .demand_amplitude = 0.0});
  for (int i = 0; i < 100; ++i) {
    sched.Step(20);
  }
  double before = sched.ProportionOf(first);
  // A second heavy process forces the allocator to squeeze the first.
  sched.AddProcess({.name = "b", .period_ms = 20, .base_demand = 0.6, .demand_amplitude = 0.0});
  for (int i = 0; i < 200; ++i) {
    sched.Step(20);
  }
  EXPECT_LT(sched.ProportionOf(first), before);
  EXPECT_LE(sched.TotalAllocated(), ProportionScheduler::kSaturation + 1e-9);
}

TEST(SchedTest, ZeroAndNegativeStepsIgnored) {
  ProportionScheduler sched;
  sched.AddProcess({.name = "p"});
  sched.Step(0);
  sched.Step(-5);
  EXPECT_DOUBLE_EQ(sched.now_ms(), 0.0);
}

}  // namespace
}  // namespace gscope
