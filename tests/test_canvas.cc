#include "render/canvas.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "render/color.h"

namespace gscope {
namespace {

TEST(CanvasTest, StartsBlack) {
  Canvas canvas(10, 10);
  EXPECT_EQ(canvas.GetPixel(5, 5), kBlack);
  EXPECT_EQ(canvas.CountPixels(kBlack), 100);
}

TEST(CanvasTest, SetGetPixel) {
  Canvas canvas(10, 10);
  canvas.SetPixel(3, 4, kGreen);
  EXPECT_EQ(canvas.GetPixel(3, 4), kGreen);
  EXPECT_EQ(canvas.GetPixel(4, 3), kBlack);
}

TEST(CanvasTest, OutOfBoundsClippedSilently) {
  Canvas canvas(10, 10);
  canvas.SetPixel(-1, 0, kGreen);
  canvas.SetPixel(0, -1, kGreen);
  canvas.SetPixel(10, 0, kGreen);
  canvas.SetPixel(0, 10, kGreen);
  EXPECT_EQ(canvas.CountPixels(kGreen), 0);
  EXPECT_EQ(canvas.GetPixel(-5, -5), kBlack);
}

TEST(CanvasTest, ClearFills) {
  Canvas canvas(4, 4);
  canvas.Clear(kRed);
  EXPECT_EQ(canvas.CountPixels(kRed), 16);
}

TEST(CanvasTest, HorizontalLine) {
  Canvas canvas(10, 10);
  canvas.DrawLine(1, 5, 8, 5, kWhite);
  EXPECT_EQ(canvas.CountPixels(kWhite), 8);
  for (int x = 1; x <= 8; ++x) {
    EXPECT_EQ(canvas.GetPixel(x, 5), kWhite);
  }
}

TEST(CanvasTest, VerticalLine) {
  Canvas canvas(10, 10);
  canvas.DrawLine(2, 1, 2, 8, kWhite);
  EXPECT_EQ(canvas.CountPixels(kWhite), 8);
}

TEST(CanvasTest, DiagonalLine) {
  Canvas canvas(10, 10);
  canvas.DrawLine(0, 0, 9, 9, kWhite);
  EXPECT_EQ(canvas.CountPixels(kWhite), 10);
  EXPECT_EQ(canvas.GetPixel(0, 0), kWhite);
  EXPECT_EQ(canvas.GetPixel(9, 9), kWhite);
  EXPECT_EQ(canvas.GetPixel(5, 5), kWhite);
}

TEST(CanvasTest, LineEndpointsSwapped) {
  Canvas a(10, 10);
  Canvas b(10, 10);
  a.DrawLine(1, 2, 8, 7, kWhite);
  b.DrawLine(8, 7, 1, 2, kWhite);
  EXPECT_EQ(a.CountPixels(kWhite), b.CountPixels(kWhite));
}

TEST(CanvasTest, LineClipsOffCanvas) {
  Canvas canvas(10, 10);
  canvas.DrawLine(-5, -5, 14, 14, kWhite);  // must not crash; draws in-range part
  EXPECT_GT(canvas.CountPixels(kWhite), 0);
}

TEST(CanvasTest, RectOutline) {
  Canvas canvas(10, 10);
  canvas.DrawRect(2, 2, 5, 4, kWhite);
  // Perimeter of a 5x4 rect: 2*5 + 2*4 - 4 corners counted once.
  EXPECT_EQ(canvas.CountPixels(kWhite), 2 * 5 + 2 * 4 - 4);
  EXPECT_EQ(canvas.GetPixel(2, 2), kWhite);
  EXPECT_EQ(canvas.GetPixel(6, 5), kWhite);
  EXPECT_EQ(canvas.GetPixel(3, 3), kBlack);  // interior untouched
}

TEST(CanvasTest, FillRect) {
  Canvas canvas(10, 10);
  canvas.FillRect(1, 1, 3, 3, kBlue);
  EXPECT_EQ(canvas.CountPixels(kBlue), 9);
}

TEST(CanvasTest, DegenerateRects) {
  Canvas canvas(10, 10);
  canvas.DrawRect(1, 1, 0, 5, kWhite);
  canvas.DrawRect(1, 1, 5, 0, kWhite);
  canvas.FillRect(1, 1, 0, 0, kWhite);
  EXPECT_EQ(canvas.CountPixels(kWhite), 0);
}

TEST(CanvasTest, TextDrawsPixels) {
  Canvas canvas(64, 16);
  canvas.DrawText(1, 1, "A", kWhite);
  EXPECT_GT(canvas.CountPixels(kWhite), 5);
}

TEST(CanvasTest, TextWidth) {
  EXPECT_EQ(Canvas::TextWidth(""), 0);
  EXPECT_EQ(Canvas::TextWidth("abc"), 18);
}

TEST(CanvasTest, UnprintableRendersAsQuestionMark) {
  Canvas a(16, 16);
  Canvas b(16, 16);
  a.DrawText(1, 1, "\x01", kWhite);
  b.DrawText(1, 1, "?", kWhite);
  EXPECT_EQ(a.CountPixels(kWhite), b.CountPixels(kWhite));
}

TEST(CanvasTest, MinimumSizeClamped) {
  Canvas canvas(0, -3);
  EXPECT_EQ(canvas.width(), 1);
  EXPECT_EQ(canvas.height(), 1);
}

class CanvasFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "canvas_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".img";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CanvasFileTest, WritePpmFormat) {
  Canvas canvas(4, 2);
  canvas.SetPixel(0, 0, Rgb{1, 2, 3});
  ASSERT_TRUE(canvas.WritePpm(path_));

  std::ifstream in(path_, std::ios::binary);
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  char rgb[3];
  in.read(rgb, 3);
  EXPECT_EQ(rgb[0], 1);
  EXPECT_EQ(rgb[1], 2);
  EXPECT_EQ(rgb[2], 3);
  // Payload size: 4*2*3 bytes.
  in.seekg(0, std::ios::end);
  std::ifstream in2(path_, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(in2)), std::istreambuf_iterator<char>());
  EXPECT_EQ(all.size(), std::string("P6\n4 2\n255\n").size() + 24);
}

TEST_F(CanvasFileTest, WritePgmLuma) {
  Canvas canvas(2, 1);
  canvas.SetPixel(0, 0, kWhite);
  ASSERT_TRUE(canvas.WritePgm(path_));
  std::ifstream in(path_, std::ios::binary);
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  in.get();
  char luma[2];
  in.read(luma, 2);
  EXPECT_EQ(static_cast<unsigned char>(luma[0]), 255);
  EXPECT_EQ(static_cast<unsigned char>(luma[1]), 0);
}

TEST_F(CanvasFileTest, WriteToBadPathFails) {
  Canvas canvas(2, 2);
  EXPECT_FALSE(canvas.WritePpm("/nonexistent/dir/x.ppm"));
  EXPECT_FALSE(canvas.WritePgm("/nonexistent/dir/x.pgm"));
}

}  // namespace
}  // namespace gscope
