// End-to-end tests of the remote scope control channel (docs/protocol.md):
// subscribe/unsubscribe by glob, per-session delay, tuple echo down the same
// connection, and route-table-level exclusion of non-subscribed signals.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/scope.h"
#include "freq/spectrum.h"
#include "net/control_client.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace {

class ControlChannelTest : public ::testing::Test {
 protected:
  ControlChannelTest() : scope_(&loop_, {.name = "display", .width = 64}) {
    scope_.SetPollingMode(5);
  }

  bool RunUntil(const std::function<bool()>& pred, int max_ms = 2000) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop_.RunForMs(1);
    }
    return pred();
  }

  // Received (name, value) pairs, recorded off the borrowed TupleView.
  struct Sink {
    std::vector<std::pair<std::string, double>> tuples;
    std::vector<std::string> replies;
    void Wire(ControlClient& client) {
      client.SetTupleCallback([this](const TupleView& t) {
        tuples.emplace_back(std::string(t.name), t.value);
      });
      client.SetReplyCallback([this](std::string_view line) {
        replies.emplace_back(line);
      });
    }
    bool SawValue(double v) const {
      for (const auto& [name, value] : tuples) {
        if (value == v) {
          return true;
        }
      }
      return false;
    }
    bool SawName(const std::string& n) const {
      for (const auto& [name, value] : tuples) {
        if (name == n) {
          return true;
        }
      }
      return false;
    }
  };

  MainLoop loop_;  // real clock: sockets need real readiness
  Scope scope_;
};

TEST_F(ControlChannelTest, DisjointGlobsReceiveDisjointStreams) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient a(&loop_), b(&loop_);
  Sink sink_a, sink_b;
  sink_a.Wire(a);
  sink_b.Wire(b);
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(b.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return a.connected() && b.connected(); }));

  a.Subscribe("tcp_*");
  b.Subscribe("udp_*");
  ASSERT_TRUE(RunUntil([&]() {
    return a.stats().replies_ok >= 1 && b.stats().replies_ok >= 1;
  }));
  EXPECT_EQ(server.control_session_count(), 2u);
  EXPECT_EQ(server.stats().sessions_opened, 2);

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));

  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 1.0, "tcp_cwnd");
    producer.Send(scope_.NowMs(), 2.0, "udp_loss");
    loop_.RunForMs(2);
    return a.stats().tuples_received >= 3 && b.stats().tuples_received >= 3;
  }));

  // Strictly disjoint delivery.
  EXPECT_TRUE(sink_a.SawName("tcp_cwnd"));
  EXPECT_FALSE(sink_a.SawName("udp_loss"));
  EXPECT_TRUE(sink_b.SawName("udp_loss"));
  EXPECT_FALSE(sink_b.SawName("tcp_cwnd"));

  // The exclusion happened at route-build time: each signal's route carries
  // an excluded slot for the non-matching session (no per-sample filtering).
  EXPECT_GE(server.router().excluded_route_slots(), 2u);
  // The display scope (unfiltered) still auto-created both signals.
  EXPECT_NE(scope_.FindSignal("tcp_cwnd"), 0);
  EXPECT_NE(scope_.FindSignal("udp_loss"), 0);
}

TEST_F(ControlChannelTest, PerSessionDelayGovernsLateDropAndHold) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  loop_.RunForMs(50);  // move scope time off zero so "stale" stamps exist

  ControlClient fast(&loop_), slow(&loop_);
  Sink sink_fast, sink_slow;
  sink_fast.Wire(fast);
  sink_slow.Wire(slow);
  ASSERT_TRUE(fast.Connect(server.port()));
  ASSERT_TRUE(slow.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return fast.connected() && slow.connected(); }));

  fast.Subscribe("sig");
  fast.SetDelay(0);
  slow.Subscribe("sig");
  slow.SetDelay(500);
  ASSERT_TRUE(RunUntil([&]() {
    return fast.stats().replies_ok >= 2 && slow.stats().replies_ok >= 2;
  }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));

  // Stale by 250 ms: already past the fast session's deadline (delay 0) but
  // still inside the slow session's 500 ms window.
  producer.Send(scope_.NowMs() - 250, 7.0, "sig");
  ASSERT_TRUE(RunUntil([&]() { return sink_slow.SawValue(7.0); }));
  EXPECT_FALSE(sink_fast.SawValue(7.0));

  // A fresh tuple reaches the fast session (proving it is alive, not just
  // dropping everything).
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 8.0, "sig");
    loop_.RunForMs(2);
    return sink_fast.SawValue(8.0);
  }));
  EXPECT_FALSE(sink_fast.SawValue(7.0));
}

TEST_F(ControlChannelTest, UnsubTakesEffectMidStreamWithoutDroppingConnection) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient a(&loop_);
  Sink sink;
  sink.Wire(a);
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return a.connected(); }));
  a.Subscribe("alpha");
  a.Subscribe("beta");
  ASSERT_TRUE(RunUntil([&]() { return a.stats().replies_ok >= 2; }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));

  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 1.0, "alpha");
    producer.Send(scope_.NowMs(), 2.0, "beta");
    loop_.RunForMs(2);
    return sink.SawValue(1.0) && sink.SawValue(2.0);
  }));

  // Pattern change mid-stream: the route epoch moves and beta's slot is
  // excluded at the next table build.
  uint64_t epoch_before = server.router().route_epoch();
  a.Unsubscribe("beta");
  ASSERT_TRUE(RunUntil([&]() { return a.stats().replies_ok >= 3; }));
  EXPECT_GT(server.router().route_epoch(), epoch_before);

  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 3.0, "beta");
    producer.Send(scope_.NowMs(), 4.0, "alpha");
    loop_.RunForMs(2);
    return sink.SawValue(4.0);
  }));
  EXPECT_FALSE(sink.SawValue(3.0));  // beta stopped flowing
  EXPECT_GE(server.router().excluded_route_slots(), 1u);

  // The connection never dropped.
  EXPECT_TRUE(a.connected());
  EXPECT_EQ(server.stats().disconnections, 0);
  EXPECT_EQ(server.control_session_count(), 1u);
}

TEST_F(ControlChannelTest, SameConnectionCanPushAndSubscribe) {
  // The smoke scenario: one connection subscribes, pushes a matching tuple,
  // and receives its own echo.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient self(&loop_);
  Sink sink;
  sink.Wire(self);
  ASSERT_TRUE(self.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return self.connected(); }));
  self.Subscribe("self_*");
  ASSERT_TRUE(RunUntil([&]() { return self.stats().replies_ok >= 1; }));

  ASSERT_TRUE(RunUntil([&]() {
    self.Send(scope_.NowMs(), 42.0, "self_metric");
    loop_.RunForMs(2);
    return sink.SawValue(42.0);
  }));
  EXPECT_TRUE(sink.SawName("self_metric"));
  EXPECT_GE(server.stats().tuples_echoed, 1);
}

TEST_F(ControlChannelTest, ListAndErrorReplies) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient a(&loop_);
  Sink sink;
  sink.Wire(a);
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return a.connected(); }));

  a.Subscribe("tcp_*");
  a.Subscribe("tcp_*");    // duplicate -> ERR
  a.Unsubscribe("never");  // unknown -> ERR
  a.SetDelay(250);
  a.RequestList();
  ASSERT_TRUE(RunUntil([&]() { return a.stats().replies_ok >= 3; }));
  EXPECT_EQ(a.stats().replies_err, 2);
  EXPECT_EQ(a.stats().replies_info, 1);  // one INFO SUB line from LIST

  bool saw_list = false, saw_info = false;
  for (const std::string& reply : sink.replies) {
    saw_list = saw_list || reply == "OK LIST 1 DELAY 250 MODE every-sample";
    saw_info = saw_info || reply == "INFO SUB tcp_*";
  }
  EXPECT_TRUE(saw_info);
  EXPECT_TRUE(saw_list);
  EXPECT_EQ(server.stats().control_errors, 2);
  EXPECT_GE(server.stats().control_commands, 5);
}

TEST_F(ControlChannelTest, MalformedControlGrammar) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  // A structurally malformed FIRST command must not cost this connection a
  // session (scope + poll timer + router slot); it is only counted.
  const std::string bad_first = "DELAY abc\n";
  raw.Write(bad_first.data(), bad_first.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().control_errors >= 1; }));
  EXPECT_EQ(server.control_session_count(), 0u);

  // A valid command opens the session; malformed ones then draw ERR replies.
  const std::string wire = "SUB keep_*\nSUB\nDELAY abc\nSUB x y\nLIST junk\nBOGUS\n";
  raw.Write(wire.data(), wire.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().control_errors >= 5; }));
  EXPECT_EQ(server.stats().parse_errors, 1);  // the unknown verb only
  EXPECT_EQ(server.stats().control_commands, 6);
  EXPECT_EQ(server.control_session_count(), 1u);
  EXPECT_EQ(server.stats().sessions_opened, 1);

  std::string received;
  ASSERT_TRUE(RunUntil([&]() {
    char buf[1024];
    IoResult r = raw.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      received.append(buf, r.bytes);
    }
    return received.find("OK SUB keep_*\n") != std::string::npos &&
           received.find("ERR SUB missing-pattern\n") != std::string::npos &&
           received.find("ERR DELAY bad-milliseconds\n") != std::string::npos &&
           received.find("ERR SUB trailing-junk\n") != std::string::npos &&
           received.find("ERR LIST trailing-junk\n") != std::string::npos &&
           received.find("ERR unknown-verb\n") != std::string::npos;
  }));
}

TEST_F(ControlChannelTest, ControlDisabledTreatsVerbsAsGarbage) {
  StreamServer server(&loop_, &scope_, {.enable_control = false});
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  const std::string wire = "SUB tcp_*\n";
  raw.Write(wire.data(), wire.size());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 1; }));
  EXPECT_EQ(server.control_session_count(), 0u);
  EXPECT_EQ(server.stats().control_commands, 0);
}

TEST_F(ControlChannelTest, SessionTornDownOnDisconnect) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  {
    ControlClient a(&loop_);
    ASSERT_TRUE(a.Connect(server.port()));
    ASSERT_TRUE(RunUntil([&]() { return a.connected(); }));
    a.Subscribe("x_*");
    ASSERT_TRUE(RunUntil([&]() { return a.stats().replies_ok >= 1; }));
    EXPECT_EQ(server.scope_count(), 2u);  // display scope + session scope
  }  // client closes
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 0; }));
  EXPECT_EQ(server.scope_count(), 1u);  // session scope unregistered
  EXPECT_EQ(server.control_session_count(), 0u);

  // Ingest continues unharmed after the session teardown.
  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  producer.Send(scope_.NowMs(), 5.0, "x_after");
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_TRUE(RunUntil([&]() { return scope_.FindSignal("x_after") != 0; }));
}

TEST_F(ControlChannelTest, DeadSubscriberDropsSessionWithoutKillingServer) {
  // A subscriber that vanishes without reading its echo stream leaves a
  // reset connection; the server's next egress write must surface as an
  // error that drops the session - not as a process-killing SIGPIPE.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  {
    Socket raw = Socket::Connect(server.port());
    ASSERT_TRUE(raw.valid());
    ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
    const std::string sub = "SUB dead_*\n";
    raw.Write(sub.data(), sub.size());
    ASSERT_TRUE(RunUntil([&]() { return server.control_session_count() == 1; }));
  }  // closed with the unread OK reply pending -> RST on Linux

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 1.0, "dead_metric");
    loop_.RunForMs(2);
    return server.control_session_count() == 0;
  }));
  // The server survived and keeps ingesting.
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 2.0, "alive_metric");
    loop_.RunForMs(2);
    return scope_.FindSignal("alive_metric") != 0;
  }));
}

TEST_F(ControlChannelTest, EgressOverflowDropsWholeFramesWithByteAccounting) {
  // A subscriber that never reads while a producer floods: the session's
  // tiny egress backlog must shed WHOLE frames (echo_dropped), and
  // everything that does arrive must be complete lines.
  StreamServer server(&loop_, &scope_, {.control_max_buffer = 512});
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  const std::string sub = "SUB flood_*\n";
  raw.Write(sub.data(), sub.size());
  ASSERT_TRUE(RunUntil([&]() { return server.control_session_count() == 1; }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  // Flood without ever reading `raw`: the kernel socket buffer plus the
  // 512-byte session backlog overflow quickly.
  ASSERT_TRUE(RunUntil([&]() {
    for (int i = 0; i < 64; ++i) {
      producer.Send(scope_.NowMs(), 1000.0 + i, "flood_metric");
    }
    loop_.RunForMs(2);
    return server.stats().echo_dropped > 0;
  }));
  EXPECT_EQ(server.stats().echo_evicted, 0);  // default policy drops newest

  // Now read everything that made it through: only complete lines.
  std::string received;
  for (int i = 0; i < 200; ++i) {
    loop_.RunForMs(1);
    char buf[4096];
    IoResult r;
    while ((r = raw.Read(buf, sizeof(buf))).status == IoResult::Status::kOk) {
      received.append(buf, r.bytes);
    }
  }
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received.back(), '\n');  // no torn tail
  for (size_t pos = 0, nl; (nl = received.find('\n', pos)) != std::string::npos; pos = nl + 1) {
    std::string_view line(received.data() + pos, nl - pos);
    if (line.rfind("OK", 0) == 0) {
      continue;  // the SUB reply shares the backlog
    }
    EXPECT_TRUE(ParseTupleView(line).has_value()) << "torn echo line: " << line;
  }
}

TEST_F(ControlChannelTest, EgressDropOldestEvictsStaleEchoKeepsNewest) {
  // Same flood, drop-oldest egress: a stalled viewer loses the OLDEST echo
  // frames (echo_evicted) and resumes at the newest data once it reads.
  StreamServer server(&loop_, &scope_,
                      {.control_max_buffer = 512,
                       .control_overflow_policy = OverflowPolicy::kDropOldest});
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));
  const std::string sub = "SUB ev_*\n";
  raw.Write(sub.data(), sub.size());
  ASSERT_TRUE(RunUntil([&]() { return server.control_session_count() == 1; }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  double value = 0;
  ASSERT_TRUE(RunUntil([&]() {
    for (int i = 0; i < 64; ++i) {
      producer.Send(scope_.NowMs(), ++value, "ev_metric");
    }
    loop_.RunForMs(2);
    return server.stats().echo_evicted > 0;
  }));
  EXPECT_EQ(server.stats().echo_dropped, 0);  // eviction always made room

  // Drain the viewer: the stream must resume at (or after) the newest data
  // of the flood - the old backlog's head was what eviction shed.
  double flood_end = value;
  std::string received;
  double last_echoed = -1;
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), ++value, "ev_metric");
    loop_.RunForMs(1);
    char buf[4096];
    IoResult r;
    while ((r = raw.Read(buf, sizeof(buf))).status == IoResult::Status::kOk) {
      received.append(buf, r.bytes);
    }
    for (size_t pos = 0, nl; (nl = received.find('\n', pos)) != std::string::npos;
         pos = nl + 1) {
      auto view = ParseTupleView(std::string_view(received.data() + pos, nl - pos));
      if (view.has_value()) {
        last_echoed = std::max(last_echoed, view->value);
      }
    }
    return last_echoed >= flood_end;
  }));
}

TEST_F(ControlChannelTest, ReconnectAfterServerRestartResumesSubscription) {
  // Session resumption: a server restart surfaces as a disconnect on the
  // control client, and a plain re-Connect replays the remembered pattern
  // set and delay — no manual re-SUB required.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  uint16_t port = server.port();
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("rc_*");
  viewer.SetDelay(100);
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 0);  // nothing remembered yet

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 1.0, "rc_before");
    loop_.RunForMs(2);
    return sink.SawValue(1.0);
  }));

  // Restart: every connection dies with the listener.
  server.Close();
  ASSERT_TRUE(RunUntil([&]() { return viewer.state() == ConnectState::kDisconnected; }));
  EXPECT_FALSE(viewer.connected());
  ASSERT_TRUE(server.Listen(port));
  EXPECT_EQ(server.control_session_count(), 0u);  // the old session died

  // The client still remembers its session state across the disconnect.
  ASSERT_EQ(viewer.remembered_patterns().size(), 1u);
  EXPECT_EQ(viewer.remembered_patterns()[0], "rc_*");
  EXPECT_TRUE(viewer.has_remembered_delay());
  EXPECT_EQ(viewer.remembered_delay_ms(), 100);

  // Reconnect only: SUB rc_* and DELAY 100 are replayed automatically.
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 4; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 2);  // SUB + DELAY

  ASSERT_TRUE(producer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 2.0, "rc_after");
    loop_.RunForMs(2);
    return sink.SawValue(2.0);
  }));
  // Counters accumulate across the restart: one session per SUB round.
  EXPECT_EQ(server.stats().sessions_opened, 2);
  EXPECT_EQ(server.control_session_count(), 1u);
  EXPECT_EQ(viewer.stats().replies_err, 0);  // replay never duplicates
}

TEST_F(ControlChannelTest, UnsubscribeAndForgetTrimResumedState) {
  // The remembered set tracks intent: UNSUB removes a pattern from what a
  // reconnect would replay, ForgetSession drops everything, and
  // auto_resubscribe = false opts out entirely.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  uint16_t port = server.port();
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("a_*");
  viewer.Subscribe("b_*");
  viewer.Unsubscribe("a_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 3; }));
  ASSERT_EQ(viewer.remembered_patterns().size(), 1u);
  EXPECT_EQ(viewer.remembered_patterns()[0], "b_*");

  server.Close();
  ASSERT_TRUE(RunUntil([&]() { return viewer.state() == ConnectState::kDisconnected; }));
  ASSERT_TRUE(server.Listen(port));
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().resumed_commands >= 1; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 1);  // only b_*

  viewer.ForgetSession();
  EXPECT_TRUE(viewer.remembered_patterns().empty());
  EXPECT_FALSE(viewer.has_remembered_delay());

  // Opt-out client: a reconnect replays nothing.
  ControlClient manual(&loop_, {.auto_resubscribe = false});
  ASSERT_TRUE(manual.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return manual.connected(); }));
  manual.Subscribe("m_*");
  ASSERT_TRUE(RunUntil([&]() { return manual.stats().replies_ok >= 1; }));
  server.Close();
  ASSERT_TRUE(RunUntil([&]() { return manual.state() == ConnectState::kDisconnected; }));
  ASSERT_TRUE(server.Listen(port));
  ASSERT_TRUE(manual.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return manual.connected(); }));
  // Positive barrier instead of a blind wait: PING rides the same ordered
  // stream as any replay would, so a PONG proves the server has consumed
  // everything the establishment sent - and nothing was replayed.
  manual.Ping();
  ASSERT_TRUE(RunUntil([&]() { return manual.stats().pongs_received >= 1; }));
  EXPECT_EQ(manual.stats().resumed_commands, 0);
}

TEST_F(ControlChannelTest, UnsubscribeDuringHandshakeIsNotOverriddenByReplay) {
  // An UNSUB issued while the reconnect handshake is in flight must win:
  // the resume replay reflects the remembered state at establishment time,
  // never a stale snapshot re-adding the pattern behind the caller's back.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  uint16_t port = server.port();
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("hs_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 1; }));

  server.Close();
  ASSERT_TRUE(RunUntil([&]() { return viewer.state() == ConnectState::kDisconnected; }));
  ASSERT_TRUE(server.Listen(port));

  // Reconnect, then unsubscribe BEFORE the handshake completes: the queued
  // UNSUB rides its own frame; the replay must not re-add hs_*.
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_EQ(viewer.state(), ConnectState::kConnecting);
  viewer.Unsubscribe("hs_*");
  EXPECT_TRUE(viewer.remembered_patterns().empty());
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  // PONG round-trip as the ordering barrier: any replayed SUB would have
  // been counted (and replied to) before the PING the server just answered.
  viewer.Ping();
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().pongs_received >= 1; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 0);

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  for (int i = 0; i < 20; ++i) {
    producer.Send(scope_.NowMs(), 7.0, "hs_metric");
    loop_.RunForMs(2);
  }
  EXPECT_FALSE(sink.SawValue(7.0));  // the server session is NOT subscribed

  // A pattern subscribed during the handshake is sent once, not twice.
  server.Close();
  ASSERT_TRUE(RunUntil([&]() { return viewer.state() == ConnectState::kDisconnected; }));
  ASSERT_TRUE(server.Listen(port));
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_EQ(viewer.state(), ConnectState::kConnecting);
  viewer.Subscribe("hs2_*");  // queued behind the handshake
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));
  viewer.Ping();
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().pongs_received >= 2; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 0);  // rode its own frame
  // Exactly one ERR in the whole scenario: the queued UNSUB landing on the
  // fresh session (unknown-pattern, benign).  No duplicate-SUB ERR ever.
  EXPECT_EQ(viewer.stats().replies_err, 1);
}

TEST_F(ControlChannelTest, StatsVerbReturnsCounterLine) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("st_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 1; }));

  // Some ingest traffic: a parse error, matched tuples (every-sample echo
  // keeps the session's slots on the history path), and display-scope
  // coalescing on the unfiltered display target.
  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  {
    // One malformed tuple line (digit-leading so it cannot read as a verb).
    Socket garbage = Socket::Connect(server.port());
    ASSERT_TRUE(garbage.valid());
    const std::string bad = "12 not-a-value\n";
    garbage.Write(bad.data(), bad.size());
    ASSERT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 1; }));
  }
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 5.0, "st_metric");
    producer.Send(scope_.NowMs(), 6.0, "st_metric");
    loop_.RunForMs(2);
    return sink.SawValue(6.0);
  }));

  viewer.RequestStats();
  std::string stats_line;
  ASSERT_TRUE(RunUntil([&]() {
    for (const std::string& reply : sink.replies) {
      if (reply.rfind("OK STATS ", 0) == 0) {
        stats_line = reply;
        return true;
      }
    }
    return false;
  }));
  // One line of space-separated key/value pairs (docs/protocol.md).
  EXPECT_NE(stats_line.find(" parse_errors 1"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find(" echo_evicted 0"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find(" excluded_route_slots "), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find(" samples_coalesced "), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find(" samples_retained "), std::string::npos) << stats_line;
  // The session scope echoes per sample (retained); the display scope has
  // no every-sample consumer, so its samples coalesce.
  int64_t retained = 0;
  size_t pos = stats_line.find(" samples_retained ");
  ASSERT_NE(pos, std::string::npos);
  retained = std::stoll(stats_line.substr(pos + sizeof(" samples_retained ") - 1));
  EXPECT_GE(retained, 2);

  // Grammar: STATS takes no argument.
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  const std::string wire = "SUB raw_*\nSTATS junk\n";
  raw.Write(wire.data(), wire.size());
  std::string received;
  ASSERT_TRUE(RunUntil([&]() {
    char buf[1024];
    IoResult r = raw.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      received.append(buf, r.bytes);
    }
    return received.find("ERR STATS trailing-junk\n") != std::string::npos;
  }));
}

TEST_F(ControlChannelTest, ControlOnlyServerNeedsNoLocalScope) {
  // The paper's multi-viewer service shape: every display target attaches
  // over the wire; the server process owns no scope of its own.
  StreamServer server(&loop_, nullptr);
  ASSERT_TRUE(server.Listen(0));

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("*");
  viewer.SetDelay(300);
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));

  // With no reference scope the session's clock starts at zero when the
  // session is created, and the producer's stamps must merely land inside
  // the 300 ms display window; slowly advancing stamps stay within it.
  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  int64_t stamp = 0;
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(stamp += 2, 11.0, "anything");
    loop_.RunForMs(2);
    return sink.SawValue(11.0);
  }));
}

// ---------------------------------------------------------------------------
// Derived-signal pipelines (docs/protocol.md "Derived-signal pipelines").
// ---------------------------------------------------------------------------

TEST_F(ControlChannelTest, DecimateEmitsEveryNthExactly) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("dec_*");
  viewer.SetDelay(100);
  viewer.Stage("DECIMATE 3");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 3; }));
  EXPECT_EQ(server.stats().stages_active, 1);

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  for (int i = 1; i <= 9; ++i) {
    producer.Send(scope_.NowMs(), static_cast<double>(i), "dec_x");
  }
  ASSERT_TRUE(RunUntil([&]() { return sink.tuples.size() >= 3; }));
  loop_.RunForMs(150);  // settle: no stragglers may trail in
  ASSERT_EQ(sink.tuples.size(), 3u);
  // The first sample of a signal always emits; then every factor-th.
  EXPECT_EQ(sink.tuples[0].first, "dec_x");
  EXPECT_EQ(sink.tuples[0].second, 1.0);
  EXPECT_EQ(sink.tuples[1].second, 4.0);
  EXPECT_EQ(sink.tuples[2].second, 7.0);
  EXPECT_EQ(server.stats().stage_evals, 9);
  EXPECT_EQ(server.stats().tuples_derived, 3);
}

TEST_F(ControlChannelTest, EwmaSmoothsWithExactValues) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("ew_*");
  viewer.SetDelay(100);
  viewer.Stage("EWMA 0.5");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 3; }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  producer.Send(scope_.NowMs(), 1.0, "ew_x");
  producer.Send(scope_.NowMs(), 2.0, "ew_x");
  producer.Send(scope_.NowMs(), 3.0, "ew_x");
  ASSERT_TRUE(RunUntil([&]() { return sink.tuples.size() >= 3; }));
  ASSERT_EQ(sink.tuples.size(), 3u);
  // alpha = 0.5 over 1, 2, 3: exact dyadic arithmetic, and the text wire
  // round-trips doubles exactly (shortest-form to_chars both ways).
  EXPECT_EQ(sink.tuples[0].second, 1.0);
  EXPECT_EQ(sink.tuples[1].second, 1.5);
  EXPECT_EQ(sink.tuples[2].second, 2.25);
}

TEST_F(ControlChannelTest, EnvelopeEmitsWindowMinMax) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  loop_.RunForMs(20);  // move scope time off zero

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("env_*");
  viewer.SetDelay(150);
  viewer.Stage("ENVELOPE 50");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 3; }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  const int64_t base = scope_.NowMs();
  producer.Send(base, 5.0, "env_x");
  producer.Send(base + 5, -1.0, "env_x");
  producer.Send(base + 10, 9.0, "env_x");
  producer.Send(base + 60, 2.0, "env_x");  // closes the window
  ASSERT_TRUE(RunUntil([&]() { return sink.tuples.size() >= 2; }));
  loop_.RunForMs(100);  // the sample that closed the window starts a new,
                        // never-closed one: nothing further may arrive
  ASSERT_EQ(sink.tuples.size(), 2u);
  std::map<std::string, double> got(sink.tuples.begin(), sink.tuples.end());
  ASSERT_TRUE(got.count("env_x.min"));
  ASSERT_TRUE(got.count("env_x.max"));
  EXPECT_EQ(got["env_x.min"], -1.0);
  EXPECT_EQ(got["env_x.max"], 9.0);
}

TEST_F(ControlChannelTest, SpectrumStreamsBinsMatchingFixture) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  loop_.RunForMs(300);  // history for back-dated stamps

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("tone*");
  viewer.SetDelay(400);
  viewer.Stage("SPECTRUM 256 hann");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 3; }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  // A 125 Hz tone sampled at 1 kHz (1 ms stamp spacing): the derived rate
  // is exactly (256-1)*1000/255 = 1000 Hz, so bin_hz = 1000/256 and the
  // tone lands dead on bin 32.
  const int64_t base = scope_.NowMs();
  std::vector<double> block(256);
  for (int i = 0; i < 256; ++i) {
    block[static_cast<size_t>(i)] =
        std::sin(2.0 * M_PI * 125.0 * static_cast<double>(i) / 1000.0);
    producer.Send(base - 255 + i, block[static_cast<size_t>(i)], "tone");
  }
  ASSERT_TRUE(RunUntil([&]() { return sink.tuples.size() >= 129; }, 4000));
  ASSERT_EQ(sink.tuples.size(), 129u);  // bins 0..N/2 inclusive

  // The streamed bins must match the library fixture on the same block.
  Spectrum expect = ComputeSpectrum(block, 1000.0, {.window = WindowKind::kHann});
  ASSERT_EQ(expect.power_db.size(), 129u);
  std::map<std::string, double> got(sink.tuples.begin(), sink.tuples.end());
  ASSERT_EQ(got.size(), 129u);
  for (size_t k = 0; k < expect.power_db.size(); ++k) {
    const std::string name = "tone.bin" + std::to_string(k);
    ASSERT_TRUE(got.count(name)) << name;
    EXPECT_DOUBLE_EQ(got[name], expect.power_db[k]) << name;
  }
  EXPECT_EQ(expect.PeakBin(), 32u);
}

TEST_F(ControlChannelTest, IdenticalSubscriptionsShareOneStageEvaluation) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient a(&loop_), b(&loop_), c(&loop_);
  Sink sa, sb, sc;
  sa.Wire(a);
  sb.Wire(b);
  sc.Wire(c);
  for (ControlClient* v : {&a, &b, &c}) {
    ASSERT_TRUE(v->Connect(server.port()));
  }
  ASSERT_TRUE(RunUntil(
      [&]() { return a.connected() && b.connected() && c.connected(); }));
  for (ControlClient* v : {&a, &b, &c}) {
    v->Subscribe("sh_*");
    v->SetDelay(80);
    v->Stage("DECIMATE 2");
  }
  ASSERT_TRUE(RunUntil([&]() {
    return a.stats().replies_ok >= 3 && b.stats().replies_ok >= 3 &&
           c.stats().replies_ok >= 3;
  }));
  // Three identical subscriptions share ONE server-side stage group.
  EXPECT_EQ(server.stats().stages_active, 1);

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  for (int i = 1; i <= 10; ++i) {
    producer.Send(scope_.NowMs(), static_cast<double>(i), "sh_sig");
  }
  ASSERT_TRUE(RunUntil([&]() {
    return sa.tuples.size() >= 5 && sb.tuples.size() >= 5 &&
           sc.tuples.size() >= 5;
  }));
  // The share-once proof: each sample evaluated ONCE, not once per viewer…
  EXPECT_EQ(server.stats().stage_evals, 10);
  // …then the 5 derived tuples fanned out to 3 echoes each.
  EXPECT_EQ(server.stats().tuples_derived, 15);
  for (Sink* s : {&sa, &sb, &sc}) {
    ASSERT_EQ(s->tuples.size(), 5u);
    EXPECT_EQ(s->tuples[0].second, 1.0);
    EXPECT_EQ(s->tuples[4].second, 9.0);
  }

  // LIST reports the attached stage as the session's tap mode.
  a.RequestList();
  ASSERT_TRUE(RunUntil([&]() {
    return std::find(sa.replies.begin(), sa.replies.end(),
                     "OK LIST 1 DELAY 80 MODE DECIMATE 2") != sa.replies.end();
  }));
  EXPECT_TRUE(std::find(sa.replies.begin(), sa.replies.end(),
                        "INFO SUB sh_* STAGE DECIMATE 2") != sa.replies.end());

  // One member detaching back to raw leaves the group alive for the others.
  c.ClearStage();
  ASSERT_TRUE(RunUntil([&]() { return c.stats().replies_ok >= 4; }));
  EXPECT_EQ(server.stats().stages_active, 1);
  producer.Send(scope_.NowMs(), 11.0, "sh_sig");
  producer.Send(scope_.NowMs(), 12.0, "sh_sig");
  ASSERT_TRUE(RunUntil([&]() {
    return sc.SawValue(12.0) && sa.SawValue(11.0) && sb.SawValue(11.0);
  }));
  // The raw session sees every sample again; staged peers stay decimated.
  EXPECT_TRUE(sc.SawValue(11.0));
  EXPECT_FALSE(sa.SawValue(12.0));
  EXPECT_FALSE(sb.SawValue(12.0));
}

TEST_F(ControlChannelTest, SharedStageAcrossShardedLoops) {
  // The TSan target: per-loop stage groups under sharded accepts.  Sessions
  // spread across 4 loops; each loop that hosts members builds its own
  // group, so evaluation count is bounded by loops x samples while every
  // viewer still receives the exact decimated stream.
  scope_.SetConcurrent(true);
  StreamServer server(&loop_, &scope_, {.loops = 4});
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  constexpr int kViewers = 6;
  constexpr int kSamples = 40;
  std::vector<std::unique_ptr<ControlClient>> viewers;
  std::vector<Sink> sinks(kViewers);
  for (int i = 0; i < kViewers; ++i) {
    viewers.push_back(std::make_unique<ControlClient>(&loop_));
    sinks[static_cast<size_t>(i)].Wire(*viewers.back());
    ASSERT_TRUE(viewers.back()->Connect(server.port()));
  }
  ASSERT_TRUE(RunUntil(
      [&]() {
        return std::all_of(viewers.begin(), viewers.end(),
                           [](const auto& v) { return v->connected(); });
      },
      8000));
  for (auto& v : viewers) {
    v->Subscribe("shard_*");
    v->SetDelay(80);
    v->Stage("DECIMATE 2");
  }
  ASSERT_TRUE(RunUntil(
      [&]() {
        return std::all_of(viewers.begin(), viewers.end(), [](const auto& v) {
          return v->stats().replies_ok >= 3;
        });
      },
      8000));
  EXPECT_GE(server.stats().stages_active, 1);
  EXPECT_LE(server.stats().stages_active, 4);

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  for (int i = 1; i <= kSamples; ++i) {
    producer.Send(scope_.NowMs(), static_cast<double>(i), "shard_sig");
  }
  ASSERT_TRUE(RunUntil(
      [&]() {
        return std::all_of(sinks.begin(), sinks.end(), [](const Sink& s) {
          return s.tuples.size() >= kSamples / 2;
        });
      },
      8000));
  for (const Sink& s : sinks) {
    ASSERT_EQ(s.tuples.size(), static_cast<size_t>(kSamples / 2));
    for (int k = 0; k < kSamples / 2; ++k) {
      EXPECT_EQ(s.tuples[static_cast<size_t>(k)].second,
                static_cast<double>(2 * k + 1));
    }
  }
  // Shard-local sharing: between 1x (all sessions on one loop) and 4x.
  EXPECT_GE(server.stats().stage_evals, kSamples);
  EXPECT_LE(server.stats().stage_evals, 4 * kSamples);
}

TEST_F(ControlChannelTest, StageRespectsNamespaceAndEgressQuota) {
  StreamServerOptions opts;
  opts.auth_tokens = {{"tok-a", "tenant-a"}};
  opts.quota_egress_bytes_per_sec = 64;
  StreamServer server(&loop_, &scope_, opts);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Auth("tok-a");
  viewer.Subscribe("q_*");
  viewer.SetDelay(50);
  viewer.Stage("EWMA 1");  // alpha = 1: identity pass-through
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 4; }));

  ControlClient tenant_producer(&loop_);
  ASSERT_TRUE(tenant_producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return tenant_producer.connected(); }));
  tenant_producer.Auth("tok-a");
  ASSERT_TRUE(RunUntil([&]() { return tenant_producer.stats().replies_ok >= 1; }));

  StreamClient outsider(&loop_);
  ASSERT_TRUE(outsider.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return outsider.connected(); }));

  // The anonymous producer's same-prefixed signal must never enter the
  // tenant's derived stream; the flood must trip the egress token bucket.
  outsider.Send(scope_.NowMs(), 99.0, "q_secret");
  for (int i = 1; i <= 200; ++i) {
    tenant_producer.Send(scope_.NowMs(), 1000.0 + i, "q_x");
  }
  ASSERT_TRUE(RunUntil([&]() {
    return sink.SawName("q_x") && server.stats().quota_drops_text >= 1;
  }));
  EXPECT_FALSE(sink.SawValue(99.0));
  EXPECT_FALSE(sink.SawName("q_secret"));
  EXPECT_GE(server.stats().quota_drops, 1);
}

TEST_F(ControlChannelTest, ReconnectReplaysAttachedStage) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  uint16_t port = server.port();
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("rs_*");
  viewer.SetDelay(60);
  viewer.Stage("EWMA 0.5");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 3; }));
  EXPECT_TRUE(viewer.has_remembered_stage());
  EXPECT_EQ(viewer.remembered_stage(), "EWMA 0.5");

  server.Close();
  ASSERT_TRUE(RunUntil(
      [&]() { return viewer.state() == ConnectState::kDisconnected; }));
  ASSERT_TRUE(server.Listen(port));

  // Reconnect only: SUB, DELAY and the stage are replayed automatically,
  // the stage LAST so it keys against the restored pattern set and delay.
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 6; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 3);  // SUB + DELAY + EWMA
  EXPECT_EQ(server.stats().stages_active, 1);
  EXPECT_EQ(viewer.stats().replies_err, 0);

  viewer.RequestList();
  ASSERT_TRUE(RunUntil([&]() {
    return std::find(sink.replies.begin(), sink.replies.end(),
                     "OK LIST 1 DELAY 60 MODE EWMA 0.5") != sink.replies.end();
  }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  producer.Send(scope_.NowMs(), 1.0, "rs_x");
  producer.Send(scope_.NowMs(), 2.0, "rs_x");
  ASSERT_TRUE(RunUntil([&]() { return sink.tuples.size() >= 2; }));
  EXPECT_EQ(sink.tuples[0].second, 1.0);
  EXPECT_EQ(sink.tuples[1].second, 1.5);
}

TEST_F(ControlChannelTest, CoalesceAndRawSwitchListMode) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("c_*");
  viewer.SetDelay(100);
  viewer.Stage("COALESCE");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 3; }));
  // COALESCE is a tap-mode switch, not a derived stage: no group exists.
  EXPECT_EQ(server.stats().stages_active, 0);

  viewer.RequestList();
  ASSERT_TRUE(RunUntil([&]() {
    return std::find(sink.replies.begin(), sink.replies.end(),
                     "OK LIST 1 DELAY 100 MODE coalesced") != sink.replies.end();
  }));

  viewer.ClearStage();  // sends RAW
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 4; }));
  viewer.RequestList();
  ASSERT_TRUE(RunUntil([&]() {
    return std::find(sink.replies.begin(), sink.replies.end(),
                     "OK LIST 1 DELAY 100 MODE every-sample") !=
           sink.replies.end();
  }));
}

TEST_F(ControlChannelTest, StageGrammarErrShapes) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  const std::string wire =
      "SUB g_*\n"
      "DECIMATE 0\n"
      "DECIMATE x\n"
      "EWMA 2\n"
      "EWMA abc\n"
      "ENVELOPE 0\n"
      "SPECTRUM 1\n"
      "SPECTRUM 8 bogus\n"
      "SPECTRUM 8 hann extra\n"
      "COALESCE junk\n"
      "DECIMATE 3 junk\n";
  raw.Write(wire.data(), wire.size());

  std::string received;
  ASSERT_TRUE(RunUntil([&]() {
    char buf[2048];
    IoResult r = raw.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      received.append(buf, r.bytes);
    }
    return received.find("OK SUB g_*\n") != std::string::npos &&
           received.find("ERR DECIMATE bad-factor\n") != std::string::npos &&
           received.find("ERR EWMA bad-alpha\n") != std::string::npos &&
           received.find("ERR ENVELOPE bad-window\n") != std::string::npos &&
           received.find("ERR SPECTRUM bad-size\n") != std::string::npos &&
           received.find("ERR SPECTRUM bad-window\n") != std::string::npos &&
           received.find("ERR SPECTRUM trailing-junk\n") != std::string::npos &&
           received.find("ERR COALESCE trailing-junk\n") != std::string::npos &&
           received.find("ERR DECIMATE trailing-junk\n") != std::string::npos;
  }));
  // Every malformed spec was rejected before touching the session's tap:
  // no stage group was ever created, and the session survived.
  EXPECT_EQ(server.stats().stages_active, 0);
  EXPECT_EQ(server.control_session_count(), 1u);
}

// ---------------------------------------------------------------------------
// Flight recorder (docs/protocol.md "Flight recorder").
// ---------------------------------------------------------------------------

namespace {
std::string RecordTempPath(const std::string& tag) {
  std::string path = ::testing::TempDir();
  if (!path.empty() && path.back() != '/') {
    path.push_back('/');
  }
  path.append("gscope_ctl_").append(tag).append("_");
  path.append(std::to_string(::getpid())).append(".log");
  std::remove(path.c_str());
  return path;
}

// Value of a space-separated `key value` pair in a STATS line, -1 if absent.
int64_t StatsValue(const std::string& line, const std::string& key) {
  size_t pos = line.find(" " + key + " ");
  if (pos == std::string::npos) {
    return -1;
  }
  return std::stoll(line.substr(pos + key.size() + 2));
}
}  // namespace

TEST_F(ControlChannelTest, RecordReplayRoundTripOverWire) {
  const std::string path = RecordTempPath("roundtrip");
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("fr_*");
  ASSERT_TRUE(viewer.Record(path));
  ASSERT_TRUE(RunUntil([&]() {
    for (const std::string& reply : sink.replies) {
      if (reply.rfind("OK RECORD " + path, 0) == 0) {
        return true;
      }
    }
    return false;
  }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  for (int i = 1; i <= 20; ++i) {
    producer.Send(scope_.NowMs(), 100.0 + i, "fr_sig");
  }
  ASSERT_TRUE(RunUntil([&]() { return sink.SawValue(120.0); }));

  // Poll STATS until the recorder (on its own thread and time axis) has
  // drained the whole burst; this also pins the live-recording key shapes.
  std::string stats_line;
  ASSERT_TRUE(RunUntil([&]() {
    viewer.RequestStats();
    loop_.RunForMs(2);
    for (auto it = sink.replies.rbegin(); it != sink.replies.rend(); ++it) {
      if (it->rfind("OK STATS ", 0) == 0) {
        stats_line = *it;
        return StatsValue(stats_line, "recording") == 1 &&
               StatsValue(stats_line, "samples_captured") >= 20;
      }
    }
    return false;
  }));
  EXPECT_GE(StatsValue(stats_line, "extents_sealed"), 0);
  EXPECT_EQ(StatsValue(stats_line, "capture_degraded"), 0);
  EXPECT_EQ(StatsValue(stats_line, "fsync_policy"), 0);

  ASSERT_TRUE(viewer.StopRecord());
  ASSERT_TRUE(RunUntil([&]() {
    for (const std::string& reply : sink.replies) {
      if (reply == "OK RECORD OFF") {
        return true;
      }
    }
    return false;
  }));

  // The retired tallies survive RECORD OFF (STATS keys stay monotone).
  ASSERT_TRUE(RunUntil([&]() {
    viewer.RequestStats();
    loop_.RunForMs(2);
    for (auto it = sink.replies.rbegin(); it != sink.replies.rend(); ++it) {
      if (it->rfind("OK STATS ", 0) == 0) {
        stats_line = *it;
        return StatsValue(stats_line, "recording") == 0;
      }
    }
    return false;
  }));
  EXPECT_GE(StatsValue(stats_line, "samples_captured"), 20);
  EXPECT_GE(StatsValue(stats_line, "extents_sealed"), 1);
  EXPECT_GT(StatsValue(stats_line, "capture_bytes"), 0);
  EXPECT_EQ(StatsValue(stats_line, "extents_dropped"), 0);

  // Time travel: a burst REPLAY streams the recorded window back between
  // "OK REPLAY n" and "INFO REPLAY DONE n", through the normal echo path.
  const size_t tuples_before = sink.tuples.size();
  ASSERT_TRUE(viewer.Replay(0, 1'000'000'000));
  int64_t announced = -1;
  int64_t done = -1;
  ASSERT_TRUE(RunUntil([&]() {
    for (const std::string& reply : sink.replies) {
      if (reply.rfind("OK REPLAY ", 0) == 0) {
        announced = std::stoll(reply.substr(sizeof("OK REPLAY ") - 1));
      } else if (reply.rfind("INFO REPLAY DONE ", 0) == 0) {
        done = std::stoll(reply.substr(sizeof("INFO REPLAY DONE ") - 1));
      }
    }
    return done >= 0 && sink.tuples.size() >= tuples_before + 20;
  }));
  EXPECT_GE(announced, 20);
  EXPECT_EQ(done, announced);
  // The replayed stream carries the recorded names and values verbatim.
  int replayed_last = 0;
  for (size_t i = tuples_before; i < sink.tuples.size(); ++i) {
    EXPECT_EQ(sink.tuples[i].first, "fr_sig");
    if (sink.tuples[i].second == 120.0) {
      ++replayed_last;
    }
  }
  EXPECT_GE(replayed_last, 1);
  std::remove(path.c_str());
}

TEST_F(ControlChannelTest, ListStagesReturnsCatalog) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  ASSERT_TRUE(viewer.RequestStages());
  ASSERT_TRUE(RunUntil([&]() {
    bool ok = false, dec = false, ewma = false, env = false, spec = false;
    for (const std::string& reply : sink.replies) {
      ok |= reply == "OK STAGES 4 ACTIVE 0";
      dec |= reply == "INFO STAGE DECIMATE <n>";
      ewma |= reply == "INFO STAGE EWMA <alpha>";
      env |= reply == "INFO STAGE ENVELOPE <window-ms>";
      spec |= reply == "INFO STAGE SPECTRUM <n> [window]";
    }
    return ok && dec && ewma && env && spec;
  }));
}

TEST_F(ControlChannelTest, RecordReplayErrShapes) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  const std::string wire =
      "SUB e_*\n"
      "RECORD\n"
      "RECORD OFF\n"
      "REPLAY 5 1\n"
      "REPLAY a b\n"
      "REPLAY 0 10 -2\n"
      "REPLAY 0 10 1 junk\n"
      "REPLAY 0 10\n";
  raw.Write(wire.data(), wire.size());

  std::string received;
  ASSERT_TRUE(RunUntil([&]() {
    char buf[2048];
    IoResult r = raw.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      received.append(buf, r.bytes);
    }
    return received.find("OK SUB e_*\n") != std::string::npos &&
           received.find("ERR RECORD missing-path\n") != std::string::npos &&
           received.find("ERR RECORD not-recording\n") != std::string::npos &&
           received.find("ERR REPLAY bad-window\n") != std::string::npos &&
           received.find("ERR REPLAY bad-speed\n") != std::string::npos &&
           received.find("ERR REPLAY trailing-junk\n") != std::string::npos &&
           received.find("ERR REPLAY no-recording\n") != std::string::npos;
  })) << received;
  // Nothing was recorded and the session survived every rejection.
  EXPECT_EQ(server.control_session_count(), 1u);
}

TEST_F(ControlChannelTest, RecordIsOperatorOnly) {
  // RECORD captures every tenant's signals into one server-side file, so a
  // namespaced session must not be able to start or stop it.
  StreamServerOptions opts;
  opts.auth_tokens = {{"tok-a", "tenant-a"}};
  StreamServer server(&loop_, &scope_, opts);
  ASSERT_TRUE(server.Listen(0));

  ControlClient tenant(&loop_);
  Sink sink;
  sink.Wire(tenant);
  ASSERT_TRUE(tenant.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return tenant.connected(); }));
  tenant.Auth("tok-a");
  ASSERT_TRUE(RunUntil([&]() { return tenant.stats().replies_ok >= 1; }));
  ASSERT_TRUE(tenant.Record(RecordTempPath("tenant")));
  ASSERT_TRUE(RunUntil([&]() {
    for (const std::string& reply : sink.replies) {
      if (reply == "ERR RECORD not-authorized") {
        return true;
      }
    }
    return false;
  }));
}

}  // namespace
}  // namespace gscope
