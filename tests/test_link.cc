#include "netsim/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace gscope {
namespace {

Packet DataPacket(int payload = 1460) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(LinkTest, DeliversAfterSerializationPlusPropagation) {
  Simulator sim;
  std::vector<SimTime> arrivals;
  LinkConfig config;
  config.bandwidth_bps = 1'000'000.0;  // 1 Mbit/s
  config.propagation_us = 10'000;
  Link link(&sim, config, [&](Packet) { arrivals.push_back(sim.now_us()); });

  // 1500 bytes at 1 Mbit/s = 12 ms serialization; +10 ms propagation = 22 ms.
  EXPECT_TRUE(link.Send(DataPacket()));
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 12'000 + 10'000);
}

TEST(LinkTest, BackToBackPacketsSerialize) {
  Simulator sim;
  std::vector<SimTime> arrivals;
  LinkConfig config;
  config.bandwidth_bps = 1'000'000.0;
  config.propagation_us = 0;
  Link link(&sim, config, [&](Packet) { arrivals.push_back(sim.now_us()); });

  link.Send(DataPacket());
  link.Send(DataPacket());
  link.Send(DataPacket());
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each 1500-byte packet takes 12 ms on the wire: arrivals 12, 24, 36 ms.
  EXPECT_EQ(arrivals[0], 12'000);
  EXPECT_EQ(arrivals[1], 24'000);
  EXPECT_EQ(arrivals[2], 36'000);
}

TEST(LinkTest, PreservesFifoOrder) {
  Simulator sim;
  std::vector<int64_t> seqs;
  LinkConfig config;
  Link link(&sim, config, [&](Packet p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 10; ++i) {
    Packet p = DataPacket();
    p.seq = i;
    link.Send(p);
  }
  sim.RunUntilIdle();
  ASSERT_EQ(seqs.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(seqs[i], i);
  }
}

TEST(LinkTest, QueueOverflowDropsAndReturnsFalse) {
  Simulator sim;
  int delivered = 0;
  LinkConfig config;
  config.queue.limit_packets = 3;
  config.bandwidth_bps = 1'000'000.0;
  Link link(&sim, config, [&](Packet) { ++delivered; });

  // The first packet dequeues immediately into transmission, leaving room
  // for 3 queued; the 5th must drop.
  int accepted = 0;
  for (int i = 0; i < 6; ++i) {
    if (link.Send(DataPacket())) {
      ++accepted;
    }
  }
  EXPECT_LT(accepted, 6);
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, accepted);
  EXPECT_GT(link.queue_stats().dropped_tail, 0);
}

TEST(LinkTest, SmallPacketsFaster) {
  Simulator sim;
  std::vector<SimTime> arrivals;
  LinkConfig config;
  config.bandwidth_bps = 1'000'000.0;
  config.propagation_us = 0;
  Link link(&sim, config, [&](Packet) { arrivals.push_back(sim.now_us()); });
  link.Send(DataPacket(/*payload=*/0));  // 40-byte ACK
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 320);  // 40 bytes * 8 / 1e6 s = 320 us
}

TEST(LinkTest, DeliveredCounter) {
  Simulator sim;
  Link link(&sim, LinkConfig{}, [](Packet) {});
  link.Send(DataPacket());
  link.Send(DataPacket());
  sim.RunUntilIdle();
  EXPECT_EQ(link.delivered(), 2);
}

TEST(LinkTest, IdleLinkRestartsCleanly) {
  Simulator sim;
  int delivered = 0;
  Link link(&sim, LinkConfig{}, [&](Packet) { ++delivered; });
  link.Send(DataPacket());
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 1);
  // After draining completely, a later send must transmit again.
  link.Send(DataPacket());
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 2);
}

}  // namespace
}  // namespace gscope
