// The sharded, signal-routed ingest bus: route-table resolution and epoch
// invalidation, O(1) span fan-out, dynamic scope/signal topology under load,
// late/overflow policy on the span path, and the FanoutPool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/fanout_pool.h"
#include "core/ingest_bus.h"
#include "core/ingest_router.h"
#include "core/scope.h"
#include "runtime/clock.h"

namespace gscope {
namespace {

class IngestRouterTest : public ::testing::Test {
 protected:
  IngestRouterTest() : loop_(&clock_) {}

  Scope* MakeScope(const std::string& name, size_t buffer_capacity = 1 << 16) {
    scopes_.push_back(std::make_unique<Scope>(
        &loop_, ScopeOptions{.name = name, .width = 64, .buffer_capacity = buffer_capacity}));
    Scope* scope = scopes_.back().get();
    scope->SetPollingMode(10);
    scope->StartPolling();
    return scope;
  }

  SimClock clock_;
  MainLoop loop_;
  std::vector<std::unique_ptr<Scope>> scopes_;
};

TEST_F(IngestRouterTest, FansOneBatchOutToAllScopes) {
  IngestRouter router;
  Scope* a = MakeScope("a");
  Scope* b = MakeScope("b");
  ASSERT_TRUE(router.AddScope(a));
  ASSERT_TRUE(router.AddScope(b));

  router.Append("sig", 0, 7.0);
  router.Append("sig", 1, 8.0);
  EXPECT_EQ(router.Flush().dropped_late, 0);

  clock_.AdvanceMs(5);
  a->TickOnce();
  b->TickOnce();
  EXPECT_DOUBLE_EQ(a->LatestValue(a->FindSignal("sig")).value_or(-1), 8.0);
  EXPECT_DOUBLE_EQ(b->LatestValue(b->FindSignal("sig")).value_or(-1), 8.0);
  EXPECT_EQ(a->counters().buffered_routed, 2);
  EXPECT_EQ(b->counters().buffered_routed, 2);
  EXPECT_EQ(router.route_count(), 1u);
}

TEST_F(IngestRouterTest, AddAndRemoveScopeAreO1AndIdempotent) {
  IngestRouter router;
  Scope* a = MakeScope("a");
  Scope* b = MakeScope("b");
  EXPECT_FALSE(router.AddScope(nullptr));
  EXPECT_TRUE(router.AddScope(a));
  EXPECT_FALSE(router.AddScope(a));  // duplicate
  EXPECT_TRUE(router.AddScope(b));
  EXPECT_EQ(router.scope_count(), 2u);
  EXPECT_TRUE(router.HasScope(a));
  EXPECT_TRUE(router.RemoveScope(a));
  EXPECT_FALSE(router.RemoveScope(a));
  EXPECT_FALSE(router.HasScope(a));
  EXPECT_EQ(router.scope_count(), 1u);
}

TEST_F(IngestRouterTest, UnnamedTuplesRouteToFirstBufferSignal) {
  IngestRouter router;
  Scope* a = MakeScope("a");
  SignalId id = a->AddSignal({.name = "only", .source = BufferSource{}});
  ASSERT_TRUE(router.AddScope(a));

  router.Append("", 0, 3.5);
  router.Flush();
  clock_.AdvanceMs(5);
  a->TickOnce();
  EXPECT_DOUBLE_EQ(a->LatestValue(id).value_or(-1), 3.5);
}

TEST_F(IngestRouterTest, ScopeAddedMidStreamReceivesOnlySubsequentTuples) {
  IngestRouter router;
  Scope* a = MakeScope("a");
  ASSERT_TRUE(router.AddScope(a));

  router.Append("sig", 0, 1.0);
  router.Flush();

  Scope* late_scope = MakeScope("late");
  ASSERT_TRUE(router.AddScope(late_scope));
  router.Append("sig", 1, 2.0);
  router.Flush();

  clock_.AdvanceMs(5);
  a->TickOnce();
  late_scope->TickOnce();
  EXPECT_DOUBLE_EQ(a->LatestValue(a->FindSignal("sig")).value_or(-1), 2.0);
  EXPECT_EQ(a->counters().buffered_routed, 2);
  // The late scope saw only the tuple sent after it subscribed.
  EXPECT_DOUBLE_EQ(late_scope->LatestValue(late_scope->FindSignal("sig")).value_or(-1), 2.0);
  EXPECT_EQ(late_scope->counters().buffered_routed, 1);
}

TEST_F(IngestRouterTest, ScopeRemovedMidStreamStopsReceivingButDrainsQueuedSpans) {
  IngestRouter router;
  Scope* keep = MakeScope("keep");
  Scope* gone = MakeScope("gone");
  ASSERT_TRUE(router.AddScope(keep));
  ASSERT_TRUE(router.AddScope(gone));

  router.Append("sig", 0, 1.0);
  router.Flush();  // queued on both scopes, not yet drained
  ASSERT_TRUE(router.RemoveScope(gone));
  router.Append("sig", 1, 2.0);
  router.Flush();

  clock_.AdvanceMs(5);
  keep->TickOnce();
  gone->TickOnce();
  EXPECT_EQ(keep->counters().buffered_routed, 2);
  // The removed scope still drains the span it got before removal.
  EXPECT_EQ(gone->counters().buffered_routed, 1);
  EXPECT_DOUBLE_EQ(gone->LatestValue(gone->FindSignal("sig")).value_or(-1), 1.0);
}

TEST_F(IngestRouterTest, RemovedSignalIsRecreatedOnNextTupleWhenAutoCreateOn) {
  IngestRouter router;
  Scope* a = MakeScope("a");
  ASSERT_TRUE(router.AddScope(a));

  router.Append("sig", 0, 1.0);
  router.Flush();
  SignalId first = a->FindSignal("sig");
  ASSERT_NE(first, 0);
  ASSERT_TRUE(a->RemoveSignal(first));  // epoch bump invalidates the table

  router.Append("sig", 1, 2.0);
  router.Flush();
  SignalId second = a->FindSignal("sig");
  ASSERT_NE(second, 0);
  EXPECT_NE(second, first);

  clock_.AdvanceMs(5);
  a->TickOnce();
  EXPECT_DOUBLE_EQ(a->LatestValue(second).value_or(-1), 2.0);
}

TEST_F(IngestRouterTest, AutoCreateOffPartialResolutionUsesShimForUnknownScope) {
  IngestRouter router({.auto_create_signals = false});
  Scope* knows = MakeScope("knows");
  Scope* learns = MakeScope("learns");
  knows->SetDelayMs(100);
  learns->SetDelayMs(100);
  SignalId known = knows->AddSignal({.name = "sig", .source = BufferSource{}});
  ASSERT_TRUE(router.AddScope(knows));
  ASSERT_TRUE(router.AddScope(learns));

  router.Append("sig", 10, 5.0);
  router.Flush();
  // The scope that learns the signal within the delay window still gets the
  // sample through the drain-time pending-name resolution.
  SignalId learned = learns->AddSignal({.name = "sig", .source = BufferSource{}});
  ASSERT_NE(learned, 0);

  clock_.AdvanceMs(150);
  knows->TickOnce();
  learns->TickOnce();
  EXPECT_DOUBLE_EQ(knows->LatestValue(known).value_or(-1), 5.0);
  EXPECT_DOUBLE_EQ(learns->LatestValue(learned).value_or(-1), 5.0);
}

TEST_F(IngestRouterTest, AutoCreateOffUnknownEverywhereDoesNotGrowRouteTable) {
  IngestRouter router({.auto_create_signals = false});
  Scope* a = MakeScope("a");
  ASSERT_TRUE(router.AddScope(a));
  for (int i = 0; i < 100; ++i) {
    router.Append("unknown_" + std::to_string(i), 0, 1.0);
  }
  router.Flush();
  EXPECT_EQ(router.route_count(), 0u);
  EXPECT_EQ(a->signal_count(), 0u);
}

TEST_F(IngestRouterTest, WholeLateBatchDroppedInO1PerScope) {
  IngestRouter router;
  Scope* a = MakeScope("a");
  ASSERT_TRUE(router.AddScope(a));
  clock_.AdvanceMs(1000);
  a->TickOnce();  // scope time is now ~1000ms

  router.Append("sig", 0, 1.0);  // stamped far in the past, delay 0
  router.Append("sig", 1, 2.0);
  EXPECT_EQ(router.Flush().dropped_late, 2);
  EXPECT_EQ(a->ingest_span_stats().dropped_late, 2);
  EXPECT_EQ(a->pending_ingest_samples(), 0u);
}

TEST_F(IngestRouterTest, StraddlingBatchSplitsPerSample) {
  IngestRouter router;
  Scope* a = MakeScope("a");
  ASSERT_TRUE(router.AddScope(a));
  clock_.AdvanceMs(1000);
  a->TickOnce();
  int64_t now = a->NowMs();

  router.Append("sig", now - 500, 1.0);  // late
  router.Append("sig", now + 5, 2.0);    // fresh
  EXPECT_EQ(router.Flush().dropped_late, 1);

  clock_.AdvanceMs(10);
  a->TickOnce();
  EXPECT_DOUBLE_EQ(a->LatestValue(a->FindSignal("sig")).value_or(-1), 2.0);
  EXPECT_EQ(a->counters().buffered_routed, 1);
}

TEST_F(IngestRouterTest, ReorderedStampsRouteNewestValueLast) {
  // UDP datagrams (or multi-client TCP) can interleave stamps out of order
  // within one batch; sample-and-hold must still end on the newest-stamped
  // value, as the ring drain's (time, arrival) sort guaranteed.
  IngestRouter router;
  Scope* a = MakeScope("a");
  ASSERT_TRUE(router.AddScope(a));
  int64_t now = a->NowMs();
  router.Append("sig", now + 10, 2.0);  // newer stamp arrives first
  router.Append("sig", now + 5, 1.0);   // older stamp second
  router.Flush();
  clock_.AdvanceMs(20);
  a->TickOnce();
  EXPECT_DOUBLE_EQ(a->LatestValue(a->FindSignal("sig")).value_or(-1), 2.0);
  EXPECT_EQ(a->counters().buffered_routed, 2);
}

TEST_F(IngestRouterTest, ScopeAddedMidBatchKeepsTableStrideConsistent) {
  // Regression: a scope attached between Append() and Flush() changes the
  // slot count; the span's table snapshot must be re-synced or slot indexes
  // would read the next route's row (wrong-signal delivery).
  IngestRouter router;
  Scope* a = MakeScope("a");
  ASSERT_TRUE(router.AddScope(a));
  router.Append("r0", 0, 1.0);
  router.Append("r1", 0, 2.0);
  Scope* b = MakeScope("b");
  ASSERT_TRUE(router.AddScope(b));  // mid-batch
  router.Append("r0", 1, 3.0);
  router.Flush();

  clock_.AdvanceMs(5);
  a->TickOnce();
  b->TickOnce();
  EXPECT_DOUBLE_EQ(a->LatestValue(a->FindSignal("r0")).value_or(-1), 3.0);
  EXPECT_DOUBLE_EQ(a->LatestValue(a->FindSignal("r1")).value_or(-1), 2.0);
  // The late joiner shares the batch's block; its r0 resolves through the
  // re-synced table, and nothing lands on a wrong signal.
  EXPECT_DOUBLE_EQ(b->LatestValue(b->FindSignal("r0")).value_or(-1), 3.0);
  EXPECT_EQ(a->counters().buffered_unmatched, 0);
  EXPECT_EQ(b->counters().buffered_unmatched, 0);
}

TEST_F(IngestRouterTest, LateShimServedSamplesAreNotDoubleCounted) {
  // Regression: a late sample delivered to a scope through the name shim
  // must not ALSO be counted late when that scope's span is dropped whole.
  IngestRouter router({.auto_create_signals = false});
  Scope* knows = MakeScope("knows");
  Scope* other = MakeScope("other");
  SignalId known = knows->AddSignal({.name = "sig", .source = BufferSource{}});
  ASSERT_NE(known, 0);
  ASSERT_TRUE(router.AddScope(knows));
  ASSERT_TRUE(router.AddScope(other));
  clock_.AdvanceMs(1000);
  knows->TickOnce();
  other->TickOnce();

  router.Append("sig", 0, 1.0);  // late everywhere (delay 0, scope time ~1s)
  // One drop through the shim (other) + one through the span (knows) = 2;
  // the pre-fix accounting reported 3 for the single tuple.
  EXPECT_EQ(router.Flush().dropped_late, 2);
}

TEST_F(IngestRouterTest, SpanQueueOverflowEvictsOldestSpans) {
  IngestRouter router;
  Scope* a = MakeScope("a", /*buffer_capacity=*/64);
  a->SetDelayMs(1 << 20);  // keep spans queued (far-future display)
  ASSERT_TRUE(router.AddScope(a));
  for (int batch = 0; batch < 8; ++batch) {
    for (int i = 0; i < 32; ++i) {
      router.Append("sig", batch * 32 + i, 1.0);
    }
    router.Flush();
  }
  EXPECT_LE(a->pending_ingest_samples(), 64u);
  EXPECT_EQ(a->ingest_span_stats().dropped_overflow, 8 * 32 - 64);
}

TEST_F(IngestRouterTest, EmptyFlushIsANoOpAndBatchesAreIndependent) {
  IngestRouter router;
  Scope* a = MakeScope("a");
  ASSERT_TRUE(router.AddScope(a));
  EXPECT_EQ(router.Flush().dropped_late, 0);  // nothing appended
  for (int round = 0; round < 10; ++round) {
    router.Append("sig", a->NowMs(), static_cast<double>(round));
    router.Flush();
    EXPECT_EQ(router.pending_batch_samples(), 0u);
    clock_.AdvanceMs(5);
    a->TickOnce();  // drains the span, releasing the block back to the pool
  }
  EXPECT_EQ(a->counters().buffered_routed, 10);
  EXPECT_DOUBLE_EQ(a->LatestValue(a->FindSignal("sig")).value_or(-1), 9.0);
}

// ---- sharded fan-out under worker threads (the TSan target) ----------------

TEST_F(IngestRouterTest, ShardedFanoutWithWorkersDeliversEverySample) {
  IngestRouter router({.fanout_shards = 4, .worker_threads = 3});
  ASSERT_EQ(router.fanout_worker_count(), 3u);
  constexpr int kScopes = 8;
  constexpr int kBatches = 50;
  constexpr int kPerBatch = 64;
  std::vector<Scope*> targets;
  for (int i = 0; i < kScopes; ++i) {
    Scope* s = MakeScope("s" + std::to_string(i));
    targets.push_back(s);
    ASSERT_TRUE(router.AddScope(s));
  }
  // A concurrent producer thread exercises the thread-safe direct push path
  // against the same scopes while the fan-out workers hand off spans.
  std::atomic<bool> stop{false};
  Scope* contended = targets[0];
  SignalId direct = contended->AddSignal({.name = "direct", .source = BufferSource{}});
  std::thread producer([&]() {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      contended->PushBuffered(direct, contended->NowMs() + 1, static_cast<double>(++i));
    }
  });

  for (int batch = 0; batch < kBatches; ++batch) {
    int64_t now = targets[0]->NowMs();
    for (int i = 0; i < kPerBatch; ++i) {
      router.Append("sig", now + 1, static_cast<double>(i));
    }
    EXPECT_EQ(router.Flush().dropped_late, 0);
    clock_.AdvanceMs(5);
    for (Scope* s : targets) {
      s->TickOnce();
    }
  }
  stop.store(true);
  producer.join();
  clock_.AdvanceMs(5);
  for (Scope* s : targets) {
    s->TickOnce();
  }
  for (Scope* s : targets) {
    EXPECT_GE(s->counters().buffered_routed, kBatches * kPerBatch)
        << "scope " << s->name() << " missed fan-out samples";
  }
}

TEST_F(IngestRouterTest, TopologyChangesUnderShardedLoad) {
  IngestRouter router({.fanout_shards = 4, .worker_threads = 2});
  std::vector<Scope*> targets;
  for (int i = 0; i < 6; ++i) {
    targets.push_back(MakeScope("t" + std::to_string(i)));
  }
  for (int round = 0; round < 30; ++round) {
    // Rotate membership: scope (round % 6) leaves, rejoins next round.
    Scope* rotating = targets[static_cast<size_t>(round % 6)];
    for (Scope* s : targets) {
      if (s != rotating) {
        router.AddScope(s);
      }
    }
    router.RemoveScope(rotating);
    int64_t now = targets[0]->NowMs();
    for (int i = 0; i < 32; ++i) {
      router.Append("a", now + 1, 1.0);
      router.Append("b", now + 1, 2.0);
    }
    router.Flush();
    clock_.AdvanceMs(5);
    for (Scope* s : targets) {
      s->TickOnce();
    }
  }
  // Every scope participated in most rounds; all must have routed samples
  // and agree on the final values.
  for (Scope* s : targets) {
    EXPECT_GT(s->counters().buffered_routed, 0);
    EXPECT_DOUBLE_EQ(s->LatestValue(s->FindSignal("a")).value_or(-1), 1.0);
    EXPECT_DOUBLE_EQ(s->LatestValue(s->FindSignal("b")).value_or(-1), 2.0);
  }
}

// ---- FanoutPool ------------------------------------------------------------

TEST(FanoutPoolTest, InlineWhenNoWorkers) {
  FanoutPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> hits(16, 0);
  pool.Run(16, [&](size_t i) { hits[i] += 1; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(FanoutPoolTest, RunsEveryTaskExactlyOnceAcrossGenerations) {
  FanoutPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::atomic<int>> hits(33);
    pool.Run(hits.size(), [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
    for (auto& h : hits) {
      ASSERT_EQ(h.load(), 1);
    }
  }
}

TEST(FanoutPoolTest, TasksRunConcurrentlyWithCaller) {
  FanoutPool pool(2);
  std::set<std::thread::id> seen;
  std::mutex mu;
  // Tasks sleep so the claiming thread yields the (possibly single) CPU and
  // the workers get a chance to grab a share.
  for (int round = 0; round < 50 && seen.size() < 2; ++round) {
    pool.Run(8, [&](size_t) {
      {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  }
  EXPECT_GE(seen.size(), 2u);
}

}  // namespace
}  // namespace gscope
