// Deterministic multi-producer stress rig for the backpressure pipeline.
//
// Drives N producers (threads with StreamClient, or forked processes
// through the C bindings) against a StreamServer whose reader is throttled
// by a scripted schedule: drain for a while, pause (stop iterating the
// server loop entirely, so kernel buffers fill and backpressure reaches the
// producers' bounded backlogs), or restart (close the listener and every
// connection, then re-listen on the same port - producers must notice and
// reconnect).  Producer payloads are per-producer sequence numbers and
// tuple timestamps come from a shared SimClock advanced in lockstep with
// the schedule, so a run's data is reproducible from (seed, schedule,
// policy) alone; thread interleavings may vary, but every invariant below
// is interleaving-independent:
//
//   * zero torn frames: the server never counts a parse error, no matter
//     where overload forced a drop decision,
//   * exact accounting: attempted == sent + dropped per producer, and
//     (without restarts) each producer's delivered tuple count equals
//     sent - evicted - abandoned, byte-for-byte on the wire,
//   * order: each producer's delivered sequence is strictly increasing
//     (drops never reorder or duplicate),
//   * drop-oldest keeps the newest: the last value delivered is the last
//     value the producer committed,
//   * block honors its deadline: total block time is bounded by
//     attempts x deadline.
//
// The rig asserts nothing itself; it returns a Result whose Check* helpers
// give the tests (and the soak loop in scripts/check.sh) one shared
// implementation of the invariants.
#ifndef GSCOPE_TESTS_STRESS_HARNESS_H_
#define GSCOPE_TESTS_STRESS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/fault_injector.h"
#include "runtime/framed_writer.h"

namespace gscope {
namespace stress {

struct ScheduleStep {
  enum class Kind {
    kDrain,    // iterate the server loop for `ms` (normal reading)
    kPause,    // real sleep without iterating: the server stops reading
    kRestart,  // close listener + all connections, sleep `ms`, re-listen
  };
  Kind kind = Kind::kDrain;
  int ms = 10;
};

struct Options {
  int producers = 4;
  int tuples_per_producer = 3000;
  int burst = 128;  // max sends per producer loop turn (PRNG-jittered)
  // Extra bytes appended to each signal name ("p<k>_xxx..."): fattens frames
  // so a paused server overflows the bounded backlogs within a few thousand
  // tuples instead of a few hundred thousand.
  int payload_pad = 0;
  OverflowPolicy policy = OverflowPolicy::kDropNewest;
  size_t client_buffer = 8 << 10;
  int64_t block_deadline_ms = 2;
  // Tiny kernel buffers so a paused server exerts backpressure within a few
  // hundred tuples instead of a few hundred kilobytes.
  int sndbuf_bytes = 4096;
  int server_rcvbuf_bytes = 4096;
  // Cycled until every producer finished; must contain a kDrain step.
  std::vector<ScheduleStep> schedule = {{ScheduleStep::Kind::kDrain, 10}};
  uint32_t seed = 1;
  // Fork producer processes driving the C bindings (gscope_connect /
  // gscope_set_queue_policy / gscope_send / gscope_client_stats) instead of
  // in-process StreamClient threads.  Restart steps are not supported here:
  // children inherit the listener fd, which would confound the re-listen.
  bool use_processes = false;
  int settle_ms = 5000;  // cap on the final drain
  // Scripted syscall faults installed process-wide for the run's duration
  // (short reads, partial writes, errno storms, mid-frame kills - see
  // net/fault_injector.h).  They hit every socket in the rig, server side
  // included; the invariants must hold regardless.
  std::vector<FaultRule> faults;
  uint32_t fault_seed = 1;
  // Producers use StreamClient's reconnect state machine (capped backoff +
  // session-independent resume) instead of the harness's manual
  // connect-retry loop; production pauses while the link is down.
  bool auto_reconnect = false;
  // Flapping subscribers: ControlClients on their own loop threads that
  // SUB "p*" with reconnect + session resumption enabled, so every server
  // restart exercises the full self-healing loop (backoff -> reconnect ->
  // replay).  Requires !use_processes (threads must not mix with fork).
  int viewers = 0;
  int64_t viewer_ping_interval_ms = 0;  // 0 = no liveness probing
  int64_t viewer_idle_timeout_ms = 0;
  // Wire format for the in-process producers: text lines, binary frames
  // (HELLO BIN 1 negotiated on every establishment, docs/protocol.md "Wire
  // format v2"), or a mixed fleet where odd producer indices go binary -
  // both formats interleave on one server and every invariant must hold
  // regardless.  Thread producers only; process mode stays text.
  enum class Wire { kText, kBinary, kMixed };
  Wire wire = Wire::kText;
  // Per-producer clock skew: producer k stamps tuples with
  // sim_now + k * producer_skew_ms.  Received timestamps (Result::
  // received_times) must reconstruct each producer's absolute stamps
  // exactly, proving the binary frames' delta-encoded timestamps compose
  // with arbitrarily disagreeing producer clocks.
  int64_t producer_skew_ms = 0;
  // Server accept sharding (StreamServerOptions::loops): > 1 runs the whole
  // fault x policy matrix against the per-core loop pool - every invariant
  // must hold with connections spread across loops.  Thread producers only
  // (the pool's worker threads must not mix with fork).
  size_t server_loops = 1;
};

struct ProducerReport {
  int64_t attempted = 0;
  int64_t sent = 0;       // committed to an established connection's backlog
  int64_t dropped = 0;    // rejected at send time (overflow / disconnected)
  int64_t evicted = 0;    // committed, later evicted whole (drop-oldest)
  int64_t abandoned = 0;  // committed, unsent when the connection died
  int64_t bytes_sent = 0;
  int64_t bytes_dropped = 0;
  int64_t block_time_ns = 0;
  int64_t high_water = 0;
  int64_t last_sent_value = -1;  // last sequence number that was committed
  int reconnects = 0;
  bool connected_ok = false;  // producer established at least once
  bool wire_binary = false;   // producer ran with Options::Wire binary
};

struct ViewerReport {
  int64_t tuples_received = 0;
  int64_t reconnects = 0;        // re-establishments after the first
  // SUB replays on establishment.  The viewer subscribes before connecting,
  // so the single pattern is replayed on EVERY establishment:
  // resumed_commands == reconnects + 1 when the viewer ever connected.
  int64_t resumed_commands = 0;
  int64_t notices = 0;           // server degradation NOTICEs observed
  int64_t liveness_timeouts = 0;
  int64_t pings_sent = 0;
  int64_t pongs_received = 0;
  bool connected_ok = false;
};

struct Result {
  bool ran = false;  // the rig itself completed (server up, producers ran)
  std::string setup_error;
  std::vector<ProducerReport> producers;
  std::vector<ViewerReport> viewers;
  // Per producer, the values the server actually parsed, in arrival order.
  std::vector<std::vector<int64_t>> received;
  // Parallel to `received`: the timestamps (ms) the server parsed for each
  // value, for the clock-skew reconstruction checks.
  std::vector<std::vector<int64_t>> received_times;
  int64_t server_tuples = 0;
  int64_t server_parse_errors = 0;
  int64_t server_bytes = 0;
  // Binary-wire counters (zeros for all-text fleets): frames decoded, and
  // loss-of-sync events.  The matrix invariant is crc_errors <= kills - only
  // a mid-frame teardown may tear a frame, never a drop decision.
  int64_t server_frames_rx = 0;
  int64_t server_frames_crc_errors = 0;
  int restarts = 0;
  // What the fault schedule actually did (zeros when Options::faults empty).
  FaultInjector::Stats fault_stats;

  int64_t TotalAttempted() const;
  int64_t TotalDelivered() const;

  // Each returns an empty string when the invariant holds, else a
  // description of the violation.
  std::string CheckNoTornFrames() const;
  // attempted == sent + dropped, always.
  std::string CheckSendAccounting() const;
  // Per-producer delivered == sent - evicted - abandoned, and total bytes
  // delivered == total bytes the clients wrote.  Valid only for schedules
  // without restarts (a torn-down connection loses kernel-buffered bytes).
  std::string CheckDeliveryExact() const;
  // Delivered sequences strictly increasing per producer.
  std::string CheckSequencesMonotone() const;
  // Drop-oldest, no restarts: the newest committed value survived.  Binary
  // producers that dropped anything are skipped: they commit whole frames,
  // so the newest staged value may have ridden a dropped frame.
  std::string CheckNewestPreserved() const;
  // block_time <= attempts x deadline (with slop for clock granularity).
  std::string CheckBlockDeadline(int64_t deadline_ms) const;
  // Convenience: the checks valid for every policy and schedule.
  std::string CheckCommon() const;
};

Result RunStress(const Options& options);

}  // namespace stress
}  // namespace gscope

#endif  // GSCOPE_TESTS_STRESS_HARNESS_H_
