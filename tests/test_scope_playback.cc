#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/scope.h"
#include "runtime/clock.h"

namespace gscope {
namespace {

class ScopePlaybackTest : public ::testing::Test {
 protected:
  ScopePlaybackTest() : loop_(&clock_) {
    path_ = ::testing::TempDir() + "playback_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".dat";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  SimClock clock_;
  MainLoop loop_;
  std::string path_;
};

TEST_F(ScopePlaybackTest, ReplaysRecordedFile) {
  {
    std::ofstream out(path_);
    out << "0 1.0 sig\n50 2.0 sig\n100 3.0 sig\n150 4.0 sig\n";
  }
  Scope scope(&loop_, {.name = "pb", .width = 32});
  ASSERT_TRUE(scope.SetPlaybackMode(path_, 50));
  EXPECT_EQ(scope.mode(), AcquisitionMode::kPlayback);
  ASSERT_TRUE(scope.StartPolling());
  loop_.RunForMs(1000);
  EXPECT_TRUE(scope.counters().playback_done);
  SignalId id = scope.FindSignal("sig");
  ASSERT_NE(id, 0);  // auto-created from the file
  EXPECT_DOUBLE_EQ(scope.LatestValue(id).value_or(-1), 4.0);
  const Trace* trace = scope.TraceFor(id);
  EXPECT_GE(trace->size(), 3u);
}

TEST_F(ScopePlaybackTest, RoutesToPredeclaredSignals) {
  {
    std::ofstream out(path_);
    out << "0 10 a\n0 20 b\n50 11 a\n50 21 b\n";
  }
  Scope scope(&loop_, {.name = "pb", .width = 32, .auto_create_playback_signals = false});
  SignalId a = scope.AddSignal({.name = "a", .source = BufferSource{}});
  SignalId b = scope.AddSignal({.name = "b", .source = BufferSource{}});
  scope.SetPlaybackMode(path_, 50);
  scope.StartPolling();
  loop_.RunForMs(500);
  EXPECT_DOUBLE_EQ(scope.LatestValue(a).value_or(-1), 11.0);
  EXPECT_DOUBLE_EQ(scope.LatestValue(b).value_or(-1), 21.0);
  EXPECT_EQ(scope.signal_count(), 2u);
}

TEST_F(ScopePlaybackTest, UnnamedTuplesGoToFirstSignal) {
  // Section 3.3 single-signal form.
  {
    std::ofstream out(path_);
    out << "0 5\n50 6\n";
  }
  Scope scope(&loop_, {.name = "pb", .width = 32, .auto_create_playback_signals = false});
  SignalId only = scope.AddSignal({.name = "only", .source = BufferSource{}});
  scope.SetPlaybackMode(path_, 50);
  scope.StartPolling();
  loop_.RunForMs(500);
  EXPECT_DOUBLE_EQ(scope.LatestValue(only).value_or(-1), 6.0);
}

TEST_F(ScopePlaybackTest, UnmatchedTuplesCounted) {
  {
    std::ofstream out(path_);
    out << "0 5 ghost\n";
  }
  Scope scope(&loop_, {.name = "pb", .width = 32, .auto_create_playback_signals = false});
  scope.SetPlaybackMode(path_, 50);
  scope.StartPolling();
  loop_.RunForMs(500);
  EXPECT_GE(scope.counters().buffered_unmatched, 1);
}

TEST_F(ScopePlaybackTest, DisplaySpacingFollowsPollingPeriod) {
  // Section 3.3: "if the polling period is 50 ms, then data points in the
  // file that are 100 ms apart will be displayed 2 pixels apart."  With one
  // column per tick, 100 ms of file time at a 50 ms period is 2 columns.
  {
    std::ofstream out(path_);
    out << "0 10 s\n100 20 s\n200 30 s\n";
  }
  Scope scope(&loop_, {.name = "pb", .width = 32});
  scope.SetPlaybackMode(path_, 50);
  scope.StartPolling();
  loop_.RunForMs(1000);
  SignalId id = scope.FindSignal("s");
  const Trace* trace = scope.TraceFor(id);
  ASSERT_GE(trace->size(), 4u);
  // Columns (oldest->newest): 10 at t=0? ... value changes every 2 columns.
  auto values = trace->Values();
  int transitions = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] != values[i - 1]) {
      ++transitions;
    }
  }
  EXPECT_EQ(transitions, 2);
  // Between transitions the value is held for 2 columns.
  EXPECT_DOUBLE_EQ(values.front(), 10.0);
  EXPECT_DOUBLE_EQ(values.back(), 30.0);
}

TEST_F(ScopePlaybackTest, PlaybackStopsAtEof) {
  {
    std::ofstream out(path_);
    out << "0 1 s\n50 2 s\n";
  }
  Scope scope(&loop_, {.name = "pb", .width = 32});
  scope.SetPlaybackMode(path_, 50);
  scope.StartPolling();
  loop_.RunForMs(2000);
  EXPECT_TRUE(scope.counters().playback_done);
  EXPECT_FALSE(scope.IsRunning());
}

TEST_F(ScopePlaybackTest, RecordThenReplayRoundTrip) {
  // Record a live polling session, then replay it into a second scope and
  // compare the final values (the paper's record/replay cycle).
  int32_t value = 0;
  {
    Scope recorder(&loop_, {.name = "rec", .width = 64});
    SignalId id = recorder.AddSignal({.name = "v", .source = &value});
    recorder.SetPollingMode(10);
    ASSERT_TRUE(recorder.StartRecording(path_));
    recorder.StartPolling();
    for (int i = 0; i < 10; ++i) {
      value = i * i;
      loop_.RunForMs(10);
    }
    recorder.StopRecording();
    EXPECT_TRUE(recorder.IsRecording() == false);
    EXPECT_DOUBLE_EQ(recorder.LatestValue(id).value_or(-1), 81.0);
  }

  // A single-signal recording uses the two-field tuple form, so the replay
  // scope routes it to its (pre-declared or default) first signal.
  Scope replayer(&loop_, {.name = "replay", .width = 64});
  SignalId id = replayer.AddSignal({.name = "v", .source = BufferSource{}});
  ASSERT_TRUE(replayer.SetPlaybackMode(path_, 10));
  replayer.StartPolling();
  loop_.RunForMs(5000);
  EXPECT_DOUBLE_EQ(replayer.LatestValue(id).value_or(-1), 81.0);
}

TEST_F(ScopePlaybackTest, SingleSignalRecordingUsesTwoFieldForm) {
  int32_t value = 7;
  Scope scope(&loop_, {.name = "rec", .width = 32});
  scope.AddSignal({.name = "v", .source = &value});
  scope.SetPollingMode(10);
  ASSERT_TRUE(scope.StartRecording(path_));
  scope.StartPolling();
  loop_.RunForMs(30);
  scope.StopRecording();

  std::ifstream in(path_);
  std::string line;
  bool found_data = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    found_data = true;
    // Two tokens only: time and value.
    EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 1) << line;
  }
  EXPECT_TRUE(found_data);
}

}  // namespace
}  // namespace gscope
