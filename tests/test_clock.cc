#include "runtime/clock.h"

#include <gtest/gtest.h>

namespace gscope {
namespace {

TEST(SteadyClockTest, Monotonic) {
  SteadyClock clock;
  Nanos a = clock.NowNs();
  Nanos b = clock.NowNs();
  EXPECT_GE(b, a);
}

TEST(SteadyClockTest, InstanceIsSingleton) {
  EXPECT_EQ(SteadyClock::Instance(), SteadyClock::Instance());
}

TEST(SimClockTest, StartsAtGivenTime) {
  SimClock clock(1234);
  EXPECT_EQ(clock.NowNs(), 1234);
}

TEST(SimClockTest, AdvanceMovesForward) {
  SimClock clock;
  clock.AdvanceNs(500);
  EXPECT_EQ(clock.NowNs(), 500);
  clock.AdvanceMs(2);
  EXPECT_EQ(clock.NowNs(), 500 + 2 * kNanosPerMilli);
}

TEST(SimClockTest, NegativeAdvanceIgnored) {
  SimClock clock(100);
  clock.AdvanceNs(-50);
  EXPECT_EQ(clock.NowNs(), 100);
}

TEST(SimClockTest, SetNsOnlyMovesForward) {
  SimClock clock(1000);
  clock.SetNs(500);
  EXPECT_EQ(clock.NowNs(), 1000);
  clock.SetNs(2000);
  EXPECT_EQ(clock.NowNs(), 2000);
}

TEST(ClockConversionTest, MillisToNanosRoundTrip) {
  EXPECT_EQ(MillisToNanos(50), 50 * kNanosPerMilli);
  EXPECT_DOUBLE_EQ(NanosToMillis(MillisToNanos(50)), 50.0);
  EXPECT_DOUBLE_EQ(NanosToSeconds(kNanosPerSecond), 1.0);
}

TEST(SimClockTest, NowMsReflectsNanos) {
  SimClock clock;
  clock.AdvanceMs(1500);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 1500.0);
}

}  // namespace
}  // namespace gscope
