#include "core/params.h"

#include <gtest/gtest.h>

namespace gscope {
namespace {

TEST(ParamsTest, AddAndGet) {
  ParamRegistry registry;
  int32_t elephants = 8;
  EXPECT_TRUE(registry.Add({.name = "elephants", .storage = &elephants}));
  auto v = registry.Get("elephants");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 8.0);
}

TEST(ParamsTest, SetWritesApplicationStorage) {
  // Section 3.2: "while signals can only be read, application parameters can
  // be read and written also."
  ParamRegistry registry;
  int32_t elephants = 8;
  registry.Add({.name = "elephants", .storage = &elephants});
  EXPECT_TRUE(registry.Set("elephants", 16.0));
  EXPECT_EQ(elephants, 16);
}

TEST(ParamsTest, DuplicateNameRejected) {
  ParamRegistry registry;
  int32_t a = 0;
  int32_t b = 0;
  EXPECT_TRUE(registry.Add({.name = "x", .storage = &a}));
  EXPECT_FALSE(registry.Add({.name = "x", .storage = &b}));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ParamsTest, EmptyNameRejected) {
  ParamRegistry registry;
  int32_t a = 0;
  EXPECT_FALSE(registry.Add({.name = "", .storage = &a}));
}

TEST(ParamsTest, UnknownNameFails) {
  ParamRegistry registry;
  EXPECT_FALSE(registry.Get("nope").has_value());
  EXPECT_FALSE(registry.Set("nope", 1.0));
  EXPECT_FALSE(registry.Remove("nope"));
}

TEST(ParamsTest, ClampToRange) {
  ParamRegistry registry;
  double rate = 1.0;
  registry.Add({.name = "rate", .storage = &rate, .min = 0.0, .max = 10.0});
  registry.Set("rate", 99.0);
  EXPECT_DOUBLE_EQ(rate, 10.0);
  registry.Set("rate", -5.0);
  EXPECT_DOUBLE_EQ(rate, 0.0);
}

TEST(ParamsTest, NoClampWhenRangeUnset) {
  ParamRegistry registry;
  double v = 0.0;
  registry.Add({.name = "v", .storage = &v});
  registry.Set("v", 1e9);
  EXPECT_DOUBLE_EQ(v, 1e9);
  EXPECT_FALSE(registry.RangeOf("v").has_value());
}

TEST(ParamsTest, IntegerStorageRounds) {
  ParamRegistry registry;
  int32_t n = 0;
  registry.Add({.name = "n", .storage = &n});
  registry.Set("n", 3.7);
  EXPECT_EQ(n, 4);
  registry.Set("n", -2.5);
  EXPECT_EQ(n, -3);  // llround away from zero
}

TEST(ParamsTest, BoolStorage) {
  ParamRegistry registry;
  bool flag = false;
  registry.Add({.name = "flag", .storage = &flag});
  registry.Set("flag", 1.0);
  EXPECT_TRUE(flag);
  registry.Set("flag", 0.0);
  EXPECT_FALSE(flag);
  flag = true;
  EXPECT_DOUBLE_EQ(*registry.Get("flag"), 1.0);
}

TEST(ParamsTest, FloatStorage) {
  ParamRegistry registry;
  float f = 0.0f;
  registry.Add({.name = "f", .storage = &f});
  registry.Set("f", 2.5);
  EXPECT_FLOAT_EQ(f, 2.5f);
}

TEST(ParamsTest, OnChangeCallbackFires) {
  ParamRegistry registry;
  double v = 0.0;
  double observed = -1.0;
  registry.Add({.name = "v",
                .storage = &v,
                .min = 0.0,
                .max = 5.0,
                .on_change = [&observed](double nv) { observed = nv; }});
  registry.Set("v", 100.0);
  EXPECT_DOUBLE_EQ(observed, 5.0);  // callback sees the clamped value
}

TEST(ParamsTest, ExternalWritesVisibleThroughGet) {
  // The application owns the storage; gscope reads it live.
  ParamRegistry registry;
  int32_t n = 1;
  registry.Add({.name = "n", .storage = &n});
  n = 77;
  EXPECT_DOUBLE_EQ(*registry.Get("n"), 77.0);
}

TEST(ParamsTest, NamesInRegistrationOrder) {
  ParamRegistry registry;
  int32_t a = 0;
  double b = 0;
  bool c = false;
  registry.Add({.name = "zeta", .storage = &a});
  registry.Add({.name = "alpha", .storage = &b});
  registry.Add({.name = "mid", .storage = &c});
  auto names = registry.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "zeta");
  EXPECT_EQ(names[1], "alpha");
  EXPECT_EQ(names[2], "mid");
}

TEST(ParamsTest, RemoveWorks) {
  ParamRegistry registry;
  int32_t a = 0;
  registry.Add({.name = "a", .storage = &a});
  EXPECT_TRUE(registry.Contains("a"));
  EXPECT_TRUE(registry.Remove("a"));
  EXPECT_FALSE(registry.Contains("a"));
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ParamsTest, RangeOfReportsBounds) {
  ParamRegistry registry;
  double v = 0;
  registry.Add({.name = "v", .storage = &v, .min = -1.0, .max = 1.0});
  auto range = registry.RangeOf("v");
  ASSERT_TRUE(range.has_value());
  EXPECT_DOUBLE_EQ(range->first, -1.0);
  EXPECT_DOUBLE_EQ(range->second, 1.0);
}

}  // namespace
}  // namespace gscope
