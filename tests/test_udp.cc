#include "netsim/udp.h"

#include <gtest/gtest.h>

#include "netsim/mxtraf.h"

namespace gscope {
namespace {

TEST(UdpTest, PacesAtConfiguredRate) {
  Simulator sim;
  int64_t delivered = 0;
  UdpSource source(&sim, 1, {.rate_bps = 800'000.0, .payload = 1000},
                   [&delivered](Packet) { ++delivered; });
  source.Start();
  sim.RunForMs(1000);
  // 800 kbit/s at 8000 bits per datagram = 100 datagrams/s.
  EXPECT_NEAR(static_cast<double>(delivered), 100.0, 2.0);
  EXPECT_EQ(source.stats().datagrams_sent, delivered);
  EXPECT_EQ(source.stats().bytes_sent, delivered * 1000);
}

TEST(UdpTest, StopHaltsTraffic) {
  Simulator sim;
  int64_t delivered = 0;
  UdpSource source(&sim, 1, {}, [&delivered](Packet) { ++delivered; });
  source.Start();
  sim.RunForMs(100);
  int64_t before = delivered;
  EXPECT_GT(before, 0);
  source.Stop();
  sim.RunForMs(500);
  EXPECT_EQ(delivered, before);
}

TEST(UdpTest, SetRateRepaces) {
  Simulator sim;
  int64_t delivered = 0;
  UdpSource source(&sim, 1, {.rate_bps = 80'000.0, .payload = 1000},
                   [&delivered](Packet) { ++delivered; });
  source.Start();
  sim.RunForMs(1000);  // ~10 datagrams
  int64_t slow = delivered;
  source.SetRate(800'000.0);
  sim.RunForMs(1000);  // ~100 more
  int64_t fast = delivered - slow;
  EXPECT_GT(fast, slow * 5);
}

TEST(UdpTest, PacketsCarryUdpHeader) {
  Simulator sim;
  Packet seen;
  UdpSource source(&sim, 7, {}, [&seen](Packet p) { seen = p; });
  source.Start();
  sim.RunForMs(100);
  EXPECT_EQ(seen.flow_id, 7);
  EXPECT_EQ(seen.header, 28);
  EXPECT_FALSE(seen.is_ack);
}

TEST(UdpTest, MxtrafUdpMixSqueezesTcp) {
  // The mxtraf pitch: "saturate a network with a tunable mix of TCP and UDP
  // traffic."  Unresponsive UDP load must reduce TCP goodput.
  auto run = [](double udp_bps) {
    Simulator sim;
    Mxtraf traf(&sim, MxtrafConfig{});
    traf.SetElephants(2);
    if (udp_bps > 0) {
      traf.SetUdpRate(udp_bps);
    }
    sim.RunForMs(10'000);
    return traf.TotalBytesAcked();
  };
  int64_t without_udp = run(0);
  int64_t with_udp = run(1'500'000.0);  // 75% of the 2 Mbit/s bottleneck
  EXPECT_LT(with_udp, without_udp * 3 / 4);
}

TEST(UdpTest, MxtrafUdpDeliveredCounted) {
  Simulator sim;
  Mxtraf traf(&sim, MxtrafConfig{});
  traf.SetUdpRate(400'000.0);
  sim.RunForMs(1000);
  EXPECT_GT(traf.udp_delivered(), 0);
  ASSERT_NE(traf.udp_stats(), nullptr);
  EXPECT_GE(traf.udp_stats()->datagrams_sent, traf.udp_delivered());
  EXPECT_DOUBLE_EQ(traf.udp_rate_bps(), 400'000.0);
}

TEST(UdpTest, MxtrafUdpRateZeroStops) {
  Simulator sim;
  Mxtraf traf(&sim, MxtrafConfig{});
  traf.SetUdpRate(400'000.0);
  sim.RunForMs(500);
  int64_t before = traf.udp_delivered();
  traf.SetUdpRate(0.0);
  sim.RunForMs(1000);
  // In-flight datagrams may still land; no new ones are sent.
  EXPECT_LE(traf.udp_delivered() - before, 3);
  // And it restarts.
  traf.SetUdpRate(400'000.0);
  sim.RunForMs(500);
  EXPECT_GT(traf.udp_delivered(), before + 10);
}

}  // namespace
}  // namespace gscope
