#include "load/load_meter.h"

#include <gtest/gtest.h>

namespace gscope {
namespace {

TEST(LoadMeterTest, SpinForCountsIterations) {
  LoadResult result = SpinFor(MillisToNanos(20));
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.seconds, 0.015);
  EXPECT_GT(result.IterationsPerSecond(), 0.0);
}

TEST(LoadMeterTest, BackgroundSpinnerStartStop) {
  BackgroundSpinner spinner;
  EXPECT_FALSE(spinner.running());
  spinner.Start();
  EXPECT_TRUE(spinner.running());
  // Let it spin a little.
  LoadResult empty = SpinFor(MillisToNanos(10));
  (void)empty;
  LoadResult result = spinner.Stop();
  EXPECT_FALSE(spinner.running());
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(LoadMeterTest, StopWithoutStartIsEmpty) {
  BackgroundSpinner spinner;
  LoadResult result = spinner.Stop();
  EXPECT_EQ(result.iterations, 0);
}

TEST(LoadMeterTest, RestartableSpinner) {
  BackgroundSpinner spinner;
  spinner.Start();
  SpinFor(MillisToNanos(5));
  LoadResult first = spinner.Stop();
  spinner.Start();
  SpinFor(MillisToNanos(5));
  LoadResult second = spinner.Stop();
  EXPECT_GT(first.iterations, 0);
  EXPECT_GT(second.iterations, 0);
}

TEST(LoadMeterTest, OverheadRatioBasics) {
  LoadResult baseline{.iterations = 1000, .seconds = 1.0};
  LoadResult loaded{.iterations = 980, .seconds = 1.0};
  EXPECT_NEAR(OverheadRatio(baseline, loaded), 0.02, 1e-9);
}

TEST(LoadMeterTest, OverheadRatioClampsNoise) {
  LoadResult baseline{.iterations = 1000, .seconds = 1.0};
  LoadResult faster{.iterations = 1010, .seconds = 1.0};
  EXPECT_DOUBLE_EQ(OverheadRatio(baseline, faster), 0.0);
}

TEST(LoadMeterTest, OverheadRatioZeroBaseline) {
  LoadResult baseline{};
  LoadResult loaded{.iterations = 10, .seconds = 1.0};
  EXPECT_DOUBLE_EQ(OverheadRatio(baseline, loaded), 0.0);
}

TEST(LoadMeterTest, RatesNormalizeDuration) {
  LoadResult a{.iterations = 1000, .seconds = 1.0};
  LoadResult b{.iterations = 2000, .seconds = 2.0};
  EXPECT_DOUBLE_EQ(OverheadRatio(a, b), 0.0);  // same rate, no overhead
}

}  // namespace
}  // namespace gscope
