// Multi-tenant hardening tests (docs/protocol.md "Multi-tenant"): AUTH
// moves a connection into a tenant namespace, subscriptions are scoped so
// "SUB *" never crosses a namespace boundary in either direction, a failed
// AUTH leaves the session usable as anonymous, quota violations draw
// deterministic ERR replies, and the remembered AUTH is replayed ahead of
// the SUB replay across a reconnect.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "core/scope.h"
#include "net/control_client.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace {

class TenantIsolationTest : public ::testing::Test {
 protected:
  TenantIsolationTest() : scope_(&loop_, {.name = "display", .width = 64}) {
    scope_.SetPollingMode(5);
  }

  bool RunUntil(const std::function<bool()>& pred, int max_ms = 2000) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop_.RunForMs(1);
    }
    return pred();
  }

  struct Sink {
    std::vector<std::pair<std::string, double>> tuples;
    std::vector<std::string> replies;
    void Wire(ControlClient& client) {
      client.SetTupleCallback([this](const TupleView& t) {
        tuples.emplace_back(std::string(t.name), t.value);
      });
      client.SetReplyCallback([this](std::string_view line) {
        replies.emplace_back(line);
      });
    }
    bool SawName(const std::string& n) const {
      for (const auto& [name, value] : tuples) {
        if (name == n) {
          return true;
        }
      }
      return false;
    }
    bool SawReply(const std::string& line) const {
      return std::find(replies.begin(), replies.end(), line) != replies.end();
    }
  };

  static StreamServerOptions TenantOptions() {
    StreamServerOptions opt;
    opt.auth_tokens = {{"tok-a", "tenantA"}, {"tok-b", "tenantB"}};
    return opt;
  }

  MainLoop loop_;  // real clock: sockets need real readiness
  Scope scope_;
};

TEST_F(TenantIsolationTest, SubStarIsScopedToTheTenantNamespace) {
  StreamServer server(&loop_, &scope_, TenantOptions());
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  // Three viewers with the widest possible subscription: tenant A, tenant B,
  // and anonymous.  Isolation must hold in every direction.
  ControlClient viewer_a(&loop_), viewer_b(&loop_), viewer_anon(&loop_);
  Sink sink_a, sink_b, sink_anon;
  sink_a.Wire(viewer_a);
  sink_b.Wire(viewer_b);
  sink_anon.Wire(viewer_anon);
  ASSERT_TRUE(viewer_a.Connect(server.port()));
  ASSERT_TRUE(viewer_b.Connect(server.port()));
  ASSERT_TRUE(viewer_anon.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() {
    return viewer_a.connected() && viewer_b.connected() && viewer_anon.connected();
  }));

  viewer_a.Auth("tok-a");
  viewer_b.Auth("tok-b");
  ASSERT_TRUE(RunUntil([&]() {
    return sink_a.SawReply("OK AUTH tenantA") && sink_b.SawReply("OK AUTH tenantB");
  }));

  viewer_a.Subscribe("*");
  viewer_b.Subscribe("*");
  viewer_anon.Subscribe("*");
  ASSERT_TRUE(RunUntil([&]() {
    return viewer_a.stats().replies_ok >= 2 && viewer_b.stats().replies_ok >= 2 &&
           viewer_anon.stats().replies_ok >= 1;
  }));

  // Producers: one AUTHed into tenant A (a ControlClient pushing tuples on
  // its authenticated connection), one anonymous StreamClient.
  ControlClient producer_a(&loop_);
  ASSERT_TRUE(producer_a.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer_a.connected(); }));
  producer_a.Auth("tok-a");
  ASSERT_TRUE(RunUntil([&]() { return producer_a.stats().replies_ok >= 1; }));

  StreamClient producer_anon(&loop_);
  ASSERT_TRUE(producer_anon.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer_anon.connected(); }));

  ASSERT_TRUE(RunUntil([&]() {
    producer_a.Send(scope_.NowMs(), 1.0, "sig_a");
    producer_anon.Send(scope_.NowMs(), 2.0, "sig_anon");
    loop_.RunForMs(2);
    return sink_a.SawName("sig_a") && sink_anon.SawName("sig_anon");
  }));

  // Tenant A sees its own signal under the BARE wire name (the echo tap
  // strips the namespace prefix) and nothing from outside the namespace.
  EXPECT_TRUE(sink_a.SawName("sig_a"));
  EXPECT_FALSE(sink_a.SawName("sig_anon"));
  // Anonymous sees only anonymous.
  EXPECT_TRUE(sink_anon.SawName("sig_anon"));
  EXPECT_FALSE(sink_anon.SawName("sig_a"));
  // Tenant B's "SUB *" sees neither stream.
  EXPECT_FALSE(sink_b.SawName("sig_a"));
  EXPECT_FALSE(sink_b.SawName("sig_anon"));
  EXPECT_EQ(sink_b.tuples.size(), 0u);
  // No delivered name leaks the internal "<ns>\x1f<name>" form.
  for (const auto& [name, value] : sink_a.tuples) {
    EXPECT_EQ(name.find('\x1f'), std::string::npos) << name;
  }
}

TEST_F(TenantIsolationTest, FailedAuthLeavesTheSessionAnonymous) {
  StreamServer server(&loop_, &scope_, TenantOptions());
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));

  // Every failure shape draws the same reply: a probe learns nothing.
  viewer.Auth("wrong-token");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_err >= 1; }));
  EXPECT_TRUE(sink.SawReply("ERR AUTH bad-token"));
  EXPECT_EQ(server.stats().auth_failures.load(), 1);

  // The connection is still usable as anonymous: subscribe and receive an
  // anonymous producer's stream.
  viewer.Subscribe("*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 1; }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 3.0, "anon_sig");
    loop_.RunForMs(2);
    return sink.SawName("anon_sig");
  }));
}

TEST_F(TenantIsolationTest, PatternQuotaRepliesDeterministically) {
  StreamServerOptions opt = TenantOptions();
  opt.quota_max_patterns = 2;
  StreamServer server(&loop_, &scope_, opt);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));

  viewer.Subscribe("one_*");
  viewer.Subscribe("two_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));

  viewer.Subscribe("three_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_err >= 1; }));
  EXPECT_TRUE(sink.SawReply("ERR SUB quota-patterns three_*"));
  EXPECT_EQ(server.stats().quota_drops.load(), 1);

  // UNSUB frees a slot: the same pattern is admitted afterwards.
  viewer.Unsubscribe("one_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 3; }));
  viewer.Subscribe("three_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 4; }));
}

TEST_F(TenantIsolationTest, ChurnQuotaRepliesDeterministically) {
  StreamServerOptions opt = TenantOptions();
  opt.quota_sub_churn = 2;
  opt.quota_churn_window_ms = 60 * 1000;  // no refill inside the test
  StreamServer server(&loop_, &scope_, opt);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));

  viewer.Subscribe("a_*");
  viewer.Unsubscribe("a_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));

  // Third SUB/UNSUB verb inside the window is refused before it touches the
  // filter; non-churn verbs stay unthrottled (protocol liveness).
  viewer.Subscribe("b_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_err >= 1; }));
  EXPECT_TRUE(sink.SawReply("ERR SUB quota-churn"));
  EXPECT_EQ(server.stats().quota_drops.load(), 1);
  EXPECT_EQ(viewer.remembered_patterns().size(), 1u);  // b_* remembered client-side only

  viewer.Ping();
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().pongs_received >= 1; }));
}

TEST_F(TenantIsolationTest, AuthReplaysBeforeSubsAcrossReconnect) {
  StreamServerOptions opt = TenantOptions();
  auto server = std::make_unique<StreamServer>(&loop_, &scope_, opt);
  ASSERT_TRUE(server->Listen(0));
  const uint16_t port = server->port();
  scope_.StartPolling();

  ControlClientOptions copt;
  copt.reconnect.enabled = true;
  copt.reconnect.initial_backoff_ms = 5;
  copt.reconnect.max_backoff_ms = 20;
  ControlClient viewer(&loop_, copt);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Auth("tok-a");
  viewer.Subscribe("*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));
  EXPECT_TRUE(viewer.has_remembered_auth());

  // Kill the server; the viewer notices and backs off.
  server.reset();
  ASSERT_TRUE(RunUntil([&]() { return !viewer.connected(); }));

  server = std::make_unique<StreamServer>(&loop_, &scope_, opt);
  ASSERT_TRUE(server->Listen(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }, 5000));
  // AUTH + SUB both replayed, AUTH first.
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().resumed_commands >= 2; }));
  ASSERT_TRUE(RunUntil([&]() { return sink.SawReply("OK AUTH tenantA"); }));

  // The replayed SUB landed inside the tenant namespace: a fresh tenant-A
  // producer's stream arrives, an anonymous one's does not.
  ControlClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  producer.Auth("tok-a");
  ASSERT_TRUE(RunUntil([&]() { return producer.stats().replies_ok >= 1; }));
  StreamClient anon(&loop_);
  ASSERT_TRUE(anon.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return anon.connected(); }));

  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 5.0, "resumed_sig");
    anon.Send(scope_.NowMs(), 6.0, "anon_sig");
    loop_.RunForMs(2);
    return sink.SawName("resumed_sig");
  }));
  EXPECT_FALSE(sink.SawName("anon_sig"));
}

TEST_F(TenantIsolationTest, EgressQuotaDropsAreCounted) {
  StreamServerOptions opt = TenantOptions();
  opt.quota_egress_bytes_per_sec = 64;  // a handful of echo frames per second
  StreamServer server(&loop_, &scope_, opt);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  ControlClient viewer(&loop_);
  Sink sink;
  sink.Wire(viewer);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  viewer.Subscribe("*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 1; }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));

  // Far more echo bytes than the bucket admits: the excess is dropped at
  // the tap (silently - egress quota never draws an ERR) and counted.
  ASSERT_TRUE(RunUntil([&]() {
    for (int i = 0; i < 50; ++i) {
      producer.Send(scope_.NowMs(), static_cast<double>(i), "flood_sig");
    }
    loop_.RunForMs(2);
    return server.stats().quota_drops.load() > 0;
  }));
  // Control replies are exempt: the protocol stays responsive under quota.
  viewer.Ping();
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().pongs_received >= 1; }));
}

}  // namespace
}  // namespace gscope
