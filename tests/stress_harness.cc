#include "stress_harness.h"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <random>
#include <thread>

#include "bindings/gscope_c.h"
#include "core/scope.h"
#include "net/control_client.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/clock.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace stress {
namespace {

Nanos RealNowNs() { return SteadyClock::Instance()->NowNs(); }

std::string ProducerName(const Options& opt, int idx) {
  std::string name = "p" + std::to_string(idx);
  if (opt.payload_pad > 0) {
    name.push_back('_');
    name.append(static_cast<size_t>(opt.payload_pad), 'x');
  }
  return name;
}

// -- in-process producers (StreamClient on its own loop thread) --------------

void ProducerThread(const Options& opt, int idx, uint16_t port, SimClock* sim,
                    ProducerReport* out, std::atomic<int>* running) {
  MainLoop loop;
  StreamClient::Options copt;
  copt.max_buffer = opt.client_buffer;
  copt.overflow_policy = opt.policy;
  copt.block_deadline_ms = opt.block_deadline_ms;
  copt.sndbuf_bytes = opt.sndbuf_bytes;
  if (opt.auto_reconnect) {
    copt.reconnect.enabled = true;
    copt.reconnect.initial_backoff_ms = 2;
    copt.reconnect.max_backoff_ms = 50;
    copt.reconnect.seed = opt.seed * 7919u + static_cast<uint32_t>(idx);
  }
  bool binary = opt.wire == Options::Wire::kBinary ||
                (opt.wire == Options::Wire::kMixed && idx % 2 == 1);
  if (binary) {
    copt.wire_format = WireFormat::kBinary;
    // Small frames: the bounded backlogs in these rigs are a few KiB, so a
    // 128-sample frame would be most of the cap and the overflow policies
    // would never see intermediate states.
    copt.frame_samples = 16;
  }
  out->wire_binary = binary;
  StreamClient client(&loop, copt);
  std::string name = ProducerName(opt, idx);
  std::mt19937 rng(opt.seed * 1000003u + static_cast<uint32_t>(idx));

  auto connect_once = [&]() -> bool {
    if (!client.Connect(port)) {
      return false;
    }
    Nanos deadline = RealNowNs() + MillisToNanos(2000);
    while (client.state() == ConnectState::kConnecting && RealNowNs() < deadline) {
      loop.RunForMs(1);
    }
    return client.connected();
  };
  // The server may be mid-restart: keep retrying with a small real backoff.
  auto connect_retry = [&]() -> bool {
    for (int attempt = 0; attempt < 400; ++attempt) {
      if (connect_once()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  // With auto_reconnect the client's own state machine owns retries: one
  // Connect() call, then drive the loop until it lands (the backoff caps at
  // 50 ms, so a mid-restart server is found quickly).
  auto wait_established = [&]() -> bool {
    Nanos deadline = RealNowNs() + MillisToNanos(2000);
    while (!client.connected() && RealNowNs() < deadline) {
      loop.RunForMs(1);
    }
    return client.connected();
  };
  bool up = opt.auto_reconnect ? (client.Connect(port), wait_established())
                               : connect_retry();

  if (up) {
    out->connected_ok = true;
    int64_t quota = opt.tuples_per_producer;
    int64_t seq = 0;
    Nanos down_since = -1;
    while (seq < quota) {
      if (!client.connected()) {
        if (opt.auto_reconnect) {
          // Production pauses while the link is down; the armed backoff
          // timer reconnects without any help from this loop.  The real-time
          // guard only trips if the server never comes back.
          if (down_since < 0) {
            down_since = RealNowNs();
          } else if (RealNowNs() - down_since > MillisToNanos(10000)) {
            break;
          }
          loop.RunForMs(1);
          continue;
        }
        out->reconnects += 1;
        if (!connect_retry()) {
          break;
        }
      }
      down_since = -1;
      int burst = 1 + static_cast<int>(rng() % static_cast<uint32_t>(opt.burst));
      for (int i = 0; i < burst && seq < quota; ++i) {
        out->attempted += 1;
        int64_t stamp =
            sim->NowNs() / kNanosPerMilli + static_cast<int64_t>(idx) * opt.producer_skew_ms;
        if (client.Send(stamp, static_cast<double>(seq), name)) {
          out->last_sent_value = seq;
        }
        // A sequence number is attempted exactly once: a value refused here
        // is gone (never resent), so the delivered stream can contain no
        // duplicates whatever the interleaving.
        ++seq;
        if (!client.connected()) {
          break;  // hard error surfaced mid-send; reconnect next turn
        }
      }
      loop.RunForMs(1);  // give the backlog a drain turn
    }
    // Final drain: the schedule keeps cycling (and so keeps draining) while
    // any producer is still running.
    Nanos deadline = RealNowNs() + MillisToNanos(opt.settle_ms);
    while (client.connected() && client.pending_bytes() > 0 && RealNowNs() < deadline) {
      loop.RunForMs(1);
    }
  }
  client.Close();  // folds any leftover backlog into tuples_abandoned
  const StreamClient::Stats& s = client.stats();
  out->sent = s.tuples_sent;
  out->dropped = s.tuples_dropped;
  out->evicted = s.tuples_evicted;
  out->abandoned = s.tuples_abandoned;
  out->bytes_sent = s.bytes_sent;
  out->bytes_dropped = s.bytes_dropped;
  out->block_time_ns = s.block_time_ns;
  out->high_water = s.backlog_high_water;
  if (opt.auto_reconnect) {
    out->reconnects = static_cast<int>(s.reconnects);
  }
  running->fetch_sub(1, std::memory_order_release);
}

// -- flapping subscribers (ControlClient on its own loop thread) -------------

void ViewerThread(const Options& opt, int idx, uint16_t port, ViewerReport* out,
                  std::atomic<bool>* stop) {
  MainLoop loop;
  ControlClientOptions copt;
  copt.reconnect.enabled = true;
  copt.reconnect.initial_backoff_ms = 2;
  copt.reconnect.max_backoff_ms = 50;
  copt.reconnect.seed = opt.seed * 104729u + static_cast<uint32_t>(idx);
  copt.ping_interval_ms = opt.viewer_ping_interval_ms;
  copt.idle_timeout_ms = opt.viewer_idle_timeout_ms;
  ControlClient viewer(&loop, copt);
  viewer.SetTupleCallback([out](const TupleView&) { out->tuples_received += 1; });
  // Declared before connecting, so the pattern rides the resumption replay
  // on every establishment (resumed_commands == establishments).
  viewer.Subscribe("p*");
  viewer.Connect(port);
  while (!stop->load(std::memory_order_acquire)) {
    loop.RunForMs(1);
    out->connected_ok |= viewer.connected();
  }
  viewer.Close();
  const ControlClient::Stats& s = viewer.stats();
  out->reconnects = s.reconnects;
  out->resumed_commands = s.resumed_commands;
  out->notices = s.notices;
  out->liveness_timeouts = s.liveness_timeouts;
  out->pings_sent = s.pings_sent;
  out->pongs_received = s.pongs_received;
}

// -- forked producers (C bindings only) --------------------------------------

void RunChildProducer(const Options& opt, int idx, uint16_t port, int report_fd) {
  ProducerReport report;
  gscope_ctx* ctx = gscope_create("stress-producer", 32, 16, /*use_sim_clock=*/1);
  if (ctx != nullptr &&
      gscope_set_queue_policy(ctx, static_cast<int>(opt.policy), opt.block_deadline_ms) == 0 &&
      gscope_set_queue_limit(ctx, static_cast<int64_t>(opt.client_buffer),
                             opt.sndbuf_bytes) == 0) {
    std::string name = ProducerName(opt, idx);
    bool connected = false;
    for (int attempt = 0; attempt < 400 && !connected; ++attempt) {
      if (gscope_connect(ctx, port) == 0) {
        for (int i = 0; i < 2000 && gscope_connected(ctx) == 0; ++i) {
          gscope_run_for_ms(ctx, 1);
        }
        connected = gscope_connected(ctx) != 0;
      }
      if (!connected) {
        usleep(5000);
      }
    }
    report.connected_ok = connected;
    if (connected) {
      std::mt19937 rng(opt.seed * 1000003u + static_cast<uint32_t>(idx));
      int64_t quota = opt.tuples_per_producer;
      int64_t seq = 0;
      while (seq < quota) {
        int burst = 1 + static_cast<int>(rng() % static_cast<uint32_t>(opt.burst));
        for (int i = 0; i < burst && seq < quota; ++i) {
          report.attempted += 1;
          if (gscope_send(ctx, seq, static_cast<double>(seq), name.c_str()) == 1) {
            report.last_sent_value = seq;
          }
          ++seq;
        }
        gscope_run_for_ms(ctx, 1);
      }
      gscope_queue_stats st{};
      Nanos deadline = RealNowNs() + MillisToNanos(opt.settle_ms);
      while (RealNowNs() < deadline && gscope_connected(ctx) != 0) {
        gscope_client_stats(ctx, &st);
        if (st.pending_bytes == 0) {
          break;
        }
        gscope_run_for_ms(ctx, 1);
      }
    }
    gscope_disconnect(ctx);  // folds any leftover backlog into frames_abandoned
    gscope_queue_stats st{};
    if (gscope_client_stats(ctx, &st) == 0) {
      report.sent = st.tuples_pushed;
      report.dropped = st.frames_dropped;
      report.evicted = st.frames_evicted;
      report.abandoned = st.frames_abandoned;
      report.bytes_sent = st.bytes_sent;
      report.bytes_dropped = st.bytes_dropped;
      report.block_time_ns = st.block_time_ns;
      report.high_water = st.backlog_high_water;
    }
    gscope_destroy(ctx);
  }
  // One small write: atomic for any pipe, so the parent reads all or nothing.
  static_assert(sizeof(ProducerReport) < 512, "report must fit a pipe write");
  ssize_t n = write(report_fd, &report, sizeof(report));
  (void)n;
  close(report_fd);
}

}  // namespace

int64_t Result::TotalAttempted() const {
  int64_t total = 0;
  for (const ProducerReport& p : producers) {
    total += p.attempted;
  }
  return total;
}

int64_t Result::TotalDelivered() const {
  int64_t total = 0;
  for (const std::vector<int64_t>& values : received) {
    total += static_cast<int64_t>(values.size());
  }
  return total;
}

std::string Result::CheckNoTornFrames() const {
  if (server_parse_errors != 0) {
    return "server counted " + std::to_string(server_parse_errors) +
           " parse errors: a drop decision tore a frame";
  }
  return "";
}

std::string Result::CheckSendAccounting() const {
  for (size_t i = 0; i < producers.size(); ++i) {
    const ProducerReport& p = producers[i];
    if (p.attempted != p.sent + p.dropped) {
      return "producer " + std::to_string(i) + ": attempted " + std::to_string(p.attempted) +
             " != sent " + std::to_string(p.sent) + " + dropped " + std::to_string(p.dropped);
    }
  }
  return "";
}

std::string Result::CheckDeliveryExact() const {
  if (restarts > 0) {
    return "";  // a torn-down connection loses kernel-buffered bytes
  }
  if (fault_stats.kills > 0) {
    return "";  // a mid-frame shutdown can discard kernel-buffered bytes
  }
  int64_t client_bytes = 0;
  for (size_t i = 0; i < producers.size(); ++i) {
    const ProducerReport& p = producers[i];
    int64_t expected = p.sent - p.evicted - p.abandoned;
    int64_t delivered = static_cast<int64_t>(received[i].size());
    if (delivered != expected) {
      return "producer " + std::to_string(i) + ": delivered " + std::to_string(delivered) +
             " != sent " + std::to_string(p.sent) + " - evicted " + std::to_string(p.evicted) +
             " - abandoned " + std::to_string(p.abandoned);
    }
    client_bytes += p.bytes_sent;
  }
  // Viewer connections add control-verb bytes to the server's read count,
  // so the wire-level identity only binds producer-only rigs.
  if (viewers.empty() && client_bytes != server_bytes) {
    return "bytes written by clients (" + std::to_string(client_bytes) +
           ") != bytes read by server (" + std::to_string(server_bytes) + ")";
  }
  return "";
}

std::string Result::CheckSequencesMonotone() const {
  for (size_t i = 0; i < received.size(); ++i) {
    for (size_t j = 1; j < received[i].size(); ++j) {
      if (received[i][j] <= received[i][j - 1]) {
        return "producer " + std::to_string(i) + ": value " + std::to_string(received[i][j]) +
               " at index " + std::to_string(j) + " not after " +
               std::to_string(received[i][j - 1]) + " (reorder/duplicate)";
      }
    }
  }
  return "";
}

std::string Result::CheckNewestPreserved() const {
  if (restarts > 0) {
    return "";
  }
  for (size_t i = 0; i < producers.size(); ++i) {
    const ProducerReport& p = producers[i];
    if (p.last_sent_value < 0) {
      continue;  // nothing was ever committed
    }
    if (p.wire_binary && p.dropped > 0) {
      continue;  // a dropped frame may have carried the newest staged value
    }
    if (received[i].empty()) {
      return "producer " + std::to_string(i) + ": committed up to " +
             std::to_string(p.last_sent_value) + " but nothing was delivered";
    }
    if (received[i].back() != p.last_sent_value) {
      return "producer " + std::to_string(i) + ": newest committed value " +
             std::to_string(p.last_sent_value) + " lost; last delivered " +
             std::to_string(received[i].back());
    }
  }
  return "";
}

std::string Result::CheckBlockDeadline(int64_t deadline_ms) const {
  for (size_t i = 0; i < producers.size(); ++i) {
    const ProducerReport& p = producers[i];
    // Each send may wait at most the deadline (plus poll granularity slop).
    int64_t bound = p.attempted * MillisToNanos(deadline_ms + 2);
    if (p.block_time_ns > bound) {
      return "producer " + std::to_string(i) + ": blocked " +
             std::to_string(p.block_time_ns) + " ns > bound " + std::to_string(bound) + " ns";
    }
  }
  return "";
}

std::string Result::CheckCommon() const {
  std::string err = CheckNoTornFrames();
  if (err.empty()) {
    err = CheckSendAccounting();
  }
  if (err.empty()) {
    err = CheckSequencesMonotone();
  }
  return err;
}

Result RunStress(const Options& opt) {
  Result result;
  result.producers.resize(static_cast<size_t>(opt.producers));
  result.received.resize(static_cast<size_t>(opt.producers));
  result.received_times.resize(static_cast<size_t>(opt.producers));

  bool has_drain = false;
  bool has_restart = false;
  for (const ScheduleStep& step : opt.schedule) {
    has_drain |= step.kind == ScheduleStep::Kind::kDrain;
    has_restart |= step.kind == ScheduleStep::Kind::kRestart;
  }
  if (!has_drain) {
    result.setup_error = "schedule has no drain step: producers could never finish";
    return result;
  }
  if (opt.use_processes && has_restart) {
    result.setup_error = "restart steps are not supported in process mode";
    return result;
  }
  if (opt.use_processes && opt.viewers > 0) {
    result.setup_error = "viewers are threads; they cannot mix with forked producers";
    return result;
  }
  if (opt.use_processes && opt.wire != Options::Wire::kText) {
    result.setup_error = "binary wire requires thread producers";
    return result;
  }
  if (opt.use_processes && opt.server_loops > 1) {
    result.setup_error = "sharded server loops are threads; they cannot mix with fork";
    return result;
  }
  result.viewers.resize(static_cast<size_t>(std::max(0, opt.viewers)));

  // Install the scripted fault schedule for the whole run (server included).
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FaultInjector::ScopedInstall> injector_guard;
  if (!opt.faults.empty()) {
    injector = std::make_unique<FaultInjector>(opt.fault_seed);
    for (const FaultRule& rule : opt.faults) {
      injector->AddRule(rule);
    }
    injector_guard = std::make_unique<FaultInjector::ScopedInstall>(injector.get());
  }

  MainLoop server_loop;  // real clock: socket readiness is real
  Scope display(&server_loop, ScopeOptions{.name = "stress-display", .width = 64});
  display.SetPollingMode(5);
  // Sharded runs build route tables from worker loops while this scope's
  // tick runs on the primary; gate the tick (no-op at one loop).
  display.SetConcurrent(opt.server_loops > 1);
  StreamServerOptions sopt;
  sopt.max_clients = 128;
  sopt.fanout_shards = 1;
  sopt.fanout_workers = 0;  // no fan-out workers: fork-safe at one loop
  sopt.loops = opt.server_loops;
  sopt.client_rcvbuf_bytes = opt.server_rcvbuf_bytes;
  StreamServer server(&server_loop, &display, sopt);
  if (!server.Listen(0)) {
    result.setup_error = "server listen failed";
    return result;
  }
  uint16_t port = server.port();
  display.StartPolling();

  // Record every parsed value per producer, in arrival order.  The mutex
  // serializes shard loops in sharded runs ("arrival order" then means each
  // producer's own order: one producer lands on one loop).
  std::mutex tap_mu;
  server.SetIngestTap([&result, &opt, &tap_mu](const TupleView& tuple) {
    if (tuple.name.size() < 2 || tuple.name.front() != 'p') {
      return;
    }
    int idx = 0;
    bool any_digit = false;
    for (size_t i = 1; i < tuple.name.size(); ++i) {
      char c = tuple.name[i];
      if (c == '_') {
        break;  // payload padding follows
      }
      if (c < '0' || c > '9') {
        return;
      }
      idx = idx * 10 + (c - '0');
      any_digit = true;
    }
    if (any_digit && idx >= 0 && idx < opt.producers) {
      std::lock_guard<std::mutex> lock(tap_mu);
      result.received[static_cast<size_t>(idx)].push_back(
          static_cast<int64_t>(std::llround(tuple.value)));
      result.received_times[static_cast<size_t>(idx)].push_back(tuple.time_ms);
    }
  });

  // Virtual time for tuple stamps, advanced in lockstep with the schedule.
  SimClock sim;

  auto run_step = [&](const ScheduleStep& step) {
    switch (step.kind) {
      case ScheduleStep::Kind::kDrain:
        server_loop.RunForMs(step.ms);
        break;
      case ScheduleStep::Kind::kPause:
        // The server stops reading entirely; kernel buffers fill and
        // backpressure reaches the producers' bounded backlogs.
        std::this_thread::sleep_for(std::chrono::milliseconds(step.ms));
        break;
      case ScheduleStep::Kind::kRestart: {
        server.Close();
        std::this_thread::sleep_for(std::chrono::milliseconds(step.ms));
        for (int attempt = 0; attempt < 100 && !server.Listen(port); ++attempt) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        result.restarts += 1;
        break;
      }
    }
    sim.AdvanceMs(step.ms);
  };

  std::atomic<bool> viewers_stop{false};
  std::vector<std::thread> viewer_threads;
  viewer_threads.reserve(result.viewers.size());
  for (int i = 0; i < opt.viewers; ++i) {
    viewer_threads.emplace_back(ViewerThread, std::cref(opt), i, port,
                                &result.viewers[static_cast<size_t>(i)], &viewers_stop);
  }

  if (!opt.use_processes) {
    std::atomic<int> running{opt.producers};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(opt.producers));
    for (int i = 0; i < opt.producers; ++i) {
      threads.emplace_back(ProducerThread, std::cref(opt), i, port, &sim,
                           &result.producers[static_cast<size_t>(i)], &running);
    }
    size_t step_i = 0;
    while (running.load(std::memory_order_acquire) > 0) {
      run_step(opt.schedule[step_i++ % opt.schedule.size()]);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  } else {
    struct Child {
      pid_t pid = -1;
      int report_fd = -1;
      bool exited = false;
    };
    std::vector<Child> children(static_cast<size_t>(opt.producers));
    for (int i = 0; i < opt.producers; ++i) {
      int fds[2];
      if (pipe(fds) != 0) {
        result.setup_error = "pipe failed";
        return result;
      }
      pid_t pid = fork();
      if (pid < 0) {
        result.setup_error = "fork failed";
        close(fds[0]);
        close(fds[1]);
        return result;
      }
      if (pid == 0) {
        close(fds[0]);
        RunChildProducer(opt, i, port, fds[1]);
        _exit(0);  // no parent destructors / test machinery in the child
      }
      close(fds[1]);
      children[static_cast<size_t>(i)] = {pid, fds[0], false};
    }
    int alive = opt.producers;
    size_t step_i = 0;
    while (alive > 0) {
      run_step(opt.schedule[step_i++ % opt.schedule.size()]);
      for (Child& child : children) {
        if (!child.exited && waitpid(child.pid, nullptr, WNOHANG) == child.pid) {
          child.exited = true;
          alive -= 1;
        }
      }
    }
    for (size_t i = 0; i < children.size(); ++i) {
      ProducerReport& report = result.producers[i];
      size_t got = 0;
      while (got < sizeof(report)) {
        ssize_t n = read(children[i].report_fd,
                         reinterpret_cast<char*>(&report) + got, sizeof(report) - got);
        if (n <= 0) {
          break;  // child died before reporting: zeros, connected_ok false
        }
        got += static_cast<size_t>(n);
      }
      close(children[i].report_fd);
    }
  }

  // Settle: drain until every producer connection wound down and the count
  // is stable.  Viewers are still connected clients at this point, so the
  // floor is their count, not zero.
  size_t floor = result.viewers.size();
  Nanos deadline = RealNowNs() + MillisToNanos(opt.settle_ms);
  int64_t last_tuples = -1;
  while (RealNowNs() < deadline) {
    server_loop.RunForMs(10);
    if (server.client_count() <= floor && server.stats().tuples == last_tuples) {
      break;
    }
    last_tuples = server.stats().tuples;
  }

  if (!viewer_threads.empty()) {
    // One more drain so in-flight echoes reach the viewers, then stop them.
    server_loop.RunForMs(50);
    viewers_stop.store(true, std::memory_order_release);
    for (std::thread& t : viewer_threads) {
      t.join();
    }
    server_loop.RunForMs(10);  // observe their disconnects
  }

  result.server_tuples = server.stats().tuples;
  result.server_parse_errors = server.stats().parse_errors;
  result.server_bytes = server.stats().bytes;
  result.server_frames_rx = server.stats().frames_rx;
  result.server_frames_crc_errors = server.stats().frames_crc_errors;
  if (injector != nullptr) {
    result.fault_stats = injector->stats();
  }
  result.ran = true;
  return result;
}

}  // namespace stress
}  // namespace gscope
