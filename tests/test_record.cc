// Flight recorder tests (ROADMAP item 3): crash-safe columnar capture,
// torn-extent recovery, disk-full degradation, and time-travel replay.
//
// The crash-safety tests are deterministic by construction: torn tails are
// manufactured by truncating a finished log at seeded random byte offsets
// (exactly what a kill mid-pwrite leaves behind), and every file-I/O error
// path is scripted through net/fault_injector.h (FaultOp::kFile*), so each
// recovery branch is reachable from (seed, rules) alone.  The invariant
// under test throughout: after ANY injected crash, Open() recovers every
// sealed extent byte-identically and loses at most the one unsealed tail.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/ingest_router.h"
#include "core/scope.h"
#include "core/trigger.h"
#include "freq/spectrum.h"
#include "net/fault_injector.h"
#include "record/extent_log.h"
#include "record/recorder.h"
#include "record/replayer.h"
#include "runtime/clock.h"
#include "runtime/event_loop.h"

// The sanitizer runtime interposes its own operator new/delete; replacing
// them here trips alloc-dealloc-mismatch, and counting its allocations would
// be meaningless anyway.  The zero-allocation assertion is a Release-tier
// guarantee: it skips itself under ASan (this file's other tests are what
// the sanitizer stage is for).
#if defined(__SANITIZE_ADDRESS__)
#define GSCOPE_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GSCOPE_TEST_ASAN 1
#endif
#endif

// Global allocation counter for the steady-state zero-allocation assertion
// (the test_ingest_fast_path pattern).
namespace {
std::atomic<int64_t> g_heap_allocs{0};

#ifndef GSCOPE_TEST_ASAN
void* CountedAlloc(size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
#endif
}  // namespace

#ifndef GSCOPE_TEST_ASAN
void* operator new(size_t n) { return CountedAlloc(n); }
void* operator new[](size_t n) { return CountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
#endif

namespace gscope {
namespace {

std::string TempPath(const std::string& tag) {
  std::string path = ::testing::TempDir();
  if (!path.empty() && path.back() != '/') {
    path.push_back('/');
  }
  path.append("gscope_record_").append(tag).append("_");
  path.append(std::to_string(::getpid())).append(".log");
  std::remove(path.c_str());
  return path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

int64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.good() ? static_cast<int64_t>(in.tellg()) : -1;
}

class ExtentLogTest : public ::testing::Test {
 protected:
  ~ExtentLogTest() override {
    for (const std::string& p : cleanup_) {
      std::remove(p.c_str());
    }
  }

  std::string Path(const std::string& tag) {
    std::string p = TempPath(tag);
    cleanup_.push_back(p);
    return p;
  }

  std::vector<std::string> cleanup_;
};

// ---------------------------------------------------------------------------
// Columnar round trip
// ---------------------------------------------------------------------------

TEST_F(ExtentLogTest, RoundTripAndWindowQuery) {
  const std::string path = Path("roundtrip");
  ExtentLog log;
  ASSERT_TRUE(log.Open(path));
  for (int64_t t = 0; t < 100; ++t) {
    ASSERT_TRUE(log.Append("volts", t, static_cast<double>(t) * 0.5));
    ASSERT_TRUE(log.Append("amps", t, 100.0 - static_cast<double>(t)));
  }
  ASSERT_TRUE(log.SealNow());
  EXPECT_EQ(log.stats().appends, 200);
  EXPECT_EQ(log.stats().extents_sealed, 1);
  log.Close();

  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  ASSERT_EQ(reader.extents().size(), 1u);
  EXPECT_EQ(reader.extents()[0].records, 200u);
  EXPECT_EQ(reader.torn_slots(), 0);
  EXPECT_EQ(reader.min_time_ms(), 0);
  EXPECT_EQ(reader.max_time_ms(), 99);

  std::vector<ReplayRecord> all;
  ASSERT_TRUE(reader.ReadWindow(0, 99, &all));
  ASSERT_EQ(all.size(), 200u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].time_ms, all[i].time_ms);
  }
  // Spot-check values through the name table.
  int64_t volts_seen = 0;
  for (const ReplayRecord& r : all) {
    if (reader.names()[r.name] == "volts") {
      EXPECT_DOUBLE_EQ(r.value, static_cast<double>(r.time_ms) * 0.5);
      volts_seen += 1;
    } else {
      EXPECT_EQ(reader.names()[r.name], "amps");
      EXPECT_DOUBLE_EQ(r.value, 100.0 - static_cast<double>(r.time_ms));
    }
  }
  EXPECT_EQ(volts_seen, 100);

  // Window query: the block-level time-range index must not lose edges.
  std::vector<ReplayRecord> window;
  ASSERT_TRUE(reader.ReadWindow(40, 49, &window));
  EXPECT_EQ(window.size(), 20u);  // 10 ms x 2 signals, bounds inclusive
  for (const ReplayRecord& r : window) {
    EXPECT_GE(r.time_ms, 40);
    EXPECT_LE(r.time_ms, 49);
  }
}

TEST_F(ExtentLogTest, ExtentsAreSelfContained) {
  // Every extent re-declares the signal ids it uses (PR 7 frame shape), so
  // losing one extent never makes another undecodable.
  const std::string path = Path("selfcontained");
  ExtentLog log({.extent_bytes = 512, .max_extents = 64});
  ASSERT_TRUE(log.Open(path));
  for (int64_t t = 0; t < 400; ++t) {
    ASSERT_TRUE(log.Append("alpha", t, 1.0));
    ASSERT_TRUE(log.Append("beta", t, 2.0));
  }
  ASSERT_TRUE(log.SealNow());
  const int64_t sealed = log.stats().extents_sealed;
  ASSERT_GE(sealed, 3);
  log.Close();

  // Corrupt the FIRST extent (flip a payload byte): its CRC fails, every
  // later extent must still decode names correctly.
  std::string bytes = ReadFileBytes(path);
  bytes[record::kSuperBytes + record::kExtentHeaderBytes + 3] ^= 0x5A;
  WriteFileBytes(path, bytes);

  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  EXPECT_EQ(reader.torn_slots(), 1);
  EXPECT_EQ(static_cast<int64_t>(reader.extents().size()), sealed - 1);
  std::vector<ReplayRecord> rest;
  ASSERT_TRUE(reader.ReadWindow(0, 399, &rest));
  ASSERT_FALSE(rest.empty());
  for (const ReplayRecord& r : rest) {
    const std::string& name = reader.names()[r.name];
    EXPECT_TRUE(name == "alpha" || name == "beta") << name;
    EXPECT_DOUBLE_EQ(r.value, name == "alpha" ? 1.0 : 2.0);
  }
}

TEST_F(ExtentLogTest, RingRetentionOverwritesOldest) {
  const std::string path = Path("ring");
  ExtentLog log({.extent_bytes = 512, .max_extents = 4});
  ASSERT_TRUE(log.Open(path));
  for (int64_t t = 0; t < 2000; ++t) {
    ASSERT_TRUE(log.Append("sig", t, static_cast<double>(t)));
  }
  ASSERT_TRUE(log.SealNow());
  const int64_t sealed = log.stats().extents_sealed;
  ASSERT_GT(sealed, 4);  // the ring wrapped
  log.Close();

  // The file never grows past the cap...
  EXPECT_LE(FileSize(path),
            static_cast<int64_t>(record::kSuperBytes + 4 * 512));
  // ...and exactly the NEWEST 4 extents survive, in seq order.
  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  ASSERT_EQ(reader.extents().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reader.extents()[i].seq,
              static_cast<uint64_t>(sealed - 3 + static_cast<int64_t>(i)));
  }
  // The retained window is the newest data: its max is the last append.
  EXPECT_EQ(reader.max_time_ms(), 1999);
  EXPECT_GT(reader.min_time_ms(), 0);
}

TEST_F(ExtentLogTest, ReopenResumesSequence) {
  const std::string path = Path("reopen");
  {
    ExtentLog log({.extent_bytes = 512, .max_extents = 64});
    ASSERT_TRUE(log.Open(path));
    for (int64_t t = 0; t < 200; ++t) {
      ASSERT_TRUE(log.Append("sig", t, 1.0));
    }
    log.Close();  // seals the stage
  }
  ExtentLog log({.extent_bytes = 512, .max_extents = 64});
  ASSERT_TRUE(log.Open(path));
  const int64_t recovered = log.stats().extents_recovered;
  ASSERT_GT(recovered, 0);
  EXPECT_EQ(log.next_seq(), static_cast<uint64_t>(recovered) + 1);
  for (int64_t t = 200; t < 300; ++t) {
    ASSERT_TRUE(log.Append("sig", t, 2.0));
  }
  log.Close();

  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  std::vector<ReplayRecord> all;
  ASSERT_TRUE(reader.ReadWindow(0, 299, &all));
  EXPECT_EQ(all.size(), 300u);  // both generations, no seq collision
  for (size_t i = 1; i < reader.extents().size(); ++i) {
    EXPECT_EQ(reader.extents()[i].seq, reader.extents()[i - 1].seq + 1);
  }
}

// ---------------------------------------------------------------------------
// Torn-tail recovery (seeded fuzz)
// ---------------------------------------------------------------------------

TEST_F(ExtentLogTest, TornTailRecoveryFuzz) {
  // Build a finished log, then manufacture crashes by truncating a copy at
  // seeded random offsets - byte-exact what a kill mid-pwrite leaves.  For
  // every cut: Open() must keep each complete slot byte-identically, count
  // exactly one ftruncate for a mid-slot cut (zero for a cut at a slot
  // boundary), and resume the sequence after the highest survivor.
  constexpr size_t kExtentBytes = 512;
  const std::string base = Path("fuzzbase");
  {
    ExtentLog log({.extent_bytes = kExtentBytes, .max_extents = 64});
    ASSERT_TRUE(log.Open(base));
    for (int64_t t = 0; t < 800; ++t) {
      ASSERT_TRUE(log.Append("a", t, static_cast<double>(t)));
      ASSERT_TRUE(log.Append("b", t, static_cast<double>(-t)));
    }
    ASSERT_TRUE(log.SealNow());
    ASSERT_GE(log.stats().extents_sealed, 5);
    log.Close();
  }
  const std::string original = ReadFileBytes(base);
  ASSERT_GT(original.size(), record::kSuperBytes + 2 * kExtentBytes);

  std::mt19937 rng(20260807);
  const std::string victim = Path("fuzzcut");
  for (int round = 0; round < 48; ++round) {
    // Cut anywhere in the extent area, slot boundaries included.
    std::uniform_int_distribution<size_t> dist(record::kSuperBytes + 1,
                                               original.size());
    const size_t cut = dist(rng);
    WriteFileBytes(victim, original.substr(0, cut));

    const size_t data = cut - record::kSuperBytes;
    const size_t complete_slots = data / kExtentBytes;
    const bool mid_slot = data % kExtentBytes != 0;

    ExtentLog log({.extent_bytes = kExtentBytes, .max_extents = 64});
    ASSERT_TRUE(log.Open(victim)) << "cut=" << cut;
    EXPECT_EQ(log.stats().extents_recovered,
              static_cast<int64_t>(complete_slots))
        << "cut=" << cut;
    // Exactly-once truncation: one ftruncate for a torn tail, none for a
    // clean boundary.
    EXPECT_EQ(log.stats().extents_truncated, mid_slot ? 1 : 0)
        << "cut=" << cut;
    EXPECT_EQ(log.next_seq(), static_cast<uint64_t>(complete_slots) + 1)
        << "cut=" << cut;
    log.Close();

    // Sealed extents survive byte-identically; the torn tail is gone.
    const std::string recovered = ReadFileBytes(victim);
    ASSERT_EQ(recovered.size(),
              record::kSuperBytes + complete_slots * kExtentBytes)
        << "cut=" << cut;
    EXPECT_EQ(recovered, original.substr(0, recovered.size()))
        << "cut=" << cut;

    // And the reader agrees on what survived.
    ExtentReader reader;
    ASSERT_TRUE(reader.Open(victim));
    EXPECT_EQ(reader.extents().size(), complete_slots) << "cut=" << cut;
    EXPECT_EQ(reader.torn_slots(), 0) << "cut=" << cut;
  }
}

TEST_F(ExtentLogTest, MidRingTearIsLeftInPlace) {
  // A torn slot BEFORE a valid one is an in-place overwrite that tore, not
  // a tail: recovery must not truncate (that would delete sealed data after
  // it), readers skip it, and the sequence resumes after the max survivor.
  constexpr size_t kExtentBytes = 512;
  const std::string path = Path("midring");
  {
    ExtentLog log({.extent_bytes = kExtentBytes, .max_extents = 64});
    ASSERT_TRUE(log.Open(path));
    for (int64_t t = 0; t < 800; ++t) {
      ASSERT_TRUE(log.Append("sig", t, static_cast<double>(t)));
    }
    ASSERT_TRUE(log.SealNow());
    ASSERT_GE(log.stats().extents_sealed, 4);
    log.Close();
  }
  std::string bytes = ReadFileBytes(path);
  const int64_t size_before = static_cast<int64_t>(bytes.size());
  // Tear slot 1 (not the tail).
  bytes[record::kSuperBytes + kExtentBytes + record::kExtentHeaderBytes + 1] ^= 0xFF;
  WriteFileBytes(path, bytes);

  ExtentLog log({.extent_bytes = kExtentBytes, .max_extents = 64});
  ASSERT_TRUE(log.Open(path));
  EXPECT_EQ(log.stats().extents_truncated, 0);
  EXPECT_EQ(FileSize(path), size_before);
  const int64_t total_slots =
      (size_before - static_cast<int64_t>(record::kSuperBytes)) /
      static_cast<int64_t>(kExtentBytes);
  EXPECT_EQ(log.stats().extents_recovered, total_slots - 1);
  EXPECT_EQ(log.next_seq(), static_cast<uint64_t>(total_slots) + 1);
  log.Close();

  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  EXPECT_EQ(reader.torn_slots(), 1);
  EXPECT_EQ(static_cast<int64_t>(reader.extents().size()), total_slots - 1);
}

TEST_F(ExtentLogTest, CorruptSuperblockIsRefusedNotClobbered) {
  const std::string path = Path("badsuper");
  {
    ExtentLog log;
    ASSERT_TRUE(log.Open(path));
    ASSERT_TRUE(log.Append("sig", 0, 1.0));
    log.Close();
  }
  std::string bytes = ReadFileBytes(path);
  bytes[2] ^= 0x7F;  // version byte: superblock CRC now fails
  WriteFileBytes(path, bytes);
  const std::string before = ReadFileBytes(path);

  ExtentLog log;
  EXPECT_FALSE(log.Open(path));
  // Refused means refused: the file is untouched, not re-initialized.
  EXPECT_EQ(ReadFileBytes(path), before);
}

// ---------------------------------------------------------------------------
// Fsync policy knob
// ---------------------------------------------------------------------------

TEST_F(ExtentLogTest, FsyncPolicyExtentSyncsPerSeal) {
  const std::string path = Path("fsyncextent");
  ExtentLog log({.extent_bytes = 512, .max_extents = 64,
                 .fsync_policy = FsyncPolicy::kExtent});
  ASSERT_TRUE(log.Open(path));
  for (int round = 0; round < 3; ++round) {
    for (int64_t t = 0; t < 10; ++t) {
      ASSERT_TRUE(log.Append("sig", round * 10 + t, 1.0));
    }
    ASSERT_TRUE(log.SealNow());
  }
  EXPECT_EQ(log.stats().extents_sealed, 3);
  EXPECT_EQ(log.stats().fsyncs, 3);
  log.Close();
}

TEST_F(ExtentLogTest, FsyncPolicyIntervalPacesByClock) {
  const std::string path = Path("fsyncinterval");
  ExtentLog log({.extent_bytes = 512, .max_extents = 64,
                 .fsync_policy = FsyncPolicy::kInterval,
                 .fsync_interval_ms = 100});
  ASSERT_TRUE(log.Open(path));
  ASSERT_TRUE(log.Append("sig", 0, 1.0));
  ASSERT_TRUE(log.SealNow());  // dirty now
  log.MaybeFsync(0);           // primes the clock, no sync yet
  log.MaybeFsync(50);          // inside the interval
  EXPECT_EQ(log.stats().fsyncs, 0);
  log.MaybeFsync(150);         // interval elapsed + dirty -> sync
  EXPECT_EQ(log.stats().fsyncs, 1);
  log.MaybeFsync(300);         // elapsed but clean -> no sync
  EXPECT_EQ(log.stats().fsyncs, 1);
  log.Close();
}

TEST_F(ExtentLogTest, FsyncFailureIsCountedNeverFatal) {
  const std::string path = Path("fsyncfail");
  ExtentLog log({.extent_bytes = 512, .max_extents = 64,
                 .fsync_policy = FsyncPolicy::kExtent});
  ASSERT_TRUE(log.Open(path));
  FaultInjector fi(7);
  fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kFileSync, EIO, -1));
  FaultInjector::ScopedInstall guard(&fi);
  for (int64_t t = 0; t < 10; ++t) {
    ASSERT_TRUE(log.Append("sig", t, 1.0));
  }
  EXPECT_TRUE(log.SealNow());  // the seal itself commits
  EXPECT_GE(log.stats().fsync_failures, 1);
  EXPECT_FALSE(log.degraded());
  // Capture continues.
  ASSERT_TRUE(log.Append("sig", 10, 2.0));
  log.Close();
}

// ---------------------------------------------------------------------------
// Disk-full degradation
// ---------------------------------------------------------------------------

TEST_F(ExtentLogTest, DiskFullWrapDropsOldestExtent) {
  constexpr size_t kExtentBytes = 512;
  const std::string path = Path("wrap");
  ExtentLog log({.extent_bytes = kExtentBytes, .max_extents = 8});
  ASSERT_TRUE(log.Open(path));
  // Three healthy extents fill slots 0..2.
  int64_t t = 0;
  for (int round = 0; round < 3; ++round) {
    while (log.stats().extents_sealed == round) {
      ASSERT_TRUE(log.Append("sig", t, static_cast<double>(t)));
      ++t;
    }
  }
  const int64_t size_before = FileSize(path);

  // The next extend hits ENOSPC once: the ring must wrap early (dropping
  // the oldest sealed extent) and the in-place retry succeeds.
  FaultInjector fi(7);
  fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kFileWrite, ENOSPC, 1));
  {
    FaultInjector::ScopedInstall guard(&fi);
    ASSERT_TRUE(log.Append("sig", t, 123.0));
    ASSERT_TRUE(log.SealNow());
  }
  EXPECT_EQ(log.stats().extents_dropped, 1);
  EXPECT_EQ(log.stats().extents_sealed, 4);
  EXPECT_FALSE(log.degraded());
  EXPECT_EQ(FileSize(path), size_before);  // no growth on a full disk
  log.Close();

  // Seq 1 (the oldest) was the victim; 2..4 survive.
  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  ASSERT_EQ(reader.extents().size(), 3u);
  EXPECT_EQ(reader.extents()[0].seq, 2u);
  EXPECT_EQ(reader.extents()[2].seq, 4u);
}

TEST_F(ExtentLogTest, DiskFullDegradesToCoalescedCaptureAndRecovers) {
  const std::string path = Path("degraded");
  ExtentLog log({.extent_bytes = 512, .max_extents = 8});
  ASSERT_TRUE(log.Open(path));

  FaultInjector fi(7);
  fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kFileWrite, ENOSPC, -1));
  {
    FaultInjector::ScopedInstall guard(&fi);
    // Nothing is writable at all (not even a wrap target: the file has no
    // sealed slot yet), so the first failed seal enters coalesced capture.
    for (int64_t t = 0; t < 5000; ++t) {
      ASSERT_TRUE(log.Append("hot", t, static_cast<double>(t)));
      ASSERT_TRUE(log.Append("cold", t, -static_cast<double>(t)));
    }
    EXPECT_TRUE(log.degraded());
    EXPECT_GE(log.stats().degraded_entered, 1);
    EXPECT_GT(log.stats().samples_coalesced, 0);
    // Coalesced capture is bounded: what was staged when the disk filled,
    // plus one last-wins record per signal - appending forever while
    // degraded must not grow memory.
    const size_t staged_at_degrade = log.staged_records();
    for (int64_t t = 5000; t < 6000; ++t) {
      ASSERT_TRUE(log.Append("hot", t, static_cast<double>(t)));
      ASSERT_TRUE(log.Append("cold", t, -static_cast<double>(t)));
    }
    EXPECT_EQ(log.staged_records(), staged_at_degrade);
  }

  // Faults cleared = space freed: the retry seal commits the snapshot and
  // full capture resumes.
  EXPECT_TRUE(log.SealNow());
  EXPECT_FALSE(log.degraded());
  log.Close();

  // The newest (last-wins) record per signal survived the outage.
  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  EXPECT_EQ(reader.max_time_ms(), 5999);
  std::vector<ReplayRecord> snap;
  ASSERT_TRUE(reader.ReadWindow(5999, 5999, &snap));
  ASSERT_EQ(snap.size(), 2u);
  for (const ReplayRecord& r : snap) {
    EXPECT_EQ(r.time_ms, 5999);
    EXPECT_DOUBLE_EQ(r.value,
                     reader.names()[r.name] == "hot" ? 5999.0 : -5999.0);
  }
}

TEST_F(ExtentLogTest, NonEnospcSealFailureDropsExtentNotCapture) {
  const std::string path = Path("eio");
  ExtentLog log({.extent_bytes = 512, .max_extents = 8});
  ASSERT_TRUE(log.Open(path));
  for (int64_t t = 0; t < 10; ++t) {
    ASSERT_TRUE(log.Append("sig", t, 1.0));
  }
  FaultInjector fi(7);
  fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kFileWrite, EIO, 1));
  {
    FaultInjector::ScopedInstall guard(&fi);
    EXPECT_FALSE(log.SealNow());
  }
  // A dead-disk write drops this extent's data rather than wedging capture.
  EXPECT_EQ(log.stats().seal_failures, 1);
  EXPECT_EQ(log.stats().extents_dropped, 1);
  EXPECT_EQ(log.staged_records(), 0u);
  EXPECT_FALSE(log.degraded());
  for (int64_t t = 10; t < 20; ++t) {
    ASSERT_TRUE(log.Append("sig", t, 2.0));
  }
  EXPECT_TRUE(log.SealNow());
  log.Close();
}

// ---------------------------------------------------------------------------
// Seeded fault matrix: every (fault schedule x fsync policy) combination
// must leave a file that Open() recovers and a reader can fully decode.
// ---------------------------------------------------------------------------

TEST_F(ExtentLogTest, FaultMatrixRecoveryInvariant) {
  const FsyncPolicy policies[] = {FsyncPolicy::kNone, FsyncPolicy::kExtent,
                                  FsyncPolicy::kInterval};
  for (uint32_t seed = 1; seed <= 4; ++seed) {
    for (FsyncPolicy policy : policies) {
      const std::string path =
          Path("matrix_s" + std::to_string(seed) + "_p" +
               std::to_string(static_cast<int>(policy)));
      {
        ExtentLog log({.extent_bytes = 512, .max_extents = 16,
                       .fsync_policy = policy, .fsync_interval_ms = 20});
        ASSERT_TRUE(log.Open(path));
        FaultInjector fi(seed);
        // Partial writes are healed by the pwrite loop; intermittent EIO
        // storms drop whole extents; fsync storms only count.
        FaultRule partial = FaultInjector::PartialWrites(7, 40);
        partial.op = FaultOp::kFileWrite;
        partial.probability = 0.5;
        fi.AddRule(partial);
        FaultRule eio = FaultInjector::ErrnoStorm(FaultOp::kFileWrite, EIO, 3,
                                                  /*skip=*/5);
        eio.probability = 0.3;
        fi.AddRule(eio);
        fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kFileSync, EIO, 2));
        FaultInjector::ScopedInstall guard(&fi);
        for (int64_t t = 0; t < 2000; ++t) {
          ASSERT_TRUE(log.Append("x", t, static_cast<double>(t)));
          if (t % 3 == 0) {
            ASSERT_TRUE(log.Append("y", t, 0.5 * static_cast<double>(t)));
          }
          if (t % 50 == 0) {
            log.MaybeFsync(t);
          }
        }
        log.Close();  // still under faults: the final seal may die too
      }

      // Recovery invariant: whatever the schedule did, Open() succeeds and
      // every surviving extent decodes in full, in time order.
      ExtentLog log({.extent_bytes = 512, .max_extents = 16,
                     .fsync_policy = policy});
      ASSERT_TRUE(log.Open(path))
          << "seed=" << seed << " policy=" << static_cast<int>(policy);
      log.Close();

      ExtentReader reader;
      ASSERT_TRUE(reader.Open(path));
      uint32_t indexed = 0;
      for (const ExtentReader::ExtentInfo& e : reader.extents()) {
        indexed += e.records;
      }
      std::vector<ReplayRecord> all;
      ASSERT_TRUE(reader.ReadWindow(reader.min_time_ms(),
                                    reader.max_time_ms(), &all));
      EXPECT_EQ(all.size(), indexed)
          << "seed=" << seed << " policy=" << static_cast<int>(policy);
      for (size_t i = 1; i < all.size(); ++i) {
        ASSERT_LE(all[i - 1].time_ms, all[i].time_ms);
      }
      for (const ReplayRecord& r : all) {
        const std::string& name = reader.names()[r.name];
        ASSERT_TRUE(name == "x" || name == "y");
        ASSERT_DOUBLE_EQ(r.value, (name == "x" ? 1.0 : 0.5) *
                                      static_cast<double>(r.time_ms));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Steady-state append allocates nothing
// ---------------------------------------------------------------------------

TEST_F(ExtentLogTest, SteadyStateAppendAllocatesNothing) {
#ifdef GSCOPE_TEST_ASAN
  GTEST_SKIP() << "allocation counting disabled under ASan (runtime owns "
                  "operator new/delete)";
#endif
  const std::string path = Path("zeroalloc");
  ExtentLog log({.extent_bytes = 4096, .max_extents = 8});
  ASSERT_TRUE(log.Open(path));
  // Warm-up: intern every name and let the column buffers and the seal
  // scratch reach their full per-extent capacity (two whole extents).
  int64_t t = 0;
  while (log.stats().extents_sealed < 2) {
    log.Append("alpha", t, 1.0);
    log.Append("beta", t, 2.0);
    log.Append("gamma", t, 3.0);
    ++t;
  }
  const int64_t sealed_before = log.stats().extents_sealed;
  const int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 2000; ++i) {
    log.Append("alpha", t, 1.5);
    log.Append("beta", t, 2.5);
    log.Append("gamma", t, 3.5);
    ++t;
  }
  log.SealNow();
  const int64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state append (seals included) must not allocate";
  EXPECT_GT(log.stats().extents_sealed, sealed_before);  // seals happened
  log.Close();
}

// ---------------------------------------------------------------------------
// Recorder: capture while serving, driven deterministically
// ---------------------------------------------------------------------------

TEST(RecorderTest, CapturesRoutedSamplesOnExternalLoop) {
  const std::string path = TempPath("recorder");
  SimClock sim;
  MainLoop loop(&sim);
  IngestRouter router;
  Scope display(&loop, {.name = "display", .width = 64});
  display.SetPollingMode(5);
  display.StartPolling();
  ASSERT_TRUE(router.AddScope(&display));

  Recorder rec({.log = {.extent_bytes = 4096, .max_extents = 16},
                .poll_period_ms = 5,
                .loop = &loop});
  ASSERT_TRUE(rec.Start(path));
  ASSERT_TRUE(router.AddScope(rec.scope()));

  // A sample stamped t becomes displayable at scope time t + delay and is
  // late-dropped if it arrives after that: push everything with the sim
  // clock at 0 (all timestamps in the future), then advance past the last
  // timestamp so the poll ticks drain the whole run.
  for (int64_t t = 0; t < 500; ++t) {
    router.Append("volts", t, static_cast<double>(t));
    router.Append("amps", t, 2.0 * static_cast<double>(t));
    if (t % 16 == 15) {
      router.Flush();
    }
  }
  router.Flush();
  loop.RunForMs(600);
  rec.FlushNow();
  EXPECT_EQ(rec.stats().samples_captured.load(), 1000);
  EXPECT_GT(rec.stats().extents_sealed.load(), 0);
  EXPECT_GT(rec.stats().capture_bytes.load(), 0);
  EXPECT_EQ(rec.stats().degraded.load(), 0);

  // The recorder's every-sample tap must NOT disable the display scope's
  // drain coalescing (needs_history is per scope-slot): the display keeps
  // folding display-only signals to one hold write per tick.
  EXPECT_GT(display.counters().samples_coalesced, 0);

  ASSERT_TRUE(router.RemoveScope(rec.scope()));
  rec.Stop();
  router.RemoveScope(&display);

  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  std::vector<ReplayRecord> all;
  ASSERT_TRUE(reader.ReadWindow(0, 499, &all));
  EXPECT_EQ(all.size(), 1000u);
  std::remove(path.c_str());
}

TEST(RecorderTest, StartRecoversExistingLog) {
  const std::string path = TempPath("recorder_recover");
  {
    ExtentLog log({.extent_bytes = 512, .max_extents = 16});
    ASSERT_TRUE(log.Open(path));
    for (int64_t t = 0; t < 200; ++t) {
      ASSERT_TRUE(log.Append("sig", t, 1.0));
    }
    log.Close();
  }
  // Tear the tail: append garbage half-slot.
  std::string bytes = ReadFileBytes(path);
  bytes.append(200, '\xAB');
  WriteFileBytes(path, bytes);

  SimClock sim;
  MainLoop loop(&sim);
  Recorder rec({.log = {.extent_bytes = 512, .max_extents = 16},
                .poll_period_ms = 5,
                .loop = &loop});
  ASSERT_TRUE(rec.Start(path));
  EXPECT_GT(rec.stats().extents_recovered.load(), 0);
  EXPECT_EQ(rec.stats().extents_truncated.load(), 1);
  rec.Stop();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Replay equivalence: triggers, aggregates and spectra see identical data
// ---------------------------------------------------------------------------

namespace replay_equiv {

// Everything a downstream consumer stack observed from one run.
struct Observed {
  std::vector<std::pair<int64_t, double>> samples;  // every-sample history
  int64_t trigger_fires = 0;
  double aggregate_sum = 0.0;
  std::vector<double> spectrum_bins;
};

// One full consumer stack on a fresh loop/router/scope; `drive` feeds it.
Observed Run(const std::function<void(IngestRouter&, MainLoop&)>& drive) {
  SimClock sim;
  MainLoop loop(&sim);
  IngestRouter router;
  Scope scope(&loop, {.name = "consumer", .width = 64});
  scope.SetPollingMode(5);
  SignalId id = scope.FindOrAddBufferSignal("wave");
  Trigger trigger({.edge = TriggerEdge::kRising, .level = 60.0,
                   .hysteresis = 5.0});
  EventAggregator agg(AggregateKind::kSum);
  Observed out;
  scope.AttachTrigger(id, &trigger);
  scope.AttachAggregate(id, &agg);
  scope.AttachSampleSink(id, [&out](int64_t t, double v) {
    out.samples.emplace_back(t, v);
  });
  scope.StartPolling();
  EXPECT_TRUE(router.AddScope(&scope));

  drive(router, loop);
  router.Flush();
  // Run well past the last recorded timestamp: the scope paces buffered
  // samples against its own axis, so the clock must reach them to drain.
  loop.RunForMs(700);

  out.trigger_fires = trigger.fires();
  out.aggregate_sum = agg.Drain(MillisToNanos(1000));
  std::vector<double> values;
  values.reserve(out.samples.size());
  for (const auto& [t, v] : out.samples) {
    values.push_back(v);
  }
  Spectrum spec = ComputeSpectrum(values, /*sample_rate_hz=*/1000.0);
  out.spectrum_bins = spec.power_db;
  router.RemoveScope(&scope);
  return out;
}

}  // namespace replay_equiv

TEST(ReplayTest, ReplayedWindowDrivesConsumersIdentically) {
  using replay_equiv::Observed;
  const std::string path = TempPath("replay_equiv");

  // Live run: a deterministic waveform through router + consumer scope,
  // with a Recorder riding the same router.
  Observed live = replay_equiv::Run([&](IngestRouter& router, MainLoop& loop) {
    Recorder rec({.log = {.extent_bytes = 4096, .max_extents = 16},
                  .poll_period_ms = 5,
                  .loop = &loop});
    ASSERT_TRUE(rec.Start(path));
    ASSERT_TRUE(router.AddScope(rec.scope()));
    for (int64_t t = 0; t < 512; ++t) {
      double v = 50.0 + 49.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 32.0);
      if (t % 100 == 7) {
        v = 120.0;  // spikes the trigger must count
      }
      router.Append("wave", t, v);
      if (t % 32 == 31) {
        router.Flush();
      }
    }
    router.Flush();
    loop.RunForMs(700);  // drain the full recorded span before stopping
    ASSERT_TRUE(router.RemoveScope(rec.scope()));
    rec.Stop();
  });
  ASSERT_FALSE(live.samples.empty());
  ASSERT_GT(live.trigger_fires, 0);

  // Replay run: a fresh, identical consumer stack fed from the file through
  // the normal ingest path - nothing downstream can tell the difference.
  Observed replayed = replay_equiv::Run([&](IngestRouter& router, MainLoop& loop) {
    Replayer replayer;
    ASSERT_TRUE(replayer.Load(path));
    bool done = false;
    ASSERT_TRUE(replayer.Start(
        &loop, 0, 511, /*speed=*/0.0,
        [&router](std::string_view name, int64_t t, double v) {
          router.Append(name, t, v);
        },
        [&done](int64_t) { done = true; }));
    EXPECT_TRUE(done);  // burst mode completes synchronously
    router.Flush();
    loop.RunForMs(50);
  });

  // Bit-exact equivalence, not approximate: same samples, same trigger
  // firings, same aggregate, same spectrum bins.
  EXPECT_EQ(replayed.samples, live.samples);
  EXPECT_EQ(replayed.trigger_fires, live.trigger_fires);
  EXPECT_EQ(replayed.aggregate_sum, live.aggregate_sum);
  ASSERT_EQ(replayed.spectrum_bins.size(), live.spectrum_bins.size());
  for (size_t i = 0; i < live.spectrum_bins.size(); ++i) {
    ASSERT_EQ(replayed.spectrum_bins[i], live.spectrum_bins[i]) << "bin " << i;
  }
  std::remove(path.c_str());
}

TEST(ReplayTest, PacedReplayIsDeterministicUnderSimClock) {
  const std::string path = TempPath("replay_paced");
  {
    ExtentLog log({.extent_bytes = 4096, .max_extents = 8});
    ASSERT_TRUE(log.Open(path));
    for (int64_t t = 0; t < 100; ++t) {
      ASSERT_TRUE(log.Append("sig", t * 10, static_cast<double>(t)));
    }
    log.Close();
  }
  SimClock sim;
  MainLoop loop(&sim);
  Replayer replayer;
  ASSERT_TRUE(replayer.Load(path));
  std::vector<int64_t> emitted_at;  // sim ms at each emission
  int64_t done_emitted = -1;
  ASSERT_TRUE(replayer.Start(
      &loop, 0, 990, /*speed=*/2.0,
      [&](std::string_view, int64_t, double) {
        emitted_at.push_back(static_cast<int64_t>(NanosToMillis(sim.NowNs())));
      },
      [&](int64_t n) { done_emitted = n; }));
  EXPECT_TRUE(replayer.active());
  // 990 recorded ms at 2x = 495 wall ms; run past it.
  loop.RunForMs(600);
  EXPECT_EQ(done_emitted, 100);
  EXPECT_FALSE(replayer.active());
  ASSERT_EQ(emitted_at.size(), 100u);
  // Pacing invariant: record at t_rec ms is emitted once 2x virtual time
  // catches up, i.e. at wall >= t_rec/2, within one tick's granularity.
  for (size_t i = 0; i < emitted_at.size(); ++i) {
    const int64_t t_rec = static_cast<int64_t>(i) * 10;
    EXPECT_GE(emitted_at[i], t_rec / 2) << i;
    EXPECT_LE(emitted_at[i], t_rec / 2 + 2 * Replayer::kTickMs + 1) << i;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Disk-full soak (scripts/check.sh sets GSCOPE_STRESS_SOAK)
// ---------------------------------------------------------------------------

TEST(RecorderSoakTest, DegradedCaptureSoak) {
  if (std::getenv("GSCOPE_STRESS_SOAK") == nullptr) {
    GTEST_SKIP() << "set GSCOPE_STRESS_SOAK=1 to run";
  }
  // Long alternation of healthy / disk-full / dead-disk phases; capture
  // must never crash, never block, and always recover to a readable log.
  const std::string path = TempPath("soak");
  ExtentLog log({.extent_bytes = 1024, .max_extents = 8});
  ASSERT_TRUE(log.Open(path));
  std::mt19937 rng(11);
  int64_t t = 0;
  for (int phase = 0; phase < 200; ++phase) {
    FaultInjector fi(phase + 1);
    const int kind = phase % 4;
    if (kind == 1) {
      fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kFileWrite, ENOSPC, -1));
    } else if (kind == 2) {
      FaultRule eio = FaultInjector::ErrnoStorm(FaultOp::kFileWrite, EIO, 2);
      eio.probability = 0.5;
      fi.AddRule(eio);
    } else if (kind == 3) {
      FaultRule part = FaultInjector::PartialWrites(5);
      part.op = FaultOp::kFileWrite;
      fi.AddRule(part);
    }
    FaultInjector::ScopedInstall guard(&fi);
    std::uniform_int_distribution<int> burst(100, 800);
    const int n = burst(rng);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(log.Append("soak", t, static_cast<double>(t)));
      ++t;
    }
    log.SealNow();
  }
  log.Close();
  ExtentLog reopened({.extent_bytes = 1024, .max_extents = 8});
  ASSERT_TRUE(reopened.Open(path));
  reopened.Close();
  ExtentReader reader;
  ASSERT_TRUE(reader.Open(path));
  std::vector<ReplayRecord> all;
  ASSERT_TRUE(reader.ReadWindow(reader.min_time_ms(), reader.max_time_ms(), &all));
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_LE(all[i - 1].time_ms, all[i].time_ms);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gscope
