#include "core/filter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gscope {
namespace {

TEST(FilterTest, DefaultAlphaPassesThrough) {
  LowPassFilter filter;
  EXPECT_DOUBLE_EQ(filter.Apply(3.5), 3.5);
  EXPECT_DOUBLE_EQ(filter.Apply(-1.0), -1.0);
  EXPECT_DOUBLE_EQ(filter.Apply(100.0), 100.0);
}

TEST(FilterTest, FirstSampleSeedsState) {
  LowPassFilter filter(0.9);
  EXPECT_DOUBLE_EQ(filter.Apply(10.0), 10.0);  // no zero-ramp artifact
}

TEST(FilterTest, PaperEquation) {
  // y_i = alpha * y_{i-1} + (1 - alpha) * x_i
  LowPassFilter filter(0.5);
  EXPECT_DOUBLE_EQ(filter.Apply(10.0), 10.0);
  EXPECT_DOUBLE_EQ(filter.Apply(20.0), 0.5 * 10.0 + 0.5 * 20.0);
  EXPECT_DOUBLE_EQ(filter.Apply(0.0), 0.5 * 15.0 + 0.5 * 0.0);
}

TEST(FilterTest, AlphaOneHoldsFirstSample) {
  LowPassFilter filter(1.0);
  EXPECT_DOUBLE_EQ(filter.Apply(7.0), 7.0);
  EXPECT_DOUBLE_EQ(filter.Apply(100.0), 7.0);
  EXPECT_DOUBLE_EQ(filter.Apply(-100.0), 7.0);
}

TEST(FilterTest, AlphaClamped) {
  LowPassFilter filter(2.0);
  EXPECT_DOUBLE_EQ(filter.alpha(), 1.0);
  filter.set_alpha(-1.0);
  EXPECT_DOUBLE_EQ(filter.alpha(), 0.0);
}

TEST(FilterTest, ResetForgetsHistory) {
  LowPassFilter filter(0.5);
  filter.Apply(10.0);
  filter.Apply(20.0);
  filter.Reset();
  EXPECT_FALSE(filter.primed());
  EXPECT_DOUBLE_EQ(filter.Apply(100.0), 100.0);
}

TEST(FilterTest, ConvergesToConstantInput) {
  LowPassFilter filter(0.8);
  filter.Apply(0.0);
  double y = 0.0;
  for (int i = 0; i < 200; ++i) {
    y = filter.Apply(50.0);
  }
  EXPECT_NEAR(y, 50.0, 1e-6);
}

TEST(FilterTest, SmoothsStepMonotonically) {
  LowPassFilter filter(0.7);
  filter.Apply(0.0);
  double prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    double y = filter.Apply(100.0);
    EXPECT_GT(y, prev);
    EXPECT_LE(y, 100.0);
    prev = y;
  }
}

// Property sweep: for any alpha in [0,1], output stays within the input's
// min/max envelope (a low-pass filter cannot overshoot).
class FilterEnvelopeProperty : public ::testing::TestWithParam<double> {};

TEST_P(FilterEnvelopeProperty, OutputInsideInputEnvelope) {
  double alpha = GetParam();
  LowPassFilter filter(alpha);
  std::vector<double> input = {3.0, -7.0, 12.5, 0.0, 42.0, -42.0, 1.0};
  double lo = -42.0;
  double hi = 42.0;
  for (double x : input) {
    double y = filter.Apply(x);
    EXPECT_GE(y, lo - 1e-12);
    EXPECT_LE(y, hi + 1e-12);
  }
}

TEST_P(FilterEnvelopeProperty, HigherAlphaSmoothsMore) {
  double alpha = GetParam();
  if (alpha >= 1.0) {
    return;  // degenerate: output frozen
  }
  // Feed an alternating signal; measure total variation of the output.
  LowPassFilter filter(alpha);
  LowPassFilter heavier(std::min(1.0, alpha + 0.25));
  double tv_light = 0.0;
  double tv_heavy = 0.0;
  double prev_light = filter.Apply(0.0);
  double prev_heavy = heavier.Apply(0.0);
  for (int i = 1; i < 100; ++i) {
    double x = (i % 2 == 0) ? 10.0 : -10.0;
    double yl = filter.Apply(x);
    double yh = heavier.Apply(x);
    tv_light += std::fabs(yl - prev_light);
    tv_heavy += std::fabs(yh - prev_heavy);
    prev_light = yl;
    prev_heavy = yh;
  }
  EXPECT_LE(tv_heavy, tv_light + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, FilterEnvelopeProperty,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace gscope
