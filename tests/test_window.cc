#include "freq/window.h"

#include <gtest/gtest.h>

namespace gscope {
namespace {

TEST(WindowTest, RectangularIsUnity) {
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(WindowCoefficient(WindowKind::kRectangular, i, 16), 1.0);
  }
}

TEST(WindowTest, HannEndpointsAreZero) {
  EXPECT_NEAR(WindowCoefficient(WindowKind::kHann, 0, 32), 0.0, 1e-12);
  EXPECT_NEAR(WindowCoefficient(WindowKind::kHann, 31, 32), 0.0, 1e-12);
}

TEST(WindowTest, HannPeaksAtCenter) {
  EXPECT_NEAR(WindowCoefficient(WindowKind::kHann, 16, 33), 1.0, 1e-12);
}

TEST(WindowTest, HammingEndpointsNonZero) {
  double w0 = WindowCoefficient(WindowKind::kHamming, 0, 32);
  EXPECT_NEAR(w0, 0.08, 1e-9);
}

TEST(WindowTest, BlackmanEndpointsNearZero) {
  EXPECT_NEAR(WindowCoefficient(WindowKind::kBlackman, 0, 32), 0.0, 1e-9);
}

TEST(WindowTest, DegenerateLengths) {
  EXPECT_DOUBLE_EQ(WindowCoefficient(WindowKind::kHann, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(WindowCoefficient(WindowKind::kHann, 0, 1), 1.0);
}

TEST(WindowTest, ApplyWindowMultiplies) {
  std::vector<double> input = {2.0, 2.0, 2.0, 2.0};
  auto out = ApplyWindow(input, WindowKind::kHann);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(out[i], input[i] * WindowCoefficient(WindowKind::kHann, i, 4));
  }
}

TEST(WindowTest, WindowSumMatchesManualSum) {
  double manual = 0.0;
  for (size_t i = 0; i < 64; ++i) {
    manual += WindowCoefficient(WindowKind::kHamming, i, 64);
  }
  EXPECT_DOUBLE_EQ(WindowSum(WindowKind::kHamming, 64), manual);
}

// Property: every window coefficient lies in [0, 1] for all kinds and sizes.
class WindowRangeProperty
    : public ::testing::TestWithParam<std::tuple<WindowKind, size_t>> {};

TEST_P(WindowRangeProperty, CoefficientsInUnitRange) {
  auto [kind, n] = GetParam();
  for (size_t i = 0; i < n; ++i) {
    double w = WindowCoefficient(kind, i, n);
    EXPECT_GE(w, -1e-12);
    EXPECT_LE(w, 1.0 + 1e-12);
  }
}

TEST_P(WindowRangeProperty, SymmetricAroundCenter) {
  auto [kind, n] = GetParam();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(WindowCoefficient(kind, i, n), WindowCoefficient(kind, n - 1 - i, n), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowRangeProperty,
    ::testing::Combine(::testing::Values(WindowKind::kRectangular, WindowKind::kHann,
                                         WindowKind::kHamming, WindowKind::kBlackman),
                       ::testing::Values(size_t{2}, size_t{3}, size_t{16}, size_t{65},
                                         size_t{256})));

}  // namespace
}  // namespace gscope
