// Cross-module integration tests: the netsim experiment feeding a scope, the
// scheduler demo, and record/replay parity through the render layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/scope.h"
#include "netsim/mxtraf.h"
#include "render/ascii.h"
#include "render/scope_view.h"
#include "runtime/clock.h"
#include "sched/proportion.h"

namespace gscope {
namespace {

TEST(IntegrationTest, NetsimExperimentDrivesScope) {
  // The Figure 4 pipeline end to end: simulator -> FUNC signals -> scope
  // traces -> renderer, with the elephants step change mid-run.
  SimClock clock;
  MainLoop loop(&clock);
  Scope scope(&loop, {.name = "tcp", .width = 200});

  Simulator sim;
  Mxtraf traf(&sim, MxtrafConfig{});
  int32_t elephants = 4;
  traf.SetElephants(elephants);

  SignalId cwnd_id = scope.AddSignal(
      {.name = "CWND",
       .source = MakeFunc([&traf]() { return traf.CwndSegments(0); }),
       .max = 40.0});
  SignalId ele_id = scope.AddSignal({.name = "elephants", .source = &elephants, .max = 40.0});
  scope.SetPollingMode(50);

  constexpr int kTicks = 100;
  for (int i = 0; i < kTicks; ++i) {
    if (i == kTicks / 2) {
      elephants = 8;
      traf.SetElephants(elephants);
    }
    sim.RunForMs(50);
    scope.TickOnce();
  }

  const Trace* cwnd = scope.TraceFor(cwnd_id);
  ASSERT_EQ(cwnd->size(), static_cast<size_t>(kTicks));
  EXPECT_GT(scope.LatestValue(cwnd_id).value_or(0), 0.0);
  // The elephants trace shows the 4 -> 8 step.
  auto ele_values = scope.TraceFor(ele_id)->Values();
  EXPECT_DOUBLE_EQ(ele_values.front(), 4.0);
  EXPECT_DOUBLE_EQ(ele_values.back(), 8.0);

  // Render both ways without crashing, with signal pixels present.
  Canvas canvas(300, 200);
  ScopeView view(&scope);
  view.Render(&canvas);
  const SignalSpec* spec = scope.SpecFor(cwnd_id);
  EXPECT_GT(canvas.CountPixels(spec->color.value()), 0);
  std::string ascii = RenderAscii(scope);
  EXPECT_FALSE(ascii.empty());
}

TEST(IntegrationTest, SchedulerProportionsAsDynamicSignals) {
  // The paper's scheduler demo: one signal per process, added and removed at
  // run time while the scope polls.
  SimClock clock;
  MainLoop loop(&clock);
  Scope scope(&loop, {.name = "sched", .width = 128});
  ProportionScheduler sched;

  auto add_process_signal = [&](const std::string& name, double demand) {
    int pid = sched.AddProcess(
        {.name = name, .period_ms = 50, .base_demand = demand, .demand_amplitude = 0.1});
    SignalSpec spec;
    spec.name = name;
    spec.source = MakeFunc([&sched, pid]() { return sched.ProportionOf(pid) * 100.0; });
    return std::make_pair(pid, scope.AddSignal(spec));
  };

  auto [pid_a, sig_a] = add_process_signal("mpeg", 0.4);
  auto [pid_b, sig_b] = add_process_signal("audio", 0.2);
  scope.SetPollingMode(50);

  for (int i = 0; i < 50; ++i) {
    sched.Step(50);
    scope.TickOnce();
  }
  EXPECT_GT(scope.LatestValue(sig_a).value_or(0), 0.0);
  EXPECT_GT(scope.LatestValue(sig_b).value_or(0), 0.0);

  // Add a third process mid-run (dynamic signal addition).
  auto [pid_c, sig_c] = add_process_signal("render", 0.3);
  for (int i = 0; i < 50; ++i) {
    sched.Step(50);
    scope.TickOnce();
  }
  EXPECT_GT(scope.LatestValue(sig_c).value_or(0), 0.0);
  EXPECT_EQ(scope.signal_count(), 3u);

  // Remove one (process exits).
  sched.RemoveProcess(pid_b);
  scope.RemoveSignal(sig_b);
  for (int i = 0; i < 10; ++i) {
    sched.Step(50);
    scope.TickOnce();
  }
  EXPECT_EQ(scope.signal_count(), 2u);
}

TEST(IntegrationTest, RecordReplayProducesSameTraceTail) {
  SimClock clock;
  MainLoop loop(&clock);
  std::string path = ::testing::TempDir() + "integration_record.dat";

  std::vector<double> recorded_values;
  {
    Scope live(&loop, {.name = "live", .width = 64});
    double v = 0.0;
    SignalId id = live.AddSignal({.name = "wave", .source = &v});
    live.SetPollingMode(10);
    ASSERT_TRUE(live.StartRecording(path));
    live.StartPolling();
    for (int i = 0; i < 40; ++i) {
      v = 50.0 + 40.0 * std::sin(i * 0.3);
      loop.RunForMs(10);
    }
    live.StopRecording();
    recorded_values = live.TraceFor(id)->Values();
  }

  // Single-signal recordings use the two-field tuple form; declare the
  // destination signal so the replay routes into it.
  Scope replay(&loop, {.name = "replay", .width = 64});
  SignalId id = replay.AddSignal({.name = "wave", .source = BufferSource{}});
  ASSERT_TRUE(replay.SetPlaybackMode(path, 10));
  replay.StartPolling();
  loop.RunForMs(5000);
  auto replayed = replay.TraceFor(id)->Values();

  // The replay contains the same values (first live tick may differ by one
  // column due to start alignment, so compare the common tail).
  ASSERT_GE(replayed.size(), 10u);
  ASSERT_GE(recorded_values.size(), replayed.size());
  size_t n = replayed.size();
  auto tail = std::vector<double>(recorded_values.end() - static_cast<long>(n),
                                  recorded_values.end());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(replayed[i], tail[i], 1e-12) << "column " << i;
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, EcnVersusTcpExperimentShape) {
  // Condensed Figures 4+5 assertion through the full pipeline: run both
  // variants, feed CWND to scopes, verify TCP's trace touches cwnd=1 while
  // ECN's stays above.
  auto run_variant = [](bool ecn) {
    SimClock clock;
    MainLoop loop(&clock);
    Scope scope(&loop, {.name = ecn ? "ecn" : "tcp", .width = 400});
    Simulator sim;
    MxtrafConfig config;
    if (ecn) {
      config.EnableEcnRed();
    }
    Mxtraf traf(&sim, config);
    traf.SetElephants(8);
    SignalId id = scope.AddSignal(
        {.name = "CWND", .source = MakeFunc([&traf]() { return traf.CwndSegments(0); }),
         .max = 40.0});
    scope.SetPollingMode(50);
    for (int i = 0; i < 400; ++i) {
      if (i == 200) {
        traf.SetElephants(16);
      }
      sim.RunForMs(50);
      scope.TickOnce();
    }
    double min_cwnd = 1e9;
    for (double v : scope.TraceFor(id)->Values()) {
      min_cwnd = std::min(min_cwnd, v);
    }
    return std::make_pair(min_cwnd, traf.TotalTimeouts());
  };

  auto [tcp_min, tcp_timeouts] = run_variant(false);
  auto [ecn_min, ecn_timeouts] = run_variant(true);
  EXPECT_GT(tcp_timeouts, 0);
  EXPECT_LT(ecn_timeouts, tcp_timeouts);
  EXPECT_LE(tcp_min, 2.0);  // TCP's window collapses toward 1
}

}  // namespace
}  // namespace gscope
