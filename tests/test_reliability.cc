// Self-healing transport tests: deterministic fault injection, automatic
// reconnect with capped backoff, PING/PONG + TIME liveness, and graceful
// degradation (adaptive overflow policy, server-side tap downgrade).
//
// "Faults in Linux" (PAPERS.md): error-handling code that is never executed
// is where defects concentrate.  Every scenario here scripts the unhealthy
// path - EINTR storms, 1-byte reads, mid-frame kills, dead servers, pinned
// subscribers - and asserts the transport's invariants hold regardless:
// frames are never torn by a *drop decision*, accounting stays byte-exact,
// and recovery is bounded by the backoff cap.
//
// Registered RUN_SERIAL + LABELS stress: the injector is process-global and
// several tests saturate loopback buffers on purpose.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/scope.h"
#include "net/control_client.h"
#include "net/fault_injector.h"
#include "net/socket.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"
#include "stress_harness.h"

namespace gscope {
namespace {

class ReliabilityTest : public ::testing::Test {
 protected:
  ReliabilityTest() : scope_(&loop_, {.name = "rel", .width = 64}) {
    scope_.SetPollingMode(5);
  }

  // Runs the loop until `pred` holds or the budget expires.
  bool RunUntil(const std::function<bool()>& pred, int max_ms = 2000) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop_.RunForMs(1);
    }
    return pred();
  }

  // A loopback port with nothing listening on it (bind, read, release).
  static uint16_t DeadPort() {
    uint16_t port = 0;
    Socket listener = Socket::Listen(0, &port);
    EXPECT_TRUE(listener.valid());
    listener.Close();
    return port;
  }

  MainLoop loop_;  // real clock: sockets need real readiness
  Scope scope_;
};

// ---------------------------------------------------------------------------
// Fault injector mechanics
// ---------------------------------------------------------------------------

TEST_F(ReliabilityTest, InjectorScheduleIsDeterministic) {
  // Same seed + same rules + same call sequence => identical decisions,
  // including the probabilistic coin flips.
  auto make = [](uint32_t seed) {
    auto fi = std::make_unique<FaultInjector>(seed);
    FaultRule coin = FaultInjector::ErrnoStorm(FaultOp::kRead, EINTR, -1);
    coin.probability = 0.4;
    fi->AddRule(coin);
    fi->AddRule(FaultInjector::PartialWrites(3, 7));
    return fi;
  };
  auto a = make(42);
  auto b = make(42);
  for (int i = 0; i < 300; ++i) {
    FaultDecision da = a->Intercept(FaultOp::kRead, 9, 128);
    FaultDecision db = b->Intercept(FaultOp::kRead, 9, 128);
    EXPECT_EQ(da.fail, db.fail) << "call " << i;
    EXPECT_EQ(da.err, db.err) << "call " << i;
    FaultDecision wa = a->Intercept(FaultOp::kWrite, 9, 128);
    FaultDecision wb = b->Intercept(FaultOp::kWrite, 9, 128);
    EXPECT_EQ(wa.max_len, wb.max_len) << "call " << i;
  }
  EXPECT_EQ(a->stats().errnos_injected, b->stats().errnos_injected);
  EXPECT_GT(a->stats().errnos_injected, 0);
  EXPECT_EQ(a->stats().partial_writes, 7);  // count-limited rule exhausted
}

TEST_F(ReliabilityTest, InjectorSkipAndCountArmPrecisely) {
  FaultInjector fi(1);
  fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kRead, EAGAIN, /*count=*/2,
                                       /*skip=*/3));
  for (int i = 0; i < 8; ++i) {
    FaultDecision d = fi.Intercept(FaultOp::kRead, 4, 64);
    bool should_fail = i >= 3 && i < 5;  // calls 4 and 5 of 8
    EXPECT_EQ(d.fail, should_fail) << "call " << i;
  }
  EXPECT_EQ(fi.stats().errnos_injected, 2);
  EXPECT_EQ(fi.stats().intercepted_calls, 8);
}

TEST_F(ReliabilityTest, ShimClampsOnlyWhileInstalled) {
  FaultInjector fi(1);
  fi.AddRule(FaultInjector::ShortReads(1));
  size_t len = 100;
  {
    FaultInjector::ScopedInstall guard(&fi);
    EXPECT_FALSE(FaultInjector::Shim(FaultOp::kRead, 5, &len));
    EXPECT_EQ(len, 1u);
  }
  len = 100;
  EXPECT_FALSE(FaultInjector::Shim(FaultOp::kRead, 5, &len));
  EXPECT_EQ(len, 100u);  // uninstalled: untouched
}

// ---------------------------------------------------------------------------
// Syscall-level robustness (the EINTR/EAGAIN audit's regression tests)
// ---------------------------------------------------------------------------

TEST_F(ReliabilityTest, EintrStormsAreInvisibleToCallers) {
  // Signal-storm mode: every accept/read/write syscall is interrupted
  // several times in a row.  The socket layer must retry internally; no
  // caller may observe a spurious failure or a torn line.
  FaultInjector fi(7);
  fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kAccept, EINTR, 2));
  fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kRead, EINTR, 40));
  fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kWrite, EINTR, 40));
  FaultInjector::ScopedInstall guard(&fi);

  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client.Send(scope_.NowMs(), i, "storm_sig"));
  }
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 40; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_EQ(client.stats().tuples_dropped, 0);
  EXPECT_GT(fi.stats().errnos_injected, 0);
}

TEST_F(ReliabilityTest, OneByteReadsPreserveFraming) {
  FaultInjector fi(7);
  fi.AddRule(FaultInjector::ShortReads(1));
  FaultInjector::ScopedInstall guard(&fi);

  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client.Send(scope_.NowMs(), i, "byte_sig"));
  }
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 40; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_GT(fi.stats().short_reads, 0);
}

TEST_F(ReliabilityTest, PartialWritesPreserveFraming) {
  FaultInjector fi(7);
  fi.AddRule(FaultInjector::PartialWrites(3));
  FaultInjector::ScopedInstall guard(&fi);

  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient client(&loop_);
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client.Send(scope_.NowMs(), i, "frag_sig"));
  }
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 40; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_GT(fi.stats().partial_writes, 0);
}

TEST_F(ReliabilityTest, MidStreamKillTriggersReconnectAndResync) {
  // The 21st write call shuts the socket down mid-backlog.  The client must
  // notice, back off, reconnect, and keep delivering; the server's framing
  // resynchronizes (at most the killed connection's torn tail line is lost).
  FaultInjector fi(7);
  fi.AddRule(FaultInjector::KillConnection(FaultOp::kWrite, /*skip=*/20));
  FaultInjector::ScopedInstall guard(&fi);

  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  StreamClient::Options copt;
  copt.reconnect.enabled = true;
  copt.reconnect.initial_backoff_ms = 2;
  copt.reconnect.max_backoff_ms = 20;
  copt.reconnect.seed = 5;
  StreamClient client(&loop_, copt);
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return client.connected(); }));

  int value = 0;
  ASSERT_TRUE(RunUntil([&]() {
    if (client.connected()) {
      client.Send(scope_.NowMs(), value++, "kill_sig");
    }
    return client.stats().reconnects >= 1;
  }));
  EXPECT_EQ(fi.stats().kills, 1);

  // Post-recovery the stream flows again.
  int64_t before = server.stats().tuples;
  ASSERT_TRUE(RunUntil([&]() {
    if (client.connected()) {
      client.Send(scope_.NowMs(), value++, "kill_sig");
    }
    return server.stats().tuples >= before + 10;
  }));
  // A kill can tear at most the in-flight line; drop decisions never tear.
  EXPECT_LE(server.stats().parse_errors, 1);
}

// ---------------------------------------------------------------------------
// Reconnect state machine
// ---------------------------------------------------------------------------

TEST_F(ReliabilityTest, BackoffGrowsToCapWithBoundedJitter) {
  const uint16_t dead_port = DeadPort();
  StreamClient::Options copt;
  copt.reconnect.enabled = true;
  copt.reconnect.initial_backoff_ms = 5;
  copt.reconnect.max_backoff_ms = 40;
  copt.reconnect.multiplier = 2.0;
  copt.reconnect.jitter_frac = 0.25;
  copt.reconnect.seed = 3;
  StreamClient client(&loop_, copt);

  std::vector<ConnectState> states;
  std::vector<int64_t> backoffs;
  client.SetStateCallback([&](ConnectState s) {
    states.push_back(s);
    if (s == ConnectState::kBackoff) {
      backoffs.push_back(client.last_backoff_ms());
    }
  });
  ASSERT_TRUE(client.Connect(dead_port));
  ASSERT_TRUE(RunUntil([&]() { return client.stats().connect_attempts >= 5; }, 4000));

  bool saw_connecting = false;
  bool saw_backoff = false;
  for (ConnectState s : states) {
    saw_connecting = saw_connecting || s == ConnectState::kConnecting;
    saw_backoff = saw_backoff || s == ConnectState::kBackoff;
  }
  EXPECT_TRUE(saw_connecting);
  EXPECT_TRUE(saw_backoff);
  ASSERT_GE(backoffs.size(), 4u);
  int64_t max_seen = 0;
  for (size_t i = 0; i < backoffs.size(); ++i) {
    EXPECT_GE(backoffs[i], copt.reconnect.initial_backoff_ms) << "delay " << i;
    EXPECT_LE(backoffs[i], static_cast<int64_t>(
                               copt.reconnect.max_backoff_ms *
                               (1.0 + copt.reconnect.jitter_frac)))
        << "delay " << i;
    max_seen = std::max(max_seen, backoffs[i]);
  }
  // Exponential growth reached the cap region (recovery is bounded by it).
  EXPECT_GE(max_seen, copt.reconnect.max_backoff_ms);
  EXPECT_GE(client.stats().connect_failures, 4);
  client.Close();
  EXPECT_EQ(client.state(), ConnectState::kDisconnected);
}

TEST_F(ReliabilityTest, MaxAttemptsSettlesInFailed) {
  const uint16_t dead_port = DeadPort();
  StreamClient::Options copt;
  copt.reconnect.enabled = true;
  copt.reconnect.initial_backoff_ms = 2;
  copt.reconnect.max_backoff_ms = 8;
  copt.reconnect.max_attempts = 3;
  StreamClient client(&loop_, copt);
  ASSERT_TRUE(client.Connect(dead_port));
  ASSERT_TRUE(RunUntil([&]() { return client.state() == ConnectState::kFailed; }));
  EXPECT_EQ(client.stats().connect_attempts, 3);
  EXPECT_NE(client.last_error(), 0);
}

TEST_F(ReliabilityTest, ReconnectEstablishesOnceServerAppears) {
  const uint16_t port = DeadPort();
  StreamClient::Options copt;
  copt.reconnect.enabled = true;
  copt.reconnect.initial_backoff_ms = 2;
  copt.reconnect.max_backoff_ms = 20;
  StreamClient client(&loop_, copt);
  ASSERT_TRUE(client.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return client.stats().connect_failures >= 2; }));

  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(RunUntil([&]() { return server.Listen(port); }));
  ASSERT_TRUE(RunUntil([&]() { return client.connected(); }));
  EXPECT_GT(client.stats().connect_attempts, client.stats().connect_failures);

  // The established link carries data.
  client.Send(scope_.NowMs(), 1.0, "late_start");
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
}

TEST_F(ReliabilityTest, ControlClientResumesSessionAcrossServerRestart) {
  auto server = std::make_unique<StreamServer>(&loop_, &scope_);
  ASSERT_TRUE(server->Listen(0));
  const uint16_t port = server->port();

  ControlClientOptions vopt;
  vopt.reconnect.enabled = true;
  vopt.reconnect.initial_backoff_ms = 2;
  vopt.reconnect.max_backoff_ms = 20;
  ControlClient viewer(&loop_, vopt);
  int64_t tuples_seen = 0;
  viewer.SetTupleCallback([&](const TupleView&) { ++tuples_seen; });
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  ASSERT_TRUE(viewer.Subscribe("rel_*"));
  ASSERT_TRUE(viewer.SetDelay(5));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 0);  // declared live, not replayed

  // Hard restart: every connection dies, then the port comes back.
  server->Close();
  server = std::make_unique<StreamServer>(&loop_, &scope_);
  ASSERT_TRUE(RunUntil([&]() { return server->Listen(port); }));

  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().reconnects >= 1; }));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().resumed_commands >= 2; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 2);  // SUB + DELAY, exactly once

  // The resumed subscription is live: a producer's tuple reaches the viewer.
  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 4.2, "rel_cwnd");
    loop_.RunForMs(2);
    return tuples_seen >= 1;
  }));
}

TEST_F(ReliabilityTest, BinaryViewerRenegotiatesAcrossServerRestart) {
  // The wire format is per connection, not per session: a reconnect must
  // renegotiate HELLO BIN 1 on its own, BEFORE the session replay, so the
  // replayed subscription lands on an already-framed connection.
  auto server = std::make_unique<StreamServer>(&loop_, &scope_);
  ASSERT_TRUE(server->Listen(0));
  scope_.StartPolling();  // live scope clock: session scopes copy its origin,
                          // so NowMs() stamps land inside the delivery window
  const uint16_t port = server->port();

  ControlClientOptions vopt;
  vopt.reconnect.enabled = true;
  vopt.reconnect.initial_backoff_ms = 2;
  vopt.reconnect.max_backoff_ms = 20;
  vopt.wire_format = WireFormat::kBinary;
  ControlClient viewer(&loop_, vopt);
  int64_t tuples_seen = 0;
  int64_t last_time = -1;
  double last_value = 0.0;
  viewer.SetTupleCallback([&](const TupleView& t) {
    ++tuples_seen;
    last_time = t.time_ms;
    last_value = t.value;
  });
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.wire_binary(); }));
  ASSERT_TRUE(viewer.Subscribe("rel_*"));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 1; }));
  EXPECT_EQ(viewer.stats().resumed_commands, 0);

  server->Close();
  server = std::make_unique<StreamServer>(&loop_, &scope_);
  ASSERT_TRUE(RunUntil([&]() { return server->Listen(port); }));

  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().reconnects >= 1; }));
  ASSERT_TRUE(RunUntil([&]() { return viewer.wire_binary(); }));
  EXPECT_EQ(viewer.stats().resumed_commands, 1);  // the SUB, exactly once

  // Binary tuples flow end to end post-restart: a framed producer's sample
  // crosses the server and reaches the renegotiated viewer bit-exact.  The
  // stamps must sit inside the session's delivery window (late samples are
  // dropped, future ones held), so each attempt stamps the scope's own now.
  StreamClient::Options popt;
  popt.wire_format = WireFormat::kBinary;
  StreamClient producer(&loop_, popt);
  ASSERT_TRUE(producer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return producer.wire_binary(); }));
  std::vector<int64_t> stamps;
  ASSERT_TRUE(RunUntil([&]() {
    const int64_t stamp = static_cast<int64_t>(scope_.NowMs());
    stamps.push_back(stamp);
    producer.Send(stamp, 4.25, "rel_bin");
    loop_.RunForMs(2);
    return tuples_seen >= 1;
  }));
  EXPECT_NE(std::find(stamps.begin(), stamps.end(), last_time), stamps.end())
      << "echoed time " << last_time << " was never sent";
  EXPECT_EQ(last_value, 4.25);
  EXPECT_GT(server->stats().frames_rx, 0);
  EXPECT_EQ(server->stats().frames_crc_errors, 0);
}

TEST_F(ReliabilityTest, UnsupportedHelloStaysTextAndKeepsParsing) {
  // Negotiation failure is not an error state: the server answers ERR and
  // the connection continues as plain text, byte-identical to a client that
  // never tried.
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 1; }));

  const std::string hello = "HELLO BIN 99\n";
  ASSERT_TRUE(RunUntil([&]() {
    IoResult r = raw.Write(hello.data(), hello.size());
    return r.ok() && r.bytes == hello.size();
  }));
  std::string reply;
  char buf[256];
  ASSERT_TRUE(RunUntil([&]() {
    IoResult r = raw.Read(buf, sizeof(buf));
    if (r.ok()) {
      reply.append(buf, r.bytes);
    }
    return reply.find('\n') != std::string::npos;
  }));
  EXPECT_NE(reply.find("ERR HELLO"), std::string::npos) << reply;

  const std::string line = "123 4.5 neg_sig\n";
  ASSERT_TRUE(RunUntil([&]() {
    IoResult r = raw.Write(line.data(), line.size());
    return r.ok() && r.bytes == line.size();
  }));
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_EQ(server.stats().frames_rx, 0);  // never left text
}

// ---------------------------------------------------------------------------
// Liveness: PING/PONG, idle timeouts, TIME sync
// ---------------------------------------------------------------------------

TEST_F(ReliabilityTest, PingPongRoundTripsAndMeasuresRtt) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  ControlClientOptions vopt;
  vopt.ping_interval_ms = 5;
  ControlClient viewer(&loop_, vopt);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().pongs_received >= 2; }));
  EXPECT_GE(viewer.stats().pings_sent, viewer.stats().pongs_received);
  EXPECT_GE(server.stats().pings_received, 2);
  EXPECT_GE(viewer.last_rtt_ms(), 0);
  EXPECT_EQ(viewer.stats().liveness_timeouts, 0);
}

TEST_F(ReliabilityTest, IdleTimeoutDeclaresSilentLinkDead) {
  // An accepting-but-mute peer: connections succeed, nothing ever answers.
  uint16_t port = 0;
  Socket listener = Socket::Listen(0, &port);
  ASSERT_TRUE(listener.valid());
  std::vector<Socket> accepted;
  SourceId watch =
      loop_.AddIoWatch(listener.fd(), IoCondition::kIn, [&](int, IoCondition) {
        Socket s = listener.Accept();
        if (s.valid()) {
          accepted.push_back(std::move(s));
        }
        return true;
      });

  ControlClientOptions vopt;
  vopt.ping_interval_ms = 10;
  vopt.idle_timeout_ms = 40;
  ControlClient viewer(&loop_, vopt);
  ASSERT_TRUE(viewer.Connect(port));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().liveness_timeouts >= 1; }));
  EXPECT_EQ(viewer.state(), ConnectState::kDisconnected);  // no reconnect opt-in
  loop_.Remove(watch);
}

TEST_F(ReliabilityTest, ServerDropsIdleClientButPingersSurvive) {
  StreamServerOptions sopt;
  sopt.idle_timeout_ms = 30;
  StreamServer server(&loop_, &scope_, sopt);
  ASSERT_TRUE(server.Listen(0));

  // A pinging viewer and a mute raw connection.
  ControlClientOptions vopt;
  vopt.ping_interval_ms = 5;
  ControlClient viewer(&loop_, vopt);
  ASSERT_TRUE(viewer.Connect(server.port()));
  Socket mute = Socket::Connect(server.port());
  ASSERT_TRUE(mute.valid());
  ASSERT_TRUE(RunUntil([&]() { return server.client_count() == 2; }));

  ASSERT_TRUE(RunUntil([&]() { return server.stats().clients_idle_dropped >= 1; }));
  loop_.RunForMs(60);  // several more sweeps
  EXPECT_EQ(server.stats().clients_idle_dropped, 1);  // only the mute one
  EXPECT_EQ(server.client_count(), 1u);
  EXPECT_TRUE(viewer.connected());
}

TEST_F(ReliabilityTest, TimeSyncMapsLocalClockOntoServerScope) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();  // anchor the display timebase the session adopts
  ControlClientOptions vopt;
  vopt.sync_time_on_connect = true;
  ControlClient viewer(&loop_, vopt);
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.has_time_offset(); }));
  EXPECT_GE(viewer.stats().time_syncs, 1);
  EXPECT_GE(server.stats().time_requests, 1);
  // Same host, same steady clock: the midpoint estimate lands within a
  // scheduling-noise bound of the server scope's own time.
  int64_t diff = viewer.ServerNowMs() - static_cast<int64_t>(scope_.NowMs());
  EXPECT_LE(std::abs(diff), 100) << "offset " << viewer.time_offset_ms();
}

TEST_F(ReliabilityTest, StatsVerbReportsRobustnessCounters) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  ControlClient viewer(&loop_);
  std::string stats_line;
  viewer.SetReplyCallback([&](std::string_view line) {
    if (line.find("STATS") != std::string_view::npos) {
      stats_line = std::string(line);
    }
  });
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));
  ASSERT_TRUE(viewer.Ping());
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().pongs_received >= 1; }));
  ASSERT_TRUE(viewer.RequestStats());
  ASSERT_TRUE(RunUntil([&]() { return !stats_line.empty(); }));
  EXPECT_NE(stats_line.find("pings_received 1"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find("taps_downgraded 0"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find("policy_switches 0"), std::string::npos) << stats_line;
  // The wire-format keys are append-only additions to the same line; a text
  // viewer reports wire_format 0.
  EXPECT_NE(stats_line.find("frames_rx 0"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find("frames_crc_errors 0"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find("dict_entries 0"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find("wire_format 0"), std::string::npos) << stats_line;
}

TEST_F(ReliabilityTest, StatsVerbReportsBinaryWireCounters) {
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  ControlClientOptions vopt;
  vopt.wire_format = WireFormat::kBinary;
  vopt.frame_samples = 4;
  ControlClient viewer(&loop_, vopt);
  std::string stats_line;
  viewer.SetReplyCallback([&](std::string_view line) {
    if (line.find("STATS") != std::string_view::npos) {
      stats_line = std::string(line);
    }
  });
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.wire_binary(); }));
  // Push a few tuples upstream so sample frames (and a dictionary binding)
  // actually crossed the wire before the scrape.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(viewer.Send(scope_.NowMs(), i, "wire_sig"));
  }
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 8; }));
  ASSERT_TRUE(viewer.RequestStats());
  ASSERT_TRUE(RunUntil([&]() { return !stats_line.empty(); }));
  EXPECT_EQ(stats_line.find("frames_rx 0"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find("frames_crc_errors 0"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find("dict_entries 1"), std::string::npos) << stats_line;
  EXPECT_NE(stats_line.find("wire_format 1"), std::string::npos) << stats_line;
  EXPECT_EQ(server.stats().parse_errors, 0);
}

TEST_F(ReliabilityTest, TimeSyncComposesWithBinaryWire) {
  // Two independent time mechanisms must not interfere: frame timestamps
  // (i64 base + i32 deltas) reconstruct the PRODUCER's stamps bit-exact on
  // the server, while the viewer's TIME sync separately maps its local clock
  // onto the server scope.  The producer backdates every stamp by a fixed
  // lag - different from every live clock in the rig, but inside the
  // viewer's widened delay window so the echo actually delivers.  (Decades-
  // scale skew is covered by the stress harness's clock-skew run, which
  // observes ingest server-side with no delivery window in the way.)
  StreamServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  loop_.RunForMs(150);  // move scope time off zero so backdated stamps are positive

  ControlClientOptions vopt;
  vopt.sync_time_on_connect = true;
  vopt.wire_format = WireFormat::kBinary;
  ControlClient viewer(&loop_, vopt);
  std::vector<int64_t> echoed_times;
  viewer.SetTupleCallback([&](const TupleView& t) { echoed_times.push_back(t.time_ms); });
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.wire_binary() && viewer.has_time_offset(); }));
  ASSERT_TRUE(viewer.Subscribe("tsync_*"));
  ASSERT_TRUE(viewer.SetDelay(2000));
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));

  StreamClient::Options popt;
  popt.wire_format = WireFormat::kBinary;
  popt.frame_samples = 4;
  StreamClient producer(&loop_, popt);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.wire_binary(); }));

  const int64_t kLagMs = 100;  // the producer's clock runs 100 ms behind
  std::vector<int64_t> sent_stamps;
  ASSERT_TRUE(RunUntil([&]() {
    const int64_t stamp = static_cast<int64_t>(scope_.NowMs()) - kLagMs;
    sent_stamps.push_back(stamp);
    producer.Send(stamp, static_cast<double>(sent_stamps.size()), "tsync_sig");
    loop_.RunForMs(2);
    return static_cast<int64_t>(echoed_times.size()) >= 8;
  }));
  // Every echoed timestamp is one the producer actually stamped: the frame's
  // base + delta reconstruction introduced zero error.
  for (size_t i = 0; i < echoed_times.size(); ++i) {
    EXPECT_NE(std::find(sent_stamps.begin(), sent_stamps.end(), echoed_times[i]),
              sent_stamps.end())
        << "echo " << i << " time " << echoed_times[i];
  }
  // The TIME offset still maps the viewer's local clock onto the server
  // scope; the producer's skewed stamps never contaminated it.
  int64_t diff = viewer.ServerNowMs() - static_cast<int64_t>(scope_.NowMs());
  EXPECT_LE(std::abs(diff), 100) << "offset " << viewer.time_offset_ms();
  EXPECT_EQ(server.stats().frames_crc_errors, 0);
  EXPECT_EQ(server.stats().parse_errors, 0);
}

// ---------------------------------------------------------------------------
// Graceful degradation: adaptive overflow policy (SimClock-deterministic)
// ---------------------------------------------------------------------------

TEST(ReliabilityAdaptiveTest, PolicyDegradesUnderSustainedStallThenReverts) {
  SimClock sim;
  MainLoop loop(&sim);
  FramedWriter writer(&loop, /*max_buffer=*/256);
  writer.SetPolicy(OverflowPolicy::kDropNewest);
  FramedWriter::AdaptiveOptions adaptive;
  adaptive.adapt_policy = true;
  adaptive.stall_window_ns = MillisToNanos(10);
  adaptive.low_water_frac = 0.5;
  writer.SetAdaptive(adaptive);

  auto commit = [&](size_t n) {
    std::string& buf = writer.BeginFrame();
    buf.append(n, 'x');
    return writer.CommitFrame();
  };

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(commit(64));  // exactly at the cap, no overflow yet
  }
  EXPECT_FALSE(commit(64));  // first overflow: the stall clock starts
  EXPECT_EQ(writer.policy(), OverflowPolicy::kDropNewest);
  sim.AdvanceMs(12);         // stall persists past the window
  EXPECT_TRUE(commit(64));   // degrade fires for this very commit: evict+fit
  EXPECT_EQ(writer.policy(), OverflowPolicy::kDropOldest);
  EXPECT_EQ(writer.configured_policy(), OverflowPolicy::kDropNewest);
  EXPECT_EQ(writer.stats().policy_switches, 1);
  EXPECT_GE(writer.stats().frames_evicted, 1);

  // Recovery: the peer drains, the backlog stays calm a full window, and the
  // base policy is restored.
  int fds[2];
  ASSERT_EQ(0, pipe2(fds, O_NONBLOCK));
  writer.Attach(fds[1]);
  loop.RunForMs(2);
  EXPECT_EQ(writer.pending_bytes(), 0u);
  sim.AdvanceMs(12);
  EXPECT_TRUE(commit(32));  // below low water after a calm window: revert
  EXPECT_EQ(writer.policy(), OverflowPolicy::kDropNewest);
  EXPECT_EQ(writer.stats().policy_switches, 2);
  writer.Detach();
  close(fds[0]);
  close(fds[1]);
}

TEST(ReliabilityAdaptiveTest, BlockDeadlineTunedToObservedDrainRate) {
  SimClock sim;
  MainLoop loop(&sim);
  FramedWriter writer(&loop, /*max_buffer=*/256);
  writer.SetPolicy(OverflowPolicy::kBlockWithDeadline, MillisToNanos(20));
  FramedWriter::AdaptiveOptions adaptive;
  adaptive.tune_block_deadline = true;
  adaptive.min_block_deadline_ns = MillisToNanos(1);
  adaptive.max_block_deadline_ns = MillisToNanos(5);
  writer.SetAdaptive(adaptive);
  EXPECT_EQ(writer.effective_block_deadline_ns(), MillisToNanos(20));

  int fds[2];
  ASSERT_EQ(0, pipe2(fds, O_NONBLOCK));
  writer.Attach(fds[1]);

  auto commit = [&](size_t n) {
    std::string& buf = writer.BeginFrame();
    buf.append(n, 'x');
    return writer.CommitFrame();
  };

  // Teach the EWMA a drain rate: 64 bytes every 2 virtual ms.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(commit(64));
    loop.RunForMs(2);
  }
  ASSERT_GT(writer.drain_rate_bps(), 0.0);

  // An overflowing commit budgets its wait from the rate, not the fixed
  // 20ms deadline, clamped into [min, max].
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(commit(64));  // queue 192 without draining
  }
  EXPECT_TRUE(commit(128));  // overflow: blocks briefly, pipe has room
  EXPECT_GE(writer.stats().deadline_tunes, 1);
  EXPECT_GE(writer.effective_block_deadline_ns(), adaptive.min_block_deadline_ns);
  EXPECT_LE(writer.effective_block_deadline_ns(), adaptive.max_block_deadline_ns);
  writer.Detach();
  close(fds[0]);
  close(fds[1]);
}

// ---------------------------------------------------------------------------
// Graceful degradation: server-side tap downgrade
// ---------------------------------------------------------------------------

TEST_F(ReliabilityTest, ServerDegradesPinnedSubscriberThenRestores) {
  StreamServerOptions sopt;
  sopt.control_poll_period_ms = 1;
  sopt.control_max_buffer = 16 << 10;
  sopt.control_sndbuf_bytes = 4096;
  sopt.degrade_stalled_ms = 20;
  StreamServer server(&loop_, &scope_, sopt);
  ASSERT_TRUE(server.Listen(0));
  // Anchor scope time BEFORE the session exists: the session scope adopts
  // this timebase, so producer stamps are judged on a live, shared axis.
  scope_.StartPolling();

  // A raw subscriber that subscribes and then never reads: its echo backlog
  // pins against the cap.
  Socket sub = Socket::Connect(server.port());
  ASSERT_TRUE(sub.valid());
  sub.SetRecvBufferBytes(1024);
  const std::string subscribe = "SUB load*\n";
  ASSERT_TRUE(RunUntil([&]() {
    IoResult r = sub.Write(subscribe.data(), subscribe.size());
    return r.ok() && r.bytes == subscribe.size();
  }));
  ASSERT_TRUE(RunUntil([&]() { return server.control_session_count() == 1; }));

  // Flood: fat frames through one signal so the echo outruns the mute peer.
  StreamClient::Options popt;
  popt.max_buffer = 32 << 10;
  StreamClient producer(&loop_, popt);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  const std::string fat_name = "load_" + std::string(180, 'x');
  ASSERT_TRUE(RunUntil(
      [&]() {
        for (int i = 0; i < 50; ++i) {
          producer.Send(scope_.NowMs(), i, fat_name);
        }
        return server.stats().taps_downgraded >= 1;
      },
      5000));
  EXPECT_GE(server.stats().echo_dropped + server.stats().echo_evicted, 1);

  // Recovery: the subscriber wakes up and drains; after a calm window the
  // per-sample tap comes back, announced in-band.
  std::string drained;
  char buf[4096];
  ASSERT_TRUE(RunUntil(
      [&]() {
        while (true) {
          IoResult r = sub.Read(buf, sizeof(buf));
          if (!r.ok()) {
            break;
          }
          drained.append(buf, r.bytes);
        }
        return server.stats().taps_restored >= 1;
      },
      5000));
  ASSERT_TRUE(RunUntil(
      [&]() {
        while (true) {
          IoResult r = sub.Read(buf, sizeof(buf));
          if (!r.ok()) {
            break;
          }
          drained.append(buf, r.bytes);
        }
        return drained.find("NOTICE RESTORE every-sample") != std::string::npos;
      },
      3000))
      << "restore NOTICE not observed";
  // The degrade NOTICE is best-effort (it rides the pinned writer): counters
  // are the authoritative record.
  EXPECT_EQ(server.stats().taps_downgraded, 1);
  EXPECT_EQ(server.stats().taps_restored, 1);
}

// ---------------------------------------------------------------------------
// The acceptance matrix: fault schedule x overflow policy x flap schedule
// ---------------------------------------------------------------------------

TEST(ReliabilityMatrixTest, FaultMatrixHoldsDeliveryInvariants) {
  using stress::Options;
  using stress::Result;
  using stress::ScheduleStep;

  struct Case {
    const char* name;
    OverflowPolicy policy;
    std::vector<FaultRule> faults;
    bool restart;
    int viewers;
    Options::Wire wire = Options::Wire::kText;
  };
  FaultRule eintr_read = FaultInjector::ErrnoStorm(FaultOp::kRead, EINTR, -1);
  eintr_read.probability = 0.2;
  FaultRule eintr_write = FaultInjector::ErrnoStorm(FaultOp::kWrite, EINTR, -1);
  eintr_write.probability = 0.2;
  const std::vector<Case> cases = {
      {"baseline_restart", OverflowPolicy::kDropNewest, {}, true, 1},
      {"short_reads", OverflowPolicy::kDropOldest,
       {FaultInjector::ShortReads(2)}, false, 0},
      {"partial_writes", OverflowPolicy::kDropNewest,
       {FaultInjector::PartialWrites(3)}, false, 0},
      {"eintr_storm", OverflowPolicy::kDropOldest,
       {eintr_read, eintr_write}, false, 0},
      {"block_chunked", OverflowPolicy::kBlockWithDeadline,
       {FaultInjector::ShortReads(1), FaultInjector::PartialWrites(2)}, false, 0},
      {"kill_restart", OverflowPolicy::kDropNewest,
       {FaultInjector::KillConnection(FaultOp::kWrite, /*skip=*/50)}, true, 1},
      // The binary-wire column: the same fault schedules against negotiated
      // framed connections (docs/protocol.md "Wire format v2").  Length
      // prefixes + CRCs must make every invariant hold byte-for-byte, and a
      // loss of sync is only ever caused by a mid-frame teardown.
      {"bin_short_reads", OverflowPolicy::kDropOldest,
       {FaultInjector::ShortReads(2)}, false, 0, Options::Wire::kBinary},
      {"bin_partial_writes", OverflowPolicy::kDropNewest,
       {FaultInjector::PartialWrites(3)}, false, 0, Options::Wire::kBinary},
      {"bin_eintr_storm", OverflowPolicy::kDropOldest,
       {eintr_read, eintr_write}, false, 0, Options::Wire::kBinary},
      {"mixed_kill_restart", OverflowPolicy::kDropNewest,
       {FaultInjector::KillConnection(FaultOp::kWrite, /*skip=*/50)}, true, 1,
       Options::Wire::kMixed},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    Options opt;
    opt.producers = 2;
    opt.tuples_per_producer = 300;
    opt.burst = 32;
    opt.payload_pad = 8;
    opt.policy = c.policy;
    opt.block_deadline_ms = 2;
    opt.seed = 42;
    opt.fault_seed = 7;
    opt.faults = c.faults;
    opt.auto_reconnect = true;
    opt.viewers = c.viewers;
    opt.viewer_ping_interval_ms = c.viewers > 0 ? 5 : 0;
    opt.wire = c.wire;
    if (c.restart) {
      opt.schedule = {{ScheduleStep::Kind::kDrain, 10},
                      {ScheduleStep::Kind::kRestart, 8},
                      {ScheduleStep::Kind::kDrain, 10}};
    } else {
      opt.schedule = {{ScheduleStep::Kind::kDrain, 10},
                      {ScheduleStep::Kind::kPause, 5}};
    }

    Result r = stress::RunStress(opt);
    ASSERT_TRUE(r.ran) << r.setup_error;
    if (r.fault_stats.kills == 0) {
      EXPECT_EQ(r.CheckNoTornFrames(), "");
    } else {
      // A kill may tear the in-flight line of each killed connection; drop
      // decisions themselves never tear.
      EXPECT_LE(r.server_parse_errors, r.fault_stats.kills);
    }
    EXPECT_EQ(r.CheckSendAccounting(), "");
    EXPECT_EQ(r.CheckSequencesMonotone(), "");
    EXPECT_EQ(r.CheckDeliveryExact(), "");
    // Binary framing never loses sync except to a mid-frame teardown: the
    // CRC + length prefix contain each kill to exactly one resync event.
    EXPECT_LE(r.server_frames_crc_errors, r.fault_stats.kills);
    if (c.wire != Options::Wire::kText && r.fault_stats.kills == 0) {
      EXPECT_EQ(r.server_frames_crc_errors, 0);
      EXPECT_GT(r.server_frames_rx, 0);
    }
    if (c.policy == OverflowPolicy::kBlockWithDeadline) {
      EXPECT_EQ(r.CheckBlockDeadline(opt.block_deadline_ms), "");
    }
    if (!c.faults.empty() && r.fault_stats.kills == 0) {
      EXPECT_GT(r.fault_stats.faults_injected, 0);
    }
    for (const auto& p : r.producers) {
      EXPECT_TRUE(p.connected_ok);
    }
    for (const auto& v : r.viewers) {
      EXPECT_TRUE(v.connected_ok);
      // Subscribe precedes Connect: the pattern is replayed on EVERY
      // establishment, so resumption is exact, not best-effort.
      EXPECT_EQ(v.resumed_commands, v.reconnects + 1);
      EXPECT_EQ(v.liveness_timeouts, 0);
    }
    if (c.restart) {
      EXPECT_GE(r.restarts, 1);
    }
  }
}

// The fault x policy matrix again, with the server's accepted connections
// sharded across 4 per-core loops (StreamServerOptions::loops): every
// delivery invariant must hold with producers spread over worker threads,
// faults included.  Pause steps only idle the primary loop (worker shards
// keep draining), so overload is lighter here - the point is correctness
// of the cross-loop paths, not backpressure depth.  check.sh runs this
// under TSan.
TEST(ReliabilityMatrixTest, ShardedLoopsFaultMatrixHoldsInvariants) {
  using stress::Options;
  using stress::Result;
  using stress::ScheduleStep;

  struct Case {
    const char* name;
    OverflowPolicy policy;
    std::vector<FaultRule> faults;
    bool restart;
    int viewers;
    Options::Wire wire = Options::Wire::kText;
  };
  const std::vector<Case> cases = {
      {"sharded_baseline", OverflowPolicy::kDropNewest, {}, false, 2},
      {"sharded_short_reads", OverflowPolicy::kDropOldest,
       {FaultInjector::ShortReads(2)}, false, 0},
      {"sharded_partial_writes", OverflowPolicy::kDropNewest,
       {FaultInjector::PartialWrites(3)}, false, 0},
      {"sharded_bin_mixed", OverflowPolicy::kDropOldest,
       {FaultInjector::ShortReads(2)}, false, 1, Options::Wire::kMixed},
      {"sharded_restart", OverflowPolicy::kDropNewest, {}, true, 1},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    Options opt;
    opt.producers = 4;
    opt.tuples_per_producer = 300;
    opt.burst = 32;
    opt.payload_pad = 8;
    opt.policy = c.policy;
    opt.block_deadline_ms = 2;
    opt.seed = 42;
    opt.fault_seed = 7;
    opt.faults = c.faults;
    opt.auto_reconnect = true;
    opt.viewers = c.viewers;
    opt.wire = c.wire;
    opt.server_loops = 4;
    if (c.restart) {
      opt.schedule = {{ScheduleStep::Kind::kDrain, 10},
                      {ScheduleStep::Kind::kRestart, 8},
                      {ScheduleStep::Kind::kDrain, 10}};
    } else {
      opt.schedule = {{ScheduleStep::Kind::kDrain, 10},
                      {ScheduleStep::Kind::kPause, 5}};
    }

    Result r = stress::RunStress(opt);
    ASSERT_TRUE(r.ran) << r.setup_error;
    EXPECT_EQ(r.CheckNoTornFrames(), "");
    EXPECT_EQ(r.CheckSendAccounting(), "");
    EXPECT_EQ(r.CheckSequencesMonotone(), "");
    if (!c.restart) {
      EXPECT_EQ(r.CheckDeliveryExact(), "");
    }
    EXPECT_EQ(r.server_frames_crc_errors, 0);
    if (!c.faults.empty()) {
      EXPECT_GT(r.fault_stats.faults_injected, 0);
    }
    for (const auto& p : r.producers) {
      EXPECT_TRUE(p.connected_ok);
    }
    for (const auto& v : r.viewers) {
      EXPECT_TRUE(v.connected_ok);
      EXPECT_EQ(v.resumed_commands, v.reconnects + 1);
    }
    if (c.restart) {
      EXPECT_GE(r.restarts, 1);
    }
  }
}

// Longer reconnect soak for check.sh (GSCOPE_STRESS_SOAK=1); bounded < 10s.
TEST(ReliabilityMatrixTest, ReconnectSoak) {
  if (std::getenv("GSCOPE_STRESS_SOAK") == nullptr) {
    GTEST_SKIP() << "set GSCOPE_STRESS_SOAK=1 to run";
  }
  using stress::Options;
  using stress::ScheduleStep;
  Options opt;
  opt.producers = 4;
  opt.tuples_per_producer = 4000;
  opt.payload_pad = 16;
  opt.policy = OverflowPolicy::kDropOldest;
  opt.seed = 9;
  opt.auto_reconnect = true;
  opt.viewers = 2;
  opt.viewer_ping_interval_ms = 10;
  opt.faults = {FaultInjector::ShortReads(4)};
  opt.schedule = {{ScheduleStep::Kind::kDrain, 20},
                  {ScheduleStep::Kind::kRestart, 10},
                  {ScheduleStep::Kind::kDrain, 20},
                  {ScheduleStep::Kind::kPause, 10}};
  stress::Result r = stress::RunStress(opt);
  ASSERT_TRUE(r.ran) << r.setup_error;
  EXPECT_EQ(r.CheckNoTornFrames(), "");
  EXPECT_EQ(r.CheckSendAccounting(), "");
  EXPECT_EQ(r.CheckSequencesMonotone(), "");
  EXPECT_GE(r.restarts, 1);
  int64_t producer_reconnects = 0;
  for (const auto& p : r.producers) {
    producer_reconnects += p.reconnects;
  }
  EXPECT_GE(producer_reconnects, 1);
  for (const auto& v : r.viewers) {
    EXPECT_TRUE(v.connected_ok);
    EXPECT_EQ(v.resumed_commands, v.reconnects + 1);
  }
}

}  // namespace
}  // namespace gscope
