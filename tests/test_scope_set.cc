#include "core/scope_set.h"

#include <gtest/gtest.h>

#include "runtime/clock.h"

namespace gscope {
namespace {

TEST(ScopeSetTest, CreateAndFind) {
  SimClock clock;
  MainLoop loop(&clock);
  ScopeSet set(&loop);
  Scope* a = set.CreateScope({.name = "a"});
  Scope* b = set.CreateScope({.name = "b"});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.FindScope("a"), a);
  EXPECT_EQ(set.FindScope("missing"), nullptr);
}

TEST(ScopeSetTest, DuplicateNameRejected) {
  SimClock clock;
  MainLoop loop(&clock);
  ScopeSet set(&loop);
  EXPECT_NE(set.CreateScope({.name = "a"}), nullptr);
  EXPECT_EQ(set.CreateScope({.name = "a"}), nullptr);
  EXPECT_EQ(set.size(), 1u);
}

TEST(ScopeSetTest, RemoveScopeStopsIt) {
  SimClock clock;
  MainLoop loop(&clock);
  ScopeSet set(&loop);
  Scope* a = set.CreateScope({.name = "a"});
  int32_t x = 0;
  a->AddSignal({.name = "x", .source = &x});
  a->SetPollingMode(10);
  a->StartPolling();
  EXPECT_EQ(loop.source_count(), 1u);
  EXPECT_TRUE(set.RemoveScope(a));
  EXPECT_EQ(loop.source_count(), 0u);  // polling source removed by dtor
  EXPECT_FALSE(set.RemoveScope(a));
}

TEST(ScopeSetTest, ScopesShareTheLoop) {
  SimClock clock;
  MainLoop loop(&clock);
  ScopeSet set(&loop);
  Scope* a = set.CreateScope({.name = "a"});
  Scope* b = set.CreateScope({.name = "b"});
  int32_t x = 1;
  SignalId ida = a->AddSignal({.name = "x", .source = &x});
  SignalId idb = b->AddSignal({.name = "x", .source = &x});
  a->SetPollingMode(10);
  b->SetPollingMode(20);
  a->StartPolling();
  b->StartPolling();
  loop.RunForMs(100);
  EXPECT_TRUE(a->LatestValue(ida).has_value());
  EXPECT_TRUE(b->LatestValue(idb).has_value());
  EXPECT_GT(a->counters().ticks, b->counters().ticks);
}

TEST(ScopeSetTest, SharedControlParams) {
  SimClock clock;
  MainLoop loop(&clock);
  ScopeSet set(&loop);
  int32_t elephants = 8;
  set.params().Add({.name = "elephants", .storage = &elephants, .min = 0, .max = 40});
  EXPECT_TRUE(set.params().Set("elephants", 16));
  EXPECT_EQ(elephants, 16);
}

TEST(ScopeSetTest, TotalCountersSumAcrossScopes) {
  // The application-wide drain view: coalesced vs retained summed over
  // every member scope (docs/perf.md, drain coalescing).
  SimClock clock;
  MainLoop loop(&clock);
  ScopeSet set(&loop);
  Scope* a = set.CreateScope({.name = "a"});
  Scope* b = set.CreateScope({.name = "b"});
  SignalId ida = a->AddSignal({.name = "sa", .source = BufferSource{}});
  SignalId idb = b->AddSignal({.name = "sb", .source = BufferSource{}});
  a->SetPollingMode(10);
  b->SetPollingMode(10);
  a->StartPolling();
  b->StartPolling();
  int64_t now = a->NowMs();
  for (int i = 0; i < 10; ++i) {
    a->PushBuffered(ida, now + 1, static_cast<double>(i));
    b->PushBuffered(idb, now + 1, static_cast<double>(i));
  }
  clock.AdvanceMs(5);
  a->TickOnce();
  b->TickOnce();
  Scope::Counters total = set.TotalCounters();
  EXPECT_EQ(total.ticks, a->counters().ticks + b->counters().ticks);
  EXPECT_EQ(total.buffered_routed, 20);
  EXPECT_EQ(total.samples_coalesced, 18);  // 9 folded away per scope
  EXPECT_EQ(total.samples_retained, 0);
}

TEST(ScopeSetTest, ScopesListed) {
  SimClock clock;
  MainLoop loop(&clock);
  ScopeSet set(&loop);
  set.CreateScope({.name = "a"});
  set.CreateScope({.name = "b"});
  auto scopes = set.scopes();
  ASSERT_EQ(scopes.size(), 2u);
  EXPECT_EQ(scopes[0]->name(), "a");
  EXPECT_EQ(scopes[1]->name(), "b");
}

}  // namespace
}  // namespace gscope
