#include "core/sample_hold.h"

#include <gtest/gtest.h>

#include <thread>

namespace gscope {
namespace {

TEST(SampleHoldTest, InitialValue) {
  SampleAndHold sh(5.0);
  EXPECT_DOUBLE_EQ(sh.Read(), 5.0);
}

TEST(SampleHoldTest, HoldsBetweenEvents) {
  SampleAndHold sh;
  sh.Update(12.0);
  EXPECT_DOUBLE_EQ(sh.Read(), 12.0);
  EXPECT_DOUBLE_EQ(sh.Read(), 12.0);  // polling twice sees the held state
  sh.Update(-4.0);
  EXPECT_DOUBLE_EQ(sh.Read(), -4.0);
}

TEST(SampleHoldTest, CountsUpdatesAndReads) {
  // Read counting is opt-in: the default SampleAndHold pays one relaxed
  // load per poll, CountedSampleAndHold adds the reads_ fetch_add.
  CountedSampleAndHold sh;
  sh.Update(1.0);
  sh.Update(2.0);
  sh.Read();
  sh.Read();
  sh.Read();
  EXPECT_EQ(sh.updates(), 2);
  EXPECT_EQ(sh.reads(), 3);
}

TEST(SampleHoldTest, DefaultReadCountingCompiledOut) {
  SampleAndHold sh;
  sh.Update(1.0);
  sh.Read();
  sh.Read();
  EXPECT_EQ(sh.updates(), 1);
  EXPECT_EQ(sh.reads(), 0);  // not counted, not a missed read
  // The uncounted variant carries no read-counter storage at all.
  static_assert(sizeof(SampleAndHold) < sizeof(CountedSampleAndHold),
                "opt-out must drop the counter's cache-line tax");
}

TEST(SampleHoldTest, DetectsMissedEvents) {
  // The paper's caveat: "This approach requires knowing the shortest period
  // of back-to-back event arrival."  If updates outpace reads, the counters
  // reveal the loss.
  CountedSampleAndHold sh;
  for (int i = 0; i < 10; ++i) {
    sh.Update(i);
  }
  sh.Read();
  EXPECT_GT(sh.updates(), sh.reads());
}

TEST(SampleHoldTest, ConcurrentUpdateAndRead) {
  SampleAndHold sh;
  std::thread writer([&sh]() {
    for (int i = 0; i < 100000; ++i) {
      sh.Update(static_cast<double>(i));
    }
  });
  double last = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = sh.Read();
    EXPECT_GE(v, last - 1e9);  // no torn reads: value is always a valid double
    last = v;
  }
  writer.join();
  EXPECT_DOUBLE_EQ(sh.Read(), 99999.0);
}

}  // namespace
}  // namespace gscope
