#include "freq/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace gscope {
namespace {

std::vector<double> Tone(double freq_hz, double sample_rate_hz, size_t n, double amplitude = 1.0,
                         double offset = 0.0) {
  std::vector<double> samples(n);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i) / sample_rate_hz;
    samples[i] = offset + amplitude * std::sin(2.0 * std::numbers::pi * freq_hz * t);
  }
  return samples;
}

TEST(SpectrumTest, EmptyForTooFewSamples) {
  EXPECT_TRUE(ComputeSpectrum({}, 100.0).power_db.empty());
  EXPECT_TRUE(ComputeSpectrum({1.0}, 100.0).power_db.empty());
  EXPECT_TRUE(ComputeSpectrum({1.0, 2.0}, 0.0).power_db.empty());
}

TEST(SpectrumTest, PeakAtToneFrequency) {
  // 100 Hz sampling (the paper's 10 ms maximum polling rate), 10 Hz tone.
  auto spectrum = ComputeSpectrum(Tone(10.0, 100.0, 256), 100.0);
  ASSERT_FALSE(spectrum.power_db.empty());
  EXPECT_NEAR(spectrum.PeakHz(), 10.0, spectrum.bin_hz * 1.5);
}

TEST(SpectrumTest, BinWidthReflectsPaddedLength) {
  auto spectrum = ComputeSpectrum(Tone(5.0, 100.0, 200), 100.0);
  // 200 pads to 256: bin width 100/256.
  EXPECT_NEAR(spectrum.bin_hz, 100.0 / 256.0, 1e-12);
  EXPECT_EQ(spectrum.power_db.size(), 129u);
}

TEST(SpectrumTest, DcRemovalSuppressesOffset) {
  auto with_offset = ComputeSpectrum(Tone(10.0, 100.0, 256, 1.0, /*offset=*/50.0), 100.0);
  // Despite a huge DC offset, the peak is still the tone.
  EXPECT_NEAR(with_offset.PeakHz(), 10.0, with_offset.bin_hz * 1.5);

  SpectrumOptions keep_dc;
  keep_dc.remove_dc = false;
  auto raw = ComputeSpectrum(Tone(10.0, 100.0, 256, 1.0, 50.0), 100.0, keep_dc);
  EXPECT_GT(raw.power_db[0], raw.power_db[26]);  // DC dominates when kept
}

TEST(SpectrumTest, FullScaleSineNearZeroDb) {
  auto spectrum = ComputeSpectrum(Tone(12.5, 100.0, 256), 100.0);
  size_t peak = spectrum.PeakBin();
  EXPECT_GT(spectrum.power_db[peak], -3.0);
  EXPECT_LT(spectrum.power_db[peak], 3.0);
}

TEST(SpectrumTest, QuieterToneLowerDb) {
  auto loud = ComputeSpectrum(Tone(10.0, 100.0, 256, 1.0), 100.0);
  auto quiet = ComputeSpectrum(Tone(10.0, 100.0, 256, 0.1), 100.0);
  EXPECT_NEAR(loud.power_db[loud.PeakBin()] - quiet.power_db[quiet.PeakBin()], 20.0, 1.0);
}

TEST(SpectrumTest, TwoTonesBothVisible) {
  auto a = Tone(10.0, 100.0, 512);
  auto b = Tone(30.0, 100.0, 512, 0.5);
  std::vector<double> mix(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    mix[i] = a[i] + b[i];
  }
  auto spectrum = ComputeSpectrum(mix, 100.0);
  size_t bin10 = static_cast<size_t>(std::lround(10.0 / spectrum.bin_hz));
  size_t bin30 = static_cast<size_t>(std::lround(30.0 / spectrum.bin_hz));
  // Both peaks stand at least 20 dB above a quiet bin.
  size_t quiet_bin = static_cast<size_t>(std::lround(45.0 / spectrum.bin_hz));
  EXPECT_GT(spectrum.power_db[bin10], spectrum.power_db[quiet_bin] + 20.0);
  EXPECT_GT(spectrum.power_db[bin30], spectrum.power_db[quiet_bin] + 20.0);
}

// Property: the detected peak matches the synthesized tone across the band.
class SpectrumPeakProperty : public ::testing::TestWithParam<double> {};

TEST_P(SpectrumPeakProperty, PeakTracksTone) {
  double freq = GetParam();
  auto spectrum = ComputeSpectrum(Tone(freq, 100.0, 512), 100.0);
  EXPECT_NEAR(spectrum.PeakHz(), freq, spectrum.bin_hz * 2.0) << "tone " << freq;
}

INSTANTIATE_TEST_SUITE_P(ToneSweep, SpectrumPeakProperty,
                         ::testing::Values(2.0, 5.0, 10.0, 17.3, 25.0, 33.3, 45.0));

}  // namespace
}  // namespace gscope
