#include "render/ascii.h"

#include <gtest/gtest.h>

#include "runtime/clock.h"

namespace gscope {
namespace {

class AsciiTest : public ::testing::Test {
 protected:
  AsciiTest() : loop_(&clock_), scope_(&loop_, {.name = "ascii", .width = 32}) {}

  SimClock clock_;
  MainLoop loop_;
  Scope scope_;
};

TEST_F(AsciiTest, EmptyScopeRendersFrame) {
  std::string out = RenderAscii(scope_);
  EXPECT_NE(out.find("ascii"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);  // top ruler label
}

TEST_F(AsciiTest, SignalDrawnWithIndexDigit) {
  int32_t x = 50;
  scope_.AddSignal({.name = "a", .source = &x});
  scope_.TickOnce();
  scope_.TickOnce();
  std::string out = RenderAscii(scope_);
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find("[1] a"), std::string::npos);
}

TEST_F(AsciiTest, HiddenSignalNotDrawnButListed) {
  int32_t x = 50;
  SignalId id = scope_.AddSignal({.name = "a", .source = &x});
  scope_.TickOnce();
  scope_.SetHidden(id, true);
  std::string out = RenderAscii(scope_, {.columns = 20, .rows = 8});
  // The plot body must not contain the glyph; the legend mentions hidden.
  EXPECT_NE(out.find("(hidden)"), std::string::npos);
  size_t legend_start = out.find("  [");
  std::string body = out.substr(0, legend_start);
  // Strip the ruler column labels ("100", " 50"...) which contain digits:
  // check only between the border pipes.
  bool glyph_in_plot = false;
  size_t pos = 0;
  while ((pos = body.find('|', pos)) != std::string::npos) {
    size_t end = body.find('|', pos + 1);
    if (end == std::string::npos) {
      break;
    }
    if (body.substr(pos + 1, end - pos - 1).find('1') != std::string::npos) {
      glyph_in_plot = true;
    }
    pos = end + 1;
  }
  EXPECT_FALSE(glyph_in_plot);
}

TEST_F(AsciiTest, ValueShownInLegend) {
  int32_t x = 37;
  scope_.AddSignal({.name = "v", .source = &x});
  scope_.TickOnce();
  std::string out = RenderAscii(scope_);
  EXPECT_NE(out.find("= 37.000"), std::string::npos);
}

TEST_F(AsciiTest, LegendOptional) {
  int32_t x = 5;
  scope_.AddSignal({.name = "v", .source = &x});
  scope_.TickOnce();
  std::string out = RenderAscii(scope_, {.columns = 20, .rows = 6, .legend = false});
  EXPECT_EQ(out.find("[1]"), std::string::npos);
}

TEST_F(AsciiTest, OverlapMarkedWithHash) {
  int32_t x = 50;
  int32_t y = 50;
  scope_.AddSignal({.name = "a", .source = &x});
  scope_.AddSignal({.name = "b", .source = &y});
  scope_.TickOnce();
  std::string out = RenderAscii(scope_);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST_F(AsciiTest, DimensionsRespected) {
  std::string out = RenderAscii(scope_, {.columns = 20, .rows = 5, .legend = false});
  int lines = 0;
  for (char c : out) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, 5 + 2);  // rows + top/bottom borders
}

}  // namespace
}  // namespace gscope
