#include "core/tuple_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace gscope {
namespace {

class TupleIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "tuple_io_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".dat";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(TupleIoTest, WriteThenReadBack) {
  TupleWriter writer;
  ASSERT_TRUE(writer.Open(path_));
  writer.Comment("test recording");
  EXPECT_TRUE(writer.Write({0, 1.0, "a"}));
  EXPECT_TRUE(writer.Write({10, 2.0, "b"}));
  EXPECT_TRUE(writer.Write({20, 3.0, "a"}));
  writer.Close();
  EXPECT_EQ(writer.written(), 3);

  TupleReader reader;
  ASSERT_TRUE(reader.Open(path_));
  auto all = reader.ReadAll();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], (Tuple{0, 1.0, "a"}));
  EXPECT_EQ(all[2], (Tuple{20, 3.0, "a"}));
  EXPECT_EQ(reader.malformed(), 0);
}

TEST_F(TupleIoTest, WriterRejectsTimeGoingBackwards) {
  TupleWriter writer;
  ASSERT_TRUE(writer.Open(path_));
  EXPECT_TRUE(writer.Write({100, 1.0, "x"}));
  EXPECT_FALSE(writer.Write({50, 2.0, "x"}));
  EXPECT_TRUE(writer.Write({100, 3.0, "x"}));  // equal time is legal
  EXPECT_EQ(writer.written(), 2);
  EXPECT_EQ(writer.rejected(), 1);
}

TEST_F(TupleIoTest, WriterClosedRejects) {
  TupleWriter writer;
  EXPECT_FALSE(writer.Write({0, 1.0, ""}));
  EXPECT_EQ(writer.rejected(), 1);
}

TEST_F(TupleIoTest, ReaderSkipsCommentsAndBlankLines) {
  std::ofstream out(path_);
  out << "# header\n\n10 1.0 a\n\n# middle\n20 2.0 b\n";
  out.close();

  TupleReader reader;
  ASSERT_TRUE(reader.Open(path_));
  auto all = reader.ReadAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(reader.malformed(), 0);
}

TEST_F(TupleIoTest, ReaderCountsMalformedAndContinues) {
  std::ofstream out(path_);
  out << "10 1.0 a\nthis is garbage\n20 2.0 b\nxx yy zz\n30 3.0 c\n";
  out.close();

  TupleReader reader;
  ASSERT_TRUE(reader.Open(path_));
  auto all = reader.ReadAll();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(reader.malformed(), 2);
}

TEST_F(TupleIoTest, ReaderSkipsOutOfOrderTuples) {
  std::ofstream out(path_);
  out << "10 1.0 a\n5 9.0 late\n20 2.0 b\n";
  out.close();

  TupleReader reader;
  ASSERT_TRUE(reader.Open(path_));
  auto all = reader.ReadAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "a");
  EXPECT_EQ(all[1].name, "b");
  EXPECT_EQ(reader.out_of_order(), 1);
}

TEST_F(TupleIoTest, OpenMissingFileFails) {
  TupleReader reader;
  EXPECT_FALSE(reader.Open("/nonexistent/dir/file.dat"));
  TupleWriter writer;
  EXPECT_FALSE(writer.Open("/nonexistent/dir/file.dat"));
}

TEST_F(TupleIoTest, NextReturnsNulloptAtEof) {
  std::ofstream out(path_);
  out << "1 1.0 a\n";
  out.close();

  TupleReader reader;
  ASSERT_TRUE(reader.Open(path_));
  EXPECT_TRUE(reader.Next().has_value());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.Next().has_value());  // stays at EOF
}

TEST_F(TupleIoTest, TwoFieldFormRoundTrips) {
  TupleWriter writer;
  ASSERT_TRUE(writer.Open(path_));
  writer.Write({5, 7.5, ""});
  writer.Close();

  TupleReader reader;
  ASSERT_TRUE(reader.Open(path_));
  auto t = reader.Next();
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->name.empty());
  EXPECT_DOUBLE_EQ(t->value, 7.5);
}

TEST_F(TupleIoTest, ReopenResetsCounters) {
  std::ofstream out(path_);
  out << "1 1.0\nbad\n";
  out.close();

  TupleReader reader;
  ASSERT_TRUE(reader.Open(path_));
  reader.ReadAll();
  EXPECT_EQ(reader.malformed(), 1);
  ASSERT_TRUE(reader.Open(path_));
  EXPECT_EQ(reader.malformed(), 0);
  EXPECT_EQ(reader.parsed(), 0);
  EXPECT_EQ(reader.ReadAll().size(), 1u);
}

TEST_F(TupleIoTest, LargeRecordingRoundTrips) {
  TupleWriter writer;
  ASSERT_TRUE(writer.Open(path_));
  constexpr int kCount = 5000;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(writer.Write({i, i * 0.5, i % 2 == 0 ? "even" : "odd"}));
  }
  writer.Close();

  TupleReader reader;
  ASSERT_TRUE(reader.Open(path_));
  auto all = reader.ReadAll();
  ASSERT_EQ(all.size(), static_cast<size_t>(kCount));
  EXPECT_EQ(all[4999].time_ms, 4999);
  EXPECT_DOUBLE_EQ(all[4999].value, 4999 * 0.5);
}

}  // namespace
}  // namespace gscope
