// Unit tests of FramedWriter's overflow policies at exact frame-boundary
// granularity, over pipes with pinned kernel capacity (F_SETPIPE_SZ) so
// partial drains land mid-frame deterministically.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <string>

#include "runtime/clock.h"
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"

namespace gscope {
namespace {

class FramedWriterTest : public ::testing::Test {
 protected:
  void MakePipe(int capacity = 4096) {
    if (rfd_ >= 0) close(rfd_);
    if (wfd_ >= 0) close(wfd_);
    int fds[2];
    ASSERT_EQ(pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
    rfd_ = fds[0];
    wfd_ = fds[1];
    ASSERT_GT(fcntl(wfd_, F_SETPIPE_SZ, capacity), 0);
  }

  void TearDown() override {
    if (rfd_ >= 0) close(rfd_);
    if (wfd_ >= 0) close(wfd_);
  }

  // Appends and commits one frame of `len` bytes filled with `fill`.
  static bool CommitFilled(FramedWriter& writer, size_t len, char fill) {
    std::string& buf = writer.BeginFrame();
    buf.append(len - 1, fill);
    buf.push_back('\n');
    return writer.CommitFrame();
  }

  // Drains the writer through the loop while collecting pipe output.
  std::string DrainAll(MainLoop& loop, FramedWriter& writer) {
    std::string received;
    char buf[4096];
    Nanos deadline = SteadyClock::Instance()->NowNs() + MillisToNanos(2000);
    while (SteadyClock::Instance()->NowNs() < deadline) {
      loop.RunForMs(1);
      ssize_t n;
      while ((n = read(rfd_, buf, sizeof(buf))) > 0) {
        received.append(buf, static_cast<size_t>(n));
      }
      if (writer.pending_bytes() == 0) {
        break;
      }
    }
    return received;
  }

  int rfd_ = -1;
  int wfd_ = -1;
};

TEST_F(FramedWriterTest, DropNewestCountsBytesAndHighWater) {
  MainLoop loop;
  FramedWriter writer(&loop, /*max_buffer=*/100);  // default kDropNewest
  EXPECT_TRUE(CommitFilled(writer, 40, 'a'));
  EXPECT_TRUE(CommitFilled(writer, 40, 'b'));
  EXPECT_FALSE(CommitFilled(writer, 40, 'c'));  // 120 > 100: newest dropped
  EXPECT_TRUE(CommitFilled(writer, 20, 'd'));   // exactly at the cap
  const FramedWriter::Stats& s = writer.stats();
  EXPECT_EQ(s.frames_committed, 3);
  EXPECT_EQ(s.frames_dropped, 1);
  EXPECT_EQ(s.frames_evicted, 0);
  EXPECT_EQ(s.bytes_dropped, 40);
  EXPECT_EQ(s.high_water_bytes, 100u);
  EXPECT_EQ(writer.pending_bytes(), 100u);

  MakePipe();
  writer.Attach(wfd_);
  std::string received = DrainAll(loop, writer);
  // Survivors only, whole and in order.
  ASSERT_EQ(received.size(), 100u);
  EXPECT_EQ(received.find('c'), std::string::npos);
  EXPECT_EQ(received[0], 'a');
  EXPECT_EQ(received[40], 'b');
  EXPECT_EQ(received[80], 'd');
  EXPECT_EQ(writer.stats().bytes_written, 100);
}

TEST_F(FramedWriterTest, DropOldestEvictsWholeFramesFromTheHead) {
  MainLoop loop;
  FramedWriter writer(&loop, /*max_buffer=*/100);
  writer.SetPolicy(OverflowPolicy::kDropOldest);
  // 10 frames of 20 bytes against a 100-byte cap: every commit succeeds,
  // the oldest five are evicted whole.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(CommitFilled(writer, 20, static_cast<char>('0' + i)));
  }
  const FramedWriter::Stats& s = writer.stats();
  EXPECT_EQ(s.frames_committed, 10);
  EXPECT_EQ(s.frames_dropped, 0);
  EXPECT_EQ(s.frames_evicted, 5);
  EXPECT_EQ(s.bytes_dropped, 100);
  EXPECT_EQ(writer.pending_bytes(), 100u);

  MakePipe();
  writer.Attach(wfd_);
  std::string received = DrainAll(loop, writer);
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 5; ++i) {  // newest five, in order, whole
    EXPECT_EQ(received[static_cast<size_t>(i) * 20], static_cast<char>('5' + i));
  }
}

TEST_F(FramedWriterTest, DropOldestOversizedFrameDoesNotWipeTheQueue) {
  // A frame that exceeds the cap on its own can never fit; evicting the
  // backlog for it would lose everything AND the frame.  It must be
  // dropped alone, with the queue intact.
  MainLoop loop;
  FramedWriter writer(&loop, /*max_buffer=*/100);
  writer.SetPolicy(OverflowPolicy::kDropOldest);
  EXPECT_TRUE(CommitFilled(writer, 30, 'a'));
  EXPECT_TRUE(CommitFilled(writer, 30, 'b'));
  EXPECT_FALSE(CommitFilled(writer, 150, 'X'));  // oversized
  EXPECT_EQ(writer.stats().frames_evicted, 0);
  EXPECT_EQ(writer.stats().frames_dropped, 1);
  EXPECT_EQ(writer.stats().bytes_dropped, 150);
  EXPECT_EQ(writer.pending_bytes(), 60u);  // queue untouched

  MakePipe();
  writer.Attach(wfd_);
  std::string received = DrainAll(loop, writer);
  ASSERT_EQ(received.size(), 60u);
  EXPECT_EQ(received[0], 'a');
  EXPECT_EQ(received[30], 'b');
}

TEST_F(FramedWriterTest, DropOldestNeverEvictsAPartiallySentFrame) {
  MainLoop loop;
  MakePipe(4096);
  FramedWriter writer(&loop, /*max_buffer=*/16384);
  writer.SetPolicy(OverflowPolicy::kDropOldest);
  writer.Attach(wfd_);

  // One 8 KiB frame into a 4 KiB pipe: the kernel consumes roughly half,
  // leaving the write offset mid-frame.
  ASSERT_TRUE(CommitFilled(writer, 8192, 'A'));
  loop.RunForMs(1);
  ASSERT_GT(writer.stats().bytes_written, 0);
  ASSERT_GT(writer.pending_bytes(), 0u);

  // Flood with small frames far past the cap: eviction must make room from
  // the oldest WHOLLY-unsent frames, never by truncating the in-flight one.
  for (int i = 0; i < 400; ++i) {
    std::string& buf = writer.BeginFrame();
    char mark = static_cast<char>('a' + i % 26);
    buf.append(99, mark);
    buf.push_back('\n');
    ASSERT_TRUE(writer.CommitFrame());
  }
  EXPECT_GT(writer.stats().frames_evicted, 0);
  EXPECT_LE(writer.pending_bytes(), 16384u);

  std::string received = DrainAll(loop, writer);
  // The big frame arrived intact - all 8 KiB of 'A's and its newline...
  ASSERT_GT(received.size(), 8192u);
  for (size_t i = 0; i < 8191; ++i) {
    ASSERT_EQ(received[i], 'A') << "torn big frame at byte " << i;
  }
  EXPECT_EQ(received[8191], '\n');
  // ... and everything after it is whole 100-byte frames.
  EXPECT_EQ((received.size() - 8192) % 100, 0u);
  for (size_t off = 8192; off < received.size(); off += 100) {
    EXPECT_EQ(received[off + 99], '\n') << "torn small frame at offset " << off;
  }
}

TEST_F(FramedWriterTest, BlockWithDeadlineWaitsThenFallsBackToDropNewest) {
  MainLoop loop;
  MakePipe(4096);
  // Jam the pipe so nothing can drain.
  std::string junk(4096, 'j');
  ASSERT_EQ(write(wfd_, junk.data(), junk.size()), static_cast<ssize_t>(junk.size()));

  FramedWriter writer(&loop, /*max_buffer=*/150);
  writer.SetPolicy(OverflowPolicy::kBlockWithDeadline, MillisToNanos(60));
  writer.Attach(wfd_);
  ASSERT_TRUE(CommitFilled(writer, 100, 'a'));  // fits; cannot drain (pipe full)

  Nanos before = SteadyClock::Instance()->NowNs();
  EXPECT_FALSE(CommitFilled(writer, 100, 'b'));  // waits ~60 ms, then drops
  Nanos waited = SteadyClock::Instance()->NowNs() - before;
  EXPECT_GE(waited, MillisToNanos(55));
  EXPECT_LT(waited, MillisToNanos(2000));
  EXPECT_GE(writer.stats().block_time_ns, MillisToNanos(55));
  EXPECT_EQ(writer.stats().frames_dropped, 1);
  EXPECT_EQ(writer.pending_bytes(), 100u);  // the committed frame is intact

  // Make room: once the peer reads, a blocking commit succeeds quickly.
  char buf[4096];
  ASSERT_GT(read(rfd_, buf, sizeof(buf)), 0);
  before = SteadyClock::Instance()->NowNs();
  EXPECT_TRUE(CommitFilled(writer, 100, 'c'));  // drains 'a' inside the wait
  EXPECT_LT(SteadyClock::Instance()->NowNs() - before, MillisToNanos(55));
  EXPECT_EQ(writer.stats().frames_committed, 2);
  EXPECT_EQ(writer.stats().frames_dropped, 1);
}

TEST_F(FramedWriterTest, BlockWithoutFdDegradesToDropNewest) {
  MainLoop loop;
  FramedWriter writer(&loop, /*max_buffer=*/50);
  writer.SetPolicy(OverflowPolicy::kBlockWithDeadline, MillisToNanos(500));
  ASSERT_TRUE(CommitFilled(writer, 40, 'a'));
  Nanos before = SteadyClock::Instance()->NowNs();
  EXPECT_FALSE(CommitFilled(writer, 40, 'b'));  // nothing to wait on
  EXPECT_LT(SteadyClock::Instance()->NowNs() - before, MillisToNanos(100));
  EXPECT_EQ(writer.stats().frames_dropped, 1);
}

TEST_F(FramedWriterTest, ResetCountsAbandonedFramesAndBytes) {
  MainLoop loop;
  FramedWriter writer(&loop, /*max_buffer=*/1000);
  EXPECT_TRUE(CommitFilled(writer, 20, 'a'));
  EXPECT_TRUE(CommitFilled(writer, 30, 'b'));
  EXPECT_TRUE(CommitFilled(writer, 40, 'c'));
  EXPECT_EQ(writer.Reset(), 3u);
  const FramedWriter::Stats& s = writer.stats();
  EXPECT_EQ(s.frames_abandoned, 3);
  EXPECT_EQ(s.bytes_dropped, 90);
  EXPECT_EQ(writer.pending_bytes(), 0u);
  // The writer is reusable after Reset.
  EXPECT_TRUE(CommitFilled(writer, 20, 'd'));
  EXPECT_EQ(writer.stats().frames_committed, 4);
}

TEST_F(FramedWriterTest, ByteAccountingBalancesAcrossPolicies) {
  // committed bytes == written + pending, and every lost byte is in
  // bytes_dropped - the balance the stress harness asserts end-to-end.
  for (OverflowPolicy policy : {OverflowPolicy::kDropNewest, OverflowPolicy::kDropOldest}) {
    MainLoop loop;
    MakePipe(4096);
    FramedWriter writer(&loop, /*max_buffer=*/300);
    writer.SetPolicy(policy);
    writer.Attach(wfd_);
    int64_t committed_bytes = 0;
    for (int i = 0; i < 50; ++i) {
      std::string& buf = writer.BeginFrame();
      size_t before = buf.size();
      buf.append(59, static_cast<char>('a' + i % 26));
      buf.push_back('\n');
      size_t len = buf.size() - before;
      if (writer.CommitFrame()) {
        committed_bytes += static_cast<int64_t>(len);
      }
      if (i % 10 == 9) {
        loop.RunForMs(1);
      }
    }
    std::string received = DrainAll(loop, writer);
    const FramedWriter::Stats& s = writer.stats();
    SCOPED_TRACE(static_cast<int>(policy));
    EXPECT_EQ(writer.pending_bytes(), 0u);
    // Evicted frames were committed, then discarded: they are the exact gap
    // between commits and wire bytes.
    EXPECT_EQ(committed_bytes - s.frames_evicted * 60, s.bytes_written);
    EXPECT_EQ(static_cast<int64_t>(received.size()), s.bytes_written);
    EXPECT_EQ(received.size() % 60, 0u);  // whole frames only, ever
    EXPECT_LE(s.high_water_bytes, 300u);
  }
}

}  // namespace
}  // namespace gscope
