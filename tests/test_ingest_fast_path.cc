// The zero-allocation batched ingest pipeline: id-keyed SampleBuffer fast
// path, batch drain, Scope name interning, and id/name-shim equivalence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/ingest_router.h"
#include "core/sample_buffer.h"
#include "core/scope.h"
#include "net/frame_codec.h"
#include "runtime/clock.h"

// Global allocation counter for the steady-state zero-allocation assertions.
// Only deltas inside tight measurement windows are inspected.
namespace {
std::atomic<int64_t> g_heap_allocs{0};

void* CountedAlloc(size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(size_t n) { return CountedAlloc(n); }
void* operator new[](size_t n) { return CountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace gscope {
namespace {

// ---- SampleBuffer id fast path ---------------------------------------------

TEST(IngestFastPathTest, IdPushAndBatchDrainSortedByTime) {
  SampleBuffer buffer;  // default capacity -> sharded
  EXPECT_TRUE(buffer.Push(SampleKey{1}, 30, 3.0, 0, 1000));
  EXPECT_TRUE(buffer.Push(SampleKey{2}, 10, 1.0, 0, 1000));
  EXPECT_TRUE(buffer.Push(SampleKey{3}, 20, 2.0, 0, 1000));
  std::vector<Sample> out;
  EXPECT_EQ(buffer.DrainDisplayableInto(2000, 1000, &out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].time_ms, 10);
  EXPECT_EQ(out[1].time_ms, 20);
  EXPECT_EQ(out[2].time_ms, 30);
  EXPECT_EQ(out[0].key, SampleKey{2});
}

TEST(IngestFastPathTest, EqualTimestampsDrainInPushOrder) {
  SampleBuffer buffer;
  // Same timestamp, different keys (hence different shards): arrival order
  // must be preserved via the seq tie-break.
  for (uint64_t k = 1; k <= 6; ++k) {
    buffer.Push(SampleKey{k}, 100, static_cast<double>(k), 0, 1000);
  }
  std::vector<Sample> out;
  buffer.DrainDisplayableInto(2000, 1000, &out);
  ASSERT_EQ(out.size(), 6u);
  for (uint64_t k = 1; k <= 6; ++k) {
    EXPECT_EQ(out[k - 1].key, SampleKey{k});
  }
}

TEST(IngestFastPathTest, IdPathLateDropCounted) {
  SampleBuffer buffer;
  EXPECT_FALSE(buffer.Push(SampleKey{1}, 10, 1.0, /*now_ms=*/200, /*delay_ms=*/100));
  EXPECT_EQ(buffer.stats().dropped_late, 1);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(IngestFastPathTest, OverflowEvictsOldestUnderBatchDrain) {
  SampleBuffer buffer(/*max_samples=*/3);  // small -> single shard
  for (int i = 0; i < 5; ++i) {
    buffer.Push(SampleKey{1}, i * 10, static_cast<double>(i), 0, 10000);
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.stats().dropped_overflow, 2);
  std::vector<Sample> out;
  EXPECT_EQ(buffer.DrainDisplayableInto(100000, 10000, &out), 3u);
  EXPECT_DOUBLE_EQ(out[0].value, 2.0);
  EXPECT_DOUBLE_EQ(out[2].value, 4.0);
  EXPECT_EQ(buffer.stats().drained, 3);
}

TEST(IngestFastPathTest, PartialDrainRetainsFutureSamples) {
  SampleBuffer buffer;
  buffer.Push(SampleKey{1}, 10, 1.0, 0, 50);
  buffer.Push(SampleKey{1}, 100, 2.0, 0, 50);
  std::vector<Sample> out;
  EXPECT_EQ(buffer.DrainDisplayableInto(/*now_ms=*/60, /*delay_ms=*/50, &out), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.0);
  EXPECT_EQ(buffer.size(), 1u);
  out.clear();
  EXPECT_EQ(buffer.DrainDisplayableInto(150, 50, &out), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 2.0);
}

TEST(IngestFastPathTest, OutOfOrderPushesDrainSorted) {
  SampleBuffer buffer;
  // Deliberately unsorted times on one key (same shard) to force the sort
  // fallback path.
  const int64_t times[] = {50, 10, 40, 20, 30};
  for (int64_t t : times) {
    buffer.Push(SampleKey{7}, t, static_cast<double>(t), 0, 1000);
  }
  std::vector<Sample> out;
  buffer.DrainDisplayableInto(2000, 1000, &out);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].time_ms, out[i].time_ms);
  }
}

TEST(IngestFastPathTest, PushBatchAcceptsCountsAndOrders) {
  SampleBuffer buffer;
  std::vector<Sample> batch = {
      {30, 3.0, SampleKey{1}, 0},
      {10, 1.0, SampleKey{2}, 0},
      {5, 0.5, SampleKey{3}, 0},  // late: 5 + 100 < 106
      {20, 2.0, SampleKey{4}, 0},
  };
  EXPECT_EQ(buffer.PushBatch(batch.data(), batch.size(), /*now_ms=*/106, /*delay_ms=*/100), 3u);
  EXPECT_EQ(buffer.stats().dropped_late, 1);
  EXPECT_EQ(buffer.stats().pushed, 3);
  std::vector<Sample> out;
  buffer.DrainDisplayableInto(2000, 100, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].time_ms, 10);
  EXPECT_EQ(out[1].time_ms, 20);
  EXPECT_EQ(out[2].time_ms, 30);
}

TEST(IngestFastPathTest, PushBatchOverflowEvictsOldest) {
  SampleBuffer buffer(/*max_samples=*/4);
  std::vector<Sample> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back({i, static_cast<double>(i), SampleKey{1}, 0});
  }
  EXPECT_EQ(buffer.PushBatch(batch.data(), batch.size(), 0, 10000), 10u);
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.stats().dropped_overflow, 6);
  std::vector<Sample> out;
  buffer.DrainDisplayableInto(100000, 10000, &out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out.front().value, 6.0);
}

TEST(IngestFastPathTest, SingleKeyMayUseFullCapacityAcrossShards) {
  // A sharded buffer (capacity >= 4096) must still honour max_samples for a
  // single hot key: rings grow on demand rather than splitting the budget.
  SampleBuffer buffer(/*max_samples=*/8192);
  ASSERT_GT(buffer.shard_count(), 1u);
  for (int i = 0; i < 8192; ++i) {
    buffer.Push(SampleKey{1}, i, 1.0, 0, 1 << 20);
  }
  EXPECT_EQ(buffer.size(), 8192u);
  EXPECT_EQ(buffer.stats().dropped_overflow, 0);
  buffer.Push(SampleKey{1}, 8192, 1.0, 0, 1 << 20);
  EXPECT_EQ(buffer.size(), 8192u);
  EXPECT_EQ(buffer.stats().dropped_overflow, 1);
}

TEST(IngestFastPathTest, OverflowEvictsGloballyOldestAcrossShards) {
  SampleBuffer buffer(/*max_samples=*/4096);
  ASSERT_GT(buffer.shard_count(), 1u);
  // Key 1 holds the oldest samples; key 2 overflows the buffer.  Evictions
  // must hit key 1's old samples, not key 2's own shard.
  for (int i = 0; i < 4000; ++i) {
    buffer.Push(SampleKey{1}, i, 1.0, 0, 1 << 20);
  }
  for (int i = 0; i < 200; ++i) {
    buffer.Push(SampleKey{2}, 10000 + i, 2.0, 0, 1 << 20);
  }
  EXPECT_LE(buffer.size(), 4096u);
  EXPECT_EQ(buffer.stats().dropped_overflow, 104);
  std::vector<Sample> out;
  buffer.DrainDisplayableInto(1 << 21, 1 << 20, &out);
  ASSERT_FALSE(out.empty());
  // The first 104 samples (times 0..103, key 1) were evicted.
  EXPECT_EQ(out.front().time_ms, 104);
  EXPECT_EQ(out.front().key, SampleKey{1});
}

TEST(IngestFastPathTest, NameShimAndIdPathShareOneBuffer) {
  // The Tuple shim interns names above the unnamed key; drained Tuples get
  // their names back.
  SampleBuffer buffer;
  EXPECT_TRUE(buffer.Push(Tuple{10, 1.0, "alpha"}, 0, 1000));
  EXPECT_TRUE(buffer.Push(Tuple{20, 2.0, "beta"}, 0, 1000));
  EXPECT_TRUE(buffer.Push(Tuple{30, 3.0, "alpha"}, 0, 1000));
  auto drained = buffer.DrainDisplayable(2000, 1000);
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].name, "alpha");
  EXPECT_EQ(drained[1].name, "beta");
  EXPECT_EQ(drained[2].name, "alpha");
}

// ---- Scope id fast path vs name shim ---------------------------------------

class ScopeIngestTest : public ::testing::Test {
 protected:
  ScopeIngestTest() : loop_(&clock_), scope_(&loop_, {.name = "ingest", .width = 64}) {
    scope_.SetPollingMode(10);
  }

  SimClock clock_;
  MainLoop loop_;
  Scope scope_;
};

TEST_F(ScopeIngestTest, IdFastPathEquivalentToNameShim) {
  SignalId by_id = scope_.AddSignal({.name = "by_id", .source = BufferSource{}});
  SignalId by_name = scope_.AddSignal({.name = "by_name", .source = BufferSource{}});
  scope_.StartPolling();
  int64_t now = scope_.NowMs();
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(scope_.PushBuffered(by_id, now + i, static_cast<double>(i)));
    EXPECT_TRUE(scope_.PushBuffered("by_name", now + i, static_cast<double>(i)));
  }
  loop_.RunForMs(50);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(by_id).value_or(-1), 5.0);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(by_name).value_or(-1), 5.0);
  EXPECT_EQ(scope_.counters().buffered_routed, 10);
  EXPECT_EQ(scope_.TraceFor(by_id)->size(), scope_.TraceFor(by_name)->size());
}

TEST_F(ScopeIngestTest, IdZeroCountsUnmatched) {
  scope_.AddSignal({.name = "ev", .source = BufferSource{}});
  scope_.StartPolling();
  EXPECT_TRUE(scope_.PushBuffered(SignalId{0}, scope_.NowMs(), 1.0));
  loop_.RunForMs(50);
  EXPECT_GE(scope_.counters().buffered_unmatched, 1);
  EXPECT_EQ(scope_.counters().buffered_routed, 0);
}

TEST_F(ScopeIngestTest, StaleIdAfterRemovalCountsUnmatched) {
  SignalId id = scope_.AddSignal({.name = "gone", .source = BufferSource{}});
  scope_.StartPolling();
  EXPECT_TRUE(scope_.RemoveSignal(id));
  EXPECT_TRUE(scope_.PushBuffered(id, scope_.NowMs(), 1.0));
  loop_.RunForMs(50);
  EXPECT_GE(scope_.counters().buffered_unmatched, 1);
}

TEST_F(ScopeIngestTest, NamePushedBeforeSignalExistsResolvesAtDrain) {
  // Drain-time resolution: a sample pushed before its signal is added must
  // still route if the signal appears within the display delay window.
  scope_.SetDelayMs(100);
  scope_.StartPolling();
  EXPECT_TRUE(scope_.PushBuffered("early", scope_.NowMs(), 5.0));
  SignalId id = scope_.AddSignal({.name = "early", .source = BufferSource{}});
  ASSERT_NE(id, 0);
  loop_.RunForMs(200);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 5.0);
  EXPECT_EQ(scope_.counters().buffered_routed, 1);
  EXPECT_EQ(scope_.counters().buffered_unmatched, 0);
}

TEST_F(ScopeIngestTest, UnknownNameNeverAddedCountsUnmatched) {
  scope_.StartPolling();
  EXPECT_TRUE(scope_.PushBuffered("never", scope_.NowMs(), 1.0));
  loop_.RunForMs(50);
  EXPECT_GE(scope_.counters().buffered_unmatched, 1);
}

TEST_F(ScopeIngestTest, DirectBufferTuplePushRoutesByName) {
  // Legacy pattern: pushing a named Tuple straight into scope.buffer().
  // The shim's interned keys must not collide with SignalIds — the sample
  // has to land on the signal with the matching *name*, not the matching id.
  SignalId first = scope_.AddSignal({.name = "first", .source = BufferSource{}});
  SignalId second = scope_.AddSignal({.name = "second", .source = BufferSource{}});
  ASSERT_EQ(first, 1);  // would collide with a bare interned key
  scope_.StartPolling();
  EXPECT_TRUE(scope_.buffer().Push(Tuple{scope_.NowMs(), 9.0, "second"}, scope_.NowMs(), 0));
  loop_.RunForMs(50);
  EXPECT_FALSE(scope_.LatestValue(first).has_value() && *scope_.LatestValue(first) == 9.0);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(second).value_or(-1), 9.0);
}

TEST_F(ScopeIngestTest, FindOrAddBufferSignalIsIdempotent) {
  SignalId a = scope_.FindOrAddBufferSignal("auto");
  ASSERT_NE(a, 0);
  EXPECT_EQ(scope_.FindOrAddBufferSignal("auto"), a);
  EXPECT_EQ(scope_.FindSignal("auto"), a);
  EXPECT_EQ(scope_.SpecFor(a)->type(), SignalType::kBuffer);
  EXPECT_EQ(scope_.FindOrAddBufferSignal(""), 0);
}

TEST_F(ScopeIngestTest, SignalsEpochBumpsOnAddAndRemove) {
  uint64_t e0 = scope_.signals_epoch();
  SignalId id = scope_.AddSignal({.name = "e", .source = BufferSource{}});
  uint64_t e1 = scope_.signals_epoch();
  EXPECT_GT(e1, e0);
  scope_.RemoveSignal(id);
  EXPECT_GT(scope_.signals_epoch(), e1);
}

TEST_F(ScopeIngestTest, PushBufferedBatchRoutesAndCountsLate) {
  SignalId id = scope_.AddSignal({.name = "batched", .source = BufferSource{}});
  scope_.StartPolling();
  loop_.RunForMs(100);
  scope_.SetDelayMs(0);
  int64_t now = scope_.NowMs();
  std::vector<Sample> batch = {
      {now, 1.0, static_cast<SampleKey>(id), 0},
      {now - 1000, 9.0, static_cast<SampleKey>(id), 0},  // late
      {now, 2.0, static_cast<SampleKey>(id), 0},
  };
  EXPECT_EQ(scope_.PushBufferedBatch(batch.data(), batch.size()), 2u);
  loop_.RunForMs(50);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 2.0);
  EXPECT_EQ(scope_.counters().buffered_routed, 2);
}

TEST_F(ScopeIngestTest, SteadyStateIdPathDoesNotAllocate) {
  SignalId id = scope_.AddSignal({.name = "hot", .source = BufferSource{}});
  scope_.StartPolling();
  // Warm up: grow the drain scratch and ring capacities.
  for (int round = 0; round < 5; ++round) {
    int64_t now = scope_.NowMs();
    for (int i = 0; i < 256; ++i) {
      scope_.PushBuffered(id, now, static_cast<double>(i));
    }
    scope_.TickOnce();
  }

  int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 20; ++round) {
    int64_t now = scope_.NowMs();
    for (int i = 0; i < 256; ++i) {
      scope_.PushBuffered(id, now, static_cast<double>(i));
    }
    scope_.TickOnce();
  }
  int64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "steady-state id-path ingest must not allocate";
}

TEST_F(ScopeIngestTest, MultiScopeSteadyStateFanoutDoesNotAllocate) {
  // The sharded fan-out: one router feeding 4 scopes.  After warm-up (route
  // table built, block pool and span queues at capacity), a steady stream of
  // append -> flush -> drain cycles must not allocate, regardless of how
  // many scopes subscribe.
  IngestRouter router;
  constexpr int kScopes = 4;
  std::vector<std::unique_ptr<Scope>> scopes;
  for (int i = 0; i < kScopes; ++i) {
    scopes.push_back(std::make_unique<Scope>(
        &loop_, ScopeOptions{.name = "fan" + std::to_string(i), .width = 64}));
    scopes.back()->SetPollingMode(10);
    scopes.back()->StartPolling();
    ASSERT_TRUE(router.AddScope(scopes.back().get()));
  }
  auto round = [&]() {
    int64_t now = scopes[0]->NowMs();
    for (int i = 0; i < 256; ++i) {
      router.Append("hot", now, static_cast<double>(i));
    }
    router.Flush();
    clock_.AdvanceMs(5);
    for (auto& scope : scopes) {
      scope->TickOnce();
    }
  };
  for (int warm = 0; warm < 5; ++warm) {
    round();
  }

  int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int r = 0; r < 20; ++r) {
    round();
  }
  int64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "steady-state multi-scope fan-out must not allocate";
  for (auto& scope : scopes) {
    // All samples attributed; with no every-sample consumer attached the
    // drain folded each 256-sample span to one hold write (255 coalesced).
    EXPECT_EQ(scope->counters().buffered_routed, 25 * 256);
    EXPECT_EQ(scope->counters().samples_coalesced, 25 * 255);
    EXPECT_EQ(scope->counters().samples_retained, 0);
  }
}

TEST_F(ScopeIngestTest, SteadyStateCoalescedHistoryMixDoesNotAllocate) {
  // The coalesced drain with a history signal in the same span: the fold
  // handles the display-only route, the per-sample walk feeds the sink, and
  // neither allocates in steady state.
  IngestRouter router;
  Scope sink_scope(&loop_, ScopeOptions{.name = "mix", .width = 64});
  sink_scope.SetPollingMode(10);
  sink_scope.StartPolling();
  ASSERT_TRUE(router.AddScope(&sink_scope));
  SignalId hist = sink_scope.FindOrAddBufferSignal("hist");
  int64_t seen = 0;
  int64_t* seen_ptr = &seen;  // pointer capture: fits std::function's SBO
  ASSERT_NE(sink_scope.AttachSampleSink(hist, [seen_ptr](int64_t, double) { ++*seen_ptr; }),
            0u);
  auto round = [&]() {
    int64_t now = sink_scope.NowMs();
    for (int i = 0; i < 128; ++i) {
      router.Append("hist", now, static_cast<double>(i));
      router.Append("disp", now, static_cast<double>(i));
    }
    router.Flush();
    clock_.AdvanceMs(5);
    sink_scope.TickOnce();
  };
  for (int warm = 0; warm < 5; ++warm) {
    round();
  }

  int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int r = 0; r < 20; ++r) {
    round();
  }
  int64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "steady-state coalesced drain must not allocate";
  EXPECT_EQ(seen, 25 * 128);
  EXPECT_EQ(sink_scope.counters().samples_retained, 25 * 128);
  EXPECT_EQ(sink_scope.counters().samples_coalesced, 25 * 127);
}

TEST_F(ScopeIngestTest, SteadyStateBatchPathDoesNotAllocate) {
  SignalId id = scope_.AddSignal({.name = "hot", .source = BufferSource{}});
  scope_.StartPolling();
  std::vector<Sample> batch(256);
  auto fill = [&batch, id](int64_t now) {
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i] = Sample{now, static_cast<double>(i), static_cast<SampleKey>(id), 0};
    }
  };
  for (int round = 0; round < 5; ++round) {
    fill(scope_.NowMs());
    scope_.PushBufferedBatch(batch.data(), batch.size());
    scope_.TickOnce();
  }

  int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 20; ++round) {
    fill(scope_.NowMs());
    scope_.PushBufferedBatch(batch.data(), batch.size());
    scope_.TickOnce();
  }
  int64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "steady-state batch ingest must not allocate";
}

// ---- Binary wire codec steady state -----------------------------------------

TEST(WireCodecFastPathTest, SteadyStateEncodeDecodeDoesNotAllocate) {
  // The binary upload path's per-tuple cost claim rests on both ends reusing
  // their buffers: once every name is interned (encoder) and the side buffer
  // has grown to a frame (decoder), a continuous stream of stage -> emit ->
  // consume cycles - including frames split across reads - must not touch
  // the heap.
  wire::WireEncoder encoder;
  wire::FrameDecoder decoder;
  struct CountingHandler {
    int64_t samples = 0;
    int64_t dict = 0;
    void OnDictEntry(uint32_t, std::string_view) { ++dict; }
    void OnSampleBatch(int64_t, const char*, size_t n) { samples += n; }
    void OnTextLine(std::string_view) {}
  };
  CountingHandler handler;
  std::string out;
  auto round = [&]() {
    out.clear();
    for (int i = 0; i < 256; ++i) {
      const char* name = (i & 1) != 0 ? "wire_hot_a" : "wire_hot_b";
      if (encoder.Add(name, 1000 + i, i * 0.5) != wire::StageResult::kStaged) {
        ADD_FAILURE() << "unexpected stage result";
      }
      if (encoder.staged_samples() >= 128) {
        encoder.EmitFrame(out);
      }
    }
    encoder.EmitFrame(out);
    // Split every frame across two reads so the decoder's buffered path
    // (assign + erase) stays on the measured fast path too.
    size_t half = out.size() / 2;
    decoder.Consume(out.data(), half, handler);
    decoder.Consume(out.data() + half, out.size() - half, handler);
  };
  for (int warm = 0; warm < 5; ++warm) {
    round();
  }

  int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int r = 0; r < 20; ++r) {
    round();
  }
  int64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "steady-state wire encode/decode must not allocate";
  EXPECT_EQ(handler.samples, 25 * 256);
  EXPECT_EQ(decoder.stats().crc_errors, 0);
  EXPECT_EQ(decoder.stats().frames_rx, 25 * 2);
}

}  // namespace
}  // namespace gscope
