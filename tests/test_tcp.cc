#include "netsim/tcp.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

namespace gscope {
namespace {

// Wires a sender/receiver pair over fixed one-way delays with a programmable
// drop/mark filter on the data path.  RTT = 2 * kOneWayUs.
class TcpHarness {
 public:
  static constexpr SimTime kOneWayUs = 10'000;  // 20 ms RTT

  explicit TcpHarness(TcpConfig config = {}) {
    sender = std::make_unique<TcpSender>(&sim, 1, config, [this](Packet p) {
      if (data_filter && !data_filter(p)) {
        return;  // dropped
      }
      sim.ScheduleAfter(kOneWayUs, [this, p]() { receiver->OnData(p); });
    });
    receiver = std::make_unique<TcpReceiver>(&sim, 1, [this](Packet p) {
      sim.ScheduleAfter(kOneWayUs, [this, p]() { sender->OnAck(p); });
    });
  }

  Simulator sim;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  std::function<bool(Packet&)> data_filter;
};

TEST(TcpTest, SlowStartDoublesWindowPerRtt) {
  TcpHarness h;
  h.sender->Start();
  double initial = h.sender->cwnd_segments();
  h.sim.RunForMs(21);  // one RTT of acks
  double after_one_rtt = h.sender->cwnd_segments();
  // Slow start: every ack adds one MSS; cwnd roughly doubles.
  EXPECT_NEAR(after_one_rtt, initial * 2, 0.5);
  h.sim.RunForMs(20);
  EXPECT_NEAR(h.sender->cwnd_segments(), initial * 4, 1.0);
}

TEST(TcpTest, BytesFlowEndToEnd) {
  TcpHarness h;
  h.sender->Start();
  h.sim.RunForMs(500);
  EXPECT_GT(h.sender->stats().bytes_acked, 100 * 1460);
  EXPECT_EQ(h.receiver->stats().bytes_delivered, h.sender->stats().bytes_acked);
  EXPECT_EQ(h.sender->stats().timeouts, 0);
}

TEST(TcpTest, LimitedTransferCompletes) {
  TcpConfig config;
  config.bytes_to_send = 20 * 1460;
  TcpHarness h(config);
  h.sender->Start();
  h.sim.RunForMs(2000);
  EXPECT_TRUE(h.sender->done());
  EXPECT_FALSE(h.sender->active());
  EXPECT_GE(h.receiver->stats().bytes_delivered, config.bytes_to_send);
}

TEST(TcpTest, RttEstimateTracksPathDelay) {
  TcpHarness h;
  h.sender->Start();
  h.sim.RunForMs(300);
  EXPECT_GT(h.sender->stats().rtt_samples, 5);
  EXPECT_NEAR(h.sender->srtt_ms(), 20.0, 5.0);
}

TEST(TcpTest, SingleLossTriggersFastRetransmitNotTimeout) {
  TcpHarness h;
  bool dropped_one = false;
  h.data_filter = [&](Packet& p) {
    // Drop the first transmission of segment at seq 10*mss.
    if (!p.retransmit && p.seq == 10 * 1460 && !dropped_one) {
      dropped_one = true;
      return false;
    }
    return true;
  };
  h.sender->Start();
  h.sim.RunForMs(1000);
  EXPECT_TRUE(dropped_one);
  EXPECT_GE(h.sender->stats().fast_retransmits, 1);
  EXPECT_EQ(h.sender->stats().timeouts, 0);
  // Recovery completed: data continued flowing past the hole.
  EXPECT_GT(h.sender->stats().bytes_acked, 20 * 1460);
}

TEST(TcpTest, FastRetransmitHalvesWindow) {
  TcpHarness h;
  bool dropped_one = false;
  double cwnd_at_drop = 0.0;
  h.data_filter = [&](Packet& p) {
    if (!p.retransmit && p.seq == 20 * 1460 && !dropped_one) {
      dropped_one = true;
      cwnd_at_drop = h.sender->cwnd_segments();
      return false;
    }
    return true;
  };
  h.sender->Start();
  h.sim.RunForMs(1000);
  ASSERT_TRUE(dropped_one);
  EXPECT_LT(h.sender->stats().min_cwnd_segments, cwnd_at_drop);
  EXPECT_GT(h.sender->stats().min_cwnd_segments, 1.5);  // but never to 1
}

TEST(TcpTest, TotalBlackoutCausesTimeoutAndCwndOne) {
  // The Figure 4 signature: a retransmission timeout collapses cwnd to 1.
  TcpHarness h;
  bool blackout = false;
  h.data_filter = [&](Packet&) { return !blackout; };
  h.sender->Start();
  h.sim.RunForMs(100);
  EXPECT_EQ(h.sender->stats().timeouts, 0);
  blackout = true;
  h.sim.RunForMs(2500);  // enough for the RTO to fire
  EXPECT_GE(h.sender->stats().timeouts, 1);
  EXPECT_DOUBLE_EQ(h.sender->stats().min_cwnd_segments, 1.0);
  // Heal the path: the connection must recover and make progress.
  blackout = false;
  int64_t acked_before = h.sender->stats().bytes_acked;
  h.sim.RunForMs(5000);
  EXPECT_GT(h.sender->stats().bytes_acked, acked_before);
}

TEST(TcpTest, RtoBacksOffExponentially) {
  TcpHarness h;
  bool blackout = false;
  h.data_filter = [&](Packet&) { return !blackout; };
  h.sender->Start();
  h.sim.RunForMs(100);
  blackout = true;
  SimTime rto_before = h.sender->rto_us();
  h.sim.RunForMs(10'000);
  EXPECT_GE(h.sender->stats().timeouts, 2);
  EXPECT_GT(h.sender->rto_us(), rto_before);
}

TEST(TcpTest, EcnMarkHalvesWindowWithoutTimeout) {
  // The Figure 5 signature: marks, not losses; cwnd halves, never hits 1.
  TcpConfig config;
  config.ecn = true;
  TcpHarness h(config);
  int marks = 0;
  h.data_filter = [&](Packet& p) {
    // Mark (never drop) one packet per 50 once the window is established.
    if (p.ecn_capable && p.seq > 30 * 1460 && (p.seq / 1460) % 50 == 0) {
      p.ecn_ce = true;
      ++marks;
    }
    return true;
  };
  h.sender->Start();
  h.sim.RunForMs(3000);
  EXPECT_GT(marks, 0);
  EXPECT_GT(h.sender->stats().ecn_reductions, 0);
  EXPECT_EQ(h.sender->stats().timeouts, 0);
  EXPECT_GT(h.sender->stats().min_cwnd_segments, 1.0);
}

TEST(TcpTest, EcnEchoLatchesUntilCwr) {
  Simulator sim;
  std::vector<Packet> acks;
  TcpReceiver receiver(&sim, 1, [&acks](Packet p) { acks.push_back(p); });

  Packet data;
  data.flow_id = 1;
  data.seq = 0;
  data.payload = 1460;
  data.ecn_ce = true;
  receiver.OnData(data);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].ecn_echo);

  // Next segment without CE: echo persists (sender hasn't acknowledged).
  Packet data2 = data;
  data2.seq = 1460;
  data2.ecn_ce = false;
  receiver.OnData(data2);
  EXPECT_TRUE(acks[1].ecn_echo);

  // CWR clears the latch.
  Packet data3 = data2;
  data3.seq = 2920;
  data3.cwr = true;
  receiver.OnData(data3);
  EXPECT_FALSE(acks[2].ecn_echo);
}

TEST(TcpTest, ReceiverReassemblesOutOfOrder) {
  Simulator sim;
  std::vector<Packet> acks;
  TcpReceiver receiver(&sim, 1, [&acks](Packet p) { acks.push_back(p); });

  Packet seg;
  seg.flow_id = 1;
  seg.payload = 1000;

  seg.seq = 1000;  // gap at 0
  receiver.OnData(seg);
  EXPECT_EQ(acks.back().ack, 0);
  ASSERT_EQ(acks.back().sack.size(), 1u);
  EXPECT_EQ(acks.back().sack[0].begin, 1000);
  EXPECT_EQ(acks.back().sack[0].end, 2000);

  seg.seq = 0;  // fill the gap
  receiver.OnData(seg);
  EXPECT_EQ(acks.back().ack, 2000);
  EXPECT_TRUE(acks.back().sack.empty());
  EXPECT_EQ(receiver.stats().out_of_order, 1);
}

TEST(TcpTest, DuplicateSegmentsReAcked) {
  Simulator sim;
  std::vector<Packet> acks;
  TcpReceiver receiver(&sim, 1, [&acks](Packet p) { acks.push_back(p); });
  Packet seg;
  seg.flow_id = 1;
  seg.payload = 1000;
  seg.seq = 0;
  receiver.OnData(seg);
  receiver.OnData(seg);  // duplicate
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[1].ack, 1000);
}

TEST(TcpTest, SackAvoidsSpuriousRetransmits) {
  // Drop two separate segments in one window; SACK recovery should
  // retransmit only the holes, and the retransmit count stays small.
  TcpConfig config;
  config.sack = true;
  TcpHarness h(config);
  int drops = 0;
  h.data_filter = [&](Packet& p) {
    if (!p.retransmit && (p.seq == 30 * 1460 || p.seq == 33 * 1460) && drops < 2) {
      ++drops;
      return false;
    }
    return true;
  };
  h.sender->Start();
  h.sim.RunForMs(2000);
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(h.sender->stats().timeouts, 0);
  EXPECT_LE(h.sender->stats().retransmits, 6);
  EXPECT_GT(h.sender->stats().bytes_acked, 40 * 1460);
}

TEST(TcpTest, StopCancelsTimers) {
  TcpHarness h;
  h.sender->Start();
  h.sim.RunForMs(50);
  h.sender->Stop();
  int64_t timeouts = h.sender->stats().timeouts;
  h.sim.RunForMs(10'000);
  EXPECT_EQ(h.sender->stats().timeouts, timeouts);  // no RTO after Stop
}

TEST(TcpTest, CongestionAvoidanceSlowerThanSlowStart) {
  TcpHarness h;
  h.sender->Start();
  h.sim.RunForMs(200);  // long past slow start given the unbounded ssthresh?
  // Force congestion avoidance by capping ssthresh via an ECN-style event:
  // simpler: measure growth at a large window - in slow start growth is
  // exponential; verify cwnd does not explode unboundedly within bounds of
  // the receiver window (sanity bound).
  EXPECT_LT(h.sender->cwnd_segments(), 100000.0);
}


// Property sweep: dropping the first transmission of any single segment is
// always recovered without an RTO (SACK fast recovery), wherever the hole
// falls in the stream.
class TcpSingleLossProperty : public ::testing::TestWithParam<int> {};

TEST_P(TcpSingleLossProperty, RecoversWithoutTimeout) {
  int segment = GetParam();
  TcpHarness h;
  bool dropped = false;
  h.data_filter = [&](Packet& p) {
    if (!p.retransmit && p.seq == static_cast<int64_t>(segment) * 1460 && !dropped) {
      dropped = true;
      return false;
    }
    return true;
  };
  h.sender->Start();
  h.sim.RunForMs(2000);
  EXPECT_TRUE(dropped);
  EXPECT_EQ(h.sender->stats().timeouts, 0) << "segment " << segment;
  EXPECT_GT(h.sender->stats().bytes_acked, static_cast<int64_t>(segment + 20) * 1460);
  EXPECT_EQ(h.receiver->stats().bytes_delivered, h.sender->stats().bytes_acked);
}

INSTANTIATE_TEST_SUITE_P(DropPositions, TcpSingleLossProperty,
                         ::testing::Values(4, 10, 25, 50, 100, 333));

TEST(TcpEdgeTest, LostRetransmissionEventuallyRecoversViaRto) {
  // Drop the original AND the fast-retransmitted copy: only the RTO can
  // repair this, and the connection must still converge.
  TcpHarness h;
  int drops = 0;
  h.data_filter = [&](Packet& p) {
    if (p.seq == 15 * 1460 && drops < 2) {
      ++drops;
      return false;
    }
    return true;
  };
  h.sender->Start();
  h.sim.RunForMs(5000);
  EXPECT_EQ(drops, 2);
  EXPECT_GE(h.sender->stats().timeouts, 1);
  EXPECT_GT(h.sender->stats().bytes_acked, 50 * 1460);
  EXPECT_EQ(h.receiver->stats().bytes_delivered, h.sender->stats().bytes_acked);
}

TEST(TcpEdgeTest, AckPathLossToleratedByCumulativeAcks) {
  // Dropping every 5th ACK must not stall the connection: cumulative acks
  // cover the gaps.
  Simulator sim;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  int ack_count = 0;
  sender = std::make_unique<TcpSender>(&sim, 1, TcpConfig{}, [&](Packet p) {
    sim.ScheduleAfter(TcpHarness::kOneWayUs, [&, p]() { receiver->OnData(p); });
  });
  receiver = std::make_unique<TcpReceiver>(&sim, 1, [&](Packet p) {
    if (++ack_count % 5 == 0) {
      return;  // drop this ack
    }
    sim.ScheduleAfter(TcpHarness::kOneWayUs, [&, p]() { sender->OnAck(p); });
  });
  sender->Start();
  sim.RunForMs(1000);
  EXPECT_GT(sender->stats().bytes_acked, 50 * 1460);
  EXPECT_EQ(sender->stats().timeouts, 0);
}

}  // namespace
}  // namespace gscope
