#include "freq/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace gscope {
namespace {

TEST(FftTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1000));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(3, Complex{1.0, 0.0});
  EXPECT_FALSE(Fft(&data));
}

TEST(FftTest, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> data(8, Complex{0.0, 0.0});
  data[0] = Complex{1.0, 0.0};
  ASSERT_TRUE(Fft(&data));
  for (const Complex& bin : data) {
    EXPECT_NEAR(std::abs(bin), 1.0, 1e-12);
  }
}

TEST(FftTest, DcGivesSingleBin) {
  std::vector<Complex> data(8, Complex{2.0, 0.0});
  ASSERT_TRUE(Fft(&data));
  EXPECT_NEAR(std::abs(data[0]), 16.0, 1e-12);
  for (size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
  }
}

TEST(FftTest, SinePeaksAtItsBin) {
  constexpr size_t kN = 64;
  constexpr int kBin = 5;
  std::vector<Complex> data(kN);
  for (size_t i = 0; i < kN; ++i) {
    double t = static_cast<double>(i) / kN;
    data[i] = Complex{std::sin(2.0 * std::numbers::pi * kBin * t), 0.0};
  }
  ASSERT_TRUE(Fft(&data));
  // A pure sine concentrates energy at bins kBin and kN - kBin.
  EXPECT_NEAR(std::abs(data[kBin]), kN / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[kN - kBin]), kN / 2.0, 1e-9);
  for (size_t i = 0; i < kN; ++i) {
    if (i != kBin && i != kN - kBin) {
      EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9) << "bin " << i;
    }
  }
}

TEST(FftTest, InverseRoundTrip) {
  std::vector<Complex> original = {
      {1.0, 0.5}, {-2.0, 0.0}, {3.25, -1.0}, {0.0, 0.0},
      {4.0, 4.0}, {-1.5, 2.5}, {0.125, 0.0}, {7.0, -3.0},
  };
  std::vector<Complex> data = original;
  ASSERT_TRUE(Fft(&data));
  ASSERT_TRUE(Fft(&data, /*inverse=*/true));
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-12);
  }
}

TEST(FftTest, LinearityHolds) {
  std::vector<Complex> a = {{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  std::vector<Complex> b = {{-1, 0}, {0, 0}, {5, 0}, {2, 0}};
  std::vector<Complex> sum(4);
  for (size_t i = 0; i < 4; ++i) {
    sum[i] = a[i] + b[i];
  }
  ASSERT_TRUE(Fft(&a));
  ASSERT_TRUE(Fft(&b));
  ASSERT_TRUE(Fft(&sum));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + b[i])), 0.0, 1e-12);
  }
}

TEST(FftTest, FftRealZeroPads) {
  std::vector<double> input(5, 1.0);
  auto bins = FftReal(input);
  EXPECT_EQ(bins.size(), 8u);
  EXPECT_NEAR(bins[0].real(), 5.0, 1e-12);  // DC = sum of inputs
}

TEST(FftTest, FftRealEmptyInput) {
  auto bins = FftReal({});
  EXPECT_EQ(bins.size(), 1u);
}

// Parseval's theorem: sum |x|^2 == (1/N) sum |X|^2, swept over sizes.
class FftParsevalProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(FftParsevalProperty, EnergyConserved) {
  size_t n = GetParam();
  std::vector<Complex> data(n);
  // Deterministic pseudo-random input.
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(static_cast<int64_t>(state >> 33)) / (1ll << 30);
  };
  double time_energy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    data[i] = Complex{next(), next()};
    time_energy += std::norm(data[i]);
  }
  ASSERT_TRUE(Fft(&data));
  double freq_energy = 0.0;
  for (const Complex& bin : data) {
    freq_energy += std::norm(bin);
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * std::max(1.0, time_energy));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftParsevalProperty,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

}  // namespace
}  // namespace gscope
