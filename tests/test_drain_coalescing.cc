// Last-wins drain coalescing (docs/perf.md): display-only signals keep only
// the newest sample per poll tick via the block's per-route summary, while
// every-sample consumers (trigger, trace, aggregate, envelope, export, tap)
// provably observe every sample.  Mode flips ride the route epoch.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/aggregate.h"
#include "core/envelope.h"
#include "core/ingest_router.h"
#include "core/scope.h"
#include "core/trigger.h"
#include "core/tuple_io.h"
#include "runtime/clock.h"

namespace gscope {
namespace {

class DrainCoalescingTest : public ::testing::Test {
 protected:
  DrainCoalescingTest() : loop_(&clock_) {}

  Scope* MakeScope(const std::string& name, bool coalesce = true) {
    scopes_.push_back(std::make_unique<Scope>(
        &loop_, ScopeOptions{.name = name, .width = 64, .coalesce_display_only = coalesce}));
    Scope* scope = scopes_.back().get();
    scope->SetPollingMode(10);
    scope->StartPolling();
    return scope;
  }

  // One append->flush->tick round: `count` samples for `name`, values
  // 0..count-1, all stamped at scope-now so the span is wholly displayable
  // at the tick that follows.
  void Round(IngestRouter& router, const std::string& name, int count) {
    int64_t now = scopes_[0]->NowMs();
    for (int i = 0; i < count; ++i) {
      router.Append(name, now + 1, static_cast<double>(i));
    }
    router.Flush();
    clock_.AdvanceMs(5);
    for (auto& scope : scopes_) {
      scope->TickOnce();
    }
  }

  SimClock clock_;
  MainLoop loop_;
  std::vector<std::unique_ptr<Scope>> scopes_;
};

TEST_F(DrainCoalescingTest, DisplayOnlySignalCoalescesToLastValuePerTick) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("disp");
  ASSERT_TRUE(router.AddScope(scope));

  int64_t now = scope->NowMs();
  for (int i = 0; i < 100; ++i) {
    router.Append("sig", now + 1, static_cast<double>(i));
  }
  router.Flush();
  clock_.AdvanceMs(5);
  scope->TickOnce();

  SignalId id = scope->FindSignal("sig");
  ASSERT_NE(id, 0);
  // Exactly the last value per tick, with the winning sample's timestamp.
  EXPECT_DOUBLE_EQ(scope->LatestValue(id).value_or(-1), 99.0);
  EXPECT_EQ(scope->LatestBufferedTime(id).value_or(-1), now + 1);
  // All 100 samples were attributed; 99 never took the per-sample walk.
  EXPECT_EQ(scope->counters().buffered_routed, 100);
  EXPECT_EQ(scope->counters().samples_coalesced, 99);
  EXPECT_EQ(scope->counters().samples_retained, 0);
}

TEST_F(DrainCoalescingTest, CoalescingPicksNewestStampInUnorderedSpan) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("unordered");
  ASSERT_TRUE(router.AddScope(scope));

  clock_.AdvanceMs(50);
  int64_t now = scope->NowMs();
  // Stamps run backwards (but none late): the winner is the (time,
  // arrival)-max sample, the one a stable sort by time would route last.
  router.Append("sig", now + 1, 1.0);
  router.Append("sig", now + 3, 7.0);  // newest stamp
  router.Append("sig", now + 2, 3.0);
  router.Flush();
  clock_.AdvanceMs(5);
  scope->TickOnce();

  SignalId id = scope->FindSignal("sig");
  EXPECT_DOUBLE_EQ(scope->LatestValue(id).value_or(-1), 7.0);
  EXPECT_EQ(scope->LatestBufferedTime(id).value_or(-1), now + 3);
  EXPECT_EQ(scope->counters().samples_coalesced, 2);
}

TEST_F(DrainCoalescingTest, TriggerAttachedObservesEverySample) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("trig");
  ASSERT_TRUE(router.AddScope(scope));
  SignalId id = scope->FindOrAddBufferSignal("wave");
  ASSERT_NE(id, 0);

  Trigger trigger({.edge = TriggerEdge::kRising, .level = 0.5, .hysteresis = 0.1});
  uint64_t handle = scope->AttachTrigger(id, &trigger);
  ASSERT_NE(handle, 0u);

  // 100-sample square wave: 50 rising edges, every one only visible if the
  // trigger is fed each sample (the coalesced hold would show one edge).
  int64_t now = scope->NowMs();
  for (int i = 0; i < 100; ++i) {
    router.Append("wave", now + 1, i % 2 == 0 ? 0.0 : 1.0);
  }
  router.Flush();
  clock_.AdvanceMs(5);
  scope->TickOnce();

  EXPECT_EQ(trigger.fires(), 50);
  EXPECT_EQ(scope->counters().samples_retained, 100);
  EXPECT_EQ(scope->counters().samples_coalesced, 0);
  EXPECT_DOUBLE_EQ(scope->LatestValue(id).value_or(-1), 1.0);
}

TEST_F(DrainCoalescingTest, AggregateTraceEnvelopeExportLoseNoSamples) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("sinks");
  ASSERT_TRUE(router.AddScope(scope));
  SignalId id = scope->FindOrAddBufferSignal("metric");

  EventAggregator sum(AggregateKind::kSum);
  ASSERT_NE(scope->AttachAggregate(id, &sum), 0u);
  Trace history(256);
  ASSERT_NE(scope->AttachHistoryTrace(id, &history), 0u);
  // Envelope fed through a generic sink (sweep accumulation).
  std::vector<double> sweep_samples;
  ASSERT_NE(scope->AttachSampleSink(id, [&sweep_samples](int64_t, double v) {
    sweep_samples.push_back(v);
  }), 0u);
  std::string path = testing::TempDir() + "/coalesce_export.tup";
  TupleWriter writer;
  ASSERT_TRUE(writer.Open(path));
  ASSERT_NE(scope->AttachExport(id, &writer), 0u);

  constexpr int kSamples = 64;
  double expected_sum = 0;
  int64_t now = scope->NowMs();
  for (int i = 0; i < kSamples; ++i) {
    router.Append("metric", now + 1, static_cast<double>(i));
    expected_sum += i;
  }
  router.Flush();
  clock_.AdvanceMs(5);
  scope->TickOnce();
  writer.Close();

  EXPECT_DOUBLE_EQ(sum.Drain(MillisToNanos(10)), expected_sum);
  EXPECT_EQ(history.size(), static_cast<size_t>(kSamples));
  ASSERT_EQ(sweep_samples.size(), static_cast<size_t>(kSamples));
  Envelope envelope(32);
  envelope.AddSweeps(sweep_samples, {.level = 16.0});
  EXPECT_GT(envelope.sweeps(), 0);

  // Every exported line parses back: no sample was lost on the way to disk.
  std::ifstream in(path);
  std::string line;
  int exported = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') {
      ++exported;
    }
  }
  EXPECT_EQ(exported, kSamples);
  std::remove(path.c_str());

  EXPECT_EQ(scope->counters().samples_retained, kSamples);
  EXPECT_EQ(scope->counters().samples_coalesced, 0);
}

TEST_F(DrainCoalescingTest, MixedSpanCoalescesOnlyDisplayOnlyRoutes) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("mixed");
  ASSERT_TRUE(router.AddScope(scope));
  SignalId hist = scope->FindOrAddBufferSignal("hist");
  scope->FindOrAddBufferSignal("disp");

  std::vector<double> seen;
  ASSERT_NE(scope->AttachSampleSink(hist, [&seen](int64_t, double v) { seen.push_back(v); }),
            0u);

  int64_t now = scope->NowMs();
  for (int i = 0; i < 20; ++i) {
    router.Append("hist", now + 1, static_cast<double>(i));
    router.Append("disp", now + 1, static_cast<double>(100 + i));
  }
  router.Flush();
  clock_.AdvanceMs(5);
  scope->TickOnce();

  // Both routes shared one span: "hist" was walked per sample, "disp" was
  // folded to its newest value.
  ASSERT_EQ(seen.size(), 20u);
  EXPECT_DOUBLE_EQ(seen.front(), 0.0);
  EXPECT_DOUBLE_EQ(seen.back(), 19.0);
  EXPECT_DOUBLE_EQ(scope->LatestValue(scope->FindSignal("disp")).value_or(-1), 119.0);
  EXPECT_EQ(scope->counters().samples_retained, 20);
  EXPECT_EQ(scope->counters().samples_coalesced, 19);
  EXPECT_EQ(scope->counters().buffered_routed, 40);
}

TEST_F(DrainCoalescingTest, HistorySinkObservesUnorderedSpanInTimeOrder) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("sorted");
  ASSERT_TRUE(router.AddScope(scope));
  SignalId id = scope->FindOrAddBufferSignal("sig");
  std::vector<int64_t> seen_times;
  ASSERT_NE(scope->AttachSampleSink(
                id, [&seen_times](int64_t t, double) { seen_times.push_back(t); }),
            0u);

  clock_.AdvanceMs(50);
  int64_t now = scope->NowMs();
  const int64_t stamps[] = {now + 3, now + 5, now + 1, now + 2, now + 4};
  for (int64_t t : stamps) {
    router.Append("sig", t, static_cast<double>(t));
  }
  router.Flush();
  clock_.AdvanceMs(10);
  scope->TickOnce();

  ASSERT_EQ(seen_times.size(), 5u);
  EXPECT_TRUE(std::is_sorted(seen_times.begin(), seen_times.end()));
  EXPECT_EQ(scope->LatestBufferedTime(id).value_or(-1), now + 5);
}

TEST_F(DrainCoalescingTest, AttachDetachFlipsModeAtNextRouteEpoch) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("flip");
  ASSERT_TRUE(router.AddScope(scope));

  // Phase 1: display-only -> coalesced.
  Round(router, "sig", 10);
  EXPECT_EQ(scope->counters().samples_coalesced, 9);
  EXPECT_EQ(scope->counters().samples_retained, 0);

  // Phase 2: attaching a trigger bumps consumers_epoch; the router's next
  // batch rebuilds the table with the history bit set.
  SignalId id = scope->FindSignal("sig");
  Trigger trigger;
  uint64_t epoch_before = router.route_epoch();
  uint64_t handle = scope->AttachTrigger(id, &trigger);
  ASSERT_NE(handle, 0u);
  EXPECT_GT(router.route_epoch(), epoch_before);
  Round(router, "sig", 10);
  EXPECT_EQ(scope->counters().samples_coalesced, 9);   // unchanged
  EXPECT_EQ(scope->counters().samples_retained, 10);

  // Phase 3: detach -> back to the fold at the next epoch.
  EXPECT_TRUE(scope->DetachSampleSink(handle));
  Round(router, "sig", 10);
  EXPECT_EQ(scope->counters().samples_coalesced, 18);
  EXPECT_EQ(scope->counters().samples_retained, 10);  // unchanged
}

TEST_F(DrainCoalescingTest, EverySampleTapKeepsWholeScopeOnHistoryPath) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("tap");
  ASSERT_TRUE(router.AddScope(scope));
  int tap_calls = 0;
  scope->SetBufferedTap(
      [&tap_calls](std::string_view, int64_t, double) { ++tap_calls; });

  Round(router, "sig", 50);
  EXPECT_EQ(tap_calls, 50);  // the remote-session echo contract
  EXPECT_EQ(scope->counters().samples_retained, 50);
  EXPECT_EQ(scope->counters().samples_coalesced, 0);
}

TEST_F(DrainCoalescingTest, CoalescedTapFiresOncePerSignalPerTick) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("ctap");
  ASSERT_TRUE(router.AddScope(scope));
  std::vector<std::pair<std::string, double>> taps;
  scope->SetBufferedTap(
      [&taps](std::string_view name, int64_t, double v) { taps.emplace_back(name, v); },
      TapMode::kCoalesced);

  Round(router, "sig", 50);
  ASSERT_EQ(taps.size(), 1u);  // one winner per signal per tick
  EXPECT_EQ(taps[0].first, "sig");
  EXPECT_DOUBLE_EQ(taps[0].second, 49.0);
  EXPECT_EQ(scope->counters().samples_coalesced, 49);
}

TEST_F(DrainCoalescingTest, KillSwitchRestoresPerSampleDrain) {
  IngestRouter router({.worker_threads = 0});
  Scope* scope = MakeScope("off", /*coalesce=*/false);
  ASSERT_TRUE(router.AddScope(scope));

  Round(router, "sig", 30);
  EXPECT_EQ(scope->counters().samples_coalesced, 0);
  EXPECT_EQ(scope->counters().samples_retained, 30);
  EXPECT_EQ(scope->counters().buffered_routed, 30);
  EXPECT_DOUBLE_EQ(scope->LatestValue(scope->FindSignal("sig")).value_or(-1), 29.0);
}

TEST_F(DrainCoalescingTest, RingPathCoalescesDirectPushes) {
  // The SampleBuffer ring path (PushBuffered, name shims, straddling spans)
  // applies the same last-wins fold through the scope's dense table.
  Scope* scope = MakeScope("ring");
  SignalId id = scope->AddSignal({.name = "direct", .source = BufferSource{}});
  ASSERT_NE(id, 0);
  int64_t now = scope->NowMs();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(scope->PushBuffered(id, now + 1, static_cast<double>(i)));
  }
  clock_.AdvanceMs(5);
  scope->TickOnce();
  EXPECT_DOUBLE_EQ(scope->LatestValue(id).value_or(-1), 39.0);
  EXPECT_EQ(scope->LatestBufferedTime(id).value_or(-1), now + 1);
  EXPECT_EQ(scope->counters().buffered_routed, 40);
  EXPECT_EQ(scope->counters().samples_coalesced, 39);

  // With a sink attached the ring path walks per sample again.
  std::vector<double> seen;
  ASSERT_NE(scope->AttachSampleSink(id, [&seen](int64_t, double v) { seen.push_back(v); }),
            0u);
  now = scope->NowMs();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(scope->PushBuffered(id, now + 1, static_cast<double>(i)));
  }
  clock_.AdvanceMs(5);
  scope->TickOnce();
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(scope->counters().samples_coalesced, 39);  // unchanged
  EXPECT_EQ(scope->counters().samples_retained, 10);   // ring path counts too
}

TEST_F(DrainCoalescingTest, RemovingSignalDropsItsSinks) {
  Scope* scope = MakeScope("gone");
  SignalId id = scope->AddSignal({.name = "s", .source = BufferSource{}});
  Trigger trigger;
  ASSERT_NE(scope->AttachTrigger(id, &trigger), 0u);
  EXPECT_EQ(scope->sample_sink_count(), 1u);
  uint64_t epoch = scope->consumers_epoch();
  ASSERT_TRUE(scope->RemoveSignal(id));
  EXPECT_EQ(scope->sample_sink_count(), 0u);
  EXPECT_GT(scope->consumers_epoch(), epoch);
}

TEST_F(DrainCoalescingTest, ConcurrentFanoutCoalescedAndHistoryScopes) {
  // TSan target (scripts/check.sh): sharded fan-out workers hand spans to a
  // mix of display-only and history scopes while a producer thread uses the
  // direct push path; drains run on the loop thread.
  IngestRouter router({.fanout_shards = 4, .worker_threads = 2});
  std::vector<Scope*> targets;
  for (int i = 0; i < 4; ++i) {
    targets.push_back(MakeScope("t" + std::to_string(i)));
    ASSERT_TRUE(router.AddScope(targets.back()));
  }
  // Scope 0 takes the history path for "sig"; the rest coalesce.
  SignalId hist_id = targets[0]->FindOrAddBufferSignal("sig");
  std::atomic<int64_t> sink_seen{0};
  ASSERT_NE(targets[0]->AttachSampleSink(
                hist_id, [&sink_seen](int64_t, double) {
                  sink_seen.fetch_add(1, std::memory_order_relaxed);
                }),
            0u);

  std::atomic<bool> stop{false};
  Scope* contended = targets[1];
  SignalId direct = contended->FindOrAddBufferSignal("direct");
  std::thread producer([&]() {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      contended->PushBuffered(direct, contended->NowMs() + 1, static_cast<double>(++i));
    }
  });

  constexpr int kBatches = 50;
  constexpr int kPerBatch = 64;
  for (int batch = 0; batch < kBatches; ++batch) {
    int64_t now = targets[0]->NowMs();
    for (int i = 0; i < kPerBatch; ++i) {
      router.Append("sig", now + 1, static_cast<double>(i));
    }
    router.Flush();
    clock_.AdvanceMs(5);
    for (Scope* s : targets) {
      s->TickOnce();
    }
  }
  stop.store(true);
  producer.join();
  clock_.AdvanceMs(5);
  for (Scope* s : targets) {
    s->TickOnce();
  }

  EXPECT_EQ(sink_seen.load(), kBatches * kPerBatch);
  EXPECT_EQ(targets[0]->counters().samples_retained, kBatches * kPerBatch);
  for (size_t i = 2; i < targets.size(); ++i) {
    EXPECT_EQ(targets[i]->counters().samples_coalesced, kBatches * (kPerBatch - 1));
    EXPECT_EQ(targets[i]->counters().buffered_routed, kBatches * kPerBatch);
  }
}

}  // namespace
}  // namespace gscope
