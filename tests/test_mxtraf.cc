#include "netsim/mxtraf.h"

#include <gtest/gtest.h>

namespace gscope {
namespace {

MxtrafConfig TcpDroptailConfig() {
  MxtrafConfig config;  // defaults: droptail bottleneck, no ECN
  return config;
}

MxtrafConfig EcnRedConfig() {
  MxtrafConfig config;
  config.EnableEcnRed();
  return config;
}

TEST(MxtrafTest, ElephantsKnobGrowsAndShrinks) {
  Simulator sim;
  Mxtraf traf(&sim, TcpDroptailConfig());
  EXPECT_EQ(traf.elephants(), 0);
  traf.SetElephants(8);
  EXPECT_EQ(traf.elephants(), 8);
  sim.RunForMs(100);
  traf.SetElephants(16);
  EXPECT_EQ(traf.elephants(), 16);
  traf.SetElephants(4);
  EXPECT_EQ(traf.elephants(), 4);
  traf.SetElephants(-3);
  EXPECT_EQ(traf.elephants(), 0);
}

TEST(MxtrafTest, ElephantSenderAccessors) {
  Simulator sim;
  Mxtraf traf(&sim, TcpDroptailConfig());
  traf.SetElephants(3);
  sim.RunForMs(200);
  EXPECT_NE(traf.ElephantSender(0), nullptr);
  EXPECT_NE(traf.ElephantSender(2), nullptr);
  EXPECT_EQ(traf.ElephantSender(3), nullptr);
  EXPECT_GT(traf.CwndSegments(0), 0.0);
  EXPECT_DOUBLE_EQ(traf.CwndSegments(99), 0.0);
}

TEST(MxtrafTest, FlowsShareBottleneckAndMakeProgress) {
  Simulator sim;
  Mxtraf traf(&sim, TcpDroptailConfig());
  traf.SetElephants(4);
  sim.RunForMs(3000);
  EXPECT_GT(traf.TotalBytesAcked(), 4 * 50 * 1460);
  for (int i = 0; i < 4; ++i) {
    const TcpSender* sender = traf.ElephantSender(i);
    ASSERT_NE(sender, nullptr);
    EXPECT_GT(sender->stats().bytes_acked, 0) << "flow " << i;
  }
}

TEST(MxtrafTest, CongestionCausesLossWithDroptail) {
  Simulator sim;
  Mxtraf traf(&sim, TcpDroptailConfig());
  traf.SetElephants(16);
  sim.RunForMs(10'000);
  const QueueStats& stats = traf.bottleneck_stats();
  EXPECT_GT(stats.dropped_tail, 0);
  EXPECT_GT(traf.TotalFastRetransmits() + traf.TotalTimeouts(), 0);
}

TEST(MxtrafTest, Figure4Shape_TcpTimeouts) {
  // With many TCP flows through a droptail queue, some flows experience
  // retransmission timeouts (CWND collapses to 1) - the Figure 4 behaviour.
  Simulator sim;
  Mxtraf traf(&sim, TcpDroptailConfig());
  traf.SetElephants(8);
  sim.RunForMs(15'000);
  traf.SetElephants(16);
  sim.RunForMs(15'000);
  EXPECT_GT(traf.TotalTimeouts(), 0);
}

TEST(MxtrafTest, Figure5Shape_EcnAvoidsTimeouts) {
  // Same load with ECN+RED: marks replace drops, (almost) no timeouts -
  // the Figure 5 behaviour.  Run both and compare.
  Simulator tcp_sim;
  Mxtraf tcp(&tcp_sim, TcpDroptailConfig());
  tcp.SetElephants(8);
  tcp_sim.RunForMs(15'000);
  tcp.SetElephants(16);
  tcp_sim.RunForMs(15'000);

  Simulator ecn_sim;
  Mxtraf ecn(&ecn_sim, EcnRedConfig());
  ecn.SetElephants(8);
  ecn_sim.RunForMs(15'000);
  ecn.SetElephants(16);
  ecn_sim.RunForMs(15'000);

  EXPECT_GT(ecn.TotalEcnReductions(), 0);
  EXPECT_GT(ecn.bottleneck_stats().marked_ecn, 0);
  // The paper's claim: ECN avoids the timeouts TCP suffers.
  EXPECT_LT(ecn.TotalTimeouts(), tcp.TotalTimeouts());
}

TEST(MxtrafTest, StoppedElephantStopsSending) {
  Simulator sim;
  Mxtraf traf(&sim, TcpDroptailConfig());
  traf.SetElephants(2);
  sim.RunForMs(500);
  traf.SetElephants(1);
  const TcpSender* remaining = traf.ElephantSender(0);
  ASSERT_NE(remaining, nullptr);
  EXPECT_TRUE(remaining->active());
  EXPECT_EQ(traf.ElephantSender(1), nullptr);
}

TEST(MxtrafTest, MiceCompleteAndRetire) {
  Simulator sim;
  Mxtraf traf(&sim, TcpDroptailConfig());
  traf.SpawnMouse(10 * 1460);
  traf.SpawnMouse(5 * 1460);
  EXPECT_EQ(traf.mice_active(), 2);
  sim.RunForMs(5000);
  EXPECT_EQ(traf.mice_active(), 0);
  EXPECT_GE(traf.TotalBytesAcked(), 15 * 1460);
}

TEST(MxtrafTest, DeterministicAcrossRuns) {
  auto run = []() {
    Simulator sim;
    Mxtraf traf(&sim, TcpDroptailConfig());
    traf.SetElephants(6);
    sim.RunForMs(5000);
    return std::make_tuple(traf.TotalBytesAcked(), traf.TotalTimeouts(),
                           traf.bottleneck_stats().dropped_tail);
  };
  EXPECT_EQ(run(), run());
}

TEST(MxtrafTest, FairnessRoughlyHolds) {
  // Long-run AIMD fairness: no flow should starve entirely.
  Simulator sim;
  Mxtraf traf(&sim, TcpDroptailConfig());
  traf.SetElephants(4);
  sim.RunForMs(20'000);
  int64_t min_bytes = INT64_MAX;
  int64_t max_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    int64_t bytes = traf.ElephantSender(i)->stats().bytes_acked;
    min_bytes = std::min(min_bytes, bytes);
    max_bytes = std::max(max_bytes, bytes);
  }
  EXPECT_GT(min_bytes, 0);
  EXPECT_LT(max_bytes, min_bytes * 50);  // loose bound: no starvation
}

}  // namespace
}  // namespace gscope
