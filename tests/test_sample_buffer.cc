#include "core/sample_buffer.h"

#include <gtest/gtest.h>

#include <thread>

namespace gscope {
namespace {

TEST(SampleBufferTest, PushAndDrainInOrder) {
  SampleBuffer buffer;
  EXPECT_TRUE(buffer.Push({10, 1.0, "a"}, /*now_ms=*/0, /*delay_ms=*/100));
  EXPECT_TRUE(buffer.Push({20, 2.0, "a"}, 0, 100));
  auto drained = buffer.DrainDisplayable(/*now_ms=*/120, /*delay_ms=*/100);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_DOUBLE_EQ(drained[0].value, 1.0);
  EXPECT_DOUBLE_EQ(drained[1].value, 2.0);
}

TEST(SampleBufferTest, DelayGatesDisplay) {
  // A sample stamped t displays at t + delay, not before.
  SampleBuffer buffer;
  buffer.Push({50, 1.0, "a"}, 0, 100);
  EXPECT_TRUE(buffer.DrainDisplayable(149, 100).empty());
  EXPECT_EQ(buffer.DrainDisplayable(150, 100).size(), 1u);
}

TEST(SampleBufferTest, LateArrivalsDroppedImmediately) {
  // Section 4.4: "Data arriving at the server after this delay is not
  // buffered but dropped immediately."
  SampleBuffer buffer;
  EXPECT_FALSE(buffer.Push({10, 1.0, "a"}, /*now_ms=*/200, /*delay_ms=*/100));
  EXPECT_EQ(buffer.stats().dropped_late, 1);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(SampleBufferTest, ExactDeadlineAccepted) {
  SampleBuffer buffer;
  // time + delay == now: displayable right now, not late.
  EXPECT_TRUE(buffer.Push({100, 1.0, "a"}, /*now_ms=*/200, /*delay_ms=*/100));
  EXPECT_EQ(buffer.DrainDisplayable(200, 100).size(), 1u);
}

TEST(SampleBufferTest, ZeroDelayImmediateDisplay) {
  SampleBuffer buffer;
  EXPECT_TRUE(buffer.Push({100, 1.0, "a"}, 100, 0));
  EXPECT_EQ(buffer.DrainDisplayable(100, 0).size(), 1u);
}

TEST(SampleBufferTest, MildReorderingSorted) {
  SampleBuffer buffer;
  buffer.Push({30, 3.0, "a"}, 0, 1000);
  buffer.Push({10, 1.0, "b"}, 0, 1000);
  buffer.Push({20, 2.0, "c"}, 0, 1000);
  auto drained = buffer.DrainDisplayable(2000, 1000);
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].name, "b");
  EXPECT_EQ(drained[1].name, "c");
  EXPECT_EQ(drained[2].name, "a");
}

TEST(SampleBufferTest, OverflowEvictsOldest) {
  SampleBuffer buffer(/*max_samples=*/3);
  for (int i = 0; i < 5; ++i) {
    buffer.Push({i * 10, static_cast<double>(i), "a"}, 0, 10000);
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.stats().dropped_overflow, 2);
  auto drained = buffer.DrainDisplayable(100000, 10000);
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_DOUBLE_EQ(drained[0].value, 2.0);
}

TEST(SampleBufferTest, PartialDrainLeavesFuture) {
  SampleBuffer buffer;
  buffer.Push({10, 1.0, "a"}, 0, 50);
  buffer.Push({100, 2.0, "a"}, 0, 50);
  auto drained = buffer.DrainDisplayable(/*now_ms=*/60, /*delay_ms=*/50);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_DOUBLE_EQ(drained[0].value, 1.0);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(SampleBufferTest, StatsAccumulate) {
  SampleBuffer buffer;
  buffer.Push({10, 1.0, "a"}, 0, 100);
  buffer.Push({0, 2.0, "a"}, 500, 100);  // late
  buffer.DrainDisplayable(500, 100);
  auto stats = buffer.stats();
  EXPECT_EQ(stats.pushed, 1);
  EXPECT_EQ(stats.dropped_late, 1);
  EXPECT_EQ(stats.drained, 1);
}

TEST(SampleBufferTest, ClearEmpties) {
  SampleBuffer buffer;
  buffer.Push({10, 1.0, "a"}, 0, 100);
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.DrainDisplayable(10000, 0).empty());
}

TEST(SampleBufferTest, ConcurrentProducers) {
  SampleBuffer buffer(1 << 20);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buffer, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        buffer.Push({i, static_cast<double>(t), "s"}, 0, 1 << 20);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(buffer.size(), static_cast<size_t>(kThreads * kPerThread));
  // Drained output must be time-sorted regardless of interleaving.
  auto drained = buffer.DrainDisplayable(1 << 21, 1 << 20);
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LE(drained[i - 1].time_ms, drained[i].time_ms);
  }
}

// Property: at any (delay, now), every drained tuple satisfies
// time + delay <= now and every retained tuple satisfies time + delay > now.
class DrainBoundaryProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DrainBoundaryProperty, BoundaryRespected) {
  auto [delay_ms, now_ms] = GetParam();
  SampleBuffer buffer;
  for (int t = 0; t <= 200; t += 7) {
    buffer.Push({t, 1.0, "s"}, 0, 10000);
  }
  auto drained = buffer.DrainDisplayable(now_ms, delay_ms);
  for (const Tuple& t : drained) {
    EXPECT_LE(t.time_ms + delay_ms, now_ms);
  }
  auto rest = buffer.DrainDisplayable(100000, 0);
  for (const Tuple& t : rest) {
    EXPECT_GT(t.time_ms + delay_ms, now_ms);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DrainBoundaryProperty,
                         ::testing::Combine(::testing::Values(0, 10, 50, 100),
                                            ::testing::Values(0, 25, 60, 150, 500)));

}  // namespace
}  // namespace gscope
