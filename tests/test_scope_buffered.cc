#include <gtest/gtest.h>

#include <thread>

#include "core/scope.h"
#include "runtime/clock.h"

namespace gscope {
namespace {

class ScopeBufferedTest : public ::testing::Test {
 protected:
  ScopeBufferedTest() : loop_(&clock_), scope_(&loop_, {.name = "buf", .width = 64}) {
    scope_.SetPollingMode(10);
  }

  SimClock clock_;
  MainLoop loop_;
  Scope scope_;
};

TEST_F(ScopeBufferedTest, BufferedSignalDisplaysWithDelay) {
  SignalId id = scope_.AddSignal({.name = "ev", .source = BufferSource{}});
  scope_.SetDelayMs(50);
  scope_.StartPolling();

  // Push a sample stamped "now"; it must not display until delay elapses.
  EXPECT_TRUE(scope_.PushBuffered("ev", scope_.NowMs(), 42.0));
  loop_.RunForMs(20);
  EXPECT_FALSE(scope_.LatestValue(id).has_value() && *scope_.LatestValue(id) == 42.0);
  loop_.RunForMs(60);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 42.0);
}

TEST_F(ScopeBufferedTest, LateDataDropped) {
  scope_.AddSignal({.name = "ev", .source = BufferSource{}});
  scope_.SetDelayMs(20);
  scope_.StartPolling();
  loop_.RunForMs(200);
  // Stamped 100ms ago with a 20ms delay: its display time has passed.
  EXPECT_FALSE(scope_.PushBuffered("ev", scope_.NowMs() - 100, 1.0));
  EXPECT_EQ(scope_.buffer().stats().dropped_late, 1);
}

TEST_F(ScopeBufferedTest, SampleAndHoldBetweenPushes) {
  SignalId id = scope_.AddSignal({.name = "ev", .source = BufferSource{}});
  scope_.StartPolling();
  scope_.PushBuffered("ev", scope_.NowMs(), 5.0);
  loop_.RunForMs(100);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 5.0);
  // No new pushes for many ticks: the value holds.
  loop_.RunForMs(200);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 5.0);
  const Trace* trace = scope_.TraceFor(id);
  EXPECT_GT(trace->size(), 20u);
}

TEST_F(ScopeBufferedTest, UnnamedPushRoutesToFirstBufferSignal) {
  int32_t polled = 0;
  scope_.AddSignal({.name = "polled", .source = &polled});
  SignalId buf = scope_.AddSignal({.name = "stream", .source = BufferSource{}});
  scope_.StartPolling();
  scope_.PushBuffered("", scope_.NowMs(), 9.0);
  loop_.RunForMs(50);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(buf).value_or(-1), 9.0);
}

TEST_F(ScopeBufferedTest, NamedPushToNonBufferSignalUnmatched) {
  int32_t polled = 0;
  scope_.AddSignal({.name = "polled", .source = &polled});
  scope_.StartPolling();
  scope_.PushBuffered("polled", scope_.NowMs(), 9.0);
  loop_.RunForMs(50);
  EXPECT_GE(scope_.counters().buffered_unmatched, 1);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(scope_.FindSignal("polled")).value_or(-1), 0.0);
}

TEST_F(ScopeBufferedTest, MultipleSamplesPerIntervalLastWins) {
  SignalId id = scope_.AddSignal({.name = "ev", .source = BufferSource{}});
  scope_.StartPolling();
  int64_t now = scope_.NowMs();
  scope_.PushBuffered("ev", now, 1.0);
  scope_.PushBuffered("ev", now + 1, 2.0);
  scope_.PushBuffered("ev", now + 2, 3.0);
  loop_.RunForMs(50);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 3.0);
  EXPECT_EQ(scope_.counters().buffered_routed, 3);
}

TEST_F(ScopeBufferedTest, TwoBufferedSignalsRouteByName) {
  SignalId a = scope_.AddSignal({.name = "a", .source = BufferSource{}});
  SignalId b = scope_.AddSignal({.name = "b", .source = BufferSource{}});
  scope_.StartPolling();
  int64_t now = scope_.NowMs();
  scope_.PushBuffered("a", now, 1.0);
  scope_.PushBuffered("b", now, 2.0);
  loop_.RunForMs(50);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(a).value_or(-1), 1.0);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(b).value_or(-1), 2.0);
}

TEST_F(ScopeBufferedTest, PushFromProducerThread) {
  // The netlink-style push pattern of Section 3.1: a producer thread feeds
  // the buffer while the scope polls on the loop thread.
  SignalId id = scope_.AddSignal({.name = "ev", .source = BufferSource{}});
  scope_.StartPolling();
  std::thread producer([this]() {
    for (int i = 1; i <= 100; ++i) {
      scope_.PushBuffered("ev", scope_.NowMs(), static_cast<double>(i));
    }
  });
  producer.join();
  loop_.RunForMs(100);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 100.0);
}

TEST_F(ScopeBufferedTest, DelayedStreamDisplaysInOrder) {
  // Feed a ramp with timestamps 10ms apart, delay 30ms; the displayed trace
  // must be non-decreasing (ordered drain).
  SignalId id = scope_.AddSignal({.name = "ramp", .source = BufferSource{}});
  scope_.SetDelayMs(30);
  scope_.StartPolling();
  for (int i = 0; i < 20; ++i) {
    scope_.PushBuffered("ramp", scope_.NowMs() + i * 10, static_cast<double>(i));
  }
  loop_.RunForMs(400);
  const Trace* trace = scope_.TraceFor(id);
  auto values = trace->Values();
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(values[i - 1], values[i]);
  }
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 19.0);
}

}  // namespace
}  // namespace gscope
