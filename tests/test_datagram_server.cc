// The UDP ingest listener: datagram framing, drop/short/truncation counters,
// and fan-out through the shared ingest router.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "core/scope.h"
#include "net/datagram_server.h"
#include "net/socket.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace {

class DatagramServerTest : public ::testing::Test {
 protected:
  DatagramServerTest() : scope_(&loop_, {.name = "udp", .width = 64}) {
    scope_.SetPollingMode(5);
  }

  // Runs the loop until `pred` holds or the budget expires.
  bool RunUntil(const std::function<bool()>& pred, int max_ms = 2000) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop_.RunForMs(1);
    }
    return pred();
  }

  MainLoop loop_;  // real clock: sockets need real readiness
  Scope scope_;
};

TEST_F(DatagramServerTest, ListenOnEphemeralPort) {
  DatagramServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  EXPECT_GT(server.port(), 0);
}

TEST_F(DatagramServerTest, TuplesFlowIntoScopeSignal) {
  DatagramServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  Socket sender = Socket::ConnectDatagram(server.port());
  ASSERT_TRUE(sender.valid());

  std::string wire = std::to_string(scope_.NowMs() + 1) + " 42.0 udp_cwnd\n";
  ASSERT_TRUE(sender.Write(wire.data(), wire.size()).ok());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_EQ(server.stats().datagrams, 1);
  EXPECT_EQ(server.stats().parse_errors, 0);

  // Resend with fresh stamps until displayed: a single datagram stamped
  // NowMs+1 can be judged late (delay 0) if the loop is preempted between
  // stamping and routing - under parallel test load that genuinely happens.
  ASSERT_TRUE(RunUntil([&]() {
    std::string retry = std::to_string(scope_.NowMs() + 1) + " 42.0 udp_cwnd\n";
    sender.Write(retry.data(), retry.size());
    loop_.RunForMs(2);
    SignalId id = scope_.FindSignal("udp_cwnd");
    return id != 0 && scope_.LatestValue(id) == 42.0;
  }));
}

TEST_F(DatagramServerTest, ManyTuplesPerDatagram) {
  DatagramServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  Socket sender = Socket::ConnectDatagram(server.port());
  ASSERT_TRUE(sender.valid());

  std::string wire;
  int64_t now = scope_.NowMs();
  for (int i = 0; i < 50; ++i) {
    wire += std::to_string(now + 1) + " " + std::to_string(i) + ".5 batched\n";
  }
  ASSERT_TRUE(sender.Write(wire.data(), wire.size()).ok());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 50; }));
  EXPECT_EQ(server.stats().datagrams, 1);
  EXPECT_EQ(server.stats().short_datagrams, 0);
}

TEST_F(DatagramServerTest, UnterminatedFinalLineParsedAndCounted) {
  DatagramServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  Socket sender = Socket::ConnectDatagram(server.port());
  ASSERT_TRUE(sender.valid());

  std::string wire = std::to_string(scope_.NowMs() + 1) + " 7.0 short_one";  // no '\n'
  ASSERT_TRUE(sender.Write(wire.data(), wire.size()).ok());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_EQ(server.stats().short_datagrams, 1);
  EXPECT_NE(scope_.FindSignal("short_one"), 0);
}

TEST_F(DatagramServerTest, MalformedLinesCounted) {
  DatagramServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  Socket sender = Socket::ConnectDatagram(server.port());
  ASSERT_TRUE(sender.valid());

  const std::string junk = "this is not a tuple\n12 ok_missing_value\n";
  ASSERT_TRUE(sender.Write(junk.data(), junk.size()).ok());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().parse_errors >= 2; }));
  EXPECT_EQ(server.stats().tuples, 0);
}

TEST_F(DatagramServerTest, OversizedDatagramCountedAsTruncatedAndDiscarded) {
  DatagramServer server(&loop_, &scope_, {.max_datagram_bytes = 64});
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  Socket sender = Socket::ConnectDatagram(server.port());
  ASSERT_TRUE(sender.valid());

  std::string big(500, 'x');
  ASSERT_TRUE(sender.Write(big.data(), big.size()).ok());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().truncated_datagrams >= 1; }));
  EXPECT_EQ(server.stats().tuples, 0);
  EXPECT_EQ(server.stats().parse_errors, 0);  // discarded, not misparsed

  // A well-formed datagram afterwards still parses: UDP framing resyncs for
  // free at the datagram boundary.
  std::string good = std::to_string(scope_.NowMs() + 1) + " 1.0 after_trunc\n";
  ASSERT_TRUE(sender.Write(good.data(), good.size()).ok());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
}

TEST_F(DatagramServerTest, FanOutToMultipleScopes) {
  Scope second(&loop_, {.name = "second", .width = 64});
  second.SetPollingMode(5);
  DatagramServer server(&loop_, &scope_);
  EXPECT_TRUE(server.AddScope(&second));
  EXPECT_FALSE(server.AddScope(&second));  // duplicate
  EXPECT_FALSE(server.AddScope(nullptr));
  EXPECT_EQ(server.scope_count(), 2u);

  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();
  second.StartPolling();
  Socket sender = Socket::ConnectDatagram(server.port());
  ASSERT_TRUE(sender.valid());

  std::string wire = std::to_string(scope_.NowMs() + 1) + " 7.0 shared\n";
  ASSERT_TRUE(sender.Write(wire.data(), wire.size()).ok());
  ASSERT_TRUE(RunUntil([&]() {
    SignalId a = scope_.FindSignal("shared");
    SignalId b = second.FindSignal("shared");
    return a != 0 && b != 0 && scope_.LatestValue(a).has_value() &&
           second.LatestValue(b).has_value();
  }));
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(scope_.FindSignal("shared")), 7.0);
  EXPECT_DOUBLE_EQ(*second.LatestValue(second.FindSignal("shared")), 7.0);

  EXPECT_TRUE(server.RemoveScope(&second));
  EXPECT_FALSE(server.RemoveScope(&second));
  EXPECT_EQ(server.scope_count(), 1u);
}

TEST_F(DatagramServerTest, LateTuplesDroppedByDelayPolicy) {
  DatagramServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  scope_.SetDelayMs(10);
  scope_.StartPolling();
  loop_.RunForMs(100);
  Socket sender = Socket::ConnectDatagram(server.port());
  ASSERT_TRUE(sender.valid());

  std::string wire = std::to_string(scope_.NowMs() - 500) + " 9.0 late\n";
  ASSERT_TRUE(sender.Write(wire.data(), wire.size()).ok());
  ASSERT_TRUE(RunUntil([&]() { return server.stats().tuples >= 1; }));
  EXPECT_TRUE(RunUntil([&]() { return server.stats().dropped_late >= 1; }));
}

TEST_F(DatagramServerTest, KernelDropStatsMonotoneAcrossRebind) {
  // SO_RXQ_OVFL is a cumulative per-socket counter that restarts at zero on
  // every fresh bind.  The server's aggregate must stay monotone
  // non-decreasing across Close()/re-Listen() - neither double-counting the
  // old socket's total nor marching backwards when the new socket reports a
  // smaller cumulative value.
  DatagramServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  {
    Socket sender = Socket::ConnectDatagram(server.port());
    ASSERT_TRUE(sender.valid());
    for (int i = 0; i < 20; ++i) {
      std::string wire = std::to_string(i) + " 1.0 pre_rebind\n";
      sender.Write(wire.data(), wire.size());
    }
  }
  ASSERT_TRUE(RunUntil([&]() { return server.stats().datagrams >= 20; }));
  int64_t drops_before = server.stats().kernel_drops;
  int64_t datagrams_before = server.stats().datagrams;
  ASSERT_GE(drops_before, 0);

  server.Close();
  ASSERT_TRUE(server.Listen(0));
  {
    Socket sender = Socket::ConnectDatagram(server.port());
    ASSERT_TRUE(sender.valid());
    for (int i = 0; i < 20; ++i) {
      std::string wire = std::to_string(i) + " 2.0 post_rebind\n";
      sender.Write(wire.data(), wire.size());
    }
  }
  ASSERT_TRUE(RunUntil([&]() { return server.stats().datagrams >= datagrams_before + 20; }));
  // Monotone: the fresh socket's from-zero counter must not be read as a
  // delta against the old socket's baseline.
  EXPECT_GE(server.stats().kernel_drops, drops_before);
  EXPECT_EQ(server.stats().parse_errors, 0);
}

TEST_F(DatagramServerTest, CloseStopsReceiving) {
  DatagramServer server(&loop_, &scope_);
  ASSERT_TRUE(server.Listen(0));
  uint16_t port = server.port();
  server.Close();
  Socket sender = Socket::ConnectDatagram(port);
  std::string wire = "1 1.0 x\n";
  sender.Write(wire.data(), wire.size());
  loop_.RunForMs(50);
  EXPECT_EQ(server.stats().datagrams, 0);
}

}  // namespace
}  // namespace gscope
