// Tests of the C bindings (Section 6 future work: language bindings).  The
// entire surface is exercised through the C ABI only.
#include "bindings/gscope_c.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "core/scope.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/event_loop.h"

namespace {

double SampleFn(void* arg1, void* arg2) {
  double base = *static_cast<double*>(arg1);
  double scale = arg2 != nullptr ? *static_cast<double*>(arg2) : 1.0;
  return base * scale;
}

class CApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = gscope_create("c-api", 64, 64, /*use_sim_clock=*/1);
    ASSERT_NE(ctx_, nullptr);
  }
  void TearDown() override { gscope_destroy(ctx_); }

  gscope_ctx* ctx_ = nullptr;
};

TEST_F(CApiTest, CreateRejectsNullName) {
  EXPECT_EQ(gscope_create(nullptr, 10, 10, 0), nullptr);
}

TEST_F(CApiTest, DestroyNullIsSafe) {
  gscope_destroy(nullptr);
}

TEST_F(CApiTest, Int32SignalPolling) {
  int32_t value = 7;
  int sig = gscope_signal_int32(ctx_, "v", &value, 0, 100);
  ASSERT_GT(sig, 0);
  ASSERT_EQ(gscope_set_polling_mode(ctx_, 10), 0);
  ASSERT_EQ(gscope_start_polling(ctx_), 0);
  gscope_run_for_ms(ctx_, 100);
  double out = -1;
  ASSERT_EQ(gscope_value(ctx_, sig, &out), 0);
  EXPECT_DOUBLE_EQ(out, 7.0);
  value = 21;
  gscope_run_for_ms(ctx_, 50);
  ASSERT_EQ(gscope_value(ctx_, sig, &out), 0);
  EXPECT_DOUBLE_EQ(out, 21.0);
  EXPECT_GT(gscope_ticks(ctx_), 10);
}

TEST_F(CApiTest, FuncSignalWithTwoArgs) {
  double base = 5.0;
  double scale = 3.0;
  int sig = gscope_signal_func(ctx_, "f", &SampleFn, &base, &scale, 0, 100);
  ASSERT_GT(sig, 0);
  gscope_tick(ctx_);
  double out = 0;
  ASSERT_EQ(gscope_value(ctx_, sig, &out), 0);
  EXPECT_DOUBLE_EQ(out, 15.0);
}

TEST_F(CApiTest, BufferSignalPush) {
  int sig = gscope_signal_buffer(ctx_, "stream", 0, 100);
  ASSERT_GT(sig, 0);
  ASSERT_EQ(gscope_set_polling_mode(ctx_, 10), 0);
  ASSERT_EQ(gscope_start_polling(ctx_), 0);
  EXPECT_EQ(gscope_push(ctx_, "stream", gscope_now_ms(ctx_), 42.0), 1);
  gscope_run_for_ms(ctx_, 50);
  double out = 0;
  ASSERT_EQ(gscope_value(ctx_, sig, &out), 0);
  EXPECT_DOUBLE_EQ(out, 42.0);
}

TEST_F(CApiTest, DrainCountersExposeCoalescing) {
  int sig = gscope_signal_buffer(ctx_, "burst", 0, 100);
  ASSERT_GT(sig, 0);
  ASSERT_EQ(gscope_set_polling_mode(ctx_, 10), 0);
  ASSERT_EQ(gscope_start_polling(ctx_), 0);
  int64_t now = gscope_now_ms(ctx_);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(gscope_push_id(ctx_, sig, now + 1, static_cast<double>(i)), 1);
  }
  gscope_run_for_ms(ctx_, 50);
  double out = 0;
  ASSERT_EQ(gscope_value(ctx_, sig, &out), 0);
  EXPECT_DOUBLE_EQ(out, 24.0);  // sample-and-hold: last value per tick
  gscope_drain_stats stats;
  ASSERT_EQ(gscope_drain_counters(ctx_, &stats), 0);
  EXPECT_EQ(stats.buffered_routed, 25);
  EXPECT_EQ(stats.samples_coalesced, 24);
  EXPECT_EQ(stats.samples_retained, 0);
  EXPECT_GT(stats.ticks, 0);
  EXPECT_LT(gscope_drain_counters(ctx_, nullptr), 0);
  EXPECT_LT(gscope_drain_counters(nullptr, &stats), 0);
}

TEST_F(CApiTest, LateBufferPushDropped) {
  ASSERT_GT(gscope_signal_buffer(ctx_, "s", 0, 100), 0);
  ASSERT_EQ(gscope_set_delay_ms(ctx_, 10), 0);
  ASSERT_EQ(gscope_set_polling_mode(ctx_, 10), 0);
  ASSERT_EQ(gscope_start_polling(ctx_), 0);
  gscope_run_for_ms(ctx_, 500);
  EXPECT_EQ(gscope_push(ctx_, "s", gscope_now_ms(ctx_) - 400, 1.0), 0);
}

TEST_F(CApiTest, ErrorPaths) {
  EXPECT_LT(gscope_signal_int32(ctx_, "x", nullptr, 0, 100), 0);
  EXPECT_LT(gscope_signal_func(ctx_, "x", nullptr, nullptr, nullptr, 0, 100), 0);
  EXPECT_LT(gscope_set_polling_mode(ctx_, 0), 0);
  EXPECT_LT(gscope_set_playback_mode(ctx_, "/nonexistent", 10), 0);
  EXPECT_LT(gscope_set_zoom(ctx_, -1.0), 0);
  EXPECT_LT(gscope_set_delay_ms(ctx_, -5), 0);
  EXPECT_LT(gscope_set_domain(ctx_, 7), 0);
  double out = 0;
  EXPECT_LT(gscope_value(ctx_, 999, &out), 0);
  EXPECT_LT(gscope_value(ctx_, 1, nullptr), 0);
  EXPECT_LT(gscope_remove_signal(ctx_, 999), 0);
  EXPECT_LT(gscope_start_recording(ctx_, "/nonexistent/dir/x.dat"), 0);
}

TEST_F(CApiTest, DuplicateSignalNameFails) {
  int32_t v = 0;
  EXPECT_GT(gscope_signal_int32(ctx_, "v", &v, 0, 100), 0);
  EXPECT_LT(gscope_signal_int32(ctx_, "v", &v, 0, 100), 0);
}

TEST_F(CApiTest, FindAndRemove) {
  int32_t v = 0;
  int sig = gscope_signal_int32(ctx_, "v", &v, 0, 100);
  EXPECT_EQ(gscope_find_signal(ctx_, "v"), sig);
  EXPECT_EQ(gscope_remove_signal(ctx_, sig), 0);
  EXPECT_EQ(gscope_find_signal(ctx_, "v"), 0);
}

TEST_F(CApiTest, ParameterSetters) {
  int32_t v = 0;
  int sig = gscope_signal_int32(ctx_, "v", &v, 0, 100);
  EXPECT_EQ(gscope_set_hidden(ctx_, sig, 1), 0);
  EXPECT_EQ(gscope_set_filter_alpha(ctx_, sig, 0.5), 0);
  EXPECT_LT(gscope_set_filter_alpha(ctx_, sig, 2.0), 0);
  EXPECT_EQ(gscope_set_range(ctx_, sig, -1, 1), 0);
  EXPECT_LT(gscope_set_range(ctx_, sig, 1, 1), 0);
  EXPECT_EQ(gscope_set_zoom(ctx_, 2.0), 0);
  EXPECT_EQ(gscope_set_bias(ctx_, 5.0), 0);
  EXPECT_EQ(gscope_set_domain(ctx_, 1), 0);
  EXPECT_EQ(gscope_set_domain(ctx_, 0), 0);
}

TEST_F(CApiTest, RecordThenPlaybackThroughCApi) {
  std::string path = ::testing::TempDir() + "c_api_rec.dat";
  int32_t v = 0;
  ASSERT_GT(gscope_signal_int32(ctx_, "v", &v, 0, 100), 0);
  ASSERT_EQ(gscope_set_polling_mode(ctx_, 10), 0);
  ASSERT_EQ(gscope_start_recording(ctx_, path.c_str()), 0);
  ASSERT_EQ(gscope_start_polling(ctx_), 0);
  for (int i = 0; i < 10; ++i) {
    v = i * 2;
    gscope_run_for_ms(ctx_, 10);
  }
  gscope_stop_recording(ctx_);
  gscope_stop_polling(ctx_);

  gscope_ctx* replay = gscope_create("replay", 64, 64, 1);
  ASSERT_NE(replay, nullptr);
  int sig = gscope_signal_buffer(replay, "v", 0, 100);
  ASSERT_GT(sig, 0);
  ASSERT_EQ(gscope_set_playback_mode(replay, path.c_str(), 10), 0);
  ASSERT_EQ(gscope_start_polling(replay), 0);
  gscope_run_for_ms(replay, 5000);
  double out = -1;
  ASSERT_EQ(gscope_value(replay, sig, &out), 0);
  EXPECT_DOUBLE_EQ(out, 18.0);
  gscope_destroy(replay);
  std::remove(path.c_str());
}

TEST_F(CApiTest, RenderPpmAndAscii) {
  std::string path = ::testing::TempDir() + "c_api.ppm";
  int32_t v = 40;
  gscope_signal_int32(ctx_, "v", &v, 0, 100);
  gscope_tick(ctx_);
  EXPECT_EQ(gscope_render_ppm(ctx_, path.c_str(), 200, 150), 0);
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  fclose(f);
  std::remove(path.c_str());

  char buf[4096];
  int n = gscope_render_ascii(ctx_, buf, sizeof(buf));
  EXPECT_GT(n, 0);
  EXPECT_NE(std::string(buf).find("c-api"), std::string::npos);
}

TEST_F(CApiTest, AsciiTruncationReportsFullLength) {
  char tiny[8];
  int n = gscope_render_ascii(ctx_, tiny, sizeof(tiny));
  EXPECT_GT(n, 8);
  EXPECT_EQ(tiny[7], '\0');
}

TEST_F(CApiTest, IntrospectionOnFreshContext) {
  EXPECT_EQ(gscope_ticks(ctx_), 0);
  EXPECT_EQ(gscope_lost_ticks(ctx_), 0);
  EXPECT_EQ(gscope_now_ms(ctx_), 0);
  EXPECT_EQ(gscope_ticks(nullptr), -1);
}

TEST_F(CApiTest, RemoteControlArgValidation) {
  EXPECT_EQ(gscope_connect(nullptr, 1), -1);
  // Control verbs before gscope_connect are invalid arguments.
  EXPECT_EQ(gscope_subscribe(ctx_, "x_*"), -1);
  EXPECT_EQ(gscope_unsubscribe(ctx_, "x_*"), -1);
  EXPECT_EQ(gscope_set_delay(ctx_, 10), -1);
  EXPECT_EQ(gscope_connected(ctx_), 0);
  gscope_disconnect(ctx_);  // safe when never connected
}

TEST(CApiRemote, SubscribeReceivesMatchingSignals) {
  // A real-clock C-API scope attaches to an in-process C++ server as a
  // remote display target.  Both run on their own loops; the test pumps the
  // two alternately, as two processes' schedulers would.
  gscope::MainLoop server_loop;
  gscope::Scope display(&server_loop, {.name = "server-display", .width = 64});
  display.SetPollingMode(5);
  gscope::StreamServer server(&server_loop, &display);
  ASSERT_TRUE(server.Listen(0));
  display.StartPolling();

  gscope_ctx* ctx = gscope_create("c-remote", 64, 64, /*use_sim_clock=*/0);
  ASSERT_NE(ctx, nullptr);
  ASSERT_EQ(gscope_set_polling_mode(ctx, 5), 0);
  ASSERT_EQ(gscope_start_polling(ctx), 0);
  ASSERT_EQ(gscope_connect(ctx, server.port()), 0);

  gscope::StreamClient producer(&server_loop);
  ASSERT_TRUE(producer.Connect(server.port()));

  auto pump = [&](int ms) {
    for (int i = 0; i < ms; ++i) {
      server_loop.RunForMs(1);
      gscope_run_for_ms(ctx, 1);
    }
  };

  pump(20);
  ASSERT_EQ(gscope_connected(ctx), 1);
  ASSERT_EQ(gscope_subscribe(ctx, "c_api_*"), 0);
  ASSERT_EQ(gscope_set_delay(ctx, 50), 0);
  pump(20);
  ASSERT_EQ(server.control_session_count(), 1u);

  int sig = 0;
  for (int i = 0; i < 400 && sig == 0; ++i) {
    producer.Send(display.NowMs(), 3.5, "c_api_metric");
    producer.Send(display.NowMs(), 9.9, "other_metric");
    pump(2);
    sig = gscope_find_signal(ctx, "c_api_metric");
  }
  ASSERT_NE(sig, 0);  // matching signal auto-created from the echo stream
  double out = -1.0;
  for (int i = 0; i < 200 && gscope_value(ctx, sig, &out) != 0; ++i) {
    pump(2);
  }
  EXPECT_DOUBLE_EQ(out, 3.5);
  // The non-matching signal never crossed the wire.
  EXPECT_EQ(gscope_find_signal(ctx, "other_metric"), 0);

  gscope_disconnect(ctx);
  gscope_destroy(ctx);
}

}  // namespace
