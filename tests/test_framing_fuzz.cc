// Property/fuzz-style tests for net/line_framer.h and ParseTupleView, with
// FIXED seeds (a table of them) so every run sees the same byte streams: no
// wall-clock or entropy-derived nondeterminism.
//
// The central property is CHUNKING INVARIANCE: however a byte stream is
// split across reads - including one byte at a time - the framer must
// deliver exactly the same lines, count exactly the same number of overlong
// lines, and the parser exactly the same tuples and errors as a single
// whole-stream pass.  Mutated streams (flipped bytes, injected garbage,
// overlong lines) additionally prove that framing RESYNCHRONIZES: damage is
// confined to the lines it touches, with exact error accounting.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/scope.h"
#include "core/tuple.h"
#include "net/control_client.h"
#include "net/fault_injector.h"
#include "net/frame_codec.h"
#include "net/line_framer.h"
#include "net/socket.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace {

constexpr size_t kMaxLine = 96;  // small cap so overlong lines are easy to hit

struct ParseOutcome {
  std::vector<Tuple> tuples;
  int64_t overlong = 0;
  int64_t bad = 0;  // non-ignorable lines that failed to parse

  bool operator==(const ParseOutcome& other) const = default;
};

// Feeds `stream` through a LineFramer in the given chunk sizes (cycled until
// the stream is consumed), parsing each line the way StreamServer does.
ParseOutcome RunFramer(const std::string& stream, const std::vector<size_t>& chunk_sizes,
                       size_t max_line = kMaxLine) {
  LineFramer framer(max_line);
  ParseOutcome out;
  auto handle = [&out](std::string_view line) {
    std::optional<TupleView> view = ParseTupleView(line);
    if (view.has_value()) {
      out.tuples.push_back({view->time_ms, view->value, std::string(view->name)});
    } else if (!IsIgnorableLine(line)) {
      out.bad += 1;
    }
  };
  size_t pos = 0;
  size_t chunk_i = 0;
  while (pos < stream.size()) {
    size_t n = std::min(chunk_sizes[chunk_i++ % chunk_sizes.size()], stream.size() - pos);
    n = std::max<size_t>(n, 1);
    framer.Consume(stream.data() + pos, n, &out.overlong, handle);
    pos += n;
  }
  framer.FlushTail(handle);
  return out;
}

std::vector<size_t> RandomChunkSizes(std::mt19937& rng, size_t count) {
  std::vector<size_t> sizes(count);
  for (size_t& s : sizes) {
    s = 1 + rng() % 17;
  }
  return sizes;
}

std::string RandomName(std::mt19937& rng, size_t max_len) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz_0123456789";
  size_t len = 1 + rng() % max_len;
  std::string name;
  for (size_t i = 0; i < len; ++i) {
    name.push_back(kAlpha[rng() % (sizeof(kAlpha) - 1)]);
  }
  return name;
}

double RandomValue(std::mt19937& rng) {
  switch (rng() % 4) {
    case 0:
      return static_cast<double>(static_cast<int32_t>(rng()));
    case 1:
      return static_cast<double>(rng() % 1000);
    case 2:
      return static_cast<double>(static_cast<int32_t>(rng())) / 1024.0;
    default:
      return -static_cast<double>(rng() % 100000) * 1.5e-3;
  }
}

std::string SerializeCorpus(std::mt19937& rng, int count, std::vector<Tuple>* originals) {
  std::string stream;
  int64_t t = 0;
  for (int i = 0; i < count; ++i) {
    t += static_cast<int64_t>(rng() % 50);
    Tuple tuple{t, RandomValue(rng), rng() % 8 == 0 ? "" : RandomName(rng, 12)};
    if (originals != nullptr) {
      originals->push_back(tuple);
    }
    AppendTuple(stream, tuple.time_ms, tuple.value, tuple.name);
  }
  return stream;
}

// Damages a valid stream: byte flips, injected garbage lines, comments,
// blanks, and overlong lines.  Deterministic per rng state.
std::string Mutate(std::mt19937& rng, std::string stream) {
  size_t flips = 1 + rng() % 24;
  for (size_t i = 0; i < flips && !stream.empty(); ++i) {
    stream[rng() % stream.size()] = static_cast<char>(rng() % 256);
  }
  auto insert_line = [&](const std::string& line) {
    // Insert at a line boundary or mid-line alike: the framer must cope.
    size_t at = rng() % (stream.size() + 1);
    stream.insert(at, line);
  };
  if (rng() % 2 == 0) {
    insert_line("# a comment line\n");
  }
  if (rng() % 2 == 0) {
    insert_line("\n\n");
  }
  if (rng() % 2 == 0) {
    insert_line("definitely not a tuple\n");
  }
  if (rng() % 2 == 0) {
    insert_line("123 4.5 " + std::string(kMaxLine, 'x') + "\n");  // overlong
  }
  return stream;
}

TEST(FramingFuzz, ChunkingInvarianceOnCleanStreams) {
  for (uint32_t seed : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u}) {
    std::mt19937 rng(seed);
    std::vector<Tuple> originals;
    std::string stream = SerializeCorpus(rng, 300, &originals);

    ParseOutcome whole = RunFramer(stream, {stream.size()});
    ParseOutcome bytewise = RunFramer(stream, {1});
    ParseOutcome random_chunks = RunFramer(stream, RandomChunkSizes(rng, 37));

    SCOPED_TRACE("seed " + std::to_string(seed));
    // A clean stream round-trips exactly (to_chars shortest form): every
    // tuple, no errors, independent of chunking.
    EXPECT_EQ(whole.tuples, originals);
    EXPECT_EQ(whole.overlong, 0);
    EXPECT_EQ(whole.bad, 0);
    EXPECT_TRUE(bytewise == whole);
    EXPECT_TRUE(random_chunks == whole);
  }
}

TEST(FramingFuzz, ChunkingInvarianceOnMutatedStreams) {
  for (uint32_t seed : {101u, 202u, 303u, 404u, 505u, 606u, 707u, 808u, 909u, 1010u}) {
    std::mt19937 rng(seed);
    std::string stream = Mutate(rng, SerializeCorpus(rng, 200, nullptr));

    ParseOutcome whole = RunFramer(stream, {stream.size()});
    ParseOutcome bytewise = RunFramer(stream, {1});
    ParseOutcome random_a = RunFramer(stream, RandomChunkSizes(rng, 41));
    ParseOutcome random_b = RunFramer(stream, RandomChunkSizes(rng, 7));

    SCOPED_TRACE("seed " + std::to_string(seed));
    // Where a read boundary falls must not change what parses, what counts
    // as overlong, or what counts as malformed - byte-for-byte resync.
    EXPECT_TRUE(bytewise == whole);
    EXPECT_TRUE(random_a == whole);
    EXPECT_TRUE(random_b == whole);
    // Mutations must not be able to lose the stream entirely: damage is
    // confined to the lines it touches.
    EXPECT_GT(whole.tuples.size(), 0u);
  }
}

TEST(FramingFuzz, OverlongLinesCountExactlyOnceAndResync) {
  // Deterministic construction: good, overlong (split across reads), good.
  std::string big(kMaxLine + 1, 'y');
  std::string stream = "1 10 ok_before\n" + big + "\n2 20 ok_after\n";
  for (size_t chunk : {size_t{1}, size_t{3}, kMaxLine, stream.size()}) {
    ParseOutcome out = RunFramer(stream, {chunk});
    SCOPED_TRACE("chunk " + std::to_string(chunk));
    ASSERT_EQ(out.tuples.size(), 2u);
    EXPECT_EQ(out.tuples[0].name, "ok_before");
    EXPECT_EQ(out.tuples[1].name, "ok_after");
    EXPECT_EQ(out.overlong, 1);  // exactly once, however it was split
    EXPECT_EQ(out.bad, 0);
  }
  // A line of exactly kMaxLine bytes parses (boundary semantics).
  std::string name(kMaxLine - 4, 'n');  // "1 2 " + name = kMaxLine bytes
  std::string boundary = "1 2 " + name + "\n";
  ASSERT_EQ(boundary.size() - 1, kMaxLine);
  ParseOutcome out = RunFramer(boundary, {2});
  EXPECT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.overlong, 0);
}

TEST(FramingFuzz, ParseTupleViewTotalityOnMutatedLines) {
  // The parser must be total: for any mutation of a valid line it either
  // yields a tuple or rejects it, with ignorable lines never counted bad
  // (the error accounting the servers rely on).  Exercised through the
  // framer so views borrow from both the read buffer and the side buffer.
  for (uint32_t seed : {7u, 77u, 777u}) {
    std::mt19937 rng(seed);
    std::string stream;
    for (int i = 0; i < 400; ++i) {
      std::string line = "12345 -6.75e2 some_signal";
      size_t flips = rng() % 6;
      for (size_t f = 0; f < flips; ++f) {
        char c = static_cast<char>(rng() % 128);
        // Keep the line count at exactly 400 so the accounting bound below
        // stays exact; newline injection is covered by the mutated-stream
        // invariance test.
        line[rng() % line.size()] = c == '\n' ? 'x' : c;
      }
      stream.append(line).push_back('\n');
    }
    ParseOutcome whole = RunFramer(stream, {stream.size()});
    ParseOutcome chunked = RunFramer(stream, RandomChunkSizes(rng, 11));
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(chunked == whole);
    // Every line is accounted exactly once: parsed, bad, or ignorable.
    EXPECT_LE(whole.tuples.size() + static_cast<size_t>(whole.bad), 400u);
  }
}

TEST(FramingFuzz, FaultShimChunkScheduleIsInvariant) {
  // The chunk sizes a ShortReads fault schedule would impose at the Socket
  // boundary (seeded, probabilistic) must not change what the framer
  // delivers.  The schedule is derived from the injector itself, so this is
  // byte-exactly the read pattern a faulted socket would see.
  for (uint32_t seed : {11u, 22u, 33u}) {
    std::mt19937 rng(seed);
    std::string stream = Mutate(rng, SerializeCorpus(rng, 250, nullptr));

    FaultInjector fi(seed);
    FaultRule rule = FaultInjector::ShortReads(3);
    rule.probability = 0.7;  // mix clamped and full reads
    fi.AddRule(rule);
    std::vector<size_t> sizes;
    for (int i = 0; i < 97; ++i) {
      constexpr size_t kReadLen = 16;
      FaultDecision d = fi.Intercept(FaultOp::kRead, 7, kReadLen);
      sizes.push_back(std::min(d.max_len, kReadLen));
    }
    EXPECT_GT(fi.stats().short_reads, 0);

    ParseOutcome whole = RunFramer(stream, {stream.size()});
    ParseOutcome shimmed = RunFramer(stream, sizes);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(shimmed == whole);
  }
}

// One observed control-channel session: the demuxed reply and tuple
// sequences in arrival order, plus the error accounting.
struct SessionTrace {
  std::vector<std::string> replies;
  std::vector<std::pair<std::string, double>> tuples;
  int64_t client_parse_errors = 0;
  int64_t server_parse_errors = 0;
  bool completed = false;
};

// Loopback control session (subscribe + push + echo) with or without the
// fault shim installed.  Returns everything the client observed.
SessionTrace RunControlSession(bool faulted, int tuple_count) {
  MainLoop loop;
  Scope scope(&loop, {.name = "fz", .width = 64});
  scope.SetPollingMode(1);

  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FaultInjector::ScopedInstall> guard;
  if (faulted) {
    injector = std::make_unique<FaultInjector>(99);
    injector->AddRule(FaultInjector::ShortReads(1));
    injector->AddRule(FaultInjector::PartialWrites(2));
    guard = std::make_unique<FaultInjector::ScopedInstall>(injector.get());
  }

  StreamServerOptions sopt;
  sopt.control_poll_period_ms = 1;
  StreamServer server(&loop, &scope, sopt);
  SessionTrace trace;
  if (!server.Listen(0)) {
    return trace;
  }
  scope.StartPolling();  // anchor the timebase the session scope adopts

  ControlClient viewer(&loop);
  viewer.SetReplyCallback(
      [&](std::string_view line) { trace.replies.emplace_back(line); });
  viewer.SetTupleCallback([&](const TupleView& t) {
    trace.tuples.emplace_back(std::string(t.name), t.value);
  });

  auto run_until = [&](const std::function<bool()>& pred, int max_ms) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop.RunForMs(1);
    }
    return pred();
  };

  if (!viewer.Connect(server.port()) ||
      !run_until([&]() { return viewer.connected(); }, 2000)) {
    return trace;
  }
  viewer.Subscribe("fz_*");
  viewer.SetDelay(50);  // display delay >> fault-slowed transit time
  if (!run_until([&]() { return viewer.stats().replies_ok >= 2; }, 2000)) {
    return trace;
  }
  for (int i = 0; i < tuple_count; ++i) {
    viewer.Send(scope.NowMs(), static_cast<double>(i) * 0.5 - 7.25, "fz_sig");
    loop.RunForMs(1);
  }
  trace.completed = run_until(
      [&]() { return trace.tuples.size() >= static_cast<size_t>(tuple_count); }, 5000);
  trace.client_parse_errors = viewer.stats().parse_errors;
  trace.server_parse_errors = server.stats().parse_errors;
  if (faulted) {
    // The schedule really mangled the wire: every read clamped to one byte.
    EXPECT_GT(injector->stats().short_reads, 0);
    EXPECT_GT(injector->stats().partial_writes, 0);
  }
  return trace;
}

TEST(FramingFuzz, ControlClientDemuxInvariantUnderFaultShim) {
  // The full bidirectional demux (replies by leading letter, tuples
  // otherwise) through real sockets: a run whose every read is 1 byte and
  // every write at most 2 must observe EXACTLY the sequences a friendly
  // run observes - same replies in order, same echoed tuples in order,
  // zero parse errors on both ends.
  constexpr int kTuples = 40;
  SessionTrace friendly = RunControlSession(/*faulted=*/false, kTuples);
  SessionTrace faulted = RunControlSession(/*faulted=*/true, kTuples);

  ASSERT_TRUE(friendly.completed);
  ASSERT_TRUE(faulted.completed);
  EXPECT_EQ(friendly.client_parse_errors, 0);
  EXPECT_EQ(faulted.client_parse_errors, 0);
  EXPECT_EQ(friendly.server_parse_errors, 0);
  EXPECT_EQ(faulted.server_parse_errors, 0);
  EXPECT_EQ(faulted.replies, friendly.replies);
  ASSERT_EQ(faulted.tuples.size(), friendly.tuples.size());
  for (size_t i = 0; i < friendly.tuples.size(); ++i) {
    EXPECT_EQ(faulted.tuples[i].first, friendly.tuples[i].first) << "tuple " << i;
    EXPECT_EQ(faulted.tuples[i].second, friendly.tuples[i].second) << "tuple " << i;
  }
}

// ---------------------------------------------------------------------------
// Binary wire (frame_codec.h): the same chunking-invariance and resync
// properties, at the frame layer.  One decode's full observable output:
// dict entries, samples (with reconstructed absolute timestamps), text
// lines, and the decoder's own accounting.
// ---------------------------------------------------------------------------

struct WireSample {
  uint32_t id = 0;
  int64_t time_ms = 0;
  double value = 0.0;

  bool operator==(const WireSample& other) const = default;
};

struct DecodeOutcome {
  std::vector<std::pair<uint32_t, std::string>> dict;  // arrival order
  std::vector<WireSample> samples;
  std::vector<std::string> text;
  int64_t frames_rx = 0;
  int64_t crc_errors = 0;

  bool operator==(const DecodeOutcome& other) const = default;
};

struct CollectingHandler {
  DecodeOutcome* out;
  void OnDictEntry(uint32_t id, std::string_view name) {
    out->dict.emplace_back(id, std::string(name));
  }
  void OnSampleBatch(int64_t base_time_ms, const char* records, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const char* rec = records + i * wire::kSampleRecordBytes;
      out->samples.push_back({wire::LoadU32(rec),
                              base_time_ms + wire::LoadI32(rec + 4),
                              wire::LoadF64(rec + 8)});
    }
  }
  void OnTextLine(std::string_view line) { out->text.emplace_back(line); }
};

// Feeds `stream` through a FrameDecoder in the given chunk sizes (cycled),
// with Finish() at EOF, exactly the way StreamServer's read loop does.
DecodeOutcome RunDecoder(const std::string& stream, const std::vector<size_t>& chunk_sizes) {
  wire::FrameDecoder decoder;
  DecodeOutcome out;
  CollectingHandler handler{&out};
  size_t pos = 0;
  size_t chunk_i = 0;
  while (pos < stream.size()) {
    size_t n = std::min(chunk_sizes[chunk_i++ % chunk_sizes.size()], stream.size() - pos);
    n = std::max<size_t>(n, 1);
    decoder.Consume(stream.data() + pos, n, handler);
    pos += n;
  }
  decoder.Finish();
  out.frames_rx = decoder.stats().frames_rx;
  out.crc_errors = decoder.stats().crc_errors;
  return out;
}

// A deterministic mixed stream: samples frames (random sizes, names from a
// small pool so dict reuse and re-declaration both occur) interleaved with
// text frames.  Appends every staged sample to `originals` keyed by name.
std::string BuildBinaryCorpus(std::mt19937& rng, int frames,
                              std::vector<std::pair<std::string, WireSample>>* originals) {
  wire::WireEncoder enc;
  std::string stream;
  const std::vector<std::string> pool = {"fz_a", "fz_b", "fz_long_name_c", "fz_d"};
  int64_t t = 1000;
  for (int f = 0; f < frames; ++f) {
    if (rng() % 5 == 0) {
      wire::WireEncoder::EmitTextLineFrame(stream, "OK PING " + std::to_string(f));
      continue;
    }
    size_t count = 1 + rng() % 20;
    for (size_t i = 0; i < count; ++i) {
      const std::string& name = pool[rng() % pool.size()];
      t += static_cast<int64_t>(rng() % 50);
      double v = RandomValue(rng);
      EXPECT_EQ(enc.Add(name, t, v), wire::StageResult::kStaged);
      if (originals != nullptr) {
        originals->push_back({name, {0, t, v}});
      }
    }
    EXPECT_EQ(enc.EmitFrame(stream), count);
  }
  return stream;
}

TEST(FramingFuzz, BinaryChunkingInvarianceOnCleanStreams) {
  for (uint32_t seed : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::mt19937 rng(seed);
    std::vector<std::pair<std::string, WireSample>> originals;
    std::string stream = BuildBinaryCorpus(rng, 40, &originals);

    DecodeOutcome whole = RunDecoder(stream, {stream.size()});
    DecodeOutcome bytewise = RunDecoder(stream, {1});
    DecodeOutcome random_chunks = RunDecoder(stream, RandomChunkSizes(rng, 37));

    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(whole.crc_errors, 0);
    EXPECT_GT(whole.frames_rx, 0);
    ASSERT_EQ(whole.samples.size(), originals.size());
    // Absolute timestamps and values reconstruct bit-exact, and every
    // sample's id maps to the right name through the frame's own dict.
    // Ids never rebind within a connection, so the union of all dict
    // entries gives the id -> name map for every sample.
    std::vector<std::string> id_names(wire::kMaxDictId + 1);
    for (const auto& [id, name] : whole.dict) {
      id_names[id] = name;
    }
    size_t sample_i = 0;
    for (const auto& [name, expect] : originals) {
      const WireSample& got = whole.samples[sample_i++];
      EXPECT_EQ(got.time_ms, expect.time_ms);
      EXPECT_EQ(got.value, expect.value);
      EXPECT_EQ(id_names[got.id], name);
    }
    EXPECT_TRUE(bytewise == whole);
    EXPECT_TRUE(random_chunks == whole);
  }
}

TEST(FramingFuzz, BinaryCorruptedCrcCountsOnceAndResyncs) {
  // Three frames with tame payload bytes (no accidental magic pairs); a
  // corrupted byte in the middle frame must cost exactly one crc_error and
  // exactly that frame's samples, at EVERY chunking.
  wire::WireEncoder enc;
  std::string a, b, c;
  enc.Add("crc_one", 100, 1.0);
  enc.EmitFrame(a);
  enc.Add("crc_two", 200, 2.0);
  enc.Add("crc_two", 201, 2.5);
  enc.EmitFrame(b);
  enc.Add("crc_one", 300, 3.0);
  enc.EmitFrame(c);
  b[wire::kHeaderBytes + 9] ^= 0x01;  // a payload byte: CRC now mismatches
  const std::string stream = a + b + c;

  for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, stream.size()}) {
    DecodeOutcome out = RunDecoder(stream, {chunk});
    SCOPED_TRACE("chunk " + std::to_string(chunk));
    EXPECT_EQ(out.crc_errors, 1);
    EXPECT_EQ(out.frames_rx, 2);
    ASSERT_EQ(out.samples.size(), 2u);  // frame b's two samples are gone
    EXPECT_EQ(out.samples[0].time_ms, 100);
    EXPECT_EQ(out.samples[1].time_ms, 300);
    EXPECT_EQ(out.samples[1].value, 3.0);
  }
}

TEST(FramingFuzz, BinaryTruncatedFrameResyncsOnNextMagic) {
  // A frame torn mid-payload (the bytes a killed connection would leave)
  // followed by intact frames: the decoder must lose ONLY the torn frame,
  // count one loss-of-sync, and decode everything after it - at every
  // chunking.
  wire::WireEncoder enc;
  std::string a, torn, c, d;
  enc.Add("trunc_a", 10, 0.5);
  enc.EmitFrame(a);
  for (int i = 0; i < 8; ++i) {
    enc.Add("trunc_b", 20 + i, static_cast<double>(i));
  }
  enc.EmitFrame(torn);
  enc.Add("trunc_c", 40, 4.0);
  enc.EmitFrame(c);
  enc.Add("trunc_d", 50, 5.0);
  enc.EmitFrame(d);
  torn.resize(torn.size() / 2);  // mid-payload cut
  const std::string stream = a + torn + c + d;

  for (size_t chunk : {size_t{1}, size_t{5}, size_t{13}, stream.size()}) {
    DecodeOutcome out = RunDecoder(stream, {chunk});
    SCOPED_TRACE("chunk " + std::to_string(chunk));
    EXPECT_EQ(out.crc_errors, 1);  // one loss-of-sync, silent rescan after
    EXPECT_EQ(out.frames_rx, 3);
    ASSERT_EQ(out.samples.size(), 3u);
    EXPECT_EQ(out.samples[0].time_ms, 10);
    EXPECT_EQ(out.samples[1].time_ms, 40);
    EXPECT_EQ(out.samples[2].time_ms, 50);
  }
}

TEST(FramingFuzz, BinaryGarbageBetweenFramesIsConfined) {
  // Random garbage spliced BETWEEN frames: each splice costs at most one
  // loss-of-sync and zero decoded frames; the frames around it all survive.
  for (uint32_t seed : {41u, 42u, 43u}) {
    std::mt19937 rng(seed);
    wire::WireEncoder enc;
    std::vector<std::string> frames;
    for (int f = 0; f < 6; ++f) {
      std::string frame;
      enc.Add("gb_sig", 100 + f, static_cast<double>(f));
      enc.EmitFrame(frame);
      frames.push_back(std::move(frame));
    }
    std::string stream;
    int splices = 0;
    for (const std::string& frame : frames) {
      stream += frame;
      if (rng() % 2 == 0) {
        size_t len = 1 + rng() % 24;
        for (size_t i = 0; i < len; ++i) {
          stream.push_back(static_cast<char>(rng() % 256));
        }
        ++splices;
      }
    }
    // Close with a clean frame so trailing garbage cannot eat the tail.
    std::string last;
    enc.Add("gb_sig", 900, 9.0);
    enc.EmitFrame(last);
    stream += last;

    DecodeOutcome whole = RunDecoder(stream, {stream.size()});
    DecodeOutcome bytewise = RunDecoder(stream, {1});
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(whole.frames_rx, 7);
    ASSERT_EQ(whole.samples.size(), 7u);
    EXPECT_LE(whole.crc_errors, splices);
    EXPECT_TRUE(bytewise == whole);
  }
}

TEST(FramingFuzz, TextHelloBinaryTransitionOnRawSocket) {
  // The live negotiation boundary, through a real server: text tuples, then
  // HELLO BIN 1 (split across writes), then binary frames dribbled a few
  // bytes at a time.  Every sample on both sides of the switch must count,
  // with zero parse or CRC errors.
  MainLoop loop;
  Scope scope(&loop, {.name = "fzb", .width = 64});
  scope.SetPollingMode(1);
  StreamServer server(&loop, &scope);
  ASSERT_TRUE(server.Listen(0));
  scope.StartPolling();

  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  auto run_until = [&](const std::function<bool()>& pred, int max_ms = 2000) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop.RunForMs(1);
    }
    return pred();
  };
  ASSERT_TRUE(run_until([&]() { return server.client_count() == 1; }));

  // Writes everything, dribbling `chunk` bytes per loop turn so the server
  // sees the same torn boundaries a congested sender would produce.
  auto write_all = [&](const std::string& data, size_t chunk) {
    size_t pos = 0;
    return run_until([&]() {
      while (pos < data.size()) {
        IoResult r = raw.Write(data.data() + pos, std::min(chunk, data.size() - pos));
        if (!r.ok() || r.bytes == 0) {
          return false;
        }
        pos += r.bytes;
        loop.RunForMs(1);
      }
      return true;
    });
  };

  ASSERT_TRUE(write_all("71 7.5 fzb_text\n", 4));
  ASSERT_TRUE(run_until([&]() { return server.stats().tuples >= 1; }));
  EXPECT_EQ(server.stats().frames_rx, 0);

  ASSERT_TRUE(write_all("HELLO BIN 1\n", 3));  // torn mid-verb
  std::string reply;
  char buf[256];
  ASSERT_TRUE(run_until([&]() {
    IoResult r = raw.Read(buf, sizeof(buf));
    if (r.ok()) {
      reply.append(buf, r.bytes);
    }
    return reply.find('\n') != std::string::npos;
  }));
  EXPECT_NE(reply.find("OK HELLO BIN 1"), std::string::npos) << reply;

  wire::WireEncoder enc;
  std::string frames;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(enc.Add("fzb_bin", 100 + i, i * 1.5), wire::StageResult::kStaged);
    ASSERT_GT(enc.EmitFrame(frames), 0u);
  }
  ASSERT_TRUE(write_all(frames, 3));
  ASSERT_TRUE(run_until([&]() { return server.stats().tuples >= 6; }));
  EXPECT_EQ(server.stats().frames_rx, 5);
  EXPECT_EQ(server.stats().frames_crc_errors, 0);
  EXPECT_EQ(server.stats().parse_errors, 0);
  EXPECT_EQ(server.stats().dict_entries, 1);  // interned once across frames
}

TEST(FramingFuzz, DerivedFrameRelayEgressChunkingInvariance) {
  // Frame-relay egress for derived pipelines: a binary-negotiated subscriber
  // with a DECIMATE stage receives its derived tuples as SAMPLES frames.
  // The captured egress byte stream must decode to the same observation -
  // same dict entries, same bit-exact samples, same text reply lines, same
  // frame/CRC tallies - under every read chunking.
  MainLoop loop;
  Scope scope(&loop, {.name = "fzd", .width = 64});
  scope.SetPollingMode(1);
  StreamServer server(&loop, &scope);
  ASSERT_TRUE(server.Listen(0));
  scope.StartPolling();

  Socket raw = Socket::Connect(server.port());
  ASSERT_TRUE(raw.valid());
  std::string egress;
  auto pump = [&](const std::function<bool()>& pred, int max_ms = 3000) {
    for (int i = 0; i < max_ms; ++i) {
      char buf[4096];
      IoResult r = raw.Read(buf, sizeof(buf));
      if (r.ok() && r.bytes > 0) {
        egress.append(buf, r.bytes);
      }
      if (pred()) {
        return true;
      }
      loop.RunForMs(1);
    }
    return pred();
  };
  ASSERT_TRUE(pump([&]() { return server.client_count() == 1; }));

  // The HELLO reply is the last plain-text line; every later byte is framed.
  const std::string hello = "HELLO BIN 1\n";
  raw.Write(hello.data(), hello.size());
  const std::string hello_ok = "OK HELLO BIN 1\n";
  ASSERT_TRUE(
      pump([&]() { return egress.find(hello_ok) != std::string::npos; }));

  const std::string setup = "SUB fz_*\nDELAY 50\nDECIMATE 2\n";
  raw.Write(setup.data(), setup.size());
  ASSERT_TRUE(pump([&]() { return server.stats().stages_active >= 1; }));

  StreamClient producer(&loop);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(pump([&]() { return producer.connected(); }));
  for (int i = 1; i <= 20; ++i) {
    producer.Send(scope.NowMs(), static_cast<double>(i), "fz_sig");
  }

  // Drain until the whole-stream decode shows all 10 derived samples (the
  // even-indexed half was decimated away server-side).
  auto framed = [&]() {
    return egress.substr(egress.find(hello_ok) + hello_ok.size());
  };
  ASSERT_TRUE(pump([&]() {
    std::string stream = framed();
    if (stream.empty()) {
      return false;
    }
    DecodeOutcome out = RunDecoder(stream, {stream.size()});
    return out.crc_errors == 0 && out.samples.size() >= 10;
  }));
  // Settle: nothing further may arrive (exactly 10 derived tuples exist).
  ASSERT_TRUE(pump([&]() { return true; }, 100));

  const std::string stream = framed();
  DecodeOutcome whole = RunDecoder(stream, {stream.size()});
  ASSERT_EQ(whole.crc_errors, 0);
  ASSERT_EQ(whole.samples.size(), 10u);
  std::vector<std::string> id_names(wire::kMaxDictId + 1);
  for (const auto& [id, name] : whole.dict) {
    id_names[id] = name;
  }
  for (int k = 0; k < 10; ++k) {
    const WireSample& got = whole.samples[static_cast<size_t>(k)];
    EXPECT_EQ(got.value, static_cast<double>(2 * k + 1));
    EXPECT_EQ(id_names[got.id], "fz_sig");
  }
  // The control replies rode the same stream as text-line frames.
  int ok_replies = 0;
  for (const std::string& line : whole.text) {
    if (line.find("OK ") != std::string::npos) {
      ++ok_replies;
    }
  }
  EXPECT_GE(ok_replies, 3);  // OK SUB, OK DELAY, OK DECIMATE 2

  // Chunking invariance of the captured relay stream.
  DecodeOutcome bytewise = RunDecoder(stream, {1});
  EXPECT_TRUE(bytewise == whole);
  std::mt19937 rng(42);
  for (int round = 0; round < 6; ++round) {
    DecodeOutcome chunked =
        RunDecoder(stream, RandomChunkSizes(rng, 23 + static_cast<size_t>(round)));
    SCOPED_TRACE("round " + std::to_string(round));
    EXPECT_TRUE(chunked == whole);
  }
}

}  // namespace
}  // namespace gscope
