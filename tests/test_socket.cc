#include "net/socket.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

namespace gscope {
namespace {

// Drives a non-blocking connect/accept pair to completion.
struct Pair {
  Socket server_side;
  Socket client_side;
  bool ok = false;
};

Pair MakeConnectedPair() {
  Pair pair;
  uint16_t port = 0;
  Socket listener = Socket::Listen(0, &port);
  if (!listener.valid() || port == 0) {
    return pair;
  }
  pair.client_side = Socket::Connect(port);
  if (!pair.client_side.valid()) {
    return pair;
  }
  // Loopback connects complete almost immediately; poll accept briefly.
  for (int i = 0; i < 1000 && !pair.server_side.valid(); ++i) {
    pair.server_side = listener.Accept();
  }
  pair.ok = pair.server_side.valid();
  return pair;
}

TEST(SocketTest, ListenOnEphemeralPort) {
  uint16_t port = 0;
  Socket listener = Socket::Listen(0, &port);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(port, 0);
}

TEST(SocketTest, AcceptWithoutPendingReturnsInvalid) {
  uint16_t port = 0;
  Socket listener = Socket::Listen(0, &port);
  ASSERT_TRUE(listener.valid());
  Socket conn = listener.Accept();
  EXPECT_FALSE(conn.valid());
}

TEST(SocketTest, ConnectAcceptRoundTrip) {
  Pair pair = MakeConnectedPair();
  ASSERT_TRUE(pair.ok);

  const std::string msg = "hello scope";
  IoResult w = pair.client_side.Write(msg.data(), msg.size());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.bytes, msg.size());

  char buf[64] = {};
  IoResult r{};
  for (int i = 0; i < 1000; ++i) {
    r = pair.server_side.Read(buf, sizeof(buf));
    if (r.status != IoResult::Status::kWouldBlock) {
      break;
    }
  }
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(buf, r.bytes), msg);
}

TEST(SocketTest, ReadOnEmptySocketWouldBlock) {
  Pair pair = MakeConnectedPair();
  ASSERT_TRUE(pair.ok);
  char buf[8];
  IoResult r = pair.server_side.Read(buf, sizeof(buf));
  EXPECT_EQ(r.status, IoResult::Status::kWouldBlock);
}

TEST(SocketTest, EofAfterPeerCloses) {
  Pair pair = MakeConnectedPair();
  ASSERT_TRUE(pair.ok);
  pair.client_side.Close();
  char buf[8];
  IoResult r{};
  for (int i = 0; i < 1000; ++i) {
    r = pair.server_side.Read(buf, sizeof(buf));
    if (r.status != IoResult::Status::kWouldBlock) {
      break;
    }
  }
  EXPECT_EQ(r.status, IoResult::Status::kEof);
}

TEST(SocketTest, InvalidSocketOperationsFail) {
  Socket sock;
  EXPECT_FALSE(sock.valid());
  char buf[4];
  EXPECT_EQ(sock.Read(buf, 4).status, IoResult::Status::kError);
  EXPECT_EQ(sock.Write(buf, 4).status, IoResult::Status::kError);
  EXPECT_FALSE(sock.Accept().valid());
}

TEST(SocketTest, MoveTransfersOwnership) {
  uint16_t port = 0;
  Socket a = Socket::Listen(0, &port);
  ASSERT_TRUE(a.valid());
  int fd = a.fd();
  Socket b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing the move
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.fd(), fd);
}

TEST(SocketTest, ReleaseDetaches) {
  uint16_t port = 0;
  Socket a = Socket::Listen(0, &port);
  int fd = a.Release();
  EXPECT_FALSE(a.valid());
  EXPECT_GE(fd, 0);
  close(fd);
}

}  // namespace
}  // namespace gscope
