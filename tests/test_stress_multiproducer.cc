// Multi-producer stress tests of the backpressure pipeline, driven through
// tests/stress_harness.{h,cc}: N producers against a StreamServer whose
// reader follows a scripted drain/pause/restart schedule, with per-policy
// invariants (zero torn frames, exact drop accounting, drop-oldest keeps
// the newest data, block honors its deadline).  Every schedule here uses
// fixed seeds and deliberately tiny kernel/application buffers so overload
// genuinely occurs within a fraction of a second.
//
// GSCOPE_STRESS_SOAK (a positive integer) scales the soak test's workload;
// scripts/check.sh uses it for a short soak stage.
#include <gtest/gtest.h>

#include <cstdlib>

#include "stress_harness.h"

namespace gscope {
namespace {

using stress::Options;
using stress::Result;
using stress::RunStress;
using stress::ScheduleStep;

using Kind = ScheduleStep::Kind;

// Pause-heavy: the server repeatedly stops reading long enough for the
// producers' 8 KiB backlogs (on 4 KiB kernel buffers) to overflow.
std::vector<ScheduleStep> PauseHeavySchedule() {
  return {{Kind::kPause, 30}, {Kind::kDrain, 15}, {Kind::kPause, 20}, {Kind::kDrain, 10}};
}

void ExpectCommonInvariants(const Result& result) {
  ASSERT_TRUE(result.ran) << result.setup_error;
  for (size_t i = 0; i < result.producers.size(); ++i) {
    EXPECT_TRUE(result.producers[i].connected_ok) << "producer " << i << " never connected";
  }
  EXPECT_EQ(result.CheckNoTornFrames(), "");
  EXPECT_EQ(result.CheckSendAccounting(), "");
  EXPECT_EQ(result.CheckSequencesMonotone(), "");
}

TEST(StressMultiProducer, DropNewestExactAccountingUnderPauses) {
  Options opt;
  opt.producers = 4;
  opt.tuples_per_producer = 12000;
  opt.payload_pad = 48;
  opt.policy = OverflowPolicy::kDropNewest;
  opt.schedule = PauseHeavySchedule();
  opt.seed = 11;
  Result result = RunStress(opt);
  ExpectCommonInvariants(result);
  EXPECT_EQ(result.CheckDeliveryExact(), "");
  // kDropNewest never evicts committed frames.
  for (const auto& p : result.producers) {
    EXPECT_EQ(p.evicted, 0);
    EXPECT_EQ(p.abandoned, 0);  // no restarts: connections die only gracefully
    EXPECT_LE(p.high_water, static_cast<int64_t>(opt.client_buffer));
  }
  // The cap must actually have bitten, or this test exercised nothing.
  EXPECT_GT(result.producers[0].dropped + result.producers[1].dropped +
                result.producers[2].dropped + result.producers[3].dropped,
            0);
  EXPECT_GT(result.TotalDelivered(), 0);
}

TEST(StressMultiProducer, DropOldestPreservesNewestUnderPauses) {
  Options opt;
  opt.producers = 4;
  opt.tuples_per_producer = 12000;
  opt.payload_pad = 48;
  opt.policy = OverflowPolicy::kDropOldest;
  opt.schedule = PauseHeavySchedule();
  opt.seed = 12;
  Result result = RunStress(opt);
  ExpectCommonInvariants(result);
  EXPECT_EQ(result.CheckDeliveryExact(), "");
  EXPECT_EQ(result.CheckNewestPreserved(), "");
  int64_t evicted = 0;
  for (const auto& p : result.producers) {
    evicted += p.evicted;
    // Tuple frames are far smaller than the cap, so eviction always makes
    // room: a drop-oldest producer's sends are never refused.
    EXPECT_EQ(p.dropped, 0);
    EXPECT_LE(p.high_water, static_cast<int64_t>(opt.client_buffer));
  }
  EXPECT_GT(evicted, 0);  // overload happened and was absorbed by eviction
}

TEST(StressMultiProducer, BlockWithDeadlineBoundsWaitAndKeepsAccounting) {
  Options opt;
  opt.producers = 2;
  opt.tuples_per_producer = 2500;
  opt.payload_pad = 48;
  opt.policy = OverflowPolicy::kBlockWithDeadline;
  opt.block_deadline_ms = 1;
  opt.schedule = {{Kind::kPause, 25}, {Kind::kDrain, 15}};
  opt.seed = 13;
  Result result = RunStress(opt);
  ExpectCommonInvariants(result);
  EXPECT_EQ(result.CheckDeliveryExact(), "");
  EXPECT_EQ(result.CheckBlockDeadline(opt.block_deadline_ms), "");
  int64_t blocked_ns = 0;
  for (const auto& p : result.producers) {
    blocked_ns += p.block_time_ns;
    EXPECT_LE(p.high_water, static_cast<int64_t>(opt.client_buffer));
  }
  // The pauses must actually have forced waits; otherwise the deadline
  // bound above was vacuous.
  EXPECT_GT(blocked_ns, 0);
}

TEST(StressMultiProducer, ServerRestartForcesReconnectWithoutTearingFrames) {
  Options opt;
  opt.producers = 3;
  opt.tuples_per_producer = 4000;
  opt.policy = OverflowPolicy::kDropOldest;
  opt.schedule = {{Kind::kDrain, 20}, {Kind::kRestart, 20}, {Kind::kDrain, 25}};
  opt.seed = 14;
  Result result = RunStress(opt);
  ExpectCommonInvariants(result);
  EXPECT_GT(result.restarts, 0);
  int reconnects = 0;
  int64_t delivered_bound = 0;
  for (const auto& p : result.producers) {
    reconnects += p.reconnects;
    delivered_bound += p.sent - p.evicted;
  }
  EXPECT_GT(reconnects, 0);
  // Exactness is impossible across a teardown (kernel-buffered bytes die
  // with the connection), but delivery can never exceed what survived the
  // client-side backlog.
  EXPECT_LE(result.TotalDelivered(), delivered_bound);
  EXPECT_GT(result.TotalDelivered(), 0);
}

TEST(StressMultiProducer, ForkedProcessProducersThroughCBindings) {
  Options opt;
  opt.producers = 3;
  opt.tuples_per_producer = 6000;
  opt.payload_pad = 48;
  opt.policy = OverflowPolicy::kDropOldest;
  opt.schedule = {{Kind::kPause, 20}, {Kind::kDrain, 15}};
  opt.seed = 15;
  opt.use_processes = true;
  Result result = RunStress(opt);
  ExpectCommonInvariants(result);
  EXPECT_EQ(result.CheckDeliveryExact(), "");
  EXPECT_EQ(result.CheckNewestPreserved(), "");
}

TEST(StressMultiProducer, MixedWireFleetExactAccountingUnderPauses) {
  // Odd producers negotiate the binary wire (docs/protocol.md, "Wire format
  // v2"); even ones stay text.  Both formats interleave on one overloaded
  // server and the accounting stays tuple-exact: binary frames commit whole
  // (weight = samples carried), so delivered == sent - evicted - abandoned
  // holds per producer whatever mix of formats the drops landed on.
  Options opt;
  opt.producers = 4;
  opt.tuples_per_producer = 12000;
  opt.payload_pad = 48;
  opt.policy = OverflowPolicy::kDropNewest;
  opt.schedule = PauseHeavySchedule();
  opt.seed = 31;
  opt.wire = Options::Wire::kMixed;
  Result result = RunStress(opt);
  ExpectCommonInvariants(result);
  EXPECT_EQ(result.CheckDeliveryExact(), "");
  ASSERT_EQ(result.producers.size(), 4u);
  EXPECT_FALSE(result.producers[0].wire_binary);
  EXPECT_TRUE(result.producers[1].wire_binary);
  EXPECT_FALSE(result.producers[2].wire_binary);
  EXPECT_TRUE(result.producers[3].wire_binary);
  for (const auto& p : result.producers) {
    EXPECT_LE(p.high_water, static_cast<int64_t>(opt.client_buffer));
  }
  // Every producer delivered something; the overload bit somewhere.
  for (size_t i = 0; i < result.received.size(); ++i) {
    EXPECT_GT(result.received[i].size(), 0u) << "producer " << i;
  }
  int64_t dropped = 0;
  for (const auto& p : result.producers) {
    dropped += p.dropped;
  }
  EXPECT_GT(dropped, 0);
}

TEST(StressMultiProducer, ClockSkewedProducersReconstructExactTimestamps) {
  // Producer k stamps its tuples k x 10^9 ms (~31 years) apart from its
  // neighbors.  Binary frames carry one i64 base plus i32 per-sample deltas;
  // the reconstruction on the server must be bit-exact, so every received
  // timestamp maps back to its producer's clock with zero error even though
  // the producers' clocks disagree by decades.
  Options opt;
  opt.producers = 4;
  opt.tuples_per_producer = 3000;
  opt.policy = OverflowPolicy::kDropOldest;
  opt.schedule = {{Kind::kDrain, 10}};
  opt.seed = 32;
  opt.wire = Options::Wire::kMixed;  // text producers prove parity
  opt.producer_skew_ms = 1000000000;  // 10^9
  Result result = RunStress(opt);
  ExpectCommonInvariants(result);
  EXPECT_EQ(result.CheckDeliveryExact(), "");
  ASSERT_EQ(result.received_times.size(), result.received.size());
  for (size_t i = 0; i < result.received_times.size(); ++i) {
    const int64_t skew = static_cast<int64_t>(i) * opt.producer_skew_ms;
    ASSERT_EQ(result.received_times[i].size(), result.received[i].size());
    for (int64_t t : result.received_times[i]) {
      // Undo the skew: what remains is the producer's local sim time, which
      // a run this short keeps far below one skew step.  Any encode error
      // (wrong base, delta rounding) lands outside this window.
      int64_t local = t - skew;
      ASSERT_GE(local, 0) << "producer " << i;
      ASSERT_LT(local, opt.producer_skew_ms / 2) << "producer " << i;
    }
    EXPECT_GT(result.received_times[i].size(), 0u) << "producer " << i;
  }
}

TEST(StressMultiProducer, SoakMixedSchedulesAllPolicies) {
  // Short by default; scripts/check.sh raises GSCOPE_STRESS_SOAK for a
  // longer (still < 10 s) soak pass.
  int scale = 1;
  if (const char* env = std::getenv("GSCOPE_STRESS_SOAK"); env != nullptr) {
    scale = std::max(1, std::atoi(env));
  }
  const struct {
    OverflowPolicy policy;
    uint32_t seed;
  } runs[] = {
      {OverflowPolicy::kDropNewest, 21},
      {OverflowPolicy::kDropOldest, 22},
      {OverflowPolicy::kBlockWithDeadline, 23},
  };
  for (const auto& run : runs) {
    Options opt;
    opt.producers = 4;
    opt.tuples_per_producer = 2000 * scale;
    opt.policy = run.policy;
    opt.block_deadline_ms = 1;
    opt.payload_pad = 32;
    opt.schedule = {{Kind::kDrain, 10}, {Kind::kPause, 15},  {Kind::kDrain, 5},
                    {Kind::kPause, 25}, {Kind::kRestart, 15}, {Kind::kDrain, 20}};
    opt.seed = run.seed;
    Result result = RunStress(opt);
    SCOPED_TRACE("policy " + std::to_string(static_cast<int>(run.policy)));
    ExpectCommonInvariants(result);
    EXPECT_GT(result.TotalDelivered(), 0);
  }
}

}  // namespace
}  // namespace gscope
