#include "core/aggregate.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gscope {
namespace {

constexpr Nanos kInterval = MillisToNanos(100);  // 0.1 s polling period

TEST(AggregateTest, MaximumOfInterval) {
  EventAggregator agg(AggregateKind::kMaximum);
  agg.Push(3.0);
  agg.Push(9.0);
  agg.Push(5.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 9.0);
}

TEST(AggregateTest, MinimumOfInterval) {
  EventAggregator agg(AggregateKind::kMinimum);
  agg.Push(3.0);
  agg.Push(-2.0);
  agg.Push(5.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), -2.0);
}

TEST(AggregateTest, SumBytesReceived) {
  EventAggregator agg(AggregateKind::kSum);
  agg.Push(1500.0);
  agg.Push(500.0);
  agg.Push(40.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 2040.0);
}

TEST(AggregateTest, RateIsSumPerSecond) {
  // Paper: "Ratio of the sum of sample values to the polling period, e.g.,
  // bandwidth in bytes per second."
  EventAggregator agg(AggregateKind::kRate);
  agg.Push(1000.0);
  agg.Push(1000.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 2000.0 / 0.1);
}

TEST(AggregateTest, AverageBytesPerPacket) {
  EventAggregator agg(AggregateKind::kAverage);
  agg.Push(100.0);
  agg.Push(300.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 200.0);
}

TEST(AggregateTest, EventsCountsPackets) {
  EventAggregator agg(AggregateKind::kEvents);
  for (int i = 0; i < 7; ++i) {
    agg.Push(123.0);
  }
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 7.0);
}

TEST(AggregateTest, AnyEventBoolean) {
  EventAggregator agg(AggregateKind::kAnyEvent);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 0.0);
  agg.Push(0.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 1.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 0.0);
}

TEST(AggregateTest, LastHoldsMostRecent) {
  EventAggregator agg(AggregateKind::kLast);
  agg.Push(1.0);
  agg.Push(2.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 2.0);
  // No new events: Last naturally holds.
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval, 2.0), 2.0);
}

TEST(AggregateTest, DrainResetsInterval) {
  EventAggregator agg(AggregateKind::kSum);
  agg.Push(5.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 5.0);
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), 0.0);
}

TEST(AggregateTest, EmptyIntervalUsesHoldForValueAggregates) {
  EventAggregator max_agg(AggregateKind::kMaximum);
  EXPECT_DOUBLE_EQ(max_agg.Drain(kInterval, 42.0), 42.0);
  EventAggregator avg_agg(AggregateKind::kAverage);
  EXPECT_DOUBLE_EQ(avg_agg.Drain(kInterval, 7.0), 7.0);
}

TEST(AggregateTest, EmptyIntervalZeroForCountingAggregates) {
  EventAggregator events(AggregateKind::kEvents);
  EXPECT_DOUBLE_EQ(events.Drain(kInterval, 99.0), 0.0);
  EventAggregator sum(AggregateKind::kSum);
  EXPECT_DOUBLE_EQ(sum.Drain(kInterval, 99.0), 0.0);
}

TEST(AggregateTest, PendingEventsVisible) {
  EventAggregator agg(AggregateKind::kEvents);
  agg.Push(1.0);
  agg.Push(1.0);
  EXPECT_EQ(agg.pending_events(), 2);
  agg.Drain(kInterval);
  EXPECT_EQ(agg.pending_events(), 0);
}

TEST(AggregateTest, ThreadSafePushes) {
  EventAggregator agg(AggregateKind::kEvents);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&agg]() {
      for (int i = 0; i < kPerThread; ++i) {
        agg.Push(1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(agg.Drain(kInterval), kThreads * kPerThread);
}

TEST(AggregateTest, KindNames) {
  EXPECT_STREQ(AggregateKindName(AggregateKind::kMaximum), "Maximum");
  EXPECT_STREQ(AggregateKindName(AggregateKind::kRate), "Rate");
  EXPECT_STREQ(AggregateKindName(AggregateKind::kAnyEvent), "AnyEvent");
}

// Property: for every kind, draining twice without pushes gives the kind's
// identity (hold for value kinds, zero for counting kinds).
class AggregateIdentityProperty : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(AggregateIdentityProperty, DoubleDrainStable) {
  EventAggregator agg(GetParam());
  agg.Push(10.0);
  agg.Drain(kInterval);
  double first = agg.Drain(kInterval, 10.0);
  double second = agg.Drain(kInterval, 10.0);
  EXPECT_DOUBLE_EQ(first, second);
}

// Property: aggregates are order-insensitive for commutative kinds.
TEST_P(AggregateIdentityProperty, OrderInsensitive) {
  AggregateKind kind = GetParam();
  if (kind == AggregateKind::kLast) {
    return;  // Last is inherently order-sensitive
  }
  EventAggregator forward(kind);
  EventAggregator backward(kind);
  std::vector<double> samples = {5.0, -3.0, 12.0, 0.5};
  for (double s : samples) {
    forward.Push(s);
  }
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    backward.Push(*it);
  }
  EXPECT_DOUBLE_EQ(forward.Drain(kInterval), backward.Drain(kInterval));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggregateIdentityProperty,
                         ::testing::Values(AggregateKind::kMaximum, AggregateKind::kMinimum,
                                           AggregateKind::kSum, AggregateKind::kRate,
                                           AggregateKind::kAverage, AggregateKind::kEvents,
                                           AggregateKind::kAnyEvent, AggregateKind::kLast));

}  // namespace
}  // namespace gscope
