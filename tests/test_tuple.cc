#include "core/tuple.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace gscope {
namespace {

TEST(TupleTest, FormatThreeFields) {
  Tuple t{1500, 42.5, "CWND"};
  EXPECT_EQ(FormatTuple(t), "1500 42.5 CWND\n");
}

TEST(TupleTest, FormatTwoFieldsWhenNameEmpty) {
  // Section 3.3: "if there is only one signal, then the third quantity may
  // not exist.  In that case, signals are simply time-value tuples."
  Tuple t{1500, 42.5, ""};
  EXPECT_EQ(FormatTuple(t), "1500 42.5\n");
}

TEST(TupleTest, FormatNonFiniteAndExtremeValues) {
  // The integral fast path must not cast NaN/out-of-range doubles (UB);
  // these route through the general formatter and round-trip.
  auto roundtrip = [](double v) {
    auto t = ParseTuple(FormatTuple(Tuple{1, v, "x"}));
    ASSERT_TRUE(t.has_value());
    if (std::isnan(v)) {
      EXPECT_TRUE(std::isnan(t->value));
    } else {
      EXPECT_DOUBLE_EQ(t->value, v);
    }
  };
  roundtrip(std::numeric_limits<double>::quiet_NaN());
  roundtrip(std::numeric_limits<double>::infinity());
  roundtrip(-std::numeric_limits<double>::infinity());
  roundtrip(1e300);
  roundtrip(-1e300);
  roundtrip(9.2233720368547758e18);  // just above int64 range
  roundtrip(123456.0);
  roundtrip(-123456.0);
  roundtrip(-0.0);
}

TEST(TupleTest, FormatIntegralValuesUseIntegerDigits) {
  EXPECT_EQ(FormatTuple(Tuple{1, 42.0, ""}), "1 42\n");
  EXPECT_EQ(FormatTuple(Tuple{1, 0.0, ""}), "1 0\n");
  EXPECT_EQ(FormatTuple(Tuple{1, -3.0, ""}), "1 -3\n");
}

TEST(TupleTest, ParseThreeFields) {
  auto t = ParseTuple("1500 42.5 CWND");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->time_ms, 1500);
  EXPECT_DOUBLE_EQ(t->value, 42.5);
  EXPECT_EQ(t->name, "CWND");
}

TEST(TupleTest, ParseTwoFields) {
  auto t = ParseTuple("99 -7");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->time_ms, 99);
  EXPECT_DOUBLE_EQ(t->value, -7.0);
  EXPECT_TRUE(t->name.empty());
}

TEST(TupleTest, ParseToleratesWhitespace) {
  auto t = ParseTuple("  12\t 3.5   sig  \r");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->time_ms, 12);
  EXPECT_DOUBLE_EQ(t->value, 3.5);
  EXPECT_EQ(t->name, "sig");
}

TEST(TupleTest, ParseScientificNotation) {
  auto t = ParseTuple("5 1.5e3 bw");
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->value, 1500.0);
}

TEST(TupleTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseTuple("justonefield").has_value());
  EXPECT_FALSE(ParseTuple("abc 1.0 name").has_value());
  EXPECT_FALSE(ParseTuple("10 notanumber name").has_value());
  EXPECT_FALSE(ParseTuple("10").has_value());
  EXPECT_FALSE(ParseTuple("10 1.0 name extra").has_value());
  EXPECT_FALSE(ParseTuple("1.5 2.0 frac_time").has_value());  // time must be integral
}

TEST(TupleTest, ParseRejectsEmptyAndComments) {
  EXPECT_FALSE(ParseTuple("").has_value());
  EXPECT_FALSE(ParseTuple("   ").has_value());
  EXPECT_FALSE(ParseTuple("# comment line").has_value());
}

TEST(TupleTest, IsIgnorableLine) {
  EXPECT_TRUE(IsIgnorableLine(""));
  EXPECT_TRUE(IsIgnorableLine("   \t"));
  EXPECT_TRUE(IsIgnorableLine("# anything"));
  EXPECT_TRUE(IsIgnorableLine("  # indented comment"));
  EXPECT_FALSE(IsIgnorableLine("1 2 x"));
  EXPECT_FALSE(IsIgnorableLine("garbage"));
}

TEST(TupleTest, NegativeTimeParses) {
  // Relative times before a reference point are legal in the codec; order
  // enforcement happens in TupleReader/Writer.
  auto t = ParseTuple("-5 1.0 x");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->time_ms, -5);
}

TEST(TupleTest, LongNameRoundTrip) {
  Tuple t{1, 2.0, std::string(300, 'n')};
  std::string wire = FormatTuple(t);
  auto parsed = ParseTuple(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(TupleTest, EqualityOperator) {
  Tuple a{1, 2.0, "x"};
  Tuple b{1, 2.0, "x"};
  Tuple c{1, 2.5, "x"};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// Property: format -> parse is the identity for representable tuples.
struct RoundTripCase {
  int64_t time_ms;
  double value;
  const char* name;
};

class TupleRoundTripProperty : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(TupleRoundTripProperty, FormatParseIdentity) {
  const RoundTripCase& c = GetParam();
  Tuple t{c.time_ms, c.value, c.name};
  auto parsed = ParseTuple(FormatTuple(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time_ms, t.time_ms);
  EXPECT_DOUBLE_EQ(parsed->value, t.value);
  EXPECT_EQ(parsed->name, t.name);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TupleRoundTripProperty,
    ::testing::Values(RoundTripCase{0, 0.0, ""}, RoundTripCase{1, -1.0, "a"},
                      RoundTripCase{9223372036854775807LL, 1e300, "big"},
                      RoundTripCase{-42, 3.141592653589793, "pi"},
                      RoundTripCase{1000, 0.1 + 0.2, "float_dust"},
                      RoundTripCase{77, -0.0, "negzero"},
                      RoundTripCase{123456789, 6.02214076e23, "avogadro"}));

}  // namespace
}  // namespace gscope
