#include "core/scope.h"

#include <gtest/gtest.h>

#include "runtime/clock.h"

namespace gscope {
namespace {

class ScopeTest : public ::testing::Test {
 protected:
  ScopeTest() : loop_(&clock_), scope_(&loop_, ScopeOptions{.name = "test", .width = 64}) {}

  SimClock clock_;
  MainLoop loop_;
  Scope scope_;
};

TEST_F(ScopeTest, AddSignalAssignsIdsAndPalette) {
  int32_t x = 0;
  SignalId a = scope_.AddSignal({.name = "a", .source = &x});
  SignalId b = scope_.AddSignal({.name = "b", .source = &x});
  EXPECT_NE(a, 0);
  EXPECT_NE(b, 0);
  EXPECT_NE(a, b);
  ASSERT_NE(scope_.SpecFor(a), nullptr);
  ASSERT_TRUE(scope_.SpecFor(a)->color.has_value());
  EXPECT_NE(*scope_.SpecFor(a)->color, *scope_.SpecFor(b)->color);
}

TEST_F(ScopeTest, DuplicateNameRejected) {
  int32_t x = 0;
  EXPECT_NE(scope_.AddSignal({.name = "a", .source = &x}), 0);
  EXPECT_EQ(scope_.AddSignal({.name = "a", .source = &x}), 0);
}

TEST_F(ScopeTest, InvalidSpecsRejected) {
  int32_t x = 0;
  EXPECT_EQ(scope_.AddSignal({.name = "", .source = &x}), 0);
  EXPECT_EQ(scope_.AddSignal({.name = "bad", .source = &x, .min = 10.0, .max = 10.0}), 0);
  EXPECT_EQ(scope_.AddSignal({.name = "bad2", .source = &x, .min = 10.0, .max = 5.0}), 0);
}

TEST_F(ScopeTest, RemoveSignal) {
  int32_t x = 0;
  SignalId id = scope_.AddSignal({.name = "a", .source = &x});
  EXPECT_EQ(scope_.signal_count(), 1u);
  EXPECT_TRUE(scope_.RemoveSignal(id));
  EXPECT_EQ(scope_.signal_count(), 0u);
  EXPECT_FALSE(scope_.RemoveSignal(id));
  EXPECT_EQ(scope_.FindSignal("a"), 0);
}

TEST_F(ScopeTest, FindSignalByName) {
  int32_t x = 0;
  SignalId id = scope_.AddSignal({.name = "cwnd", .source = &x});
  EXPECT_EQ(scope_.FindSignal("cwnd"), id);
  EXPECT_EQ(scope_.FindSignal("nope"), 0);
}

TEST_F(ScopeTest, PollsIntegerSignal) {
  // The paper's simplest case: "a signal consists of a signal name and a
  // word of memory whose value is polled and displayed."
  int32_t elephants = 8;
  SignalId id = scope_.AddSignal({.name = "elephants", .source = &elephants, .max = 40.0});
  scope_.SetPollingMode(50);
  ASSERT_TRUE(scope_.StartPolling());
  loop_.RunForMs(100);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 8.0);
  elephants = 16;
  loop_.RunForMs(100);
  EXPECT_DOUBLE_EQ(scope_.LatestValue(id).value_or(-1), 16.0);
}

TEST_F(ScopeTest, PollsAllWordTypes) {
  int32_t i = -3;
  bool b = true;
  int16_t s = 7;
  float f = 2.5f;
  double d = 9.75;
  SignalId ii = scope_.AddSignal({.name = "int", .source = &i, .min = -100});
  SignalId bi = scope_.AddSignal({.name = "bool", .source = &b});
  SignalId si = scope_.AddSignal({.name = "short", .source = &s});
  SignalId fi = scope_.AddSignal({.name = "float", .source = &f});
  SignalId di = scope_.AddSignal({.name = "double", .source = &d});
  scope_.TickOnce();
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(ii), -3.0);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(bi), 1.0);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(si), 7.0);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(fi), 2.5);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(di), 9.75);
  EXPECT_EQ(scope_.SpecFor(ii)->type(), SignalType::kInteger);
  EXPECT_EQ(scope_.SpecFor(bi)->type(), SignalType::kBoolean);
  EXPECT_EQ(scope_.SpecFor(si)->type(), SignalType::kShort);
  EXPECT_EQ(scope_.SpecFor(fi)->type(), SignalType::kFloat);
  EXPECT_EQ(scope_.SpecFor(di)->type(), SignalType::kDouble);
}

TEST_F(ScopeTest, FuncSignalModern) {
  int calls = 0;
  SignalId id = scope_.AddSignal(
      {.name = "fn", .source = MakeFunc([&calls]() { return static_cast<double>(++calls); })});
  scope_.TickOnce();
  scope_.TickOnce();
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(id), 2.0);
}

double LegacyGetCwnd(void* arg1, void* arg2) {
  int fd = *static_cast<int*>(arg1);
  (void)arg2;
  return fd * 2.0;
}

TEST_F(ScopeTest, FuncSignalLegacyTwoArgStyle) {
  // The paper's FUNC form: function invoked with arg1/arg2.
  int fd = 21;
  SignalId id =
      scope_.AddSignal({.name = "Cwnd", .source = MakeFunc(&LegacyGetCwnd, &fd, nullptr)});
  scope_.TickOnce();
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(id), 42.0);
}

TEST_F(ScopeTest, EventSignalAggregates) {
  auto agg = std::make_shared<EventAggregator>(AggregateKind::kMaximum);
  SignalId id = scope_.AddSignal({.name = "lat", .source = EventSource{agg}});
  agg->Push(5.0);
  agg->Push(11.0);
  scope_.TickOnce();
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(id), 11.0);
  // No events in the next interval: holds the previous value.
  scope_.TickOnce();
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(id), 11.0);
}

TEST_F(ScopeTest, FilterAppliedToDisplayNotRaw) {
  int32_t x = 0;
  SignalId id = scope_.AddSignal({.name = "f", .source = &x, .filter_alpha = 0.5});
  x = 10;
  scope_.TickOnce();
  x = 20;
  scope_.TickOnce();
  EXPECT_DOUBLE_EQ(*scope_.LatestRaw(id), 20.0);
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(id), 15.0);
}

TEST_F(ScopeTest, GuiEquivalentSetters) {
  int32_t x = 0;
  SignalId id = scope_.AddSignal({.name = "a", .source = &x});
  EXPECT_TRUE(scope_.SetHidden(id, true));
  EXPECT_TRUE(scope_.SpecFor(id)->hidden);
  EXPECT_TRUE(scope_.ToggleHidden(id));
  EXPECT_FALSE(scope_.SpecFor(id)->hidden);
  EXPECT_TRUE(scope_.SetRange(id, -10.0, 10.0));
  EXPECT_DOUBLE_EQ(scope_.SpecFor(id)->min, -10.0);
  EXPECT_FALSE(scope_.SetRange(id, 5.0, 5.0));
  EXPECT_TRUE(scope_.SetColor(id, Rgb{1, 2, 3}));
  EXPECT_EQ(*scope_.SpecFor(id)->color, (Rgb{1, 2, 3}));
  EXPECT_TRUE(scope_.SetLineMode(id, LineMode::kSteps));
  EXPECT_EQ(scope_.SpecFor(id)->line, LineMode::kSteps);
  EXPECT_TRUE(scope_.SetFilterAlpha(id, 0.3));
  EXPECT_FALSE(scope_.SetFilterAlpha(id, 1.5));
  // Unknown ids fail.
  EXPECT_FALSE(scope_.SetHidden(999, true));
  EXPECT_FALSE(scope_.SetColor(999, Rgb{}));
}

TEST_F(ScopeTest, NormalizeValueMapsMinMaxToRuler) {
  int32_t x = 0;
  SignalId id = scope_.AddSignal({.name = "a", .source = &x, .min = 0.0, .max = 40.0});
  EXPECT_DOUBLE_EQ(scope_.NormalizeValue(id, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(scope_.NormalizeValue(id, 40.0), 100.0);
  EXPECT_DOUBLE_EQ(scope_.NormalizeValue(id, 20.0), 50.0);
}

TEST_F(ScopeTest, ZoomAndBiasTransformRuler) {
  int32_t x = 0;
  SignalId id = scope_.AddSignal({.name = "a", .source = &x});
  scope_.SetZoom(2.0);
  scope_.SetBias(10.0);
  EXPECT_DOUBLE_EQ(scope_.NormalizeValue(id, 50.0), 50.0 * 2.0 + 10.0);
  scope_.SetZoom(-1.0);  // rejected
  EXPECT_DOUBLE_EQ(scope_.zoom(), 2.0);
}

TEST_F(ScopeTest, TraceAdvancesOnePixelPerTick) {
  int32_t x = 1;
  SignalId id = scope_.AddSignal({.name = "a", .source = &x});
  scope_.SetPollingMode(10);
  scope_.StartPolling();
  loop_.RunForMs(100);
  const Trace* trace = scope_.TraceFor(id);
  ASSERT_NE(trace, nullptr);
  EXPECT_GE(trace->size(), 9u);
  EXPECT_LE(trace->size(), 10u);
}

TEST_F(ScopeTest, LostTicksAdvanceTrace) {
  int32_t x = 5;
  SignalId id = scope_.AddSignal({.name = "a", .source = &x});
  scope_.TickOnce(0);
  x = 9;
  scope_.TickOnce(3);  // three missed polls
  const Trace* trace = scope_.TraceFor(id);
  EXPECT_EQ(trace->size(), 5u);  // 1 + (3 hold + 1 real)
  EXPECT_EQ(trace->synthesized_count(), 3);
  EXPECT_DOUBLE_EQ(trace->At(0).value, 9.0);
  EXPECT_DOUBLE_EQ(trace->At(1).value, 5.0);  // hold of previous value
  EXPECT_EQ(scope_.counters().lost_ticks, 3);
}

TEST_F(ScopeTest, StartStopPolling) {
  int32_t x = 0;
  scope_.AddSignal({.name = "a", .source = &x});
  EXPECT_FALSE(scope_.IsRunning());
  scope_.SetPollingMode(10);
  EXPECT_TRUE(scope_.StartPolling());
  EXPECT_TRUE(scope_.IsRunning());
  EXPECT_TRUE(scope_.StartPolling());  // idempotent
  loop_.RunForMs(50);
  int64_t ticks = scope_.counters().ticks;
  EXPECT_GT(ticks, 0);
  scope_.StopPolling();
  EXPECT_FALSE(scope_.IsRunning());
  loop_.RunForMs(50);
  EXPECT_EQ(scope_.counters().ticks, ticks);
}

TEST_F(ScopeTest, ChangePollingPeriodWhileRunning) {
  int32_t x = 0;
  scope_.AddSignal({.name = "a", .source = &x});
  scope_.SetPollingMode(10);
  scope_.StartPolling();
  loop_.RunForMs(50);
  EXPECT_TRUE(scope_.SetPollingPeriodMs(25));
  EXPECT_EQ(scope_.polling_period_ms(), 25);
  int64_t before = scope_.counters().ticks;
  loop_.RunForMs(100);
  int64_t delta = scope_.counters().ticks - before;
  EXPECT_GE(delta, 3);
  EXPECT_LE(delta, 5);
}

TEST_F(ScopeTest, InvalidModesRejected) {
  EXPECT_FALSE(scope_.SetPollingMode(0));
  EXPECT_FALSE(scope_.SetPollingMode(-5));
  EXPECT_FALSE(scope_.SetPollingPeriodMs(0));
  EXPECT_FALSE(scope_.SetPlaybackMode("/nonexistent/file", 10));
}

TEST_F(ScopeTest, HiddenSignalsStillSampled) {
  int32_t x = 3;
  SignalId id = scope_.AddSignal({.name = "a", .source = &x, .hidden = true});
  scope_.TickOnce();
  EXPECT_DOUBLE_EQ(*scope_.LatestValue(id), 3.0);  // Value button still live
}

TEST_F(ScopeTest, CountersTrackSamples) {
  int32_t x = 0;
  scope_.AddSignal({.name = "a", .source = &x});
  scope_.AddSignal({.name = "b", .source = &x});
  scope_.TickOnce();
  scope_.TickOnce();
  EXPECT_EQ(scope_.counters().ticks, 2);
  EXPECT_EQ(scope_.counters().samples, 4);
}

TEST_F(ScopeTest, PollStatsAvailableWhileRunning) {
  int32_t x = 0;
  scope_.AddSignal({.name = "a", .source = &x});
  EXPECT_EQ(scope_.poll_stats(), nullptr);
  scope_.SetPollingMode(10);
  scope_.StartPolling();
  loop_.RunForMs(50);
  const TimerStats* stats = scope_.poll_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->fired, 4);
}

TEST_F(ScopeTest, DelaySetterValidation) {
  scope_.SetDelayMs(100);
  EXPECT_EQ(scope_.delay_ms(), 100);
  scope_.SetDelayMs(-1);
  EXPECT_EQ(scope_.delay_ms(), 100);
}

TEST_F(ScopeTest, DomainSwitch) {
  EXPECT_EQ(scope_.domain(), DisplayDomain::kTime);
  scope_.SetDomain(DisplayDomain::kFrequency);
  EXPECT_EQ(scope_.domain(), DisplayDomain::kFrequency);
}

TEST_F(ScopeTest, DynamicAddRemoveWhileRunning) {
  // "dynamic addition and removal of scopes and signals" (Section 1).
  int32_t x = 1;
  scope_.SetPollingMode(10);
  scope_.StartPolling();
  loop_.RunForMs(30);
  SignalId id = scope_.AddSignal({.name = "late", .source = &x});
  loop_.RunForMs(30);
  EXPECT_TRUE(scope_.LatestValue(id).has_value());
  EXPECT_TRUE(scope_.RemoveSignal(id));
  loop_.RunForMs(30);  // must not crash sampling a removed signal
  EXPECT_EQ(scope_.FindSignal("late"), 0);
}

}  // namespace
}  // namespace gscope
