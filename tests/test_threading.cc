// The Section 4.3 threading disciplines, end to end.
//
// "With multi-threaded applications, typically Gscope is run in its own
// thread while the application that is generating signals is run in a
// separate thread ...  However, it is the application thread's
// responsibility to acquire a global GTK lock if it needs to make gscope
// API calls."  Our analogue of the GTK-lock discipline is
// MainLoop::Invoke(): the application thread posts closures that run on the
// loop thread.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/scope.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace {

TEST(ThreadingTest, ScopeInItsOwnThread) {
  // The scope (and its loop) run in a dedicated thread; the application
  // thread updates a plain variable that the scope polls.
  MainLoop loop;  // real clock
  Scope scope(&loop, {.name = "threaded", .width = 64});
  // The polled word of memory must be written atomically from the app
  // thread (the paper's signals are single words for exactly this reason).
  static int32_t value = 0;
  SignalId id = scope.AddSignal({.name = "v", .source = &value});
  scope.SetPollingMode(5);
  scope.StartPolling();

  std::thread gui([&loop]() { loop.Run(); });

  // Application thread (this one): generate the signal.
  for (int i = 1; i <= 20; ++i) {
    value = i;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // API calls from the app thread go through Invoke (the "GTK lock").
  std::atomic<bool> stopped{false};
  loop.Invoke([&]() {
    scope.StopPolling();
    stopped.store(true);
    loop.Quit();
  });
  gui.join();
  EXPECT_TRUE(stopped.load());
  EXPECT_FALSE(scope.IsRunning());
  EXPECT_GT(scope.counters().ticks, 5);
  EXPECT_GT(scope.LatestValue(id).value_or(0), 0.0);
}

TEST(ThreadingTest, InvokeAddsSignalFromAppThread) {
  MainLoop loop;
  Scope scope(&loop, {.name = "threaded", .width = 64});
  scope.SetPollingMode(5);
  scope.StartPolling();

  std::thread gui([&loop]() { loop.Run(); });

  static int32_t late_value = 77;
  std::atomic<SignalId> added{0};
  loop.Invoke([&]() {
    added.store(scope.AddSignal({.name = "late", .source = &late_value}));
  });
  // Wait for the loop thread to process the Invoke and a few polls.
  for (int i = 0; i < 200 && added.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(added.load(), 0);
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (scope.LatestValue(added.load()).has_value()) {
      break;
    }
  }
  loop.Invoke([&loop]() { loop.Quit(); });
  gui.join();
  EXPECT_DOUBLE_EQ(scope.LatestValue(added.load()).value_or(-1), 77.0);
}

TEST(ThreadingTest, ProducerThreadsPushBufferedConcurrently) {
  // PushBuffered is documented thread-safe: many producers, one scope.
  MainLoop loop;
  Scope scope(&loop, {.name = "producers", .width = 128});
  SignalId a = scope.AddSignal({.name = "a", .source = BufferSource{}});
  SignalId b = scope.AddSignal({.name = "b", .source = BufferSource{}});
  scope.SetPollingMode(2);
  scope.StartPolling();

  std::thread gui([&loop]() { loop.Run(); });
  // Stamp slightly in the future: with delay 0, a producer preempted for a
  // few ms between reading NowMs and routing would otherwise have its
  // sample judged late and dropped - a scheduling artifact, not the
  // thread-safety property under test.
  auto produce = [&scope](const char* name) {
    for (int i = 1; i <= 500; ++i) {
      scope.PushBuffered(name, scope.NowMs() + 20, static_cast<double>(i));
    }
  };
  std::thread p1(produce, "a");
  std::thread p2(produce, "b");
  p1.join();
  p2.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  loop.Invoke([&loop]() { loop.Quit(); });
  gui.join();

  EXPECT_DOUBLE_EQ(scope.LatestValue(a).value_or(-1), 500.0);
  EXPECT_DOUBLE_EQ(scope.LatestValue(b).value_or(-1), 500.0);
  EXPECT_EQ(scope.counters().buffered_routed, 1000);
}

TEST(ThreadingTest, EventAggregatorSharedAcrossThreads) {
  // Event-driven signals (Section 4.2) with a producer thread feeding the
  // aggregator while the scope polls in its own thread.
  MainLoop loop;
  Scope scope(&loop, {.name = "agg", .width = 64});
  auto agg = std::make_shared<EventAggregator>(AggregateKind::kSum);
  SignalId id = scope.AddSignal({.name = "bytes", .source = EventSource{agg}});
  scope.SetPollingMode(2);
  scope.StartPolling();
  std::thread gui([&loop]() { loop.Run(); });

  constexpr int kEvents = 10'000;
  std::thread producer([&agg]() {
    for (int i = 0; i < kEvents; ++i) {
      agg->Push(1.0);
    }
  });
  producer.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  loop.Invoke([&loop]() { loop.Quit(); });
  gui.join();

  // Every event lands in exactly one polling interval; the trace total
  // equals the event count (no loss, no double count).  Lost polling ticks
  // (common on a loaded host) fill the missed columns with synthesized hold
  // points that repeat the drained sum — skip those, they are display
  // artifacts, not re-counted events (Section 4.5).
  const Trace* trace = scope.TraceFor(id);
  double total = 0.0;
  for (const TracePoint& p : trace->Snapshot()) {
    if (p.valid && !p.synthesized) {
      total += p.value;
    }
  }
  // The last interval may still be undrained at Quit; allow it to be held.
  EXPECT_GE(total, kEvents * 0.99);
  EXPECT_LE(total, kEvents * 1.01 + agg->pending_events());
}

}  // namespace
}  // namespace gscope
