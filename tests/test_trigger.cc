#include "core/trigger.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace gscope {
namespace {

std::vector<double> Sine(size_t n, double period_samples, double amplitude = 50.0,
                         double offset = 50.0, double phase = 0.0) {
  std::vector<double> samples(n);
  for (size_t i = 0; i < n; ++i) {
    samples[i] =
        offset + amplitude * std::sin(2.0 * std::numbers::pi * i / period_samples + phase);
  }
  return samples;
}

TEST(TriggerTest, RisingEdgeFiresOnCrossing) {
  Trigger trigger({.edge = TriggerEdge::kRising, .level = 5.0});
  EXPECT_FALSE(trigger.Feed(0.0));
  EXPECT_FALSE(trigger.Feed(4.0));
  EXPECT_TRUE(trigger.Feed(6.0));
  EXPECT_EQ(trigger.fires(), 1);
}

TEST(TriggerTest, FallingEdgeFiresOnCrossing) {
  Trigger trigger({.edge = TriggerEdge::kFalling, .level = 5.0});
  EXPECT_FALSE(trigger.Feed(10.0));
  EXPECT_TRUE(trigger.Feed(4.0));
}

TEST(TriggerTest, FirstSampleNeverFires) {
  Trigger trigger({.edge = TriggerEdge::kRising, .level = 5.0});
  // Even though 10 > level, there is no previous sample to cross from.
  EXPECT_FALSE(trigger.Feed(10.0));
}

TEST(TriggerTest, ExactLevelCounts) {
  Trigger trigger({.edge = TriggerEdge::kRising, .level = 5.0});
  trigger.Feed(0.0);
  EXPECT_TRUE(trigger.Feed(5.0));  // reaching the level counts as crossing
}

TEST(TriggerTest, HysteresisSuppressesChatter) {
  // Noise wiggling around the level must fire once, not on every wiggle.
  Trigger trigger({.edge = TriggerEdge::kRising, .level = 10.0, .hysteresis = 2.0});
  EXPECT_FALSE(trigger.Feed(9.5));
  EXPECT_TRUE(trigger.Feed(10.2));   // fire
  EXPECT_FALSE(trigger.Feed(9.8));   // dips below level but inside hysteresis
  EXPECT_FALSE(trigger.Feed(10.3));  // re-cross without re-arming: no fire
  EXPECT_FALSE(trigger.Feed(7.0));   // retreats past level - hysteresis: re-arms
  EXPECT_TRUE(trigger.Feed(10.5));   // fires again
  EXPECT_EQ(trigger.fires(), 2);
}

TEST(TriggerTest, HoldoffEnforcesSpacing) {
  Trigger trigger({.edge = TriggerEdge::kRising, .level = 5.0, .hysteresis = 0.0,
                   .holdoff = 5});
  std::vector<double> square = {0, 10, 0, 10, 0, 10, 0, 10, 0, 10, 0, 10};
  int fires = 0;
  for (double s : square) {
    if (trigger.Feed(s)) {
      ++fires;
    }
  }
  // Without holdoff this square wave would fire 6 times; holdoff 5 allows
  // roughly every third crossing.
  EXPECT_LT(fires, 4);
  EXPECT_GE(fires, 1);
}

TEST(TriggerTest, SingleModeFiresOnce) {
  Trigger trigger({.edge = TriggerEdge::kRising, .level = 5.0,
                   .mode = TriggerMode::kSingle});
  trigger.Feed(0.0);
  EXPECT_TRUE(trigger.Feed(10.0));
  trigger.Feed(0.0);
  EXPECT_FALSE(trigger.Feed(10.0));  // holds after the single capture
  trigger.Rearm();
  trigger.Feed(0.0);
  EXPECT_TRUE(trigger.Feed(10.0));
}

TEST(TriggerTest, PeriodicWaveFiresOncePerCycle) {
  auto wave = Sine(400, 40.0);
  Trigger trigger({.edge = TriggerEdge::kRising, .level = 50.0, .hysteresis = 5.0});
  for (double s : wave) {
    trigger.Feed(s);
  }
  // 400 samples at period 40: 10 cycles -> 10 rising crossings (first cycle
  // may or may not fire depending on phase; allow 9-11).
  EXPECT_GE(trigger.fires(), 9);
  EXPECT_LE(trigger.fires(), 11);
}

TEST(SweepTest, SweepsAlignToTriggerPoints) {
  // The future-work goal: a repeating waveform becomes stable - every sweep
  // starts at the same phase.
  auto wave = Sine(500, 50.0);
  TriggerConfig config{.edge = TriggerEdge::kRising, .level = 50.0, .hysteresis = 5.0,
                       .mode = TriggerMode::kNormal};
  auto sweeps = ExtractSweeps(wave, 30, config);
  ASSERT_GE(sweeps.size(), 3u);
  for (size_t i = 1; i < sweeps.size(); ++i) {
    EXPECT_TRUE(sweeps[i].triggered);
    ASSERT_EQ(sweeps[i].samples.size(), 30u);
    // Same phase at the sweep start: values match across sweeps.
    for (size_t k = 0; k < 30; ++k) {
      EXPECT_NEAR(sweeps[i].samples[k], sweeps[1].samples[k], 1.0) << "sweep " << i;
    }
    // Consecutive triggered sweeps start one period apart (50 samples) or a
    // multiple (sweep width 30 < period, so capture gaps skip crossings).
    size_t delta = sweeps[i].start_index - sweeps[i - 1].start_index;
    EXPECT_EQ(delta % 50, 0u);
  }
}

TEST(SweepTest, NormalModeEmitsNothingWithoutTrigger) {
  std::vector<double> flat(200, 10.0);
  TriggerConfig config{.edge = TriggerEdge::kRising, .level = 50.0,
                       .mode = TriggerMode::kNormal};
  EXPECT_TRUE(ExtractSweeps(flat, 20, config).empty());
  EXPECT_FALSE(LatestSweep(flat, 20, config).has_value());
}

TEST(SweepTest, AutoModeFreeRunsWithoutTrigger) {
  std::vector<double> flat(100, 10.0);
  TriggerConfig config{.edge = TriggerEdge::kRising, .level = 50.0,
                       .mode = TriggerMode::kAuto};
  auto sweeps = ExtractSweeps(flat, 25, config);
  ASSERT_EQ(sweeps.size(), 4u);  // 100 / 25 free-run sweeps
  for (const Sweep& sweep : sweeps) {
    EXPECT_FALSE(sweep.triggered);
  }
}

TEST(SweepTest, SingleModeStopsAfterFirstCapture) {
  auto wave = Sine(500, 50.0);
  TriggerConfig config{.edge = TriggerEdge::kRising, .level = 50.0, .hysteresis = 5.0,
                       .mode = TriggerMode::kSingle};
  auto sweeps = ExtractSweeps(wave, 30, config);
  ASSERT_EQ(sweeps.size(), 1u);
  EXPECT_TRUE(sweeps[0].triggered);
}

TEST(SweepTest, LatestSweepPrefersTriggered) {
  auto wave = Sine(300, 50.0);
  TriggerConfig config{.edge = TriggerEdge::kRising, .level = 50.0, .hysteresis = 5.0,
                       .mode = TriggerMode::kAuto};
  auto latest = LatestSweep(wave, 30, config);
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(latest->triggered);
}

TEST(SweepTest, DegenerateInputs) {
  EXPECT_TRUE(ExtractSweeps({}, 10, {}).empty());
  EXPECT_TRUE(ExtractSweeps({1.0, 2.0}, 0, {}).empty());
}

// Property: with a clean periodic wave, sweep starts are phase-consistent
// for any period/width combination where width <= period.
class SweepPhaseProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SweepPhaseProperty, StartsArePeriodAligned) {
  auto [period, width] = GetParam();
  if (width > period) {
    return;
  }
  // Phase offset keeps level crossings away from exact sample boundaries,
  // where sin(2*pi*k) evaluates to +/-1e-16 and the crossing sample becomes
  // numerically unstable.
  auto wave = Sine(static_cast<size_t>(period) * 12, period, 50.0, 50.0, /*phase=*/0.3);
  TriggerConfig config{.edge = TriggerEdge::kRising, .level = 50.0,
                       .hysteresis = 5.0, .mode = TriggerMode::kNormal};
  auto sweeps = ExtractSweeps(wave, static_cast<size_t>(width), config);
  ASSERT_GE(sweeps.size(), 2u);
  for (size_t i = 1; i < sweeps.size(); ++i) {
    EXPECT_EQ((sweeps[i].start_index - sweeps[0].start_index) % static_cast<size_t>(period),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SweepPhaseProperty,
                         ::testing::Combine(::testing::Values(20, 40, 64, 100),
                                            ::testing::Values(10, 20, 50)));

}  // namespace
}  // namespace gscope
