#include "netsim/queue.h"

#include <gtest/gtest.h>

namespace gscope {
namespace {

Packet DataPacket(bool ecn_capable = false) {
  Packet p;
  p.payload = 1460;
  p.ecn_capable = ecn_capable;
  return p;
}

TEST(QueueTest, FifoOrder) {
  RouterQueue queue({.limit_packets = 10});
  for (int i = 0; i < 3; ++i) {
    Packet p = DataPacket();
    p.seq = i;
    EXPECT_TRUE(queue.Enqueue(p));
  }
  for (int i = 0; i < 3; ++i) {
    auto p = queue.Dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(queue.Dequeue().has_value());
}

TEST(QueueTest, DroptailAtLimit) {
  RouterQueue queue({.limit_packets = 5});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Enqueue(DataPacket()));
  }
  EXPECT_FALSE(queue.Enqueue(DataPacket()));
  EXPECT_EQ(queue.stats().dropped_tail, 1);
  EXPECT_EQ(queue.depth(), 5);
  EXPECT_EQ(queue.stats().max_depth, 5);
}

TEST(QueueTest, RedMarksEcnCapablePackets) {
  QueueConfig config;
  config.limit_packets = 100;
  config.red.enabled = true;
  config.red.min_threshold = 2.0;
  config.red.max_threshold = 6.0;
  config.red.max_probability = 1.0;  // deterministic marking once above min
  config.red.weight = 1.0;           // avg == instantaneous
  RouterQueue queue(config);

  int marked = 0;
  for (int i = 0; i < 20; ++i) {
    Packet p = DataPacket(/*ecn_capable=*/true);
    if (queue.Enqueue(p)) {
      // Peek via dequeue later; count marks from stats instead.
    }
  }
  marked = static_cast<int>(queue.stats().marked_ecn);
  EXPECT_GT(marked, 0);
  EXPECT_EQ(queue.stats().dropped_red, 0);  // capable packets marked, not dropped
}

TEST(QueueTest, RedDropsNonEcnPackets) {
  QueueConfig config;
  config.limit_packets = 100;
  config.red.enabled = true;
  config.red.min_threshold = 2.0;
  config.red.max_threshold = 6.0;
  config.red.max_probability = 1.0;
  config.red.weight = 1.0;
  RouterQueue queue(config);

  for (int i = 0; i < 20; ++i) {
    queue.Enqueue(DataPacket(/*ecn_capable=*/false));
  }
  EXPECT_GT(queue.stats().dropped_red, 0);
  EXPECT_EQ(queue.stats().marked_ecn, 0);
}

TEST(QueueTest, MarkedPacketCarriesCeBit) {
  QueueConfig config;
  config.limit_packets = 100;
  config.red.enabled = true;
  config.red.min_threshold = 0.5;
  config.red.max_threshold = 1.0;  // everything above one packet marks
  config.red.max_probability = 1.0;
  config.red.weight = 1.0;
  RouterQueue queue(config);

  queue.Enqueue(DataPacket(true));
  queue.Enqueue(DataPacket(true));
  queue.Enqueue(DataPacket(true));
  bool saw_ce = false;
  while (auto p = queue.Dequeue()) {
    if (p->ecn_ce) {
      saw_ce = true;
    }
  }
  EXPECT_TRUE(saw_ce);
}

TEST(QueueTest, BelowMinThresholdNeverMarks) {
  QueueConfig config;
  config.limit_packets = 100;
  config.red.enabled = true;
  config.red.min_threshold = 50.0;
  config.red.max_threshold = 80.0;
  config.red.weight = 1.0;
  RouterQueue queue(config);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(queue.Enqueue(DataPacket(true)));
  }
  EXPECT_EQ(queue.stats().marked_ecn, 0);
  EXPECT_EQ(queue.stats().dropped_red, 0);
}

TEST(QueueTest, DeterministicWithSameSeed) {
  QueueConfig config;
  config.limit_packets = 30;
  config.red.enabled = true;
  config.red.min_threshold = 3.0;
  config.red.max_threshold = 10.0;
  config.red.max_probability = 0.3;
  RouterQueue a(config, 42);
  RouterQueue b(config, 42);
  for (int i = 0; i < 100; ++i) {
    Packet p = DataPacket(false);
    EXPECT_EQ(a.Enqueue(p), b.Enqueue(p));
    if (i % 3 == 0) {
      a.Dequeue();
      b.Dequeue();
    }
  }
  EXPECT_EQ(a.stats().dropped_red, b.stats().dropped_red);
}

TEST(QueueTest, AverageTracksDepthWithUnitWeight) {
  QueueConfig config;
  config.limit_packets = 10;
  config.red.weight = 1.0;
  RouterQueue queue(config);
  queue.Enqueue(DataPacket());
  queue.Enqueue(DataPacket());
  queue.Enqueue(DataPacket());
  // avg is computed before each insertion: after three, avg == 2.
  EXPECT_DOUBLE_EQ(queue.average_depth(), 2.0);
}

TEST(QueueTest, StatsCountEnqueueDequeue) {
  RouterQueue queue({.limit_packets = 10});
  queue.Enqueue(DataPacket());
  queue.Enqueue(DataPacket());
  queue.Dequeue();
  EXPECT_EQ(queue.stats().enqueued, 2);
  EXPECT_EQ(queue.stats().dequeued, 1);
  EXPECT_EQ(queue.depth(), 1);
}

}  // namespace
}  // namespace gscope
