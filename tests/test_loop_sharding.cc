// Sharded accept tests (StreamServerOptions::loops > 1): connections spread
// across per-core event loops, route-table epochs propagate across loops,
// graceful shutdown drains every shard on its own loop, and the timer
// accounting folds per loop.  The hand-off acceptor (reuse_port = false) is
// deterministic - least-loaded shard wins - so those tests assert exact
// spreads; the SO_REUSEPORT path delegates the spread to the kernel and is
// only asserted functional.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scope.h"
#include "net/control_client.h"
#include "net/socket.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/event_loop.h"

namespace gscope {
namespace {

class LoopShardingTest : public ::testing::Test {
 protected:
  LoopShardingTest() : scope_(&loop_, {.name = "display", .width = 64}) {
    scope_.SetConcurrent(true);  // registered with a loops > 1 server
    scope_.SetPollingMode(5);
  }

  bool RunUntil(const std::function<bool()>& pred, int max_ms = 2000) {
    for (int i = 0; i < max_ms; ++i) {
      if (pred()) {
        return true;
      }
      loop_.RunForMs(1);
    }
    return pred();
  }

  static size_t TotalShardClients(const StreamServer& server) {
    size_t total = 0;
    for (size_t i = 0; i < server.loop_count(); ++i) {
      total += server.shard_client_count(i);
    }
    return total;
  }

  MainLoop loop_;  // real clock: worker loops + sockets need real readiness
  Scope scope_;
};

TEST_F(LoopShardingTest, HandOffBalancesClientsAcrossLoops) {
  StreamServerOptions opt;
  opt.loops = 4;
  opt.reuse_port = false;  // single acceptor handing off to least-loaded
  StreamServer server(&loop_, &scope_, opt);
  ASSERT_TRUE(server.Listen(0));
  EXPECT_EQ(server.loop_count(), 4u);
  EXPECT_FALSE(server.reuse_port_active());

  std::vector<std::unique_ptr<StreamClient>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<StreamClient>(&loop_));
    ASSERT_TRUE(clients.back()->Connect(server.port()));
  }
  ASSERT_TRUE(RunUntil([&]() {
    for (const auto& c : clients) {
      if (!c->connected()) {
        return false;
      }
    }
    return TotalShardClients(server) == 8;
  }));
  // The least-loaded hand-off is deterministic under sequential accepts:
  // 8 clients over 4 loops is exactly 2 per shard.
  for (size_t i = 0; i < server.loop_count(); ++i) {
    EXPECT_EQ(server.shard_client_count(i), 2u) << "shard " << i;
  }
  EXPECT_EQ(server.client_count(), 8u);

  // Every client's ingest works, wherever it landed.
  ASSERT_TRUE(RunUntil([&]() {
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->Send(scope_.NowMs(), static_cast<double>(i), "shard_sig");
    }
    loop_.RunForMs(2);
    return server.stats().tuples.load() >= 8;
  }));
  EXPECT_EQ(server.stats().parse_errors.load(), 0);
}

TEST_F(LoopShardingTest, ReusePortListenersEngageWhenSupported) {
  if (!Socket::ReusePortSupported()) {
    GTEST_SKIP() << "platform lacks SO_REUSEPORT";
  }
  StreamServerOptions opt;
  opt.loops = 4;
  StreamServer server(&loop_, &scope_, opt);
  ASSERT_TRUE(server.Listen(0));
  EXPECT_TRUE(server.reuse_port_active());

  // The kernel owns the spread: assert every connection lands somewhere and
  // works, not where.
  std::vector<std::unique_ptr<StreamClient>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<StreamClient>(&loop_));
    ASSERT_TRUE(clients.back()->Connect(server.port()));
  }
  ASSERT_TRUE(RunUntil([&]() { return TotalShardClients(server) == 8; }));
  EXPECT_EQ(server.client_count(), 8u);
  ASSERT_TRUE(RunUntil([&]() {
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->Send(scope_.NowMs(), static_cast<double>(i), "rp_sig");
    }
    loop_.RunForMs(2);
    return server.stats().tuples.load() >= 8;
  }));
  EXPECT_EQ(server.stats().parse_errors.load(), 0);
}

TEST_F(LoopShardingTest, RouteEpochsPropagateAcrossLoops) {
  StreamServerOptions opt;
  opt.loops = 4;
  opt.reuse_port = false;  // deterministic spread: sequential connects land
                           // on distinct shards
  StreamServer server(&loop_, &scope_, opt);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  // Viewer first, producer second: with every shard empty the hand-off puts
  // them on different loops.
  ControlClient viewer(&loop_);
  int64_t viewer_tuples = 0;
  std::vector<std::string> names;
  viewer.SetTupleCallback([&](const TupleView& t) {
    viewer_tuples += 1;
    names.emplace_back(t.name);
  });
  ASSERT_TRUE(viewer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return viewer.connected(); }));

  StreamClient producer(&loop_);
  ASSERT_TRUE(producer.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return producer.connected(); }));
  ASSERT_TRUE(RunUntil([&]() { return TotalShardClients(server) == 2; }));

  // The SUB lands on the viewer's loop and rebuilds the shared route table;
  // the producer's loop must observe the new epoch and start routing (and
  // echoing) the matched signal back across the shard boundary.
  viewer.Subscribe("cross_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 1; }));

  ASSERT_TRUE(RunUntil([&]() {
    producer.Send(scope_.NowMs(), 42.0, "cross_loop_sig");
    loop_.RunForMs(2);
    return viewer_tuples >= 1;
  }));
  EXPECT_EQ(names.front(), "cross_loop_sig");

  // UNSUB propagates the same way: after the rebuild settles, fresh tuples
  // stop arriving.
  viewer.Unsubscribe("cross_*");
  ASSERT_TRUE(RunUntil([&]() { return viewer.stats().replies_ok >= 2; }));
  // Drain anything routed under the old epoch until a full quiet window
  // passes: a fixed wait flakes under sanitizer slowdown, where pre-UNSUB
  // tuples can still be in the delayed echo path after 50 ms.
  int64_t seen = viewer_tuples;
  for (int spins = 0; spins < 40; ++spins) {
    loop_.RunForMs(50);
    if (viewer_tuples == seen) {
      break;
    }
    seen = viewer_tuples;
  }
  for (int i = 0; i < 20; ++i) {
    producer.Send(scope_.NowMs(), 43.0, "cross_loop_sig");
    loop_.RunForMs(2);
  }
  loop_.RunForMs(50);
  EXPECT_EQ(viewer_tuples, seen);
}

TEST_F(LoopShardingTest, GracefulCloseDrainsEveryLoopAndRelistens) {
  StreamServerOptions opt;
  opt.loops = 4;
  opt.reuse_port = false;
  StreamServer server(&loop_, &scope_, opt);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  // Sessions on several shards, each with live subscription state.
  std::vector<std::unique_ptr<ControlClient>> viewers;
  for (int i = 0; i < 4; ++i) {
    viewers.push_back(std::make_unique<ControlClient>(&loop_));
    ASSERT_TRUE(viewers.back()->Connect(server.port()));
  }
  ASSERT_TRUE(RunUntil([&]() {
    for (const auto& v : viewers) {
      if (!v->connected()) {
        return false;
      }
    }
    return true;
  }));
  for (auto& v : viewers) {
    v->Subscribe("*");
  }
  ASSERT_TRUE(RunUntil([&]() {
    for (const auto& v : viewers) {
      if (v->stats().replies_ok < 1) {
        return false;
      }
    }
    return true;
  }));
  EXPECT_EQ(server.control_session_count(), 4u);

  // Close() drains every shard on its own loop: sessions unregistered,
  // clients destroyed where they live, worker threads joined.
  server.Close();
  EXPECT_EQ(server.client_count(), 0u);
  EXPECT_EQ(server.control_session_count(), 0u);
  for (size_t i = 0; i < server.loop_count(); ++i) {
    EXPECT_EQ(server.shard_client_count(i), 0u);
  }
  // The peers observe the teardown.
  ASSERT_TRUE(RunUntil([&]() {
    for (const auto& v : viewers) {
      if (v->connected()) {
        return false;
      }
    }
    return true;
  }));

  // The server is reusable: a fresh Listen accepts again.
  ASSERT_TRUE(server.Listen(0));
  StreamClient late(&loop_);
  ASSERT_TRUE(late.Connect(server.port()));
  ASSERT_TRUE(RunUntil([&]() { return late.connected(); }));
  ASSERT_TRUE(RunUntil([&]() {
    late.Send(scope_.NowMs(), 1.0, "after_close");
    loop_.RunForMs(2);
    return server.stats().tuples.load() >= 1;
  }));
}

TEST_F(LoopShardingTest, GatherTimerStatsFoldsEveryLoop) {
  StreamServerOptions opt;
  opt.loops = 4;
  opt.reuse_port = false;
  opt.idle_timeout_ms = 1000;  // arms the per-shard sweep timers
  StreamServer server(&loop_, &scope_, opt);
  ASSERT_TRUE(server.Listen(0));
  scope_.StartPolling();

  // Let the primary loop (scope polling) and the worker loops (sweeps) fire
  // some timers, then fold: one TimerStats per loop, in loop order.
  RunUntil([&]() { return false; }, 60);
  TimerStatsAggregate agg = server.GatherTimerStats();
  EXPECT_EQ(agg.loops_folded, 4u);
  EXPECT_GT(agg.total.fired, 0);
}

}  // namespace
}  // namespace gscope
