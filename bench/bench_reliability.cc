// Reliability sweep: fault schedule x overflow policy through the stress
// rig, plus recovery-time vs reconnect backoff cap.
//
// Part 1 drives the deterministic multi-producer rig (tests/stress_harness)
// under scripted syscall faults - short reads, partial writes, EINTR storms,
// mid-frame connection kills - and reports what the self-healing transport
// delivered: fraction of attempted tuples parsed by the server, drops and
// evictions, reconnects, torn frames (parse errors), and delivered
// throughput.  Producers use automatic reconnect; a flapping viewer with
// liveness pings rides along so session resumption is part of every run.
//
// Part 2 measures the cost of the backoff cap directly: a client connected
// to a server that goes away and comes back; recovery time is the wall time
// from re-listen until the client is re-established.  Low caps retry hot
// and recover fast; high caps are gentle on a dead peer but pay up to one
// full cap of idle delay when it returns.
//
// `--json PATH` writes the sweep as JSON (BENCH_reliability.json in the
// repo root is generated this way).
//
// Usage: bench_reliability [tuples_per_producer] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/scope.h"
#include "net/fault_injector.h"
#include "net/stream_client.h"
#include "net/stream_server.h"
#include "runtime/clock.h"
#include "runtime/event_loop.h"
#include "stress_harness.h"

namespace {

using gscope::FaultInjector;
using gscope::FaultOp;
using gscope::FaultRule;
using gscope::OverflowPolicy;

struct FaultCase {
  const char* name;
  std::vector<FaultRule> rules;
  bool restart;  // flap the server mid-run (kills need a rebirth to matter)
};

std::vector<FaultCase> FaultCases() {
  std::vector<FaultCase> cases;
  cases.push_back({"none", {}, false});
  cases.push_back({"short-reads", {FaultInjector::ShortReads(2)}, false});
  cases.push_back({"partial-writes", {FaultInjector::PartialWrites(3)}, false});
  {
    FaultRule r = FaultInjector::ErrnoStorm(FaultOp::kRead, EINTR, -1, 0);
    r.probability = 0.2;
    FaultRule w = FaultInjector::ErrnoStorm(FaultOp::kWrite, EINTR, -1, 0);
    w.probability = 0.2;
    cases.push_back({"eintr-storm", {r, w}, false});
  }
  cases.push_back(
      {"kill-restart", {FaultInjector::KillConnection(FaultOp::kWrite, 50)}, true});
  return cases;
}

const char* PolicyName(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kDropNewest:
      return "drop-newest";
    case OverflowPolicy::kDropOldest:
      return "drop-oldest";
    case OverflowPolicy::kBlockWithDeadline:
      return "block-2ms";
  }
  return "?";
}

struct MatrixRow {
  std::string fault;
  std::string policy;
  int64_t attempted = 0;
  int64_t delivered = 0;
  int64_t dropped = 0;
  int64_t evicted = 0;
  int64_t reconnects = 0;       // producer re-establishments
  int64_t viewer_resumes = 0;   // SUB replays on viewer establishment
  int64_t parse_errors = 0;
  int64_t faults_injected = 0;
  double seconds = 0;
  bool invariants_ok = false;

  double delivered_fraction() const {
    return attempted > 0 ? static_cast<double>(delivered) / static_cast<double>(attempted)
                         : 0;
  }
  double delivered_per_sec() const {
    return seconds > 0 ? static_cast<double>(delivered) / seconds : 0;
  }
};

MatrixRow RunMatrixCell(const FaultCase& fc, OverflowPolicy policy,
                        int tuples_per_producer) {
  gscope::stress::Options opt;
  opt.producers = 2;
  opt.tuples_per_producer = tuples_per_producer;
  opt.burst = 32;
  opt.payload_pad = 8;
  opt.policy = policy;
  opt.block_deadline_ms = 2;
  opt.seed = 42;
  opt.faults = fc.rules;
  opt.fault_seed = 7;
  opt.auto_reconnect = true;
  opt.viewers = 1;
  opt.viewer_ping_interval_ms = 5;
  using Kind = gscope::stress::ScheduleStep::Kind;
  opt.schedule = fc.restart
                     ? std::vector<gscope::stress::ScheduleStep>{{Kind::kDrain, 10},
                                                                 {Kind::kRestart, 8},
                                                                 {Kind::kDrain, 10}}
                     : std::vector<gscope::stress::ScheduleStep>{{Kind::kDrain, 10},
                                                                 {Kind::kPause, 5}};

  gscope::SteadyClock clock;
  gscope::Nanos start = clock.NowNs();
  gscope::stress::Result result = gscope::stress::RunStress(opt);

  MatrixRow row;
  row.fault = fc.name;
  row.policy = PolicyName(policy);
  row.seconds = gscope::NanosToSeconds(clock.NowNs() - start);
  if (!result.ran) {
    std::fprintf(stderr, "rig failed for %s/%s: %s\n", fc.name, row.policy.c_str(),
                 result.setup_error.c_str());
    return row;
  }
  row.attempted = result.TotalAttempted();
  row.delivered = result.TotalDelivered();
  for (const auto& p : result.producers) {
    row.dropped += p.dropped;
    row.evicted += p.evicted;
    row.reconnects += p.reconnects;
  }
  for (const auto& v : result.viewers) {
    row.viewer_resumes += v.resumed_commands;
  }
  row.parse_errors = result.server_parse_errors;
  row.faults_injected = result.fault_stats.faults_injected;
  // Torn frames are tolerated only for mid-frame wire kills (at most the
  // in-flight line per kill); every other invariant must hold outright.
  bool torn_ok = result.fault_stats.kills > 0
                     ? result.server_parse_errors <= result.fault_stats.kills
                     : result.CheckNoTornFrames().empty();
  row.invariants_ok = torn_ok && result.CheckSendAccounting().empty() &&
                      result.CheckSequencesMonotone().empty();
  return row;
}

struct RecoveryRow {
  int64_t max_backoff_ms = 0;
  double mean_ms = 0;
  double max_ms = 0;
  int trials = 0;
};

// One outage/rebirth cycle: returns the wall ms from re-listen until the
// client re-establishes, or a negative value on rig failure.
double MeasureRecoveryOnce(gscope::MainLoop& loop, gscope::StreamServer*& server,
                          gscope::Scope& scope, gscope::StreamClient& client,
                          uint16_t port, int outage_ms) {
  gscope::SteadyClock clock;
  server->Close();
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(2000);
  while (client.connected() && clock.NowNs() < deadline) {
    loop.RunForMs(1);
  }
  if (client.connected()) {
    return -1;
  }
  loop.RunForMs(outage_ms);  // the client retries against a dead port
  if (!server->Listen(port)) {
    return -1;
  }
  gscope::Nanos up = clock.NowNs();
  deadline = up + gscope::MillisToNanos(10'000);
  while (!client.connected() && clock.NowNs() < deadline) {
    loop.RunForMs(1);
  }
  if (!client.connected()) {
    return -1;
  }
  (void)scope;
  return static_cast<double>(clock.NowNs() - up) / 1e6;
}

RecoveryRow MeasureRecovery(int64_t max_backoff_ms, int trials, int outage_ms) {
  gscope::MainLoop loop;
  gscope::Scope scope(&loop, {.name = "rec", .width = 64});
  scope.SetPollingMode(5);
  auto* server = new gscope::StreamServer(&loop, &scope);
  RecoveryRow row;
  row.max_backoff_ms = max_backoff_ms;
  if (!server->Listen(0)) {
    delete server;
    return row;
  }
  uint16_t port = server->port();
  scope.StartPolling();

  gscope::StreamClient::Options copt;
  copt.reconnect.enabled = true;
  copt.reconnect.initial_backoff_ms = 5;
  copt.reconnect.max_backoff_ms = max_backoff_ms;
  copt.reconnect.jitter_frac = 0.1;
  copt.reconnect.seed = 7;
  gscope::StreamClient client(&loop, copt);
  client.Connect(port);
  gscope::SteadyClock clock;
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(2000);
  while (!client.connected() && clock.NowNs() < deadline) {
    loop.RunForMs(1);
  }
  for (int t = 0; t < trials && client.connected(); ++t) {
    double ms = MeasureRecoveryOnce(loop, server, scope, client, port, outage_ms);
    if (ms < 0) {
      break;
    }
    row.mean_ms += ms;
    row.max_ms = std::max(row.max_ms, ms);
    row.trials += 1;
  }
  if (row.trials > 0) {
    row.mean_ms /= row.trials;
  }
  client.Close();
  delete server;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int tuples = 2000;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::atoi(argv[i]) > 0) {
      tuples = std::atoi(argv[i]);
    }
  }

  std::printf("Reliability sweep: fault x policy, %d tuples/producer, 2 producers,\n"
              "1 resuming viewer, reconnecting producers\n\n",
              tuples);
  std::printf("%-15s %-12s %-10s %-8s %-8s %-7s %-8s %-7s %-6s %-10s\n", "fault", "policy",
              "delivered", "dropped", "evicted", "reconn", "faults", "torn", "ok",
              "del/sec");

  std::string json = "{\n  \"bench\": \"reliability sweep (bench_reliability)\",\n";
  json += "  \"tuples_per_producer\": " + std::to_string(tuples) + ",\n";
  json += "  \"producers\": 2, \"viewers\": 1, \"auto_reconnect\": true, "
          "\"viewer_ping_interval_ms\": 5,\n";
  json += "  \"metric_note\": \"delivered = fraction of attempted tuples the server "
          "parsed; torn = server parse errors (bounded by kills for the kill case, "
          "otherwise 0); ok = all interleaving-independent invariants held\",\n";
  json += "  \"fault_matrix\": [\n";

  const OverflowPolicy policies[] = {OverflowPolicy::kDropNewest,
                                     OverflowPolicy::kDropOldest};
  bool first = true;
  for (const FaultCase& fc : FaultCases()) {
    for (OverflowPolicy policy : policies) {
      MatrixRow r = RunMatrixCell(fc, policy, tuples);
      std::printf("%-15s %-12s %-10.3f %-8lld %-8lld %-7lld %-8lld %-7lld %-6s %-10.0f\n",
                  r.fault.c_str(), r.policy.c_str(), r.delivered_fraction(),
                  (long long)r.dropped, (long long)r.evicted, (long long)r.reconnects,
                  (long long)r.faults_injected, (long long)r.parse_errors,
                  r.invariants_ok ? "yes" : "NO", r.delivered_per_sec());
      if (!first) {
        json += ",\n";
      }
      first = false;
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    { \"fault\": \"%s\", \"policy\": \"%s\", "
                    "\"delivered_fraction\": %.4f, \"attempted\": %lld, "
                    "\"dropped\": %lld, \"evicted\": %lld, \"reconnects\": %lld, "
                    "\"viewer_resumes\": %lld, \"faults_injected\": %lld, "
                    "\"parse_errors\": %lld, \"invariants_ok\": %s, "
                    "\"delivered_per_sec\": %.0f }",
                    r.fault.c_str(), r.policy.c_str(), r.delivered_fraction(),
                    (long long)r.attempted, (long long)r.dropped, (long long)r.evicted,
                    (long long)r.reconnects, (long long)r.viewer_resumes,
                    (long long)r.faults_injected, (long long)r.parse_errors,
                    r.invariants_ok ? "true" : "false", r.delivered_per_sec());
      json += buf;
    }
  }
  json += "\n  ],\n";

  std::printf("\nRecovery time vs backoff cap (5 ms initial, x2, 10%% jitter;\n"
              "60 ms outage, wall ms from server rebirth to re-established):\n\n");
  std::printf("%-14s %-10s %-10s %-7s\n", "max-backoff", "mean-ms", "max-ms", "trials");
  json += "  \"recovery\": { \"initial_backoff_ms\": 5, \"multiplier\": 2.0, "
          "\"jitter_frac\": 0.1, \"outage_ms\": 60,\n";
  json += "    \"metric_note\": \"wall ms from server re-listen until the client "
          "re-established; the cap bounds the idle gap a returning server waits "
          "through\",\n";
  json += "    \"by_cap\": [\n";
  const int64_t caps[] = {10, 50, 200, 1000};
  first = true;
  for (int64_t cap : caps) {
    RecoveryRow r = MeasureRecovery(cap, 3, 60);
    std::printf("%-14lld %-10.1f %-10.1f %-7d\n", (long long)r.max_backoff_ms, r.mean_ms,
                r.max_ms, r.trials);
    if (!first) {
      json += ",\n";
    }
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "      { \"max_backoff_ms\": %lld, \"mean_ms\": %.1f, "
                  "\"max_ms\": %.1f, \"trials\": %d }",
                  (long long)r.max_backoff_ms, r.mean_ms, r.max_ms, r.trials);
    json += buf;
  }
  json += "\n    ]\n  }\n}\n";

  if (json_path != nullptr) {
    if (FILE* f = std::fopen(json_path, "w"); f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path);
    } else {
      std::printf("\ncould not write %s\n", json_path);
      return 1;
    }
  }
  std::printf("\nFaults cost chunked syscalls, not data: delivery and ordering\n"
              "invariants hold under every schedule; only mid-frame kills may tear\n"
              "the in-flight line (bounded by the kill count).  See docs/perf.md,\n"
              "\"Robustness\".\n");
  return 0;
}
