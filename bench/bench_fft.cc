// Experiment E8 (part): FFT / spectrum microbenchmarks for the
// frequency-domain display path.
#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "freq/fft.h"
#include "freq/spectrum.h"

namespace {

std::vector<double> MakeTone(size_t n) {
  std::vector<double> samples(n);
  for (size_t i = 0; i < n; ++i) {
    samples[i] = std::sin(2.0 * std::numbers::pi * 0.1 * static_cast<double>(i)) +
                 0.25 * std::sin(2.0 * std::numbers::pi * 0.31 * static_cast<double>(i));
  }
  return samples;
}

void BM_Fft(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<gscope::Complex> base(n);
  auto tone = MakeTone(n);
  for (size_t i = 0; i < n; ++i) {
    base[i] = gscope::Complex{tone[i], 0.0};
  }
  for (auto _ : state) {
    std::vector<gscope::Complex> data = base;
    gscope::Fft(&data);
    benchmark::DoNotOptimize(data);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->RangeMultiplier(4)->Range(64, 4096)->Complexity(benchmark::oNLogN);

void BM_ComputeSpectrum(benchmark::State& state) {
  auto samples = MakeTone(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto spectrum = gscope::ComputeSpectrum(samples, 100.0);
    benchmark::DoNotOptimize(spectrum);
  }
}
BENCHMARK(BM_ComputeSpectrum)->Arg(128)->Arg(512)->Arg(2048);

// The actual display path: one spectrum per repaint of a 512-column trace at
// 10 Hz repaint must be far under 100 ms.
void BM_SpectrumAtDisplayRate(benchmark::State& state) {
  auto samples = MakeTone(512);
  for (auto _ : state) {
    auto spectrum = gscope::ComputeSpectrum(samples, 100.0);
    benchmark::DoNotOptimize(spectrum.PeakHz());
  }
}
BENCHMARK(BM_SpectrumAtDisplayRate);

}  // namespace
