// Experiment E3 - Figure 5: "A snapshot of the GtkScope widget showing ECN
// behavior."
//
// Paper: same experiment as Figure 4 but with ECN flows through a RED/ECN
// router.  "The graphs show that while ECN does not hit this value [CWND=1],
// TCP hits it several times ... this experiment indicates that ECN can
// potentially improve flow throughput."
#include <cstdio>

#include "fig_experiment.h"

int main() {
  std::printf("E3 / Figure 5: ECN elephants through a RED/ECN router\n\n");
  gscope_bench::FigResult ecn = gscope_bench::RunFigExperiment(/*ecn=*/true, "fig5_ecn.ppm");

  gscope_bench::PrintSeries("CWND series", ecn.cwnd_series, 50);

  std::printf("\nre-running the Figure 4 baseline for the comparison row...\n");
  gscope_bench::FigResult tcp = gscope_bench::RunFigExperiment(/*ecn=*/false, "");

  std::printf("\n--- Figure 5 vs Figure 4 ---\n");
  std::printf("%-28s %10s %10s\n", "", "TCP(Fig4)", "ECN(Fig5)");
  std::printf("%-28s %10lld %10lld\n", "timeouts", (long long)tcp.timeouts,
              (long long)ecn.timeouts);
  std::printf("%-28s %10.2f %10.2f\n", "min CWND (segments)", tcp.min_cwnd, ecn.min_cwnd);
  std::printf("%-28s %10lld %10lld\n", "CWND-floor pixels", (long long)tcp.cwnd_floor_hits,
              (long long)ecn.cwnd_floor_hits);
  std::printf("%-28s %10lld %10lld\n", "router drops", (long long)tcp.router_drops,
              (long long)ecn.router_drops);
  std::printf("%-28s %10lld %10lld\n", "router ECN marks", (long long)tcp.router_marks,
              (long long)ecn.router_marks);
  std::printf("%-28s %10lld %10lld\n", "ECN window reductions",
              (long long)tcp.ecn_reductions, (long long)ecn.ecn_reductions);

  bool shape_ok = ecn.timeouts < tcp.timeouts && tcp.timeouts > 0 &&
                  ecn.router_marks > 0 && ecn.min_cwnd > tcp.min_cwnd;
  std::printf("\nfigure-5 shape reproduced (ECN avoids TCP's timeouts): %s\n",
              shape_ok ? "YES" : "NO");
  return shape_ok ? 0 : 1;
}
