// Wire-format sweep: per-tuple ingest cost of text lines vs the negotiated
// binary frames (docs/protocol.md, "Wire format v2"), across client counts
// and frame sizes.  Interleaved best-of-3: each (format, clients, frame)
// cell runs three times round-robin with its text twin, so thermal or
// neighbour drift hits both formats alike and the headline ratio compares
// like with like.  Emits one JSON document on stdout
// (scripts/check.sh: ./bench_wire_format > BENCH_wire.json).
//
// The per-run metric is tuples per CPU-second (CLOCK_PROCESS_CPUTIME_ID):
// the loop busy-polls, so wall time mostly measures the neighbours.
#include <ctime>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gscope.h"

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RunConfig {
  gscope::WireFormat wire = gscope::WireFormat::kText;
  int clients = 1;
  size_t frame_samples = 128;  // binary only; ignored for text
  int tuples_per_client = 100'000;
};

struct RunResult {
  bool ok = false;
  int64_t tuples_received = 0;
  int64_t frames_rx = 0;
  int64_t server_bytes = 0;
  double cpu_seconds = 0.0;
  double seconds = 0.0;
  double tuples_per_cpu_sec() const {
    return cpu_seconds > 0 ? tuples_received / cpu_seconds : 0;
  }
};

RunResult RunOnce(const RunConfig& cfg) {
  gscope::MainLoop loop;
  gscope::Scope scope(&loop, {.name = "sink", .width = 256});
  scope.SetPollingMode(5);
  scope.SetDelayMs(50);

  gscope::StreamServer server(&loop, &scope);
  if (!server.Listen(0)) {
    return {};
  }
  scope.StartPolling();

  std::vector<std::unique_ptr<gscope::StreamClient>> conns;
  for (int i = 0; i < cfg.clients; ++i) {
    gscope::StreamClient::Options copt;
    copt.max_buffer = 16u << 20;
    copt.wire_format = cfg.wire;
    copt.frame_samples = cfg.frame_samples;
    conns.push_back(std::make_unique<gscope::StreamClient>(&loop, copt));
    if (!conns.back()->Connect(server.port())) {
      return {};
    }
  }

  gscope::SteadyClock clock;
  // Establish (and for binary, negotiate) before the measured window: the
  // sweep compares steady-state per-tuple cost, not handshakes.
  gscope::Nanos setup_deadline = clock.NowNs() + gscope::MillisToNanos(5'000);
  while (clock.NowNs() < setup_deadline) {
    bool ready = true;
    for (const auto& conn : conns) {
      ready = ready && conn->connected() &&
              (cfg.wire == gscope::WireFormat::kText || conn->wire_binary());
    }
    if (ready) {
      break;
    }
    loop.Iterate(false);
  }

  double cpu_start = ProcessCpuSeconds();
  gscope::Nanos start = clock.NowNs();

  // Realistic tuples: instrumented programs export descriptive signal names
  // and full-precision doubles, which is exactly where text encode/parse
  // spends its CPU.  Binary interns the name once and ships 8 raw bytes.
  constexpr int kBatch = 1024;
  std::vector<std::string> names;
  for (int c = 0; c < cfg.clients; ++c) {
    names.push_back("bench_conn" + std::to_string(c) + "_tcp_cwnd_bytes_smoothed");
  }
  int sent_rounds = 0;
  loop.AddIdle([&]() {
    if (sent_rounds >= cfg.tuples_per_client) {
      return false;
    }
    int batch = std::min(kBatch, cfg.tuples_per_client - sent_rounds);
    int64_t now = scope.NowMs();
    for (int c = 0; c < cfg.clients; ++c) {
      for (int b = 0; b < batch; ++b) {
        double value = (sent_rounds + b) * 1.0009765625 + 0.1234567890123;
        conns[static_cast<size_t>(c)]->Send(now, value, names[static_cast<size_t>(c)]);
      }
    }
    sent_rounds += batch;
    return true;
  });

  const int64_t expected = static_cast<int64_t>(cfg.clients) * cfg.tuples_per_client;
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(20'000);
  while (clock.NowNs() < deadline) {
    loop.Iterate(false);
    if (sent_rounds >= cfg.tuples_per_client && server.stats().tuples >= expected) {
      break;
    }
  }

  RunResult result;
  result.ok = server.stats().tuples >= expected;
  result.tuples_received = server.stats().tuples;
  result.frames_rx = server.stats().frames_rx;
  result.server_bytes = server.stats().bytes;
  result.seconds = gscope::NanosToSeconds(clock.NowNs() - start);
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  return result;
}

const char* WireName(gscope::WireFormat wire) {
  return wire == gscope::WireFormat::kBinary ? "binary" : "text";
}

}  // namespace

int main() {
  constexpr int kRepeats = 3;
  struct Cell {
    RunConfig cfg;
    RunResult best;  // highest tuples/cpu-sec of the repeats
  };
  std::vector<Cell> cells;
  // Long enough runs (hundreds of ms of CPU each) that scheduler noise
  // cannot dominate a cell; the interleaving handles the slower drift.
  constexpr int kTuplesTotal = 600'000;
  for (int clients : {1, 2, 4}) {
    cells.push_back({{gscope::WireFormat::kText, clients, 128, kTuplesTotal / clients}, {}});
    for (size_t frame : {size_t{16}, size_t{128}, size_t{512}}) {
      cells.push_back({{gscope::WireFormat::kBinary, clients, frame, kTuplesTotal / clients}, {}});
    }
  }

  // Interleaved repeats: pass 1 of every cell, then pass 2, then pass 3 -
  // never three hot runs of one format back to back.
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (Cell& cell : cells) {
      RunResult r = RunOnce(cell.cfg);
      std::fprintf(stderr, "rep %d %s clients=%d frame=%zu: %.0f tuples/cpu-sec%s\n", rep,
                   WireName(cell.cfg.wire), cell.cfg.clients, cell.cfg.frame_samples,
                   r.tuples_per_cpu_sec(), r.ok ? "" : " (INCOMPLETE)");
      if (r.ok && r.tuples_per_cpu_sec() > cell.best.tuples_per_cpu_sec()) {
        cell.best = r;
      }
    }
  }

  double text_1c = 0.0;
  double binary_1c = 0.0;
  std::printf("{\n  \"bench\": \"wire_format\",\n  \"metric\": \"tuples_per_cpu_sec\",\n");
  std::printf("  \"repeats\": %d,\n  \"policy\": \"interleaved best-of-%d\",\n  \"runs\": [\n",
              kRepeats, kRepeats);
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    std::printf("    {\"wire\": \"%s\", \"clients\": %d, \"frame_samples\": %zu, "
                "\"tuples\": %lld, \"frames_rx\": %lld, \"wire_bytes\": %lld, "
                "\"cpu_seconds\": %.4f, \"tuples_per_cpu_sec\": %.0f}%s\n",
                WireName(cell.cfg.wire), cell.cfg.clients, cell.cfg.frame_samples,
                static_cast<long long>(cell.best.tuples_received),
                static_cast<long long>(cell.best.frames_rx),
                static_cast<long long>(cell.best.server_bytes), cell.best.cpu_seconds,
                cell.best.tuples_per_cpu_sec(), i + 1 < cells.size() ? "," : "");
    if (cell.cfg.clients == 1) {
      if (cell.cfg.wire == gscope::WireFormat::kText) {
        text_1c = cell.best.tuples_per_cpu_sec();
      } else if (cell.best.tuples_per_cpu_sec() > binary_1c) {
        binary_1c = cell.best.tuples_per_cpu_sec();
      }
    }
  }
  std::printf("  ],\n  \"speedup_1_client_best_binary_vs_text\": %.2f\n}\n",
              text_1c > 0 ? binary_1c / text_1c : 0.0);
  return 0;
}
