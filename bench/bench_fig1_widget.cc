// Experiments E4/E5 - Figures 1, 2 and 3: the GtkScope widget, the signal
// parameters window and the control parameters window.
//
// Regenerates each as a headless artifact: fig1_widget.ppm is the widget
// "screenshot" (canvas + rulers + zoom/bias/period/delay states + legend);
// the Figure 2/3 windows are printed as their textual table equivalents.
#include <cmath>
#include <cstdio>

#include "gscope.h"

int main() {
  std::printf("E4/E5 / Figures 1-3: widget, signal-parameter and control-parameter views\n\n");

  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::Scope scope(&loop, {.name = "GtkScope", .width = 420, .height = 240});

  // Two signals, as in the Figure 1/4 screenshots: elephants and CWND.
  int32_t elephants = 8;
  gscope::SignalId ele_sig = scope.AddSignal({
      .name = "elephants",
      .source = &elephants,
      .min = 0,
      .max = 40,
  });
  double phase = 0.0;
  gscope::SignalId cwnd_sig = scope.AddSignal({
      .name = "CWND",
      .source = gscope::MakeFunc([&phase]() {
        // An AIMD-looking sawtooth so the screenshot resembles the paper's.
        phase += 0.08;
        double saw = std::fmod(phase, 1.0);
        return 4.0 + 24.0 * saw;
      }),
      .min = 0,
      .max = 40,
      .filter_alpha = 0.1,
  });

  // Exercise the widgets under the canvas: sampling period, delay, zoom, bias.
  scope.SetPollingMode(50);
  scope.SetDelayMs(100);
  scope.SetZoom(1.0);
  scope.SetBias(0.0);

  scope.StartPolling();
  loop.AddTimeoutMs(5000, [&elephants]() {
    elephants = 16;  // the mid-run step
    return false;
  });
  loop.RunForMs(21'000);  // fill the 420-column canvas at 50 ms/pixel

  gscope::ScopeView view(&scope);
  if (view.RenderToPpm("fig1_widget.ppm", 500, 340)) {
    std::printf("wrote fig1_widget.ppm (Figure 1 analogue)\n");
  }

  std::printf("\n--- Figure 2 analogue: signal parameters window ---\n%s",
              view.SignalParamsTable().c_str());

  gscope::ParamRegistry params;
  double target_rate = 2.5;
  params.Add({.name = "target_rate", .storage = &target_rate, .min = 0.0, .max = 10.0});
  params.Add({.name = "elephants", .storage = &elephants, .min = 0.0, .max = 40.0});
  std::printf("\n--- Figure 3 analogue: control parameters window ---\n%s",
              gscope::ScopeView::ControlParamsTable(params).c_str());

  // Programmatic equivalents of the GUI interactions the paper describes.
  std::printf("\n--- GUI actions exercised programmatically ---\n");
  scope.ToggleHidden(ele_sig);  // left click on the signal name
  std::printf("left-click  elephants: hidden=%d\n", scope.SpecFor(ele_sig)->hidden);
  scope.SetFilterAlpha(cwnd_sig, 0.5);  // right-click parameter window
  std::printf("right-click CWND: filter alpha=%.1f\n", scope.SpecFor(cwnd_sig)->filter_alpha);
  std::printf("Value button CWND: %.2f\n", scope.LatestValue(cwnd_sig).value_or(-1));
  params.Set("elephants", 16);  // typing in the Figure 3 window
  std::printf("control window: elephants=%d\n", elephants);

  std::printf("\nwidget states: period=%lldms delay=%lldms zoom=%.1f bias=%.1f\n",
              (long long)scope.polling_period_ms(), (long long)scope.delay_ms(), scope.zoom(),
              scope.bias());
  std::printf("poll ticks=%lld lost=%lld\n", (long long)scope.counters().ticks,
              (long long)scope.counters().lost_ticks);
  return 0;
}
