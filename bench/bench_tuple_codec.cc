// Experiment E8 (part): microbenchmarks of the Section 3.3 tuple codec -
// the backbone of streaming, recording and replay.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/tuple.h"

namespace {

void BM_FormatTuple_ThreeField(benchmark::State& state) {
  gscope::Tuple t{123456, 42.518273, "CWND"};
  for (auto _ : state) {
    std::string wire = gscope::FormatTuple(t);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_FormatTuple_ThreeField);

void BM_FormatTuple_TwoField(benchmark::State& state) {
  gscope::Tuple t{123456, 42.518273, ""};
  for (auto _ : state) {
    std::string wire = gscope::FormatTuple(t);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_FormatTuple_TwoField);

void BM_ParseTuple(benchmark::State& state) {
  std::string line = "123456 42.518273 CWND";
  for (auto _ : state) {
    auto t = gscope::ParseTuple(line);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ParseTuple);

void BM_ParseTuple_Malformed(benchmark::State& state) {
  std::string line = "this line is certainly not a tuple at all";
  for (auto _ : state) {
    auto t = gscope::ParseTuple(line);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ParseTuple_Malformed);

void BM_RoundTrip_Stream(benchmark::State& state) {
  // Simulated server inner loop: format at the client, parse at the server.
  std::vector<gscope::Tuple> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back({i * 10, i * 1.5, "sig" + std::to_string(i % 8)});
  }
  for (auto _ : state) {
    for (const auto& t : batch) {
      auto parsed = gscope::ParseTuple(gscope::FormatTuple(t));
      benchmark::DoNotOptimize(parsed);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_RoundTrip_Stream);

}  // namespace
