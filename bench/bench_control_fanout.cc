// Control-channel subscriber scaling: ingest throughput with N remote scope
// sessions attached over the wire (docs/protocol.md), comparing DISJOINT
// glob subscriptions (each session matches 1/N of the signals; every
// signal's route excludes N-1 session slots at build time) against
// OVERLAPPING ones (every session subscribes '*', so filtering excludes
// nothing and every tuple is echoed N ways).
//
// With route-build-time filtering the disjoint case should approach the
// plain fan-out cost of a single interested scope per signal - the excluded
// sessions pay nothing per sample - while the overlapping case additionally
// measures the egress (echo serialization) path under full fan-out.
//
// Methodology matches bench_fanout (BENCH_fanout.json): loopback clients on
// one I/O-driven loop, CPU-second rates as the primary metric.  Usage:
//   bench_control_fanout [total_tuples]   (default 100000)
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "gscope.h"

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RunResult {
  int64_t tuples_received = 0;
  int64_t tuples_echoed = 0;
  int64_t echo_received = 0;  // across all subscribers
  size_t excluded_slots = 0;
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  double tuples_per_cpu_sec() const {
    return cpu_seconds > 0 ? tuples_received / cpu_seconds : 0;
  }
};

// `signals` producer signal names; each subscriber subscribes either to its
// own 1/N slice (disjoint) or to '*' (overlapping).
RunResult RunControlFanout(int num_subscribers, bool disjoint, int clients,
                           int tuples_per_client) {
  gscope::MainLoop loop;
  gscope::Scope display(&loop, {.name = "display", .width = 128});
  display.SetPollingMode(5);
  display.SetDelayMs(50);

  gscope::StreamServer server(&loop, &display);
  if (!server.Listen(0)) {
    return {};
  }
  display.StartPolling();

  std::vector<std::unique_ptr<gscope::ControlClient>> subs;
  std::vector<int64_t> echo_counts(static_cast<size_t>(num_subscribers), 0);
  for (int i = 0; i < num_subscribers; ++i) {
    subs.push_back(std::make_unique<gscope::ControlClient>(&loop));
    int64_t* count = &echo_counts[static_cast<size_t>(i)];
    subs.back()->SetTupleCallback([count](const gscope::TupleView&) { *count += 1; });
    if (!subs.back()->Connect(server.port())) {
      return {};
    }
  }
  // Let the handshakes resolve, then subscribe.
  for (int i = 0; i < 50; ++i) {
    loop.Iterate(false);
  }
  for (int i = 0; i < num_subscribers; ++i) {
    if (disjoint) {
      subs[static_cast<size_t>(i)]->Subscribe("sig" + std::to_string(i) + "_*");
    } else {
      subs[static_cast<size_t>(i)]->Subscribe("*");
    }
    subs[static_cast<size_t>(i)]->SetDelay(50);
  }
  for (int i = 0; i < 50; ++i) {
    loop.Iterate(false);
  }

  std::vector<std::unique_ptr<gscope::StreamClient>> conns;
  for (int c = 0; c < clients; ++c) {
    conns.push_back(std::make_unique<gscope::StreamClient>(&loop, 16u << 20));
    if (!conns.back()->Connect(server.port())) {
      return {};
    }
  }

  // One signal name per (client, subscriber-slice) pair so disjoint globs
  // split the stream evenly.
  std::vector<std::string> names;
  for (int c = 0; c < clients; ++c) {
    for (int s = 0; s < num_subscribers; ++s) {
      names.push_back("sig" + std::to_string(s) + "_c" + std::to_string(c));
    }
  }

  gscope::SteadyClock clock;
  gscope::Nanos start = clock.NowNs();
  double cpu_start = ProcessCpuSeconds();

  constexpr int kBatch = 128;
  int sent_rounds = 0;
  size_t name_cursor = 0;
  loop.AddIdle([&]() {
    if (sent_rounds >= tuples_per_client) {
      return false;
    }
    int batch = std::min(kBatch, tuples_per_client - sent_rounds);
    int64_t now = display.NowMs();
    for (int c = 0; c < clients; ++c) {
      for (int b = 0; b < batch; ++b) {
        const std::string& name = names[name_cursor++ % names.size()];
        conns[static_cast<size_t>(c)]->Send(now, static_cast<double>(b), name);
      }
    }
    sent_rounds += batch;
    return true;
  });

  int64_t total_expected = static_cast<int64_t>(clients) * tuples_per_client;
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(30'000);
  while (clock.NowNs() < deadline) {
    loop.Iterate(false);
    if (sent_rounds >= tuples_per_client &&
        server.stats().tuples + server.stats().parse_errors >= total_expected) {
      break;
    }
  }
  // Let the sessions' 50 ms display windows elapse so queued spans drain and
  // the echo path is actually exercised (blocking poll: negligible CPU, so
  // the CPU-second rate still reflects ingest + echo work).
  loop.RunForMs(200);

  RunResult result;
  result.tuples_received = server.stats().tuples;
  result.tuples_echoed = server.stats().tuples_echoed;
  for (int64_t n : echo_counts) {
    result.echo_received += n;
  }
  result.excluded_slots = server.router().excluded_route_slots();
  result.seconds = gscope::NanosToSeconds(clock.NowNs() - start);
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int total = 100'000;
  if (argc > 1) {
    total = std::atoi(argv[1]);
    if (total <= 0) {
      total = 100'000;
    }
  }
  constexpr int kClients = 4;
  std::printf("Control-channel subscriber scaling: %d clients, %d tuples total\n\n", kClients,
              total);
  std::printf("%-12s %-10s %-12s %-16s %-12s %-14s\n", "subscribers", "globs", "received",
              "tuples/cpu-sec", "echoed", "excl. slots");
  for (int subs : {1, 4, 16}) {
    for (bool disjoint : {true, false}) {
      RunResult r = RunControlFanout(subs, disjoint, kClients, total / kClients);
      std::printf("%-12d %-10s %-12lld %-16.0f %-12lld %-14zu\n", subs,
                  disjoint ? "disjoint" : "overlap", (long long)r.tuples_received,
                  r.tuples_per_cpu_sec(), (long long)r.tuples_echoed, r.excluded_slots);
    }
  }
  std::printf("\ndisjoint globs: route-build-time exclusion keeps non-matching sessions\n"
              "off the per-sample path; overlap additionally measures N-way echo egress.\n");
  return 0;
}
