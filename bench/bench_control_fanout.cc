// Control-channel subscriber scaling: ingest throughput with N remote scope
// sessions attached over the wire (docs/protocol.md), comparing DISJOINT
// glob subscriptions (each session matches 1/N of the signals; every
// signal's route excludes N-1 session slots at build time) against
// OVERLAPPING ones (every session subscribes '*', so filtering excludes
// nothing and every tuple is echoed N ways).
//
// With route-build-time filtering the disjoint case should approach the
// plain fan-out cost of a single interested scope per signal - the excluded
// sessions pay nothing per sample - while the overlapping case additionally
// measures the egress (echo serialization) path under full fan-out.
//
// Methodology matches bench_fanout (BENCH_fanout.json): loopback clients on
// one I/O-driven loop, CPU-second rates as the primary metric.
//
// Scale-out mode (--scale): ingest throughput with 1k-8k attached sessions,
// comparing StreamServerOptions::loops = 1 vs 4.  The sessions are raw
// sockets (NOT loop-driven ControlClients), so the bench process's primary
// loop never polls them - the per-iteration costs being measured (the
// server's poll(2) fd scan, its timer heap, the session scope ticks) are
// entirely server-side and divide across the loop pool.  Most sessions
// subscribe a glob matching nothing (pure fd + timer load); 16 "active"
// sessions split the signal names disjointly so the echo path runs at
// exactly 1x tuple volume regardless of the session count.  The sweep is
// capped at 8k sessions: each needs two fds (client + server side) and the
// container's RLIMIT_NOFILE hard cap is 20000.
//
// Derived-pipeline mode (--derived): 16 overlapping subscribers all attach
// the same server-side stage (docs/protocol.md "Derived-signal pipelines"),
// so the whole fleet shares ONE stage group per producer loop and the
// egress volume is set by the stage, not the raw sample rate.  The sweep
// compares raw echo, COALESCE, DECIMATE 10 and SPECTRUM 256 against the
// same ingest volume, reporting subscriber-side egress bytes: DECIMATE 10
// must cut egress bytes by >= 5x with no raw-path ingest throughput loss.
//
// Usage:
//   bench_control_fanout [total_tuples]          (default 100000)
//   bench_control_fanout --scale [N1,N2,...]     (default 1000,2000,4000,8000)
//   bench_control_fanout --derived [total_tuples]
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "gscope.h"

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RunResult {
  int64_t tuples_received = 0;
  int64_t tuples_echoed = 0;
  int64_t echo_received = 0;  // across all subscribers
  size_t excluded_slots = 0;
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  double tuples_per_cpu_sec() const {
    return cpu_seconds > 0 ? tuples_received / cpu_seconds : 0;
  }
};

// `signals` producer signal names; each subscriber subscribes either to its
// own 1/N slice (disjoint) or to '*' (overlapping).
RunResult RunControlFanout(int num_subscribers, bool disjoint, int clients,
                           int tuples_per_client) {
  gscope::MainLoop loop;
  gscope::Scope display(&loop, {.name = "display", .width = 128});
  display.SetPollingMode(5);
  display.SetDelayMs(50);

  gscope::StreamServer server(&loop, &display);
  if (!server.Listen(0)) {
    return {};
  }
  display.StartPolling();

  std::vector<std::unique_ptr<gscope::ControlClient>> subs;
  std::vector<int64_t> echo_counts(static_cast<size_t>(num_subscribers), 0);
  for (int i = 0; i < num_subscribers; ++i) {
    subs.push_back(std::make_unique<gscope::ControlClient>(&loop));
    int64_t* count = &echo_counts[static_cast<size_t>(i)];
    subs.back()->SetTupleCallback([count](const gscope::TupleView&) { *count += 1; });
    if (!subs.back()->Connect(server.port())) {
      return {};
    }
  }
  // Let the handshakes resolve, then subscribe.
  for (int i = 0; i < 50; ++i) {
    loop.Iterate(false);
  }
  for (int i = 0; i < num_subscribers; ++i) {
    if (disjoint) {
      subs[static_cast<size_t>(i)]->Subscribe("sig" + std::to_string(i) + "_*");
    } else {
      subs[static_cast<size_t>(i)]->Subscribe("*");
    }
    subs[static_cast<size_t>(i)]->SetDelay(50);
  }
  for (int i = 0; i < 50; ++i) {
    loop.Iterate(false);
  }

  std::vector<std::unique_ptr<gscope::StreamClient>> conns;
  for (int c = 0; c < clients; ++c) {
    conns.push_back(std::make_unique<gscope::StreamClient>(&loop, 16u << 20));
    if (!conns.back()->Connect(server.port())) {
      return {};
    }
  }

  // One signal name per (client, subscriber-slice) pair so disjoint globs
  // split the stream evenly.
  std::vector<std::string> names;
  for (int c = 0; c < clients; ++c) {
    for (int s = 0; s < num_subscribers; ++s) {
      names.push_back("sig" + std::to_string(s) + "_c" + std::to_string(c));
    }
  }

  gscope::SteadyClock clock;
  gscope::Nanos start = clock.NowNs();
  double cpu_start = ProcessCpuSeconds();

  constexpr int kBatch = 128;
  int sent_rounds = 0;
  size_t name_cursor = 0;
  loop.AddIdle([&]() {
    if (sent_rounds >= tuples_per_client) {
      return false;
    }
    int batch = std::min(kBatch, tuples_per_client - sent_rounds);
    int64_t now = display.NowMs();
    for (int c = 0; c < clients; ++c) {
      for (int b = 0; b < batch; ++b) {
        const std::string& name = names[name_cursor++ % names.size()];
        conns[static_cast<size_t>(c)]->Send(now, static_cast<double>(b), name);
      }
    }
    sent_rounds += batch;
    return true;
  });

  int64_t total_expected = static_cast<int64_t>(clients) * tuples_per_client;
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(30'000);
  while (clock.NowNs() < deadline) {
    loop.Iterate(false);
    if (sent_rounds >= tuples_per_client &&
        server.stats().tuples + server.stats().parse_errors >= total_expected) {
      break;
    }
  }
  // Let the sessions' 50 ms display windows elapse so queued spans drain and
  // the echo path is actually exercised (blocking poll: negligible CPU, so
  // the CPU-second rate still reflects ingest + echo work).
  loop.RunForMs(200);

  RunResult result;
  result.tuples_received = server.stats().tuples;
  result.tuples_echoed = server.stats().tuples_echoed;
  for (int64_t n : echo_counts) {
    result.echo_received += n;
  }
  result.excluded_slots = server.router().excluded_route_slots();
  result.seconds = gscope::NanosToSeconds(clock.NowNs() - start);
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  return result;
}

struct DerivedResult {
  int64_t tuples_received = 0;
  int64_t tuples_echoed = 0;
  int64_t tuples_derived = 0;
  int64_t stage_evals = 0;
  int64_t echo_received = 0;  // tuples across all subscribers
  int64_t egress_bytes = 0;   // wire bytes across all subscribers
  double cpu_seconds = 0.0;
  double tuples_per_cpu_sec() const {
    return cpu_seconds > 0 ? tuples_received / cpu_seconds : 0;
  }
};

// All `num_subscribers` sessions subscribe '*' with the same delay and the
// same stage spec (nullptr = raw every-sample echo), so staged modes share
// one group; `clients` producers stream one signal each.
DerivedResult RunDerivedFanout(const char* stage, int num_subscribers,
                               int clients, int tuples_per_client) {
  gscope::MainLoop loop;
  gscope::Scope display(&loop, {.name = "display", .width = 128});
  display.SetPollingMode(5);
  display.SetDelayMs(50);

  gscope::StreamServer server(&loop, &display);
  if (!server.Listen(0)) {
    return {};
  }
  display.StartPolling();

  std::vector<std::unique_ptr<gscope::ControlClient>> subs;
  std::vector<int64_t> echo_counts(static_cast<size_t>(num_subscribers), 0);
  for (int i = 0; i < num_subscribers; ++i) {
    subs.push_back(std::make_unique<gscope::ControlClient>(&loop));
    int64_t* count = &echo_counts[static_cast<size_t>(i)];
    subs.back()->SetTupleCallback([count](const gscope::TupleView&) { *count += 1; });
    if (!subs.back()->Connect(server.port())) {
      return {};
    }
  }
  for (int i = 0; i < 50; ++i) {
    loop.Iterate(false);
  }
  for (int i = 0; i < num_subscribers; ++i) {
    subs[static_cast<size_t>(i)]->Subscribe("*");
    subs[static_cast<size_t>(i)]->SetDelay(50);
    if (stage != nullptr) {
      subs[static_cast<size_t>(i)]->Stage(stage);
    }
  }
  for (int i = 0; i < 50; ++i) {
    loop.Iterate(false);
  }

  std::vector<std::unique_ptr<gscope::StreamClient>> conns;
  std::vector<std::string> names;
  for (int c = 0; c < clients; ++c) {
    conns.push_back(std::make_unique<gscope::StreamClient>(&loop, 16u << 20));
    if (!conns.back()->Connect(server.port())) {
      return {};
    }
    names.push_back("d_c" + std::to_string(c));
  }

  gscope::SteadyClock clock;
  double cpu_start = ProcessCpuSeconds();

  constexpr int kBatch = 128;
  int sent_rounds = 0;
  loop.AddIdle([&]() {
    if (sent_rounds >= tuples_per_client) {
      return false;
    }
    int batch = std::min(kBatch, tuples_per_client - sent_rounds);
    int64_t now = display.NowMs();
    for (int c = 0; c < clients; ++c) {
      for (int b = 0; b < batch; ++b) {
        conns[static_cast<size_t>(c)]->Send(now, static_cast<double>(b),
                                            names[static_cast<size_t>(c)]);
      }
    }
    sent_rounds += batch;
    return true;
  });

  int64_t total_expected = static_cast<int64_t>(clients) * tuples_per_client;
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(30'000);
  while (clock.NowNs() < deadline) {
    loop.Iterate(false);
    if (sent_rounds >= tuples_per_client &&
        server.stats().tuples + server.stats().parse_errors >= total_expected) {
      break;
    }
  }
  loop.RunForMs(300);  // drain display windows + deferred group flushes

  DerivedResult result;
  result.tuples_received = server.stats().tuples;
  result.tuples_echoed = server.stats().tuples_echoed;
  result.tuples_derived = server.stats().tuples_derived;
  result.stage_evals = server.stats().stage_evals;
  for (int i = 0; i < num_subscribers; ++i) {
    result.echo_received += echo_counts[static_cast<size_t>(i)];
    result.egress_bytes += subs[static_cast<size_t>(i)]->stats().bytes_received;
  }
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  return result;
}

void RunDerivedSweep(int total) {
  constexpr int kClients = 4;
  constexpr int kSubs = 16;
  struct Mode {
    const char* label;
    const char* stage;  // nullptr = raw every-sample echo
  };
  const Mode modes[] = {
      {"raw", nullptr},
      {"coalesced", "COALESCE"},
      {"decimate-10", "DECIMATE 10"},
      {"spectrum-256", "SPECTRUM 256 hann"},
  };
  std::printf("Derived pipelines: %d subscribers x '*', %d producers, %d tuples total\n\n",
              kSubs, kClients, total);
  std::printf("%-14s %-10s %-16s %-12s %-12s %-14s %-10s\n", "mode", "received",
              "tuples/cpu-sec", "sub-tuples", "egress-MB", "stage-evals",
              "vs raw");
  double raw_bytes = 0.0;
  for (const Mode& mode : modes) {
    DerivedResult r = RunDerivedFanout(mode.stage, kSubs, kClients, total / kClients);
    if (mode.stage == nullptr) {
      raw_bytes = static_cast<double>(r.egress_bytes);
    }
    double ratio = raw_bytes > 0 && r.egress_bytes > 0
                       ? raw_bytes / static_cast<double>(r.egress_bytes)
                       : 0.0;
    std::printf("%-14s %-10lld %-16.0f %-12lld %-12.2f %-14lld %.1fx\n",
                mode.label, (long long)r.tuples_received, r.tuples_per_cpu_sec(),
                (long long)r.echo_received,
                static_cast<double>(r.egress_bytes) / (1024.0 * 1024.0),
                (long long)r.stage_evals, ratio);
  }
  std::printf("\nvs raw = raw-mode egress bytes / this mode's egress bytes; the\n"
              "staged modes share one stage group across all %d subscribers\n"
              "(stage-evals counts one evaluation per ingested sample, not per\n"
              "subscriber), so egress volume is set by the stage alone.\n",
              kSubs);
}

// Blocking loopback connect (raw fd; the caller owns it).
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  int rcvbuf = 1 << 20;  // swallow the whole echo stream without draining
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct ScaleResult {
  int64_t tuples_received = 0;
  int64_t tuples_echoed = 0;
  size_t sessions = 0;
  bool reuse_port = false;
  double cpu_seconds = 0.0;
  double seconds = 0.0;
  bool ok = false;
  double tuples_per_cpu_sec() const {
    return cpu_seconds > 0 ? tuples_received / cpu_seconds : 0;
  }
};

// `subscribers` raw-socket sessions against a server with `loops` per-core
// event loops; kActiveSessions of them split the signal names disjointly.
ScaleResult RunScaleOut(int subscribers, size_t loops, int clients,
                        int tuples_per_client) {
  constexpr int kActiveSessions = 16;
  gscope::MainLoop loop;
  // The display scope anchors the time base the session scopes adopt (its
  // own tick cost rides the primary loop identically in both configs).
  gscope::Scope display(&loop, {.name = "display", .width = 128});
  display.SetConcurrent(loops > 1);
  display.SetPollingMode(5);
  display.SetDelayMs(50);
  gscope::StreamServerOptions sopt;
  sopt.loops = loops;
  sopt.max_clients = static_cast<size_t>(subscribers + clients + 8);
  // Session scopes tick at half the 50 ms display delay: the default 10 ms
  // poll period is display-latency headroom, but at thousands of sessions
  // per loop the timer servicing alone outruns a single core.  The period
  // is part of the deployment being measured, identical in both configs.
  sopt.control_poll_period_ms = 25;
  // Echo egress bursts when the whole run fits inside one 50 ms delay
  // window; size the per-session backlog so the active sessions' echo
  // streams survive instead of measuring the overflow policy.
  sopt.control_max_buffer = 8u << 20;
  gscope::StreamServer server(&loop, &display, sopt);
  ScaleResult result;
  if (!server.Listen(0)) {
    return result;
  }
  display.StartPolling();
  result.reuse_port = server.reuse_port_active();

  // Connect in batches under the listener's backlog (16), pumping the
  // primary loop until the accepts catch up (with reuse-port listeners 3/4
  // of them land on worker threads, which accept on their own).
  gscope::SteadyClock clock;
  gscope::Nanos setup_deadline = clock.NowNs() + gscope::MillisToNanos(60'000);
  std::vector<int> fds;
  fds.reserve(static_cast<size_t>(subscribers));
  for (int i = 0; i < subscribers; ++i) {
    int fd = RawConnect(server.port());
    if (fd < 0) {
      break;
    }
    fds.push_back(fd);
    std::string handshake = "DELAY 50\n";
    if (i < kActiveSessions) {
      handshake += "SUB s" + std::to_string(i) + "_*\n";
    } else {
      handshake += "SUB none_*\n";  // session load without echo volume
    }
    (void)!::write(fd, handshake.data(), handshake.size());
    if (fds.size() % 12 == 0) {
      while (server.client_count() < fds.size() &&
             clock.NowNs() < setup_deadline) {
        loop.RunForMs(1);
      }
    }
  }
  while (server.control_session_count() < fds.size() &&
         clock.NowNs() < setup_deadline) {
    loop.RunForMs(1);
  }
  result.sessions = server.control_session_count();
  if (result.sessions != fds.size() ||
      static_cast<int>(fds.size()) != subscribers) {
    for (int fd : fds) {
      ::close(fd);
    }
    return result;  // ok stays false: fd budget or accept failure
  }

  std::vector<std::unique_ptr<gscope::StreamClient>> conns;
  for (int c = 0; c < clients; ++c) {
    conns.push_back(std::make_unique<gscope::StreamClient>(&loop, 16u << 20));
    if (!conns.back()->Connect(server.port())) {
      return result;
    }
  }
  std::vector<std::string> names;
  for (int s = 0; s < kActiveSessions; ++s) {
    names.push_back("s" + std::to_string(s) + "_x");
  }
  loop.RunForMs(10);

  gscope::Nanos start = clock.NowNs();
  double cpu_start = ProcessCpuSeconds();
  constexpr int kBatch = 128;
  int sent_rounds = 0;
  size_t name_cursor = 0;
  loop.AddIdle([&]() {
    if (sent_rounds >= tuples_per_client) {
      return false;
    }
    // Pace against ingest: with loops > 1 the producers' loop no longer
    // ingests between sends, so an unpaced sender builds a client-side
    // backlog that stamps tuples long before they arrive — late-dropping
    // the echo tail once the lag exceeds the 50 ms display window.
    if (static_cast<int64_t>(sent_rounds) * clients - server.stats().tuples >
        4 * kBatch * clients) {
      return true;
    }
    int batch = std::min(kBatch, tuples_per_client - sent_rounds);
    int64_t now = display.NowMs();
    for (int c = 0; c < clients; ++c) {
      for (int b = 0; b < batch; ++b) {
        const std::string& name = names[name_cursor++ % names.size()];
        conns[static_cast<size_t>(c)]->Send(now, static_cast<double>(b), name);
      }
    }
    sent_rounds += batch;
    return true;
  });
  int64_t total_expected = static_cast<int64_t>(clients) * tuples_per_client;
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(60'000);
  while (clock.NowNs() < deadline) {
    loop.Iterate(false);
    if (sent_rounds >= tuples_per_client &&
        server.stats().tuples + server.stats().parse_errors >= total_expected) {
      break;
    }
  }
  // Settle until the echo stream stops growing (the 50 ms display windows
  // must elapse and, with loops > 1, the worker loops drain their span
  // queues on their own threads), capped at 2 s.
  int64_t echoed_last = -1;
  for (int i = 0; i < 20; ++i) {
    loop.RunForMs(100);
    int64_t echoed_now = server.stats().tuples_echoed;
    if (echoed_now == echoed_last) {
      break;
    }
    echoed_last = echoed_now;
  }

  result.tuples_received = server.stats().tuples;
  result.tuples_echoed = server.stats().tuples_echoed;
  result.seconds = gscope::NanosToSeconds(clock.NowNs() - start);
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  result.ok = true;
  for (int fd : fds) {
    ::close(fd);
  }
  return result;
}

void RunScaleSweep(const std::vector<int>& session_counts, int total) {
  constexpr int kClients = 4;
  std::printf("Scale-out: ingest throughput vs attached sessions, loops 1 vs 4\n");
  std::printf("(%d loopback producers, %d tuples total, 16 active subscribers,\n"
              " remaining sessions are pure fd/timer load)\n\n",
              kClients, total);
  std::printf("%-10s %-7s %-11s %-10s %-16s %-10s %-9s\n", "sessions", "loops",
              "mechanism", "received", "tuples/cpu-sec", "echoed", "speedup");
  for (int sessions : session_counts) {
    double base_rate = 0.0;
    for (size_t loops : {size_t{1}, size_t{4}}) {
      ScaleResult r = RunScaleOut(sessions, loops, kClients, total / kClients);
      if (!r.ok) {
        std::printf("%-10d %-7zu SKIPPED (accepted %zu of %d sessions: fd budget?)\n",
                    sessions, loops, r.sessions, sessions);
        continue;
      }
      if (r.tuples_received == 0) {
        // The config livelocked: per-session timers alone outran the core(s)
        // and ingest starved for the whole measurement window.
        std::printf("%-10d %-7zu %-11s SATURATED (session timer load outruns "
                    "the loop; 0 tuples in 60 s)\n",
                    sessions, loops, r.reuse_port ? "reuse-port" : "hand-off");
        continue;
      }
      if (loops == 1) {
        base_rate = r.tuples_per_cpu_sec();
      }
      double speedup = loops == 1 || base_rate <= 0
                           ? 1.0
                           : r.tuples_per_cpu_sec() / base_rate;
      std::printf("%-10d %-7zu %-11s %-10lld %-16.0f %-10lld %-9.2f\n", sessions,
                  loops, r.reuse_port ? "reuse-port" : "hand-off",
                  (long long)r.tuples_received, r.tuples_per_cpu_sec(),
                  (long long)r.tuples_echoed, speedup);
    }
  }
  std::printf("\nspeedup = tuples/cpu-sec vs the loops=1 row of the same session\n"
              "count; the divisible costs are the server-side poll(2) fd scan,\n"
              "timer heap and session sweep, which shard across the loop pool.\n");
}

}  // namespace

int main(int argc, char** argv) {
  int total = 100'000;
  bool scale = false;
  bool derived = false;
  std::vector<int> session_counts = {1000, 2000, 4000, 8000};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--derived") == 0) {
      derived = true;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale = true;
      if (i + 1 < argc && argv[i + 1][0] != '-' &&
          std::strchr(argv[i + 1], ',') != nullptr) {
        session_counts.clear();
        for (char* tok = std::strtok(argv[++i], ","); tok != nullptr;
             tok = std::strtok(nullptr, ",")) {
          int n = std::atoi(tok);
          if (n > 0) {
            session_counts.push_back(n);
          }
        }
      } else if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        session_counts = {std::atoi(argv[++i])};
      }
    } else if (std::atoi(argv[i]) > 0) {
      total = std::atoi(argv[i]);
    }
  }
  if (scale) {
    RunScaleSweep(session_counts, total);
    return 0;
  }
  if (derived) {
    RunDerivedSweep(total);
    return 0;
  }
  constexpr int kClients = 4;
  std::printf("Control-channel subscriber scaling: %d clients, %d tuples total\n\n", kClients,
              total);
  std::printf("%-12s %-10s %-12s %-16s %-12s %-14s\n", "subscribers", "globs", "received",
              "tuples/cpu-sec", "echoed", "excl. slots");
  for (int subs : {1, 4, 16}) {
    for (bool disjoint : {true, false}) {
      RunResult r = RunControlFanout(subs, disjoint, kClients, total / kClients);
      std::printf("%-12d %-10s %-12lld %-16.0f %-12lld %-14zu\n", subs,
                  disjoint ? "disjoint" : "overlap", (long long)r.tuples_received,
                  r.tuples_per_cpu_sec(), (long long)r.tuples_echoed, r.excluded_slots);
    }
  }
  std::printf("\ndisjoint globs: route-build-time exclusion keeps non-matching sessions\n"
              "off the per-sample path; overlap additionally measures N-way echo egress.\n");
  return 0;
}
