// Shared harness for the Figures 4/5 experiment (Section 2).
//
// Emulated WAN (nistnet-analogue router), mxtraf elephants stepped 8 -> 16
// halfway through the window, the CWND of one arbitrarily chosen long-lived
// flow plotted at 50 ms per pixel on a GtkScope-equivalent.
#ifndef GSCOPE_BENCH_FIG_EXPERIMENT_H_
#define GSCOPE_BENCH_FIG_EXPERIMENT_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "gscope.h"
#include "netsim/mxtraf.h"

namespace gscope_bench {

struct FigResult {
  std::vector<double> cwnd_series;      // one point per 50 ms pixel
  std::vector<double> elephant_series;  // the second signal of the figures
  int64_t timeouts = 0;
  int64_t fast_retransmits = 0;
  int64_t ecn_reductions = 0;
  int64_t router_drops = 0;
  int64_t router_marks = 0;
  double min_cwnd = 1e9;
  int64_t cwnd_floor_hits = 0;  // pixels at cwnd <= 1.5 ("lowest value" events)
};

inline FigResult RunFigExperiment(bool ecn, const std::string& ppm_path,
                                  int ticks = 400, int64_t period_ms = 50) {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::Scope scope(&loop,
                      {.name = ecn ? "GtkScope: ECN" : "GtkScope: TCP", .width = ticks + 20,
                       .height = 240});

  gscope::Simulator sim;
  gscope::MxtrafConfig config;
  if (ecn) {
    config.EnableEcnRed();
  }
  gscope::Mxtraf traf(&sim, config);
  traf.SetElephants(8);

  gscope::SignalId ele_sig = scope.AddSignal({
      .name = "elephants",
      .source = gscope::MakeFunc([&traf]() { return static_cast<double>(traf.elephants()); }),
      .min = 0,
      .max = 40,
  });
  gscope::SignalId cwnd_sig = scope.AddSignal({
      .name = "CWND",
      .source = gscope::MakeFunc([&traf]() { return traf.CwndSegments(0); }),
      .min = 0,
      .max = 40,
  });
  scope.SetPollingMode(period_ms);

  FigResult result;
  for (int i = 0; i < ticks; ++i) {
    if (i == ticks / 2) {
      traf.SetElephants(16);  // the mid-window step of the figures
    }
    sim.RunForMs(period_ms);
    clock.AdvanceMs(period_ms);
    scope.TickOnce();
    double cwnd = scope.LatestValue(cwnd_sig).value_or(0.0);
    result.cwnd_series.push_back(cwnd);
    result.elephant_series.push_back(scope.LatestValue(ele_sig).value_or(0.0));
    if (cwnd > 0.0) {
      result.min_cwnd = std::min(result.min_cwnd, cwnd);
    }
    if (cwnd <= 1.5) {
      ++result.cwnd_floor_hits;
    }
  }

  result.timeouts = traf.TotalTimeouts();
  result.fast_retransmits = traf.TotalFastRetransmits();
  result.ecn_reductions = traf.TotalEcnReductions();
  result.router_drops =
      traf.bottleneck_stats().dropped_tail + traf.bottleneck_stats().dropped_red;
  result.router_marks = traf.bottleneck_stats().marked_ecn;

  if (!ppm_path.empty()) {
    gscope::ScopeView view(&scope);
    if (view.RenderToPpm(ppm_path, ticks + 80, 320)) {
      std::printf("wrote scope snapshot: %s\n", ppm_path.c_str());
    }
  }
  std::fputs(gscope::RenderAscii(scope, {.columns = 72, .rows = 14}).c_str(), stdout);
  return result;
}

inline void PrintSeries(const char* label, const std::vector<double>& series,
                        int64_t period_ms) {
  std::printf("%s (one point per %lld ms pixel):\n", label, (long long)period_ms);
  for (size_t i = 0; i < series.size(); ++i) {
    if (i % 20 == 0) {
      std::printf("t=%6.1fs ", static_cast<double>(i) * static_cast<double>(period_ms) / 1000.0);
    }
    std::printf("%5.1f", series[i]);
    if (i % 20 == 19 || i + 1 == series.size()) {
      std::printf("\n");
    }
  }
}

}  // namespace gscope_bench

#endif  // GSCOPE_BENCH_FIG_EXPERIMENT_H_
