// Drain-coalescing measurement: scope drain throughput as batch-per-tick,
// scope count and history fraction vary.  Sample-and-hold (Section 4.2)
// means that between two polls only the last value per signal is
// displayable, so a display-only drain should cost O(live signals) per tick
// — the block's last-wins summary — instead of O(batch) per scope.  The
// "before" rows run the same library with coalescing disabled
// (ScopeOptions::coalesce_display_only = false), i.e. the pre-coalescing
// per-sample drain, interleaved with the "after" rows in the same process
// (the BENCH_fanout.json methodology).  history=100% attaches an
// every-sample sink to every signal of every scope: that path must not
// regress, it bypasses the fold by design.
//
// Usage: bench_drain [tuples_per_config] [rounds]
//   (defaults 200000 and 3; smoke runs pass less)
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cinttypes>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gscope.h"

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

constexpr int kSignals = 8;

struct DrainRunResult {
  int64_t tuples = 0;  // appended (each fans out to every scope)
  int64_t coalesced = 0;
  int64_t retained = 0;
  double cpu_seconds = 0.0;
  double tuples_per_cpu_sec() const { return cpu_seconds > 0 ? tuples / cpu_seconds : 0; }
};

// One config: `scopes` display targets, kSignals live signals, `batch`
// samples per signal per tick, driven for `ticks` deterministic SimClock
// ticks through one inline-fan-out router (drain cost is what varies).
DrainRunResult RunDrain(int num_scopes, int batch, int ticks, bool coalesce,
                        bool history) {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::IngestRouter router({.fanout_shards = 1, .worker_threads = 0});

  std::vector<std::unique_ptr<gscope::Scope>> scopes;
  for (int i = 0; i < num_scopes; ++i) {
    scopes.push_back(std::make_unique<gscope::Scope>(
        &loop, gscope::ScopeOptions{.name = "sink" + std::to_string(i),
                                    .width = 128,
                                    .coalesce_display_only = coalesce}));
    scopes.back()->SetPollingMode(5);
    scopes.back()->StartPolling();
    router.AddScope(scopes.back().get());
  }

  std::vector<std::string> names;
  for (int s = 0; s < kSignals; ++s) {
    names.push_back("sig" + std::to_string(s));
  }
  // history = every signal of every scope gets an every-sample sink (the
  // trigger/trace/export shape); its samples must all be delivered.
  int64_t sink_hits = 0;
  int64_t* hits = &sink_hits;
  if (history) {
    for (auto& scope : scopes) {
      for (const std::string& name : names) {
        gscope::SignalId id = scope->FindOrAddBufferSignal(name);
        scope->AttachSampleSink(id, [hits](int64_t, double) { ++*hits; });
      }
    }
  }

  // Warm-up: build routes, pool blocks, grow scratches.
  for (int warm = 0; warm < 3; ++warm) {
    int64_t now = scopes[0]->NowMs();
    for (const std::string& name : names) {
      for (int b = 0; b < batch; ++b) {
        router.Append(name, now, static_cast<double>(b));
      }
    }
    router.Flush();
    clock.AdvanceMs(5);
    for (auto& scope : scopes) {
      scope->TickOnce();
    }
  }

  double cpu_start = ProcessCpuSeconds();
  for (int t = 0; t < ticks; ++t) {
    int64_t now = scopes[0]->NowMs();
    for (const std::string& name : names) {
      for (int b = 0; b < batch; ++b) {
        router.Append(name, now, static_cast<double>(b));
      }
    }
    router.Flush();
    clock.AdvanceMs(5);
    for (auto& scope : scopes) {
      scope->TickOnce();
    }
  }
  DrainRunResult result;
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  result.tuples = static_cast<int64_t>(ticks) * kSignals * batch;

  // Sanity: every scope holds the last value per signal, and history sinks
  // observed every sample (warm-up included).
  for (auto& scope : scopes) {
    for (const std::string& name : names) {
      gscope::SignalId id = scope->FindSignal(name);
      double v = scope->LatestValue(id).value_or(-1);
      if (v != static_cast<double>(batch - 1)) {
        std::fprintf(stderr, "FAIL: %s last value %.1f != %d\n", name.c_str(), v, batch - 1);
        std::exit(1);
      }
    }
    result.coalesced += scope->counters().samples_coalesced;
    result.retained += scope->counters().samples_retained;
  }
  if (history &&
      sink_hits != static_cast<int64_t>(num_scopes) * (ticks + 3) * kSignals * batch) {
    std::fprintf(stderr, "FAIL: history sinks lost samples\n");
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int total = 200'000;
  int rounds = 3;
  if (argc > 1) {
    total = std::atoi(argv[1]);
    if (total <= 0) {
      total = 200'000;
    }
  }
  if (argc > 2) {
    rounds = std::max(1, std::atoi(argv[2]));
  }

  std::printf("Drain coalescing: %d signals, %d tuples per config, best of %d "
              "interleaved rounds\n\n",
              kSignals, total, rounds);
  std::printf("%-7s %-6s %-9s %-14s %-14s %-9s %-14s %-9s\n", "scopes", "batch", "mode",
              "before/cpu-s", "after/cpu-s", "speedup", "hist/cpu-s", "hist-reg");

  for (int num_scopes : {1, 16, 64}) {
    for (int batch : {32, 128, 512}) {
      int ticks = std::max(3, total / (kSignals * batch));
      double best_before = 0, best_after = 0, best_hist_before = 0, best_hist_after = 0;
      for (int r = 0; r < rounds; ++r) {
        // Interleaved: before, after, before-history, after-history.
        best_before = std::max(
            best_before,
            RunDrain(num_scopes, batch, ticks, false, false).tuples_per_cpu_sec());
        best_after = std::max(
            best_after,
            RunDrain(num_scopes, batch, ticks, true, false).tuples_per_cpu_sec());
        best_hist_before = std::max(
            best_hist_before,
            RunDrain(num_scopes, batch, ticks, false, true).tuples_per_cpu_sec());
        best_hist_after = std::max(
            best_hist_after,
            RunDrain(num_scopes, batch, ticks, true, true).tuples_per_cpu_sec());
      }
      std::printf("%-7d %-6d %-9s %-14.0f %-14.0f %-9.2f %-14.0f %-9.2f\n", num_scopes,
                  batch, "disp", best_before, best_after,
                  best_before > 0 ? best_after / best_before : 0, best_hist_after,
                  best_hist_before > 0 ? best_hist_after / best_hist_before : 0);
    }
  }
  std::printf("\npaper behaviour: sample-and-hold displays the last value per signal per\n"
              "poll; a display-only drain should cost O(live signals), not O(batch),\n"
              "while every-sample consumers (hist columns) keep the full history path.\n");
  return 0;
}
