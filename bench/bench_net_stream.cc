// Experiment E9 - Section 4.4 supporting measurement: tuple streaming
// throughput and the delay/late-drop policy of the client/server library.
#include <ctime>
#include <cstdio>

#include "gscope.h"

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct StreamRunResult {
  int64_t tuples_received = 0;
  int64_t dropped_late = 0;
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  double tuples_per_sec() const { return seconds > 0 ? tuples_received / seconds : 0; }
  // The loop busy-polls, so CPU time ~= wall time on an idle host; on a
  // shared host the CPU rate is the stable number (wall time includes
  // neighbour preemption).
  double tuples_per_cpu_sec() const {
    return cpu_seconds > 0 ? tuples_received / cpu_seconds : 0;
  }
};

StreamRunResult RunStream(int clients, int tuples_per_client, int64_t delay_ms,
                          int64_t stale_every) {
  gscope::MainLoop loop;
  gscope::Scope scope(&loop, {.name = "sink", .width = 256});
  scope.SetPollingMode(5);
  scope.SetDelayMs(delay_ms);

  gscope::StreamServer server(&loop, &scope);
  if (!server.Listen(0)) {
    return {};
  }
  scope.StartPolling();

  std::vector<std::unique_ptr<gscope::StreamClient>> conns;
  for (int i = 0; i < clients; ++i) {
    conns.push_back(std::make_unique<gscope::StreamClient>(&loop, 16u << 20));
    if (!conns.back()->Connect(server.port())) {
      return {};
    }
  }

  gscope::SteadyClock clock;
  gscope::Nanos start = clock.NowNs();
  double cpu_start = ProcessCpuSeconds();

  // Feed from a loop source so everything stays single-threaded I/O driven.
  // Tuples go out in batches per idle round so the measurement stresses the
  // per-tuple ingest path rather than the loop's per-iteration overhead.
  constexpr int kBatch = 128;
  std::vector<std::string> names;
  for (int c = 0; c < clients; ++c) {
    names.push_back("c" + std::to_string(c));
  }
  int sent_rounds = 0;
  loop.AddIdle([&]() {
    if (sent_rounds >= tuples_per_client) {
      return false;
    }
    int batch = std::min(kBatch, tuples_per_client - sent_rounds);
    int64_t now = scope.NowMs();  // stamp once per round, like a real
                                  // producer stamping an event batch
    for (int c = 0; c < clients; ++c) {
      for (int b = 0; b < batch; ++b) {
        int64_t stamp = now;
        if (stale_every > 0 && (sent_rounds + b) % stale_every == 0) {
          stamp -= delay_ms + 10'000;  // deliberately late
        }
        conns[static_cast<size_t>(c)]->SendTuple(
            {stamp, static_cast<double>(sent_rounds + b), names[static_cast<size_t>(c)]});
      }
    }
    sent_rounds += batch;
    return true;
  });

  // Run until everything is sent and drained, with a wall-clock budget.
  int64_t total_expected = static_cast<int64_t>(clients) * tuples_per_client;
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(10'000);
  while (clock.NowNs() < deadline) {
    loop.Iterate(false);
    if (sent_rounds >= tuples_per_client &&
        server.stats().tuples + server.stats().parse_errors >= total_expected) {
      break;
    }
  }

  StreamRunResult result;
  result.tuples_received = server.stats().tuples;
  // The server already accounts every rejected push; adding the scope
  // buffer's own dropped_late would double-count the same events.
  result.dropped_late = server.stats().dropped_late;
  result.seconds = gscope::NanosToSeconds(clock.NowNs() - start);
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  return result;
}

}  // namespace

int main() {
  std::printf("E9 / Section 4.4: tuple streaming throughput (loopback, 1 loop thread)\n\n");
  std::printf("%-9s %-16s %-12s %-14s %-16s %-12s\n", "clients", "tuples/client", "received",
              "tuples/sec", "tuples/cpu-sec", "dropped late");
  for (int clients : {1, 2, 4, 8}) {
    StreamRunResult r = RunStream(clients, 100'000 / clients, /*delay_ms=*/50,
                                  /*stale_every=*/0);
    std::printf("%-9d %-16d %-12lld %-14.0f %-16.0f %-12lld\n", clients, 100'000 / clients,
                (long long)r.tuples_received, r.tuples_per_sec(), r.tuples_per_cpu_sec(),
                (long long)r.dropped_late);
  }

  std::printf("\n--- late-drop policy (every 10th tuple stamped stale) ---\n");
  StreamRunResult stale = RunStream(2, 5000, /*delay_ms=*/50, /*stale_every=*/10);
  std::printf("received=%lld dropped_late=%lld (expected ~%d)\n",
              (long long)stale.tuples_received, (long long)stale.dropped_late, 2 * 5000 / 10);
  std::printf("\npaper behaviour: data arriving after the display delay is dropped\n"
              "immediately rather than buffered - reproduced: %s\n",
              stale.dropped_late > 0 ? "YES" : "NO");
  return 0;
}
