// Backpressure policy sweep: overflow policy x producer count x server
// drain rate, measuring what each policy costs and saves when the server
// cannot keep up (the gscope bargain: instrumented producers stay cheap
// even when viewers lag).
//
// Topology: producers (StreamClient, small SO_SNDBUF + small backlog so
// backpressure is visible to the policy, not hidden in kernel buffering)
// live on one loop; the StreamServer (small per-client SO_RCVBUF) on
// another.  The server loop is iterated only every 1/drain_rate producer
// rounds, emulating a viewer that drains at a fraction of the offered
// load.  All single-threaded and seedless: the tuple payload is a
// deterministic sequence.
//
// Reported per configuration: delivered fraction, drops/evictions, total
// block time, backlog high-water, and producer-side throughput per CPU
// second.  `--json PATH` additionally writes the sweep as JSON
// (BENCH_backpressure.json in the repo root is generated this way).
//
// Usage: bench_backpressure [tuples_per_producer] [--json PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "gscope.h"

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Config {
  gscope::OverflowPolicy policy;
  int producers;
  double drain_rate;  // fraction of producer rounds the server loop runs
};

struct RunResult {
  int64_t attempted = 0;
  int64_t sent = 0;
  int64_t dropped = 0;
  int64_t evicted = 0;
  int64_t delivered = 0;  // tuples the server parsed
  int64_t block_ns = 0;
  int64_t high_water = 0;
  double cpu_seconds = 0;
  double seconds = 0;

  double delivered_fraction() const {
    return attempted > 0 ? static_cast<double>(delivered) / static_cast<double>(attempted) : 0;
  }
  double attempts_per_cpu_sec() const {
    return cpu_seconds > 0 ? static_cast<double>(attempted) / cpu_seconds : 0;
  }
};

const char* PolicyName(gscope::OverflowPolicy policy) {
  switch (policy) {
    case gscope::OverflowPolicy::kDropNewest:
      return "drop-newest";
    case gscope::OverflowPolicy::kDropOldest:
      return "drop-oldest";
    case gscope::OverflowPolicy::kBlockWithDeadline:
      return "block-2ms";
  }
  return "?";
}

RunResult Run(const Config& config, int tuples_per_producer) {
  gscope::MainLoop server_loop;
  gscope::Scope display(&server_loop, {.name = "display", .width = 64});
  display.SetPollingMode(5);
  gscope::StreamServerOptions sopt;
  sopt.fanout_shards = 1;
  sopt.fanout_workers = 0;
  sopt.client_rcvbuf_bytes = 8192;
  gscope::StreamServer server(&server_loop, &display, sopt);
  if (!server.Listen(0)) {
    return {};
  }
  display.StartPolling();

  gscope::MainLoop producer_loop;
  std::vector<std::unique_ptr<gscope::StreamClient>> clients;
  for (int i = 0; i < config.producers; ++i) {
    clients.push_back(std::make_unique<gscope::StreamClient>(
        &producer_loop, gscope::StreamClient::Options{
                            .max_buffer = 32 << 10,
                            .overflow_policy = config.policy,
                            .block_deadline_ms = 2,
                            .sndbuf_bytes = 8192,
                        }));
    if (!clients.back()->Connect(server.port())) {
      return {};
    }
  }
  // Resolve the handshakes on both loops.
  for (int i = 0; i < 200; ++i) {
    producer_loop.Iterate(false);
    server_loop.Iterate(false);
    bool all = true;
    for (const auto& c : clients) {
      all = all && c->connected();
    }
    if (all) {
      break;
    }
  }

  // One padded signal name per producer (fatter frames reach overload with
  // fewer tuples, like the stress harness).
  std::vector<std::string> names;
  for (int i = 0; i < config.producers; ++i) {
    names.push_back("bp" + std::to_string(i) + "_" + std::string(40, 'x'));
  }

  gscope::SteadyClock clock;
  gscope::Nanos start = clock.NowNs();
  double cpu_start = ProcessCpuSeconds();

  RunResult result;
  constexpr int kBurst = 64;
  int rounds_per_drain = config.drain_rate >= 1.0
                             ? 1
                             : static_cast<int>(1.0 / config.drain_rate + 0.5);
  int round = 0;
  for (int seq = 0; seq < tuples_per_producer;) {
    int burst = std::min(kBurst, tuples_per_producer - seq);
    for (int b = 0; b < burst; ++b) {
      for (int c = 0; c < config.producers; ++c) {
        clients[static_cast<size_t>(c)]->Send(seq + b, static_cast<double>(seq + b),
                                              names[static_cast<size_t>(c)]);
        result.attempted += 1;
      }
    }
    seq += burst;
    producer_loop.Iterate(false);
    if (++round % rounds_per_drain == 0) {
      server_loop.Iterate(false);
    }
  }
  // Final drain: both sides until the backlogs empty (bounded).
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(10'000);
  while (clock.NowNs() < deadline) {
    producer_loop.Iterate(false);
    server_loop.Iterate(false);
    size_t pending = 0;
    for (const auto& c : clients) {
      pending += c->pending_bytes();
    }
    if (pending == 0) {
      break;
    }
  }
  for (int i = 0; i < 50; ++i) {
    server_loop.Iterate(false);  // read what the kernel still holds
  }

  result.seconds = gscope::NanosToSeconds(clock.NowNs() - start);
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  for (const auto& c : clients) {
    const gscope::StreamClient::Stats& s = c->stats();
    result.sent += s.tuples_sent;
    result.dropped += s.tuples_dropped;
    result.evicted += s.tuples_evicted;
    result.block_ns += s.block_time_ns;
    result.high_water = std::max(result.high_water, s.backlog_high_water);
  }
  result.delivered = server.stats().tuples;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int total = 30'000;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::atoi(argv[i]) > 0) {
      total = std::atoi(argv[i]);
    }
  }

  const gscope::OverflowPolicy policies[] = {
      gscope::OverflowPolicy::kDropNewest,
      gscope::OverflowPolicy::kDropOldest,
      gscope::OverflowPolicy::kBlockWithDeadline,
  };
  const int producer_counts[] = {1, 4};
  const double drain_rates[] = {1.0, 0.25, 0.05};

  std::printf("Backpressure sweep: policy x producers x drain rate, %d tuples/producer\n\n",
              total);
  std::printf("%-12s %-10s %-7s %-10s %-9s %-9s %-10s %-10s %-12s\n", "policy", "producers",
              "drain", "delivered", "dropped", "evicted", "block-ms", "highwater",
              "att/cpu-sec");

  std::string json = "{\n  \"bench\": \"backpressure policy sweep (bench_backpressure)\",\n";
  json += "  \"tuples_per_producer\": " + std::to_string(total) + ",\n";
  json += "  \"client_buffer_bytes\": 32768, \"sndbuf_bytes\": 8192, "
          "\"server_rcvbuf_bytes\": 8192, \"block_deadline_ms\": 2,\n";
  json += "  \"metric_note\": \"delivered = fraction of attempted tuples the server parsed; "
          "att/cpu-sec = producer-side attempts per process-CPU second\",\n";
  json += "  \"sweep\": [\n";
  bool first = true;
  for (gscope::OverflowPolicy policy : policies) {
    for (int producers : producer_counts) {
      for (double rate : drain_rates) {
        RunResult r = Run({policy, producers, rate}, total);
        std::printf("%-12s %-10d %-7.2f %-10.3f %-9lld %-9lld %-10.1f %-10lld %-12.0f\n",
                    PolicyName(policy), producers, rate, r.delivered_fraction(),
                    (long long)r.dropped, (long long)r.evicted,
                    static_cast<double>(r.block_ns) / 1e6, (long long)r.high_water,
                    r.attempts_per_cpu_sec());
        if (!first) {
          json += ",\n";
        }
        first = false;
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "    { \"policy\": \"%s\", \"producers\": %d, \"drain_rate\": %.2f, "
                      "\"delivered_fraction\": %.4f, \"attempted\": %lld, \"dropped\": %lld, "
                      "\"evicted\": %lld, \"block_ms\": %.1f, \"high_water\": %lld, "
                      "\"attempts_per_cpu_sec\": %.0f }",
                      PolicyName(policy), producers, rate, r.delivered_fraction(),
                      (long long)r.attempted, (long long)r.dropped, (long long)r.evicted,
                      static_cast<double>(r.block_ns) / 1e6, (long long)r.high_water,
                      r.attempts_per_cpu_sec());
        json += buf;
      }
    }
  }
  json += "\n  ]\n}\n";

  if (json_path != nullptr) {
    if (FILE* f = std::fopen(json_path, "w"); f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path);
    } else {
      std::printf("\ncould not write %s\n", json_path);
      return 1;
    }
  }
  std::printf("\ndrop-newest sheds the tail, drop-oldest sheds the head (newest data\n"
              "survives a stalled viewer), block-2ms trades bounded producer latency\n"
              "for fewer drops.  See docs/perf.md, \"Backpressure\".\n");
  return 0;
}
