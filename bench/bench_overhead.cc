// Experiment E1 - Section 4.6, "Scope Overhead".
//
// Paper methodology: "we use a CPU load program that runs in a tight loop at
// a low priority and measures the number of loop iterations it can perform
// at any given period.  The ratio of the iteration count when running gscope
// versus on an idle system gives an estimate of the gscope overhead."
//
// Paper results (600 MHz Pentium III):
//   - < 2% CPU overhead polling at 10 ms granularity
//   - < 1% at 50 ms granularity
//   - +0.02 to 0.05% per additional displayed signal
//   - polling granularity has a much larger effect than signal count
//
// This bench reproduces the method on the host CPU.  Absolute numbers will
// be far smaller on modern hardware; the *ordering* must hold: overhead(10ms)
// > overhead(50ms), and per-signal increments orders of magnitude below the
// polling-period effect.
#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "gscope.h"
#include "load/load_meter.h"

namespace {

constexpr int64_t kMeasureMs = 1000;
constexpr int kRepeats = 5;

// The paper's ratio method assumes the load program and the scope contend
// for ONE processor (a 600 MHz P-III).  On a multicore host the spinner
// would land on an idle core and measure nothing, so pin the whole process
// to a single CPU.
void PinToOneCpu() {
  cpu_set_t set;
  CPU_ZERO(&set);
  // The last CPU tends to carry less unrelated host load than CPU 0.
  long cpus = sysconf(_SC_NPROCESSORS_ONLN);
  CPU_SET(cpus > 0 ? static_cast<int>(cpus - 1) : 0, &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) {
    std::printf("warning: could not pin to one CPU; numbers will be noisy\n");
  }
}

// Measures spinner throughput while the given scope setup polls for
// kMeasureMs on a real-clock loop.  signals == 0 means "no scope" baseline.
gscope::LoadResult MeasureWithScope(int signals, int64_t period_ms, int canvas_renders_hz) {
  gscope::MainLoop loop;
  gscope::Scope scope(&loop, {.name = "overhead", .width = 512, .height = 256});

  // Polled integers, like the paper's "simple application that polls and
  // displays several different integer values."
  std::vector<int32_t> values(static_cast<size_t>(signals > 0 ? signals : 1), 0);
  for (int i = 0; i < signals; ++i) {
    scope.AddSignal({.name = "sig" + std::to_string(i), .source = &values[static_cast<size_t>(i)]});
  }

  gscope::Canvas canvas(560, 320);
  gscope::ScopeView view(&scope);
  if (signals > 0) {
    scope.SetPollingMode(period_ms);
    scope.StartPolling();
    // A display repaint path, so "displaying" is part of the cost as in the
    // paper's GUI.  Repaint at a screen-like rate, independent of polling.
    if (canvas_renders_hz > 0) {
      loop.AddTimeoutMs(1000 / canvas_renders_hz, [&view, &canvas, &values]() {
        for (size_t i = 0; i < values.size(); ++i) {
          values[i] = (values[i] + static_cast<int32_t>(i) + 1) % 100;
        }
        view.Render(&canvas);
        return true;
      });
    }
  }

  gscope::BackgroundSpinner spinner;
  spinner.Start();
  loop.RunForMs(kMeasureMs);
  return spinner.Stop();
}

}  // namespace

// Best-of-N spin rate: the max across repetitions approximates the run with
// the least interference from unrelated host load, while still paying the
// scope's own periodic cost (which is present in every window).
// One table row: alternates idle-baseline and loaded windows kRepeats times
// and takes the best (least-interfered) rate of each.  Alternation plus
// best-of filters both slow drift and transient host load.
double MeasureOverhead(int signals, int64_t period_ms, int repaint_hz, double* loaded_rate) {
  double baseline = 0.0;
  double loaded = 0.0;
  for (int i = 0; i < kRepeats; ++i) {
    baseline = std::max(baseline, MeasureWithScope(0, 0, 0).IterationsPerSecond());
    loaded = std::max(loaded,
                      MeasureWithScope(signals, period_ms, repaint_hz).IterationsPerSecond());
  }
  if (loaded_rate != nullptr) {
    *loaded_rate = loaded;
  }
  if (baseline <= 0.0) {
    return 0.0;
  }
  double ratio = 1.0 - loaded / baseline;
  return ratio < 0.0 ? 0.0 : ratio;
}

int main() {
  std::printf("E1 / Section 4.6: gscope CPU overhead via the load-program ratio method\n");
  std::printf("measure window: %lld ms per configuration, per-row idle baselines\n\n",
              (long long)kMeasureMs);
  PinToOneCpu();

  std::printf("--- polling period sweep (8 signals, 10 Hz repaint) ---\n");
  std::printf("%-12s %-14s %-10s %s\n", "period(ms)", "iters/s", "overhead", "paper");
  struct PeriodRow {
    int64_t period_ms;
    const char* paper;
  };
  const PeriodRow period_rows[] = {
      {10, "< 2%"},
      {20, "-"},
      {50, "< 1%"},
      {100, "-"},
  };
  double overhead_10 = 0.0;
  double overhead_50 = 0.0;
  for (const auto& row : period_rows) {
    double rate = 0.0;
    double overhead = MeasureOverhead(8, row.period_ms, 10, &rate);
    if (row.period_ms == 10) {
      overhead_10 = overhead;
    }
    if (row.period_ms == 50) {
      overhead_50 = overhead;
    }
    std::printf("%-12lld %-14.3g %-9.3f%% %s\n", (long long)row.period_ms, rate,
                overhead * 100.0, row.paper);
  }

  std::printf("\n--- signal count sweep (10 ms period, 10 Hz repaint) ---\n");
  std::printf("%-10s %-14s %-10s\n", "signals", "iters/s", "overhead");
  double overhead_1sig = -1.0;
  double overhead_64sig = -1.0;
  for (int signals : {1, 2, 4, 8, 16, 32, 64}) {
    double rate = 0.0;
    double overhead = MeasureOverhead(signals, 10, 10, &rate);
    if (signals == 1) {
      overhead_1sig = overhead;
    }
    if (signals == 64) {
      overhead_64sig = overhead;
    }
    std::printf("%-10d %-14.3g %-9.3f%%\n", signals, rate, overhead * 100.0);
  }
  double per_signal = (overhead_64sig - overhead_1sig) / 63.0;

  std::printf("\n--- summary vs. paper ---\n");
  std::printf("overhead @10ms: %.3f%%   (paper: < 2%% on 600 MHz P-III)\n", overhead_10 * 100);
  std::printf("overhead @50ms: %.3f%%   (paper: < 1%%)\n", overhead_50 * 100);
  std::printf("per-signal increment: %.4f%%/signal (paper: 0.02-0.05%%; on a modern\n"
              "  CPU this is below the noise floor of the ratio method)\n",
              per_signal * 100);
  std::printf("shape check: overhead(10ms) >= overhead(50ms): %s\n",
              overhead_10 >= overhead_50 ? "yes" : "NO (noise - rerun)");
  std::printf("shape check: period effect dominates signal count: %s\n",
              (overhead_10 - overhead_50) > per_signal * 10 ? "yes" : "marginal");
  return 0;
}
