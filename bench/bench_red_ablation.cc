// Ablation: RED/ECN configuration vs. droptail at identical load.
//
// DESIGN.md calls out the queue discipline as the design choice behind the
// Figure 4/5 contrast.  This bench sweeps it: droptail (the Figure 4
// router) and RED/ECN at several (min,max) threshold pairs, all with the
// same 8 -> 16 elephants workload, printing where the timeout/throughput
// crossover falls.
#include <cstdio>

#include "netsim/mxtraf.h"

namespace {

struct Row {
  const char* label;
  bool red;
  double min_th;
  double max_th;
};

void RunRow(const Row& row) {
  gscope::Simulator sim;
  gscope::MxtrafConfig config;
  if (row.red) {
    config.EnableEcnRed();
    config.forward.queue.red.min_threshold = row.min_th;
    config.forward.queue.red.max_threshold = row.max_th;
  }
  gscope::Mxtraf traf(&sim, config);
  traf.SetElephants(8);
  sim.RunForMs(10'000);
  traf.SetElephants(16);
  sim.RunForMs(10'000);

  const gscope::QueueStats& q = traf.bottleneck_stats();
  double goodput_mbps = static_cast<double>(traf.TotalBytesAcked()) * 8.0 / 20.0 / 1e6;
  std::printf("%-18s %9lld %9lld %9lld %9lld %10.3f\n", row.label,
              (long long)traf.TotalTimeouts(), (long long)(q.dropped_tail + q.dropped_red),
              (long long)q.marked_ecn, (long long)traf.TotalFastRetransmits(), goodput_mbps);
}

}  // namespace

int main() {
  std::printf("Ablation: router queue discipline under the Figures 4/5 workload\n");
  std::printf("(8 elephants for 10 s, then 16 for 10 s; 2 Mbit/s bottleneck)\n\n");
  std::printf("%-18s %9s %9s %9s %9s %10s\n", "discipline", "timeouts", "drops", "marks",
              "fast-rtx", "goodput(Mb/s)");

  const Row rows[] = {
      {"droptail", false, 0, 0},
      {"red/ecn 2/6", true, 2, 6},
      {"red/ecn 4/12", true, 4, 12},
      {"red/ecn 8/20", true, 8, 20},
      {"red/ecn 12/28", true, 12, 28},
  };
  for (const Row& row : rows) {
    RunRow(row);
  }

  std::printf("\nreading: droptail converts congestion into drops -> timeouts; RED/ECN\n"
              "with sane thresholds converts it into marks -> no timeouts.  Thresholds\n"
              "near the physical limit (12/28 vs. limit 30) leave no headroom for\n"
              "bursts and drift back toward droptail behaviour.\n");
  return 0;
}
