// Experiment E8 (part): per-sample scope costs and the Section 4.2 ablation
// (aggregation vs. sample-and-hold capture) plus the filter-alpha sweep.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/filter.h"
#include "core/sample_hold.h"
#include "core/scope.h"
#include "render/scope_view.h"
#include "runtime/clock.h"

namespace {

// One poll tick across N INTEGER signals: the paper's overhead inner loop.
void BM_ScopeTick_IntegerSignals(benchmark::State& state) {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::Scope scope(&loop, {.name = "bench", .width = 512});
  int signals = static_cast<int>(state.range(0));
  std::vector<int32_t> values(static_cast<size_t>(signals), 7);
  for (int i = 0; i < signals; ++i) {
    scope.AddSignal({.name = "s" + std::to_string(i), .source = &values[static_cast<size_t>(i)]});
  }
  for (auto _ : state) {
    scope.TickOnce();
    benchmark::DoNotOptimize(scope.counters().samples);
  }
  state.SetItemsProcessed(state.iterations() * signals);
}
BENCHMARK(BM_ScopeTick_IntegerSignals)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_ScopeTick_FuncSignals(benchmark::State& state) {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::Scope scope(&loop, {.name = "bench", .width = 512});
  int signals = static_cast<int>(state.range(0));
  for (int i = 0; i < signals; ++i) {
    scope.AddSignal({.name = "s" + std::to_string(i),
                     .source = gscope::MakeFunc([i]() { return static_cast<double>(i); })});
  }
  for (auto _ : state) {
    scope.TickOnce();
  }
  state.SetItemsProcessed(state.iterations() * signals);
}
BENCHMARK(BM_ScopeTick_FuncSignals)->Arg(8)->Arg(64);

// Filter-alpha ablation: the filter cost is alpha-independent (one multiply-
// add), shown by a flat sweep.
void BM_FilterSweep(benchmark::State& state) {
  double alpha = static_cast<double>(state.range(0)) / 100.0;
  gscope::LowPassFilter filter(alpha);
  double x = 0.0;
  for (auto _ : state) {
    x += 1.0;
    benchmark::DoNotOptimize(filter.Apply(x));
  }
}
BENCHMARK(BM_FilterSweep)->Arg(0)->Arg(25)->Arg(50)->Arg(90);

// Section 4.2 ablation: capturing a burst of events via aggregation (push
// into an EventAggregator, drain once per poll) vs. sample-and-hold (only
// the last event survives the interval).  Aggregation pays per event;
// sample-and-hold pays per update but loses intermediate extremes.
void BM_EventCapture_Aggregation(benchmark::State& state) {
  gscope::EventAggregator agg(gscope::AggregateKind::kMaximum);
  int events_per_poll = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < events_per_poll; ++i) {
      agg.Push(static_cast<double>(i));
    }
    benchmark::DoNotOptimize(agg.Drain(gscope::MillisToNanos(10)));
  }
  state.SetItemsProcessed(state.iterations() * events_per_poll);
}
BENCHMARK(BM_EventCapture_Aggregation)->Arg(1)->Arg(16)->Arg(256);

void BM_EventCapture_SampleAndHold(benchmark::State& state) {
  gscope::SampleAndHold hold;
  int events_per_poll = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < events_per_poll; ++i) {
      hold.Update(static_cast<double>(i));
    }
    benchmark::DoNotOptimize(hold.Read());
  }
  state.SetItemsProcessed(state.iterations() * events_per_poll);
}
BENCHMARK(BM_EventCapture_SampleAndHold)->Arg(1)->Arg(16)->Arg(256);

// Buffered-signal path: push + delayed drain through the scope buffer.
void BM_BufferedPushDrain(benchmark::State& state) {
  gscope::SampleBuffer buffer;
  int64_t t = 0;
  for (auto _ : state) {
    ++t;
    buffer.Push({t, 1.0, "s"}, t, 0);
    benchmark::DoNotOptimize(buffer.DrainDisplayable(t, 0));
  }
}
BENCHMARK(BM_BufferedPushDrain);

// Full widget repaint, the display half of the paper's overhead.
void BM_ScopeViewRender(benchmark::State& state) {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::Scope scope(&loop, {.name = "bench", .width = 512});
  std::vector<int32_t> values(8, 0);
  for (int i = 0; i < 8; ++i) {
    scope.AddSignal({.name = "s" + std::to_string(i), .source = &values[static_cast<size_t>(i)]});
  }
  for (int tick = 0; tick < 512; ++tick) {
    for (size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<int32_t>((tick + 13 * i) % 100);
    }
    scope.TickOnce();
  }
  gscope::Canvas canvas(560, 320);
  gscope::ScopeView view(&scope);
  for (auto _ : state) {
    view.Render(&canvas);
    benchmark::DoNotOptimize(canvas.data().data());
  }
}
BENCHMARK(BM_ScopeViewRender);

}  // namespace
