// Experiment E6 - Section 4.5, "Polling Granularity".
//
// Paper claims for Linux 2.4 / GTK timeouts:
//   - the kernel wakes processes at the timer-interrupt granularity (10 ms),
//     so gscope's maximum polling frequency is 100 Hz;
//   - scheduling latencies under heavy load cause *lost* timeouts;
//   - gscope tracks lost timeouts and advances the scope refresh so the
//     x-axis stays truthful.
//
// This bench measures (a) the achieved period for requested periods from
// 1 ms to 100 ms on the host (modern kernels are tickless, so the floor is
// far below 10 ms - the *existence* of a floor and the ordering is the
// shape), (b) lost-timeout counts under an induced CPU storm, and (c) that
// the trace advances by lost+1 columns, keeping time honest.
#include <cstdio>
#include <thread>
#include <vector>

#include "gscope.h"
#include "load/load_meter.h"

namespace {

struct GranularityRow {
  int64_t requested_ms;
  double achieved_ms;
  double mean_latency_us;
  double max_latency_us;
  int64_t fired;
  int64_t lost;
};

GranularityRow MeasurePeriod(int64_t period_ms, int64_t duration_ms, int storm_threads) {
  gscope::MainLoop loop;
  std::vector<std::unique_ptr<gscope::BackgroundSpinner>> storm;
  for (int i = 0; i < storm_threads; ++i) {
    storm.push_back(std::make_unique<gscope::BackgroundSpinner>());
    storm.back()->Start();
  }

  gscope::Nanos first_ns = 0;
  gscope::Nanos last_ns = 0;
  int64_t fired = 0;
  gscope::SourceId id = loop.AddTimeoutMs(
      period_ms, [&](const gscope::TimeoutTick& tick) {
        if (fired == 0) {
          first_ns = tick.actual_ns;
        }
        last_ns = tick.actual_ns;
        ++fired;
        return true;
      });
  loop.RunForMs(duration_ms);
  const gscope::TimerStats* stats = loop.StatsFor(id);

  GranularityRow row{};
  row.requested_ms = period_ms;
  row.fired = fired;
  row.lost = stats != nullptr ? stats->lost : 0;
  row.achieved_ms = fired > 1 ? gscope::NanosToMillis(last_ns - first_ns) /
                                    static_cast<double>(fired - 1)
                              : 0.0;
  if (stats != nullptr) {
    row.mean_latency_us = stats->MeanLatencyNs() / 1000.0;
    row.max_latency_us = static_cast<double>(stats->max_latency_ns) / 1000.0;
  }
  for (auto& s : storm) {
    s->Stop();
  }
  return row;
}

}  // namespace

int main() {
  std::printf("E6 / Section 4.5: polling granularity and lost-timeout tracking\n\n");

  std::printf("--- requested vs achieved period (idle system) ---\n");
  std::printf("%-14s %-14s %-16s %-16s %-8s %-6s\n", "requested(ms)", "achieved(ms)",
              "mean lat(us)", "max lat(us)", "fired", "lost");
  for (int64_t period : {1, 2, 5, 10, 20, 50, 100}) {
    GranularityRow row = MeasurePeriod(period, /*duration_ms=*/1000, /*storm_threads=*/0);
    std::printf("%-14lld %-14.3f %-16.1f %-16.1f %-8lld %-6lld\n", (long long)row.requested_ms,
                row.achieved_ms, row.mean_latency_us, row.max_latency_us, (long long)row.fired,
                (long long)row.lost);
  }
  std::printf("(paper: 10 ms floor on Linux 2.4 -> max 100 Hz; modern kernels are\n"
              " tickless so the floor is lower, but achieved >= requested must hold)\n");

  int storm = static_cast<int>(std::thread::hardware_concurrency()) * 2;
  std::printf("\n--- lost timeouts under load (%d spinner threads) ---\n", storm);
  std::printf("%-14s %-14s %-16s %-8s %-6s %-10s\n", "requested(ms)", "achieved(ms)",
              "max lat(us)", "fired", "lost", "loss ratio");
  for (int64_t period : {1, 5, 10, 50}) {
    GranularityRow row = MeasurePeriod(period, /*duration_ms=*/1000, storm);
    double scheduled = static_cast<double>(row.fired + row.lost);
    std::printf("%-14lld %-14.3f %-16.1f %-8lld %-6lld %-10.4f\n", (long long)row.requested_ms,
                row.achieved_ms, row.max_latency_us, (long long)row.fired, (long long)row.lost,
                scheduled > 0 ? static_cast<double>(row.lost) / scheduled : 0.0);
  }

  // --- lost-timeout compensation keeps the x-axis honest (ablation) ---
  // Simulate a 100-tick run where a third of the ticks stall, with a
  // SimClock so the numbers are exact: the trace must contain exactly
  // elapsed/period columns either way.
  std::printf("\n--- compensation ablation (SimClock, deterministic) ---\n");
  {
    gscope::SimClock clock;
    gscope::MainLoop loop(&clock);
    gscope::Scope scope(&loop, {.name = "comp", .width = 512});
    int32_t v = 7;
    gscope::SignalId sig = scope.AddSignal({.name = "v", .source = &v});
    scope.SetPollingMode(10);
    scope.StartPolling();
    // 40 normal ticks, then a 200 ms stall, then 40 more ticks.
    loop.RunForMs(400);
    clock.AdvanceMs(200);  // dispatcher stalled: deadlines pile up
    loop.RunForMs(400);
    const gscope::Trace* trace = scope.TraceFor(sig);
    int64_t expected_columns = 1000 / 10;
    std::printf("elapsed 1000 ms at 10 ms/column: trace has %zu columns "
                "(expected ~%lld), %lld synthesized for %lld lost ticks\n",
                trace->size(), (long long)expected_columns,
                (long long)trace->synthesized_count(),
                (long long)scope.counters().lost_ticks);
    bool honest = trace->size() >= static_cast<size_t>(expected_columns - 2);
    std::printf("x-axis honesty with compensation: %s\n", honest ? "YES" : "NO");
    std::printf("without compensation the stall would eat %lld columns and the\n"
                "x-axis would silently compress (the Section 4.5 problem).\n",
                (long long)scope.counters().lost_ticks);
  }
  return 0;
}
