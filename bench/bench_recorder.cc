// Flight-recorder measurement (ROADMAP item 3 acceptance): (1) raw ExtentLog
// append throughput — the zero-allocation staged-column path, auto-sealing
// 64 KiB extents as they fill; (2) capture-while-serving — the same
// display-scope drain workload as bench_drain run with and without a Recorder
// registered on the router, interleaved in one process (the BENCH_drain
// methodology), where the acceptance bar is a <= 5% throughput delta; and
// (3) Open()-time recovery cost against a torn log as the ring grows, since
// recovery scans and CRC-validates every slot.
//
// Usage: bench_recorder [tuples_per_config] [rounds]
//   (defaults 200000 and 3; smoke runs pass less)
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cinttypes>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "gscope.h"

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

double ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

double MonotonicSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string BenchPath(const char* tag) {
  return "/tmp/gscope_bench_recorder_" + std::string(tag) + "_" +
         std::to_string(getpid()) + ".log";
}

constexpr int kSignals = 8;

// ---- part 1: raw append throughput ----------------------------------------

double RunRawAppend(int num_signals, int64_t tuples) {
  const std::string path = BenchPath("raw");
  std::remove(path.c_str());
  gscope::ExtentLog log({.extent_bytes = 64 * 1024, .max_extents = 64});
  if (!log.Open(path)) {
    std::fprintf(stderr, "FAIL: raw append log open\n");
    std::exit(1);
  }
  std::vector<std::string> names;
  for (int s = 0; s < num_signals; ++s) {
    names.push_back("raw" + std::to_string(s));
  }
  // Warm-up: intern every name, grow the column and seal scratches.
  for (int s = 0; s < num_signals; ++s) {
    log.Append(names[s], 0, 0.0);
  }
  log.SealNow();

  double cpu_start = ProcessCpuSeconds();
  int64_t t = 1;
  for (int64_t i = 0; i < tuples; ++i) {
    log.Append(names[i % num_signals], t, static_cast<double>(i));
    if (i % num_signals == num_signals - 1) {
      ++t;
    }
  }
  log.SealNow();
  double cpu = ProcessCpuSeconds() - cpu_start;

  const auto& st = log.stats();
  if (st.appends != tuples + num_signals || log.degraded()) {
    std::fprintf(stderr, "FAIL: raw append lost records (%" PRId64 "/%" PRId64 ")\n",
                 st.appends, tuples + num_signals);
    std::exit(1);
  }
  log.Close();
  std::remove(path.c_str());
  return cpu > 0 ? static_cast<double>(tuples) / cpu : 0;
}

// ---- part 2: capture while serving ----------------------------------------

struct CaptureRunResult {
  int64_t tuples = 0;
  double cpu_seconds = 0.0;
  double tuples_per_cpu_sec() const { return cpu_seconds > 0 ? tuples / cpu_seconds : 0; }
};

// The bench_drain serving workload — `num_scopes` coalescing display scopes
// fed `batch` samples per signal per 5 ms SimClock tick through one inline
// router — with an optional Recorder registered as one more router target.
// What the serving side pays for capture is the router's span enqueue into
// the recorder scope (the recorder's own drain/extent/pwrite work runs off
// the serving loops in production), so the measured window per tick is
// exactly the serving work: push + Flush + serving-scope drains.  The
// recorder is driven in external-loop mode on this same thread and its scope
// is ticked BETWEEN measured windows — deterministic single-thread
// interleaving, because a <= 5% bar is far below the noise floor of
// cross-thread pacing (idle-paced A/B arms measure DVFS wake-up states, and
// spin-paced arms measure scheduler migration, not capture cost).  Ticking
// the recorder every tick also bounds its span queue to the displayability
// window, preserving the router's block-pool reuse exactly as a production
// (real-time, own-thread) recorder does.
CaptureRunResult RunCapture(int num_scopes, int batch, int ticks, bool record) {
  gscope::SimClock clock;
  gscope::MainLoop loop(&clock);
  gscope::IngestRouter router({.fanout_shards = 1, .worker_threads = 0});

  std::vector<std::unique_ptr<gscope::Scope>> scopes;
  for (int i = 0; i < num_scopes; ++i) {
    scopes.push_back(std::make_unique<gscope::Scope>(
        &loop, gscope::ScopeOptions{.name = "sink" + std::to_string(i), .width = 128}));
    scopes.back()->SetPollingMode(5);
    scopes.back()->StartPolling();
    router.AddScope(scopes.back().get());
  }

  const std::string path = BenchPath("capture");
  std::remove(path.c_str());
  gscope::Recorder recorder({.log = {.extent_bytes = 64 * 1024, .max_extents = 64},
                             .poll_period_ms = 5,
                             .loop = &loop});
  if (record) {
    if (!recorder.Start(path)) {
      std::fprintf(stderr, "FAIL: recorder start\n");
      std::exit(1);
    }
    // Process the queued InstallOnLoop so the capture scope starts polling
    // (its clock epoch must be live before samples arrive).
    loop.RunForMs(1);
    router.AddScope(recorder.scope());
  }

  std::vector<std::string> names;
  for (int s = 0; s < kSignals; ++s) {
    names.push_back("sig" + std::to_string(s));
  }

  // Warm-up: build routes, pool blocks, intern recorder names.
  for (int warm = 0; warm < 3; ++warm) {
    int64_t now = scopes[0]->NowMs();
    for (const std::string& name : names) {
      for (int b = 0; b < batch; ++b) {
        router.Append(name, now, static_cast<double>(b));
      }
    }
    router.Flush();
    clock.AdvanceMs(5);
    for (auto& scope : scopes) {
      scope->TickOnce();
    }
    if (record) {
      recorder.scope()->TickOnce();
    }
  }

  double cpu = 0;
  for (int t = 0; t < ticks; ++t) {
    double cpu_start = ThreadCpuSeconds();
    int64_t now = scopes[0]->NowMs();
    for (const std::string& name : names) {
      for (int b = 0; b < batch; ++b) {
        router.Append(name, now, static_cast<double>(b));
      }
    }
    router.Flush();
    clock.AdvanceMs(5);
    for (auto& scope : scopes) {
      scope->TickOnce();
    }
    cpu += ThreadCpuSeconds() - cpu_start;
    if (record) {
      recorder.scope()->TickOnce();
    }
  }
  CaptureRunResult result;
  result.cpu_seconds = cpu;
  result.tuples = static_cast<int64_t>(ticks) * kSignals * batch;

  // Sanity: serving unharmed, and the recorder captured every routed sample
  // (warm-up included) without degrading.  The displayability window means
  // the last few ticks are still queued — advance the sim past them first.
  for (auto& scope : scopes) {
    for (const std::string& name : names) {
      gscope::SignalId id = scope->FindSignal(name);
      double v = scope->LatestValue(id).value_or(-1);
      if (v != static_cast<double>(batch - 1)) {
        std::fprintf(stderr, "FAIL: %s last value %.1f != %d\n", name.c_str(), v,
                     batch - 1);
        std::exit(1);
      }
    }
  }
  if (record) {
    int64_t expect = static_cast<int64_t>(ticks + 3) * kSignals * batch;
    for (int drain = 0; drain < 200; ++drain) {
      clock.AdvanceMs(5);
      // External-loop FlushNow runs inline: drain + seal + stats publish.
      recorder.FlushNow();
      if (recorder.stats().samples_captured.load() >= expect) {
        break;
      }
    }
    int64_t captured = recorder.stats().samples_captured.load();
    if (captured != expect || recorder.stats().degraded.load() != 0) {
      std::fprintf(stderr,
                   "FAIL: capture lost samples (%" PRId64 "/%" PRId64 ", degraded %" PRId64
                   ")\n",
                   captured, expect, recorder.stats().degraded.load());
      std::exit(1);
    }
    router.RemoveScope(recorder.scope());
    recorder.Stop();
  }
  std::remove(path.c_str());
  return result;
}

// ---- part 3: recovery time ------------------------------------------------

// Builds a log of `extents` sealed 4 KiB extents plus a torn garbage tail,
// then measures ExtentLog::Open() — the scan-validate-truncate pass.
double RunRecovery(int extents, int* recovered) {
  const std::string path = BenchPath("recover");
  std::remove(path.c_str());
  constexpr size_t kExtentBytes = 4096;
  {
    gscope::ExtentLog log({.extent_bytes = kExtentBytes,
                           .max_extents = static_cast<size_t>(extents)});
    if (!log.Open(path)) {
      std::fprintf(stderr, "FAIL: recovery log open\n");
      std::exit(1);
    }
    int64_t t = 0;
    while (log.stats().extents_sealed < extents) {
      log.Append("a", t, 1.0);
      log.Append("b", t, 2.0);
      ++t;
    }
    log.Close();
  }
  // Torn tail: half a slot of garbage past the last sealed extent.
  {
    FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) {
      std::fprintf(stderr, "FAIL: recovery tail append\n");
      std::exit(1);
    }
    std::string garbage(kExtentBytes / 2, '\x5a');
    std::fwrite(garbage.data(), 1, garbage.size(), f);
    std::fclose(f);
  }
  double wall_start = MonotonicSeconds();
  gscope::ExtentLog log({.extent_bytes = kExtentBytes,
                         .max_extents = static_cast<size_t>(extents)});
  if (!log.Open(path)) {
    std::fprintf(stderr, "FAIL: recovery reopen\n");
    std::exit(1);
  }
  double wall = MonotonicSeconds() - wall_start;
  const auto& st = log.stats();
  if (st.extents_recovered != extents || st.extents_truncated != 1) {
    std::fprintf(stderr, "FAIL: recovery found %" PRId64 "/%d extents\n",
                 st.extents_recovered, extents);
    std::exit(1);
  }
  *recovered = static_cast<int>(st.extents_recovered);
  log.Close();
  std::remove(path.c_str());
  return wall * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  int total = 200'000;
  int rounds = 3;
  if (argc > 1) {
    total = std::atoi(argv[1]);
    if (total <= 0) {
      total = 200'000;
    }
  }
  if (argc > 2) {
    rounds = std::max(1, std::atoi(argv[2]));
  }

  std::printf("Flight recorder: %d tuples per config, best of %d interleaved rounds\n\n",
              total, rounds);

  std::printf("raw ExtentLog append (64 KiB extents, auto-seal)\n");
  std::printf("%-9s %-16s\n", "signals", "tuples/cpu-s");
  for (int num_signals : {1, 8, 64}) {
    double best = 0;
    for (int r = 0; r < rounds; ++r) {
      best = std::max(best, RunRawAppend(num_signals, total));
    }
    std::printf("%-9d %-16.0f\n", num_signals, best);
  }

  std::printf("\ncapture while serving (%d signals, batch/tick varies)\n", kSignals);
  std::printf("%-7s %-6s %-14s %-14s %-9s\n", "scopes", "batch", "serve/cpu-s",
              "+rec/cpu-s", "ratio");
  double worst_ratio = 1.0;
  for (int num_scopes : {4, 16}) {
    for (int batch : {64, 256}) {
      int ticks = std::max(3, total / (kSignals * batch));
      double best_serve = 0, best_record = 0;
      for (int r = 0; r < rounds; ++r) {
        best_serve = std::max(
            best_serve, RunCapture(num_scopes, batch, ticks, false).tuples_per_cpu_sec());
        best_record = std::max(
            best_record, RunCapture(num_scopes, batch, ticks, true).tuples_per_cpu_sec());
      }
      double ratio = best_serve > 0 ? best_record / best_serve : 0;
      worst_ratio = std::min(worst_ratio, ratio);
      std::printf("%-7d %-6d %-14.0f %-14.0f %-9.3f\n", num_scopes, batch, best_serve,
                  best_record, ratio);
    }
  }

  std::printf("\nrecovery (4 KiB extents, torn half-slot tail)\n");
  std::printf("%-9s %-12s %-12s\n", "extents", "open-ms", "recovered");
  for (int extents : {64, 512, 2048}) {
    double best = 1e9;
    int recovered = 0;
    for (int r = 0; r < rounds; ++r) {
      best = std::min(best, RunRecovery(extents, &recovered));
    }
    std::printf("%-9d %-12.3f %-12d\n", extents, best, recovered);
  }

  std::printf("\nacceptance: capture-while-serving worst ratio %.3f (bar: >= 0.95 —\n"
              "the recorder's every-sample tap must not disable drain coalescing\n"
              "for the serving scopes; its own cost rides the recorder scope).\n",
              worst_ratio);
  return 0;
}
