// Experiment E2 - Figure 4: "A snapshot of the GtkScope widget showing TCP
// behavior."
//
// Paper: elephants stepped 8 -> 16 roughly halfway through the x-axis; the
// CWND signal of one long-lived TCP flow repeatedly collapses to 1 (the
// lowest value on the graph corresponds to CWND = 1, each such event is a
// retransmission timeout).
#include <cstdio>

#include "fig_experiment.h"

int main() {
  std::printf("E2 / Figure 4: TCP elephants through a droptail router\n\n");
  gscope_bench::FigResult result =
      gscope_bench::RunFigExperiment(/*ecn=*/false, "fig4_tcp.ppm");

  gscope_bench::PrintSeries("CWND series", result.cwnd_series, 50);
  gscope_bench::PrintSeries("elephants series", result.elephant_series, 50);

  std::printf("\n--- Figure 4 shape checks ---\n");
  std::printf("retransmission timeouts:   %lld   (paper: TCP hits CWND=1 'several times')\n",
              (long long)result.timeouts);
  std::printf("pixels at CWND floor:      %lld\n", (long long)result.cwnd_floor_hits);
  std::printf("min CWND (segments):       %.2f   (paper: 1)\n", result.min_cwnd);
  std::printf("fast retransmits:          %lld\n", (long long)result.fast_retransmits);
  std::printf("router drops:              %lld   (droptail: losses, no marks)\n",
              (long long)result.router_drops);
  std::printf("router ECN marks:          %lld\n", (long long)result.router_marks);
  std::printf("elephants first half:      %.0f -> second half: %.0f (paper: 8 -> 16)\n",
              result.elephant_series.front(), result.elephant_series.back());

  bool shape_ok = result.timeouts > 0 && result.min_cwnd <= 1.5 &&
                  result.elephant_series.front() == 8.0 &&
                  result.elephant_series.back() == 16.0;
  std::printf("\nfigure-4 shape reproduced: %s\n", shape_ok ? "YES" : "NO");
  return shape_ok ? 0 : 1;
}
