// Fan-out scaling measurement: tuple streaming throughput as the number of
// display scopes grows.  The paper's server "displays these BUFFER signals
// to one or more scopes"; this bench quantifies what each additional scope
// costs the ingest path.  With the sharded signal-routed bus the per-tuple
// work is parse + one shared-block append, and each scope costs one O(1)
// span hand-off per chunk - so tuples/cpu-sec should stay near-flat from 1
// to 64 scopes instead of degrading ~linearly.
//
// Methodology matches bench_net_stream (BENCH_ingest.json): loopback
// clients on one I/O-driven loop, 128 tuples per client per idle round,
// CPU-second rates as the primary metric on shared hosts.  Usage:
//   bench_fanout [total_tuples]   (default 100000; smoke runs pass less)
#include <ctime>
#include <cstdio>
#include <cstdlib>

#include "gscope.h"

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct FanoutRunResult {
  int64_t tuples_received = 0;
  int64_t dropped_late = 0;
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  double tuples_per_sec() const { return seconds > 0 ? tuples_received / seconds : 0; }
  double tuples_per_cpu_sec() const {
    return cpu_seconds > 0 ? tuples_received / cpu_seconds : 0;
  }
};

FanoutRunResult RunFanout(int num_scopes, int clients, int tuples_per_client,
                          int64_t delay_ms) {
  gscope::MainLoop loop;

  std::vector<std::unique_ptr<gscope::Scope>> scopes;
  for (int i = 0; i < num_scopes; ++i) {
    scopes.push_back(std::make_unique<gscope::Scope>(
        &loop, gscope::ScopeOptions{.name = "sink" + std::to_string(i), .width = 128}));
    scopes.back()->SetPollingMode(5);
    scopes.back()->SetDelayMs(delay_ms);
  }

  gscope::StreamServer server(&loop, scopes.front().get());
  for (int i = 1; i < num_scopes; ++i) {
    server.AddScope(scopes[static_cast<size_t>(i)].get());
  }
  if (!server.Listen(0)) {
    return {};
  }
  for (auto& scope : scopes) {
    scope->StartPolling();
  }
  gscope::Scope& lead = *scopes.front();

  std::vector<std::unique_ptr<gscope::StreamClient>> conns;
  for (int i = 0; i < clients; ++i) {
    conns.push_back(std::make_unique<gscope::StreamClient>(&loop, 16u << 20));
    if (!conns.back()->Connect(server.port())) {
      return {};
    }
  }

  gscope::SteadyClock clock;
  gscope::Nanos start = clock.NowNs();
  double cpu_start = ProcessCpuSeconds();

  // Feed from a loop source so everything stays single-threaded I/O driven;
  // batches per idle round stress the per-tuple ingest + fan-out path.
  constexpr int kBatch = 128;
  std::vector<std::string> names;
  for (int c = 0; c < clients; ++c) {
    names.push_back("c" + std::to_string(c));
  }
  int sent_rounds = 0;
  loop.AddIdle([&]() {
    if (sent_rounds >= tuples_per_client) {
      return false;
    }
    int batch = std::min(kBatch, tuples_per_client - sent_rounds);
    int64_t now = lead.NowMs();
    for (int c = 0; c < clients; ++c) {
      for (int b = 0; b < batch; ++b) {
        conns[static_cast<size_t>(c)]->SendTuple(
            {now, static_cast<double>(sent_rounds + b), names[static_cast<size_t>(c)]});
      }
    }
    sent_rounds += batch;
    return true;
  });

  int64_t total_expected = static_cast<int64_t>(clients) * tuples_per_client;
  gscope::Nanos deadline = clock.NowNs() + gscope::MillisToNanos(30'000);
  while (clock.NowNs() < deadline) {
    loop.Iterate(false);
    if (sent_rounds >= tuples_per_client &&
        server.stats().tuples + server.stats().parse_errors >= total_expected) {
      break;
    }
  }

  FanoutRunResult result;
  result.tuples_received = server.stats().tuples;
  result.dropped_late = server.stats().dropped_late;
  result.seconds = gscope::NanosToSeconds(clock.NowNs() - start);
  result.cpu_seconds = ProcessCpuSeconds() - cpu_start;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int total = 100'000;
  if (argc > 1) {
    total = std::atoi(argv[1]);
    if (total <= 0) {
      total = 100'000;
    }
  }
  constexpr int kClients = 4;
  std::printf("Fan-out scaling: %d loopback clients, %d tuples total, delay 50 ms\n\n", kClients,
              total);
  std::printf("%-8s %-12s %-14s %-16s %-14s %-12s\n", "scopes", "received", "tuples/sec",
              "tuples/cpu-sec", "per-scope-cpu", "dropped late");
  for (int num_scopes : {1, 4, 16, 64}) {
    FanoutRunResult r = RunFanout(num_scopes, kClients, total / kClients, /*delay_ms=*/50);
    std::printf("%-8d %-12lld %-14.0f %-16.0f %-14.0f %-12lld\n", num_scopes,
                (long long)r.tuples_received, r.tuples_per_sec(), r.tuples_per_cpu_sec(),
                r.tuples_per_cpu_sec() * num_scopes, (long long)r.dropped_late);
  }
  std::printf("\npaper behaviour: the server displays BUFFER signals to one or more\n"
              "scopes; ingest cost should scale with the batch, not batch x scopes.\n");
  return 0;
}
