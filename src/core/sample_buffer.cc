#include "core/sample_buffer.h"

#include <algorithm>
#include <limits>

namespace gscope {
namespace {

// Below this capacity a single shard keeps overflow eviction globally
// oldest-first (and the sharding would not buy contention relief anyway).
constexpr size_t kShardingThreshold = 4096;
constexpr size_t kDefaultShards = 8;
constexpr size_t kMaxShards = kDefaultShards;

size_t PickShardCount(size_t max_samples) {
  return max_samples < kShardingThreshold ? 1 : kDefaultShards;
}

}  // namespace

void LastWinsTable::Begin() {
  entries_.clear();
  ++gen_;
  if (gen_ == 0) {
    // Generation counter wrapped: stale slot_gen_ stamps could alias the new
    // generation.  Reset once every 2^32 ticks — never in steady state.
    std::fill(slot_gen_.begin(), slot_gen_.end(), 0u);
    gen_ = 1;
  }
}

void LastWinsTable::Fold(uint32_t index, int64_t time_ms, double value) {
  if (slot_gen_.size() <= index) {
    slot_gen_.resize(index + 1, 0u);
    slot_pos_.resize(index + 1, 0u);
  }
  if (slot_gen_[index] != gen_) {
    slot_gen_[index] = gen_;
    slot_pos_[index] = static_cast<uint32_t>(entries_.size() + 1);
    entries_.push_back(Entry{index, time_ms, value, 1});
    return;
  }
  Entry& entry = entries_[slot_pos_[index] - 1];
  entry.count += 1;
  if (time_ms >= entry.time_ms) {  // >=: later arrival breaks time ties
    entry.time_ms = time_ms;
    entry.value = value;
  }
}

SampleBuffer::SampleBuffer(size_t max_samples)
    : max_samples_(max_samples == 0 ? 1 : max_samples) {
  shards_ = std::vector<Shard>(PickShardCount(max_samples_));
  fair_share_ = std::max<size_t>(16, max_samples_ / shards_.size());
}

void SampleBuffer::AppendLocked(Shard& shard, const Sample& sample, uint64_t seq,
                                int64_t* total_delta) {
  if (shard.count == shard.ring.size()) {
    if (shard.ring.size() < max_samples_) {
      // Grow geometrically up to the full buffer capacity (any one signal
      // may use all of it) and re-linearize; warm-up only, never steady
      // state.
      size_t new_size = std::min(max_samples_, std::max<size_t>(16, shard.ring.size() * 2));
      std::vector<Sample> bigger(new_size);
      for (size_t i = 0; i < shard.count; ++i) {
        bigger[i] = shard.ring[(shard.head + i) % shard.ring.size()];
      }
      shard.ring.swap(bigger);
      shard.head = 0;
    } else {
      // The shard alone holds the whole capacity: evict its (= the global)
      // oldest in place.
      shard.head = (shard.head + 1) % shard.ring.size();
      --shard.count;
      ++shard.stats.dropped_overflow;
      --*total_delta;
      // min_time_ms may now be stale (too small); that only costs a wasted
      // drain scan, never a missed sample.
    }
  }
  Sample& slot = shard.ring[(shard.head + shard.count) % shard.ring.size()];
  slot = sample;
  slot.seq = seq;
  ++shard.count;
  shard.min_time_ms = std::min(shard.min_time_ms, sample.time_ms);
  ++shard.stats.pushed;
  ++*total_delta;
}

bool SampleBuffer::EvictGlobalOldest() {
  // Pick the shard whose oldest entry is globally oldest by (time, arrival)
  // — the closest shard-local analogue of the sorted deque's pop_front.
  size_t victim = shards_.size();
  int64_t best_time = 0;
  uint64_t best_seq = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.count == 0) {
      continue;
    }
    const Sample& head = shard.ring[shard.head];
    if (victim == shards_.size() || head.time_ms < best_time ||
        (head.time_ms == best_time && head.seq < best_seq)) {
      victim = s;
      best_time = head.time_ms;
      best_seq = head.seq;
    }
  }
  if (victim == shards_.size()) {
    return false;
  }
  Shard& shard = shards_[victim];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.count == 0) {
    return true;  // raced with a drain; caller re-checks the total
  }
  shard.head = (shard.head + 1) % shard.ring.size();
  --shard.count;
  ++shard.stats.dropped_overflow;
  total_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void SampleBuffer::TrimToCapacity() {
  while (total_count_.load(std::memory_order_relaxed) > static_cast<int64_t>(max_samples_)) {
    if (!EvictGlobalOldest()) {
      break;
    }
  }
}

bool SampleBuffer::Push(SampleKey key, int64_t time_ms, double value, int64_t now_ms,
                        int64_t delay_ms) {
  Shard& shard = ShardFor(key);
  int64_t delta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (time_ms + delay_ms < now_ms) {
      ++shard.stats.dropped_late;
      return false;
    }
    Sample sample{time_ms, value, key, 0};
    AppendLocked(shard, sample, next_seq_.fetch_add(1, std::memory_order_relaxed), &delta);
  }
  if (delta != 0) {
    total_count_.fetch_add(delta, std::memory_order_relaxed);
  }
  TrimToCapacity();
  return true;
}

size_t SampleBuffer::PushBatch(const Sample* samples, size_t count, int64_t now_ms,
                               int64_t delay_ms) {
  if (count == 0) {
    return 0;
  }
  uint64_t seq0 = next_seq_.fetch_add(count, std::memory_order_relaxed);
  size_t shard_count = shards_.size();
  size_t accepted = 0;
  // Which shards the batch actually touches (often one): lock and scan only
  // those, one locked pass per touched shard instead of `count` lock
  // round-trips.
  uint32_t touched = 0;
  for (size_t i = 0; i < count; ++i) {
    touched |= 1u << (samples[i].key % shard_count);
  }
  for (size_t s = 0; s < shard_count; ++s) {
    if ((touched & (1u << s)) == 0) {
      continue;
    }
    Shard& shard = shards_[s];
    int64_t delta = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (size_t i = 0; i < count; ++i) {
        const Sample& in = samples[i];
        if (in.key % shard_count != s) {
          continue;
        }
        if (in.time_ms + delay_ms < now_ms) {
          ++shard.stats.dropped_late;
          continue;
        }
        AppendLocked(shard, in, seq0 + i, &delta);
        ++accepted;
      }
    }
    if (delta != 0) {
      total_count_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  TrimToCapacity();
  return accepted;
}

size_t SampleBuffer::DrainDisplayableInto(int64_t now_ms, int64_t delay_ms,
                                          std::vector<Sample>* out) {
  // One drain at a time (the scope's polling tick); producers keep pushing
  // concurrently under the shard locks.
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  size_t before = out->size();
  // Each shard contributes one run of samples in push order; a run is
  // already (time, seq)-sorted whenever its producers stamped in
  // non-decreasing time order (the common streaming case).
  size_t run_begin[kMaxShards];
  size_t run_end[kMaxShards];
  size_t runs = 0;
  bool runs_sorted = true;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.count == 0 || shard.min_time_ms + delay_ms > now_ms) {
      continue;  // nothing displayable in this shard
    }
    size_t cap = shard.ring.size();
    shard.retained_scratch.clear();
    int64_t new_min = std::numeric_limits<int64_t>::max();
    int64_t prev_time = std::numeric_limits<int64_t>::min();
    size_t moved = 0;
    for (size_t i = 0; i < shard.count; ++i) {
      const Sample& s = shard.ring[(shard.head + i) % cap];
      if (s.time_ms + delay_ms <= now_ms) {
        runs_sorted = runs_sorted && s.time_ms >= prev_time;
        prev_time = s.time_ms;
        out->push_back(s);
        ++moved;
      } else {
        shard.retained_scratch.push_back(s);
        new_min = std::min(new_min, s.time_ms);
      }
    }
    if (moved == 0) {
      shard.min_time_ms = new_min;  // stale min from an eviction; refresh
      continue;
    }
    run_begin[runs] = out->size() - moved;
    run_end[runs] = out->size();
    ++runs;
    std::copy(shard.retained_scratch.begin(), shard.retained_scratch.end(), shard.ring.begin());
    shard.head = 0;
    shard.count = shard.retained_scratch.size();
    shard.min_time_ms = new_min;
    shard.stats.drained += static_cast<int64_t>(moved);
    total_count_.fetch_sub(static_cast<int64_t>(moved), std::memory_order_relaxed);
    if (shard.count == 0 && shard.ring.size() > fair_share_) {
      // A hot key grew this ring toward the full buffer capacity; now that
      // the shard is empty, release the hoard so the worst-case retained
      // memory stays near max_samples rather than shards * max_samples.  A
      // shard oscillating within its fair share never reallocates.
      shard.ring.clear();
      shard.ring.shrink_to_fit();
    }
  }
  auto less = [](const Sample& a, const Sample& b) {
    return a.time_ms != b.time_ms ? a.time_ms < b.time_ms : a.seq < b.seq;
  };
  if (runs > 1 && runs_sorted) {
    // Merge the sorted runs (cheaper and more cache-friendly than a full
    // sort) through the reusable scratch.
    merge_scratch_.clear();
    Sample* base = out->data();
    while (true) {
      size_t best = runs;
      for (size_t r = 0; r < runs; ++r) {
        if (run_begin[r] < run_end[r] &&
            (best == runs || less(base[run_begin[r]], base[run_begin[best]]))) {
          best = r;
        }
      }
      if (best == runs) {
        break;
      }
      merge_scratch_.push_back(base[run_begin[best]++]);
    }
    std::copy(merge_scratch_.begin(), merge_scratch_.end(),
              out->begin() + static_cast<ptrdiff_t>(before));
  } else if (!runs_sorted) {
    std::sort(out->begin() + static_cast<ptrdiff_t>(before), out->end(), less);
  }
  return out->size() - before;
}

bool SampleBuffer::Push(const Tuple& sample, int64_t now_ms, int64_t delay_ms) {
  SampleKey key = kUnnamedSampleKey;
  if (!sample.name.empty()) {
    std::lock_guard<std::mutex> lock(intern_mu_);
    auto it = name_to_key_.find(sample.name);
    if (it != name_to_key_.end()) {
      key = it->second;
    } else {
      key = kShimNameKeyBit | static_cast<SampleKey>(key_to_name_.size());
      key_to_name_.push_back(sample.name);
      name_to_key_.emplace(sample.name, key);
    }
  }
  return Push(key, sample.time_ms, sample.value, now_ms, delay_ms);
}

std::vector<Tuple> SampleBuffer::DrainDisplayable(int64_t now_ms, int64_t delay_ms) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  shim_scratch_.clear();
  DrainDisplayableInto(now_ms, delay_ms, &shim_scratch_);
  std::vector<Tuple> out;
  out.reserve(shim_scratch_.size());
  for (const Sample& s : shim_scratch_) {
    Tuple t;
    t.time_ms = s.time_ms;
    t.value = s.value;
    if ((s.key & kShimNameKeyBit) != 0) {
      size_t index = static_cast<size_t>(s.key & ~kShimNameKeyBit);
      if (index < key_to_name_.size()) {
        t.name = key_to_name_[index];
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::string SampleBuffer::NameOf(SampleKey key) const {
  std::lock_guard<std::mutex> lock(intern_mu_);
  if ((key & kShimNameKeyBit) == 0 || key == kUnmatchedSampleKey) {
    return {};
  }
  size_t index = static_cast<size_t>(key & ~kShimNameKeyBit);
  return index < key_to_name_.size() ? key_to_name_[index] : std::string();
}

size_t SampleBuffer::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.count;
  }
  return total;
}

SampleBuffer::Stats SampleBuffer::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.pushed += shard.stats.pushed;
    total.dropped_late += shard.stats.dropped_late;
    total.dropped_overflow += shard.stats.dropped_overflow;
    total.drained += shard.stats.drained;
  }
  return total;
}

void SampleBuffer::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total_count_.fetch_sub(static_cast<int64_t>(shard.count), std::memory_order_relaxed);
    shard.head = 0;
    shard.count = 0;
    shard.min_time_ms = std::numeric_limits<int64_t>::max();
  }
}

}  // namespace gscope
