#include "core/sample_buffer.h"

#include <algorithm>

namespace gscope {

bool SampleBuffer::Push(const Tuple& sample, int64_t now_ms, int64_t delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sample.time_ms + delay_ms < now_ms) {
    ++stats_.dropped_late;
    return false;
  }
  // Streams are expected in increasing time order, so the common case is an
  // append; tolerate mild reordering across producers with a bounded search.
  if (samples_.empty() || samples_.back().time_ms <= sample.time_ms) {
    samples_.push_back(sample);
  } else {
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), sample,
        [](const Tuple& a, const Tuple& b) { return a.time_ms < b.time_ms; });
    samples_.insert(it, sample);
  }
  ++stats_.pushed;
  if (samples_.size() > max_samples_) {
    samples_.pop_front();
    ++stats_.dropped_overflow;
  }
  return true;
}

std::vector<Tuple> SampleBuffer::DrainDisplayable(int64_t now_ms, int64_t delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Tuple> out;
  while (!samples_.empty() && samples_.front().time_ms + delay_ms <= now_ms) {
    out.push_back(std::move(samples_.front()));
    samples_.pop_front();
  }
  stats_.drained += static_cast<int64_t>(out.size());
  return out;
}

size_t SampleBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

SampleBuffer::Stats SampleBuffer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SampleBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
}

}  // namespace gscope
