#include "core/scope_set.h"

#include <algorithm>

namespace gscope {

Scope* ScopeSet::CreateScope(ScopeOptions options) {
  if (FindScope(options.name) != nullptr) {
    return nullptr;
  }
  std::string name = options.name;
  scopes_.push_back(std::make_unique<Scope>(loop_, std::move(options)));
  Scope* scope = scopes_.back().get();
  name_index_.emplace(std::move(name), scope);
  return scope;
}

bool ScopeSet::RemoveScope(Scope* scope) {
  auto it = std::find_if(scopes_.begin(), scopes_.end(),
                         [scope](const std::unique_ptr<Scope>& s) { return s.get() == scope; });
  if (it == scopes_.end()) {
    return false;
  }
  name_index_.erase((*it)->name());
  scopes_.erase(it);
  return true;
}

Scope* ScopeSet::FindScope(std::string_view name) {
  auto it = name_index_.find(name);
  return it == name_index_.end() ? nullptr : it->second;
}

Scope::Counters ScopeSet::TotalCounters() const {
  Scope::Counters total;
  for (const auto& s : scopes_) {
    const Scope::Counters& c = s->counters();
    total.ticks += c.ticks;
    total.lost_ticks += c.lost_ticks;
    total.samples += c.samples;
    total.buffered_routed += c.buffered_routed;
    total.buffered_unmatched += c.buffered_unmatched;
    total.samples_coalesced += c.samples_coalesced;
    total.samples_retained += c.samples_retained;
  }
  return total;
}

std::vector<Scope*> ScopeSet::scopes() {
  std::vector<Scope*> out;
  out.reserve(scopes_.size());
  for (const auto& s : scopes_) {
    out.push_back(s.get());
  }
  return out;
}

}  // namespace gscope
