#include "core/scope_set.h"

#include <algorithm>

namespace gscope {

Scope* ScopeSet::CreateScope(ScopeOptions options) {
  if (FindScope(options.name) != nullptr) {
    return nullptr;
  }
  scopes_.push_back(std::make_unique<Scope>(loop_, std::move(options)));
  return scopes_.back().get();
}

bool ScopeSet::RemoveScope(Scope* scope) {
  auto it = std::find_if(scopes_.begin(), scopes_.end(),
                         [scope](const std::unique_ptr<Scope>& s) { return s.get() == scope; });
  if (it == scopes_.end()) {
    return false;
  }
  scopes_.erase(it);
  return true;
}

Scope* ScopeSet::FindScope(const std::string& name) {
  for (const auto& s : scopes_) {
    if (s->name() == name) {
      return s.get();
    }
  }
  return nullptr;
}

std::vector<Scope*> ScopeSet::scopes() {
  std::vector<Scope*> out;
  out.reserve(scopes_.size());
  for (const auto& s : scopes_) {
    out.push_back(s.get());
  }
  return out;
}

}  // namespace gscope
