// Signal-name subscription filter for selective fan-out.
//
// A remote display target does not want every signal a server ingests: the
// control channel (docs/protocol.md) lets it subscribe by glob pattern, and
// the IngestRouter consults the registration's SignalFilter at route-build
// time so non-matching signals are excluded from that scope's route-table
// slots up front — never per sample.  The filter carries its own epoch;
// the router folds it into RouteEpoch(), so a pattern change invalidates
// the routing snapshot exactly like a signal-table change does.
//
// Threading: filters are read and mutated on the loop thread only (the
// router rebuilds tables there; the control channel mutates patterns from
// connection callbacks on the same loop).
#ifndef GSCOPE_CORE_SIGNAL_FILTER_H_
#define GSCOPE_CORE_SIGNAL_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gscope {

// Shell-style glob over signal names: '*' matches any run (including empty),
// '?' matches exactly one character, everything else matches literally.
// Iterative with single-star backtracking: O(pattern x text) worst case,
// O(pattern + text) for the typical prefix/suffix globs.
bool GlobMatch(std::string_view pattern, std::string_view text);

// Reserved namespace separator.  An authenticated tenant's signals are
// stored as "<namespace>\x1f<name>"; the separator is a control character
// that the wire front-ends reject inside producer-supplied names, so no
// producer can mint a name that lands inside someone else's namespace.
inline constexpr char kNamespaceSep = '\x1f';

// Joins a namespace and a bare signal name into the stored form.  Empty
// namespace = the bare name unchanged (the anonymous/default tenant).
inline std::string NamespacedName(std::string_view ns, std::string_view name) {
  if (ns.empty()) {
    return std::string(name);
  }
  std::string full;
  full.reserve(ns.size() + 1 + name.size());
  full.append(ns);
  full.push_back(kNamespaceSep);
  full.append(name);
  return full;
}

// An any-of set of glob patterns.  Empty set matches nothing: a session that
// has not subscribed receives no signals (subscribe-to-receive, the
// publish/subscribe split of the streaming-telemetry collectors in
// PAPERS.md).
//
// Multi-tenant scoping: a filter carries a namespace (default empty).  With
// a namespace set, only names inside that namespace are candidates and the
// glob applies to the REMAINDER after the "<ns>\x1f" prefix - "SUB *" for
// tenant acme matches every acme signal and nothing else.  With the default
// namespace, names that belong to any tenant (contain the separator) never
// match, whatever the glob: one tenant's glob can never cross into
// another's signals, and anonymous sessions cannot see tenants at all.
class SignalFilter {
 public:
  // False (and no epoch bump) if the pattern is already present or empty.
  bool Add(std::string_view glob);
  // False if the pattern was never added.
  bool Remove(std::string_view glob);

  bool Matches(std::string_view name) const;

  // Re-scopes the filter to `ns` (AUTH).  Patterns are kept - they now
  // evaluate inside the new namespace.  Bumps the epoch (a no-op set to the
  // current namespace does not).
  void SetNamespace(std::string_view ns);
  const std::string& ns() const { return namespace_; }

  const std::vector<std::string>& patterns() const { return patterns_; }
  size_t pattern_count() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  // Bumped on every successful Add/Remove/SetNamespace; summed into the
  // router's RouteEpoch so pattern changes invalidate route snapshots.
  uint64_t epoch() const { return epoch_; }

 private:
  std::vector<std::string> patterns_;
  std::string namespace_;
  uint64_t epoch_ = 0;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_SIGNAL_FILTER_H_
