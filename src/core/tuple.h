// The textual tuple format of Section 3.3.
//
// "Each tuple consists of three quantities: time, value and signal name ...
// As a special case, if there is only one signal, then the third quantity may
// not exist.  In that case, signals are simply time-value tuples.  When
// signals are streamed or replayed from a recorded file, the time field of
// successive tuples is in increasing time order and its value is in
// milliseconds."
//
// Wire form, one tuple per newline-terminated line:
//     <time_ms> <value> [<name>]
// Blank lines and lines starting with '#' are ignored (comments in recorded
// files).  Names may not contain whitespace.
#ifndef GSCOPE_CORE_TUPLE_H_
#define GSCOPE_CORE_TUPLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gscope {

struct Tuple {
  int64_t time_ms = 0;
  double value = 0.0;
  // Empty for the two-field single-signal form.
  std::string name;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

// Allocation-free view of one parsed tuple: `name` points into the parsed
// line and is only valid while that buffer lives.
struct TupleView {
  int64_t time_ms = 0;
  double value = 0.0;
  std::string_view name;
};

// Serializes one tuple, newline-terminated.  Omits the name when empty.
std::string FormatTuple(const Tuple& tuple);

// Appends the wire form of one tuple to `out` without any intermediate
// allocation (the streaming fast path; `out` amortizes to zero allocations
// when reused).
void AppendTuple(std::string& out, int64_t time_ms, double value, std::string_view name);

// Parses one line.  Returns nullopt for malformed lines (missing fields,
// non-numeric time/value, trailing junk).  Comment/blank lines are
// distinguished from malformed ones by IsIgnorableLine.
std::optional<Tuple> ParseTuple(std::string_view line);

// Allocation-free variant: the returned view borrows `line`'s storage.
std::optional<TupleView> ParseTupleView(std::string_view line);

bool IsIgnorableLine(std::string_view line);

}  // namespace gscope

#endif  // GSCOPE_CORE_TUPLE_H_
