// SignalSpec: the GtkScopeSig analogue (Section 3.1).
//
// A signal is a name plus a description of how to obtain one sampling point:
//
//   INTEGER/BOOLEAN/SHORT/FLOAT/DOUBLE - a word of memory that gscope polls,
//   FUNC   - a function invoked with two user arguments whose return value is
//            the sample (reads arbitrary signal data),
//   EVENT  - an EventAggregator drained once per polling interval (S4.2),
//   BUFFER - timestamped samples the application pushed into the scope-wide
//            sample buffer, displayed with a user-specified delay.
//
// Optional parameters mirror the paper's: color, min, max, line mode, hidden,
// and the low-pass filter alpha.
#ifndef GSCOPE_CORE_SIGNAL_SPEC_H_
#define GSCOPE_CORE_SIGNAL_SPEC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>

#include "core/aggregate.h"
#include "core/value.h"

namespace gscope {

// FUNC source.  The classic C shape from the paper (function plus two opaque
// arguments) and a modern closure are both supported; MakeFunc adapts the
// former to the latter.
struct FuncSource {
  std::function<double()> fn;
};

using LegacySampleFn = double (*)(void* arg1, void* arg2);

inline FuncSource MakeFunc(LegacySampleFn fn, void* arg1, void* arg2) {
  return FuncSource{[fn, arg1, arg2]() { return fn(arg1, arg2); }};
}
inline FuncSource MakeFunc(std::function<double()> fn) { return FuncSource{std::move(fn)}; }

// EVENT source: aggregate the events pushed since the last poll.
struct EventSource {
  std::shared_ptr<EventAggregator> aggregator;
};

// BUFFER source: values arrive through the scope's SampleBuffer keyed by the
// signal's name; nothing is stored in the spec itself.
struct BufferSource {};

// Where one sampling point comes from.  Pointer alternatives reference
// application-owned memory that must outlive the signal (exactly the paper's
// contract: "a word of memory whose value is polled").
using SignalSource = std::variant<const int32_t*,  // INTEGER
                                  const bool*,     // BOOLEAN
                                  const int16_t*,  // SHORT
                                  const float*,    // FLOAT
                                  const double*,   // DOUBLE
                                  FuncSource,      // FUNC
                                  EventSource,     // EVENT
                                  BufferSource>;   // BUFFER

SignalType TypeOf(const SignalSource& source);

inline SignalType TypeOf(const SignalSource& source) {
  struct Visitor {
    SignalType operator()(const int32_t*) const { return SignalType::kInteger; }
    SignalType operator()(const bool*) const { return SignalType::kBoolean; }
    SignalType operator()(const int16_t*) const { return SignalType::kShort; }
    SignalType operator()(const float*) const { return SignalType::kFloat; }
    SignalType operator()(const double*) const { return SignalType::kDouble; }
    SignalType operator()(const FuncSource&) const { return SignalType::kFunc; }
    SignalType operator()(const EventSource&) const { return SignalType::kEvent; }
    SignalType operator()(const BufferSource&) const { return SignalType::kBuffer; }
  };
  return std::visit(Visitor{}, source);
}

struct SignalSpec {
  std::string name;
  SignalSource source;

  // Display range at default zoom/bias: `min` maps to y-ruler 0 and `max` to
  // y-ruler 100.  The paper's defaults.
  double min = 0.0;
  double max = 100.0;

  // Unset -> the scope assigns the next palette colour.
  std::optional<Rgb> color;

  LineMode line = LineMode::kLine;
  bool hidden = false;

  // Low-pass filter parameter; 0 (default) = unfiltered, up to 1.
  double filter_alpha = 0.0;

  SignalType type() const { return TypeOf(source); }
};

}  // namespace gscope

#endif  // GSCOPE_CORE_SIGNAL_SPEC_H_
