// Basic value and display types shared across the gscope core.
#ifndef GSCOPE_CORE_VALUE_H_
#define GSCOPE_CORE_VALUE_H_

#include <cstdint>

namespace gscope {

// Identifies a signal within a Scope.  0 is never valid.
using SignalId = int;

// How a signal's sample stream is drawn (the "line mode" of GtkScopeSig).
enum class LineMode : uint8_t {
  kLine,    // connect successive samples
  kPoints,  // one pixel per sample
  kSteps,   // sample-and-hold staircase
};

// 24-bit colour, used by SignalSpec and the software renderer.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  friend bool operator==(const Rgb&, const Rgb&) = default;
};

// The signal acquisition types of Section 3.1.
enum class SignalType : uint8_t {
  kInteger,
  kBoolean,
  kShort,
  kFloat,
  kDouble,  // extension: the paper's FLOAT generalized
  kFunc,
  kEvent,   // extension: event-aggregated source (Section 4.2)
  kBuffer,
};

const char* SignalTypeName(SignalType type);

inline const char* SignalTypeName(SignalType type) {
  switch (type) {
    case SignalType::kInteger:
      return "INTEGER";
    case SignalType::kBoolean:
      return "BOOLEAN";
    case SignalType::kShort:
      return "SHORT";
    case SignalType::kFloat:
      return "FLOAT";
    case SignalType::kDouble:
      return "DOUBLE";
    case SignalType::kFunc:
      return "FUNC";
    case SignalType::kEvent:
      return "EVENT";
    case SignalType::kBuffer:
      return "BUFFER";
  }
  return "?";
}

}  // namespace gscope

#endif  // GSCOPE_CORE_VALUE_H_
