// IngestRouter: epoch-invalidated routing table + sharded span fan-out.
//
// Owned by an ingest front-end (the TCP stream server, the UDP datagram
// server), this is the single place where tuple names meet scope signal
// tables.  It replaces the per-client name -> per-scope-SignalId route caches
// with ONE server-wide table shared by every client, and replaces per-scope
// sample copies with span hand-offs into the scopes' IngestSpanQueues:
//
//   Append("cwnd", t, v)   O(1): memoized/interned name -> route index,
//                          sample appended once to the shared block
//   Flush()                O(scopes): each scope gets one IngestSpan,
//                          partitioned into K shards run on a FanoutPool
//
// Invalidation: RouteEpoch() = local scope-list epoch + the sum of every
// scope's signals_epoch().  When it moves, the immutable RouteTable snapshot
// is rebuilt lazily at the next batch; queued spans keep their old snapshot
// (stale ids resolve to unmatched at drain, never to a wrong signal).
//
// Threading: Append/Flush/AddScope/RemoveScope run on the loop thread.  The
// fan-out shards call Scope::PushIngestSpan, which is thread-safe; the
// scopes' drains stay on the loop thread (the paper's GTK-lock discipline).
//
// Concurrent mode (SetConcurrent): with the net layer sharding sessions
// across per-core loops, any shard may ingest, resolve, flush, or register
// scopes.  One internal mutex then serializes every public entry point.
// Off (the default, and the loops=1 server configuration) nothing locks —
// the single-loop hot path is unchanged.  Callers own two obligations:
// (1) scopes registered from other loops are put in Scope concurrent mode
// first, so table builds can touch their signal tables; (2) route-affecting
// state the router reads but does not own — subscription filters, scope
// taps/sinks — is only mutated under LockRoutes(), so a rebuild never reads
// a filter mid-change.
#ifndef GSCOPE_CORE_INGEST_ROUTER_H_
#define GSCOPE_CORE_INGEST_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/fanout_pool.h"
#include "core/ingest_bus.h"
#include "core/signal_filter.h"
#include "core/string_index.h"

namespace gscope {

class Scope;

struct IngestRouterOptions {
  // Create a BUFFER signal on every scope the first time a new tuple name
  // appears (remote signals are not known in advance).
  bool auto_create_signals = true;
  // Upper bound on parallel fan-out shards per flush (each shard serves a
  // strided subset of the scopes).
  size_t fanout_shards = 4;
  // Worker threads for the fan-out pool.  -1 picks hardware_concurrency()-1
  // capped at fanout_shards-1 (0 on a single-core host: inline fan-out beats
  // cross-thread wake-ups there); 0 forces inline.
  int worker_threads = -1;
  // Parsed blocks kept for reuse; beyond this, in-flight batches allocate.
  size_t block_pool = 32;
};

class IngestRouter {
 public:
  explicit IngestRouter(IngestRouterOptions options = {});
  ~IngestRouter();

  IngestRouter(const IngestRouter&) = delete;
  IngestRouter& operator=(const IngestRouter&) = delete;

  // O(1) membership (the old O(N) std::find scans fold into scope_index_).
  // Scopes are not owned and must outlive the router.  Removal swaps with
  // the last slot; slot order is a table-internal detail.
  //
  // With a non-null `filter` (not owned; must outlive the registration) the
  // scope only receives signals whose name matches the filter: excluded
  // names get id 0 in that scope's route-table slot at BUILD time - there is
  // no per-sample pattern test anywhere on the ingest path - and unnamed
  // (two-field) samples are withheld via the span's deliver_unnamed flag.
  // The filter's epoch is folded into RouteEpoch(), so pattern changes
  // invalidate the snapshot like any signal-table change.
  bool AddScope(Scope* scope) { return AddScope(scope, nullptr); }
  bool AddScope(Scope* scope, const SignalFilter* filter);
  bool RemoveScope(Scope* scope);
  bool HasScope(Scope* scope) const {
    std::unique_lock<std::mutex> lock = LockRoutes();
    return scope_index_.count(scope) != 0;
  }
  size_t scope_count() const {
    std::unique_lock<std::mutex> lock = LockRoutes();
    return scopes_.size();
  }
  // Single-loop use only: the reference is unguarded.  Sharded callers use
  // FirstScope()/ForEachScope() instead.
  const std::vector<Scope*>& scopes() const { return scopes_; }

  // -- Concurrent mode -------------------------------------------------------

  // Enables the internal serialization described in the header comment.
  // Flip before the router is shared between loops; the flag itself is not
  // synchronized.
  void SetConcurrent(bool on) { concurrent_ = on; }
  bool concurrent() const { return concurrent_; }
  // The external bracket for mutations of caller-owned route inputs (filter
  // patterns/namespace, scope taps).  Unlocked dummy when not concurrent.
  // Do not call router entry points while holding it (non-recursive).
  std::unique_lock<std::mutex> LockRoutes() const {
    return concurrent_ ? std::unique_lock<std::mutex>(mu_)
                       : std::unique_lock<std::mutex>();
  }
  // The scope in slot 0 (the first registered, until a removal shuffles
  // slots), null when none: the sharded server's time-base reference.
  // Safe from any loop.
  Scope* FirstScope() const;
  // Visits every registered scope under the lock.  `fn` must not re-enter
  // the router.  Safe from any loop.
  void ForEachScope(const std::function<void(Scope*)>& fn) const;

  // Appends one parsed tuple to the current batch, resolving `name` through
  // the routing table (empty name = the two-field single-signal form).
  // Steady state is O(1) and allocation-free regardless of scope count.
  void Append(std::string_view name, int64_t time_ms, double value);

  // Parses one wire line (`<time_ms> <value> [<name>]`) and appends it on
  // success: the shared ingest entry point for the TCP and UDP front-ends.
  // Bumps the caller's tuple counter on success and its parse-error counter
  // on malformed (non-ignorable) lines, so the accounting cannot diverge
  // between transports.
  //
  // A producer-supplied name containing the reserved namespace separator
  // (core/signal_filter.h) is a parse error at every trust level: no wire
  // peer can mint a name inside someone else's namespace.  The namespaced
  // overload prefixes the parsed name with "<ns>\x1f" before routing — the
  // authenticated-tenant ingest path (docs/protocol.md, AUTH).
  void AppendTupleLine(std::string_view line, int64_t* tuples, int64_t* parse_errors) {
    AppendTupleLine(line, std::string_view(), tuples, parse_errors);
  }
  void AppendTupleLine(std::string_view line, std::string_view ns, int64_t* tuples,
                       int64_t* parse_errors);

  // Batch ingest for the binary wire path (net/frame_codec.h): ResolveRoute
  // interns `name` once - when a connection binds a dictionary id - and
  // returns a stable route index; AppendRoute then ingests each sample of
  // that id without touching the name at all.  Returns false when no route
  // can be created (nothing accepted the name anywhere: the unbounded-name
  // protection with auto-create off) - callers fall back to Append per
  // sample, which handles the shim paths.
  bool ResolveRoute(std::string_view name, uint32_t* route);
  // Appends one sample on a route previously returned by ResolveRoute on
  // this router (route indexes are stable for the router's lifetime).
  // Steady state is O(1): one unresolved-flag test plus the block append.
  void AppendRoute(uint32_t route, int64_t time_ms, double value);

  struct FlushStats {
    // Samples rejected as late across all scopes (span-level and shim-level).
    int64_t dropped_late = 0;
  };
  // Hands the accumulated batch to every scope as a span, sharded across the
  // fan-out pool, and starts a fresh batch.  Blocks until all shards finish.
  FlushStats Flush();

  // Diagnostics / tests (locked like the entry points, so STATS handlers on
  // any shard may read them).
  size_t route_count() const {
    std::unique_lock<std::mutex> lock = LockRoutes();
    return route_names_.size();
  }
  uint64_t route_epoch() const {
    std::unique_lock<std::mutex> lock = LockRoutes();
    return RouteEpoch();
  }
  size_t pending_batch_samples() const {
    std::unique_lock<std::mutex> lock = LockRoutes();
    return block_ ? block_->samples.size() : 0;
  }
  size_t fanout_worker_count() const { return pool_.worker_count(); }
  // Route x scope-slot entries the current staged table excludes because the
  // slot's subscription filter does not match the route's name.  This is the
  // observable proof that filtering happened at route-build time: samples of
  // an excluded signal never cost the filtered scope anything per sample.
  size_t excluded_route_slots() const {
    std::unique_lock<std::mutex> lock = LockRoutes();
    return excluded_slots_;
  }
  size_t filtered_scope_count() const {
    std::unique_lock<std::mutex> lock = LockRoutes();
    return filtered_scopes_;
  }

 private:
  // Append's body, callers already holding mu_ (or not concurrent).
  void AppendLocked(std::string_view name, int64_t time_ms, double value);
  uint64_t RouteEpoch() const;
  // True when slot `s` must not receive signal `name` (filtered, no match).
  bool SlotExcludes(size_t s, std::string_view name) const;
  void EnsureBatch();
  void SyncRoutes();           // rebuild the table snapshot if the epoch moved
  void RebuildTable();         // re-resolve every known route (FindSignal only)
  bool ResolveNewRoute(std::string_view name, uint32_t* route);
  void ReResolveRoute(uint32_t route);  // auto-create missing slots for one route
  void ShimPushUnresolved(uint32_t route, int64_t time_ms, double value);
  void ShimPushAll(std::string_view name, int64_t time_ms, double value);
  std::shared_ptr<IngestBlock> AcquireBlock();
  void FanoutShard(size_t shard);

  IngestRouterOptions options_;

  // Concurrent-mode gate (see the header comment).  mu_ is only ever locked
  // when concurrent_ is set; single-loop routers never touch it.
  bool concurrent_ = false;
  mutable std::mutex mu_;

  std::vector<Scope*> scopes_;
  // Parallel to scopes_: the slot's subscription filter, null = receive all.
  // Read on the loop thread during table builds; the fan-out shards only
  // null-test it (no pattern evaluation off the loop thread).
  std::vector<const SignalFilter*> filters_;
  std::unordered_map<Scope*, size_t> scope_index_;
  // Bumped on scope add/remove; removal also folds in the removed scope's
  // signal epoch so the RouteEpoch sum stays strictly increasing.
  uint64_t scopes_epoch_ = 0;
  uint64_t synced_epoch_ = 0;
  bool epoch_valid_ = false;

  // name -> route index; indexes are stable for the router's lifetime.
  StringKeyedMap<uint32_t> name_to_route_;
  std::vector<std::string> route_names_;
  // Route has at least one slot with id 0 (auto-create off, or a signal was
  // removed): per-sample cold path until re-resolved.
  std::vector<uint8_t> route_unresolved_;
  // Authoritative routing ids, route-major with stride scopes_.size(),
  // mutated in place as names resolve.  Snapshotted into an immutable
  // RouteTable at most once per flush (when dirty), so discovering N names
  // costs O(N x scopes) appends plus one copy per flush instead of a full
  // table copy per name.
  std::vector<SignalId> staged_ids_;
  // Parallel to staged_ids_: the slot's signal has an every-sample consumer
  // (Scope::SignalNeedsHistory at build time).  Consumer epochs are part of
  // RouteEpoch(), so attaching a trigger/trace/export flips the bit at the
  // next snapshot without any per-sample check.
  std::vector<uint8_t> staged_history_;
  // Filter-excluded entries in staged_ids_ (diagnostics; recomputed with the
  // table, incremented as new routes resolve).
  size_t excluded_slots_ = 0;
  size_t filtered_scopes_ = 0;
  bool table_dirty_ = false;
  std::shared_ptr<const RouteTable> table_;  // last published snapshot

  // Streams repeat names in runs; memoizing the last hit skips the hash
  // lookup for consecutive same-name tuples.
  std::string memo_name_;
  uint32_t memo_route_ = 0;
  bool memo_valid_ = false;
  // Reused "<ns>\x1f<name>" assembly buffer for the namespaced text-ingest
  // path: steady state allocates nothing once grown.
  std::string ns_scratch_;

  // Batch state.
  std::vector<std::shared_ptr<IngestBlock>> block_pool_;
  std::shared_ptr<IngestBlock> block_;  // active batch; null between batches
  int64_t shim_dropped_late_ = 0;

  // Flush state, held in members so the reusable fan-out job closure stays
  // allocation-free across flushes.
  FanoutPool pool_;
  std::function<void(size_t)> fanout_job_;
  std::shared_ptr<const IngestBlock> flush_block_;
  std::shared_ptr<const RouteTable> flush_table_;
  size_t flush_shards_ = 0;
  std::vector<int64_t> shard_dropped_late_;
  // Per-scope "now", captured on the loop thread at flush: the late-drop
  // verdict must not depend on fan-out worker scheduling latency.
  std::vector<int64_t> flush_now_ms_;
  std::vector<SignalId> resolve_scratch_;
  std::vector<uint8_t> resolve_history_scratch_;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_INGEST_ROUTER_H_
