#include "core/aggregate.h"

namespace gscope {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kMaximum:
      return "Maximum";
    case AggregateKind::kMinimum:
      return "Minimum";
    case AggregateKind::kSum:
      return "Sum";
    case AggregateKind::kRate:
      return "Rate";
    case AggregateKind::kAverage:
      return "Average";
    case AggregateKind::kEvents:
      return "Events";
    case AggregateKind::kAnyEvent:
      return "AnyEvent";
    case AggregateKind::kLast:
      return "Last";
  }
  return "?";
}

void EventAggregator::Push(double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    if (sample < min_) {
      min_ = sample;
    }
    if (sample > max_) {
      max_ = sample;
    }
  }
  sum_ += sample;
  last_ = sample;
  count_ += 1;
}

double EventAggregator::Drain(Nanos interval_ns, double hold) {
  std::lock_guard<std::mutex> lock(mu_);
  double value = AggregateLocked(interval_ns, hold);
  ResetLocked();
  return value;
}

int64_t EventAggregator::pending_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double EventAggregator::AggregateLocked(Nanos interval_ns, double hold) const {
  switch (kind_) {
    case AggregateKind::kMaximum:
      return count_ == 0 ? hold : max_;
    case AggregateKind::kMinimum:
      return count_ == 0 ? hold : min_;
    case AggregateKind::kSum:
      return sum_;
    case AggregateKind::kRate: {
      double seconds = NanosToSeconds(interval_ns);
      return seconds <= 0.0 ? 0.0 : sum_ / seconds;
    }
    case AggregateKind::kAverage:
      return count_ == 0 ? hold : sum_ / static_cast<double>(count_);
    case AggregateKind::kEvents:
      return static_cast<double>(count_);
    case AggregateKind::kAnyEvent:
      return count_ > 0 ? 1.0 : 0.0;
    case AggregateKind::kLast:
      return count_ == 0 ? hold : last_;
  }
  return hold;
}

void EventAggregator::ResetLocked() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  // last_ intentionally survives as the natural hold state.
}

}  // namespace gscope
