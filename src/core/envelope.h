// Waveform envelope generation (the paper's Section 6 future work, paired
// with trigger support).
//
// An Envelope accumulates per-column min/max bounds across successive
// trigger-aligned sweeps of a repeating waveform - the "envelope" display
// mode of a digital oscilloscope, which reveals jitter, noise bands and
// worst-case excursions that a single sweep hides.
#ifndef GSCOPE_CORE_ENVELOPE_H_
#define GSCOPE_CORE_ENVELOPE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/trigger.h"

namespace gscope {

class Envelope {
 public:
  // `width` is the sweep width in samples (display columns).
  explicit Envelope(size_t width);

  size_t width() const { return lo_.size(); }

  // Folds one sweep into the envelope.  Sweeps shorter than the width
  // contribute only their prefix; longer ones are truncated.
  void AddSweep(const std::vector<double>& sweep);

  // Folds every triggered sweep extracted from a sample stream.
  void AddSweeps(const std::vector<double>& samples, const TriggerConfig& config);

  // Per-column bounds; meaningful only for columns with coverage.
  double LowAt(size_t column) const;
  double HighAt(size_t column) const;
  // Number of sweeps that covered this column.
  int64_t CoverageAt(size_t column) const;

  int64_t sweeps() const { return sweeps_; }
  void Reset();

  // Peak-to-peak spread of the widest column (the jitter band).
  double MaxSpread() const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<int64_t> coverage_;
  int64_t sweeps_ = 0;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_ENVELOPE_H_
