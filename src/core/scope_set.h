// ScopeSet: multiple scopes plus the application-wide control parameters.
//
// "Some of the key features of gscope are: support for multiple scopes and
// signals, dynamic addition and removal of scopes and signals ..." (Section
// 1) and "control parameters that are application-wide and not specific to
// each GtkScope widget" (Section 2).  A ScopeSet bundles a shared main loop,
// any number of scopes, and the one ParamRegistry.
#ifndef GSCOPE_CORE_SCOPE_SET_H_
#define GSCOPE_CORE_SCOPE_SET_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/params.h"
#include "core/scope.h"
#include "core/string_index.h"
#include "runtime/event_loop.h"

namespace gscope {

class ScopeSet {
 public:
  // `loop` is not owned and must outlive the set.
  explicit ScopeSet(MainLoop* loop) : loop_(loop) {}

  ScopeSet(const ScopeSet&) = delete;
  ScopeSet& operator=(const ScopeSet&) = delete;

  // Creates a scope owned by the set.  Names must be unique within the set.
  // Returns nullptr on duplicates.
  Scope* CreateScope(ScopeOptions options = {});

  // Destroys a scope (stops its polling).  Returns false if not a member.
  bool RemoveScope(Scope* scope);

  // O(1) through the set's name index.
  Scope* FindScope(std::string_view name);
  std::vector<Scope*> scopes();
  size_t size() const { return scopes_.size(); }

  // Sum of every member scope's counters (loop thread): the application-wide
  // view of drain work — e.g. samples_coalesced vs samples_retained across
  // all display targets (docs/perf.md, drain coalescing).
  Scope::Counters TotalCounters() const;

  MainLoop* loop() const { return loop_; }
  ParamRegistry& params() { return params_; }
  const ParamRegistry& params() const { return params_; }

 private:
  MainLoop* loop_;
  std::vector<std::unique_ptr<Scope>> scopes_;
  StringKeyedMap<Scope*> name_index_;
  ParamRegistry params_;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_SCOPE_SET_H_
