#include "core/ingest_router.h"

#include <thread>

#include "core/scope.h"
#include "core/tuple.h"

namespace gscope {
namespace {

size_t PickWorkers(const IngestRouterOptions& options) {
  if (options.worker_threads >= 0) {
    return static_cast<size_t>(options.worker_threads);
  }
  unsigned hw = std::thread::hardware_concurrency();
  size_t by_host = hw > 1 ? static_cast<size_t>(hw - 1) : 0;
  size_t by_shards = options.fanout_shards > 1 ? options.fanout_shards - 1 : 0;
  return std::min(by_host, by_shards);
}

}  // namespace

IngestRouter::IngestRouter(IngestRouterOptions options)
    : options_(options),
      table_(std::make_shared<RouteTable>()),
      pool_(PickWorkers(options)) {
  if (options_.fanout_shards == 0) {
    options_.fanout_shards = 1;
  }
  fanout_job_ = [this](size_t shard) { FanoutShard(shard); };
}

IngestRouter::~IngestRouter() = default;

bool IngestRouter::AddScope(Scope* scope, const SignalFilter* filter) {
  std::unique_lock<std::mutex> lock = LockRoutes();
  if (scope == nullptr || scope_index_.count(scope) != 0) {
    return false;
  }
  scope_index_.emplace(scope, scopes_.size());
  scopes_.push_back(scope);
  filters_.push_back(filter);
  if (filter != nullptr) {
    filtered_scopes_ += 1;
  }
  scopes_epoch_ += 1;
  // The slot count changed: the table snapshot's stride is stale.  Force a
  // resync even mid-batch (Append and Flush both check), so no span is ever
  // built with a slot index the captured table cannot translate.
  epoch_valid_ = false;
  return true;
}

bool IngestRouter::RemoveScope(Scope* scope) {
  std::unique_lock<std::mutex> lock = LockRoutes();
  auto it = scope_index_.find(scope);
  if (it == scope_index_.end()) {
    return false;
  }
  size_t index = it->second;
  scope_index_.erase(it);
  // RouteEpoch sums the scopes' signal and consumer epochs (and their
  // filters' epochs); fold the removed terms into the local epoch so the
  // total stays strictly increasing (a repeated value would let a stale
  // table snapshot survive).
  scopes_epoch_ += scope->signals_epoch() + scope->consumers_epoch() + 1;
  if (filters_[index] != nullptr) {
    scopes_epoch_ += filters_[index]->epoch();
    filtered_scopes_ -= 1;
  }
  scopes_[index] = scopes_.back();
  filters_[index] = filters_.back();
  scopes_.pop_back();
  filters_.pop_back();
  if (index < scopes_.size()) {
    scope_index_[scopes_[index]] = index;
  }
  epoch_valid_ = false;
  return true;
}

Scope* IngestRouter::FirstScope() const {
  std::unique_lock<std::mutex> lock = LockRoutes();
  return scopes_.empty() ? nullptr : scopes_.front();
}

void IngestRouter::ForEachScope(const std::function<void(Scope*)>& fn) const {
  std::unique_lock<std::mutex> lock = LockRoutes();
  for (Scope* scope : scopes_) {
    fn(scope);
  }
}

uint64_t IngestRouter::RouteEpoch() const {
  uint64_t epoch = scopes_epoch_;
  for (const Scope* scope : scopes_) {
    epoch += scope->signals_epoch() + scope->consumers_epoch();
  }
  for (const SignalFilter* filter : filters_) {
    if (filter != nullptr) {
      epoch += filter->epoch();
    }
  }
  return epoch;
}

bool IngestRouter::SlotExcludes(size_t s, std::string_view name) const {
  return filters_[s] != nullptr && !filters_[s]->Matches(name);
}

std::shared_ptr<IngestBlock> IngestRouter::AcquireBlock() {
  for (const std::shared_ptr<IngestBlock>& pooled : block_pool_) {
    // use_count 1 = only the pool holds it: every span that referenced it
    // has been drained, so the sample storage can be reused in place.  The
    // count is stable once it reaches 1 (consumers can only clone refs they
    // still hold), but use_count() itself is a relaxed load with no
    // ordering; copying the shared_ptr is an acquiring RMW on the same
    // counter, which synchronizes with every consumer's release-decrement
    // so their last reads happen-before the storage is reused.
    if (pooled.use_count() == 1) {
      std::shared_ptr<IngestBlock> acquired = pooled;
      acquired->Clear();
      return acquired;
    }
  }
  auto fresh = std::make_shared<IngestBlock>();
  if (block_pool_.size() < options_.block_pool) {
    block_pool_.push_back(fresh);
  }
  return fresh;
}

void IngestRouter::EnsureBatch() {
  if (block_ == nullptr) {
    block_ = AcquireBlock();
    SyncRoutes();
  }
}

void IngestRouter::SyncRoutes() {
  uint64_t epoch = RouteEpoch();
  if (epoch_valid_ && epoch == synced_epoch_) {
    return;
  }
  RebuildTable();
  synced_epoch_ = epoch;
  epoch_valid_ = true;
  memo_valid_ = false;
}

void IngestRouter::RebuildTable() {
  staged_ids_.assign(route_names_.size() * scopes_.size(), 0);
  staged_history_.assign(route_names_.size() * scopes_.size(), 0);
  excluded_slots_ = 0;
  for (size_t r = 0; r < route_names_.size(); ++r) {
    bool unresolved = scopes_.empty();
    for (size_t s = 0; s < scopes_.size(); ++s) {
      // A filter-excluded slot keeps id 0 by design: it is neither resolved
      // nor unresolved, and the name is never even looked up for it.
      if (SlotExcludes(s, route_names_[r])) {
        excluded_slots_ += 1;
        continue;
      }
      // Resolution only: a removed signal is not eagerly recreated here.  If
      // auto-create is on, the route is re-resolved (and the signal added
      // back) the next time a tuple actually uses the name.
      SignalId id = scopes_[s]->FindSignal(route_names_[r]);
      staged_ids_[r * scopes_.size() + s] = id;
      staged_history_[r * scopes_.size() + s] =
          (id != 0 && scopes_[s]->SignalNeedsHistory(id)) ? 1 : 0;
      unresolved = unresolved || id == 0;
    }
    route_unresolved_[r] = unresolved ? 1 : 0;
  }
  table_dirty_ = true;
}

bool IngestRouter::ResolveNewRoute(std::string_view name, uint32_t* route) {
  resolve_scratch_.clear();
  resolve_history_scratch_.clear();
  // "Accepted" = resolved on some scope, or deliberately excluded by some
  // scope's filter.  Either is a known decision worth memoizing in a route.
  bool any_accepted = false;
  bool unresolved = scopes_.empty();
  size_t excluded_here = 0;
  for (size_t s = 0; s < scopes_.size(); ++s) {
    SignalId id = 0;
    if (SlotExcludes(s, name)) {
      any_accepted = true;
      excluded_here += 1;
    } else {
      id = options_.auto_create_signals ? scopes_[s]->FindOrAddBufferSignal(name)
                                        : scopes_[s]->FindSignal(name);
      any_accepted = any_accepted || id != 0;
      unresolved = unresolved || id == 0;
    }
    resolve_scratch_.push_back(id);
    resolve_history_scratch_.push_back(
        (id != 0 && scopes_[s]->SignalNeedsHistory(id)) ? 1 : 0);
  }
  if (!any_accepted) {
    // Nothing resolved anywhere (auto-create off, unknown everywhere): do
    // not create a route - a stream of endless distinct unknown names must
    // not grow the table without bound.  The caller falls back to the
    // per-scope name shim (bounded by the scopes' pending-name caps).
    return false;
  }
  *route = static_cast<uint32_t>(route_names_.size());
  route_names_.emplace_back(name);
  name_to_route_.emplace(std::string(name), *route);
  route_unresolved_.push_back(unresolved ? 1 : 0);
  staged_ids_.insert(staged_ids_.end(), resolve_scratch_.begin(), resolve_scratch_.end());
  staged_history_.insert(staged_history_.end(), resolve_history_scratch_.begin(),
                         resolve_history_scratch_.end());
  excluded_slots_ += excluded_here;
  table_dirty_ = true;
  // Auto-creation bumped the scopes' signal epochs; re-sync so this staging
  // survives until the topology actually changes again.
  synced_epoch_ = RouteEpoch();
  return true;
}

void IngestRouter::ReResolveRoute(uint32_t route) {
  const std::string& name = route_names_[route];
  bool unresolved = scopes_.empty();
  for (size_t s = 0; s < scopes_.size(); ++s) {
    if (SlotExcludes(s, name)) {
      continue;  // excluded by design: id stays 0, nothing auto-created
    }
    SignalId& id = staged_ids_[static_cast<size_t>(route) * scopes_.size() + s];
    if (id == 0) {
      id = scopes_[s]->FindOrAddBufferSignal(name);
      staged_history_[static_cast<size_t>(route) * scopes_.size() + s] =
          (id != 0 && scopes_[s]->SignalNeedsHistory(id)) ? 1 : 0;
    }
    unresolved = unresolved || id == 0;
  }
  route_unresolved_[route] = unresolved ? 1 : 0;
  table_dirty_ = true;
  synced_epoch_ = RouteEpoch();
}

void IngestRouter::ShimPushUnresolved(uint32_t route, int64_t time_ms, double value) {
  const std::string& name = route_names_[route];
  for (size_t s = 0; s < scopes_.size(); ++s) {
    if (staged_ids_[static_cast<size_t>(route) * scopes_.size() + s] != 0) {
      continue;  // this slot is served through the span
    }
    if (SlotExcludes(s, name)) {
      continue;  // excluded by the slot's subscription filter
    }
    // Unknown name with auto-create off: go through the name shim so the
    // scope can still resolve at drain time if the app adds the signal
    // within the delay window.
    if (!scopes_[s]->PushBuffered(name, time_ms, value)) {
      shim_dropped_late_ += 1;
    }
  }
}

void IngestRouter::ShimPushAll(std::string_view name, int64_t time_ms, double value) {
  for (size_t s = 0; s < scopes_.size(); ++s) {
    if (SlotExcludes(s, name)) {
      continue;
    }
    if (!scopes_[s]->PushBuffered(name, time_ms, value)) {
      shim_dropped_late_ += 1;
    }
  }
}

void IngestRouter::Append(std::string_view name, int64_t time_ms, double value) {
  std::unique_lock<std::mutex> lock = LockRoutes();
  AppendLocked(name, time_ms, value);
}

void IngestRouter::AppendLocked(std::string_view name, int64_t time_ms, double value) {
  EnsureBatch();
  if (!epoch_valid_) {
    SyncRoutes();  // scope list changed mid-batch: re-snapshot before routing
  }
  if (name.empty()) {
    block_->Append(time_ms, value, kUnnamedRouteKey);
    return;
  }
  uint32_t route;
  if (memo_valid_ && name == memo_name_) {
    route = memo_route_;
  } else {
    auto it = name_to_route_.find(name);
    if (it != name_to_route_.end()) {
      route = it->second;
    } else if (!ResolveNewRoute(name, &route)) {
      ShimPushAll(name, time_ms, value);
      return;
    }
    memo_name_.assign(name);
    memo_route_ = route;
    memo_valid_ = true;
  }
  if (route_unresolved_[route] != 0) {
    if (options_.auto_create_signals && !scopes_.empty()) {
      // A signal disappeared (or a scope arrived) since this route was
      // built: recreate the missing BUFFER signals once, then return to the
      // pure span path.  (With no scopes there is nothing to create and the
      // rebuild would otherwise repeat per tuple.)
      ReResolveRoute(route);
    }
    if (route_unresolved_[route] != 0) {
      ShimPushUnresolved(route, time_ms, value);
      block_->has_unresolved = true;
    }
  }
  block_->Append(time_ms, value, route);
}

bool IngestRouter::ResolveRoute(std::string_view name, uint32_t* route) {
  std::unique_lock<std::mutex> lock = LockRoutes();
  if (name.empty()) {
    return false;  // the unnamed form has no route; use Append("")
  }
  EnsureBatch();
  if (!epoch_valid_) {
    SyncRoutes();  // ResolveNewRoute mutates the staged table: sync first
  }
  auto it = name_to_route_.find(name);
  if (it != name_to_route_.end()) {
    *route = it->second;
    return true;
  }
  return ResolveNewRoute(name, route);
}

void IngestRouter::AppendRoute(uint32_t route, int64_t time_ms, double value) {
  std::unique_lock<std::mutex> lock = LockRoutes();
  EnsureBatch();
  if (!epoch_valid_) {
    SyncRoutes();
  }
  if (route_unresolved_[route] != 0) {
    if (options_.auto_create_signals && !scopes_.empty()) {
      ReResolveRoute(route);
    }
    if (route_unresolved_[route] != 0) {
      ShimPushUnresolved(route, time_ms, value);
      block_->has_unresolved = true;
    }
  }
  block_->Append(time_ms, value, route);
}

void IngestRouter::AppendTupleLine(std::string_view line, std::string_view ns,
                                   int64_t* tuples, int64_t* parse_errors) {
  std::optional<TupleView> tuple = ParseTupleView(line);
  if (!tuple.has_value()) {
    if (!IsIgnorableLine(line)) {
      *parse_errors += 1;
    }
    return;
  }
  // The reserved separator never crosses the wire inside a name: rejecting
  // it here (the shared text entry point for both transports) is what keeps
  // "<ns>\x1f..." names mintable only by authenticated prefixing below.
  if (tuple->name.find(kNamespaceSep) != std::string_view::npos) {
    *parse_errors += 1;
    return;
  }
  std::unique_lock<std::mutex> lock = LockRoutes();
  *tuples += 1;
  if (ns.empty() || tuple->name.empty()) {
    AppendLocked(tuple->name, tuple->time_ms, tuple->value);
    return;
  }
  ns_scratch_.clear();
  ns_scratch_.reserve(ns.size() + 1 + tuple->name.size());
  ns_scratch_.append(ns);
  ns_scratch_.push_back(kNamespaceSep);
  ns_scratch_.append(tuple->name);
  AppendLocked(ns_scratch_, tuple->time_ms, tuple->value);
}

void IngestRouter::FanoutShard(size_t shard) {
  const size_t n = flush_block_->samples.size();
  int64_t dropped = 0;
  for (size_t i = shard; i < scopes_.size(); i += flush_shards_) {
    IngestSpan span{flush_block_, flush_table_, 0, static_cast<uint32_t>(n),
                    static_cast<uint32_t>(i),
                    !flush_table_->SlotFiltered(static_cast<uint32_t>(i))};
    size_t accepted = scopes_[i]->PushIngestSpan(span, flush_now_ms_[i]);
    dropped += static_cast<int64_t>(n - accepted);
  }
  shard_dropped_late_[shard] = dropped;
}

IngestRouter::FlushStats IngestRouter::Flush() {
  std::unique_lock<std::mutex> lock = LockRoutes();
  FlushStats out;
  out.dropped_late = shim_dropped_late_;
  shim_dropped_late_ = 0;
  if (block_ == nullptr || block_->empty() || scopes_.empty()) {
    block_.reset();  // an unused block returns to the pool via its refcount
    return out;
  }
  if (!epoch_valid_) {
    // A scope was added/removed after the last Append: re-stage so the
    // published table's stride matches the slots handed out below.
    SyncRoutes();
  }
  if (table_dirty_) {
    // Publish one immutable snapshot for this flush; spans in flight keep
    // whatever snapshot they were handed.
    auto table = std::make_shared<RouteTable>();
    table->num_slots = static_cast<uint32_t>(scopes_.size());
    table->ids = staged_ids_;
    // Publish the history bits only when some slot actually needs the
    // per-sample path: an empty vector keeps the common display-only case
    // on the pure O(live routes) fold with one emptiness test.
    if (std::find(staged_history_.begin(), staged_history_.end(), uint8_t{1}) !=
        staged_history_.end()) {
      table->needs_history = staged_history_;
    }
    if (filtered_scopes_ > 0) {
      table->slot_filtered.resize(scopes_.size());
      for (size_t s = 0; s < scopes_.size(); ++s) {
        table->slot_filtered[s] = filters_[s] != nullptr ? 1 : 0;
      }
    }
    table_ = std::move(table);
    table_dirty_ = false;
  }
  flush_block_ = std::move(block_);
  flush_table_ = table_;
  flush_shards_ = pool_.worker_count() > 0
                      ? std::min(options_.fanout_shards, scopes_.size())
                      : 1;
  shard_dropped_late_.assign(flush_shards_, 0);
  flush_now_ms_.resize(scopes_.size());
  for (size_t i = 0; i < scopes_.size(); ++i) {
    flush_now_ms_[i] = scopes_[i]->NowMs();
  }
  pool_.Run(flush_shards_, fanout_job_);
  for (int64_t dropped : shard_dropped_late_) {
    out.dropped_late += dropped;
  }
  flush_block_.reset();
  flush_table_.reset();
  return out;
}

}  // namespace gscope
