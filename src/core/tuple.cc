#include "core/tuple.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace gscope {
namespace {

std::string_view TrimLeft(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) {
    ++i;
  }
  return s.substr(i);
}

std::string_view TrimRight(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && (s[n - 1] == ' ' || s[n - 1] == '\t' || s[n - 1] == '\r' || s[n - 1] == '\n')) {
    --n;
  }
  return s.substr(0, n);
}

// Takes the next whitespace-delimited token off the front of `s`.
std::string_view NextToken(std::string_view* s) {
  *s = TrimLeft(*s);
  size_t end = 0;
  while (end < s->size() && !std::isspace(static_cast<unsigned char>((*s)[end]))) {
    ++end;
  }
  std::string_view token = s->substr(0, end);
  *s = s->substr(end);
  return token;
}

bool ParseInt64(std::string_view token, int64_t* out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool ParseDouble(std::string_view token, double* out) {
  // std::from_chars<double> is available in libstdc++ 11+, but strtod keeps
  // us portable; token is bounded so copy to a small buffer.
  if (token.empty() || token.size() >= 64) {
    return false;
  }
  char buf[64];
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + token.size();
}

}  // namespace

std::string FormatTuple(const Tuple& tuple) {
  char buf[128];
  int n;
  if (tuple.name.empty()) {
    n = std::snprintf(buf, sizeof(buf), "%lld %.17g\n", static_cast<long long>(tuple.time_ms),
                      tuple.value);
  } else {
    n = std::snprintf(buf, sizeof(buf), "%lld %.17g %s\n", static_cast<long long>(tuple.time_ms),
                      tuple.value, tuple.name.c_str());
  }
  if (n < 0) {
    return {};
  }
  if (static_cast<size_t>(n) < sizeof(buf)) {
    return std::string(buf, static_cast<size_t>(n));
  }
  // Name too long for the stack buffer; build it the slow way.
  std::string out = std::to_string(tuple.time_ms);
  char vbuf[40];
  std::snprintf(vbuf, sizeof(vbuf), " %.17g ", tuple.value);
  out += vbuf;
  out += tuple.name;
  out += '\n';
  return out;
}

bool IsIgnorableLine(std::string_view line) {
  std::string_view s = TrimLeft(line);
  s = TrimRight(s);
  return s.empty() || s.front() == '#';
}

std::optional<Tuple> ParseTuple(std::string_view line) {
  if (IsIgnorableLine(line)) {
    return std::nullopt;
  }
  std::string_view rest = TrimRight(line);

  std::string_view time_tok = NextToken(&rest);
  std::string_view value_tok = NextToken(&rest);
  std::string_view name_tok = NextToken(&rest);
  std::string_view extra = TrimLeft(rest);

  if (time_tok.empty() || value_tok.empty() || !extra.empty()) {
    return std::nullopt;
  }

  Tuple tuple;
  if (!ParseInt64(time_tok, &tuple.time_ms)) {
    return std::nullopt;
  }
  if (!ParseDouble(value_tok, &tuple.value)) {
    return std::nullopt;
  }
  tuple.name.assign(name_tok.begin(), name_tok.end());
  return tuple;
}

}  // namespace gscope
