#include "core/tuple.h"

#include <charconv>
#include <cmath>
#include <cstdlib>

namespace gscope {
namespace {

// The format's whitespace set (tuple names may not contain whitespace).
inline bool IsWs(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

std::string_view TrimLeft(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && IsWs(s[i])) {
    ++i;
  }
  return s.substr(i);
}

}  // namespace

void AppendTuple(std::string& out, int64_t time_ms, double value, std::string_view name) {
  // <int64> <shortest round-trip double> [<name>]\n -- comfortably < 64 chars
  // for the numeric part.
  char buf[64];
  auto [tp, tec] = std::to_chars(buf, buf + sizeof(buf), time_ms);
  (void)tec;
  *tp++ = ' ';
  char* vp;
  // Telemetry values are very often integral (counters, sizes, windows);
  // small integral doubles have the integer digits as their shortest
  // round-trip form, and integer formatting is several times cheaper.  The
  // range check runs on the double first: casting NaN/out-of-range values
  // to int64_t would be undefined behaviour (these comparisons are false
  // for NaN, routing it to the general path).
  // (!signbit also excludes every negative value and -0.0, so the cast
  // operates on [0, 1e6) only.)
  if (value < 1000000.0 && !std::signbit(value) &&
      static_cast<double>(static_cast<int64_t>(value)) == value) {
    auto [ip, iec] = std::to_chars(tp, buf + sizeof(buf), static_cast<int64_t>(value));
    (void)iec;
    vp = ip;
  } else {
    auto [dp, dec] = std::to_chars(tp, buf + sizeof(buf), value);
    (void)dec;
    vp = dp;
  }
  out.append(buf, static_cast<size_t>(vp - buf));
  if (!name.empty()) {
    out.push_back(' ');
    out.append(name);
  }
  out.push_back('\n');
}

std::string FormatTuple(const Tuple& tuple) {
  std::string out;
  out.reserve(32 + tuple.name.size());
  AppendTuple(out, tuple.time_ms, tuple.value, tuple.name);
  return out;
}

bool IsIgnorableLine(std::string_view line) {
  std::string_view s = TrimLeft(line);
  return s.empty() || s.front() == '#';
}

std::optional<TupleView> ParseTupleView(std::string_view line) {
  // Single forward pass (the streaming hot path).  Blank and '#' comment
  // lines fall out as nullopt through token parsing; callers that need to
  // distinguish them from malformed lines check IsIgnorableLine on failure.
  const char* p = line.data();
  const char* end = p + line.size();
  auto skip_ws = [&p, end]() {
    while (p < end && IsWs(*p)) {
      ++p;
    }
  };

  TupleView view;
  skip_ws();
  auto [tp, tec] = std::from_chars(p, end, view.time_ms);
  if (tec != std::errc{} || tp == p || (tp < end && !IsWs(*tp))) {
    return std::nullopt;
  }
  p = tp;

  skip_ws();
  if (p < end && *p == '+') {
    ++p;  // from_chars rejects an explicit '+'; strtod (the previous
          // implementation) accepted it
  }
  // Integer fast path first (the common case for telemetry values); fall
  // back to the full double parse when a fraction/exponent follows.
  int64_t integral;
  auto [ip, iec] = std::from_chars(p, end, integral);
  if (iec == std::errc{} && ip != p && (ip == end || IsWs(*ip))) {
    view.value = static_cast<double>(integral);
    p = ip;
  } else {
    auto [vp, vec] = std::from_chars(p, end, view.value);
    if (vec != std::errc{} || vp == p || (vp < end && !IsWs(*vp))) {
      return std::nullopt;
    }
    p = vp;
  }

  skip_ws();
  const char* name_begin = p;
  while (p < end && !IsWs(*p)) {
    ++p;
  }
  view.name = std::string_view(name_begin, static_cast<size_t>(p - name_begin));
  skip_ws();
  if (p != end) {
    return std::nullopt;  // trailing junk after the name
  }
  return view;
}

std::optional<Tuple> ParseTuple(std::string_view line) {
  std::optional<TupleView> view = ParseTupleView(line);
  if (!view.has_value()) {
    return std::nullopt;
  }
  Tuple tuple;
  tuple.time_ms = view->time_ms;
  tuple.value = view->value;
  tuple.name.assign(view->name.begin(), view->name.end());
  return tuple;
}

}  // namespace gscope
