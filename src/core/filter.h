// Per-signal low-pass filter (Section 3.1).
//
// The paper: "The low-pass filter uses the following equation to filter the
// signal: y_i = alpha * y_{i-1} + (1 - alpha) * x_i.  The alpha filter
// parameter ranges from the default value of zero (unfiltered signal) to one."
#ifndef GSCOPE_CORE_FILTER_H_
#define GSCOPE_CORE_FILTER_H_

namespace gscope {

class LowPassFilter {
 public:
  LowPassFilter() = default;
  explicit LowPassFilter(double alpha) { set_alpha(alpha); }

  // Alpha is clamped to [0, 1].  alpha == 0 passes the signal through;
  // alpha == 1 holds the first sample forever.
  void set_alpha(double alpha);
  double alpha() const { return alpha_; }

  // Feeds one sample; returns the filtered value.
  double Apply(double x);

  // Forgets history; the next sample passes through as-is.
  void Reset();

  bool primed() const { return primed_; }
  double last() const { return y_; }

 private:
  double alpha_ = 0.0;
  double y_ = 0.0;
  bool primed_ = false;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_FILTER_H_
