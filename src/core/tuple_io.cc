#include "core/tuple_io.h"

namespace gscope {

bool TupleWriter::Open(const std::string& path) {
  Close();
  out_.open(path, std::ios::out | std::ios::trunc);
  last_time_ms_ = INT64_MIN;
  written_ = 0;
  rejected_ = 0;
  return out_.is_open();
}

void TupleWriter::Close() {
  if (out_.is_open()) {
    out_.close();
  }
}

void TupleWriter::Comment(const std::string& text) {
  if (out_.is_open()) {
    out_ << "# " << text << '\n';
  }
}

bool TupleWriter::Write(const Tuple& tuple) {
  return Write(tuple.time_ms, tuple.value, tuple.name);
}

bool TupleWriter::Write(int64_t time_ms, double value, std::string_view name) {
  if (!out_.is_open() || time_ms < last_time_ms_) {
    ++rejected_;
    return false;
  }
  line_scratch_.clear();
  AppendTuple(line_scratch_, time_ms, value, name);
  out_.write(line_scratch_.data(), static_cast<std::streamsize>(line_scratch_.size()));
  last_time_ms_ = time_ms;
  ++written_;
  return true;
}

bool TupleReader::Open(const std::string& path) {
  if (in_.is_open()) {
    in_.close();
  }
  in_.clear();
  in_.open(path, std::ios::in);
  last_time_ms_ = INT64_MIN;
  parsed_ = 0;
  malformed_ = 0;
  out_of_order_ = 0;
  return in_.is_open();
}

std::optional<Tuple> TupleReader::Next() {
  std::string line;
  while (std::getline(in_, line)) {
    if (IsIgnorableLine(line)) {
      continue;
    }
    std::optional<Tuple> tuple = ParseTuple(line);
    if (!tuple.has_value()) {
      ++malformed_;
      continue;
    }
    if (tuple->time_ms < last_time_ms_) {
      ++out_of_order_;
      continue;
    }
    last_time_ms_ = tuple->time_ms;
    ++parsed_;
    return tuple;
  }
  return std::nullopt;
}

std::vector<Tuple> TupleReader::ReadAll() {
  std::vector<Tuple> out;
  while (auto tuple = Next()) {
    out.push_back(std::move(*tuple));
  }
  return out;
}

}  // namespace gscope
