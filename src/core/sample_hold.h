// Sample-and-hold helper (Section 4.2).
//
// "Applications can be designed so that certain events change a state and
// then the state is held until the next event changes the state.  Between
// event arrivals, polling can detect the previous event by monitoring the
// held state."  SampleAndHold is that held word of memory, made thread-safe
// so an event thread can update it while the scope polls it.  It also counts
// updates so tests can verify whether the polling frequency was sufficient
// to observe every event (the paper's back-to-back arrival caveat).
#ifndef GSCOPE_CORE_SAMPLE_HOLD_H_
#define GSCOPE_CORE_SAMPLE_HOLD_H_

#include <atomic>
#include <cstdint>

namespace gscope {

class SampleAndHold {
 public:
  explicit SampleAndHold(double initial = 0.0) : value_(initial) {}

  // Called by the event source: latches the new state.
  void Update(double value) {
    value_.store(value, std::memory_order_relaxed);
    updates_.fetch_add(1, std::memory_order_relaxed);
  }

  // Called by the scope's poll: reads the held state.
  double Read() const {
    reads_.fetch_add(1, std::memory_order_relaxed);
    return value_.load(std::memory_order_relaxed);
  }

  int64_t updates() const { return updates_.load(std::memory_order_relaxed); }
  int64_t reads() const { return reads_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_;
  std::atomic<int64_t> updates_{0};
  mutable std::atomic<int64_t> reads_{0};
};

}  // namespace gscope

#endif  // GSCOPE_CORE_SAMPLE_HOLD_H_
