// Sample-and-hold helper (Section 4.2).
//
// "Applications can be designed so that certain events change a state and
// then the state is held until the next event changes the state.  Between
// event arrivals, polling can detect the previous event by monitoring the
// held state."  BasicSampleAndHold is that held word of memory, made
// thread-safe so an event thread can update it while the scope polls it.
// Update() counts so tests can verify whether the polling frequency was
// sufficient to observe every event (the paper's back-to-back arrival
// caveat); read counting is OPT-IN (CountedSampleAndHold): the default
// Read() is a single relaxed load, because an unconditional fetch_add on a
// shared cache line would tax every poll even when nobody reads the stat.
//
// The same last-value-per-poll observation drives the scope drain's
// last-wins coalescing (core/ingest_bus.h IngestBlock::RouteLast,
// Scope::DrainSpanCoalesced, docs/perf.md): between two polling ticks only
// the newest buffered sample per display-only signal is displayable, so the
// drain folds a batch of N samples over K live signals into K hold writes.
#ifndef GSCOPE_CORE_SAMPLE_HOLD_H_
#define GSCOPE_CORE_SAMPLE_HOLD_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace gscope {

namespace internal {
struct SampleHoldReadCounter {
  mutable std::atomic<int64_t> read_count{0};
};
struct SampleHoldNoReadCounter {};
}  // namespace internal

template <bool kCountReads = false>
class BasicSampleAndHold
    : private std::conditional_t<kCountReads, internal::SampleHoldReadCounter,
                                 internal::SampleHoldNoReadCounter> {
 public:
  explicit BasicSampleAndHold(double initial = 0.0) : value_(initial) {}

  // Called by the event source: latches the new state.
  void Update(double value) {
    value_.store(value, std::memory_order_relaxed);
    updates_.fetch_add(1, std::memory_order_relaxed);
  }

  // Called by the scope's poll: reads the held state.  One relaxed load
  // unless read counting was opted into.
  double Read() const {
    if constexpr (kCountReads) {
      this->read_count.fetch_add(1, std::memory_order_relaxed);
    }
    return value_.load(std::memory_order_relaxed);
  }

  int64_t updates() const { return updates_.load(std::memory_order_relaxed); }
  // 0 when read counting is compiled out (the default).
  int64_t reads() const {
    if constexpr (kCountReads) {
      return this->read_count.load(std::memory_order_relaxed);
    } else {
      return 0;
    }
  }

 private:
  std::atomic<double> value_;
  std::atomic<int64_t> updates_{0};
};

// The default: uncounted reads (polling costs one load).
using SampleAndHold = BasicSampleAndHold<false>;
// Opt-in read accounting for tests/diagnostics that compare reads to
// updates (the paper's missed-event detection).
using CountedSampleAndHold = BasicSampleAndHold<true>;

}  // namespace gscope

#endif  // GSCOPE_CORE_SAMPLE_HOLD_H_
