// Event aggregation between polling intervals (Section 4.2).
//
// The paper's aggregation functions, each illustrated with a network example:
//   Maximum / Minimum  - max/min sample, e.g. latency
//   Sum                - sum of sample values, e.g. bytes received
//   Rate               - sum / polling period, e.g. bandwidth in bytes/sec
//   Average            - sum / number of events, e.g. bytes per packet
//   Events             - number of events, e.g. number of packets
//   AnyEvent           - did an event occur, e.g. any packet arrived?
//
// An EventAggregator is shared between the event producer (which may live on
// another thread) and the scope, which drains one aggregate value per polling
// interval.  Push() is thread-safe.
#ifndef GSCOPE_CORE_AGGREGATE_H_
#define GSCOPE_CORE_AGGREGATE_H_

#include <cstdint>
#include <mutex>

#include "runtime/clock.h"

namespace gscope {

enum class AggregateKind : uint8_t {
  kMaximum,
  kMinimum,
  kSum,
  kRate,
  kAverage,
  kEvents,
  kAnyEvent,
  kLast,  // extension: most recent sample (pure sample-and-hold drain)
};

const char* AggregateKindName(AggregateKind kind);

class EventAggregator {
 public:
  explicit EventAggregator(AggregateKind kind) : kind_(kind) {}

  AggregateKind kind() const { return kind_; }

  // Records one event sample.  Thread-safe.
  void Push(double sample);

  // Returns the aggregate over the events pushed since the previous Drain and
  // resets the interval.  `interval_ns` is the polling period, used by kRate
  // (per-second rate).  If no event arrived, returns the provided `hold`
  // value for value-like aggregates and the natural zero for counting ones.
  // Thread-safe.
  double Drain(Nanos interval_ns, double hold = 0.0);

  // Events accumulated in the current (undrained) interval.
  int64_t pending_events() const;

 private:
  double AggregateLocked(Nanos interval_ns, double hold) const;
  void ResetLocked();

  const AggregateKind kind_;
  mutable std::mutex mu_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double last_ = 0.0;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_AGGREGATE_H_
