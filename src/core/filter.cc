#include "core/filter.h"

namespace gscope {

void LowPassFilter::set_alpha(double alpha) {
  if (alpha < 0.0) {
    alpha = 0.0;
  } else if (alpha > 1.0) {
    alpha = 1.0;
  }
  alpha_ = alpha;
}

double LowPassFilter::Apply(double x) {
  if (!primed_) {
    // Seed with the first sample so the filter does not ramp up from zero.
    y_ = x;
    primed_ = true;
    return y_;
  }
  y_ = alpha_ * y_ + (1.0 - alpha_) * x;
  return y_;
}

void LowPassFilter::Reset() {
  primed_ = false;
  y_ = 0.0;
}

}  // namespace gscope
