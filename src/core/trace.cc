#include "core/trace.h"

namespace gscope {
namespace {
const TracePoint kInvalidPoint{};
}  // namespace

Trace::Trace(size_t capacity) : points_(capacity == 0 ? 1 : capacity) {}

void Trace::Push(double value) { PushPoint(value, /*synthesized=*/false); }

void Trace::PushWithLoss(double value, int64_t columns) {
  // Missed ticks hold the previous value; cap at capacity since older
  // columns would be overwritten anyway.
  int64_t cap = static_cast<int64_t>(points_.size());
  if (columns > cap) {
    columns = cap;
  }
  double hold = valid_count_ > 0 ? latest() : value;
  for (int64_t i = 0; i < columns; ++i) {
    PushPoint(hold, /*synthesized=*/true);
  }
  PushPoint(value, /*synthesized=*/false);
}

void Trace::Reset() {
  for (auto& p : points_) {
    p = TracePoint{};
  }
  head_ = 0;
  valid_count_ = 0;
}

const TracePoint& Trace::At(size_t age) const {
  if (age >= valid_count_) {
    return kInvalidPoint;
  }
  size_t idx = (head_ + points_.size() - 1 - age) % points_.size();
  return points_[idx];
}

std::vector<TracePoint> Trace::Snapshot() const {
  std::vector<TracePoint> out;
  out.reserve(valid_count_);
  for (size_t i = valid_count_; i > 0; --i) {
    out.push_back(At(i - 1));
  }
  return out;
}

std::vector<double> Trace::Values() const {
  std::vector<double> out;
  out.reserve(valid_count_);
  for (size_t i = valid_count_; i > 0; --i) {
    const TracePoint& p = At(i - 1);
    if (p.valid) {
      out.push_back(p.value);
    }
  }
  return out;
}

double Trace::latest() const { return valid_count_ > 0 ? At(0).value : 0.0; }

void Trace::PushPoint(double value, bool synthesized) {
  points_[head_] = TracePoint{value, true, synthesized};
  head_ = (head_ + 1) % points_.size();
  if (valid_count_ < points_.size()) {
    ++valid_count_;
  }
  ++total_pushed_;
  if (synthesized) {
    ++synthesized_count_;
  }
}

}  // namespace gscope
