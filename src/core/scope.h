// Scope: the GtkScope analogue (Sections 2 and 3).
//
// A Scope owns a set of signals, samples them on a polling period through the
// main loop's timeout mechanism, and retains one Trace (pixel-column ring)
// per signal for display.  Every action that the paper's GUI offers has a
// method here ("a programmatic interface for every action that can be
// performed from the GUI"):
//
//   GUI element (Figures 1-2)      method
//   -------------------------      -----------------------------------
//   sampling period widget         SetPollingMode / SetPollingPeriodMs
//   zoom / bias widgets            SetZoom / SetBias
//   delay widget                   SetDelayMs
//   left-click on signal name      ToggleHidden / SetHidden
//   right-click parameter window   SetRange / SetColor / SetLineMode /
//                                  SetFilterAlpha
//   Value button                   LatestValue
//   record                         StartRecording / StopRecording
//   playback                       SetPlaybackMode
//   time/frequency selector        SetDomain
//
// Acquisition modes (Section 3.1): polling (sample the live program) and
// playback (replay a tuple file).  Both display one sampling point per pixel
// column per polling period.  Lost polling timeouts advance the traces by the
// number of missed columns (Section 4.5).
//
// Threading: all Scope methods must run on the loop thread, except
// PushBuffered which is thread-safe (this is the paper's GTK-lock
// discipline; cross-thread calls go through MainLoop::Invoke).
//
// Concurrent mode (SetConcurrent): when the net layer shards sessions
// across per-core loops, an IngestRouter running on another loop must read
// this scope's signal table while building route snapshots (FindSignal /
// FindOrAddBufferSignal / SignalNeedsHistory) — and auto-creation mutates
// it.  Concurrent mode gates those table-build entry points, the signal-set
// mutators, the consumer mutators and the poll tick behind one internal
// mutex so the owner loop's tick never walks a reallocating signal vector.
// Off (the default) nothing locks and behaviour is byte-identical; on, the
// tick pays one uncontended lock per tick, never per sample.  Consumer
// mutators (AttachSampleSink and friends) must then not be called from
// inside a tick callback (a sink or tap body) — that would self-deadlock.
#ifndef GSCOPE_CORE_SCOPE_H_
#define GSCOPE_CORE_SCOPE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/aggregate.h"
#include "core/filter.h"
#include "core/ingest_bus.h"
#include "core/sample_buffer.h"
#include "core/signal_spec.h"
#include "core/string_index.h"
#include "core/trace.h"
#include "core/trigger.h"
#include "core/tuple_io.h"
#include "core/value.h"
#include "runtime/event_loop.h"
#include "runtime/relaxed_counter.h"

namespace gscope {

enum class AcquisitionMode : uint8_t { kPolling, kPlayback };
enum class DisplayDomain : uint8_t { kTime, kFrequency };

struct ScopeOptions {
  std::string name = "scope";
  // Canvas geometry; width is also the number of trace columns retained.
  int width = 512;
  int height = 256;
  // Playback: auto-create signals for tuple names not seen before.
  bool auto_create_playback_signals = true;
  // Capacity of the scope-wide buffer for BUFFER signals.
  size_t buffer_capacity = 1 << 16;
  // Last-wins drain coalescing (core/sample_hold.h): display-only BUFFER
  // signals — no every-sample consumer attached — keep only the newest
  // sample per drain tick, so a whole-span drain costs O(live signals)
  // instead of O(batch).  Off = the pre-coalescing per-sample drain, kept as
  // a kill switch and as the benchmark baseline (bench/bench_drain.cc).
  bool coalesce_display_only = true;
};

// How a buffered tap (SetBufferedTap) interacts with drain coalescing.
enum class TapMode : uint8_t {
  // The tap is an every-sample consumer (e.g. the stream server's remote
  // session echo): every signal of this scope needs the full history path.
  kEverySample,
  // The tap only wants what the display shows: for display-only signals it
  // fires once per signal per drained span with that span's last-wins
  // winner, and coalescing stays effective.  Signals that independently
  // need history (a sample sink attached, or coalescing disabled) still
  // deliver per sample to the tap — the tap never suppresses data a
  // co-attached consumer forced onto the history path.
  kCoalesced,
};

class Scope {
 public:
  // `loop` is not owned and must outlive the scope.
  explicit Scope(MainLoop* loop, ScopeOptions options = {});
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  const std::string& name() const { return options_.name; }
  int width() const { return options_.width; }
  int height() const { return options_.height; }
  MainLoop* loop() const { return loop_; }

  // Enables the cross-loop table-build locking described in the header
  // comment.  Call before the scope is visible to another thread; the flag
  // itself is not synchronized.
  void SetConcurrent(bool on) { concurrent_ = on; }
  bool concurrent() const { return concurrent_; }

  // -- Signals (gtk_scope_signal_new / dynamic addition and removal) -------

  // Adds a signal; returns its id (0 on invalid spec, e.g. duplicate name).
  SignalId AddSignal(const SignalSpec& spec);
  bool RemoveSignal(SignalId id);
  // Id for a name, 0 if unknown.  O(1) through the interned name index.
  SignalId FindSignal(std::string_view name) const;
  // FindSignal, but creates a BUFFER signal named `name` when unknown (the
  // stream server's auto-create, without a second index lookup).
  SignalId FindOrAddBufferSignal(std::string_view name);
  std::vector<SignalId> SignalIds() const;
  size_t signal_count() const { return signals_.size(); }
  // Bumped on every AddSignal/RemoveSignal; lets callers (e.g. the stream
  // server's per-client name->id caches) cheaply detect staleness.  Relaxed
  // atomic: routers on other loops poll it when building route snapshots.
  uint64_t signals_epoch() const { return signals_epoch_.load(std::memory_order_relaxed); }

  // -- Per-signal parameters (Figure 2 window) ------------------------------

  bool SetHidden(SignalId id, bool hidden);
  bool ToggleHidden(SignalId id);
  bool SetFilterAlpha(SignalId id, double alpha);
  bool SetRange(SignalId id, double min, double max);
  bool SetColor(SignalId id, Rgb color);
  bool SetLineMode(SignalId id, LineMode mode);

  // Current (possibly GUI-modified) spec; null for unknown ids.  Signals
  // live in dense storage: the returned pointers are invalidated by any
  // subsequent AddSignal/RemoveSignal — re-fetch rather than caching them
  // across signal-set mutations.
  const SignalSpec* SpecFor(SignalId id) const;
  const Trace* TraceFor(SignalId id) const;
  // The Value button: most recent displayed (filtered) value.
  std::optional<double> LatestValue(SignalId id) const;
  // Most recent raw (pre-filter) sample.
  std::optional<double> LatestRaw(SignalId id) const;
  // Producer timestamp of the most recent buffered sample routed (or
  // coalesced) to this signal; nullopt before any buffered data arrived.
  std::optional<int64_t> LatestBufferedTime(SignalId id) const;

  // Maps a signal value to the 0..100 y ruler using the signal's min/max and
  // the scope zoom/bias: ruler = ((v - min) / (max - min) * 100) * zoom + bias.
  double NormalizeValue(SignalId id, double value) const;

  // -- Acquisition ----------------------------------------------------------

  // gtk_scope_set_polling_mode(scope, period_ms).
  bool SetPollingMode(int64_t period_ms);
  // Playback from a recorded tuple file at the given display period.
  bool SetPlaybackMode(const std::string& path, int64_t period_ms);
  AcquisitionMode mode() const { return mode_; }

  // gtk_scope_start_polling / stop.  Start installs the timeout source.
  bool StartPolling();
  void StopPolling();
  bool IsRunning() const { return poll_source_ != 0; }

  int64_t polling_period_ms() const { return period_ms_; }
  // Adjusts the period while running (the sampling-period widget).
  bool SetPollingPeriodMs(int64_t period_ms);

  // -- Display parameters ---------------------------------------------------

  void SetZoom(double zoom);
  double zoom() const { return zoom_; }
  void SetBias(double bias);
  double bias() const { return bias_; }
  void SetDelayMs(int64_t delay_ms);
  int64_t delay_ms() const { return delay_ms_.load(std::memory_order_relaxed); }
  void SetDomain(DisplayDomain domain) { domain_ = domain; }
  DisplayDomain domain() const { return domain_; }

  // -- Buffered data (BUFFER signals) ---------------------------------------

  // Thread-safe, allocation-free push of a timestamped sample for the signal
  // with id `id` (from FindSignal / AddSignal).  id 0 is accepted and counted
  // as buffered_unmatched at drain time.  Returns false if the sample was
  // late and dropped.  This is the steady-state ingest fast path.
  bool PushBuffered(SignalId id, int64_t time_ms, double value);

  // Batched fast path: pushes `count` pre-keyed samples (key = SignalId or
  // the sample-buffer sentinels) with one scope-time read and one lock
  // round-trip per buffer shard.  Returns the number accepted; rejects are
  // late drops.  Thread-safe.
  size_t PushBufferedBatch(const Sample* samples, size_t count);

  // Name-keyed shim over the id fast path: resolves `signal_name` through
  // the interned index (empty name = the single-signal special case, routed
  // to the first BUFFER signal at drain time).  Thread-safe.
  bool PushBuffered(std::string_view signal_name, int64_t time_ms, double value);
  SampleBuffer& buffer() { return buffer_; }

  // O(1) span hand-off from an IngestRouter: the scope keeps a reference to
  // the shared parsed block instead of copying its samples, and translates
  // route keys to its own signals at drain time.  A span whose newest sample
  // already missed the display deadline is dropped whole; a span straddling
  // the deadline degrades to per-sample pushes through the regular buffer.
  // Returns the number of samples not rejected as late.  Thread-safe (the
  // router's fan-out workers call this).  `now_ms` is the scope time the
  // late-drop verdict is judged against; the router captures it on the loop
  // thread at flush so worker scheduling latency cannot turn an on-time
  // batch late.
  size_t PushIngestSpan(const IngestSpan& span, int64_t now_ms);
  size_t PushIngestSpan(const IngestSpan& span) { return PushIngestSpan(span, NowMs()); }
  IngestSpanQueue::Stats ingest_span_stats() const { return ingest_spans_.stats(); }
  size_t pending_ingest_samples() const { return ingest_spans_.queued_samples(); }

  // Observer of buffered samples as they route to signals at drain time
  // (loop thread).  This is the egress hook of the control channel: a
  // remote scope session re-serializes each routed sample back to its
  // client.  In kEverySample mode (the default) the tap is an every-sample
  // consumer: it sees each sample before sample-and-hold decimates, and it
  // disables drain coalescing for the whole scope.  In kCoalesced mode it
  // fires once per display-only signal per drained span with the last-wins
  // winner (see TapMode::kCoalesced for the sink-attached caveat).  Null
  // (default) disables the hook.  Changing the tap bumps consumers_epoch().
  using BufferedTapFn = std::function<void(std::string_view name, int64_t time_ms, double value)>;
  void SetBufferedTap(BufferedTapFn tap, TapMode mode = TapMode::kEverySample);

  // -- Every-sample consumers (history sinks) -------------------------------

  // A sample sink attached to a signal observes EVERY buffered sample routed
  // to it, in time order, at drain time (loop thread) — the full-history
  // path that triggers, high-rate traces, aggregates, envelopes and
  // exporters need.  Signals without a sink are "display-only": between
  // polls only their last value is displayable (core/sample_hold.h), so the
  // drain coalesces their samples to one hold write per tick.  Attach and
  // detach bump consumers_epoch(); routers fold that epoch into their route
  // snapshots, so a mode flip takes effect at the next route-table build,
  // never via a per-sample check.
  using SampleSinkFn = std::function<void(int64_t time_ms, double value)>;
  // Returns a detach handle, 0 for unknown signals.
  uint64_t AttachSampleSink(SignalId id, SampleSinkFn sink);
  bool DetachSampleSink(uint64_t sink_handle);
  // Convenience adapters for the classic consumer kinds (the pointee is not
  // owned and must outlive the attachment).
  uint64_t AttachTrigger(SignalId id, Trigger* trigger) {
    return trigger == nullptr ? 0 : AttachSampleSink(id, [trigger](int64_t, double v) {
      trigger->Feed(v);
    });
  }
  uint64_t AttachAggregate(SignalId id, EventAggregator* aggregate) {
    return aggregate == nullptr ? 0 : AttachSampleSink(id, [aggregate](int64_t, double v) {
      aggregate->Push(v);
    });
  }
  // Full-rate history trace: one column per sample, not per poll tick.
  uint64_t AttachHistoryTrace(SignalId id, Trace* trace) {
    return trace == nullptr ? 0 : AttachSampleSink(id, [trace](int64_t, double v) {
      trace->Push(v);
    });
  }
  // Every-sample export in tuple format (render/export.h handles per-tick).
  uint64_t AttachExport(SignalId id, TupleWriter* writer);
  // True when `id` has a sink attached, or an every-sample tap covers the
  // scope: its samples must take the history path at drain time.
  bool SignalNeedsHistory(SignalId id) const;
  // Bumped by every sink attach/detach and tap change; routers fold this
  // into RouteEpoch() like signals_epoch().  Relaxed atomic for the same
  // cross-loop reason as signals_epoch().
  uint64_t consumers_epoch() const { return consumers_epoch_.load(std::memory_order_relaxed); }
  size_t sample_sink_count() const { return total_sinks_; }

  // Copies `reference`'s time origin so NowMs() values of the two scopes are
  // directly comparable.  A remote scope session created mid-stream must
  // judge producer timestamps on the server's existing axis, not restart at
  // zero.  Call before StartPolling; no-op if the reference never started.
  void AdoptTimeBase(const Scope& reference);

  // -- Recording ------------------------------------------------------------

  bool StartRecording(const std::string& path);
  void StopRecording();
  bool IsRecording() const { return recorder_.is_open(); }

  // -- Introspection ---------------------------------------------------------

  struct Counters {
    int64_t ticks = 0;          // poll callbacks dispatched
    int64_t lost_ticks = 0;     // missed periods compensated (Section 4.5)
    int64_t samples = 0;        // sampling points taken
    int64_t buffered_routed = 0;
    int64_t buffered_unmatched = 0;
    // Last-wins coalescing: buffered samples folded away at drain time
    // because only the newest value per display-only signal per tick is
    // displayable (each fold's winner still counts in buffered_routed).
    int64_t samples_coalesced = 0;
    // Span samples delivered one by one through the history path (an
    // every-sample consumer, an every-sample tap, or unnamed routing).
    int64_t samples_retained = 0;
    bool playback_done = false;
  };
  const Counters& counters() const { return counters_; }

  // Lock-free mirror of the two drain tallies above, published once per
  // poll tick - NOT per sample, so the drain hot path stays atomic-free.
  // A STATS fold running on another loop reads the mirror instead of
  // counters(); the value lags the live counter by at most one tick.
  struct CoalesceMirror {
    RelaxedCounter samples_coalesced;
    RelaxedCounter samples_retained;
  };
  const CoalesceMirror& coalesce_mirror() const { return coalesce_mirror_; }
  const TimerStats* poll_stats() const;

  // Milliseconds of scope time since StartPolling (0 when never started).
  int64_t NowMs() const;

  // Runs one poll tick synchronously, as if the timeout fired with `lost`
  // missed periods.  Drives tests and simulation-fed scopes deterministically.
  void TickOnce(int64_t lost = 0);

 private:
  struct SampleSink {
    uint64_t handle = 0;
    SampleSinkFn fn;
  };

  struct SignalState {
    SignalId id = 0;
    SignalSpec spec;
    LowPassFilter filter;
    Trace trace;
    double latest_raw = 0.0;
    double latest_display = 0.0;
    bool has_value = false;
    // Sample-and-hold state for BUFFER signals between drains.
    double buffered_hold = 0.0;
    int64_t buffered_hold_time_ms = 0;  // producer stamp of the held sample
    bool buffered_primed = false;
    // Every-sample sinks attached to this signal.  Stored per signal so the
    // history path dispatches in O(sinks on this signal), not O(all sinks
    // on the scope); non-empty = the signal needs the full history path.
    std::vector<SampleSink> sinks;
  };

  bool OnPollTick(const TimeoutTick& tick);
  void SamplePolling(int64_t now_ms, int64_t lost);
  bool SamplePlayback(int64_t lost);
  void RouteBuffered(const std::vector<Sample>& samples);
  void DrainIngestSpans(int64_t now_ms);
  // Span-level last-wins fold: one hold write per live display-only route
  // (O(live routes)), plus a per-sample history walk only when some live
  // route needs it.  Requires a whole-block, fully displayable span.
  void DrainSpanCoalesced(const IngestSpan& span);
  void RouteSpanSample(const IngestSpan& span, const Sample& sample);
  void DispatchSinks(const SignalState& state, int64_t time_ms, double value);
  // True when an every-sample tap makes every signal a history signal.
  bool TapNeedsHistory() const {
    return buffered_tap_ != nullptr && tap_mode_ == TapMode::kEverySample;
  }
  // False for samples the name shim delivered out-of-band (slot id 0);
  // otherwise sets *key to this scope's SampleKey for the sample.
  static bool TranslateSpanKey(const IngestSpan& span, const Sample& sample, SampleKey* key);
  double SampleSource(SignalState& state);
  void CommitSample(SignalState& state, double raw, int64_t lost, int64_t now_ms);
  SignalState* Find(SignalId id);
  const SignalState* Find(SignalId id) const;
  SignalState* FirstBufferSignal();

  MainLoop* loop_;
  ScopeOptions options_;

  // Dense signal storage in id (= insertion) order: the per-tick sampling
  // loop walks states contiguously instead of chasing map nodes.
  std::vector<SignalState> signals_;
  // id -> index into signals_, +1 (0 = unknown id).  Indexed by SignalId.
  std::vector<uint32_t> id_to_index_;
  // Interned name index; read by producer threads through the PushBuffered
  // name shim, written by AddSignal/RemoveSignal on the loop thread.
  StringKeyedMap<SignalId> name_index_;
  // Names pushed before their signal exists, interned into the
  // kPendingNameKeyBit keyspace and re-resolved at drain time.
  StringKeyedMap<uint64_t> pending_names_;
  std::vector<std::string> pending_names_rev_;
  mutable std::shared_mutex name_mu_;
  std::atomic<uint64_t> signals_epoch_{0};
  SignalId next_signal_id_ = 1;
  int next_color_ = 0;

  // Concurrent mode (SetConcurrent): serializes the poll tick against
  // cross-loop table builds.  Ordering: tick_mu_ before name_mu_ (AddSignal
  // takes both); nothing takes them in the other order.
  mutable std::mutex tick_mu_;
  bool concurrent_ = false;
  std::unique_lock<std::mutex> MaybeTickLock() const {
    return concurrent_ ? std::unique_lock<std::mutex>(tick_mu_)
                       : std::unique_lock<std::mutex>();
  }

  BufferedTapFn buffered_tap_;
  TapMode tap_mode_ = TapMode::kEverySample;

  // Every-sample consumers (stored per signal in SignalState::sinks);
  // epoch bumps on attach/detach/tap changes.
  size_t total_sinks_ = 0;
  uint64_t next_sink_handle_ = 1;
  std::atomic<uint64_t> consumers_epoch_{0};

  // Reused per-tick drain scratch (no steady-state allocation).
  std::vector<Sample> drain_scratch_;
  std::vector<IngestSpan> span_scratch_;
  // Re-sorting scratch for spans whose producer stamps ran backwards.
  std::vector<Sample> span_sort_scratch_;
  // Ring-path last-wins fold for display-only signals (dense by signal
  // index; generation-stamped, reused every tick).
  LastWinsTable ring_lastwins_;

  AcquisitionMode mode_ = AcquisitionMode::kPolling;
  int64_t period_ms_ = 50;  // the paper's example default
  SourceId poll_source_ = 0;
  // Read by producer-thread pushes through NowMs(); written on the loop
  // thread when polling starts.
  std::atomic<Nanos> start_ns_{0};
  std::atomic<bool> started_{false};

  double zoom_ = 1.0;
  double bias_ = 0.0;
  // Read by producer-thread pushes, written by SetDelayMs on the loop thread.
  std::atomic<int64_t> delay_ms_{0};
  DisplayDomain domain_ = DisplayDomain::kTime;

  SampleBuffer buffer_;
  IngestSpanQueue ingest_spans_;

  TupleReader playback_;
  std::optional<Tuple> playback_pending_;
  int64_t playback_time_ms_ = 0;

  TupleWriter recorder_;
  Counters counters_;
  CoalesceMirror coalesce_mirror_;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_SCOPE_H_
