#include "core/trigger.h"

namespace gscope {

Trigger::Trigger(TriggerConfig config) : config_(config) {}

bool Trigger::CrossedLevel(double sample) const {
  if (!has_prev_) {
    return false;
  }
  if (config_.edge == TriggerEdge::kRising) {
    return prev_ < config_.level && sample >= config_.level;
  }
  return prev_ > config_.level && sample <= config_.level;
}

bool Trigger::RetreatedPastHysteresis(double sample) const {
  if (config_.edge == TriggerEdge::kRising) {
    return sample < config_.level - config_.hysteresis;
  }
  return sample > config_.level + config_.hysteresis;
}

bool Trigger::Feed(double sample) {
  ++since_fire_;
  bool fired = false;

  if (!armed_ && RetreatedPastHysteresis(sample)) {
    armed_ = true;
  }

  bool single_blocked = config_.mode == TriggerMode::kSingle && single_done_;
  if (armed_ && !single_blocked && since_fire_ > config_.holdoff && CrossedLevel(sample)) {
    fired = true;
    armed_ = false;
    since_fire_ = 0;
    ever_fired_ = true;
    ++fires_;
    if (config_.mode == TriggerMode::kSingle) {
      single_done_ = true;
    }
  }

  prev_ = sample;
  has_prev_ = true;
  return fired;
}

void Trigger::Rearm() {
  single_done_ = false;
  armed_ = true;
  since_fire_ = config_.holdoff + 1;
}

std::vector<Sweep> ExtractSweeps(const std::vector<double>& samples, size_t width,
                                 const TriggerConfig& config) {
  std::vector<Sweep> sweeps;
  if (width == 0 || samples.empty()) {
    return sweeps;
  }

  Trigger trigger(config);
  size_t free_run_start = 0;
  size_t capture_until = 0;  // end (exclusive) of the sweep being captured
  size_t capture_start = 0;
  bool capturing = false;

  for (size_t i = 0; i < samples.size(); ++i) {
    bool fired = trigger.Feed(samples[i]);
    if (fired && !capturing) {
      capturing = true;
      capture_start = i;
      capture_until = i + width;
    }
    if (capturing && i + 1 == capture_until) {
      Sweep sweep;
      sweep.start_index = capture_start;
      sweep.triggered = true;
      sweep.samples.assign(samples.begin() + static_cast<long>(capture_start),
                           samples.begin() + static_cast<long>(capture_until));
      sweeps.push_back(std::move(sweep));
      capturing = false;
      free_run_start = capture_until;
      if (config.mode == TriggerMode::kSingle) {
        break;
      }
    }
    // Auto mode: if we drift a full width with no trigger, emit a free-run
    // sweep so the display still updates.
    if (config.mode == TriggerMode::kAuto && !capturing &&
        i + 1 >= free_run_start + width) {
      Sweep sweep;
      sweep.start_index = free_run_start;
      sweep.triggered = false;
      sweep.samples.assign(samples.begin() + static_cast<long>(free_run_start),
                           samples.begin() + static_cast<long>(free_run_start + width));
      sweeps.push_back(std::move(sweep));
      free_run_start += width;
    }
  }
  return sweeps;
}

std::optional<Sweep> LatestSweep(const std::vector<double>& samples, size_t width,
                                 const TriggerConfig& config) {
  std::vector<Sweep> sweeps = ExtractSweeps(samples, width, config);
  if (sweeps.empty()) {
    return std::nullopt;
  }
  // Prefer the most recent *triggered* sweep; fall back to the last one.
  for (auto it = sweeps.rbegin(); it != sweeps.rend(); ++it) {
    if (it->triggered) {
      return *it;
    }
  }
  return sweeps.back();
}

}  // namespace gscope
