#include "core/scope.h"

#include <algorithm>
#include <mutex>

namespace gscope {
namespace {

// Default per-signal palette, applied in AddSignal order.  Mirrors the look
// of the paper's screenshots (distinct saturated colours on black).
constexpr Rgb kPalette[] = {
    {0x00, 0xff, 0x00},  // green
    {0xff, 0x40, 0x40},  // red
    {0x40, 0x80, 0xff},  // blue
    {0xff, 0xff, 0x00},  // yellow
    {0x00, 0xff, 0xff},  // cyan
    {0xff, 0x00, 0xff},  // magenta
    {0xff, 0x80, 0x00},  // orange
    {0xff, 0xff, 0xff},  // white
};
constexpr int kPaletteSize = static_cast<int>(sizeof(kPalette) / sizeof(kPalette[0]));

}  // namespace

Scope::Scope(MainLoop* loop, ScopeOptions options)
    : loop_(loop),
      options_(std::move(options)),
      buffer_(options_.buffer_capacity),
      ingest_spans_(options_.buffer_capacity) {
  if (options_.width <= 0) {
    options_.width = 512;
  }
  if (options_.height <= 0) {
    options_.height = 256;
  }
}

Scope::~Scope() { StopPolling(); }

SignalId Scope::AddSignal(const SignalSpec& spec) {
  if (spec.name.empty() || FindSignal(spec.name) != 0) {
    return 0;
  }
  if (spec.max <= spec.min) {
    return 0;
  }
  SignalState state{0, spec, LowPassFilter(spec.filter_alpha),
                    Trace(static_cast<size_t>(options_.width))};
  if (!state.spec.color.has_value()) {
    state.spec.color = kPalette[next_color_ % kPaletteSize];
    ++next_color_;
  }
  SignalId id = next_signal_id_++;
  state.id = id;
  {
    // tick_mu_ first: in concurrent mode the owner loop's tick walks
    // signals_ without name_mu_, and the push_back below may reallocate.
    std::unique_lock<std::mutex> tick_lock = MaybeTickLock();
    std::unique_lock<std::shared_mutex> lock(name_mu_);
    signals_.push_back(std::move(state));
    if (id_to_index_.size() <= static_cast<size_t>(id)) {
      id_to_index_.resize(static_cast<size_t>(id) + 1, 0);
    }
    id_to_index_[static_cast<size_t>(id)] = static_cast<uint32_t>(signals_.size());
    name_index_.emplace(spec.name, id);
    signals_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  return id;
}

bool Scope::RemoveSignal(SignalId id) {
  std::unique_lock<std::mutex> tick_lock = MaybeTickLock();
  SignalState* state = Find(id);
  if (state == nullptr) {
    return false;
  }
  if (!state->sinks.empty()) {
    // Sinks die with their signal; the consumer epoch moves so routers
    // rebuild their needs_history bits.
    total_sinks_ -= state->sinks.size();
    consumers_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  std::unique_lock<std::shared_mutex> lock(name_mu_);
  size_t index = static_cast<size_t>(state - signals_.data());
  name_index_.erase(state->spec.name);
  id_to_index_[static_cast<size_t>(id)] = 0;
  signals_.erase(signals_.begin() + static_cast<ptrdiff_t>(index));
  for (size_t i = index; i < signals_.size(); ++i) {
    id_to_index_[static_cast<size_t>(signals_[i].id)] = static_cast<uint32_t>(i + 1);
  }
  signals_epoch_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

SignalId Scope::FindSignal(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(name_mu_);
  auto it = name_index_.find(name);
  return it == name_index_.end() ? 0 : it->second;
}

SignalId Scope::FindOrAddBufferSignal(std::string_view name) {
  SignalId id = FindSignal(name);
  if (id != 0 || name.empty()) {
    return id;
  }
  SignalSpec spec;
  spec.name.assign(name);
  spec.source = BufferSource{};
  return AddSignal(spec);
}

std::vector<SignalId> Scope::SignalIds() const {
  std::vector<SignalId> ids;
  ids.reserve(signals_.size());
  for (const SignalState& state : signals_) {
    ids.push_back(state.id);
  }
  return ids;
}

bool Scope::SetHidden(SignalId id, bool hidden) {
  SignalState* s = Find(id);
  if (s == nullptr) {
    return false;
  }
  s->spec.hidden = hidden;
  return true;
}

bool Scope::ToggleHidden(SignalId id) {
  SignalState* s = Find(id);
  if (s == nullptr) {
    return false;
  }
  s->spec.hidden = !s->spec.hidden;
  return true;
}

bool Scope::SetFilterAlpha(SignalId id, double alpha) {
  SignalState* s = Find(id);
  if (s == nullptr || alpha < 0.0 || alpha > 1.0) {
    return false;
  }
  s->spec.filter_alpha = alpha;
  s->filter.set_alpha(alpha);
  return true;
}

bool Scope::SetRange(SignalId id, double min, double max) {
  SignalState* s = Find(id);
  if (s == nullptr || max <= min) {
    return false;
  }
  s->spec.min = min;
  s->spec.max = max;
  return true;
}

bool Scope::SetColor(SignalId id, Rgb color) {
  SignalState* s = Find(id);
  if (s == nullptr) {
    return false;
  }
  s->spec.color = color;
  return true;
}

bool Scope::SetLineMode(SignalId id, LineMode mode) {
  SignalState* s = Find(id);
  if (s == nullptr) {
    return false;
  }
  s->spec.line = mode;
  return true;
}

const SignalSpec* Scope::SpecFor(SignalId id) const {
  const SignalState* s = Find(id);
  return s == nullptr ? nullptr : &s->spec;
}

const Trace* Scope::TraceFor(SignalId id) const {
  const SignalState* s = Find(id);
  return s == nullptr ? nullptr : &s->trace;
}

std::optional<double> Scope::LatestValue(SignalId id) const {
  const SignalState* s = Find(id);
  if (s == nullptr || !s->has_value) {
    return std::nullopt;
  }
  return s->latest_display;
}

std::optional<double> Scope::LatestRaw(SignalId id) const {
  const SignalState* s = Find(id);
  if (s == nullptr || !s->has_value) {
    return std::nullopt;
  }
  return s->latest_raw;
}

std::optional<int64_t> Scope::LatestBufferedTime(SignalId id) const {
  const SignalState* s = Find(id);
  if (s == nullptr || !s->buffered_primed) {
    return std::nullopt;
  }
  return s->buffered_hold_time_ms;
}

void Scope::SetBufferedTap(BufferedTapFn tap, TapMode mode) {
  std::unique_lock<std::mutex> tick_lock = MaybeTickLock();
  buffered_tap_ = std::move(tap);
  tap_mode_ = mode;
  consumers_epoch_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Scope::AttachSampleSink(SignalId id, SampleSinkFn sink) {
  std::unique_lock<std::mutex> tick_lock = MaybeTickLock();
  SignalState* s = Find(id);
  if (s == nullptr || sink == nullptr) {
    return 0;
  }
  uint64_t handle = next_sink_handle_++;
  s->sinks.push_back(SampleSink{handle, std::move(sink)});
  total_sinks_ += 1;
  consumers_epoch_.fetch_add(1, std::memory_order_relaxed);
  return handle;
}

bool Scope::DetachSampleSink(uint64_t sink_handle) {
  // Detach is rare (topology churn, not the drain path): a scan over the
  // per-signal sink lists keeps dispatch O(sinks on the signal).
  std::unique_lock<std::mutex> tick_lock = MaybeTickLock();
  for (SignalState& state : signals_) {
    for (size_t i = 0; i < state.sinks.size(); ++i) {
      if (state.sinks[i].handle != sink_handle) {
        continue;
      }
      state.sinks.erase(state.sinks.begin() + static_cast<ptrdiff_t>(i));
      total_sinks_ -= 1;
      consumers_epoch_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

uint64_t Scope::AttachExport(SignalId id, TupleWriter* writer) {
  const SignalState* s = Find(id);
  if (s == nullptr || writer == nullptr) {
    return 0;
  }
  // The name is captured by value: SignalState storage moves on signal-set
  // mutations, and the export must keep labeling tuples correctly.
  std::string name = s->spec.name;
  return AttachSampleSink(id, [writer, name = std::move(name)](int64_t time_ms, double value) {
    writer->Write(time_ms, value, name);
  });
}

bool Scope::SignalNeedsHistory(SignalId id) const {
  // Called by routers on other loops at table-build time (under the
  // router's own lock); the tick lock keeps the read of signals_ and the
  // sink lists coherent against this loop's tick and consumer mutators.
  std::unique_lock<std::mutex> tick_lock = MaybeTickLock();
  const SignalState* s = Find(id);
  if (s == nullptr) {
    return false;
  }
  return !s->sinks.empty() || TapNeedsHistory();
}

void Scope::DispatchSinks(const SignalState& state, int64_t time_ms, double value) {
  for (const SampleSink& sink : state.sinks) {
    sink.fn(time_ms, value);
  }
}

double Scope::NormalizeValue(SignalId id, double value) const {
  const SignalState* s = Find(id);
  if (s == nullptr) {
    return 0.0;
  }
  double span = s->spec.max - s->spec.min;
  double ruler = (value - s->spec.min) / span * 100.0;
  return ruler * zoom_ + bias_;
}

bool Scope::SetPollingMode(int64_t period_ms) {
  if (period_ms <= 0) {
    return false;
  }
  mode_ = AcquisitionMode::kPolling;
  period_ms_ = period_ms;
  if (IsRunning()) {
    loop_->SetTimeoutPeriodNs(poll_source_, MillisToNanos(period_ms_));
  }
  return true;
}

bool Scope::SetPlaybackMode(const std::string& path, int64_t period_ms) {
  if (period_ms <= 0) {
    return false;
  }
  if (!playback_.Open(path)) {
    return false;
  }
  mode_ = AcquisitionMode::kPlayback;
  period_ms_ = period_ms;
  playback_pending_.reset();
  playback_time_ms_ = 0;
  counters_.playback_done = false;
  if (IsRunning()) {
    loop_->SetTimeoutPeriodNs(poll_source_, MillisToNanos(period_ms_));
  }
  return true;
}

bool Scope::StartPolling() {
  if (IsRunning()) {
    return true;
  }
  poll_source_ = loop_->AddTimeoutNs(MillisToNanos(period_ms_),
                                     [this](const TimeoutTick& tick) { return OnPollTick(tick); });
  if (poll_source_ == 0) {
    return false;
  }
  if (!started_.load(std::memory_order_relaxed)) {
    start_ns_.store(loop_->clock()->NowNs(), std::memory_order_relaxed);
    started_.store(true, std::memory_order_release);
  }
  return true;
}

void Scope::StopPolling() {
  if (poll_source_ != 0) {
    loop_->Remove(poll_source_);
    poll_source_ = 0;
  }
}

bool Scope::SetPollingPeriodMs(int64_t period_ms) {
  if (period_ms <= 0) {
    return false;
  }
  period_ms_ = period_ms;
  if (IsRunning()) {
    return loop_->SetTimeoutPeriodNs(poll_source_, MillisToNanos(period_ms_));
  }
  return true;
}

void Scope::SetZoom(double zoom) {
  if (zoom > 0.0) {
    zoom_ = zoom;
  }
}

void Scope::SetBias(double bias) { bias_ = bias; }

void Scope::SetDelayMs(int64_t delay_ms) {
  if (delay_ms >= 0) {
    delay_ms_.store(delay_ms, std::memory_order_relaxed);
  }
}

bool Scope::PushBuffered(SignalId id, int64_t time_ms, double value) {
  SampleKey key = id == 0 ? kUnmatchedSampleKey : static_cast<SampleKey>(id);
  return buffer_.Push(key, time_ms, value, NowMs(), delay_ms());
}

size_t Scope::PushBufferedBatch(const Sample* samples, size_t count) {
  return buffer_.PushBatch(samples, count, NowMs(), delay_ms());
}

size_t Scope::PushIngestSpan(const IngestSpan& span, int64_t now_ms) {
  size_t n = span.size();
  if (n == 0) {
    return 0;
  }
  int64_t delay = delay_ms();
  switch (ingest_spans_.Push(span, now_ms, delay)) {
    case IngestSpanQueue::PushVerdict::kQueued:
      return n;
    case IngestSpanQueue::PushVerdict::kAllLate: {
      // Samples whose slot id is 0 were delivered (and, if late, counted)
      // through the name shim already — they are not this span's to drop.
      // The common all-resolved case skips the scan: whole-span drop stays
      // O(1).
      size_t shim_served = 0;
      // Filtered slots (and withheld unnamed samples) also leave id-0
      // entries that are not this span's to drop; they force the same scan.
      if (span.block->has_unresolved ||
          (span.block->has_unnamed && !span.deliver_unnamed) ||
          span.table->SlotFiltered(span.slot)) {
        SampleKey key;
        for (uint32_t i = span.begin; i < span.end; ++i) {
          if (!TranslateSpanKey(span, span.block->samples[i], &key)) {
            ++shim_served;
          }
        }
      }
      ingest_spans_.CountLateDrops(static_cast<int64_t>(n - shim_served));
      return shim_served;
    }
    case IngestSpanQueue::PushVerdict::kMixed:
      break;
  }
  // The span straddles the late-drop deadline: translate and push per sample
  // through the regular buffer, which applies the per-sample policy.
  size_t accepted = 0;
  const IngestBlock& block = *span.block;
  for (uint32_t i = span.begin; i < span.end; ++i) {
    const Sample& sample = block.samples[i];
    SampleKey key;
    if (!TranslateSpanKey(span, sample, &key)) {
      // Delivered out-of-band through the name shim (or unroutable by
      // design): not this span's sample to accept or drop.
      ++accepted;
      continue;
    }
    if (buffer_.Push(key, sample.time_ms, sample.value, now_ms, delay)) {
      ++accepted;
    }
  }
  return accepted;
}

bool Scope::TranslateSpanKey(const IngestSpan& span, const Sample& sample, SampleKey* key) {
  if (sample.key == kUnnamedRouteKey) {
    if (!span.deliver_unnamed) {
      return false;  // withheld from subscription-filtered scopes
    }
    *key = kUnnamedSampleKey;
    return true;
  }
  SignalId id = span.table->IdFor(sample.key, span.slot);
  if (id == 0) {
    return false;  // delivered out-of-band through the name shim
  }
  *key = static_cast<SampleKey>(id);
  return true;
}

bool Scope::PushBuffered(std::string_view signal_name, int64_t time_ms, double value) {
  SampleKey key;
  if (signal_name.empty()) {
    key = kUnnamedSampleKey;
  } else {
    SignalId id = FindSignal(signal_name);
    if (id != 0) {
      key = static_cast<SampleKey>(id);
    } else {
      // Unknown name: intern it into the pending keyspace so routing can
      // re-resolve at drain time — a signal added within the delay window
      // still receives the sample, matching the old drain-time resolution.
      std::unique_lock<std::shared_mutex> lock(name_mu_);
      auto it = pending_names_.find(signal_name);
      uint64_t index;
      if (it != pending_names_.end()) {
        index = it->second;
      } else if (pending_names_rev_.size() < 4096) {
        index = pending_names_rev_.size();
        pending_names_rev_.emplace_back(signal_name);
        pending_names_.emplace(std::string(signal_name), index);
      } else {
        // Bound the interner against a stream of endless distinct unknown
        // names; beyond the cap they become plain unmatched samples.
        return buffer_.Push(kUnmatchedSampleKey, time_ms, value, NowMs(), delay_ms());
      }
      key = kPendingNameKeyBit | index;
    }
  }
  return buffer_.Push(key, time_ms, value, NowMs(), delay_ms());
}

bool Scope::StartRecording(const std::string& path) {
  if (!recorder_.Open(path)) {
    return false;
  }
  recorder_.Comment("gscope recording: scope '" + options_.name + "', period " +
                    std::to_string(period_ms_) + " ms");
  return true;
}

void Scope::StopRecording() { recorder_.Close(); }

const TimerStats* Scope::poll_stats() const {
  return poll_source_ == 0 ? nullptr : loop_->StatsFor(poll_source_);
}

void Scope::AdoptTimeBase(const Scope& reference) {
  if (!reference.started_.load(std::memory_order_acquire)) {
    return;
  }
  start_ns_.store(reference.start_ns_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  started_.store(true, std::memory_order_release);
}

int64_t Scope::NowMs() const {
  if (!started_.load(std::memory_order_acquire)) {
    return 0;
  }
  return static_cast<int64_t>(
      NanosToMillis(loop_->clock()->NowNs() - start_ns_.load(std::memory_order_relaxed)));
}

void Scope::TickOnce(int64_t lost) {
  if (!started_.load(std::memory_order_relaxed)) {
    start_ns_.store(loop_->clock()->NowNs(), std::memory_order_relaxed);
    started_.store(true, std::memory_order_release);
  }
  TimeoutTick tick{0, loop_->clock()->NowNs(), lost};
  OnPollTick(tick);
}

bool Scope::OnPollTick(const TimeoutTick& tick) {
  std::unique_lock<std::mutex> tick_lock = MaybeTickLock();
  counters_.ticks += 1;
  counters_.lost_ticks += tick.lost;

  bool more = true;
  if (mode_ == AcquisitionMode::kPlayback) {
    more = SamplePlayback(tick.lost);
    if (!more) {
      counters_.playback_done = true;
      poll_source_ = 0;   // returning false removes the source
    }
  } else {
    SamplePolling(NowMs(), tick.lost);
  }
  // Publish the drain tallies for cross-loop STATS folds: one relaxed
  // store per tick keeps the per-sample drain path atomic-free.
  coalesce_mirror_.samples_coalesced = counters_.samples_coalesced;
  coalesce_mirror_.samples_retained = counters_.samples_retained;
  return more;
}

void Scope::SamplePolling(int64_t now_ms, int64_t lost) {
  // First route freshly displayable buffered samples to their signals.  The
  // scratch vector is reused across ticks: steady-state drains allocate
  // nothing.
  drain_scratch_.clear();
  buffer_.DrainDisplayableInto(now_ms, delay_ms(), &drain_scratch_);
  RouteBuffered(drain_scratch_);
  // Then spans handed over by an ingest router (routed second: they carry
  // the newest network batches).
  DrainIngestSpans(now_ms);

  for (SignalState& state : signals_) {
    double raw = SampleSource(state);
    CommitSample(state, raw, lost, now_ms);
  }
}

void Scope::DrainIngestSpans(int64_t now_ms) {
  if (ingest_spans_.span_count() == 0) {
    return;
  }
  int64_t delay = delay_ms();
  span_scratch_.clear();
  ingest_spans_.CollectDisplayable(now_ms, delay, &span_scratch_);
  for (const IngestSpan& span : span_scratch_) {
    const IngestBlock& block = *span.block;
    const bool whole = block.max_time_ms + delay <= now_ms;
    if (whole && options_.coalesce_display_only && span.begin == 0 &&
        span.end == block.samples.size() && !block.live.empty()) {
      // Whole-block span, fully displayable: fold display-only routes to
      // one hold write each via the block's last-wins summary (handles
      // reordered stamps too — the summary tracks the (time, arrival)-max
      // sample), walking samples only for routes that need history.
      DrainSpanCoalesced(span);
      continue;
    }
    if (block.time_ordered && whole) {
      // Whole span displayable, stamps in order, coalescing off or a
      // partial-block span: route straight out of the shared block.
      for (uint32_t i = span.begin; i < span.end; ++i) {
        RouteSpanSample(span, block.samples[i]);
      }
      continue;
    }
    // Straddling and/or reordered: route the displayable part now (in time
    // order, so sample-and-hold ends on the newest value), funnel the rest
    // into the regular buffer so it drains time-sorted on a later tick.
    span_sort_scratch_.clear();
    for (uint32_t i = span.begin; i < span.end; ++i) {
      const Sample& sample = block.samples[i];
      if (whole || sample.time_ms + delay <= now_ms) {
        if (block.time_ordered) {
          RouteSpanSample(span, sample);
        } else {
          span_sort_scratch_.push_back(sample);
        }
        continue;
      }
      SampleKey key;
      if (!TranslateSpanKey(span, sample, &key)) {
        continue;  // delivered out-of-band through the name shim
      }
      buffer_.Push(key, sample.time_ms, sample.value, now_ms, delay);
    }
    if (!span_sort_scratch_.empty()) {
      std::stable_sort(span_sort_scratch_.begin(), span_sort_scratch_.end(),
                       [](const Sample& a, const Sample& b) { return a.time_ms < b.time_ms; });
      for (const Sample& sample : span_sort_scratch_) {
        RouteSpanSample(span, sample);
      }
    }
  }
  // Release the block references promptly so the router can recycle them.
  span_scratch_.clear();
}

void Scope::DrainSpanCoalesced(const IngestSpan& span) {
  const IngestBlock& block = *span.block;
  const RouteTable& table = *span.table;
  // Pass 1, O(live routes): fold every display-only route into its hold.
  // History routes (and unnamed samples, which have no per-route consumer
  // bit) are left for the per-sample walk below.
  size_t walk_routes = 0;
  for (const IngestBlock::RouteLast& entry : block.live) {
    if (entry.route == kUnnamedRouteKey) {
      if (span.deliver_unnamed) {
        ++walk_routes;
      }
      continue;
    }
    if (table.SlotNeedsHistory(entry.route, span.slot)) {
      ++walk_routes;
      continue;
    }
    SignalId id = table.IdFor(entry.route, span.slot);
    if (id == 0) {
      continue;  // shim-served out-of-band, or excluded by the slot's filter
    }
    SignalState* s = Find(id);
    if (s == nullptr || s->spec.type() != SignalType::kBuffer) {
      counters_.buffered_unmatched += entry.count;
      continue;
    }
    s->buffered_hold = entry.value;
    s->buffered_hold_time_ms = entry.time_ms;
    s->buffered_primed = true;
    counters_.buffered_routed += entry.count;
    counters_.samples_coalesced += entry.count - 1;
    if (buffered_tap_) {
      // A kCoalesced tap observes the winner; an every-sample tap never
      // reaches this fold (its slots carry needs_history in the table).
      buffered_tap_(s->spec.name, entry.time_ms, entry.value);
    }
  }
  if (walk_routes == 0) {
    return;
  }
  // Pass 2, only when some live route needs history: deliver those samples
  // one by one, in time order.  When EVERY live route takes the walk (e.g.
  // an every-sample tap) the per-sample bit test is skipped entirely — the
  // 100%-history drain must cost what it did before coalescing existed.
  const bool walk_all = walk_routes == block.live.size();
  auto needs_walk = [&](const Sample& sample) {
    if (sample.key == kUnnamedRouteKey) {
      return span.deliver_unnamed;
    }
    return table.SlotNeedsHistory(sample.key, span.slot);
  };
  if (block.time_ordered) {
    for (uint32_t i = span.begin; i < span.end; ++i) {
      if (walk_all || needs_walk(block.samples[i])) {
        RouteSpanSample(span, block.samples[i]);
      }
    }
    return;
  }
  span_sort_scratch_.clear();
  for (uint32_t i = span.begin; i < span.end; ++i) {
    if (walk_all || needs_walk(block.samples[i])) {
      span_sort_scratch_.push_back(block.samples[i]);
    }
  }
  std::stable_sort(span_sort_scratch_.begin(), span_sort_scratch_.end(),
                   [](const Sample& a, const Sample& b) { return a.time_ms < b.time_ms; });
  for (const Sample& sample : span_sort_scratch_) {
    RouteSpanSample(span, sample);
  }
}

void Scope::RouteSpanSample(const IngestSpan& span, const Sample& sample) {
  SignalState* s = nullptr;
  if (sample.key == kUnnamedRouteKey) {
    if (!span.deliver_unnamed) {
      return;  // withheld from subscription-filtered scopes
    }
    // Single-signal special case: time-value tuples go to the sole BUFFER
    // signal.
    s = FirstBufferSignal();
  } else {
    SignalId id = span.table->IdFor(sample.key, span.slot);
    if (id == 0) {
      return;  // delivered out-of-band through the name shim, or unroutable
    }
    s = Find(id);
  }
  if (s == nullptr || s->spec.type() != SignalType::kBuffer) {
    counters_.buffered_unmatched += 1;
    return;
  }
  s->buffered_hold = sample.value;
  s->buffered_hold_time_ms = sample.time_ms;
  s->buffered_primed = true;
  counters_.buffered_routed += 1;
  counters_.samples_retained += 1;
  if (!s->sinks.empty()) {
    DispatchSinks(*s, sample.time_ms, sample.value);
  }
  if (buffered_tap_) {
    buffered_tap_(s->spec.name, sample.time_ms, sample.value);
  }
}

bool Scope::SamplePlayback(int64_t lost) {
  playback_time_ms_ += period_ms_ * (lost + 1);

  // Pull every tuple whose time has been reached; the last one per signal
  // wins the column (sample-and-hold at the display period).
  bool saw_any = playback_pending_.has_value();
  std::vector<Tuple> due;
  while (true) {
    if (!playback_pending_.has_value()) {
      playback_pending_ = playback_.Next();
      if (!playback_pending_.has_value()) {
        break;  // end of file
      }
      saw_any = true;
    }
    if (playback_pending_->time_ms > playback_time_ms_) {
      break;
    }
    due.push_back(std::move(*playback_pending_));
    playback_pending_.reset();
  }

  if (due.empty() && !saw_any && !playback_pending_.has_value()) {
    // End of file with nothing left to display: stop without emitting an
    // extra hold column (the trace must end at the last recorded sample).
    return false;
  }

  for (const Tuple& t : due) {
    SignalId id = t.name.empty() ? (signals_.empty() ? 0 : signals_.front().id)
                                 : FindSignal(t.name);
    if (id == 0 && options_.auto_create_playback_signals) {
      // Named tuples create a matching signal; the two-field single-signal
      // form creates one default signal when the scope has none.
      SignalSpec spec;
      spec.name = t.name.empty() ? "signal" : t.name;
      spec.source = BufferSource{};
      id = AddSignal(spec);
    }
    SignalState* s = Find(id);
    if (s == nullptr) {
      counters_.buffered_unmatched += 1;
      continue;
    }
    s->buffered_hold = t.value;
    s->buffered_hold_time_ms = t.time_ms;
    s->buffered_primed = true;
    counters_.buffered_routed += 1;
  }

  for (SignalState& state : signals_) {
    if (!state.buffered_primed) {
      continue;  // no data for this signal yet
    }
    CommitSample(state, state.buffered_hold, lost, playback_time_ms_);
  }

  // Keep ticking while the file has data or a pending tuple exists.
  return saw_any || playback_pending_.has_value();
}

void Scope::RouteBuffered(const std::vector<Sample>& samples) {
  const bool coalesce = options_.coalesce_display_only;
  if (coalesce) {
    ring_lastwins_.Begin();
  }
  for (const Sample& sample : samples) {
    SignalState* s = nullptr;
    if (sample.key == kUnnamedSampleKey) {
      // Single-signal special case: time-value tuples go to the sole
      // BUFFER signal.
      s = FirstBufferSignal();
    } else if (sample.key == kUnmatchedSampleKey) {
      // explicitly-unknown id; falls through to the unmatched counter
    } else if ((sample.key & kPendingNameKeyBit) != 0) {
      // Name unknown at push time: re-resolve now.
      std::shared_lock<std::shared_mutex> lock(name_mu_);
      uint64_t index = sample.key & ~kPendingNameKeyBit;
      if (index < pending_names_rev_.size()) {
        auto it = name_index_.find(pending_names_rev_[index]);
        if (it != name_index_.end()) {
          s = Find(it->second);
        }
      }
    } else if ((sample.key & kShimNameKeyBit) != 0) {
      // Pushed straight into buffer() through the legacy Tuple API: route
      // by the interned name (cold path).
      s = Find(FindSignal(buffer_.NameOf(sample.key)));
    } else {
      s = Find(static_cast<SignalId>(sample.key));
    }
    if (s == nullptr || s->spec.type() != SignalType::kBuffer) {
      counters_.buffered_unmatched += 1;
      continue;
    }
    if (coalesce && s->sinks.empty() && !TapNeedsHistory()) {
      // Display-only: defer to the last-wins fold.  Samples arrive sorted
      // by (time, push order), so the fold's winner is the sample the old
      // per-sample walk would have left in the hold.
      ring_lastwins_.Fold(static_cast<uint32_t>(s - signals_.data()), sample.time_ms,
                          sample.value);
      continue;
    }
    s->buffered_hold = sample.value;
    s->buffered_hold_time_ms = sample.time_ms;
    s->buffered_primed = true;
    counters_.buffered_routed += 1;
    counters_.samples_retained += 1;
    if (!s->sinks.empty()) {
      DispatchSinks(*s, sample.time_ms, sample.value);
    }
    if (buffered_tap_) {
      buffered_tap_(s->spec.name, sample.time_ms, sample.value);
    }
  }
  if (!coalesce) {
    return;
  }
  for (const LastWinsTable::Entry& entry : ring_lastwins_.entries()) {
    SignalState& s = signals_[entry.index];
    s.buffered_hold = entry.value;
    s.buffered_hold_time_ms = entry.time_ms;
    s.buffered_primed = true;
    // The fold's losers still count as routed (they were accepted and
    // attributed); samples_coalesced records how many skipped the
    // per-sample walk.
    counters_.buffered_routed += entry.count;
    counters_.samples_coalesced += entry.count - 1;
    if (buffered_tap_) {
      // Only a kCoalesced tap can reach here: an every-sample tap keeps
      // every signal on the per-sample path above.
      buffered_tap_(s.spec.name, entry.time_ms, entry.value);
    }
  }
}

double Scope::SampleSource(SignalState& state) {
  struct Visitor {
    SignalState& state;
    Nanos period_ns;
    double operator()(const int32_t* p) const { return static_cast<double>(*p); }
    double operator()(const bool* p) const { return *p ? 1.0 : 0.0; }
    double operator()(const int16_t* p) const { return static_cast<double>(*p); }
    double operator()(const float* p) const { return static_cast<double>(*p); }
    double operator()(const double* p) const { return *p; }
    double operator()(const FuncSource& f) const { return f.fn ? f.fn() : 0.0; }
    double operator()(const EventSource& e) const {
      if (!e.aggregator) {
        return 0.0;
      }
      double hold = state.has_value ? state.latest_raw : 0.0;
      return e.aggregator->Drain(period_ns, hold);
    }
    double operator()(const BufferSource&) const {
      return state.buffered_primed ? state.buffered_hold
                                   : (state.has_value ? state.latest_raw : 0.0);
    }
  };
  return std::visit(Visitor{state, MillisToNanos(period_ms_)}, state.spec.source);
}

void Scope::CommitSample(SignalState& state, double raw, int64_t lost, int64_t now_ms) {
  double display = state.filter.Apply(raw);
  state.latest_raw = raw;
  state.latest_display = display;
  state.has_value = true;
  state.trace.PushWithLoss(display, lost);
  counters_.samples += 1;
  if (recorder_.is_open()) {
    // Raw values are recorded; the filter is a display-side parameter.  The
    // writer formats into a reusable buffer (no per-sample allocation).
    recorder_.Write(now_ms, raw,
                    signals_.size() == 1 ? std::string_view() : std::string_view(state.spec.name));
  }
}

Scope::SignalState* Scope::Find(SignalId id) {
  if (id <= 0 || static_cast<size_t>(id) >= id_to_index_.size()) {
    return nullptr;
  }
  uint32_t index = id_to_index_[static_cast<size_t>(id)];
  return index == 0 ? nullptr : &signals_[index - 1];
}

const Scope::SignalState* Scope::Find(SignalId id) const {
  if (id <= 0 || static_cast<size_t>(id) >= id_to_index_.size()) {
    return nullptr;
  }
  uint32_t index = id_to_index_[static_cast<size_t>(id)];
  return index == 0 ? nullptr : &signals_[index - 1];
}

Scope::SignalState* Scope::FirstBufferSignal() {
  for (SignalState& state : signals_) {
    if (state.spec.type() == SignalType::kBuffer) {
      return &state;
    }
  }
  return nullptr;
}

}  // namespace gscope
