#include "core/file_probe.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gscope {

FileProbe::FileProbe(std::string path, FileProbeOptions options)
    : path_(std::move(path)), options_(options), last_(options.fallback) {}

double FileProbe::Read() {
  ++reads_;
  std::ifstream in(path_);
  bool ok = in.is_open();
  std::string line;
  if (ok) {
    for (int i = 0; i <= options_.skip_lines; ++i) {
      if (!std::getline(in, line)) {
        ok = false;
        break;
      }
    }
  }
  double value = 0.0;
  if (ok) {
    std::istringstream tokens(line);
    std::string token;
    int index = 0;
    ok = false;
    while (tokens >> token) {
      if (index == options_.field) {
        char* end = nullptr;
        value = std::strtod(token.c_str(), &end);
        // Accept numeric prefixes ("1.23%", "45kB"): strtod must consume
        // at least one character.
        ok = end != token.c_str();
        break;
      }
      ++index;
    }
  }

  if (!ok) {
    ++errors_;
    return options_.hold_on_error && have_last_ ? last_ : options_.fallback;
  }
  last_ = value;
  have_last_ = true;
  return value;
}

SignalSource MakeFileProbeSource(const std::string& path, FileProbeOptions options) {
  auto probe = std::make_shared<FileProbe>(path, options);
  return FuncSource{[probe]() { return probe->Read(); }};
}

}  // namespace gscope
