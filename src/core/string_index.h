// Heterogeneous string hashing for the ingest-path name indexes.
//
// The streaming hot path looks names up from string_views that point into a
// network read buffer; a transparent hash/equality lets those lookups hit a
// std::unordered_map<std::string, ...> without materializing a temporary
// std::string per lookup.
#ifndef GSCOPE_CORE_STRING_INDEX_H_
#define GSCOPE_CORE_STRING_INDEX_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace gscope {

struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const char* s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

// unordered_map keyed by std::string with allocation-free string_view lookup.
template <typename V>
using StringKeyedMap = std::unordered_map<std::string, V, StringHash, std::equal_to<>>;

}  // namespace gscope

#endif  // GSCOPE_CORE_STRING_INDEX_H_
