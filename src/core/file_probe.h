// FileProbe: a FUNC-signal helper that polls a numeric value out of a file.
//
// The paper compares gscope to gstripchart, "the Gnome stripchart program,
// that charts various user-specified parameters as a function of time such
// as CPU load and network traffic levels.  The gstripchart program
// periodically reads data from a file, extracts a value and displays these
// values."  FileProbe brings that capability into gscope's programmatic
// model: each Read() reopens the file, extracts the `field`-th whitespace-
// separated numeric token (0-based, after skipping `skip_lines` lines) and
// returns it - ideal for /proc/loadavg-style pseudo-files.  Wrap it in
// MakeFunc to use it as a scope signal.
#ifndef GSCOPE_CORE_FILE_PROBE_H_
#define GSCOPE_CORE_FILE_PROBE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/signal_spec.h"

namespace gscope {

struct FileProbeOptions {
  // Lines to skip before tokenizing.
  int skip_lines = 0;
  // Which whitespace-separated token on that line to parse (0-based).
  int field = 0;
  // Returned when the file is missing/unparseable; the previous good value
  // is held instead when `hold_on_error` is set.
  double fallback = 0.0;
  bool hold_on_error = true;
};

class FileProbe {
 public:
  FileProbe(std::string path, FileProbeOptions options = {});

  // Reads the current value (reopens the file, like gstripchart).
  double Read();

  const std::string& path() const { return path_; }
  int64_t reads() const { return reads_; }
  int64_t errors() const { return errors_; }
  double last() const { return last_; }

 private:
  std::string path_;
  FileProbeOptions options_;
  double last_;
  bool have_last_ = false;
  int64_t reads_ = 0;
  int64_t errors_ = 0;
};

// Convenience: a FUNC SignalSource polling `path` (shared ownership keeps
// the probe alive as long as the signal).
SignalSource MakeFileProbeSource(const std::string& path, FileProbeOptions options = {});

}  // namespace gscope

#endif  // GSCOPE_CORE_FILE_PROBE_H_
