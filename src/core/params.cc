#include "core/params.h"

#include <algorithm>
#include <cmath>

namespace gscope {
namespace {

double ReadStorage(const ParamStorage& storage) {
  struct Visitor {
    double operator()(const int32_t* p) const { return static_cast<double>(*p); }
    double operator()(const bool* p) const { return *p ? 1.0 : 0.0; }
    double operator()(const float* p) const { return static_cast<double>(*p); }
    double operator()(const double* p) const { return *p; }
  };
  return std::visit(Visitor{}, storage);
}

void WriteStorage(const ParamStorage& storage, double value) {
  struct Visitor {
    double value;
    void operator()(int32_t* p) const { *p = static_cast<int32_t>(std::llround(value)); }
    void operator()(bool* p) const { *p = value != 0.0; }
    void operator()(float* p) const { *p = static_cast<float>(value); }
    void operator()(double* p) const { *p = value; }
  };
  std::visit(Visitor{value}, storage);
}

}  // namespace

bool ParamRegistry::Add(ParamSpec spec) {
  if (spec.name.empty()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (FindLocked(spec.name) != nullptr) {
    return false;
  }
  params_.push_back(std::move(spec));
  return true;
}

bool ParamRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(params_.begin(), params_.end(),
                         [&name](const ParamSpec& p) { return p.name == name; });
  if (it == params_.end()) {
    return false;
  }
  params_.erase(it);
  return true;
}

std::optional<double> ParamRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ParamSpec* spec = FindLocked(name);
  if (spec == nullptr) {
    return std::nullopt;
  }
  return ReadStorage(spec->storage);
}

bool ParamRegistry::Set(const std::string& name, double value) {
  std::function<void(double)> on_change;
  double applied = value;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const ParamSpec* spec = FindLocked(name);
    if (spec == nullptr) {
      return false;
    }
    if (spec->max > spec->min) {
      applied = std::clamp(value, spec->min, spec->max);
    }
    WriteStorage(spec->storage, applied);
    on_change = spec->on_change;
  }
  if (on_change) {
    on_change(applied);
  }
  return true;
}

std::vector<std::string> ParamRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(params_.size());
  for (const auto& p : params_) {
    names.push_back(p.name);
  }
  return names;
}

size_t ParamRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return params_.size();
}

bool ParamRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(name) != nullptr;
}

std::optional<std::pair<double, double>> ParamRegistry::RangeOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ParamSpec* spec = FindLocked(name);
  if (spec == nullptr || spec->max <= spec->min) {
    return std::nullopt;
  }
  return std::make_pair(spec->min, spec->max);
}

const ParamSpec* ParamRegistry::FindLocked(const std::string& name) const {
  for (const auto& p : params_) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace gscope
