// Control-parameter interface (Section 3.2, Figure 3).
//
// "Application or control parameters ... can be read and modified by the
// gscope library using the GtkScopeParameter structure.  These parameters are
// not displayed but generally used to modify application behavior. ...  while
// signals can only be read, application parameters can be read and written."
//
// Parameters are application-wide (not per scope), so the registry is a
// standalone object an application shares between its scopes and its logic.
// Writes go straight into application-owned storage, optionally clamped to a
// [min, max] range and reported to an on-change callback - the programmatic
// equivalent of typing into the Figure 3 window.
#ifndef GSCOPE_CORE_PARAMS_H_
#define GSCOPE_CORE_PARAMS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace gscope {

// Application-owned storage the parameter reads/writes through.
using ParamStorage = std::variant<int32_t*, bool*, float*, double*>;

struct ParamSpec {
  std::string name;
  ParamStorage storage;
  // Writes are clamped to [min, max] when max > min (otherwise unclamped).
  double min = 0.0;
  double max = 0.0;
  // Invoked after a successful Set with the new value.
  std::function<void(double)> on_change;
};

class ParamRegistry {
 public:
  ParamRegistry() = default;
  ParamRegistry(const ParamRegistry&) = delete;
  ParamRegistry& operator=(const ParamRegistry&) = delete;

  // Registers a parameter.  Returns false on duplicate or empty name.
  bool Add(ParamSpec spec);
  bool Remove(const std::string& name);

  // Reads the current value; nullopt for unknown names.  Thread-safe.
  std::optional<double> Get(const std::string& name) const;

  // Writes (with clamping) into the application's storage and fires the
  // on-change callback.  Integral storage rounds to nearest.  Thread-safe.
  bool Set(const std::string& name, double value);

  // Registered names in registration order (for rendering Figure 3).
  std::vector<std::string> Names() const;
  size_t size() const;
  bool Contains(const std::string& name) const;

  // The clamping range for a name, if constrained.
  std::optional<std::pair<double, double>> RangeOf(const std::string& name) const;

 private:
  const ParamSpec* FindLocked(const std::string& name) const;

  mutable std::mutex mu_;
  std::vector<ParamSpec> params_;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_PARAMS_H_
