// Scope-wide buffer for BUFFER signals (Sections 3.1, 4.4).
//
// "In buffered mode, applications enqueue signal samples with timestamps into
// a buffer and gscope displays these samples with a user-specified delay."
// A sample stamped t becomes displayable at wall time t + delay.  "Data
// arriving at the server after this delay is not buffered but dropped
// immediately" - i.e. a sample that shows up when its display time has
// already passed is rejected as late.
//
// Layout: a set of bounded rings (shards), each with its own lock, holding
// plain-old-data Samples keyed by an integer SampleKey (the scope's SignalId,
// or an interned name id for the legacy string API).  Steady-state ingest is
// zero-allocation and O(1) per sample: Push appends to a ring (evicting the
// oldest entry of that shard on overflow), and the scope drains per tick in
// one batch into a reusable scratch vector, sorted by (time, push order).
//
// Push() is thread-safe: producer threads, netlink-style event readers or the
// stream server push; the scope drains on its polling tick.
#ifndef GSCOPE_CORE_SAMPLE_BUFFER_H_
#define GSCOPE_CORE_SAMPLE_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/string_index.h"
#include "core/tuple.h"

namespace gscope {

// Integer routing key for buffered samples.  The scope pushes its SignalId;
// the sentinels preserve the name API's routing special cases.
using SampleKey = uint64_t;
// The single-signal special case: a two-field tuple with no name, routed to
// the first BUFFER signal at drain time.
inline constexpr SampleKey kUnnamedSampleKey = 0;
// An explicitly-unknown id (PushBuffered(0, ...)); counted as unmatched
// when the scope routes the drained batch.
inline constexpr SampleKey kUnmatchedSampleKey = ~SampleKey{0};
// Keys with this bit carry an interned *pending name* instead of a SignalId:
// the name did not resolve at push time, so the scope re-resolves it at
// drain time (a signal added within the delay window still gets the data).
inline constexpr SampleKey kPendingNameKeyBit = SampleKey{1} << 62;
// Keys with this bit were interned by the buffer's own Tuple shim (the
// legacy Push(Tuple) API).  Kept disjoint from SignalIds and the scope's
// pending keyspace so a Tuple pushed straight into scope.buffer() routes by
// name at drain time instead of masquerading as an id.
inline constexpr SampleKey kShimNameKeyBit = SampleKey{1} << 61;

// One buffered sample: POD, no heap ownership.
struct Sample {
  int64_t time_ms = 0;
  double value = 0.0;
  SampleKey key = kUnnamedSampleKey;
  // Global push order; ties on time_ms drain in arrival order.
  uint64_t seq = 0;
};

// Dense drain-time last-wins fold (the sample-and-hold reduction,
// core/sample_hold.h): between two polls only the newest sample per signal
// is displayable, so a drain batch of N samples over K live signals only
// needs K hold writes.  Generation-stamped so Begin() is O(1) — no per-tick
// clearing — and steady-state Fold() is allocation-free once the dense index
// has grown to the caller's key space (signal indexes, not hashes).
class LastWinsTable {
 public:
  struct Entry {
    uint32_t index = 0;   // caller's dense key (e.g. signal index)
    int64_t time_ms = 0;  // newest (time, arrival)-max sample
    double value = 0.0;
    uint32_t count = 0;  // samples folded into this entry this generation
  };

  // Starts a new generation (one drain tick); previous entries are dropped.
  void Begin();
  // Folds one sample for `index`; newest (time, arrival) wins, ties go to
  // the later call, matching a stable sort by time.
  void Fold(uint32_t index, int64_t time_ms, double value);
  // The winners of the current generation, in first-touch order.
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<uint32_t> slot_gen_;  // index -> generation of last touch
  std::vector<uint32_t> slot_pos_;  // index -> position+1 into entries_
  std::vector<Entry> entries_;
  uint32_t gen_ = 0;
};

class SampleBuffer {
 public:
  struct Stats {
    int64_t pushed = 0;
    int64_t dropped_late = 0;
    int64_t dropped_overflow = 0;
    int64_t drained = 0;
  };

  // `max_samples` bounds the total retained samples across all shards; any
  // single signal may use the full capacity (shard rings grow on demand up
  // to it).  On overflow the globally oldest sample — smallest (time,
  // arrival) among the shard heads — is evicted, like the sorted deque this
  // replaces.  Under concurrent pushes the bound is approximate by at most
  // the number of in-flight pushers.
  explicit SampleBuffer(size_t max_samples = 1 << 16);

  // -- id fast path (zero allocation, zero scans) ---------------------------

  // Enqueues one timestamped sample for `key`.  `now_ms` is the current
  // scope time and `delay_ms` the configured display delay: a sample whose
  // display time (time_ms + delay_ms) is already in the past is dropped and
  // false is returned.  Thread-safe.
  bool Push(SampleKey key, int64_t time_ms, double value, int64_t now_ms, int64_t delay_ms);

  // Batched ingest: pushes `count` keyed samples under one lock acquisition
  // per shard and one arrival-order reservation (the stream server calls
  // this once per read chunk).  Each sample is subject to the same
  // late-drop/overflow rules as Push; `seq` fields are assigned here.
  // Returns the number accepted (rejects are late drops).  Thread-safe.
  size_t PushBatch(const Sample* samples, size_t count, int64_t now_ms, int64_t delay_ms);

  // Appends every sample that has become displayable (time_ms + delay_ms <=
  // now_ms) to `*out`, sorted by (time_ms, push order), and removes them from
  // the buffer.  `out` is a caller-owned scratch vector: reusing it makes
  // steady-state drains allocation-free.  Returns the number appended.
  // Thread-safe.
  size_t DrainDisplayableInto(int64_t now_ms, int64_t delay_ms, std::vector<Sample>* out);

  // -- name-keyed shim (legacy API; interns names on first use) -------------

  bool Push(const Tuple& sample, int64_t now_ms, int64_t delay_ms);
  std::vector<Tuple> DrainDisplayable(int64_t now_ms, int64_t delay_ms);

  // Name for a kShimNameKeyBit key interned by the Tuple shim ("" for any
  // other key, e.g. a scope SignalId or the unnamed sentinel).
  std::string NameOf(SampleKey key) const;

  size_t size() const;
  Stats stats() const;
  void Clear();
  size_t shard_count() const { return shards_.size(); }

 private:
  // Per-shard bounded ring with its own lock; keys hash to a fixed shard so
  // per-key FIFO order is preserved within a shard.
  struct Shard {
    mutable std::mutex mu;
    std::vector<Sample> ring;  // circular, capacity() slots
    size_t head = 0;           // oldest entry
    size_t count = 0;
    // Smallest time_ms currently in the ring (INT64_MAX when empty): lets an
    // idle drain tick skip the shard with one comparison.
    int64_t min_time_ms = INT64_MAX;
    Stats stats;
    std::vector<Sample> retained_scratch;  // drain-time compaction, reused
  };

  Shard& ShardFor(SampleKey key) { return shards_[key % shards_.size()]; }
  // Appends under the shard's lock, growing the ring (up to max_samples_)
  // or evicting the shard's oldest when it cannot grow.  Accumulates the
  // retained-count change into *total_delta; the caller applies it to
  // total_count_ once per locked section (one atomic op per batch, not per
  // sample).
  void AppendLocked(Shard& shard, const Sample& sample, uint64_t seq, int64_t* total_delta);
  // Evicts the globally oldest head across shards; false if all empty.
  bool EvictGlobalOldest();
  void TrimToCapacity();

  size_t max_samples_;
  // Per-shard capacity a ring may keep while empty (max_samples_/shards);
  // beyond it an emptied ring is released back to the allocator.
  size_t fair_share_;
  std::vector<Shard> shards_;
  // Total retained samples; mutated under shard locks, read for the
  // capacity trim.
  std::atomic<int64_t> total_count_{0};
  std::atomic<uint64_t> next_seq_{0};
  // Serializes drains; run-merge scratch below is only touched under it.
  std::mutex drain_mu_;
  std::vector<Sample> merge_scratch_;

  // Name interning for the Tuple shim.  Interned keys are tagged with
  // kShimNameKeyBit, keeping them disjoint from caller key spaces.
  mutable std::mutex intern_mu_;
  StringKeyedMap<SampleKey> name_to_key_;
  std::vector<std::string> key_to_name_;  // [key & ~kShimNameKeyBit]
  std::vector<Sample> shim_scratch_;      // guarded by intern_mu_
};

}  // namespace gscope

#endif  // GSCOPE_CORE_SAMPLE_BUFFER_H_
