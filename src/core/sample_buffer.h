// Scope-wide buffer for BUFFER signals (Sections 3.1, 4.4).
//
// "In buffered mode, applications enqueue signal samples with timestamps into
// a buffer and gscope displays these samples with a user-specified delay."
// A sample stamped t becomes displayable at wall time t + delay.  "Data
// arriving at the server after this delay is not buffered but dropped
// immediately" - i.e. a sample that shows up when its display time has
// already passed is rejected as late.
//
// Push() is thread-safe: producer threads, netlink-style event readers or the
// stream server push; the scope drains on its polling tick.
#ifndef GSCOPE_CORE_SAMPLE_BUFFER_H_
#define GSCOPE_CORE_SAMPLE_BUFFER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/tuple.h"

namespace gscope {

class SampleBuffer {
 public:
  struct Stats {
    int64_t pushed = 0;
    int64_t dropped_late = 0;
    int64_t dropped_overflow = 0;
    int64_t drained = 0;
  };

  // `max_samples` bounds memory; the oldest samples are evicted on overflow.
  explicit SampleBuffer(size_t max_samples = 1 << 16) : max_samples_(max_samples) {}

  // Enqueues one timestamped sample.  `now_ms` is the current scope time and
  // `delay_ms` the configured display delay: a sample whose display time
  // (time_ms + delay_ms) is already in the past is dropped and false is
  // returned.  Thread-safe.
  bool Push(const Tuple& sample, int64_t now_ms, int64_t delay_ms);

  // Removes and returns every sample that has become displayable, i.e. with
  // time_ms + delay_ms <= now_ms, in time order.  Thread-safe.
  std::vector<Tuple> DrainDisplayable(int64_t now_ms, int64_t delay_ms);

  size_t size() const;
  Stats stats() const;
  void Clear();

 private:
  const size_t max_samples_;
  mutable std::mutex mu_;
  std::deque<Tuple> samples_;  // kept sorted by time_ms
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_SAMPLE_BUFFER_H_
