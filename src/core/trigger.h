// Oscilloscope-style triggers (the paper's Section 6 future work).
//
// "Gscope currently does not have support for repeating waveforms.  Thus,
// many oscilloscope features such as triggers that stabilize repeating
// waveforms or waveform envelop generation are not implemented in gscope."
//
// This module implements them.  A Trigger detects threshold crossings
// (rising or falling edge, with hysteresis and holdoff, like a real scope's
// trigger controls); TriggeredSweeps splits a signal trace into sweeps
// aligned at the trigger point so a repeating waveform draws in a stable
// position instead of scrolling.
#ifndef GSCOPE_CORE_TRIGGER_H_
#define GSCOPE_CORE_TRIGGER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/trace.h"

namespace gscope {

enum class TriggerEdge : uint8_t { kRising, kFalling };

enum class TriggerMode : uint8_t {
  kAuto,    // free-run when no trigger fires (always shows something)
  kNormal,  // only update the sweep on a trigger
  kSingle,  // arm once, capture one sweep, then hold
};

struct TriggerConfig {
  TriggerEdge edge = TriggerEdge::kRising;
  double level = 50.0;
  // Hysteresis band: the signal must retreat past level -/+ hysteresis
  // before the trigger re-arms (suppresses noise double-fires).
  double hysteresis = 1.0;
  // Minimum samples between consecutive trigger firings.
  size_t holdoff = 0;
  TriggerMode mode = TriggerMode::kAuto;
};

// Streaming edge detector.  Feed samples in time order; Fire() reports
// whether the just-fed sample triggered.
class Trigger {
 public:
  explicit Trigger(TriggerConfig config = {});

  const TriggerConfig& config() const { return config_; }
  void set_level(double level) { config_.level = level; }
  void set_edge(TriggerEdge edge) { config_.edge = edge; }
  void set_mode(TriggerMode mode) { config_.mode = mode; }

  // Processes one sample; returns true if this sample fired the trigger.
  bool Feed(double sample);

  // Re-arms a kSingle trigger (and resets holdoff/arming state).
  void Rearm();

  int64_t fires() const { return fires_; }
  bool armed() const { return armed_; }

 private:
  bool CrossedLevel(double sample) const;
  bool RetreatedPastHysteresis(double sample) const;

  TriggerConfig config_;
  bool has_prev_ = false;
  double prev_ = 0.0;
  bool armed_ = true;       // hysteresis arming
  bool single_done_ = false;
  size_t since_fire_ = 0;
  bool ever_fired_ = false;
  int64_t fires_ = 0;
};

// One display sweep: `width` samples starting at a trigger point.
struct Sweep {
  std::vector<double> samples;
  // Index into the source sample stream where the sweep starts.
  size_t start_index = 0;
  bool triggered = false;  // false for kAuto free-run sweeps
};

// Splits a time-ordered sample vector (e.g. Trace::Values()) into
// trigger-aligned sweeps of `width` samples, applying the trigger config.
// kAuto emits a free-run sweep when no trigger fires within a width.
std::vector<Sweep> ExtractSweeps(const std::vector<double>& samples, size_t width,
                                 const TriggerConfig& config);

// The most recent stable sweep for display, or nullopt when none complete.
std::optional<Sweep> LatestSweep(const std::vector<double>& samples, size_t width,
                                 const TriggerConfig& config);

}  // namespace gscope

#endif  // GSCOPE_CORE_TRIGGER_H_
