// Per-signal trace: the ring of displayed sampling points.
//
// The scope displays one point per pixel column per polling period (Section
// 3.1: "data is displayed one pixel apart each polling period").  A Trace is
// that pixel-column ring.  Lost polling timeouts advance the ring by the
// number of missed columns (Section 4.5) with hold points so the x-axis stays
// truthful; those points are flagged `synthesized`.
#ifndef GSCOPE_CORE_TRACE_H_
#define GSCOPE_CORE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gscope {

struct TracePoint {
  double value = 0.0;
  // False until the column has been written at least once.
  bool valid = false;
  // True when the column was filled in for a lost timeout rather than
  // an actual sample.
  bool synthesized = false;
};

class Trace {
 public:
  // `capacity` is the number of pixel columns retained (canvas width).
  explicit Trace(size_t capacity);

  size_t capacity() const { return points_.size(); }

  // Appends a real sample, advancing the ring one column.
  void Push(double value);

  // Appends `columns` hold points (repeating the last value) for lost ticks,
  // then the real sample.  Equivalent to Push when columns == 0.
  void PushWithLoss(double value, int64_t columns);

  // Clears all columns (mode switches, zoom-to-fresh restarts).
  void Reset();

  // Newest-first access: At(0) is the most recent column, At(1) the one
  // before it, ...  Returns an invalid point beyond the written range.
  const TracePoint& At(size_t age) const;

  // Oldest-to-newest copy of the valid window (for rendering / FFT).
  std::vector<TracePoint> Snapshot() const;
  // Same, values only, invalid columns skipped.
  std::vector<double> Values() const;

  // Number of valid columns (<= capacity).
  size_t size() const { return valid_count_; }
  bool empty() const { return valid_count_ == 0; }

  // Total samples ever pushed, including synthesized hold points.
  int64_t total_pushed() const { return total_pushed_; }
  int64_t synthesized_count() const { return synthesized_count_; }

  double latest() const;

 private:
  void PushPoint(double value, bool synthesized);

  std::vector<TracePoint> points_;
  size_t head_ = 0;  // next write position
  size_t valid_count_ = 0;
  int64_t total_pushed_ = 0;
  int64_t synthesized_count_ = 0;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_TRACE_H_
