#include "core/signal_filter.h"

#include <algorithm>

namespace gscope {

bool GlobMatch(std::string_view pattern, std::string_view text) {
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos;  // position of the last '*' seen
  size_t star_t = 0;                     // text position that star matched to
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      // Mismatch after a star: let the star swallow one more character.
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

bool SignalFilter::Add(std::string_view glob) {
  if (glob.empty() ||
      std::find(patterns_.begin(), patterns_.end(), glob) != patterns_.end()) {
    return false;
  }
  patterns_.emplace_back(glob);
  ++epoch_;
  return true;
}

bool SignalFilter::Remove(std::string_view glob) {
  auto it = std::find(patterns_.begin(), patterns_.end(), glob);
  if (it == patterns_.end()) {
    return false;
  }
  patterns_.erase(it);
  ++epoch_;
  return true;
}

void SignalFilter::SetNamespace(std::string_view ns) {
  if (namespace_ == ns) {
    return;
  }
  namespace_.assign(ns);
  ++epoch_;
}

bool SignalFilter::Matches(std::string_view name) const {
  if (namespace_.empty()) {
    // Default namespace: tenant-owned names are never candidates, so an
    // anonymous "*" cannot subscribe across the namespace boundary.
    if (name.find(kNamespaceSep) != std::string_view::npos) {
      return false;
    }
  } else {
    // Tenant namespace: the name must carry this tenant's prefix and the
    // globs see only the remainder.
    if (name.size() <= namespace_.size() + 1 ||
        name.compare(0, namespace_.size(), namespace_) != 0 ||
        name[namespace_.size()] != kNamespaceSep) {
      return false;
    }
    name.remove_prefix(namespace_.size() + 1);
  }
  for (const std::string& pattern : patterns_) {
    if (GlobMatch(pattern, name)) {
      return true;
    }
  }
  return false;
}

}  // namespace gscope
