// Sharded, signal-routed ingest bus: the server -> scope fan-out boundary.
//
// The gscope paper displays streamed BUFFER signals "to one or more scopes";
// the naive fan-out costs O(batch x scopes) because every display target gets
// its own materialized copy of every parsed sample.  This module makes the
// hand-off O(batch + scopes): the server parses each read chunk ONCE into a
// refcounted IngestBlock whose samples are keyed by *route index*, resolves
// names once through an immutable RouteTable snapshot (route x scope-slot ->
// SignalId), and hands every scope a lightweight IngestSpan - {block, table,
// range, slot} - in O(1).  Scopes queue spans (IngestSpanQueue) and translate
// route keys to their own signals only at drain time, on the loop thread.
//
// Epoch discipline: a RouteTable is immutable.  When the scope list or any
// scope's signal table changes, the router builds a fresh snapshot; spans
// already queued keep their old table, so a stale id simply resolves to
// "unmatched" at drain time - exactly what the per-client route caches this
// replaces did.
#ifndef GSCOPE_CORE_INGEST_BUS_H_
#define GSCOPE_CORE_INGEST_BUS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "core/sample_buffer.h"
#include "core/signal_spec.h"

namespace gscope {

// Block samples whose key equals this carry the two-field single-signal form
// (no name): each scope routes them to its first BUFFER signal at drain time.
inline constexpr SampleKey kUnnamedRouteKey = ~SampleKey{0};

// One parsed batch, shared by every subscribed scope.  Sample::key holds a
// route index into the RouteTable the producing router attached to the span
// (or kUnnamedRouteKey).  min/max bounds let consumers decide whole-span
// late-drop and displayability in O(1).
struct IngestBlock {
  // Per-route last-wins summary: one entry per distinct route key appended
  // to this block, holding the newest sample — (time, arrival)-max, i.e. the
  // sample a stable sort by time would leave last — and how many samples the
  // route contributed.  Built incrementally in O(1) per Append and shared by
  // every scope, it is what lets a display-only drain run in O(live routes)
  // instead of O(batch) per scope (core/sample_hold.h: between polls only
  // the last value per signal is displayable).
  struct RouteLast {
    SampleKey route = 0;  // route index, or kUnnamedRouteKey
    int64_t time_ms = 0;
    double value = 0.0;
    uint32_t count = 0;  // samples this route contributed to the block
  };

  std::vector<Sample> samples;
  std::vector<RouteLast> live;  // distinct routes, first-appearance order
  int64_t min_time_ms = std::numeric_limits<int64_t>::max();
  int64_t max_time_ms = std::numeric_limits<int64_t>::min();
  // Samples were appended in non-decreasing time order (the common
  // streaming case).  When false, scopes restore (time, arrival) order
  // before routing so sample-and-hold ends on the newest value - matching
  // the ring drain's sort.  Ordering is restored within a block; producers
  // whose stamps run backwards across whole batches get batch-arrival order,
  // as they did across drain ticks before.
  bool time_ordered = true;
  // Some sample references a route with an unresolved (id 0) slot, i.e. was
  // (or will be) delivered to part of the scopes through the name shim.
  // False in the common all-resolved case, which keeps whole-span late-drop
  // accounting O(1) - no per-sample scan for shim-served exclusions.
  bool has_unresolved = false;
  // Some sample carries kUnnamedRouteKey.  Spans delivered to subscription-
  // filtered scopes exclude unnamed samples (there is no name to match), and
  // this flag keeps their late-drop accounting O(1) in the common named-only
  // case, exactly like has_unresolved.
  bool has_unnamed = false;

  void Clear() {
    samples.clear();
    // Reset only the live slots (O(live), not O(routes ever seen)); the
    // dense index keeps its warm capacity for the pooled-block reuse cycle.
    for (const RouteLast& entry : live) {
      if (entry.route == kUnnamedRouteKey) {
        unnamed_slot = 0;
      } else {
        last_slot[static_cast<size_t>(entry.route)] = 0;
      }
    }
    live.clear();
    min_time_ms = std::numeric_limits<int64_t>::max();
    max_time_ms = std::numeric_limits<int64_t>::min();
    time_ordered = true;
    has_unresolved = false;
    has_unnamed = false;
  }
  void Append(int64_t time_ms, double value, SampleKey route_key) {
    time_ordered = time_ordered && (samples.empty() || time_ms >= max_time_ms);
    has_unnamed = has_unnamed || route_key == kUnnamedRouteKey;
    samples.push_back(Sample{time_ms, value, route_key, 0});
    min_time_ms = std::min(min_time_ms, time_ms);
    max_time_ms = std::max(max_time_ms, time_ms);
    uint32_t* slot;
    if (route_key == kUnnamedRouteKey) {
      slot = &unnamed_slot;
    } else {
      if (last_slot.size() <= static_cast<size_t>(route_key)) {
        last_slot.resize(static_cast<size_t>(route_key) + 1, 0);
      }
      slot = &last_slot[static_cast<size_t>(route_key)];
    }
    if (*slot == 0) {
      live.push_back(RouteLast{route_key, time_ms, value, 1});
      *slot = static_cast<uint32_t>(live.size());
    } else {
      RouteLast& entry = live[*slot - 1];
      entry.count += 1;
      if (time_ms >= entry.time_ms) {  // >=: arrival order breaks time ties
        entry.time_ms = time_ms;
        entry.value = value;
      }
    }
  }
  bool empty() const { return samples.empty(); }

  // Summary internals: route -> index+1 into `live` (0 = absent), dense by
  // route index; the unnamed pseudo-route gets its own scalar.  A sibling
  // of core/sample_buffer.h's LastWinsTable, kept separate on purpose: the
  // block fold is keyed by unbounded SampleKeys with a sentinel
  // (kUnnamedRouteKey would explode a dense index), and pooled-block reuse
  // wants the explicit O(live) reset in Clear() rather than a generation
  // stamp that would have to live across pool hand-offs.
  std::vector<uint32_t> last_slot;
  uint32_t unnamed_slot = 0;
};

// Immutable routing snapshot: per route index, one SignalId per scope slot.
// Id 0 means "nothing to deliver through the span for this slot" (the sample
// was handed to that scope out-of-band through the name shim, or resolves
// nowhere by design).
struct RouteTable {
  uint32_t num_slots = 0;
  std::vector<SignalId> ids;  // [route * num_slots + slot]
  // Slots registered with a subscription filter.  A filtered slot's id-0
  // entries mean "excluded by design", so its late-drop accounting must scan
  // for them; unfiltered slots keep the O(1) whole-span count.
  std::vector<uint8_t> slot_filtered;  // [slot]; empty = none filtered
  // Per route x slot: the slot's signal has an every-sample consumer
  // (trigger/trace/aggregate/envelope/export sink, or an every-sample tap —
  // Scope::SignalNeedsHistory), so its samples must be delivered one by one
  // at drain time instead of coalescing to the block's last-wins entry.
  // Computed at BUILD time (the scopes' consumer epochs are folded into
  // RouteEpoch): attaching a trigger flips the bit at the next snapshot,
  // never via a per-sample check.  Empty = no consumer anywhere, the common
  // display-only case.
  std::vector<uint8_t> needs_history;  // [route * num_slots + slot]; empty = none

  SignalId IdFor(SampleKey route, uint32_t slot) const {
    size_t index = static_cast<size_t>(route) * num_slots + slot;
    return index < ids.size() ? ids[index] : 0;
  }
  bool SlotFiltered(uint32_t slot) const {
    return slot < slot_filtered.size() && slot_filtered[slot] != 0;
  }
  bool SlotNeedsHistory(SampleKey route, uint32_t slot) const {
    size_t index = static_cast<size_t>(route) * num_slots + slot;
    return index < needs_history.size() && needs_history[index] != 0;
  }
};

// The O(1) per-scope hand-off: a view of [begin, end) of a shared block plus
// the table/slot needed to translate route keys into this scope's SignalIds.
struct IngestSpan {
  std::shared_ptr<const IngestBlock> block;
  std::shared_ptr<const RouteTable> table;
  uint32_t begin = 0;
  uint32_t end = 0;
  uint32_t slot = 0;
  // False for subscription-filtered scopes: samples with kUnnamedRouteKey
  // (the two-field single-signal form has no name to match a glob against)
  // are not this scope's to display.
  bool deliver_unnamed = true;

  size_t size() const { return end - begin; }
};

// Per-scope queue of pending spans.  Push is thread-safe (the router's
// fan-out workers call it); Collect runs on the scope's loop thread at drain
// time.  Steady-state push/collect cycles are allocation-free once the two
// internal vectors have warmed up.
class IngestSpanQueue {
 public:
  struct Stats {
    int64_t spans_pushed = 0;
    int64_t samples_pushed = 0;
    // Samples from whole spans whose newest sample already missed its
    // display deadline (counted by the scope via CountLateDrops, which
    // excludes samples the name shim delivered out-of-band).
    int64_t dropped_late = 0;
    // Samples evicted because the queue exceeded its capacity (oldest spans
    // are dropped wholesale, mirroring the sample ring's oldest-first evict).
    int64_t dropped_overflow = 0;
  };

  enum class PushVerdict {
    kQueued,   // whole span accepted
    kAllLate,  // whole span late: dropped, counted
    kMixed,    // some samples late: NOT queued; caller must split per sample
  };

  explicit IngestSpanQueue(size_t max_samples)
      : max_samples_(max_samples == 0 ? 1 : max_samples) {}

  // O(1) thanks to the block's time bounds.  Thread-safe.
  PushVerdict Push(const IngestSpan& span, int64_t now_ms, int64_t delay_ms) {
    size_t n = span.size();
    if (n == 0) {
      return PushVerdict::kQueued;
    }
    const IngestBlock& block = *span.block;
    std::lock_guard<std::mutex> lock(mu_);
    if (block.max_time_ms + delay_ms < now_ms) {
      return PushVerdict::kAllLate;  // caller counts via CountLateDrops
    }
    if (block.min_time_ms + delay_ms < now_ms) {
      return PushVerdict::kMixed;
    }
    spans_.push_back(span);
    queued_samples_ += n;
    stats_.spans_pushed += 1;
    stats_.samples_pushed += static_cast<int64_t>(n);
    // Evict oldest spans wholesale when over capacity (never the span just
    // pushed: a single oversized span is always admitted, like a ring whose
    // one signal may use the whole buffer).
    size_t evict = 0;
    while (queued_samples_ > max_samples_ && evict + 1 < spans_.size()) {
      queued_samples_ -= spans_[evict].size();
      stats_.dropped_overflow += static_cast<int64_t>(spans_[evict].size());
      ++evict;
    }
    if (evict > 0) {
      spans_.erase(spans_.begin(), spans_.begin() + static_cast<ptrdiff_t>(evict));
    }
    return PushVerdict::kQueued;
  }

  // Moves every span containing at least one displayable sample (block
  // min_time + delay <= now) into *out, preserving arrival order; later
  // spans stay queued.  Caller classifies fully- vs partially-displayable
  // via the block bounds.  Thread-safe.
  void CollectDisplayable(int64_t now_ms, int64_t delay_ms, std::vector<IngestSpan>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    retained_scratch_.clear();
    for (IngestSpan& span : spans_) {
      if (span.block->min_time_ms + delay_ms <= now_ms) {
        queued_samples_ -= span.size();
        out->push_back(std::move(span));
      } else {
        retained_scratch_.push_back(std::move(span));
      }
    }
    if (retained_scratch_.empty()) {
      // Common case (everything drained): keep spans_'s warm capacity
      // instead of swap-ping-ponging it against an always-empty scratch.
      spans_.clear();
    } else {
      spans_.swap(retained_scratch_);
    }
  }

  // Called by the owner after a kAllLate verdict with the number of samples
  // that were actually this queue's to drop (shim-served ones excluded).
  void CountLateDrops(int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.dropped_late += n;
  }

  size_t queued_samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queued_samples_;
  }
  size_t span_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    retained_scratch_.clear();
    queued_samples_ = 0;
  }

 private:
  size_t max_samples_;
  mutable std::mutex mu_;
  std::vector<IngestSpan> spans_;
  std::vector<IngestSpan> retained_scratch_;
  size_t queued_samples_ = 0;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_INGEST_BUS_H_
