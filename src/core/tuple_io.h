// Recording and replaying tuple streams (Sections 3.1, 3.3).
//
// TupleWriter records signal data ("the polled data can be recorded to a
// file"); TupleReader replays it in playback mode.  Both enforce the format's
// invariant that successive tuple times are non-decreasing.
#ifndef GSCOPE_CORE_TUPLE_IO_H_
#define GSCOPE_CORE_TUPLE_IO_H_

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/tuple.h"

namespace gscope {

class TupleWriter {
 public:
  TupleWriter() = default;

  // Opens `path` for writing (truncates).  Returns false on failure.
  bool Open(const std::string& path);
  bool is_open() const { return out_.is_open(); }
  void Close();

  // Writes a leading comment line (e.g. recording metadata).
  void Comment(const std::string& text);

  // Appends one tuple.  Returns false (and writes nothing) if the time would
  // go backwards relative to the last written tuple, or if closed.
  bool Write(const Tuple& tuple);

  // Same, without requiring a materialized Tuple: formats into a reusable
  // member buffer, so steady-state recording allocates nothing per sample
  // (the scope's CommitSample recorder path).
  bool Write(int64_t time_ms, double value, std::string_view name);

  int64_t written() const { return written_; }
  int64_t rejected() const { return rejected_; }

 private:
  std::ofstream out_;
  std::string line_scratch_;
  int64_t last_time_ms_ = INT64_MIN;
  int64_t written_ = 0;
  int64_t rejected_ = 0;
};

class TupleReader {
 public:
  TupleReader() = default;

  // Opens `path` for reading.  Returns false on failure.
  bool Open(const std::string& path);
  bool is_open() const { return in_.is_open(); }

  // Reads the next well-formed tuple.  Skips comment/blank lines.  Malformed
  // lines and time-order violations are counted and skipped (a replay should
  // survive a slightly damaged recording).  Returns nullopt at end of file.
  std::optional<Tuple> Next();

  // Reads every remaining tuple.
  std::vector<Tuple> ReadAll();

  int64_t parsed() const { return parsed_; }
  int64_t malformed() const { return malformed_; }
  int64_t out_of_order() const { return out_of_order_; }

 private:
  std::ifstream in_;
  int64_t last_time_ms_ = INT64_MIN;
  int64_t parsed_ = 0;
  int64_t malformed_ = 0;
  int64_t out_of_order_ = 0;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_TUPLE_IO_H_
