#include "core/fanout_pool.h"

namespace gscope {

FanoutPool::FanoutPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this]() { WorkerMain(); });
  }
}

FanoutPool::~FanoutPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void FanoutPool::Run(size_t tasks, const std::function<void(size_t)>& fn) {
  if (tasks == 0) {
    return;
  }
  if (threads_.empty() || tasks == 1) {
    for (size_t i = 0; i < tasks; ++i) {
      fn(i);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  total_ = tasks;
  next_ = 0;
  active_ = 0;
  ++generation_;
  work_cv_.notify_all();
  // The caller claims tasks alongside the workers instead of just waiting.
  while (next_ < total_) {
    size_t index = next_++;
    lock.unlock();
    fn(index);
    lock.lock();
  }
  done_cv_.wait(lock, [this]() { return active_ == 0; });
  fn_ = nullptr;
}

void FanoutPool::WorkerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [this, seen]() {
      return stop_ || (generation_ != seen && fn_ != nullptr && next_ < total_);
    });
    if (stop_) {
      return;
    }
    seen = generation_;
    while (fn_ != nullptr && next_ < total_) {
      size_t index = next_++;
      ++active_;
      const std::function<void(size_t)>& fn = *fn_;
      lock.unlock();
      fn(index);
      lock.lock();
      --active_;
      if (active_ == 0 && next_ >= total_) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace gscope
