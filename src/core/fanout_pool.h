// A tiny persistent worker pool for sharded ingest fan-out.
//
// The router partitions its subscription list into K shards per flush and
// runs them through Run(); with zero workers the shards execute inline on the
// caller (the right choice on a single-core host, where extra threads only
// add wake-up latency and CPU overhead).  With workers, the caller thread
// participates too, so Run(K, fn) uses up to worker_count()+1 threads and
// returns only when every shard has completed - the scope drains stay on the
// loop thread, preserving the paper's GTK-lock discipline.
#ifndef GSCOPE_CORE_FANOUT_POOL_H_
#define GSCOPE_CORE_FANOUT_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gscope {

class FanoutPool {
 public:
  // `workers` persistent threads; 0 runs every task inline in Run().
  explicit FanoutPool(size_t workers = 0);
  ~FanoutPool();

  FanoutPool(const FanoutPool&) = delete;
  FanoutPool& operator=(const FanoutPool&) = delete;

  size_t worker_count() const { return threads_.size(); }

  // Runs fn(0) .. fn(tasks-1), each exactly once, across the workers and the
  // calling thread; blocks until all complete.  `fn` must be safe to invoke
  // concurrently with itself for distinct task indexes.  Callers that reuse
  // one std::function across Run() calls keep the steady state
  // allocation-free.
  void Run(size_t tasks, const std::function<void(size_t)>& fn);

 private:
  void WorkerMain();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* fn_ = nullptr;  // valid while a job runs
  size_t total_ = 0;   // tasks in the current job
  size_t next_ = 0;    // next unclaimed task index
  size_t active_ = 0;  // tasks currently executing on workers
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gscope

#endif  // GSCOPE_CORE_FANOUT_POOL_H_
