#include "core/envelope.h"

#include <algorithm>

namespace gscope {

Envelope::Envelope(size_t width)
    : lo_(width == 0 ? 1 : width, 0.0),
      hi_(width == 0 ? 1 : width, 0.0),
      coverage_(width == 0 ? 1 : width, 0) {}

void Envelope::AddSweep(const std::vector<double>& sweep) {
  size_t n = std::min(sweep.size(), lo_.size());
  for (size_t i = 0; i < n; ++i) {
    if (coverage_[i] == 0) {
      lo_[i] = sweep[i];
      hi_[i] = sweep[i];
    } else {
      lo_[i] = std::min(lo_[i], sweep[i]);
      hi_[i] = std::max(hi_[i], sweep[i]);
    }
    ++coverage_[i];
  }
  if (n > 0) {
    ++sweeps_;
  }
}

void Envelope::AddSweeps(const std::vector<double>& samples, const TriggerConfig& config) {
  for (const Sweep& sweep : ExtractSweeps(samples, lo_.size(), config)) {
    if (sweep.triggered) {
      AddSweep(sweep.samples);
    }
  }
}

double Envelope::LowAt(size_t column) const {
  return column < lo_.size() ? lo_[column] : 0.0;
}

double Envelope::HighAt(size_t column) const {
  return column < hi_.size() ? hi_[column] : 0.0;
}

int64_t Envelope::CoverageAt(size_t column) const {
  return column < coverage_.size() ? coverage_[column] : 0;
}

void Envelope::Reset() {
  std::fill(lo_.begin(), lo_.end(), 0.0);
  std::fill(hi_.begin(), hi_.end(), 0.0);
  std::fill(coverage_.begin(), coverage_.end(), 0);
  sweeps_ = 0;
}

double Envelope::MaxSpread() const {
  double spread = 0.0;
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (coverage_[i] > 0) {
      spread = std::max(spread, hi_[i] - lo_[i]);
    }
  }
  return spread;
}

}  // namespace gscope
