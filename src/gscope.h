// Umbrella header for the gscope library.
//
// A reproduction of: Goel & Walpole, "Gscope: A Visualization Tool for
// Time-Sensitive Software", FREENIX/USENIX 2002.  See DESIGN.md for the
// module inventory and EXPERIMENTS.md for the reproduced evaluation.
#ifndef GSCOPE_GSCOPE_H_
#define GSCOPE_GSCOPE_H_

// Event loop substrate (glib analogue).
#include "runtime/clock.h"
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"
#include "runtime/timer_stats.h"

// The scope library proper.
#include "core/aggregate.h"
#include "core/file_probe.h"
#include "core/filter.h"
#include "core/params.h"
#include "core/sample_buffer.h"
#include "core/envelope.h"
#include "core/fanout_pool.h"
#include "core/ingest_bus.h"
#include "core/ingest_router.h"
#include "core/sample_hold.h"
#include "core/scope.h"
#include "core/scope_set.h"
#include "core/signal_filter.h"
#include "core/signal_spec.h"
#include "core/trace.h"
#include "core/trigger.h"
#include "core/tuple.h"
#include "core/tuple_io.h"
#include "core/value.h"

// Headless GUI substrate.
#include "render/ascii.h"
#include "render/canvas.h"
#include "render/color.h"
#include "render/export.h"
#include "render/scope_view.h"

// Frequency-domain display.
#include "freq/fft.h"
#include "freq/spectrum.h"
#include "freq/window.h"

// Distributed visualization.
#include "net/control_client.h"
#include "net/datagram_server.h"
#include "net/line_framer.h"
#include "net/socket.h"
#include "net/stream_client.h"
#include "net/stream_server.h"

// Crash-safe flight recorder and time-travel replay.
#include "record/extent_log.h"
#include "record/recorder.h"
#include "record/replayer.h"

#endif  // GSCOPE_GSCOPE_H_
