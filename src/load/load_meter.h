// The Section 4.6 overhead-measurement methodology.
//
// "To measure overhead, we use a CPU load program that runs in a tight loop
// at a low priority and measures the number of loop iterations it can
// perform at any given period.  The ratio of the iteration count when
// running gscope versus on an idle system gives an estimate of the gscope
// overhead."
//
// BackgroundSpinner is that load program: a nice(19) thread spinning on a
// side-effectful counter.  A bench runs it once against an idle main loop
// (baseline) and once against a polling scope, and reports
// 1 - loaded/baseline as the scope's CPU overhead.
#ifndef GSCOPE_LOAD_LOAD_METER_H_
#define GSCOPE_LOAD_LOAD_METER_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "runtime/clock.h"

namespace gscope {

struct LoadResult {
  int64_t iterations = 0;
  double seconds = 0.0;

  double IterationsPerSecond() const { return seconds > 0.0 ? iterations / seconds : 0.0; }
};

// Overhead estimate per Section 4.6: the fraction of iterations lost
// relative to the idle baseline.  Negative results (noise) clamp to 0.
double OverheadRatio(const LoadResult& baseline, const LoadResult& loaded);

class BackgroundSpinner {
 public:
  BackgroundSpinner() = default;
  ~BackgroundSpinner();

  BackgroundSpinner(const BackgroundSpinner&) = delete;
  BackgroundSpinner& operator=(const BackgroundSpinner&) = delete;

  // Starts the low-priority spin thread.  No-op if already running.
  void Start();

  // Stops the thread and returns its iteration count and elapsed time.
  LoadResult Stop();

  bool running() const { return thread_.joinable(); }

 private:
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> iterations_{0};
  Nanos start_ns_ = 0;
  Nanos stop_ns_ = 0;
};

// Convenience: spins on the calling thread for `duration_ns` (calibration).
LoadResult SpinFor(Nanos duration_ns);

}  // namespace gscope

#endif  // GSCOPE_LOAD_LOAD_METER_H_
