#include "load/load_meter.h"

#include <sys/resource.h>
#include <unistd.h>

namespace gscope {
namespace {

// The unit of "work" the load program counts.  Volatile sink defeats
// optimization so iterations measure real CPU time.
inline void SpinIteration(volatile uint64_t* sink) { *sink = *sink + 1; }

constexpr int kBatch = 4096;  // amortize the clock/flag checks

}  // namespace

double OverheadRatio(const LoadResult& baseline, const LoadResult& loaded) {
  if (baseline.IterationsPerSecond() <= 0.0) {
    return 0.0;
  }
  double ratio = 1.0 - loaded.IterationsPerSecond() / baseline.IterationsPerSecond();
  return ratio < 0.0 ? 0.0 : ratio;
}

BackgroundSpinner::~BackgroundSpinner() {
  if (running()) {
    Stop();
  }
}

void BackgroundSpinner::Start() {
  if (running()) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  iterations_.store(0, std::memory_order_relaxed);
  start_ns_ = SteadyClock::Instance()->NowNs();
  thread_ = std::thread([this]() {
    // Low priority, per the paper's methodology; failure (non-root niceness
    // restrictions) is harmless - the ratio method still works.
    setpriority(PRIO_PROCESS, 0, 19);
    volatile uint64_t sink = 0;
    int64_t local = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      for (int i = 0; i < kBatch; ++i) {
        SpinIteration(&sink);
      }
      local += kBatch;
      iterations_.store(local, std::memory_order_relaxed);
    }
  });
}

LoadResult BackgroundSpinner::Stop() {
  LoadResult result;
  if (!running()) {
    return result;
  }
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  stop_ns_ = SteadyClock::Instance()->NowNs();
  result.iterations = iterations_.load(std::memory_order_relaxed);
  result.seconds = NanosToSeconds(stop_ns_ - start_ns_);
  return result;
}

LoadResult SpinFor(Nanos duration_ns) {
  LoadResult result;
  Clock* clock = SteadyClock::Instance();
  Nanos start = clock->NowNs();
  Nanos deadline = start + duration_ns;
  volatile uint64_t sink = 0;
  while (clock->NowNs() < deadline) {
    for (int i = 0; i < kBatch; ++i) {
      SpinIteration(&sink);
    }
    result.iterations += kBatch;
  }
  result.seconds = NanosToSeconds(clock->NowNs() - start);
  return result;
}

}  // namespace gscope
