#include "bindings/gscope_c.h"

#include <cstring>
#include <memory>
#include <string>

#include "core/scope.h"
#include "net/control_client.h"
#include "render/ascii.h"
#include "render/scope_view.h"
#include "runtime/clock.h"
#include "runtime/event_loop.h"

struct gscope_ctx {
  std::unique_ptr<gscope::SimClock> sim_clock;  // null when using the real clock
  std::unique_ptr<gscope::MainLoop> loop;
  std::unique_ptr<gscope::Scope> scope;
  std::unique_ptr<gscope::ControlClient> control;  // remote attachment, if any
  // Queue policy staged by gscope_set_queue_policy; applied to `control` on
  // creation (and immediately when it already exists).
  gscope::OverflowPolicy queue_policy = gscope::OverflowPolicy::kDropNewest;
  int64_t block_deadline_ms = 5;
  size_t queue_max_buffer = 1 << 20;
  int sndbuf_bytes = 0;
  // Self-healing transport knobs, staged the same way (the ControlClient
  // takes them at construction, so they must be set before the first
  // gscope_connect).
  gscope::ReconnectOptions reconnect;
  int64_t ping_interval_ms = 0;
  int64_t idle_timeout_ms = 0;
  gscope::WireFormat wire_format = gscope::WireFormat::kText;
};

namespace {

constexpr int kErrBadArg = -1;
constexpr int kErrFailed = -2;

bool Valid(gscope_ctx* ctx) { return ctx != nullptr && ctx->scope != nullptr; }

int AddSignal(gscope_ctx* ctx, const char* name, gscope::SignalSource source, double min,
              double max) {
  if (!Valid(ctx) || name == nullptr) {
    return kErrBadArg;
  }
  gscope::SignalSpec spec;
  spec.name = name;
  spec.source = std::move(source);
  if (max > min) {
    spec.min = min;
    spec.max = max;
  }
  gscope::SignalId id = ctx->scope->AddSignal(spec);
  return id == 0 ? kErrFailed : id;
}

}  // namespace

extern "C" {

gscope_ctx* gscope_create(const char* name, int width, int height, int use_sim_clock) {
  if (name == nullptr) {
    return nullptr;
  }
  auto ctx = std::make_unique<gscope_ctx>();
  if (use_sim_clock != 0) {
    ctx->sim_clock = std::make_unique<gscope::SimClock>();
  }
  ctx->loop = std::make_unique<gscope::MainLoop>(ctx->sim_clock.get());
  ctx->scope = std::make_unique<gscope::Scope>(
      ctx->loop.get(), gscope::ScopeOptions{.name = name, .width = width, .height = height});
  return ctx.release();
}

void gscope_destroy(gscope_ctx* ctx) {
  delete ctx;
}

int gscope_signal_int32(gscope_ctx* ctx, const char* name, const int32_t* storage, double min,
                        double max) {
  if (storage == nullptr) {
    return kErrBadArg;
  }
  return AddSignal(ctx, name, storage, min, max);
}

int gscope_signal_double(gscope_ctx* ctx, const char* name, const double* storage, double min,
                         double max) {
  if (storage == nullptr) {
    return kErrBadArg;
  }
  return AddSignal(ctx, name, storage, min, max);
}

int gscope_signal_func(gscope_ctx* ctx, const char* name, gscope_sample_fn fn, void* arg1,
                       void* arg2, double min, double max) {
  if (fn == nullptr) {
    return kErrBadArg;
  }
  return AddSignal(ctx, name, gscope::MakeFunc(fn, arg1, arg2), min, max);
}

int gscope_signal_buffer(gscope_ctx* ctx, const char* name, double min, double max) {
  return AddSignal(ctx, name, gscope::BufferSource{}, min, max);
}

int gscope_remove_signal(gscope_ctx* ctx, int signal_id) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  return ctx->scope->RemoveSignal(signal_id) ? 0 : kErrFailed;
}

int gscope_find_signal(gscope_ctx* ctx, const char* name) {
  if (!Valid(ctx) || name == nullptr) {
    return 0;
  }
  return ctx->scope->FindSignal(name);
}

int gscope_set_hidden(gscope_ctx* ctx, int signal_id, int hidden) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  return ctx->scope->SetHidden(signal_id, hidden != 0) ? 0 : kErrFailed;
}

int gscope_set_filter_alpha(gscope_ctx* ctx, int signal_id, double alpha) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  return ctx->scope->SetFilterAlpha(signal_id, alpha) ? 0 : kErrFailed;
}

int gscope_set_range(gscope_ctx* ctx, int signal_id, double min, double max) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  return ctx->scope->SetRange(signal_id, min, max) ? 0 : kErrFailed;
}

int gscope_value(gscope_ctx* ctx, int signal_id, double* out) {
  if (!Valid(ctx) || out == nullptr) {
    return kErrBadArg;
  }
  auto value = ctx->scope->LatestValue(signal_id);
  if (!value.has_value()) {
    return kErrFailed;
  }
  *out = *value;
  return 0;
}

int gscope_set_polling_mode(gscope_ctx* ctx, int64_t period_ms) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  return ctx->scope->SetPollingMode(period_ms) ? 0 : kErrFailed;
}

int gscope_set_playback_mode(gscope_ctx* ctx, const char* path, int64_t period_ms) {
  if (!Valid(ctx) || path == nullptr) {
    return kErrBadArg;
  }
  return ctx->scope->SetPlaybackMode(path, period_ms) ? 0 : kErrFailed;
}

int gscope_start_polling(gscope_ctx* ctx) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  return ctx->scope->StartPolling() ? 0 : kErrFailed;
}

void gscope_stop_polling(gscope_ctx* ctx) {
  if (Valid(ctx)) {
    ctx->scope->StopPolling();
  }
}

int gscope_push(gscope_ctx* ctx, const char* signal_name, int64_t time_ms, double value) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  std::string_view name = signal_name == nullptr ? std::string_view() : signal_name;
  return ctx->scope->PushBuffered(name, time_ms, value) ? 1 : 0;
}

int gscope_push_id(gscope_ctx* ctx, int signal_id, int64_t time_ms, double value) {
  if (!Valid(ctx) || signal_id <= 0) {
    return kErrBadArg;
  }
  return ctx->scope->PushBuffered(static_cast<gscope::SignalId>(signal_id), time_ms, value) ? 1
                                                                                            : 0;
}

int gscope_connect(gscope_ctx* ctx, uint16_t port) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  if (ctx->control == nullptr) {
    gscope::ControlClientOptions options;
    options.overflow_policy = ctx->queue_policy;
    options.block_deadline_ms = ctx->block_deadline_ms;
    options.max_buffer = ctx->queue_max_buffer;
    options.sndbuf_bytes = ctx->sndbuf_bytes;
    options.reconnect = ctx->reconnect;
    options.ping_interval_ms = ctx->ping_interval_ms;
    options.idle_timeout_ms = ctx->idle_timeout_ms;
    options.wire_format = ctx->wire_format;
    ctx->control = std::make_unique<gscope::ControlClient>(ctx->loop.get(), options);
    gscope::Scope* scope = ctx->scope.get();
    // Remote tuples are re-stamped on arrival: the server already applied
    // the session delay, and the two processes' scope clocks need not share
    // an origin.
    ctx->control->SetTupleCallback([scope](const gscope::TupleView& tuple) {
      gscope::SignalId id = scope->FindOrAddBufferSignal(tuple.name);
      scope->PushBuffered(id, scope->NowMs(), tuple.value);
    });
  }
  return ctx->control->Connect(port) ? 0 : kErrFailed;
}

void gscope_disconnect(gscope_ctx* ctx) {
  if (Valid(ctx) && ctx->control != nullptr) {
    ctx->control->Close();
  }
}

int gscope_connected(gscope_ctx* ctx) {
  return Valid(ctx) && ctx->control != nullptr && ctx->control->connected() ? 1 : 0;
}

int gscope_subscribe(gscope_ctx* ctx, const char* glob) {
  if (!Valid(ctx) || ctx->control == nullptr || glob == nullptr || glob[0] == '\0') {
    return kErrBadArg;
  }
  return ctx->control->Subscribe(glob) ? 0 : kErrFailed;
}

int gscope_unsubscribe(gscope_ctx* ctx, const char* glob) {
  if (!Valid(ctx) || ctx->control == nullptr || glob == nullptr || glob[0] == '\0') {
    return kErrBadArg;
  }
  return ctx->control->Unsubscribe(glob) ? 0 : kErrFailed;
}

int gscope_set_delay(gscope_ctx* ctx, int64_t delay_ms) {
  if (!Valid(ctx) || ctx->control == nullptr || delay_ms < 0) {
    return kErrBadArg;
  }
  return ctx->control->SetDelay(delay_ms) ? 0 : kErrFailed;
}

int gscope_set_stage(gscope_ctx* ctx, const char* spec) {
  if (!Valid(ctx) || ctx->control == nullptr || spec == nullptr || spec[0] == '\0') {
    return kErrBadArg;
  }
  return ctx->control->Stage(spec) ? 0 : kErrFailed;
}

int gscope_clear_stage(gscope_ctx* ctx) {
  if (!Valid(ctx) || ctx->control == nullptr) {
    return kErrBadArg;
  }
  return ctx->control->ClearStage() ? 0 : kErrFailed;
}

int gscope_record(gscope_ctx* ctx, const char* path) {
  if (!Valid(ctx) || ctx->control == nullptr || path == nullptr || path[0] == '\0') {
    return kErrBadArg;
  }
  return ctx->control->Record(path) ? 0 : kErrFailed;
}

int gscope_record_stop(gscope_ctx* ctx) {
  if (!Valid(ctx) || ctx->control == nullptr) {
    return kErrBadArg;
  }
  return ctx->control->StopRecord() ? 0 : kErrFailed;
}

int gscope_replay(gscope_ctx* ctx, int64_t t0_ms, int64_t t1_ms, double speed) {
  if (!Valid(ctx) || ctx->control == nullptr || t1_ms < t0_ms) {
    return kErrBadArg;
  }
  return ctx->control->Replay(t0_ms, t1_ms, speed) ? 0 : kErrFailed;
}

int gscope_request_stages(gscope_ctx* ctx) {
  if (!Valid(ctx) || ctx->control == nullptr) {
    return kErrBadArg;
  }
  return ctx->control->RequestStages() ? 0 : kErrFailed;
}

int gscope_send(gscope_ctx* ctx, int64_t time_ms, double value, const char* name) {
  if (!Valid(ctx) || ctx->control == nullptr || name == nullptr || name[0] == '\0') {
    return kErrBadArg;
  }
  return ctx->control->Send(time_ms, value, name) ? 1 : 0;
}

int gscope_set_queue_policy(gscope_ctx* ctx, int policy, int64_t block_deadline_ms) {
  if (!Valid(ctx) || policy < GSCOPE_QUEUE_DROP_NEWEST || policy > GSCOPE_QUEUE_BLOCK ||
      block_deadline_ms < 0) {
    return kErrBadArg;
  }
  ctx->queue_policy = static_cast<gscope::OverflowPolicy>(policy);
  ctx->block_deadline_ms = block_deadline_ms;
  if (ctx->control != nullptr) {
    ctx->control->SetQueuePolicy(ctx->queue_policy, block_deadline_ms);
  }
  return 0;
}

int gscope_set_wire_format(gscope_ctx* ctx, int wire_format) {
  if (!Valid(ctx) || wire_format < GSCOPE_WIRE_TEXT || wire_format > GSCOPE_WIRE_BINARY) {
    return kErrBadArg;
  }
  if (ctx->control != nullptr) {
    return kErrFailed;  // the connection object already exists
  }
  ctx->wire_format = static_cast<gscope::WireFormat>(wire_format);
  return 0;
}

int gscope_set_queue_limit(gscope_ctx* ctx, int64_t max_buffer_bytes, int sndbuf_bytes) {
  if (!Valid(ctx) || max_buffer_bytes <= 0 || sndbuf_bytes < 0) {
    return kErrBadArg;
  }
  ctx->queue_max_buffer = static_cast<size_t>(max_buffer_bytes);
  ctx->sndbuf_bytes = sndbuf_bytes;
  if (ctx->control != nullptr) {
    ctx->control->SetQueueLimit(ctx->queue_max_buffer, sndbuf_bytes);
  }
  return 0;
}

int gscope_client_stats(gscope_ctx* ctx, gscope_queue_stats* out) {
  if (!Valid(ctx) || out == nullptr) {
    return kErrBadArg;
  }
  *out = gscope_queue_stats{};
  if (ctx->control == nullptr) {
    return 0;
  }
  const gscope::ControlClient::Stats& s = ctx->control->stats();
  out->tuples_pushed = s.tuples_pushed;
  out->frames_dropped = s.frames_dropped;
  out->frames_evicted = s.frames_evicted;
  out->frames_abandoned = s.frames_abandoned;
  out->bytes_sent = s.bytes_sent;
  out->bytes_dropped = s.bytes_dropped;
  out->block_time_ns = s.block_time_ns;
  out->backlog_high_water = s.backlog_high_water;
  out->pending_bytes = static_cast<int64_t>(ctx->control->pending_bytes());
  out->tuples_received = s.tuples_received;
  out->parse_errors = s.parse_errors;
  return 0;
}

int gscope_set_reconnect(gscope_ctx* ctx, int enabled, int64_t initial_backoff_ms,
                         int64_t max_backoff_ms) {
  if (!Valid(ctx) || initial_backoff_ms <= 0 || max_backoff_ms < initial_backoff_ms) {
    return kErrBadArg;
  }
  if (ctx->control != nullptr) {
    return kErrFailed;  // the connection object already exists
  }
  ctx->reconnect.enabled = enabled != 0;
  ctx->reconnect.initial_backoff_ms = initial_backoff_ms;
  ctx->reconnect.max_backoff_ms = max_backoff_ms;
  return 0;
}

int gscope_set_liveness(gscope_ctx* ctx, int64_t ping_interval_ms, int64_t idle_timeout_ms) {
  if (!Valid(ctx) || ping_interval_ms < 0 || idle_timeout_ms < 0) {
    return kErrBadArg;
  }
  if (ctx->control != nullptr) {
    return kErrFailed;
  }
  ctx->ping_interval_ms = ping_interval_ms;
  ctx->idle_timeout_ms = idle_timeout_ms;
  return 0;
}

int gscope_connection_stats(gscope_ctx* ctx, gscope_conn_stats* out) {
  if (!Valid(ctx) || out == nullptr) {
    return kErrBadArg;
  }
  *out = gscope_conn_stats{};
  out->last_rtt_ms = -1;
  if (ctx->control == nullptr) {
    return 0;
  }
  const gscope::ControlClient::Stats& s = ctx->control->stats();
  out->state = static_cast<int>(ctx->control->state());
  out->last_error = ctx->control->last_error();
  out->has_time_offset = ctx->control->has_time_offset() ? 1 : 0;
  out->connect_attempts = s.connect_attempts;
  out->reconnects = s.reconnects;
  out->connect_failures = s.connect_failures;
  out->pings_sent = s.pings_sent;
  out->pongs_received = s.pongs_received;
  out->liveness_timeouts = s.liveness_timeouts;
  out->resumed_commands = s.resumed_commands;
  out->policy_switches = s.policy_switches;
  out->time_offset_ms = ctx->control->time_offset_ms();
  out->last_rtt_ms = ctx->control->last_rtt_ms();
  return 0;
}

int gscope_set_zoom(gscope_ctx* ctx, double zoom) {
  if (!Valid(ctx) || zoom <= 0.0) {
    return kErrBadArg;
  }
  ctx->scope->SetZoom(zoom);
  return 0;
}

int gscope_set_bias(gscope_ctx* ctx, double bias) {
  if (!Valid(ctx)) {
    return kErrBadArg;
  }
  ctx->scope->SetBias(bias);
  return 0;
}

int gscope_set_delay_ms(gscope_ctx* ctx, int64_t delay_ms) {
  if (!Valid(ctx) || delay_ms < 0) {
    return kErrBadArg;
  }
  ctx->scope->SetDelayMs(delay_ms);
  return 0;
}

int gscope_set_domain(gscope_ctx* ctx, int domain) {
  if (!Valid(ctx) || (domain != 0 && domain != 1)) {
    return kErrBadArg;
  }
  ctx->scope->SetDomain(domain == 0 ? gscope::DisplayDomain::kTime
                                    : gscope::DisplayDomain::kFrequency);
  return 0;
}

void gscope_run_for_ms(gscope_ctx* ctx, int64_t ms) {
  if (Valid(ctx) && ms > 0) {
    ctx->loop->RunForMs(ms);
  }
}

void gscope_tick(gscope_ctx* ctx) {
  if (Valid(ctx)) {
    ctx->scope->TickOnce();
  }
}

int gscope_start_recording(gscope_ctx* ctx, const char* path) {
  if (!Valid(ctx) || path == nullptr) {
    return kErrBadArg;
  }
  return ctx->scope->StartRecording(path) ? 0 : kErrFailed;
}

void gscope_stop_recording(gscope_ctx* ctx) {
  if (Valid(ctx)) {
    ctx->scope->StopRecording();
  }
}

int gscope_render_ppm(gscope_ctx* ctx, const char* path, int canvas_w, int canvas_h) {
  if (!Valid(ctx) || path == nullptr || canvas_w <= 0 || canvas_h <= 0) {
    return kErrBadArg;
  }
  gscope::ScopeView view(ctx->scope.get());
  return view.RenderToPpm(path, canvas_w, canvas_h) ? 0 : kErrFailed;
}

int gscope_render_ascii(gscope_ctx* ctx, char* buf, int len) {
  if (!Valid(ctx) || buf == nullptr || len <= 0) {
    return kErrBadArg;
  }
  std::string frame = gscope::RenderAscii(*ctx->scope);
  size_t copy = std::min(static_cast<size_t>(len - 1), frame.size());
  std::memcpy(buf, frame.data(), copy);
  buf[copy] = '\0';
  return static_cast<int>(frame.size());
}

int gscope_drain_counters(gscope_ctx* ctx, gscope_drain_stats* out) {
  if (!Valid(ctx) || out == nullptr) {
    return kErrBadArg;
  }
  const gscope::Scope::Counters& c = ctx->scope->counters();
  out->ticks = c.ticks;
  out->lost_ticks = c.lost_ticks;
  out->samples = c.samples;
  out->buffered_routed = c.buffered_routed;
  out->buffered_unmatched = c.buffered_unmatched;
  out->samples_coalesced = c.samples_coalesced;
  out->samples_retained = c.samples_retained;
  return 0;
}

int64_t gscope_ticks(gscope_ctx* ctx) {
  return Valid(ctx) ? ctx->scope->counters().ticks : -1;
}

int64_t gscope_lost_ticks(gscope_ctx* ctx) {
  return Valid(ctx) ? ctx->scope->counters().lost_ticks : -1;
}

int64_t gscope_now_ms(gscope_ctx* ctx) {
  return Valid(ctx) ? ctx->scope->NowMs() : -1;
}

}  // extern "C"
