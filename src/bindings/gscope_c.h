/* C bindings for the gscope library (the Section 6 future-work item:
 * language bindings).  A flat, opaque-handle C ABI over MainLoop + Scope so
 * any FFI-capable language (Python ctypes, Lua, Rust, ...) can embed a
 * scope.  All functions return 0 on success and a negative value on error,
 * unless documented otherwise.  The API is not thread-safe; drive it from
 * one thread, like the single-threaded usage of Section 4.3. */
#ifndef GSCOPE_BINDINGS_GSCOPE_C_H_
#define GSCOPE_BINDINGS_GSCOPE_C_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* An opaque context bundling one event loop and one scope. */
typedef struct gscope_ctx gscope_ctx;

/* The FUNC signal shape from the paper: sample = fn(arg1, arg2). */
typedef double (*gscope_sample_fn)(void* arg1, void* arg2);

/* -- lifecycle ----------------------------------------------------------- */

/* Creates a scope named `name` with a `width`-column trace.  NULL on
 * failure.  `use_sim_clock` != 0 selects a simulated clock advanced only by
 * gscope_run_for_ms (deterministic embedding); 0 selects the real clock. */
gscope_ctx* gscope_create(const char* name, int width, int height, int use_sim_clock);
void gscope_destroy(gscope_ctx* ctx);

/* -- signals (Section 3.1) ------------------------------------------------ */

/* Each returns the signal id (> 0) or a negative error. */
int gscope_signal_int32(gscope_ctx* ctx, const char* name, const int32_t* storage,
                        double min, double max);
int gscope_signal_double(gscope_ctx* ctx, const char* name, const double* storage,
                         double min, double max);
int gscope_signal_func(gscope_ctx* ctx, const char* name, gscope_sample_fn fn, void* arg1,
                       void* arg2, double min, double max);
int gscope_signal_buffer(gscope_ctx* ctx, const char* name, double min, double max);

int gscope_remove_signal(gscope_ctx* ctx, int signal_id);
/* Id for a name, 0 if unknown. */
int gscope_find_signal(gscope_ctx* ctx, const char* name);

/* Per-signal parameters (the Figure 2 window). */
int gscope_set_hidden(gscope_ctx* ctx, int signal_id, int hidden);
int gscope_set_filter_alpha(gscope_ctx* ctx, int signal_id, double alpha);
int gscope_set_range(gscope_ctx* ctx, int signal_id, double min, double max);

/* The Value button: latest displayed value into *out.  -1 if none yet. */
int gscope_value(gscope_ctx* ctx, int signal_id, double* out);

/* -- acquisition ----------------------------------------------------------- */

int gscope_set_polling_mode(gscope_ctx* ctx, int64_t period_ms);
int gscope_set_playback_mode(gscope_ctx* ctx, const char* path, int64_t period_ms);
int gscope_start_polling(gscope_ctx* ctx);
void gscope_stop_polling(gscope_ctx* ctx);

/* Push one timestamped sample for a BUFFER signal ("" = first buffer
 * signal).  Returns 1 if accepted, 0 if dropped late, negative on error. */
int gscope_push(gscope_ctx* ctx, const char* signal_name, int64_t time_ms, double value);

/* Allocation-free fast path: push by the id returned from
 * gscope_signal_buffer / gscope_find_signal.  Same return convention. */
int gscope_push_id(gscope_ctx* ctx, int signal_id, int64_t time_ms, double value);

/* -- remote attachment (control channel, docs/protocol.md) ------------------ */

/* Connects this scope to a gscope stream server on 127.0.0.1:`port` as a
 * remote display target.  Received tuples are re-stamped to this scope's
 * clock on arrival (the server's session delay has already been applied)
 * and pushed into auto-created BUFFER signals.  Non-blocking: drive the
 * loop (gscope_run_for_ms) to complete the handshake. */
int gscope_connect(gscope_ctx* ctx, uint16_t port);
void gscope_disconnect(gscope_ctx* ctx);
/* 1 once the handshake completed, 0 while in flight or after failure. */
int gscope_connected(gscope_ctx* ctx);

/* Subscribes/unsubscribes this scope's remote session to signal names
 * matching `glob` ('*' and '?').  Replies arrive asynchronously; these
 * return 0 when the command was queued. */
int gscope_subscribe(gscope_ctx* ctx, const char* glob);
int gscope_unsubscribe(gscope_ctx* ctx, const char* glob);

/* Sets the remote session's server-side late-drop delay. */
int gscope_set_delay(gscope_ctx* ctx, int64_t delay_ms);

/* Attaches (or replaces) the remote session's server-side processing stage;
 * `spec` is the verbatim stage verb line - "COALESCE", "DECIMATE 10",
 * "EWMA 0.2", "ENVELOPE 100", "SPECTRUM 256 hann" (docs/protocol.md,
 * "Derived-signal pipelines").  The stage is remembered and replayed on
 * reconnect like subscriptions.  Returns 0 when the command was queued. */
int gscope_set_stage(gscope_ctx* ctx, const char* spec);
/* Detaches the stage (sends RAW) and stops replaying it. */
int gscope_clear_stage(gscope_ctx* ctx);

/* Flight recorder (docs/protocol.md, "Flight recorder").  gscope_record
 * starts a server-side crash-safe capture into an extent log at `path` (a
 * path on the SERVER's filesystem; anonymous sessions only) and
 * gscope_record_stop seals and stops it.  gscope_replay streams recorded
 * window [t0_ms, t1_ms] back through this session's subscriptions - speed
 * <= 0 bursts the whole window, speed > 0 paces recorded time at that
 * multiple of real time.  gscope_request_stages asks for the server's stage
 * catalog (LIST STAGES).  All return 0 when the command was queued;
 * replies arrive asynchronously. */
int gscope_record(gscope_ctx* ctx, const char* path);
int gscope_record_stop(gscope_ctx* ctx);
int gscope_replay(gscope_ctx* ctx, int64_t t0_ms, int64_t t1_ms, double speed);
int gscope_request_stages(gscope_ctx* ctx);

/* Pushes one tuple UPSTREAM over the control connection (the producer side
 * of the wire protocol; the server ingests it like any tuple line).
 * Returns 1 if queued, 0 if dropped by the overflow policy, negative on
 * error (no connection attempt yet). */
int gscope_send(gscope_ctx* ctx, int64_t time_ms, double value, const char* name);

/* -- producer queue policy (docs/protocol.md, "Backlog and drop semantics") -- */

#define GSCOPE_QUEUE_DROP_NEWEST 0 /* roll back the newest frame (default)  */
#define GSCOPE_QUEUE_DROP_OLDEST 1 /* evict whole frames from the head      */
#define GSCOPE_QUEUE_BLOCK 2       /* wait up to the deadline, then drop    */

/* Selects how the upstream backlog handles overflow.  May be called before
 * gscope_connect (applies on creation) or on a live connection.
 * `block_deadline_ms` bounds each GSCOPE_QUEUE_BLOCK wait. */
int gscope_set_queue_policy(gscope_ctx* ctx, int policy, int64_t block_deadline_ms);

/* Wire formats for the upstream connection (docs/protocol.md, "Wire
 * format v2").  Binary negotiates HELLO BIN 1 after every establishment and
 * falls back to text when the server declines, so it is safe against any
 * server. */
#define GSCOPE_WIRE_TEXT 0   /* newline-delimited tuple lines (default) */
#define GSCOPE_WIRE_BINARY 1 /* negotiated length-prefixed binary frames */

/* Selects the wire format used for gscope_send tuples.  Must be called
 * BEFORE the first gscope_connect (the connection object is created there);
 * later calls fail. */
int gscope_set_wire_format(gscope_ctx* ctx, int wire_format);

/* Caps the upstream backlog at `max_buffer_bytes` (applies immediately) and
 * requests an SO_SNDBUF of `sndbuf_bytes` for the NEXT gscope_connect (0 =
 * kernel default).  Small values surface backpressure in the queue-policy
 * counters instead of hiding it in kernel buffering. */
int gscope_set_queue_limit(gscope_ctx* ctx, int64_t max_buffer_bytes, int sndbuf_bytes);

/* Counters for the remote connection's producer/consumer pipeline.  All
 * fields are cumulative since gscope_connect except pending_bytes and
 * backlog_high_water. */
typedef struct gscope_queue_stats {
  int64_t tuples_pushed;      /* committed to the upstream backlog          */
  int64_t frames_dropped;     /* newest dropped whole at the cap            */
  int64_t frames_evicted;     /* oldest evicted whole (drop-oldest)         */
  int64_t frames_abandoned;   /* committed but unsent when connection died  */
  int64_t bytes_sent;         /* bytes the kernel accepted so far           */
  int64_t bytes_dropped;      /* bytes of dropped+evicted+abandoned frames  */
  int64_t block_time_ns;      /* total GSCOPE_QUEUE_BLOCK wait time         */
  int64_t backlog_high_water; /* max unsent backlog bytes observed          */
  int64_t pending_bytes;      /* unsent backlog right now                   */
  int64_t tuples_received;    /* tuples echoed down from the server         */
  int64_t parse_errors;       /* malformed/overlong incoming lines          */
} gscope_queue_stats;

/* Fills *out; zeroes it if no connection was ever attempted (returns 0
 * either way; negative only on bad arguments). */
int gscope_client_stats(gscope_ctx* ctx, gscope_queue_stats* out);

/* -- self-healing transport (docs/protocol.md, "Liveness and recovery") ----- */

/* Enables automatic reconnect with capped exponential backoff and jitter:
 * a lost or refused connection retries with delays growing from
 * `initial_backoff_ms` up to `max_backoff_ms`, and the session (subscriptions
 * + delay) is replayed on every re-establishment.  Must be called BEFORE the
 * first gscope_connect (the connection object is created there); later calls
 * fail.  `enabled` = 0 restores the fail-fast default. */
int gscope_set_reconnect(gscope_ctx* ctx, int enabled, int64_t initial_backoff_ms,
                         int64_t max_backoff_ms);

/* Liveness for the remote connection: with ping_interval_ms > 0 the client
 * PINGs whenever the link has been send-idle that long; with
 * idle_timeout_ms > 0 a link that delivered nothing for that long is torn
 * down (and reconnected, if enabled).  Pair them, interval well under the
 * timeout.  Must be called BEFORE the first gscope_connect. */
int gscope_set_liveness(gscope_ctx* ctx, int64_t ping_interval_ms, int64_t idle_timeout_ms);

/* Connection state values (gscope_conn_stats.state). */
#define GSCOPE_CONN_DISCONNECTED 0
#define GSCOPE_CONN_CONNECTING 1
#define GSCOPE_CONN_CONNECTED 2
#define GSCOPE_CONN_FAILED 3
#define GSCOPE_CONN_BACKOFF 4 /* reconnect timer armed */

/* Health of the remote connection's state machine. */
typedef struct gscope_conn_stats {
  int state;                  /* GSCOPE_CONN_* */
  int last_error;             /* errno of the last failed connect, 0 if none */
  int has_time_offset;        /* 1 once a TIME sync completed                */
  int64_t connect_attempts;   /* every TCP connect started (incl. retries)   */
  int64_t reconnects;         /* re-establishments after the first           */
  int64_t connect_failures;   /* attempts that did not establish             */
  int64_t pings_sent;         /* liveness probes sent                        */
  int64_t pongs_received;     /* probe echoes received                       */
  int64_t liveness_timeouts;  /* links declared dead by the idle timeout     */
  int64_t resumed_commands;   /* SUB/DELAY replayed by session resumption    */
  int64_t policy_switches;    /* adaptive overflow-policy transitions        */
  int64_t time_offset_ms;     /* server_scope_ms - local_ms (TIME sync)      */
  int64_t last_rtt_ms;        /* last PING/TIME round-trip, -1 before any    */
} gscope_conn_stats;

/* Fills *out; zeroes it (state = GSCOPE_CONN_DISCONNECTED, last_rtt_ms = -1)
 * if no connection was ever attempted.  Negative only on bad arguments. */
int gscope_connection_stats(gscope_ctx* ctx, gscope_conn_stats* out);

/* -- drain counters (docs/perf.md, "drain coalescing") ---------------------- */

/* Cumulative drain/routing counters of the embedded scope.  The coalescing
 * pair quantifies the last-wins reduction: samples_coalesced were folded to
 * one hold write per signal per poll tick (display-only signals),
 * samples_retained were delivered one by one because an every-sample
 * consumer (trigger/trace/aggregate/export sink, or an every-sample tap)
 * was attached. */
typedef struct gscope_drain_stats {
  int64_t ticks;              /* poll callbacks dispatched                  */
  int64_t lost_ticks;         /* missed periods compensated                 */
  int64_t samples;            /* sampling points taken                      */
  int64_t buffered_routed;    /* buffered samples attributed to a signal   */
  int64_t buffered_unmatched; /* buffered samples with no matching signal   */
  int64_t samples_coalesced;  /* folded away by the last-wins reduction     */
  int64_t samples_retained;   /* delivered per-sample (history consumers)   */
} gscope_drain_stats;

/* Fills *out with the scope's counters.  Negative only on bad arguments. */
int gscope_drain_counters(gscope_ctx* ctx, gscope_drain_stats* out);

/* -- display parameters ----------------------------------------------------- */

int gscope_set_zoom(gscope_ctx* ctx, double zoom);
int gscope_set_bias(gscope_ctx* ctx, double bias);
int gscope_set_delay_ms(gscope_ctx* ctx, int64_t delay_ms);
/* domain: 0 = time, 1 = frequency. */
int gscope_set_domain(gscope_ctx* ctx, int domain);

/* -- running ----------------------------------------------------------------- */

/* Runs the loop for `ms` (virtual ms under a sim clock, real otherwise). */
void gscope_run_for_ms(gscope_ctx* ctx, int64_t ms);
/* One synchronous poll tick (TickOnce). */
void gscope_tick(gscope_ctx* ctx);

/* -- recording and output ---------------------------------------------------- */

int gscope_start_recording(gscope_ctx* ctx, const char* path);
void gscope_stop_recording(gscope_ctx* ctx);

/* Renders the widget view to a PPM file. */
int gscope_render_ppm(gscope_ctx* ctx, const char* path, int canvas_w, int canvas_h);
/* ASCII view into `buf` (NUL-terminated, truncated to `len`).  Returns the
 * untruncated length, or negative on error. */
int gscope_render_ascii(gscope_ctx* ctx, char* buf, int len);

/* -- introspection ------------------------------------------------------------ */

int64_t gscope_ticks(gscope_ctx* ctx);
int64_t gscope_lost_ticks(gscope_ctx* ctx);
int64_t gscope_now_ms(gscope_ctx* ctx);

#ifdef __cplusplus
}
#endif

#endif /* GSCOPE_BINDINGS_GSCOPE_C_H_ */
