// Window functions applied before the FFT to reduce spectral leakage.
#ifndef GSCOPE_FREQ_WINDOW_H_
#define GSCOPE_FREQ_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gscope {

enum class WindowKind : uint8_t {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

// Window coefficient w[i] for a window of length n (0 <= i < n).
double WindowCoefficient(WindowKind kind, size_t i, size_t n);

// Returns input .* window.
std::vector<double> ApplyWindow(const std::vector<double>& input, WindowKind kind);

// Sum of coefficients (for amplitude normalization).
double WindowSum(WindowKind kind, size_t n);

}  // namespace gscope

#endif  // GSCOPE_FREQ_WINDOW_H_
