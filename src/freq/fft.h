// Radix-2 complex FFT for the frequency-domain display (Section 3.1:
// "Polled signals can be displayed in the time or frequency domain").
//
// No external dependencies: an iterative in-place Cooley-Tukey transform over
// power-of-two sizes, plus helpers to pad arbitrary-length signal traces.
#ifndef GSCOPE_FREQ_FFT_H_
#define GSCOPE_FREQ_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace gscope {

using Complex = std::complex<double>;

// True if n is a power of two (n >= 1).
bool IsPowerOfTwo(size_t n);

// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

// In-place FFT; `data.size()` must be a power of two.  Returns false (and
// leaves data untouched) otherwise.  `inverse` applies the 1/N-scaled
// inverse transform.
bool Fft(std::vector<Complex>* data, bool inverse = false);

// Convenience: real input, zero-padded to the next power of two.
std::vector<Complex> FftReal(const std::vector<double>& input);

}  // namespace gscope

#endif  // GSCOPE_FREQ_FFT_H_
