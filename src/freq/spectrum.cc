#include "freq/spectrum.h"

#include <algorithm>
#include <cmath>

#include "freq/fft.h"

namespace gscope {
namespace {
constexpr double kDbFloor = -120.0;
}  // namespace

size_t Spectrum::PeakBin() const {
  if (power_db.empty()) {
    return 0;
  }
  size_t start = power_db.size() > 1 ? 1 : 0;  // skip DC
  size_t best = start;
  for (size_t i = start; i < power_db.size(); ++i) {
    if (power_db[i] > power_db[best]) {
      best = i;
    }
  }
  return best;
}

Spectrum ComputeSpectrum(const std::vector<double>& samples, double sample_rate_hz,
                         const SpectrumOptions& options) {
  Spectrum spectrum;
  if (samples.size() < 2 || sample_rate_hz <= 0.0) {
    return spectrum;
  }

  std::vector<double> x = samples;
  if (options.remove_dc) {
    double mean = 0.0;
    for (double v : x) {
      mean += v;
    }
    mean /= static_cast<double>(x.size());
    for (double& v : x) {
      v -= mean;
    }
  }
  x = ApplyWindow(x, options.window);

  std::vector<Complex> bins = FftReal(x);
  size_t n = bins.size();
  size_t half = n / 2;

  // Coherent gain normalization so a full-scale sine reads ~0 dBFS.
  double gain = WindowSum(options.window, samples.size()) / 2.0;
  if (gain <= 0.0) {
    gain = 1.0;
  }

  spectrum.power_db.resize(half + 1);
  for (size_t i = 0; i <= half; ++i) {
    double mag = std::abs(bins[i]) / gain;
    spectrum.power_db[i] = mag <= 0.0 ? kDbFloor : std::max(kDbFloor, 20.0 * std::log10(mag));
  }
  // Zero padding stretches the bin grid: bin_hz reflects the padded length.
  spectrum.bin_hz = sample_rate_hz / static_cast<double>(n);
  return spectrum;
}

}  // namespace gscope
