#include "freq/fft.h"

#include <cmath>
#include <numbers>

namespace gscope {

bool IsPowerOfTwo(size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

bool Fft(std::vector<Complex>* data, bool inverse) {
  const size_t n = data->size();
  if (!IsPowerOfTwo(n)) {
    return false;
  }
  std::vector<Complex>& a = *data;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(a[i], a[j]);
    }
  }

  // Butterflies.
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        Complex u = a[i + k];
        Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (Complex& x : a) {
      x /= static_cast<double>(n);
    }
  }
  return true;
}

std::vector<Complex> FftReal(const std::vector<double>& input) {
  size_t n = input.empty() ? 1 : NextPowerOfTwo(input.size());
  std::vector<Complex> data(n, Complex{0.0, 0.0});
  for (size_t i = 0; i < input.size(); ++i) {
    data[i] = Complex{input[i], 0.0};
  }
  Fft(&data);
  return data;
}

}  // namespace gscope
