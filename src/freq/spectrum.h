// Power spectrum of a signal trace, for the frequency-domain display.
#ifndef GSCOPE_FREQ_SPECTRUM_H_
#define GSCOPE_FREQ_SPECTRUM_H_

#include <vector>

#include "freq/window.h"

namespace gscope {

struct SpectrumOptions {
  WindowKind window = WindowKind::kHann;
  // Remove the mean before transforming so the DC bin does not dominate the
  // display (software signals usually have large offsets).
  bool remove_dc = true;
};

struct Spectrum {
  // Per-bin power in dB relative to full scale, bins 0..N/2 (inclusive).
  std::vector<double> power_db;
  // Bin width in Hz, given the sample rate the caller supplied.
  double bin_hz = 0.0;

  // Index of the strongest bin (excluding DC when it was removed).
  size_t PeakBin() const;
  double PeakHz() const { return static_cast<double>(PeakBin()) * bin_hz; }
};

// Computes the one-sided power spectrum of `samples` taken at
// `sample_rate_hz`.  Pads to the next power of two.  Returns an empty
// spectrum for fewer than two samples.
Spectrum ComputeSpectrum(const std::vector<double>& samples, double sample_rate_hz,
                         const SpectrumOptions& options = {});

}  // namespace gscope

#endif  // GSCOPE_FREQ_SPECTRUM_H_
