#include "freq/window.h"

#include <cmath>
#include <numbers>

namespace gscope {

double WindowCoefficient(WindowKind kind, size_t i, size_t n) {
  if (n <= 1) {
    return 1.0;
  }
  double x = static_cast<double>(i) / static_cast<double>(n - 1);
  switch (kind) {
    case WindowKind::kRectangular:
      return 1.0;
    case WindowKind::kHann:
      return 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * x);
    case WindowKind::kHamming:
      return 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * x);
    case WindowKind::kBlackman:
      return 0.42 - 0.5 * std::cos(2.0 * std::numbers::pi * x) +
             0.08 * std::cos(4.0 * std::numbers::pi * x);
  }
  return 1.0;
}

std::vector<double> ApplyWindow(const std::vector<double>& input, WindowKind kind) {
  std::vector<double> out(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    out[i] = input[i] * WindowCoefficient(kind, i, input.size());
  }
  return out;
}

double WindowSum(WindowKind kind, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += WindowCoefficient(kind, i, n);
  }
  return sum;
}

}  // namespace gscope
