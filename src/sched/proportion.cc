#include "sched/proportion.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace gscope {
namespace {
// Controller gains: brisk tracking without oscillation for demo waveforms.
constexpr double kProportionalGain = 0.5;
constexpr double kIntegralGain = 0.1;
}  // namespace

int ProportionScheduler::AddProcess(const ProcessSpec& spec) {
  int id = next_id_++;
  Process p;
  p.spec = spec;
  p.next_update_ms = now_ms_;
  processes_[id] = std::move(p);
  return id;
}

bool ProportionScheduler::RemoveProcess(int id) { return processes_.erase(id) > 0; }

std::vector<int> ProportionScheduler::ProcessIds() const {
  std::vector<int> ids;
  ids.reserve(processes_.size());
  for (const auto& [id, p] : processes_) {
    ids.push_back(id);
  }
  return ids;
}

const ProcessSpec* ProportionScheduler::SpecFor(int id) const {
  auto it = processes_.find(id);
  return it == processes_.end() ? nullptr : &it->second.spec;
}

double ProportionScheduler::DemandAt(const Process& p, double t_ms) const {
  double phase = p.spec.demand_phase;
  if (p.spec.demand_period_ms > 0.0) {
    phase += 2.0 * std::numbers::pi * t_ms / p.spec.demand_period_ms;
  }
  double demand = p.spec.base_demand + p.spec.demand_amplitude * std::sin(phase);
  return std::clamp(demand, 0.0, 1.0);
}

void ProportionScheduler::Step(double dt_ms) {
  if (dt_ms <= 0.0) {
    return;
  }
  now_ms_ += dt_ms;
  bool changed = false;
  for (auto& [id, p] : processes_) {
    // Proportions are assigned at the granularity of the process period
    // (Section 4.2); between periods the assignment is held.
    while (p.next_update_ms <= now_ms_) {
      double demand = DemandAt(p, p.next_update_ms);
      p.error = demand - p.proportion;
      p.integral += p.error * (p.spec.period_ms / 1000.0);
      p.integral = std::clamp(p.integral, -1.0, 1.0);
      p.proportion += kProportionalGain * p.error + kIntegralGain * p.integral;
      p.proportion = std::clamp(p.proportion, 0.0, 1.0);
      p.next_update_ms += std::max(1.0, p.spec.period_ms);
      changed = true;
    }
  }
  if (changed) {
    Normalize();
  }
}

void ProportionScheduler::Normalize() {
  double total = 0.0;
  for (const auto& [id, p] : processes_) {
    total += p.proportion;
  }
  if (total <= kSaturation || total <= 0.0) {
    return;
  }
  // Overload: squeeze everyone proportionally (the real-rate allocator's
  // pressure-sharing behaviour under saturation).
  double scale = kSaturation / total;
  for (auto& [id, p] : processes_) {
    p.proportion *= scale;
  }
}

double ProportionScheduler::ProportionOf(int id) const {
  auto it = processes_.find(id);
  return it == processes_.end() ? 0.0 : it->second.proportion;
}

double ProportionScheduler::DemandOf(int id) const {
  auto it = processes_.find(id);
  return it == processes_.end() ? 0.0 : DemandAt(it->second, now_ms_);
}

double ProportionScheduler::ErrorOf(int id) const {
  auto it = processes_.find(id);
  return it == processes_.end() ? 0.0 : it->second.error;
}

double ProportionScheduler::TotalAllocated() const {
  double total = 0.0;
  for (const auto& [id, p] : processes_) {
    total += p.proportion;
  }
  return total;
}

}  // namespace gscope
