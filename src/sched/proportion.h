// Real-rate proportion-period scheduler simulation.
//
// The paper uses gscope "to view dynamically changing process proportions as
// assigned by a CPU proportion-period scheduler [19].  Here, the number of
// signals depends on the number of running processes" (Section 1), and notes
// that the scope polling period is set to the process period because "the
// signal is held between process periods" (Section 4.2).
//
// [19] is Steere et al.'s feedback-driven real-rate allocator: each process
// exposes a progress metric (e.g. fill level of a producer/consumer buffer)
// and a controller adjusts its CPU proportion to keep progress on target.
// This simulation reproduces those dynamics: deterministic time-varying
// demand per process, a proportional-integral controller per process, and
// saturation-aware normalization when total demand exceeds the CPU.
#ifndef GSCOPE_SCHED_PROPORTION_H_
#define GSCOPE_SCHED_PROPORTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gscope {

struct ProcessSpec {
  std::string name;
  // Scheduling period; proportions are re-evaluated once per period.
  double period_ms = 50.0;
  // Demand waveform: base CPU fraction plus a sinusoidal component
  // (deterministic, so tests and demos are reproducible).
  double base_demand = 0.2;       // 0..1
  double demand_amplitude = 0.1;  // 0..1
  double demand_period_ms = 4000.0;
  double demand_phase = 0.0;  // radians
};

class ProportionScheduler {
 public:
  ProportionScheduler() = default;

  // Adds a process; returns its id (never 0).  Dynamic addition mirrors the
  // dynamic signal count of the paper's scheduler demo.
  int AddProcess(const ProcessSpec& spec);
  bool RemoveProcess(int id);
  size_t process_count() const { return processes_.size(); }
  std::vector<int> ProcessIds() const;
  const ProcessSpec* SpecFor(int id) const;

  // Advances simulated time by `dt_ms`, re-running the allocator for every
  // process whose period elapsed.
  void Step(double dt_ms);

  // Currently assigned CPU proportion (0..1) - the signal the paper plots.
  double ProportionOf(int id) const;
  // The process's instantaneous demand (0..1), i.e. the target.
  double DemandOf(int id) const;
  // Progress error the controller is driving to zero.
  double ErrorOf(int id) const;

  // Sum of all proportions after normalization (<= saturation limit).
  double TotalAllocated() const;

  double now_ms() const { return now_ms_; }

  // The allocator never hands out more than this total fraction (the paper's
  // scheduler reserves slack for best-effort work).
  static constexpr double kSaturation = 0.9;

 private:
  struct Process {
    ProcessSpec spec;
    double proportion = 0.0;
    double integral = 0.0;
    double error = 0.0;
    double next_update_ms = 0.0;
  };

  double DemandAt(const Process& p, double t_ms) const;
  void Normalize();

  std::map<int, Process> processes_;
  int next_id_ = 1;
  double now_ms_ = 0.0;
};

}  // namespace gscope

#endif  // GSCOPE_SCHED_PROPORTION_H_
