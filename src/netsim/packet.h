// Packets exchanged by the simulated TCP endpoints.
#ifndef GSCOPE_NETSIM_PACKET_H_
#define GSCOPE_NETSIM_PACKET_H_

#include <cstdint>
#include <vector>

#include "netsim/simulator.h"

namespace gscope {

// A contiguous [begin, end) byte range (SACK block).
struct SeqRange {
  int64_t begin = 0;
  int64_t end = 0;

  bool Contains(int64_t seq) const { return seq >= begin && seq < end; }
  friend bool operator==(const SeqRange&, const SeqRange&) = default;
};

struct Packet {
  int flow_id = 0;

  // Data segments: [seq, seq + payload) bytes.  ACKs: payload == 0.
  int64_t seq = 0;
  int payload = 0;
  int header = 40;  // TCP/IP header bytes, counted against link bandwidth

  bool is_ack = false;
  int64_t ack = 0;  // cumulative ack (next expected byte)
  std::vector<SeqRange> sack;

  // ECN machinery: capable transport, congestion-experienced mark (set by a
  // RED queue), and the receiver's ECN-echo on ACKs.
  bool ecn_capable = false;
  bool ecn_ce = false;
  bool ecn_echo = false;
  // Sender -> receiver: congestion window reduced; stop echoing ECE.
  bool cwr = false;

  // Sender timestamp for RTT sampling; negative when the segment is a
  // retransmission (Karn's rule: do not sample RTT from retransmits).
  SimTime send_time_us = 0;
  bool retransmit = false;

  int size_bytes() const { return payload + header; }
};

}  // namespace gscope

#endif  // GSCOPE_NETSIM_PACKET_H_
