#include "netsim/tcp.h"

#include <algorithm>

namespace gscope {
namespace {

// Merges `range` into the sorted, disjoint set `ranges`.
void MergeRange(std::vector<SeqRange>* ranges, SeqRange range) {
  if (range.end <= range.begin) {
    return;
  }
  std::vector<SeqRange> out;
  out.reserve(ranges->size() + 1);
  bool inserted = false;
  for (const SeqRange& r : *ranges) {
    if (r.end < range.begin) {
      out.push_back(r);
    } else if (r.begin > range.end) {
      if (!inserted) {
        out.push_back(range);
        inserted = true;
      }
      out.push_back(r);
    } else {
      range.begin = std::min(range.begin, r.begin);
      range.end = std::max(range.end, r.end);
    }
  }
  if (!inserted) {
    out.push_back(range);
  }
  *ranges = std::move(out);
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpSender
// ---------------------------------------------------------------------------

TcpSender::TcpSender(Simulator* sim, int flow_id, TcpConfig config, Output output)
    : sim_(sim),
      flow_id_(flow_id),
      config_(config),
      output_(std::move(output)),
      rto_us_(config.initial_rto_us) {
  cwnd_ = static_cast<double>(config_.initial_cwnd_segments) * config_.mss;
  ssthresh_ = 64 * 1024.0 * 16;  // effectively unbounded until the first loss
}

TcpSender::~TcpSender() { Stop(); }

void TcpSender::Start(SimTime delay_us) {
  if (active_) {
    return;
  }
  active_ = true;
  sim_->ScheduleAfter(delay_us, [this]() {
    if (active_) {
      MaybeSendData();
    }
  });
}

void TcpSender::Stop() {
  active_ = false;
  CancelRtoTimer();
}

bool TcpSender::done() const {
  return config_.bytes_to_send > 0 && snd_una_ >= config_.bytes_to_send;
}

void TcpSender::RecordCwnd() {
  stats_.min_cwnd_segments = std::min(stats_.min_cwnd_segments, cwnd_segments());
}

void TcpSender::MaybeSendData() {
  if (!active_) {
    return;
  }
  while (bytes_in_flight() + config_.mss <= static_cast<int64_t>(cwnd_)) {
    if (config_.bytes_to_send > 0 && snd_nxt_ >= config_.bytes_to_send) {
      break;  // application has no more data
    }
    SendSegment(snd_nxt_, /*retransmit=*/false);
    snd_nxt_ += config_.mss;
  }
}

void TcpSender::SendSegment(int64_t seq, bool retransmit) {
  Packet packet;
  packet.flow_id = flow_id_;
  packet.seq = seq;
  packet.payload = config_.mss;
  packet.ecn_capable = config_.ecn;
  packet.send_time_us = sim_->now_us();
  packet.retransmit = retransmit;
  if (send_cwr_flag_) {
    packet.cwr = true;
    send_cwr_flag_ = false;
  }

  auto [it, fresh] = outstanding_.try_emplace(seq);
  it->second.send_time_us = sim_->now_us();
  if (retransmit || !fresh) {
    it->second.retransmitted = true;
  }

  ++stats_.segments_sent;
  if (retransmit) {
    ++stats_.retransmits;
  }
  if (rto_event_ == 0) {
    ArmRtoTimer();
  }
  output_(std::move(packet));
}

void TcpSender::OnAck(const Packet& ack) {
  if (!active_ && done()) {
    return;
  }

  if (config_.sack) {
    MergeSack(ack.sack);
  }
  if (ack.ecn_echo && config_.ecn) {
    ApplyEcnEcho();
  }

  if (ack.ack > snd_una_) {
    // New data acknowledged.
    int64_t newly_acked = ack.ack - snd_una_;
    stats_.bytes_acked += newly_acked;

    // RTT sample from the segment that triggered this ack (Karn's rule:
    // never sample retransmitted segments).
    auto it = outstanding_.find(ack.ack - config_.mss);
    if (it != outstanding_.end() && !it->second.retransmitted) {
      SampleRtt(sim_->now_us() - it->second.send_time_us);
    }
    outstanding_.erase(outstanding_.begin(), outstanding_.lower_bound(ack.ack));
    snd_una_ = ack.ack;
    if (snd_nxt_ < snd_una_) {
      snd_nxt_ = snd_una_;
    }
    dup_acks_ = 0;

    if (cwr_active_ && snd_una_ >= cwr_end_seq_) {
      cwr_active_ = false;
    }

    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        ExitRecovery();
      } else {
        // NewReno partial ack: the ack itself proves the segment at snd_una
        // is missing; retransmit it (or the first SACK hole beyond it).
        int64_t hole = !IsSacked(snd_una_) ? snd_una_ : NextHole(snd_una_);
        if (hole >= 0 && hole < recover_) {
          SendSegment(hole, /*retransmit=*/true);
        }
      }
    } else {
      // Normal growth: slow start below ssthresh, else congestion avoidance.
      if (cwnd_ < ssthresh_) {
        cwnd_ += config_.mss;
      } else {
        cwnd_ += static_cast<double>(config_.mss) * config_.mss / cwnd_;
      }
    }

    // Progress resets the RTO timer and the Karn backoff on forward motion.
    CancelRtoTimer();
    if (bytes_in_flight() > 0 || (config_.bytes_to_send == 0 || snd_nxt_ < config_.bytes_to_send)) {
      ArmRtoTimer();
    }
  } else if (ack.ack == snd_una_ && bytes_in_flight() > 0) {
    // Duplicate ack.
    ++dup_acks_;
    if (in_recovery_) {
      // Window inflation while the hole persists.
      cwnd_ += config_.mss;
      int64_t hole = config_.sack ? NextHole(recovery_retrans_next_) : -1;
      if (hole >= 0 && hole < recover_) {
        SendSegment(hole, /*retransmit=*/true);
        recovery_retrans_next_ = hole + config_.mss;
      }
    } else if (dup_acks_ == config_.dupack_threshold && snd_una_ >= recover_) {
      // NewReno guard: do not re-enter recovery for dupacks generated by the
      // same window of data that an earlier recovery already handled.
      EnterRecovery();
    }
  }

  RecordCwnd();
  if (active_ && !done()) {
    MaybeSendData();
  } else if (done()) {
    Stop();
  }
}

void TcpSender::EnterRecovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  ++stats_.fast_retransmits;
  double flight = static_cast<double>(bytes_in_flight());
  ssthresh_ = std::max(flight / 2.0, 2.0 * config_.mss);
  cwnd_ = ssthresh_ + config_.dupack_threshold * config_.mss;
  recovery_retrans_next_ = snd_una_ + config_.mss;
  SendSegment(snd_una_, /*retransmit=*/true);
  RecordCwnd();
}

void TcpSender::ExitRecovery() {
  in_recovery_ = false;
  cwnd_ = ssthresh_;  // deflate
  dup_acks_ = 0;
  RecordCwnd();
}

void TcpSender::ApplyEcnEcho() {
  if (cwr_active_) {
    return;  // at most one reduction per window of data
  }
  cwr_active_ = true;
  cwr_end_seq_ = snd_nxt_;
  send_cwr_flag_ = true;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * config_.mss);
  cwnd_ = ssthresh_;
  ++stats_.ecn_reductions;
  RecordCwnd();
}

void TcpSender::OnRto() {
  rto_event_ = 0;
  if (!active_) {
    return;
  }
  ++stats_.timeouts;

  // The Figure 4 behaviour: the window collapses to one segment.
  ssthresh_ = std::max(static_cast<double>(bytes_in_flight()) / 2.0, 2.0 * config_.mss);
  cwnd_ = static_cast<double>(config_.mss);
  dup_acks_ = 0;
  in_recovery_ = false;
  recover_ = snd_nxt_;  // RFC 6582: no fast retransmit for this window
  sacked_.clear();  // conservative: rebuild the scoreboard
  RecordCwnd();

  // Karn: back off the timer exponentially until a fresh sample arrives.
  ++rto_backoff_;
  rto_us_ = std::min(rto_us_ * 2, config_.max_rto_us);

  SendSegment(snd_una_, /*retransmit=*/true);
  ArmRtoTimer();
}

void TcpSender::ArmRtoTimer() {
  CancelRtoTimer();
  rto_event_ = sim_->ScheduleAfter(rto_us_, [this]() { OnRto(); });
}

void TcpSender::CancelRtoTimer() {
  if (rto_event_ != 0) {
    sim_->Cancel(rto_event_);
    rto_event_ = 0;
  }
}

void TcpSender::SampleRtt(SimTime rtt_us) {
  ++stats_.rtt_samples;
  if (srtt_us_ == 0) {
    srtt_us_ = rtt_us;
    rttvar_us_ = rtt_us / 2;
  } else {
    SimTime err = rtt_us - srtt_us_;
    srtt_us_ += err / 8;
    rttvar_us_ += ((err < 0 ? -err : err) - rttvar_us_) / 4;
  }
  rto_backoff_ = 0;
  rto_us_ = std::clamp(srtt_us_ + 4 * rttvar_us_, config_.min_rto_us, config_.max_rto_us);
}

bool TcpSender::IsSacked(int64_t seq) const {
  for (const SeqRange& r : sacked_) {
    if (r.Contains(seq)) {
      return true;
    }
  }
  return false;
}

void TcpSender::MergeSack(const std::vector<SeqRange>& blocks) {
  for (const SeqRange& b : blocks) {
    MergeRange(&sacked_, b);
  }
  // Discard ranges below snd_una (already cumulatively acked).
  while (!sacked_.empty() && sacked_.front().end <= snd_una_) {
    sacked_.erase(sacked_.begin());
  }
}

int64_t TcpSender::SackedBytesAbove(int64_t seq) const {
  int64_t total = 0;
  for (const SeqRange& r : sacked_) {
    if (r.end > seq) {
      total += r.end - std::max(r.begin, seq);
    }
  }
  return total;
}

bool TcpSender::IsLost(int64_t seq) const {
  // SACK loss detection: a segment is presumed lost only when at least
  // dupack_threshold segments above it have been SACKed.  Without this rule
  // every in-flight segment looks like a hole and recovery retransmits live
  // data, which snowballs (each spurious retransmit begets a dupack).
  return SackedBytesAbove(seq + config_.mss) >=
         static_cast<int64_t>(config_.dupack_threshold) * config_.mss;
}

int64_t TcpSender::NextHole(int64_t from) const {
  int64_t seq = std::max(from, snd_una_);
  while (seq < snd_nxt_) {
    if (!IsSacked(seq) && IsLost(seq)) {
      return seq;
    }
    seq += config_.mss;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// TcpReceiver
// ---------------------------------------------------------------------------

TcpReceiver::TcpReceiver(Simulator* sim, int flow_id, Output output)
    : sim_(sim), flow_id_(flow_id), output_(std::move(output)) {}

void TcpReceiver::OnData(const Packet& packet) {
  ++stats_.segments_received;

  if (packet.ecn_ce) {
    ++stats_.ce_marks_seen;
    ecn_echo_ = true;
  }
  if (packet.cwr) {
    ecn_echo_ = false;
  }

  SeqRange range{packet.seq, packet.seq + packet.payload};
  if (range.end <= rcv_next_) {
    // Pure duplicate; still ack so the sender sees progress.
    SendAck();
    return;
  }

  if (range.begin <= rcv_next_) {
    // In-order (possibly overlapping): advance and drain the OOO store.
    rcv_next_ = std::max(rcv_next_, range.end);
    while (!out_of_order_.empty() && out_of_order_.front().begin <= rcv_next_) {
      rcv_next_ = std::max(rcv_next_, out_of_order_.front().end);
      out_of_order_.erase(out_of_order_.begin());
    }
  } else {
    ++stats_.out_of_order;
    MergeRange(&out_of_order_, range);
  }
  stats_.bytes_delivered = rcv_next_;

  SendAck();
}

void TcpReceiver::SendAck() {
  Packet ack;
  ack.flow_id = flow_id_;
  ack.is_ack = true;
  ack.payload = 0;
  ack.ack = rcv_next_;
  ack.ecn_echo = ecn_echo_;
  ack.send_time_us = sim_->now_us();
  // Up to three SACK blocks, newest-first is not tracked; first three suffice.
  for (size_t i = 0; i < out_of_order_.size() && i < 3; ++i) {
    ack.sack.push_back(out_of_order_[i]);
  }
  ++stats_.acks_sent;
  output_(std::move(ack));
}

}  // namespace gscope
