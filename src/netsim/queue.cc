#include "netsim/queue.h"

#include <algorithm>

namespace gscope {

RouterQueue::RouterQueue(QueueConfig config, uint64_t seed)
    : config_(config), rng_state_(seed == 0 ? 1 : seed) {}

double RouterQueue::NextRandom() {
  // xorshift64*: deterministic, good enough for RED's marking decision.
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return static_cast<double>((x * 0x2545f4914f6cdd1dull) >> 11) /
         static_cast<double>(1ull << 53);
}

bool RouterQueue::Enqueue(Packet packet) {
  // Update the EWMA of the instantaneous depth (RED's congestion estimator).
  avg_depth_ = (1.0 - config_.red.weight) * avg_depth_ +
               config_.red.weight * static_cast<double>(queue_.size());

  if (config_.red.enabled) {
    if (avg_depth_ >= config_.red.max_threshold) {
      // Hard congestion: mark if possible, else drop.
      if (config_.red.ecn && packet.ecn_capable) {
        packet.ecn_ce = true;
        ++stats_.marked_ecn;
      } else {
        ++stats_.dropped_red;
        return false;
      }
    } else if (avg_depth_ > config_.red.min_threshold) {
      double fraction = (avg_depth_ - config_.red.min_threshold) /
                        (config_.red.max_threshold - config_.red.min_threshold);
      double p = fraction * config_.red.max_probability;
      if (NextRandom() < p) {
        if (config_.red.ecn && packet.ecn_capable) {
          packet.ecn_ce = true;
          ++stats_.marked_ecn;
        } else {
          ++stats_.dropped_red;
          return false;
        }
      }
    }
  }

  if (static_cast<int>(queue_.size()) >= config_.limit_packets) {
    ++stats_.dropped_tail;
    return false;
  }
  queue_.push_back(std::move(packet));
  ++stats_.enqueued;
  stats_.max_depth = std::max(stats_.max_depth, static_cast<int>(queue_.size()));
  return true;
}

std::optional<Packet> RouterQueue::Dequeue() {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.dequeued;
  return packet;
}

}  // namespace gscope
