// Simulated TCP endpoints: Reno congestion control with fast retransmit /
// NewReno recovery, SACK-assisted retransmission, Jacobson/Karn RTO
// estimation with exponential backoff, and ECN response.
//
// This is the congestion-control substrate behind Figures 4 and 5.  The
// qualitative behaviours the reproduction relies on:
//   * on a retransmission timeout the congestion window collapses to one
//     segment ("Both TCP and ECN reduce the congestion window to one upon a
//     timeout" - Section 2), which is the CWND floor visible in Figure 4;
//   * an ECN-capable flow through a RED/ECN queue receives marks instead of
//     drops, halves its window without losing packets and therefore avoids
//     timeouts (Figure 5).
#ifndef GSCOPE_NETSIM_TCP_H_
#define GSCOPE_NETSIM_TCP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "netsim/packet.h"
#include "netsim/simulator.h"

namespace gscope {

struct TcpConfig {
  int mss = 1460;
  int initial_cwnd_segments = 2;
  int dupack_threshold = 3;
  bool sack = true;
  bool ecn = false;
  SimTime min_rto_us = 200'000;     // Linux's 200 ms floor
  SimTime initial_rto_us = 1'000'000;
  SimTime max_rto_us = 60'000'000;
  // 0 = unlimited (elephant); otherwise stop after this many bytes (mouse).
  int64_t bytes_to_send = 0;
};

struct TcpSenderStats {
  int64_t segments_sent = 0;
  int64_t retransmits = 0;
  int64_t fast_retransmits = 0;
  int64_t timeouts = 0;         // RTO firings: the cwnd=1 events of Figure 4
  int64_t ecn_reductions = 0;   // window halvings from ECE, no loss involved
  int64_t bytes_acked = 0;
  int64_t rtt_samples = 0;
  double min_cwnd_segments = 1e9;  // smallest cwnd ever reached (after start)
};

class TcpSender {
 public:
  using Output = std::function<void(Packet)>;

  TcpSender(Simulator* sim, int flow_id, TcpConfig config, Output output);
  ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  // Begins transmitting after `delay_us` of virtual time.
  void Start(SimTime delay_us = 0);
  // Stops transmitting and cancels the retransmission timer.
  void Stop();
  bool active() const { return active_; }

  void OnAck(const Packet& ack);

  int flow_id() const { return flow_id_; }
  double cwnd_segments() const { return cwnd_ / static_cast<double>(config_.mss); }
  double ssthresh_segments() const { return ssthresh_ / static_cast<double>(config_.mss); }
  bool in_recovery() const { return in_recovery_; }
  SimTime rto_us() const { return rto_us_; }
  double srtt_ms() const { return srtt_us_ / 1000.0; }
  int64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
  bool done() const;
  const TcpSenderStats& stats() const { return stats_; }

 private:
  struct SegmentInfo {
    SimTime send_time_us = 0;
    bool retransmitted = false;
  };

  void MaybeSendData();
  void SendSegment(int64_t seq, bool retransmit);
  void EnterRecovery();
  void ExitRecovery();
  void OnRto();
  void ArmRtoTimer();
  void CancelRtoTimer();
  void SampleRtt(SimTime rtt_us);
  void ApplyEcnEcho();
  bool IsSacked(int64_t seq) const;
  int64_t SackedBytesAbove(int64_t seq) const;
  bool IsLost(int64_t seq) const;
  void MergeSack(const std::vector<SeqRange>& blocks);
  int64_t NextHole(int64_t from) const;
  void RecordCwnd();

  Simulator* sim_;
  const int flow_id_;
  TcpConfig config_;
  Output output_;

  bool active_ = false;
  double cwnd_ = 0.0;      // bytes
  double ssthresh_ = 0.0;  // bytes
  int64_t snd_una_ = 0;
  int64_t snd_nxt_ = 0;
  int dup_acks_ = 0;

  bool in_recovery_ = false;
  int64_t recover_ = 0;
  int64_t recovery_retrans_next_ = 0;

  bool cwr_active_ = false;   // ECN window reduction in progress
  int64_t cwr_end_seq_ = 0;   // reduction ends when snd_una passes this
  bool send_cwr_flag_ = false;

  SimTime srtt_us_ = 0;
  SimTime rttvar_us_ = 0;
  SimTime rto_us_;
  int rto_backoff_ = 0;
  EventId rto_event_ = 0;

  std::map<int64_t, SegmentInfo> outstanding_;
  std::vector<SeqRange> sacked_;

  TcpSenderStats stats_;
};

struct TcpReceiverStats {
  int64_t segments_received = 0;
  int64_t bytes_delivered = 0;   // in-order bytes handed to the "application"
  int64_t out_of_order = 0;
  int64_t acks_sent = 0;
  int64_t ce_marks_seen = 0;
};

class TcpReceiver {
 public:
  using Output = std::function<void(Packet)>;

  TcpReceiver(Simulator* sim, int flow_id, Output output);

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  void OnData(const Packet& packet);

  int64_t rcv_next() const { return rcv_next_; }
  const TcpReceiverStats& stats() const { return stats_; }

 private:
  void SendAck();

  Simulator* sim_;
  const int flow_id_;
  Output output_;

  int64_t rcv_next_ = 0;
  std::vector<SeqRange> out_of_order_;  // merged, sorted
  bool ecn_echo_ = false;  // latched CE until the sender's CWR arrives

  TcpReceiverStats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NETSIM_TCP_H_
