// Mxtraf analogue: the network traffic generator of Section 2.
//
// "With Mxtraf, a small number of hosts can be used to saturate a network
// with a tunable mix of TCP and UDP traffic ... we use mxtraf to generate
// varying number of long-lived flows (called elephants) that transfer data
// from the server to the client."
//
// This module wires TcpSender/TcpReceiver pairs through a shared bottleneck
// link (the nistnet router) plus an uncongested reverse path for ACKs, and
// exposes the run-time knob the experiment turns: the number of elephants.
// Short-lived "mice" flows are also supported for stress mixes.
#ifndef GSCOPE_NETSIM_MXTRAF_H_
#define GSCOPE_NETSIM_MXTRAF_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "netsim/link.h"
#include "netsim/tcp.h"
#include "netsim/udp.h"

namespace gscope {

struct MxtrafConfig {
  LinkConfig forward;  // server -> client bottleneck (data direction)
  LinkConfig reverse;  // client -> server (ACKs), uncongested
  TcpConfig tcp;       // applied to every flow (ecn on/off selects Fig 4 vs 5)
  // New flows start staggered by this much to avoid phase effects.
  SimTime start_stagger_us = 5'000;
  uint64_t seed = 0x243f6a8885a308d3ull;

  MxtrafConfig() {
    // Defaults model the paper's emulated WAN: a couple of Mbit/s, 100 ms
    // RTT, a modest router queue.  Chosen so that 16 elephants drive the
    // per-flow share low enough for the Figure 4 timeout behaviour while an
    // ECN/RED variant has the headroom to avoid loss entirely (Figure 5).
    forward.bandwidth_bps = 2'000'000.0;
    forward.propagation_us = 50'000;
    forward.queue.limit_packets = 30;
    reverse.bandwidth_bps = 100'000'000.0;
    reverse.propagation_us = 50'000;
    reverse.queue.limit_packets = 1000;
  }

  // RED thresholds matched to the default queue, for the ECN variant.
  void EnableEcnRed() {
    tcp.ecn = true;
    forward.queue.red.enabled = true;
    forward.queue.red.min_threshold = 4.0;
    forward.queue.red.max_threshold = 12.0;
    forward.queue.red.max_probability = 0.1;
    forward.queue.red.ecn = true;
  }
};

class Mxtraf {
 public:
  Mxtraf(Simulator* sim, MxtrafConfig config);

  Mxtraf(const Mxtraf&) = delete;
  Mxtraf& operator=(const Mxtraf&) = delete;

  // Sets the number of concurrently active long-lived flows.  Growing the
  // count starts fresh flows; shrinking stops the newest ones.  This is the
  // "elephants" control parameter changed 8 -> 16 mid-run in Figures 4/5.
  void SetElephants(int count);
  int elephants() const { return active_elephants_; }

  // Starts one short-lived flow that stops after `bytes`.
  void SpawnMouse(int64_t bytes);
  int mice_active() const;

  // Unresponsive background UDP load sharing the bottleneck ("a tunable mix
  // of TCP and UDP traffic").  Rate 0 stops it.
  void SetUdpRate(double rate_bps);
  double udp_rate_bps() const;
  int64_t udp_delivered() const { return udp_delivered_; }
  const UdpSourceStats* udp_stats() const;

  // The i-th currently active elephant's sender (0-based); null out of range.
  const TcpSender* ElephantSender(int index) const;
  // Congestion window (segments) of the i-th active elephant; 0 if none.
  double CwndSegments(int index) const;

  // Aggregates over every flow ever created.
  int64_t TotalTimeouts() const;
  int64_t TotalFastRetransmits() const;
  int64_t TotalEcnReductions() const;
  int64_t TotalBytesAcked() const;

  const QueueStats& bottleneck_stats() const { return forward_.queue_stats(); }
  int bottleneck_depth() const { return forward_.queue_depth(); }

 private:
  struct Flow {
    std::unique_ptr<TcpSender> sender;
    std::unique_ptr<TcpReceiver> receiver;
    bool elephant = false;
  };

  void RouteForward(Packet packet);
  void RouteReverse(Packet packet);
  int CreateFlow(bool elephant, int64_t bytes);

  Simulator* sim_;
  MxtrafConfig config_;
  Link forward_;
  Link reverse_;

  std::map<int, Flow> flows_;  // by flow id
  std::vector<int> elephant_ids_;  // creation order
  int active_elephants_ = 0;
  int next_flow_id_ = 1;

  std::unique_ptr<UdpSource> udp_;
  int udp_flow_id_ = 0;
  int64_t udp_delivered_ = 0;
};

}  // namespace gscope

#endif  // GSCOPE_NETSIM_MXTRAF_H_
