#include "netsim/mxtraf.h"

namespace gscope {

Mxtraf::Mxtraf(Simulator* sim, MxtrafConfig config)
    : sim_(sim),
      config_(config),
      forward_(sim, config.forward, [this](Packet p) { RouteForward(std::move(p)); },
               config.seed),
      reverse_(sim, config.reverse, [this](Packet p) { RouteReverse(std::move(p)); },
               config.seed ^ 0x5555555555555555ull) {}

void Mxtraf::RouteForward(Packet packet) {
  if (udp_flow_id_ != 0 && packet.flow_id == udp_flow_id_) {
    ++udp_delivered_;  // datagrams sink at the client; nothing to ack
    return;
  }
  auto it = flows_.find(packet.flow_id);
  if (it != flows_.end() && it->second.receiver != nullptr) {
    it->second.receiver->OnData(packet);
  }
}

void Mxtraf::RouteReverse(Packet packet) {
  auto it = flows_.find(packet.flow_id);
  if (it != flows_.end() && it->second.sender != nullptr) {
    it->second.sender->OnAck(packet);
  }
}

int Mxtraf::CreateFlow(bool elephant, int64_t bytes) {
  int id = next_flow_id_++;
  TcpConfig tcp = config_.tcp;
  tcp.bytes_to_send = bytes;

  Flow flow;
  flow.elephant = elephant;
  flow.sender = std::make_unique<TcpSender>(
      sim_, id, tcp, [this](Packet p) { forward_.Send(std::move(p)); });
  flow.receiver = std::make_unique<TcpReceiver>(
      sim_, id, [this](Packet p) { reverse_.Send(std::move(p)); });

  TcpSender* sender = flow.sender.get();
  flows_[id] = std::move(flow);
  sender->Start(static_cast<SimTime>(id % 16) * config_.start_stagger_us);
  return id;
}

void Mxtraf::SetElephants(int count) {
  if (count < 0) {
    count = 0;
  }
  while (active_elephants_ < count) {
    elephant_ids_.push_back(CreateFlow(/*elephant=*/true, /*bytes=*/0));
    ++active_elephants_;
  }
  while (active_elephants_ > count) {
    // Stop the most recently started elephant still active.
    for (auto it = elephant_ids_.rbegin(); it != elephant_ids_.rend(); ++it) {
      Flow& flow = flows_[*it];
      if (flow.sender->active()) {
        flow.sender->Stop();
        break;
      }
    }
    --active_elephants_;
  }
}

void Mxtraf::SpawnMouse(int64_t bytes) {
  if (bytes > 0) {
    CreateFlow(/*elephant=*/false, bytes);
  }
}

void Mxtraf::SetUdpRate(double rate_bps) {
  if (rate_bps <= 0.0) {
    if (udp_ != nullptr) {
      udp_->Stop();
    }
    return;
  }
  if (udp_ == nullptr) {
    udp_flow_id_ = next_flow_id_++;
    udp_ = std::make_unique<UdpSource>(sim_, udp_flow_id_, UdpConfig{.rate_bps = rate_bps},
                                       [this](Packet p) { forward_.Send(std::move(p)); });
    udp_->Start();
  } else {
    udp_->SetRate(rate_bps);
    if (!udp_->active()) {
      udp_->Start();
    }
  }
}

double Mxtraf::udp_rate_bps() const { return udp_ == nullptr ? 0.0 : udp_->rate_bps(); }

const UdpSourceStats* Mxtraf::udp_stats() const {
  return udp_ == nullptr ? nullptr : &udp_->stats();
}

int Mxtraf::mice_active() const {
  int count = 0;
  for (const auto& [id, flow] : flows_) {
    if (!flow.elephant && flow.sender->active() && !flow.sender->done()) {
      ++count;
    }
  }
  return count;
}

const TcpSender* Mxtraf::ElephantSender(int index) const {
  int seen = 0;
  for (int id : elephant_ids_) {
    auto it = flows_.find(id);
    if (it == flows_.end() || !it->second.sender->active()) {
      continue;
    }
    if (seen == index) {
      return it->second.sender.get();
    }
    ++seen;
  }
  return nullptr;
}

double Mxtraf::CwndSegments(int index) const {
  const TcpSender* sender = ElephantSender(index);
  return sender == nullptr ? 0.0 : sender->cwnd_segments();
}

int64_t Mxtraf::TotalTimeouts() const {
  int64_t total = 0;
  for (const auto& [id, flow] : flows_) {
    total += flow.sender->stats().timeouts;
  }
  return total;
}

int64_t Mxtraf::TotalFastRetransmits() const {
  int64_t total = 0;
  for (const auto& [id, flow] : flows_) {
    total += flow.sender->stats().fast_retransmits;
  }
  return total;
}

int64_t Mxtraf::TotalEcnReductions() const {
  int64_t total = 0;
  for (const auto& [id, flow] : flows_) {
    total += flow.sender->stats().ecn_reductions;
  }
  return total;
}

int64_t Mxtraf::TotalBytesAcked() const {
  int64_t total = 0;
  for (const auto& [id, flow] : flows_) {
    total += flow.sender->stats().bytes_acked;
  }
  return total;
}

}  // namespace gscope
