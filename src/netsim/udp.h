// Constant-bit-rate UDP traffic source.
//
// Mxtraf "can be used to saturate a network with a tunable mix of TCP and
// UDP traffic" (Section 2).  A UdpSource emits fixed-size datagrams at a
// configured rate with no congestion response - the unresponsive background
// load that TCP flows must share a bottleneck with.
#ifndef GSCOPE_NETSIM_UDP_H_
#define GSCOPE_NETSIM_UDP_H_

#include <cstdint>
#include <functional>

#include "netsim/packet.h"
#include "netsim/simulator.h"

namespace gscope {

struct UdpConfig {
  double rate_bps = 500'000.0;  // payload bit-rate
  int payload = 1000;           // bytes per datagram
};

struct UdpSourceStats {
  int64_t datagrams_sent = 0;
  int64_t bytes_sent = 0;
};

class UdpSource {
 public:
  using Output = std::function<void(Packet)>;

  UdpSource(Simulator* sim, int flow_id, UdpConfig config, Output output);
  ~UdpSource();

  UdpSource(const UdpSource&) = delete;
  UdpSource& operator=(const UdpSource&) = delete;

  void Start(SimTime delay_us = 0);
  void Stop();
  bool active() const { return active_; }

  // Adjusts the send rate while running (re-paces from now).
  void SetRate(double rate_bps);
  double rate_bps() const { return config_.rate_bps; }

  int flow_id() const { return flow_id_; }
  const UdpSourceStats& stats() const { return stats_; }

 private:
  void SendNext();
  SimTime InterPacketGap() const;

  Simulator* sim_;
  const int flow_id_;
  UdpConfig config_;
  Output output_;
  bool active_ = false;
  EventId pending_ = 0;
  UdpSourceStats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NETSIM_UDP_H_
