#include "netsim/udp.h"

#include <cmath>

namespace gscope {

UdpSource::UdpSource(Simulator* sim, int flow_id, UdpConfig config, Output output)
    : sim_(sim), flow_id_(flow_id), config_(config), output_(std::move(output)) {}

UdpSource::~UdpSource() { Stop(); }

SimTime UdpSource::InterPacketGap() const {
  if (config_.rate_bps <= 0.0) {
    return kMicrosPerSecond;  // effectively paused
  }
  double bits = static_cast<double>(config_.payload) * 8.0;
  SimTime gap = static_cast<SimTime>(std::llround(bits / config_.rate_bps * kMicrosPerSecond));
  return gap < 1 ? 1 : gap;
}

void UdpSource::Start(SimTime delay_us) {
  if (active_) {
    return;
  }
  active_ = true;
  pending_ = sim_->ScheduleAfter(delay_us, [this]() { SendNext(); });
}

void UdpSource::Stop() {
  active_ = false;
  if (pending_ != 0) {
    sim_->Cancel(pending_);
    pending_ = 0;
  }
}

void UdpSource::SetRate(double rate_bps) {
  config_.rate_bps = rate_bps < 0.0 ? 0.0 : rate_bps;
  if (active_) {
    // Re-pace from now at the new rate.
    if (pending_ != 0) {
      sim_->Cancel(pending_);
    }
    pending_ = sim_->ScheduleAfter(InterPacketGap(), [this]() { SendNext(); });
  }
}

void UdpSource::SendNext() {
  pending_ = 0;
  if (!active_) {
    return;
  }
  Packet packet;
  packet.flow_id = flow_id_;
  packet.payload = config_.payload;
  packet.header = 28;  // UDP/IP
  packet.send_time_us = sim_->now_us();
  ++stats_.datagrams_sent;
  stats_.bytes_sent += config_.payload;
  output_(std::move(packet));
  pending_ = sim_->ScheduleAfter(InterPacketGap(), [this]() { SendNext(); });
}

}  // namespace gscope
