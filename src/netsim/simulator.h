// Discrete-event simulation core for the netsim substrate.
//
// The paper's Figures 4/5 experiment ran on a real testbed (client, nistnet
// router, server).  We reproduce it with a deterministic discrete-event
// simulator: microsecond virtual time, an event heap, and cancellable events
// (TCP retransmission timers need cancellation).
#ifndef GSCOPE_NETSIM_SIMULATOR_H_
#define GSCOPE_NETSIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gscope {

using SimTime = int64_t;  // microseconds of virtual time
using EventId = int64_t;  // 0 is never valid

constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSecond = 1'000'000;

class Simulator {
 public:
  using EventFn = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now_us() const { return now_us_; }
  double now_ms() const { return static_cast<double>(now_us_) / kMicrosPerMilli; }

  // Schedules `fn` at absolute virtual time `t_us` (clamped to now).
  EventId ScheduleAt(SimTime t_us, EventFn fn);
  EventId ScheduleAfter(SimTime delta_us, EventFn fn) {
    return ScheduleAt(now_us_ + (delta_us < 0 ? 0 : delta_us), std::move(fn));
  }

  // Cancels a pending event.  Returns false if already fired or unknown.
  bool Cancel(EventId id);

  // Runs the next event.  Returns false when the heap is empty.
  bool Step();

  // Runs all events with time <= t_us, then advances the clock to t_us.
  void RunUntil(SimTime t_us);
  void RunForMs(int64_t ms) { RunUntil(now_us_ + ms * kMicrosPerMilli); }

  // Runs until the heap is empty or `max_events` were processed.
  void RunUntilIdle(int64_t max_events = 1'000'000);

  int64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Event {
    SimTime time;
    int64_t seq;  // FIFO tie-break for same-time events
    EventId id;

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  SimTime now_us_ = 0;
  int64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  std::unordered_map<EventId, EventFn> handlers_;
  std::unordered_set<EventId> cancelled_;
  int64_t events_processed_ = 0;
};

}  // namespace gscope

#endif  // GSCOPE_NETSIM_SIMULATOR_H_
