// A bandwidth/delay-constrained link with a router queue at its head.
//
// This is the nistnet analogue: "we use a Linux router between a client and
// a server machine and use nistnet to add delay and bandwidth constraints at
// the router."  Packets enter the queue, are serialized at the configured
// bandwidth, and arrive at the sink after the propagation delay.
#ifndef GSCOPE_NETSIM_LINK_H_
#define GSCOPE_NETSIM_LINK_H_

#include <cstdint>
#include <functional>

#include "netsim/packet.h"
#include "netsim/queue.h"
#include "netsim/simulator.h"

namespace gscope {

struct LinkConfig {
  double bandwidth_bps = 4'000'000.0;  // bits per second
  SimTime propagation_us = 25'000;     // one-way propagation delay
  QueueConfig queue;
};

class Link {
 public:
  using Sink = std::function<void(Packet)>;

  // `sim` is not owned.  `sink` receives packets after queueing,
  // serialization and propagation.
  Link(Simulator* sim, LinkConfig config, Sink sink, uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Offers a packet to the link; the queue may drop or ECN-mark it.
  // Returns false when the packet was dropped.
  bool Send(Packet packet);

  const QueueStats& queue_stats() const { return queue_.stats(); }
  int queue_depth() const { return queue_.depth(); }
  double average_queue_depth() const { return queue_.average_depth(); }
  int64_t delivered() const { return delivered_; }

 private:
  void StartTransmission();
  SimTime SerializationTime(const Packet& packet) const;

  Simulator* sim_;
  LinkConfig config_;
  Sink sink_;
  RouterQueue queue_;
  bool transmitting_ = false;
  int64_t delivered_ = 0;
};

}  // namespace gscope

#endif  // GSCOPE_NETSIM_LINK_H_
