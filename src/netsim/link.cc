#include "netsim/link.h"

#include <cmath>
#include <utility>

namespace gscope {

Link::Link(Simulator* sim, LinkConfig config, Sink sink, uint64_t seed)
    : sim_(sim), config_(config), sink_(std::move(sink)), queue_(config.queue, seed) {}

bool Link::Send(Packet packet) {
  if (!queue_.Enqueue(std::move(packet))) {
    return false;
  }
  if (!transmitting_) {
    StartTransmission();
  }
  return true;
}

SimTime Link::SerializationTime(const Packet& packet) const {
  double bits = static_cast<double>(packet.size_bytes()) * 8.0;
  double us = bits / config_.bandwidth_bps * kMicrosPerSecond;
  SimTime t = static_cast<SimTime>(std::llround(us));
  return t < 1 ? 1 : t;
}

void Link::StartTransmission() {
  std::optional<Packet> packet = queue_.Dequeue();
  if (!packet.has_value()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  SimTime tx = SerializationTime(*packet);
  // Serialization finishes at now + tx; the packet then propagates.
  Packet moved = std::move(*packet);
  sim_->ScheduleAfter(tx, [this, moved = std::move(moved)]() mutable {
    sim_->ScheduleAfter(config_.propagation_us, [this, moved = std::move(moved)]() mutable {
      ++delivered_;
      if (sink_) {
        sink_(std::move(moved));
      }
    });
    StartTransmission();
  });
}

}  // namespace gscope
