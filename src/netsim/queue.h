// Router queue disciplines: droptail and RED with ECN marking.
//
// The paper's experiment compares standard TCP (droptail losses, hence
// timeouts) against ECN flows [8] (RED marks instead of drops).  This module
// is the router side of that comparison, standing in for the nistnet router.
#ifndef GSCOPE_NETSIM_QUEUE_H_
#define GSCOPE_NETSIM_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "netsim/packet.h"

namespace gscope {

struct RedConfig {
  bool enabled = false;
  double min_threshold = 5.0;   // packets
  double max_threshold = 15.0;  // packets
  double max_probability = 0.1;
  double weight = 0.2;  // EWMA weight for the average queue size
  // Mark ECN-capable packets instead of dropping them.
  bool ecn = true;
};

struct QueueConfig {
  int limit_packets = 50;
  RedConfig red;
};

struct QueueStats {
  int64_t enqueued = 0;
  int64_t dropped_tail = 0;
  int64_t dropped_red = 0;
  int64_t marked_ecn = 0;
  int64_t dequeued = 0;
  int max_depth = 0;
};

// Deterministic router queue.  RED uses a seeded xorshift PRNG so experiment
// runs are reproducible.
class RouterQueue {
 public:
  explicit RouterQueue(QueueConfig config, uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Attempts to enqueue.  May mark the packet (ECN) or refuse it.
  // Returns true if the packet was queued.
  bool Enqueue(Packet packet);

  // Removes the packet at the head, if any.
  std::optional<Packet> Dequeue();

  int depth() const { return static_cast<int>(queue_.size()); }
  bool empty() const { return queue_.empty(); }
  const QueueStats& stats() const { return stats_; }
  double average_depth() const { return avg_depth_; }

 private:
  double NextRandom();  // uniform [0, 1)

  QueueConfig config_;
  std::deque<Packet> queue_;
  QueueStats stats_;
  double avg_depth_ = 0.0;
  uint64_t rng_state_;
};

}  // namespace gscope

#endif  // GSCOPE_NETSIM_QUEUE_H_
