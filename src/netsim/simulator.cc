#include "netsim/simulator.h"

namespace gscope {

EventId Simulator::ScheduleAt(SimTime t_us, EventFn fn) {
  if (!fn) {
    return 0;
  }
  if (t_us < now_us_) {
    t_us = now_us_;
  }
  EventId id = next_id_++;
  heap_.push(Event{t_us, next_seq_++, id});
  handlers_[id] = std::move(fn);
  return id;
}

bool Simulator::Cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) {
    return false;
  }
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto cancelled = cancelled_.find(ev.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) {
      continue;
    }
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    now_us_ = ev.time;
    ++events_processed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime t_us) {
  while (!heap_.empty() && heap_.top().time <= t_us) {
    Step();
  }
  if (t_us > now_us_) {
    now_us_ = t_us;
  }
}

void Simulator::RunUntilIdle(int64_t max_events) {
  for (int64_t i = 0; i < max_events; ++i) {
    if (!Step()) {
      return;
    }
  }
}

}  // namespace gscope
