#include "render/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace gscope {
namespace {

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

struct Column {
  std::string name;
  std::vector<TracePoint> points;  // oldest first
};

std::vector<Column> CollectColumns(const Scope& scope, size_t* max_len) {
  std::vector<Column> columns;
  *max_len = 0;
  for (SignalId id : scope.SignalIds()) {
    const SignalSpec* spec = scope.SpecFor(id);
    const Trace* trace = scope.TraceFor(id);
    if (spec == nullptr || trace == nullptr) {
      continue;
    }
    columns.push_back(Column{spec->name, trace->Snapshot()});
    *max_len = std::max(*max_len, columns.back().points.size());
  }
  return columns;
}

}  // namespace

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats stats;
  std::vector<double> values = trace.Values();
  stats.points = values.size();
  if (values.empty()) {
    return stats;
  }
  stats.min = values[0];
  stats.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    sum += v;
  }
  stats.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) {
    var += (v - stats.mean) * (v - stats.mean);
  }
  stats.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return stats;
}

std::string ExportCsv(const Scope& scope) {
  size_t max_len = 0;
  std::vector<Column> columns = CollectColumns(scope, &max_len);

  std::ostringstream out;
  out << "time_ms";
  for (const Column& c : columns) {
    out << ',' << c.name;
  }
  out << '\n';

  int64_t period = scope.polling_period_ms();
  for (size_t row = 0; row < max_len; ++row) {
    // Row 0 is the oldest column; the newest sample sits at offset 0.
    int64_t offset = -static_cast<int64_t>(max_len - 1 - row) * period;
    out << offset;
    for (const Column& c : columns) {
      out << ',';
      // Right-align shorter traces (their newest sample is also "now").
      size_t pad = max_len - c.points.size();
      if (row >= pad && c.points[row - pad].valid) {
        out << Num(c.points[row - pad].value);
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string ExportGnuplot(const Scope& scope) {
  size_t max_len = 0;
  std::vector<Column> columns = CollectColumns(scope, &max_len);

  std::ostringstream out;
  out << "# gscope export: scope '" << scope.name() << "'\n";
  out << "set title '" << scope.name() << "'\n";
  out << "set xlabel 'time (s)'\nset ylabel 'value'\nset grid\n";
  out << "$data << EOD\n";
  double period_s = static_cast<double>(scope.polling_period_ms()) / 1000.0;
  for (size_t row = 0; row < max_len; ++row) {
    out << Num(-static_cast<double>(max_len - 1 - row) * period_s);
    for (const Column& c : columns) {
      size_t pad = max_len - c.points.size();
      out << ' ';
      if (row >= pad && c.points[row - pad].valid) {
        out << Num(c.points[row - pad].value);
      } else {
        out << "NaN";
      }
    }
    out << '\n';
  }
  out << "EOD\n";
  out << "plot";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << " $data using 1:" << (i + 2) << " with lines title '" << columns[i].name << "'";
  }
  out << '\n';
  return out.str();
}

std::string ExportTextReport(const Scope& scope) {
  std::ostringstream out;
  out << "gscope report: " << scope.name() << "\n";
  out << "  mode=" << (scope.mode() == AcquisitionMode::kPolling ? "polling" : "playback")
      << " period=" << scope.polling_period_ms() << "ms delay=" << scope.delay_ms()
      << "ms zoom=" << scope.zoom() << " bias=" << scope.bias() << "\n";
  out << "  ticks=" << scope.counters().ticks << " lost=" << scope.counters().lost_ticks
      << " samples=" << scope.counters().samples << "\n\n";
  char line[200];
  std::snprintf(line, sizeof(line), "  %-16s %8s %10s %10s %10s %10s\n", "signal", "points",
                "min", "max", "mean", "stddev");
  out << line;
  for (SignalId id : scope.SignalIds()) {
    const SignalSpec* spec = scope.SpecFor(id);
    const Trace* trace = scope.TraceFor(id);
    if (spec == nullptr || trace == nullptr) {
      continue;
    }
    TraceStats stats = ComputeTraceStats(*trace);
    std::snprintf(line, sizeof(line), "  %-16s %8zu %10.4g %10.4g %10.4g %10.4g\n",
                  spec->name.c_str(), stats.points, stats.min, stats.max, stats.mean,
                  stats.stddev);
    out << line;
  }
  return out.str();
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return false;
  }
  out << content;
  return out.good();
}

}  // namespace gscope
