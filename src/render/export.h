// Printing/export of recorded data (the paper's Section 6 future work:
// "Gscope does not currently support printing of recorded data").
//
// Three printable forms:
//   * CSV - one row per column, one column per signal (spreadsheet import),
//   * gnuplot - a self-contained script + inline data that replots a scope,
//   * text report - a human-readable summary with per-signal statistics.
#ifndef GSCOPE_RENDER_EXPORT_H_
#define GSCOPE_RENDER_EXPORT_H_

#include <string>

#include "core/scope.h"

namespace gscope {

// Per-signal summary statistics over the displayed trace.
struct TraceStats {
  size_t points = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

TraceStats ComputeTraceStats(const Trace& trace);

// CSV of every signal's trace, oldest row first.  Column 0 is the time
// offset in ms relative to the newest sample (negative going back).
// Signals with shorter traces leave cells empty.
std::string ExportCsv(const Scope& scope);

// A gnuplot script (with inline `$data` block) that reproduces the scope's
// time-domain view.  Feed to `gnuplot -p`.
std::string ExportGnuplot(const Scope& scope);

// Human-readable report: widget states plus per-signal statistics.
std::string ExportTextReport(const Scope& scope);

// Writes any of the above to a file.  Returns false on I/O error.
bool WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace gscope

#endif  // GSCOPE_RENDER_EXPORT_H_
