// ASCII scope view, for live terminal demos (examples print these frames).
#ifndef GSCOPE_RENDER_ASCII_H_
#define GSCOPE_RENDER_ASCII_H_

#include <string>

#include "core/scope.h"

namespace gscope {

struct AsciiViewOptions {
  int columns = 72;  // sample columns (newest at the right)
  int rows = 16;     // vertical resolution over the 0..100 ruler
  bool legend = true;
};

// Renders the scope's visible traces as text.  Each signal is drawn with the
// digit of its 1-based display index; overlapping signals show '#'.
std::string RenderAscii(const Scope& scope, const AsciiViewOptions& options = {});

}  // namespace gscope

#endif  // GSCOPE_RENDER_ASCII_H_
