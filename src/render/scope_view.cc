#include "render/scope_view.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "freq/spectrum.h"
#include "render/color.h"

namespace gscope {
namespace {

std::string FormatDouble(double v, int precision = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

const char* LineModeName(LineMode mode) {
  switch (mode) {
    case LineMode::kLine:
      return "line";
    case LineMode::kPoints:
      return "points";
    case LineMode::kSteps:
      return "steps";
  }
  return "?";
}

const char* DomainName(DisplayDomain domain) {
  return domain == DisplayDomain::kTime ? "time" : "freq";
}

constexpr double kSpectrumDbRange = 80.0;  // display floor: -80 dBFS

}  // namespace

ScopeView::ScopeView(const Scope* scope, ScopeViewOptions options)
    : scope_(scope), options_(options) {}

ScopeView::PlotArea ScopeView::ComputePlotArea(const Canvas& canvas) const {
  PlotArea area;
  area.x0 = options_.margin_left;
  area.y0 = options_.margin_top;
  int legend = options_.draw_legend
                   ? options_.legend_height * static_cast<int>(scope_->signal_count())
                   : 0;
  area.w = std::max(1, canvas.width() - options_.margin_left - options_.margin_right);
  area.h = std::max(1, canvas.height() - options_.margin_top - options_.margin_bottom - legend);
  return area;
}

void ScopeView::Render(Canvas* canvas) const {
  canvas->Clear(kBlack);
  PlotArea area = ComputePlotArea(*canvas);
  DrawGridAndRulers(canvas, area);
  if (scope_->domain() == DisplayDomain::kFrequency) {
    DrawSpectra(canvas, area);
  } else {
    DrawTraces(canvas, area);
  }
  DrawChrome(canvas, area);
  if (options_.draw_legend) {
    DrawLegend(canvas, area);
  }
}

bool ScopeView::RenderToPpm(const std::string& path, int canvas_width, int canvas_height) const {
  Canvas canvas(canvas_width, canvas_height);
  Render(&canvas);
  return canvas.WritePpm(path);
}

void ScopeView::DrawChrome(Canvas* canvas, const PlotArea& area) const {
  // Title bar: scope name plus the widget states of Figure 1.
  std::string title = scope_->name() + "  [" + DomainName(scope_->domain()) + "]  period=" +
                      std::to_string(scope_->polling_period_ms()) + "ms delay=" +
                      std::to_string(scope_->delay_ms()) + "ms zoom=" +
                      FormatDouble(scope_->zoom(), 1) + " bias=" +
                      FormatDouble(scope_->bias(), 0);
  canvas->DrawText(2, 3, title, kWhite);
  canvas->DrawRect(area.x0 - 1, area.y0 - 1, area.w + 2, area.h + 2, kGray);
}

void ScopeView::DrawGridAndRulers(Canvas* canvas, const PlotArea& area) const {
  // Horizontal grid: y ruler has a scale from 0 to 100.
  for (int units = 0; units <= 100; units += options_.grid_step_y) {
    int y = ValueToY(area, units);
    for (int x = area.x0; x < area.x0 + area.w; x += 2) {
      canvas->SetPixel(x, y, kDimGray);
    }
    canvas->DrawText(2, y - 3, std::to_string(units), kGray);
  }
  // Vertical grid: x ruler is sized in seconds; newest data at the right.
  double ms_per_pixel = static_cast<double>(scope_->polling_period_ms());
  for (int gx = 0; gx <= area.w; gx += options_.grid_step_x) {
    int x = area.x0 + area.w - 1 - gx;
    if (x < area.x0) {
      break;
    }
    for (int y = area.y0; y < area.y0 + area.h; y += 2) {
      canvas->SetPixel(x, y, kDimGray);
    }
    double seconds = gx * ms_per_pixel / 1000.0;
    std::string label = gx == 0 ? "0" : "-" + FormatDouble(seconds, 1) + "s";
    canvas->DrawText(x - Canvas::TextWidth(label) / 2, area.y0 + area.h + 4, label, kGray);
  }
}

int ScopeView::ValueToY(const PlotArea& area, double ruler_units) const {
  // Ruler 0 at the bottom, 100 at the top; values beyond are clipped later
  // by pixel clipping.
  double frac = ruler_units / 100.0;
  return area.y0 + area.h - 1 - static_cast<int>(std::lround(frac * (area.h - 1)));
}

void ScopeView::DrawTraces(Canvas* canvas, const PlotArea& area) const {
  for (SignalId id : scope_->SignalIds()) {
    const SignalSpec* spec = scope_->SpecFor(id);
    const Trace* trace = scope_->TraceFor(id);
    if (spec == nullptr || trace == nullptr || spec->hidden || trace->empty()) {
      continue;
    }
    Rgb color = spec->color.value_or(kGreen);
    // Data is displayed one pixel apart each polling period: age a maps to
    // the column a pixels left of the right edge.
    size_t columns = std::min<size_t>(trace->size(), static_cast<size_t>(area.w));
    int prev_x = 0;
    int prev_y = 0;
    bool have_prev = false;
    for (size_t age = 0; age < columns; ++age) {
      const TracePoint& p = trace->At(age);
      if (!p.valid) {
        have_prev = false;
        continue;
      }
      int x = area.x0 + area.w - 1 - static_cast<int>(age);
      double ruler = scope_->NormalizeValue(id, p.value);
      ruler = std::clamp(ruler, -5.0, 105.0);
      int y = ValueToY(area, ruler);
      y = std::clamp(y, area.y0, area.y0 + area.h - 1);
      switch (spec->line) {
        case LineMode::kPoints:
          canvas->SetPixel(x, y, color);
          break;
        case LineMode::kSteps:
          if (have_prev) {
            canvas->DrawLine(x, prev_y, prev_x, prev_y, color);
            canvas->DrawLine(x, prev_y, x, y, color);
          } else {
            canvas->SetPixel(x, y, color);
          }
          break;
        case LineMode::kLine:
          if (have_prev) {
            canvas->DrawLine(x, y, prev_x, prev_y, color);
          } else {
            canvas->SetPixel(x, y, color);
          }
          break;
      }
      prev_x = x;
      prev_y = y;
      have_prev = true;
    }
  }
}

void ScopeView::DrawSpectra(Canvas* canvas, const PlotArea& area) const {
  double sample_rate_hz = 1000.0 / static_cast<double>(scope_->polling_period_ms());
  for (SignalId id : scope_->SignalIds()) {
    const SignalSpec* spec = scope_->SpecFor(id);
    const Trace* trace = scope_->TraceFor(id);
    if (spec == nullptr || trace == nullptr || spec->hidden || trace->size() < 8) {
      continue;
    }
    Rgb color = spec->color.value_or(kGreen);
    Spectrum spectrum = ComputeSpectrum(trace->Values(), sample_rate_hz);
    if (spectrum.power_db.empty()) {
      continue;
    }
    size_t bins = spectrum.power_db.size();
    int prev_x = 0;
    int prev_y = 0;
    bool have_prev = false;
    for (size_t i = 0; i < bins; ++i) {
      int x = area.x0 + static_cast<int>(static_cast<double>(i) / (bins - 1) * (area.w - 1));
      // Map [-range, 0] dB onto the 0..100 ruler.
      double ruler = (spectrum.power_db[i] + kSpectrumDbRange) / kSpectrumDbRange * 100.0;
      ruler = std::clamp(ruler, 0.0, 100.0);
      int y = ValueToY(area, ruler);
      if (have_prev) {
        canvas->DrawLine(x, y, prev_x, prev_y, color);
      } else {
        canvas->SetPixel(x, y, color);
      }
      prev_x = x;
      prev_y = y;
      have_prev = true;
    }
  }
}

void ScopeView::DrawLegend(Canvas* canvas, const PlotArea& area) const {
  int y = area.y0 + area.h + options_.margin_bottom;
  for (SignalId id : scope_->SignalIds()) {
    const SignalSpec* spec = scope_->SpecFor(id);
    if (spec == nullptr) {
      continue;
    }
    Rgb color = spec->color.value_or(kGreen);
    canvas->FillRect(4, y + 1, 8, 8, color);
    std::string text = spec->name;
    if (spec->hidden) {
      text += " (hidden)";
    }
    auto value = scope_->LatestValue(id);
    if (value.has_value()) {
      text += "  = " + FormatDouble(*value);
    }
    canvas->DrawText(16, y + 1, text, kWhite);
    y += options_.legend_height;
  }
}

bool ScopeView::RenderTriggered(Canvas* canvas, SignalId id, const TriggerConfig& trigger) const {
  const SignalSpec* spec = scope_->SpecFor(id);
  const Trace* trace = scope_->TraceFor(id);
  if (spec == nullptr || trace == nullptr || trace->empty()) {
    return false;
  }
  canvas->Clear(kBlack);
  PlotArea area = ComputePlotArea(*canvas);
  DrawGridAndRulers(canvas, area);

  std::vector<double> samples = trace->Values();
  // The sweep can be at most half the captured history (otherwise no
  // complete trigger-to-trigger window exists yet) and at most the plot.
  size_t width = std::min(static_cast<size_t>(area.w),
                          std::max<size_t>(8, samples.size() / 2));
  std::optional<Sweep> sweep = LatestSweep(samples, width, trigger);
  if (!sweep.has_value() || !sweep->triggered) {
    DrawChrome(canvas, area);
    return false;
  }

  // Envelope band (dim) behind the live sweep.
  Envelope envelope(width);
  envelope.AddSweeps(samples, trigger);
  for (size_t col = 0; col < width; ++col) {
    if (envelope.CoverageAt(col) < 2) {
      continue;
    }
    int x = area.x0 + static_cast<int>(col);
    double lo = std::clamp(scope_->NormalizeValue(id, envelope.LowAt(col)), 0.0, 100.0);
    double hi = std::clamp(scope_->NormalizeValue(id, envelope.HighAt(col)), 0.0, 100.0);
    canvas->DrawLine(x, ValueToY(area, lo), x, ValueToY(area, hi), kDimGray);
  }

  // The stabilized sweep, left-aligned at the trigger point.
  Rgb color = spec->color.value_or(kGreen);
  int prev_x = 0;
  int prev_y = 0;
  bool have_prev = false;
  for (size_t i = 0; i < sweep->samples.size(); ++i) {
    int x = area.x0 + static_cast<int>(i);
    double ruler = std::clamp(scope_->NormalizeValue(id, sweep->samples[i]), 0.0, 100.0);
    int y = ValueToY(area, ruler);
    if (have_prev) {
      canvas->DrawLine(x, y, prev_x, prev_y, color);
    } else {
      canvas->SetPixel(x, y, color);
    }
    prev_x = x;
    prev_y = y;
    have_prev = true;
  }

  // Trigger level marker on the left edge.
  double level_ruler = std::clamp(scope_->NormalizeValue(id, trigger.level), 0.0, 100.0);
  int level_y = ValueToY(area, level_ruler);
  canvas->DrawText(area.x0 + 2, level_y - 3, "T>", kYellow);

  DrawChrome(canvas, area);
  canvas->DrawText(2, canvas->height() - 10,
                   "triggered: " + spec->name + " sweeps=" + std::to_string(envelope.sweeps()),
                   kWhite);
  return true;
}

std::string ScopeView::SignalParamsTable() const {
  std::ostringstream out;
  out << "signal          type     min      max      line    hidden  alpha  value\n";
  for (SignalId id : scope_->SignalIds()) {
    const SignalSpec* spec = scope_->SpecFor(id);
    if (spec == nullptr) {
      continue;
    }
    auto value = scope_->LatestValue(id);
    char line[160];
    std::snprintf(line, sizeof(line), "%-15s %-8s %-8.6g %-8.6g %-7s %-7s %-6.3g %s\n",
                  spec->name.c_str(), SignalTypeName(spec->type()), spec->min, spec->max,
                  LineModeName(spec->line), spec->hidden ? "yes" : "no", spec->filter_alpha,
                  value.has_value() ? FormatDouble(*value).c_str() : "-");
    out << line;
  }
  return out.str();
}

std::string ScopeView::ControlParamsTable(const ParamRegistry& params) {
  std::ostringstream out;
  out << "parameter       value      range\n";
  for (const std::string& name : params.Names()) {
    auto value = params.Get(name);
    auto range = params.RangeOf(name);
    char line[160];
    std::string range_str = range.has_value()
                                ? "[" + FormatDouble(range->first) + ", " +
                                      FormatDouble(range->second) + "]"
                                : "(unbounded)";
    std::snprintf(line, sizeof(line), "%-15s %-10s %s\n", name.c_str(),
                  value.has_value() ? FormatDouble(*value).c_str() : "-", range_str.c_str());
    out << line;
  }
  return out.str();
}

}  // namespace gscope
