#include "render/ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace gscope {

std::string RenderAscii(const Scope& scope, const AsciiViewOptions& options) {
  int cols = std::max(8, options.columns);
  int rows = std::max(4, options.rows);

  std::vector<std::string> grid(static_cast<size_t>(rows), std::string(static_cast<size_t>(cols), ' '));

  int index = 0;
  std::vector<SignalId> ids = scope.SignalIds();
  for (SignalId id : ids) {
    ++index;
    const SignalSpec* spec = scope.SpecFor(id);
    const Trace* trace = scope.TraceFor(id);
    if (spec == nullptr || trace == nullptr || spec->hidden) {
      continue;
    }
    char glyph = index <= 9 ? static_cast<char>('0' + index) : '*';
    size_t columns = std::min<size_t>(trace->size(), static_cast<size_t>(cols));
    for (size_t age = 0; age < columns; ++age) {
      const TracePoint& p = trace->At(age);
      if (!p.valid) {
        continue;
      }
      int x = cols - 1 - static_cast<int>(age);
      double ruler = std::clamp(scope.NormalizeValue(id, p.value), 0.0, 100.0);
      int y = rows - 1 - static_cast<int>(std::lround(ruler / 100.0 * (rows - 1)));
      char& cell = grid[static_cast<size_t>(y)][static_cast<size_t>(x)];
      cell = (cell == ' ' || cell == glyph) ? glyph : '#';
    }
  }

  std::ostringstream out;
  out << "+" << std::string(static_cast<size_t>(cols), '-') << "+  " << scope.name() << " (period "
      << scope.polling_period_ms() << " ms)\n";
  for (int y = 0; y < rows; ++y) {
    int ruler = static_cast<int>(std::lround(100.0 * (rows - 1 - y) / (rows - 1)));
    char label[8];
    std::snprintf(label, sizeof(label), "%3d", ruler);
    out << "|" << grid[static_cast<size_t>(y)] << "| " << label << "\n";
  }
  out << "+" << std::string(static_cast<size_t>(cols), '-') << "+\n";

  if (options.legend) {
    index = 0;
    for (SignalId id : ids) {
      ++index;
      const SignalSpec* spec = scope.SpecFor(id);
      if (spec == nullptr) {
        continue;
      }
      auto value = scope.LatestValue(id);
      out << "  [" << (index <= 9 ? static_cast<char>('0' + index) : '*') << "] " << spec->name;
      if (spec->hidden) {
        out << " (hidden)";
      }
      if (value.has_value()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), " = %.3f", *value);
        out << buf;
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace gscope
