#include "render/canvas.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "render/font5x7.h"

namespace gscope {

Canvas::Canvas(int width, int height)
    : width_(std::max(1, width)),
      height_(std::max(1, height)),
      data_(static_cast<size_t>(width_) * static_cast<size_t>(height_) * 3, 0) {}

void Canvas::Clear(Rgb color) {
  for (size_t i = 0; i + 2 < data_.size(); i += 3) {
    data_[i] = color.r;
    data_[i + 1] = color.g;
    data_[i + 2] = color.b;
  }
}

void Canvas::SetPixel(int x, int y, Rgb color) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return;
  }
  size_t i = (static_cast<size_t>(y) * static_cast<size_t>(width_) + static_cast<size_t>(x)) * 3;
  data_[i] = color.r;
  data_[i + 1] = color.g;
  data_[i + 2] = color.b;
}

Rgb Canvas::GetPixel(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return Rgb{};
  }
  size_t i = (static_cast<size_t>(y) * static_cast<size_t>(width_) + static_cast<size_t>(x)) * 3;
  return Rgb{data_[i], data_[i + 1], data_[i + 2]};
}

void Canvas::DrawLine(int x0, int y0, int x1, int y1, Rgb color) {
  // Bresenham, all octants.
  int dx = std::abs(x1 - x0);
  int dy = -std::abs(y1 - y0);
  int sx = x0 < x1 ? 1 : -1;
  int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    SetPixel(x0, y0, color);
    if (x0 == x1 && y0 == y1) {
      break;
    }
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Canvas::DrawRect(int x, int y, int w, int h, Rgb color) {
  if (w <= 0 || h <= 0) {
    return;
  }
  DrawLine(x, y, x + w - 1, y, color);
  DrawLine(x, y + h - 1, x + w - 1, y + h - 1, color);
  DrawLine(x, y, x, y + h - 1, color);
  DrawLine(x + w - 1, y, x + w - 1, y + h - 1, color);
}

void Canvas::FillRect(int x, int y, int w, int h, Rgb color) {
  for (int yy = y; yy < y + h; ++yy) {
    for (int xx = x; xx < x + w; ++xx) {
      SetPixel(xx, yy, color);
    }
  }
}

void Canvas::DrawText(int x, int y, const std::string& text, Rgb color) {
  int cx = x;
  for (char ch : text) {
    int code = static_cast<unsigned char>(ch);
    if (code < kFontFirstChar || code > kFontLastChar) {
      code = '?';
    }
    const uint8_t* glyph = kFont5x7[code - kFontFirstChar];
    for (int col = 0; col < kFontWidth; ++col) {
      uint8_t bits = glyph[col];
      for (int row = 0; row < kFontHeight; ++row) {
        if (bits & (1u << row)) {
          SetPixel(cx + col, y + row, color);
        }
      }
    }
    cx += kFontWidth + 1;
  }
}

int Canvas::TextWidth(const std::string& text) {
  return static_cast<int>(text.size()) * (kFontWidth + 1);
}

bool Canvas::WritePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return false;
  }
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(data_.data()), static_cast<std::streamsize>(data_.size()));
  return out.good();
}

bool Canvas::WritePgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return false;
  }
  out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  std::vector<uint8_t> luma(static_cast<size_t>(width_) * static_cast<size_t>(height_));
  for (size_t i = 0; i < luma.size(); ++i) {
    // Integer Rec.601 luma.
    luma[i] = static_cast<uint8_t>(
        (299 * data_[i * 3] + 587 * data_[i * 3 + 1] + 114 * data_[i * 3 + 2]) / 1000);
  }
  out.write(reinterpret_cast<const char*>(luma.data()), static_cast<std::streamsize>(luma.size()));
  return out.good();
}

int64_t Canvas::CountPixels(Rgb color) const {
  int64_t count = 0;
  for (size_t i = 0; i + 2 < data_.size(); i += 3) {
    if (data_[i] == color.r && data_[i + 1] == color.g && data_[i + 2] == color.b) {
      ++count;
    }
  }
  return count;
}

}  // namespace gscope
