// ScopeView: paints a Scope as the Figure 1 widget, headlessly.
//
// Layout mirrors the GtkScope widget: a title bar with the widget states
// (mode, sampling period, delay, zoom, bias), the canvas with grid, an
// x-axis ruler sized in seconds and a y-axis ruler from 0 to 100, and a
// signal legend with the per-signal Value readout.  It also produces the
// textual equivalents of the Figure 2 (signal parameters) and Figure 3
// (control parameters) windows.
#ifndef GSCOPE_RENDER_SCOPE_VIEW_H_
#define GSCOPE_RENDER_SCOPE_VIEW_H_

#include <string>

#include "core/envelope.h"
#include "core/params.h"
#include "core/scope.h"
#include "core/trigger.h"
#include "render/canvas.h"

namespace gscope {

struct ScopeViewOptions {
  int margin_left = 34;    // y ruler labels
  int margin_right = 8;
  int margin_top = 14;     // title bar
  int margin_bottom = 16;  // x ruler labels
  int legend_height = 12;  // per-signal legend rows
  int grid_step_x = 50;    // pixels between vertical grid lines
  int grid_step_y = 25;    // y-ruler units between horizontal grid lines
  bool draw_legend = true;
};

class ScopeView {
 public:
  explicit ScopeView(const Scope* scope, ScopeViewOptions options = {});

  // Full widget render.  The canvas should be at least
  // scope->width() + margins wide; the plot area is clipped to fit.
  void Render(Canvas* canvas) const;

  // Renders and writes a PPM "screenshot" in one call.
  bool RenderToPpm(const std::string& path, int canvas_width, int canvas_height) const;

  // Section 6 extension: renders a trigger-stabilized view of one signal.
  // The newest trigger-aligned sweep is drawn in the signal's colour on top
  // of the min/max envelope band accumulated over every sweep in the trace
  // (drawn dimmed).  A repeating waveform therefore draws at a fixed phase
  // regardless of when the frame is taken.  Returns false when the signal
  // is unknown or no sweep triggered yet.
  bool RenderTriggered(Canvas* canvas, SignalId id, const TriggerConfig& trigger) const;

  // Figure 2 analogue: one row per signal with its parameters.
  std::string SignalParamsTable() const;

  // Figure 3 analogue: one row per control parameter.
  static std::string ControlParamsTable(const ParamRegistry& params);

 private:
  struct PlotArea {
    int x0 = 0;
    int y0 = 0;
    int w = 0;
    int h = 0;
  };

  PlotArea ComputePlotArea(const Canvas& canvas) const;
  void DrawChrome(Canvas* canvas, const PlotArea& area) const;
  void DrawGridAndRulers(Canvas* canvas, const PlotArea& area) const;
  void DrawTraces(Canvas* canvas, const PlotArea& area) const;
  void DrawSpectra(Canvas* canvas, const PlotArea& area) const;
  void DrawLegend(Canvas* canvas, const PlotArea& area) const;
  int ValueToY(const PlotArea& area, double ruler_units) const;

  const Scope* scope_;
  ScopeViewOptions options_;
};

}  // namespace gscope

#endif  // GSCOPE_RENDER_SCOPE_VIEW_H_
