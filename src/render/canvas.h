// Software RGB framebuffer: the GtkScope canvas substitute.
//
// The paper draws the scope on a Gnome canvas; we reproduce the pixel
// semantics headlessly.  The canvas supports the primitives the scope view
// needs (pixels, Bresenham lines, rectangles, 5x7 text) and exports binary
// PPM/PGM so "screenshots" (Figures 1, 4, 5) can be regenerated from benches.
#ifndef GSCOPE_RENDER_CANVAS_H_
#define GSCOPE_RENDER_CANVAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/value.h"

namespace gscope {

class Canvas {
 public:
  Canvas(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  void Clear(Rgb color);

  // Out-of-bounds writes are clipped silently.
  void SetPixel(int x, int y, Rgb color);
  Rgb GetPixel(int x, int y) const;  // black when out of bounds

  void DrawLine(int x0, int y0, int x1, int y1, Rgb color);
  void DrawRect(int x, int y, int w, int h, Rgb color);
  void FillRect(int x, int y, int w, int h, Rgb color);

  // 5x7 text, 6-pixel advance.  Characters outside 0x20..0x7e render as '?'.
  void DrawText(int x, int y, const std::string& text, Rgb color);
  static int TextWidth(const std::string& text);

  // Binary PPM (P6) / PGM (P5, luma).  Returns false on I/O failure.
  bool WritePpm(const std::string& path) const;
  bool WritePgm(const std::string& path) const;

  // Number of pixels exactly matching `color` (test helper).
  int64_t CountPixels(Rgb color) const;

  const std::vector<uint8_t>& data() const { return data_; }

 private:
  int width_;
  int height_;
  std::vector<uint8_t> data_;  // RGB, row-major
};

}  // namespace gscope

#endif  // GSCOPE_RENDER_CANVAS_H_
