// Binary wire protocol v2: length-prefixed, CRC32C-checksummed frames of
// fixed-width POD samples, negotiated per connection via `HELLO BIN 1` on
// the existing tuple port (text remains the default; see docs/protocol.md).
//
// Frame layout (all integers little-endian, header 20 bytes):
//
//   off  size  field
//   0    1     magic0 = 0xBF
//   1    1     magic1 = 0x47 ('G')
//   2    1     version = 1
//   3    1     type: 1 = samples, 2 = text
//   4    4     payload_len (u32, <= kMaxPayloadBytes)
//   8    4     crc32c of the payload
//   12   8     base_time_ms (i64; 0 for text frames)
//
// SAMPLES payload:
//   u32 dict_count
//   dict_count x { u32 id, u32 name_len, name bytes }   (id in [1, kMaxDictId])
//   N x { u32 id, i32 delta_ms, f64 value }             (16 bytes per sample)
//
// Every samples frame declares the (id -> name) bindings it uses in its own
// dict section, so frames are self-contained: overflow policies may evict
// whole frames, connections may resume after a kill, and the stream resyncs
// by magic scan, all without a separate dictionary handshake that could
// desynchronize.  A binding is tiny (declared once per frame per distinct
// name) and the server interns it once per connection, so steady-state
// per-sample cost stays a bounded memcpy + id lookup.
//
// TEXT payload: complete newline-terminated protocol lines (used to carry
// control verbs and replies over an upgraded connection).
//
// Timestamps ride as i64 base + i32 per-sample delta; the encoder seals a
// frame early when a delta would overflow.
#ifndef GSCOPE_NET_FRAME_CODEC_H_
#define GSCOPE_NET_FRAME_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/string_index.h"

namespace gscope {

// Upload wire format selected by client options: text tuple lines (the
// default, always understood) or binary frames negotiated via HELLO BIN 1.
// Negotiation failure is never fatal - the connection simply stays text.
enum class WireFormat : uint8_t { kText = 0, kBinary = 1 };

namespace wire {

constexpr uint8_t kMagic0 = 0xBF;
constexpr uint8_t kMagic1 = 0x47;
constexpr uint8_t kVersion = 1;
constexpr uint8_t kFrameSamples = 1;
constexpr uint8_t kFrameText = 2;

constexpr size_t kHeaderBytes = 20;
constexpr size_t kSampleRecordBytes = 16;
constexpr size_t kDictRecordBytes = 8;  // fixed part, before the name bytes
constexpr size_t kMaxPayloadBytes = 64 * 1024;
constexpr size_t kMaxNameBytes = 4096;
constexpr uint32_t kMaxDictId = 65535;

// Chainable CRC32C (Castagnoli, reflected 0x82F63B78); start with crc = 0.
// Hardware SSE4.2 when the CPU has it, slicing-by-8 tables otherwise.
uint32_t Crc32c(uint32_t crc, const void* data, size_t len);

inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline int32_t LoadI32(const char* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline int64_t LoadI64(const char* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline double LoadF64(const char* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void AppendU32(std::string& out, uint32_t v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  out.append(b, sizeof(v));
}
inline void AppendI32(std::string& out, int32_t v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  out.append(b, sizeof(v));
}
inline void AppendI64(std::string& out, int64_t v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  out.append(b, sizeof(v));
}
inline void AppendF64(std::string& out, double v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  out.append(b, sizeof(v));
}

enum class StageResult : uint8_t {
  kStaged,     // the sample joined the open frame
  kFrameFull,  // seal the frame (EmitFrame) and stage again
  kRejected,   // unencodable (name over kMaxNameBytes): count it dropped
};

// Per-connection encoder: stages samples into one open frame, interning
// signal names to dense ids and declaring each binding once per frame.
// All staging buffers are reused across frames, so the steady state (every
// name already interned) allocates nothing.
class WireEncoder {
 public:
  // Inline fast path: the previous sample's signal, already declared in the
  // open frame, delta in range, payload not near the cap - one memcmp and
  // one 16-byte append.  Everything else (new names, dict declarations,
  // frame sealing decisions) takes the out-of-line slow path.
  StageResult Add(std::string_view name, int64_t time_ms, double value) {
    if (memo_id_ != 0 && has_base_ && name == memo_name_ &&
        declared_epoch_[memo_id_ - 1] == frame_epoch_) {
      const int64_t delta = time_ms - base_time_ms_;
      if (delta >= INT32_MIN && delta <= INT32_MAX &&
          4 + dict_buf_.size() + rec_buf_.size() + kSampleRecordBytes <=
              kMaxPayloadBytes) {
        char rec[kSampleRecordBytes];
        const int32_t delta32 = static_cast<int32_t>(delta);
        std::memcpy(rec, &memo_id_, sizeof(memo_id_));
        std::memcpy(rec + 4, &delta32, sizeof(delta32));
        std::memcpy(rec + 8, &value, sizeof(value));
        rec_buf_.append(rec, sizeof(rec));
        staged_ += 1;
        return StageResult::kStaged;
      }
    }
    return AddSlow(name, time_ms, value);
  }

  bool empty() const { return staged_ == 0; }
  size_t staged_samples() const { return staged_; }
  // Bytes EmitFrame would append right now (0 when nothing is staged).
  size_t staged_bytes() const {
    return staged_ == 0 ? 0
                        : kHeaderBytes + 4 + dict_buf_.size() + rec_buf_.size();
  }

  // Appends one complete SAMPLES frame to `out` and clears the staging
  // area.  Returns the number of samples in the frame (0 = nothing staged,
  // nothing appended).
  size_t EmitFrame(std::string& out);

  // Drops staged samples without emitting (connection death); keeps the
  // interned dictionary.  Returns how many samples were discarded.
  size_t ClearStaged();

  // New connection: ids renegotiate from 1 and nothing is considered
  // declared.  Also clears any staged samples.
  void ResetDict();

  // Appends one complete TEXT frame carrying `text` (which must consist of
  // newline-terminated lines).
  static void EmitTextFrame(std::string& out, std::string_view text);

  // Appends one complete TEXT frame carrying `line` + '\n' without building
  // the terminated string first (the reply hot path: zero scratch copies).
  static void EmitTextLineFrame(std::string& out, std::string_view line);

 private:
  StageResult AddSlow(std::string_view name, int64_t time_ms, double value);

  StringKeyedMap<uint32_t> ids_;
  std::vector<uint32_t> declared_epoch_;  // by id - 1; == frame_epoch_ when
                                          // declared in the open frame
  // Last-name memo: producers send long runs of one signal, so most Add
  // calls resolve the id with a memcmp instead of a hash probe.
  std::string memo_name_;
  uint32_t memo_id_ = 0;
  uint32_t next_id_ = 1;
  uint32_t frame_epoch_ = 1;
  std::string dict_buf_;
  std::string rec_buf_;
  uint32_t dict_count_ = 0;
  size_t staged_ = 0;
  int64_t base_time_ms_ = 0;
  bool has_base_ = false;
};

// Incremental frame decoder: feed arbitrary chunks, get whole validated
// frames out.  Corruption (bad magic, bad header field, bad CRC, malformed
// payload) counts exactly one crc_error per loss-of-sync, then the decoder
// scans silently for the next frame that validates end-to-end.  A whole
// frame inside one chunk decodes in place; only split frames touch the
// side buffer (bounded by kHeaderBytes + kMaxPayloadBytes).
//
// Handler shape (duck-typed):
//   void OnDictEntry(uint32_t id, std::string_view name);
//   void OnSampleBatch(int64_t base_time_ms, const char* records, size_t n);
//   void OnTextLine(std::string_view line);   // no trailing newline
// Dict entries of a frame are delivered before its sample batch; handlers
// run only for frames that validated in full.
class FrameDecoder {
 public:
  struct Stats {
    int64_t frames_rx = 0;
    int64_t crc_errors = 0;  // one per loss-of-sync (corruption or tear)
  };

  template <typename H>
  void Consume(const char* data, size_t len, H&& h) {
    while (len > 0) {
      if (!buf_.empty()) {
        size_t take = len < needed_ ? len : needed_;
        buf_.append(data, take);
        data += take;
        len -= take;
        size_t used = Scan(buf_.data(), buf_.size(), h);
        if (used > 0) {
          buf_.erase(0, used);
        }
        if (buf_.empty()) {
          continue;  // the rest of the chunk decodes in place
        }
        needed_ = NeededBytes();
        continue;
      }
      size_t used = Scan(data, len, h);
      if (used < len) {
        buf_.assign(data + used, len - used);
        needed_ = NeededBytes();
      }
      return;
    }
  }

  // EOF: a partially-buffered frame was torn mid-stream (counts one
  // crc_error, like text counts a parse error for a torn tail line).
  void Finish() {
    if (!buf_.empty()) {
      NoteDesync();
      buf_.clear();
    }
  }

  const Stats& stats() const { return stats_; }

  // Returns the counters and zeroes them (callers fold them into their own
  // aggregate stats after each Consume).
  Stats Take() {
    Stats out = stats_;
    stats_ = Stats{};
    return out;
  }

  void Reset() {
    buf_.clear();
    synced_ = true;
    stats_ = Stats{};
  }

 private:
  void NoteDesync() {
    if (synced_) {
      stats_.crc_errors += 1;
      synced_ = false;
    }
  }

  // How many more bytes the buffered candidate needs before Scan can make
  // progress.  Scan leaves buf_ holding either a lone possible-magic byte,
  // an incomplete header with a valid magic pair, or a validated header
  // awaiting its payload - so the header fields it reads here are sane.
  size_t NeededBytes() const {
    if (buf_.size() < kHeaderBytes) {
      return kHeaderBytes - buf_.size();
    }
    size_t total = kHeaderBytes + LoadU32(buf_.data() + 4);
    return total - buf_.size();
  }

  // Decodes whole frames from [p, p+n); returns bytes consumed.  The
  // unconsumed suffix (if any) is an incomplete frame candidate.
  template <typename H>
  size_t Scan(const char* p, size_t n, H&& h) {
    size_t pos = 0;
    while (true) {
      // Align to the next possible frame start.
      while (true) {
        if (pos >= n) {
          return n;
        }
        if (pos + 1 >= n) {
          if (static_cast<uint8_t>(p[pos]) == kMagic0) {
            return pos;  // maybe a split magic pair: keep the byte
          }
          NoteDesync();
          return n;
        }
        if (static_cast<uint8_t>(p[pos]) == kMagic0 &&
            static_cast<uint8_t>(p[pos + 1]) == kMagic1) {
          break;
        }
        NoteDesync();
        ++pos;
      }
      if (n - pos < kHeaderBytes) {
        return pos;  // incomplete header: keep
      }
      uint8_t version = static_cast<uint8_t>(p[pos + 2]);
      uint8_t type = static_cast<uint8_t>(p[pos + 3]);
      uint32_t payload_len = LoadU32(p + pos + 4);
      if (version != kVersion || (type != kFrameSamples && type != kFrameText) ||
          payload_len > kMaxPayloadBytes) {
        NoteDesync();
        pos += 2;  // rescan past this magic pair
        continue;
      }
      if (n - pos - kHeaderBytes < payload_len) {
        return pos;  // incomplete payload: keep
      }
      const char* payload = p + pos + kHeaderBytes;
      if (Crc32c(0, payload, payload_len) != LoadU32(p + pos + 8) ||
          !Dispatch(type, LoadI64(p + pos + 12), payload, payload_len, h)) {
        NoteDesync();
        pos += 2;
        continue;
      }
      synced_ = true;
      stats_.frames_rx += 1;
      pos += kHeaderBytes + payload_len;
    }
  }

  // Validates the payload structure in full, then runs the handler.
  // Returns false (frame rejected, no handler calls made) on any
  // structural violation.
  template <typename H>
  bool Dispatch(uint8_t type, int64_t base_time_ms, const char* payload,
                size_t len, H&& h) {
    if (type == kFrameText) {
      size_t start = 0;
      while (start < len) {
        const char* nl = static_cast<const char*>(
            std::memchr(payload + start, '\n', len - start));
        if (nl == nullptr) {
          break;  // encoder never emits a partial tail line; ignore one
        }
        h.OnTextLine(std::string_view(payload + start,
                                      static_cast<size_t>(nl - payload) - start));
        start = static_cast<size_t>(nl - payload) + 1;
      }
      return true;
    }
    if (len < 4) {
      return false;
    }
    uint32_t dict_count = LoadU32(payload);
    size_t off = 4;
    for (uint32_t i = 0; i < dict_count; ++i) {
      if (len - off < kDictRecordBytes) {
        return false;
      }
      uint32_t id = LoadU32(payload + off);
      uint32_t name_len = LoadU32(payload + off + 4);
      if (id == 0 || id > kMaxDictId || name_len > kMaxNameBytes ||
          len - off - kDictRecordBytes < name_len) {
        return false;
      }
      off += kDictRecordBytes + name_len;
    }
    size_t rec_bytes = len - off;
    if (rec_bytes % kSampleRecordBytes != 0) {
      return false;
    }
    size_t doff = 4;
    for (uint32_t i = 0; i < dict_count; ++i) {
      uint32_t id = LoadU32(payload + doff);
      uint32_t name_len = LoadU32(payload + doff + 4);
      h.OnDictEntry(id, std::string_view(payload + doff + kDictRecordBytes,
                                         name_len));
      doff += kDictRecordBytes + name_len;
    }
    if (rec_bytes > 0) {
      h.OnSampleBatch(base_time_ms, payload + off,
                      rec_bytes / kSampleRecordBytes);
    }
    return true;
  }

  std::string buf_;
  size_t needed_ = 0;
  bool synced_ = true;
  Stats stats_;
};

}  // namespace wire
}  // namespace gscope

#endif  // GSCOPE_NET_FRAME_CODEC_H_
